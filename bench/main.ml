(* EmbSan reproduction bench harness.

   Regenerates every table and figure of the paper's evaluation:

     table1    the evaluated firmware inventory
     table2    25 syzbot bugs under EmbSan-C / EmbSan-D / native KASAN
     table3    classification matrix of campaign-found bugs
     table4    full list of campaign-found bugs (with reproducer stats)
     replay    S4.2 soundness: reproducers re-run under native sanitizers
     fig2      runtime overhead comparison
     ablation  design-choice ablations (DESIGN.md)
     bechamel  wall-clock micro-benchmarks
     emu       execution-engine throughput (writes BENCH_emu.json)
     snap      snapshot service: restore latency + campaign reboot-vs-restore
               (writes BENCH_snap.json)
     orch      multi-domain orchestrator scaling sweep (writes BENCH_orch.json)
     race      race detection: ftrace vs KCSAN, fixed vs fuzzed schedules
               (writes BENCH_race.json; exits 1 on ratio-guard violation)
     rehost    model-free rehosting: interrupt-injection A/B + throughput
               vs modeled devices (writes BENCH_rehost.json; exits 1 on
               ratio-guard violation)
     all       everything above (default)

   Options: --execs N (campaign budget, default 4000), --seed N. *)

open Embsan_guest

let print_table1 () =
  Fmt.pr "@.Table 1: embedded firmware used in the evaluation@.";
  Fmt.pr "%-22s %-15s %-8s %-9s %-7s %s@." "Firmware" "Base OS" "Arch"
    "Inst." "Source" "Fuzzer";
  Fmt.pr "%s@." (String.make 72 '-');
  List.iter
    (fun fw -> Fmt.pr "%a@." Firmware_db.pp_table1_row fw)
    Firmware_db.all

let () =
  let args = Array.to_list Sys.argv in
  let rec get_opt key = function
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> get_opt key rest
    | [] -> None
  in
  let max_execs =
    match get_opt "--execs" args with Some v -> int_of_string v | None -> 4000
  in
  let seed =
    match get_opt "--seed" args with Some v -> int_of_string v | None -> 1
  in
  let cmds =
    List.filter
      (fun a ->
        List.mem a
          [ "table1"; "table2"; "table3"; "table4"; "replay"; "fig2";
            "ablation"; "bechamel"; "emu"; "snap"; "orch"; "race"; "rehost"; "all" ])
      args
  in
  let cmds = if cmds = [] then [ "all" ] else cmds in
  let want c = List.mem c cmds || List.mem "all" cmds in
  let t0 = Unix.gettimeofday () in
  Fmt.pr "EmbSan reproduction bench (execs=%d seed=%d)@." max_execs seed;
  if want "table1" then print_table1 ();
  if want "table2" then ignore (Table2.print (Table2.run ()));
  let campaign_results =
    if want "table3" || want "table4" || want "replay" || want "fig2" then
      Campaigns.run_all ~max_execs ~seed ()
    else []
  in
  if want "table3" then ignore (Campaigns.print_table3 campaign_results);
  if want "table4" then ignore (Campaigns.print_table4 campaign_results);
  if want "replay" then ignore (Campaigns.print_native_replay campaign_results);
  if want "fig2" then ignore (Overhead.run ~max_execs ());
  if want "ablation" then Ablation.run ();
  if want "bechamel" then Bechamel_suite.run ();
  if want "emu" then Emu_bench.run ();
  if want "snap" then Snap_bench.run ();
  if want "orch" then Orch_bench.run ();
  if want "race" then Race_bench.run ();
  if want "rehost" then Rehost_bench.run ();
  Fmt.pr "@.bench done in %.1fs@." (Unix.gettimeofday () -. t0)
