(* Snapshot-service bench: writes BENCH_snap.json (schema in README.md).

   Two measurements:

   1. restore latency vs dirty-page count — a 4 MiB machine is
      checkpointed once; each sample touches N pages and restores,
      demonstrating the O(touched) claim: latency must scale with N, not
      with RAM size;

   2. campaign throughput, reboot vs restore — the same seeded fuzzing
      campaign (fixed exec budget, stop_when_all_found off so the
      workloads are identical) run with crash recovery via full reboot
      and via snapshot restore, reporting both execs/sec figures.  This
      is the EmbedFuzz-style "cheap re-execution" headline number. *)

open Embsan_emu
module Snap = Embsan_snap.Snap
module Campaign = Embsan_fuzz.Campaign
module Firmware_db = Embsan_guest.Firmware_db

let min_bench_secs = 0.3

(* The campaign workload must actually crash for the comparison to be
   meaningful: recovery cost (reboot vs restore) only shows up on the
   crash path.  TP-Link WDR-7660 is the closed-source VxWorks image whose
   campaign reliably reaches architectural faults. *)
let campaign_fw = "TP-Link WDR-7660"
let campaign_execs = 1500
let campaign_seed = 5

(* --- restore latency vs dirty pages ---------------------------------------- *)

let latency_ram_size = 4 * 1024 * 1024 (* 1024 pages *)

type latency_sample = {
  l_dirty_pages : int;
  l_restores : int;
  l_mean_usecs : float;
}

let restore_latency touched =
  let m =
    Machine.create ~harts:1 ~ram_base:0x1_0000 ~ram_size:latency_ram_size
      ~arch:Embsan_isa.Arch.Arm_ev ()
  in
  let snap = Snap.capture m in
  let base = Machine.ram_base m in
  let touch () =
    for p = 0 to touched - 1 do
      Machine.write_mem m
        ~addr:(base + (p * Ram.page_size) + (p mod 64 * 4))
        ~width:4 ~value:(0xA5000000 lor p)
    done
  in
  (* measure the restore alone: dirty outside the timed window *)
  let restores = ref 0 and secs = ref 0.0 in
  while !secs < min_bench_secs do
    touch ();
    let t0 = Unix.gettimeofday () in
    let reverted = Snap.restore snap in
    secs := !secs +. (Unix.gettimeofday () -. t0);
    incr restores;
    assert (reverted = touched)
  done;
  {
    l_dirty_pages = touched;
    l_restores = !restores;
    l_mean_usecs = 1e6 *. !secs /. float_of_int !restores;
  }

let latency_json s =
  Printf.sprintf
    {|{ "dirty_pages": %d, "restores": %d, "mean_restore_usecs": %.2f }|}
    s.l_dirty_pages s.l_restores s.l_mean_usecs

(* --- campaign throughput: reboot vs restore -------------------------------- *)

type campaign_sample = {
  c_execs : int;
  c_crashes : int;
  c_secs : float;
  c_execs_per_sec : float;
}

let run_campaign ~use_snapshots =
  let fw = Option.get (Firmware_db.find campaign_fw) in
  let cfg =
    {
      (Campaign.default_config fw) with
      max_execs = campaign_execs;
      seed = campaign_seed;
      stop_when_all_found = false;
      use_snapshots;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Campaign.run cfg in
  let secs = Unix.gettimeofday () -. t0 in
  {
    c_execs = r.Campaign.r_execs;
    c_crashes = r.Campaign.r_crashes;
    c_secs = secs;
    c_execs_per_sec = float_of_int r.Campaign.r_execs /. secs;
  }

let campaign_json s =
  Printf.sprintf
    {|{ "execs": %d, "crashes": %d, "wall_secs": %.3f, "execs_per_sec": %.1f }|}
    s.c_execs s.c_crashes s.c_secs s.c_execs_per_sec

(* --- driver ----------------------------------------------------------------- *)

let run () =
  Fmt.pr "@.Snapshot service (host wall clock)@.";
  let counts = [ 1; 4; 16; 64; 256; 1024 ] in
  let latencies = List.map restore_latency counts in
  List.iter
    (fun s ->
      Fmt.pr "  restore %4d dirty pages: %8.2f us  (%d restores)@."
        s.l_dirty_pages s.l_mean_usecs s.l_restores)
    latencies;
  let reboot = run_campaign ~use_snapshots:false in
  let restore = run_campaign ~use_snapshots:true in
  let speedup = restore.c_execs_per_sec /. reboot.c_execs_per_sec in
  Fmt.pr "  campaign reboot : %7.1f execs/sec (%d crashes in %.2fs)@."
    reboot.c_execs_per_sec reboot.c_crashes reboot.c_secs;
  Fmt.pr "  campaign restore: %7.1f execs/sec (%d crashes in %.2fs, %.2fx)@."
    restore.c_execs_per_sec restore.c_crashes restore.c_secs speedup;
  let json =
    Printf.sprintf
      {|{
  "schema": "embsan-snap-bench/1",
  "restore_latency": {
    "ram_bytes": %d,
    "page_bytes": %d,
    "samples": [
    %s
    ]
  },
  "campaign": {
    "firmware": "%s",
    "execs": %d,
    "seed": %d,
    "reboot": %s,
    "restore": %s,
    "speedup_restore_vs_reboot": %.2f
  }
}
|}
      latency_ram_size Ram.page_size
      (String.concat ",\n    " (List.map latency_json latencies))
      campaign_fw campaign_execs campaign_seed (campaign_json reboot)
      (campaign_json restore) speedup
  in
  let oc = open_out "BENCH_snap.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "  wrote BENCH_snap.json@."
