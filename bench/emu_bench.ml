(* Measured-throughput bench for the execution engine.

   Unlike the modeled-cycle overhead bench (overhead.ml / Figure 2), this
   measures real host wall-clock throughput (guest insns/sec) of the
   emulator's run loop in four configurations:

     baseline       the pre-overhaul per-instruction interpreter
                    (Machine.Baseline, kept as the semantics reference)
     fast           the chained, allocation-free, batch-accounted engine
     kasan_probed   fast engine with the EmbSan-D KASAN runtime attached
     kcsan_probed   fast engine with the EmbSan-D KCSAN runtime attached

   The uninstrumented numbers come from a synthetic hot loop (stores,
   loads, calls, AMO, branches - every fast-path template); the probed
   numbers replay benign syscall sequences on a real firmware so the
   probe traffic is the runtime's own.

   Three A/B sections pin the fuzzing-first engine work:

     toggle_storm   the hot loop with an instrumentation toggle between
                    every 50k-insn chunk -- "legacy" emulates the old
                    flush-per-toggle engine by calling [flush_tcg] after
                    each toggle, "patched" is the real site-patching path
                    (its [flushes_invalidate] must be exactly 0)
     cmplog_gate    a fixed-seed campaign on the magic-gate firmware with
                    compare-operand coverage off vs on -- only the cmplog
                    run may pass the 32-bit-token guard
     superblocks    hot-loop throughput with superblock formation off vs
                    on (hot chains fused into single closures)

   Ratio-based guards at the end fail the bench (non-zero exit) if the
   engine regresses below the PR-4 floors.  Results are written to
   BENCH_emu.json; see README.md for the schema. *)

open Embsan_isa
open Embsan_emu
module Embsan = Embsan_core.Embsan
module Replay = Embsan_guest.Replay
module Firmware_db = Embsan_guest.Firmware_db

let hot_loop_insns = 4_000_000
let probed_insns = 400_000

(* Minimum measured duration per configuration: the probed workloads
   complete their insn budget in single-digit milliseconds, far too short
   for stable numbers, so every measurement repeats its workload until
   this much wall clock has accumulated and reports the repeat count. *)
let min_bench_secs = 0.5

(* A hot loop exercising every translation template: W8/W16/W32 memory
   traffic, a call/ret pair, an AMO, ALU ops and a two-block inner loop. *)
let hot_image ~arch =
  let open Asm in
  let text =
    [
      Label "main";
      la Reg.t0 "buf";
      li Reg.t1 0;
      Label "outer";
      li Reg.t2 0;
      li Reg.t3 64;
      Label "inner";
      store W32 Reg.t0 Reg.t2 0;
      load W32 Reg.t4 Reg.t0 0;
      store W16 Reg.t0 Reg.t4 4;
      load W16 Reg.t4 Reg.t0 4;
      store W8 Reg.t0 Reg.t4 6;
      load W8 ~signed:true Reg.s0 Reg.t0 6;
      call "leaf";
      Ins (Amo (Amo_add, Reg.s1, Reg.t0, Reg.t2));
      addi Reg.t2 Reg.t2 1;
      bltu Reg.t2 Reg.t3 "inner";
      addi Reg.t1 Reg.t1 1;
      j "outer";
      Label "leaf";
      Ins (Alu (Mul, Reg.s2, Reg.t2, Reg.t2));
      addi Reg.s2 Reg.s2 3;
      ret;
    ]
  in
  let data = [ Label "buf"; Words [ 0; 0; 0; 0 ] ] in
  Asm.assemble ~arch ~text_base:0x1_0000 ~entry:"main"
    [ { unit_name = "hot"; text; data } ]

type sample = { insns : int; secs : float; rate : float; repeats : int }

let rate_of ~insns ~secs = float_of_int insns /. secs

(* Repeat [workload ()] (which returns guest insns retired) until
   [min_bench_secs] of wall clock have accumulated. *)
let measure workload =
  let insns = ref 0 and secs = ref 0.0 and repeats = ref 0 in
  while !secs < min_bench_secs do
    let t0 = Unix.gettimeofday () in
    let n = workload () in
    secs := !secs +. (Unix.gettimeofday () -. t0);
    insns := !insns + n;
    incr repeats
  done;
  { insns = !insns; secs = !secs;
    rate = rate_of ~insns:!insns ~secs:!secs; repeats = !repeats }

let run_engine engine =
  let arch = Arch.Arm_ev in
  let m = Machine.create ~harts:1 ~arch () in
  Machine.load_image m (hot_image ~arch);
  Machine.set_engine m engine;
  Machine.boot m;
  (* warm the translation cache so translation time is excluded *)
  ignore (Machine.run m ~max_insns:10_000);
  let sample =
    measure (fun () ->
        let i0 = m.Machine.total_insns in
        (match Machine.run m ~max_insns:hot_loop_insns with
        | Machine.Budget_exhausted -> ()
        | s -> Fmt.failwith "emu bench: unexpected stop %a" Machine.pp_stop s);
        m.Machine.total_insns - i0)
  in
  (sample, m.Machine.stats)

(* The hot loop with one instrumentation toggle per [toggle_chunk] retired
   insns: a fixed rotation over probe subscribe/unsubscribe, dirty
   tracking, cmplog and superblock formation.  [legacy] emulates the old
   engine's behavior (every toggle invalidated translations) with an
   explicit [flush_tcg]; the patched path just pokes the site table. *)
let toggle_chunk = 50_000

let run_toggle ~legacy =
  let arch = Arch.Arm_ev in
  let m = Machine.create ~harts:1 ~arch () in
  Machine.load_image m (hot_image ~arch);
  Machine.boot m;
  ignore (Machine.run m ~max_insns:10_000);
  let sub = ref None in
  let phase = ref 0 in
  let toggle () =
    (match !phase land 3 with
    | 0 -> (
        match !sub with
        | None ->
            sub := Some (Probe.subscribe_block m.Machine.probes (fun _ -> ()))
        | Some s ->
            Probe.unsubscribe s;
            sub := None)
    | 1 -> Machine.set_dirty_tracking m (!phase land 4 = 0)
    | 2 -> Machine.set_cmplog m (!phase land 4 = 0)
    | _ -> Machine.set_superblocks m (!phase land 4 <> 0));
    incr phase;
    if legacy then Machine.flush_tcg m
  in
  let toggles = ref 0 in
  let sample =
    measure (fun () ->
        let i0 = m.Machine.total_insns in
        while m.Machine.total_insns - i0 < hot_loop_insns do
          (match Machine.run m ~max_insns:toggle_chunk with
          | Machine.Budget_exhausted -> ()
          | s -> Fmt.failwith "emu bench: unexpected stop %a" Machine.pp_stop s);
          toggle ();
          incr toggles
        done;
        m.Machine.total_insns - i0)
  in
  (sample, !toggles, m.Machine.stats.Engine_stats.flushes_invalidate)

(* Hot-loop throughput with superblock formation off vs on; the warm-up is
   long enough for the exec-count threshold to trigger fusion. *)
let run_super on =
  let arch = Arch.Arm_ev in
  let m = Machine.create ~harts:1 ~arch () in
  Machine.load_image m (hot_image ~arch);
  Machine.set_superblocks m on;
  Machine.boot m;
  ignore (Machine.run m ~max_insns:200_000);
  let sample =
    measure (fun () ->
        let i0 = m.Machine.total_insns in
        (match Machine.run m ~max_insns:hot_loop_insns with
        | Machine.Budget_exhausted -> ()
        | s -> Fmt.failwith "emu bench: unexpected stop %a" Machine.pp_stop s);
        m.Machine.total_insns - i0)
  in
  (sample, m.Machine.stats)

(* Fixed-seed campaign on the magic-gate firmware: without cmplog the
   mutator cannot produce the 32-bit token; with it the guest's own
   compare donates the operand and the gated bug falls. *)
let gate_execs = 2_000

let run_gate use_cmplog =
  let fw = Firmware_db.cmplog_gate_fw in
  let cfg =
    {
      (Embsan_fuzz.Campaign.default_config fw) with
      max_execs = gate_execs;
      seed = 1;
      use_cmplog;
    }
  in
  let r = Embsan_fuzz.Campaign.run cfg in
  let to_bug =
    match r.r_found with
    | f :: _ -> Some f.Embsan_fuzz.Campaign.f_exec
    | [] -> None
  in
  (r, to_bug)

(* Throughput with a live EmbSan-D runtime: boot the syzbot firmware,
   replay its benign syscall sequences until the insn budget is spent. *)
let run_probed sanitizers =
  let fw = Firmware_db.syzbot_suite_fw in
  match Replay.boot fw (Replay.Embsan_mode (sanitizers, `D)) with
  | exception Replay.Boot_failed msg ->
      Fmt.epr "emu bench: probed boot failed (%s), skipping@." msg;
      None
  | inst ->
      let calls =
        List.concat_map
          (fun (b : Embsan_guest.Defs.bug) -> b.b_benign)
          fw.fw_bugs
      in
      if calls = [] then None
      else begin
        let m = inst.Replay.machine in
        Some
          (measure (fun () ->
               let i0 = m.Machine.total_insns in
               while m.Machine.total_insns - i0 < probed_insns do
                 ignore (Replay.replay inst calls)
               done;
               m.Machine.total_insns - i0))
      end

let sample_json s =
  Printf.sprintf
    {|{ "guest_insns": %d, "wall_secs": %.6f, "insns_per_sec": %.0f, "repeats": %d }|}
    s.insns s.secs s.rate s.repeats

let opt_json = function Some s -> sample_json s | None -> "null"

(* Ratio-based regression floors, derived from the PR-4 BENCH_emu.json
   (baseline 23.7M, fast 105.9M, kasan 22.2M, kcsan 86.5M insns/sec on the
   reference host).  Ratios are host-independent; the margins absorb
   normal machine-to-machine noise but not a real regression. *)
let guards ~speedup ~chain_rate ~kasan_ratio ~kcsan_ratio ~toggle_ratio
    ~super_ratio ~patched_flushes ~gate_solved =
  [
    ("speedup_fast_vs_baseline >= 3.0", speedup >= 3.0);
    ("chain_rate >= 0.90", chain_rate >= 0.90);
    ( "kasan_probed >= 0.60 x baseline",
      match kasan_ratio with None -> true | Some r -> r >= 0.60 );
    ( "kcsan_probed >= 2.0 x baseline",
      match kcsan_ratio with None -> true | Some r -> r >= 2.0 );
    ("patched toggles >= 1.0 x legacy throughput", toggle_ratio >= 1.0);
    ("superblocks on >= 0.9 x off", super_ratio >= 0.9);
    ("toggle storm flush-free (flushes_invalidate = 0)", patched_flushes = 0);
    ("cmplog solves the magic gate", gate_solved);
  ]

let run () =
  Fmt.pr "@.Execution-engine throughput (host wall clock)@.";
  let baseline, _ = run_engine Machine.Baseline in
  let fast, stats = run_engine Machine.Fast in
  let kasan = run_probed Embsan.kasan_only in
  let kcsan = run_probed Embsan.kcsan_only in
  let speedup = fast.rate /. baseline.rate in
  let row name (s : sample) note =
    Fmt.pr "  %-14s %10.2f M insns/sec   %s@." name (s.rate /. 1e6) note
  in
  row "baseline" baseline "(pre-overhaul interpreter)";
  row "fast" fast (Fmt.str "(%.2fx baseline)" speedup);
  Option.iter (fun s -> row "kasan-probed" s "(EmbSan-D KASAN attached)") kasan;
  Option.iter (fun s -> row "kcsan-probed" s "(EmbSan-D KCSAN attached)") kcsan;
  Fmt.pr "  engine: %a@." Engine_stats.pp stats;
  Fmt.pr "@.Toggle storm (one toggle per %dk insns)@." (toggle_chunk / 1000);
  let legacy, legacy_toggles, legacy_flushes = run_toggle ~legacy:true in
  let patched, patched_toggles, patched_flushes = run_toggle ~legacy:false in
  row "legacy" legacy
    (Fmt.str "(%d toggles, %d flushes)" legacy_toggles legacy_flushes);
  row "patched" patched
    (Fmt.str "(%d toggles, %d flushes, %.2fx legacy)" patched_toggles
       patched_flushes (patched.rate /. legacy.rate));
  Fmt.pr "@.Superblock formation@.";
  let super_off, _ = run_super false in
  let super_on, super_stats = run_super true in
  row "super-off" super_off "(chained singles)";
  row "super-on" super_on
    (Fmt.str "(%.2fx off; %d formed, %d transfers fused)"
       (super_on.rate /. super_off.rate)
       super_stats.Engine_stats.superblocks_formed
       super_stats.Engine_stats.super_transfers);
  Fmt.pr "@.Cmplog magic gate (%d execs, seed 1)@." gate_execs;
  let gate_off, off_to_bug = run_gate false in
  let gate_on, on_to_bug = run_gate true in
  let gate_row name (r : Embsan_fuzz.Campaign.result) to_bug =
    Fmt.pr "  %-14s %d/%d bugs, cov %d%s@." name (List.length r.r_found)
      (List.length r.r_fw.fw_bugs) r.r_coverage
      (match to_bug with
      | Some e -> Fmt.str ", gate passed at exec %d" e
      | None -> ", gate never passed")
  in
  gate_row "cmplog-off" gate_off off_to_bug;
  gate_row "cmplog-on" gate_on on_to_bug;
  let chain_rate = Engine_stats.chain_rate stats in
  let ratio_of = Option.map (fun (s : sample) -> s.rate /. baseline.rate) in
  let checks =
    guards ~speedup ~chain_rate ~kasan_ratio:(ratio_of kasan)
      ~kcsan_ratio:(ratio_of kcsan)
      ~toggle_ratio:(patched.rate /. legacy.rate)
      ~super_ratio:(super_on.rate /. super_off.rate)
      ~patched_flushes
      ~gate_solved:(off_to_bug = None && on_to_bug <> None)
  in
  let int_opt = function Some e -> string_of_int e | None -> "null" in
  let json =
    Printf.sprintf
      {|{
  "schema": "embsan-emu-bench/3",
  "workload": {
    "uninstrumented": "synthetic hot loop (stores, loads, call/ret, AMO, branches), %d insns per repeat, cache warmed",
    "probed": "benign syscall replay on %s, >= %d insns per repeat",
    "toggle_storm": "hot loop, one instrumentation toggle per %d insns; legacy adds flush_tcg per toggle",
    "cmplog_gate": "campaign on %s, %d execs, seed 1, cmplog off vs on",
    "min_wall_secs_per_config": %.2f
  },
  "baseline": %s,
  "fast": %s,
  "speedup_fast_vs_baseline": %.2f,
  "kasan_probed": %s,
  "kcsan_probed": %s,
  "toggle_storm": {
    "legacy": %s,
    "patched": %s,
    "legacy_flushes_invalidate": %d,
    "patched_flushes_invalidate": %d,
    "patched_vs_legacy": %.2f
  },
  "superblocks": {
    "off": %s,
    "on": %s,
    "on_vs_off": %.2f,
    "formed": %d,
    "super_execs": %d,
    "super_exits": %d,
    "transfers_fused": %d
  },
  "cmplog_gate": {
    "off": { "found": %d, "coverage": %d, "execs_to_bug": %s },
    "on": { "found": %d, "coverage": %d, "execs_to_bug": %s }
  },
  "engine_stats": %s,
  "guards": [
%s
  ]
}
|}
      hot_loop_insns Firmware_db.syzbot_suite_fw.fw_name probed_insns
      toggle_chunk Firmware_db.cmplog_gate_fw.fw_name gate_execs
      min_bench_secs (sample_json baseline) (sample_json fast) speedup
      (opt_json kasan) (opt_json kcsan) (sample_json legacy)
      (sample_json patched) legacy_flushes patched_flushes
      (patched.rate /. legacy.rate)
      (sample_json super_off) (sample_json super_on)
      (super_on.rate /. super_off.rate)
      super_stats.Engine_stats.superblocks_formed
      super_stats.Engine_stats.super_execs
      super_stats.Engine_stats.super_exits
      super_stats.Engine_stats.super_transfers
      (List.length gate_off.r_found)
      gate_off.r_coverage (int_opt off_to_bug)
      (List.length gate_on.r_found)
      gate_on.r_coverage (int_opt on_to_bug)
      (Engine_stats.to_json stats)
      (String.concat ",\n"
         (List.map
            (fun (name, ok) ->
              Printf.sprintf {|    { "guard": "%s", "pass": %b }|} name ok)
            checks))
  in
  let oc = open_out "BENCH_emu.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "  wrote BENCH_emu.json@.";
  let failed = List.filter (fun (_, ok) -> not ok) checks in
  if failed <> [] then begin
    List.iter (fun (name, _) -> Fmt.epr "  GUARD FAILED: %s@." name) failed;
    Fmt.failwith "emu bench: %d regression guard(s) failed"
      (List.length failed)
  end
  else Fmt.pr "  all %d regression guards pass@." (List.length checks)
