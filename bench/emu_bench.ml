(* Measured-throughput bench for the execution engine.

   Unlike the modeled-cycle overhead bench (overhead.ml / Figure 2), this
   measures real host wall-clock throughput (guest insns/sec) of the
   emulator's run loop in four configurations:

     baseline       the pre-overhaul per-instruction interpreter
                    (Machine.Baseline, kept as the semantics reference)
     fast           the chained, allocation-free, batch-accounted engine
     kasan_probed   fast engine with the EmbSan-D KASAN runtime attached
     kcsan_probed   fast engine with the EmbSan-D KCSAN runtime attached

   The uninstrumented numbers come from a synthetic hot loop (stores,
   loads, calls, AMO, branches - every fast-path template); the probed
   numbers replay benign syscall sequences on a real firmware so the
   probe traffic is the runtime's own.  Results are written to
   BENCH_emu.json; see README.md for the schema. *)

open Embsan_isa
open Embsan_emu
module Embsan = Embsan_core.Embsan
module Replay = Embsan_guest.Replay
module Firmware_db = Embsan_guest.Firmware_db

let hot_loop_insns = 4_000_000
let probed_insns = 400_000

(* Minimum measured duration per configuration: the probed workloads
   complete their insn budget in single-digit milliseconds, far too short
   for stable numbers, so every measurement repeats its workload until
   this much wall clock has accumulated and reports the repeat count. *)
let min_bench_secs = 0.5

(* A hot loop exercising every translation template: W8/W16/W32 memory
   traffic, a call/ret pair, an AMO, ALU ops and a two-block inner loop. *)
let hot_image ~arch =
  let open Asm in
  let text =
    [
      Label "main";
      la Reg.t0 "buf";
      li Reg.t1 0;
      Label "outer";
      li Reg.t2 0;
      li Reg.t3 64;
      Label "inner";
      store W32 Reg.t0 Reg.t2 0;
      load W32 Reg.t4 Reg.t0 0;
      store W16 Reg.t0 Reg.t4 4;
      load W16 Reg.t4 Reg.t0 4;
      store W8 Reg.t0 Reg.t4 6;
      load W8 ~signed:true Reg.s0 Reg.t0 6;
      call "leaf";
      Ins (Amo (Amo_add, Reg.s1, Reg.t0, Reg.t2));
      addi Reg.t2 Reg.t2 1;
      bltu Reg.t2 Reg.t3 "inner";
      addi Reg.t1 Reg.t1 1;
      j "outer";
      Label "leaf";
      Ins (Alu (Mul, Reg.s2, Reg.t2, Reg.t2));
      addi Reg.s2 Reg.s2 3;
      ret;
    ]
  in
  let data = [ Label "buf"; Words [ 0; 0; 0; 0 ] ] in
  Asm.assemble ~arch ~text_base:0x1_0000 ~entry:"main"
    [ { unit_name = "hot"; text; data } ]

type sample = { insns : int; secs : float; rate : float; repeats : int }

let rate_of ~insns ~secs = float_of_int insns /. secs

(* Repeat [workload ()] (which returns guest insns retired) until
   [min_bench_secs] of wall clock have accumulated. *)
let measure workload =
  let insns = ref 0 and secs = ref 0.0 and repeats = ref 0 in
  while !secs < min_bench_secs do
    let t0 = Unix.gettimeofday () in
    let n = workload () in
    secs := !secs +. (Unix.gettimeofday () -. t0);
    insns := !insns + n;
    incr repeats
  done;
  { insns = !insns; secs = !secs;
    rate = rate_of ~insns:!insns ~secs:!secs; repeats = !repeats }

let run_engine engine =
  let arch = Arch.Arm_ev in
  let m = Machine.create ~harts:1 ~arch () in
  Machine.load_image m (hot_image ~arch);
  Machine.set_engine m engine;
  Machine.boot m;
  (* warm the translation cache so translation time is excluded *)
  ignore (Machine.run m ~max_insns:10_000);
  let sample =
    measure (fun () ->
        let i0 = m.Machine.total_insns in
        (match Machine.run m ~max_insns:hot_loop_insns with
        | Machine.Budget_exhausted -> ()
        | s -> Fmt.failwith "emu bench: unexpected stop %a" Machine.pp_stop s);
        m.Machine.total_insns - i0)
  in
  (sample, m.Machine.stats)

(* Throughput with a live EmbSan-D runtime: boot the syzbot firmware,
   replay its benign syscall sequences until the insn budget is spent. *)
let run_probed sanitizers =
  let fw = Firmware_db.syzbot_suite_fw in
  match Replay.boot fw (Replay.Embsan_mode (sanitizers, `D)) with
  | exception Replay.Boot_failed msg ->
      Fmt.epr "emu bench: probed boot failed (%s), skipping@." msg;
      None
  | inst ->
      let calls =
        List.concat_map
          (fun (b : Embsan_guest.Defs.bug) -> b.b_benign)
          fw.fw_bugs
      in
      if calls = [] then None
      else begin
        let m = inst.Replay.machine in
        Some
          (measure (fun () ->
               let i0 = m.Machine.total_insns in
               while m.Machine.total_insns - i0 < probed_insns do
                 ignore (Replay.replay inst calls)
               done;
               m.Machine.total_insns - i0))
      end

let sample_json s =
  Printf.sprintf
    {|{ "guest_insns": %d, "wall_secs": %.6f, "insns_per_sec": %.0f, "repeats": %d }|}
    s.insns s.secs s.rate s.repeats

let opt_json = function Some s -> sample_json s | None -> "null"

let run () =
  Fmt.pr "@.Execution-engine throughput (host wall clock)@.";
  let baseline, _ = run_engine Machine.Baseline in
  let fast, stats = run_engine Machine.Fast in
  let kasan = run_probed Embsan.kasan_only in
  let kcsan = run_probed Embsan.kcsan_only in
  let speedup = fast.rate /. baseline.rate in
  let row name (s : sample) note =
    Fmt.pr "  %-14s %10.2f M insns/sec   %s@." name (s.rate /. 1e6) note
  in
  row "baseline" baseline "(pre-overhaul interpreter)";
  row "fast" fast (Fmt.str "(%.2fx baseline)" speedup);
  Option.iter (fun s -> row "kasan-probed" s "(EmbSan-D KASAN attached)") kasan;
  Option.iter (fun s -> row "kcsan-probed" s "(EmbSan-D KCSAN attached)") kcsan;
  Fmt.pr "  engine: %a@." Engine_stats.pp stats;
  let json =
    Printf.sprintf
      {|{
  "schema": "embsan-emu-bench/2",
  "workload": {
    "uninstrumented": "synthetic hot loop (stores, loads, call/ret, AMO, branches), %d insns per repeat, cache warmed",
    "probed": "benign syscall replay on %s, >= %d insns per repeat",
    "min_wall_secs_per_config": %.2f
  },
  "baseline": %s,
  "fast": %s,
  "speedup_fast_vs_baseline": %.2f,
  "kasan_probed": %s,
  "kcsan_probed": %s,
  "engine_stats": %s
}
|}
      hot_loop_insns Firmware_db.syzbot_suite_fw.fw_name probed_insns
      min_bench_secs
      (sample_json baseline) (sample_json fast) speedup (opt_json kasan)
      (opt_json kcsan)
      (Engine_stats.to_json stats)
  in
  let oc = open_out "BENCH_emu.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "  wrote BENCH_emu.json@."
