(* Model-free rehosting bench: writes BENCH_rehost.json (schema in
   README.md).

   Two axes, both on the mmio-suite firmware (a UART/DMA-ish driver with
   NO hand-written device model — every register read is served by the
   rehosting layer, and its seeded use-after-free sits behind an
   interrupt handler that only runs when the controller injects —
   lib/guest/mmio_suite.ml):

   1. injection A/B: campaigns with rehosting on, interrupt injection on
      vs off, same budget and seeds.  The IRQ-gated UAF must be found
      AND confirmed with injection on every seed, and never without —
      the property that makes fuzzer-scheduled interrupts load-bearing
      rather than decorative;
   2. throughput: execs/s of the rehosted campaign (which restores the
      post-boot snapshot before every exec to keep reproducers
      self-contained) vs a modeled-device campaign on the stm32f407
      image, same budget.  The per-exec restore flushes the translation
      cache, so rehosting pays real overhead; the guard bounds it.

   Ratio guards (process exits 1 when violated):
   - the UAF is found+confirmed with injection on every seed;
   - it is never found without injection on any seed;
   - rehosted throughput >= 0.125x the modeled-device campaign's. *)

module Campaign = Embsan_fuzz.Campaign
module Embsan = Embsan_core.Embsan
module Firmware_db = Embsan_guest.Firmware_db

let seeds = [ 1; 2; 3 ]
let find_budget = 1000
let rate_execs = 400
let min_rate_ratio = 0.125

type sample = {
  s_seed : int;
  s_exec : int option; (* exec of first confirmed UAF detection *)
  s_rehost : int option; (* the reproducer's minimized rehost seed *)
  s_execs : int;
}

let run_arm ~irq seed =
  let cfg =
    {
      (Campaign.default_config Firmware_db.mmio_suite_fw) with
      sanitizers = Embsan.kasan_only;
      max_execs = find_budget;
      seed;
      use_rehost = true;
      use_irq = irq;
    }
  in
  let r = Campaign.run cfg in
  let uaf =
    List.find_opt
      (fun (f : Campaign.found) ->
        f.f_bug.Embsan_guest.Defs.b_id = "mmio-suite/irq_uaf" && f.f_confirmed)
      r.Campaign.r_found
  in
  {
    s_seed = seed;
    s_exec = Option.map (fun (f : Campaign.found) -> f.f_exec) uaf;
    s_rehost = Option.bind uaf (fun (f : Campaign.found) -> f.f_rehost);
    s_execs = r.Campaign.r_execs;
  }

let found s = s.s_exec <> None

let sample_json s =
  let opt = function None -> "null" | Some n -> string_of_int n in
  Printf.sprintf
    {|{ "seed": %d, "execs": %d, "found_exec": %s, "rehost_seed": %s }|}
    s.s_seed s.s_execs (opt s.s_exec) (opt s.s_rehost)

let pp_arm name samples =
  Fmt.pr "  %-26s %s@." name
    (String.concat "  "
       (List.map
          (fun s ->
            Printf.sprintf "seed %d: %s" s.s_seed
              (match s.s_exec with
              | Some e -> Printf.sprintf "found@%d" e
              | None -> "silent"))
          samples))

(* execs/s over a fixed budget, stop_when_all_found off so both arms do
   the same amount of work *)
let rate (cfg : Campaign.config) =
  let cfg = { cfg with max_execs = rate_execs; stop_when_all_found = false } in
  let t0 = Unix.gettimeofday () in
  let r = Campaign.run cfg in
  float_of_int r.Campaign.r_execs /. (Unix.gettimeofday () -. t0)

let run () =
  Fmt.pr "@.Model-free rehosting: injection A/B + throughput (mmio-suite, \
          %d execs/run)@."
    find_budget;
  let with_irq = List.map (run_arm ~irq:true) seeds in
  pp_arm "rehost + injection" with_irq;
  let without_irq = List.map (run_arm ~irq:false) seeds in
  pp_arm "rehost, no injection" without_irq;
  let guard_with = List.for_all found with_irq in
  let guard_without = List.for_all (fun s -> not (found s)) without_irq in
  let rehost_rate =
    rate
      {
        (Campaign.default_config Firmware_db.mmio_suite_fw) with
        sanitizers = Embsan.kasan_only;
        seed = 1;
        use_rehost = true;
        use_irq = true;
      }
  in
  let modeled_rate =
    rate
      {
        (Campaign.default_config
           (Option.get (Firmware_db.find "OpenHarmony-stm32f407")))
        with
        sanitizers = Embsan.kasan_only;
        seed = 1;
      }
  in
  let ratio = rehost_rate /. modeled_rate in
  let guard_rate = ratio >= min_rate_ratio in
  Fmt.pr "  guard found with injection on every seed : %s@."
    (if guard_with then "ok" else "VIOLATED");
  Fmt.pr "  guard never found without injection      : %s@."
    (if guard_without then "ok" else "VIOLATED");
  Fmt.pr
    "  throughput: rehosted %.0f execs/s, modeled %.0f execs/s (ratio %.3f, \
     floor %.3f): %s@."
    rehost_rate modeled_rate ratio min_rate_ratio
    (if guard_rate then "ok" else "VIOLATED");
  let arm_json samples =
    String.concat ",\n      " (List.map sample_json samples)
  in
  let json =
    Printf.sprintf
      {|{
  "schema": "embsan-rehost-bench/1",
  "firmware": "mmio-suite",
  "bug": "mmio-suite/irq_uaf",
  "execs_per_run": %d,
  "seeds": [%s],
  "injection_ab": {
    "with_injection": [
      %s
    ],
    "without_injection": [
      %s
    ]
  },
  "throughput": {
    "execs": %d,
    "rehosted_execs_per_s": %.1f,
    "modeled_execs_per_s": %.1f,
    "ratio": %.4f,
    "min_ratio": %.4f
  },
  "guards": {
    "found_with_injection_on_every_seed": %b,
    "never_found_without_injection": %b,
    "throughput_within_ratio": %b
  }
}
|}
      find_budget
      (String.concat ", " (List.map string_of_int seeds))
      (arm_json with_irq) (arm_json without_irq) rate_execs rehost_rate
      modeled_rate ratio min_rate_ratio guard_with guard_without guard_rate
  in
  let oc = open_out "BENCH_rehost.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "  wrote BENCH_rehost.json@.";
  if not (guard_with && guard_without && guard_rate) then begin
    Fmt.pr "  RATIO GUARD VIOLATED@.";
    exit 1
  end
