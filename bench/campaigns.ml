(* Tables 3 and 4: fuzzing campaigns over the eleven firmware images.

   The paper ran Syzkaller/Tardis for 7 days per firmware; here each
   campaign has a deterministic execution budget (scaled by --execs) and
   stops early once every registered bug is found.  Table 3 is the
   classification matrix, Table 4 the full bug list. *)

open Embsan_guest
open Embsan_fuzz
module Report = Embsan_core.Report

let results : (string, Campaign.result) Hashtbl.t = Hashtbl.create 16

(** Run (and memoize) the campaign for a firmware.  Campaigns run their
    full budget (no early stop): Table 3/4 only need the found set, but the
    overhead experiment replays the merged corpus, which must be
    representative. *)
let campaign ?(max_execs = 4000) ?(seed = 1) fw =
  match Hashtbl.find_opt results fw.Firmware_db.fw_name with
  | Some r -> r
  | None ->
      let cfg =
        {
          (Campaign.default_config fw) with
          max_execs;
          seed;
          stop_when_all_found = false;
        }
      in
      let r = Campaign.run cfg in
      Hashtbl.replace results fw.fw_name r;
      r

let run_all ?max_execs ?seed () =
  List.map (fun fw -> campaign ?max_execs ?seed fw) Firmware_db.all

let kind_of (f : Campaign.found) = f.f_bug.b_kind

let count_kind rs k = List.length (List.filter (fun f -> kind_of f = k) rs)

let print_table3 (rs : Campaign.result list) =
  Fmt.pr "@.Table 3: classification of new bugs found by EmbSan@.";
  Fmt.pr "%-22s %-10s %-4s %-12s %-5s@." "Firmware" "OOB Access" "UAF"
    "Double Free" "Race";
  Fmt.pr "%s@." (String.make 60 '-');
  let cell n = if n = 0 then "" else string_of_int n in
  let totals = Array.make 4 0 in
  List.iter
    (fun (r : Campaign.result) ->
      let oob = count_kind r.r_found Report.Oob_access
      and uaf = count_kind r.r_found Report.Use_after_free
      and df = count_kind r.r_found Report.Double_free
      and race = count_kind r.r_found Report.Data_race in
      totals.(0) <- totals.(0) + oob;
      totals.(1) <- totals.(1) + uaf;
      totals.(2) <- totals.(2) + df;
      totals.(3) <- totals.(3) + race;
      Fmt.pr "%-22s %-10s %-4s %-12s %-5s@." r.r_fw.fw_name (cell oob)
        (cell uaf) (cell df) (cell race))
    rs;
  Fmt.pr "%s@." (String.make 60 '-');
  let total = Array.fold_left ( + ) 0 totals in
  Fmt.pr "%-22s %-10d %-4d %-12d %-5d   total %d (paper: 41)@." "TOTAL"
    totals.(0) totals.(1) totals.(2) totals.(3) total;
  total

let print_table4 (rs : Campaign.result list) =
  Fmt.pr "@.Table 4: list of previously unknown bugs found by EmbSan@.";
  Fmt.pr "%-22s %-15s %-8s %-36s %-12s %s@." "Firmware" "Base OS" "Arch."
    "Location" "Bug Type" "(execs, confirmed)";
  Fmt.pr "%s@." (String.make 112 '-');
  let confirmed = ref 0 and total = ref 0 in
  List.iter
    (fun (r : Campaign.result) ->
      List.iter
        (fun (f : Campaign.found) ->
          incr total;
          if f.f_confirmed then incr confirmed;
          Fmt.pr "%-22s %-15s %-8s %-36s %-12s (%d, %s)@." r.r_fw.fw_name
            r.r_fw.fw_base_os
            (Embsan_isa.Arch.to_string r.r_fw.fw_arch)
            f.f_bug.b_paper_location
            (match f.f_bug.b_kind with
            | Report.Oob_access -> "OOB Access"
            | Use_after_free -> "UAF"
            | Double_free -> "Double Free"
            | Invalid_free -> "Invalid Free"
            | Null_deref -> "Null Deref"
            | Wild_access -> "Wild"
            | Data_race -> "Race"
            | Memory_leak -> "Leak"
            | Unaligned_access -> "Unaligned")
            f.f_exec
            (if f.f_confirmed then "yes" else "no"))
        (List.sort
           (fun (a : Campaign.found) b -> compare a.f_bug.b_id b.f_bug.b_id)
           r.r_found))
    rs;
  Fmt.pr "%s@." (String.make 112 '-');
  Fmt.pr "%d bugs, %d with confirmed reproducers@." !total !confirmed;
  (!total, !confirmed)

(* Section 4.2's soundness check: bugs found on firmware with native
   sanitizer support are replayed under the native implementations. *)
let print_native_replay (rs : Campaign.result list) =
  Fmt.pr "@.Native replay (S4.2): reproducers re-run under native sanitizers@.";
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun (r : Campaign.result) ->
      if r.r_fw.fw_source = Firmware_db.Open then
        List.iter
          (fun (f : Campaign.found) ->
            if f.f_confirmed then begin
              incr total;
              let config =
                match f.f_bug.b_kind with
                | Report.Data_race -> Replay.Native_kcsan
                | _ -> Replay.Native_kasan
              in
              let calls = Prog.to_reproducer f.f_prog in
              let reproduced =
                match Replay.run_reproducer r.r_fw config calls with
                | o -> Replay.detects f.f_bug o
                | exception Replay.Boot_failed _ -> false
              in
              if reproduced then incr ok;
              Fmt.pr "  %-34s under %-12s %s@." f.f_bug.b_id
                (Replay.config_name config)
                (if reproduced then "reproduced" else "NOT reproduced")
            end)
          r.r_found)
    rs;
  Fmt.pr "native replay: %d/%d reproduced@." !ok !total;
  (!ok, !total)
