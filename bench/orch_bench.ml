(* Orchestrator scaling bench: writes BENCH_orch.json (schema in
   README.md).

   Runs the same seeded, fixed-budget campaign (stop_when_all_found off,
   so every jobs level does identical per-worker work) at jobs = 1, 2, 4
   and reports two throughput figures per level:

   - execs_per_sec_wall: end-to-end wall-clock rate — honest but bound
     by how many hardware cores the host actually has;
   - aggregate_execs_per_sec: the sum of per-worker rates over each
     worker domain's own CPU time (CLOCK_THREAD_CPUTIME_ID), i.e. the
     fuzzing-literature "sum of per-core execs/sec".  This is the
     scaling capacity of the orchestrator itself, independent of host
     core count; on a host with >= jobs free cores the two converge.

   The headline speedup is computed on the aggregate figure;
   host_cores and per-run utilization (cpu/wall per worker) are in the
   JSON so wall-clock-limited environments are legible.  The bench also
   re-runs the jobs=1 configuration through Campaign.run and records
   whether the orchestrated unique-bug set matches — the determinism
   contract's acceptance check. *)

module Orch = Embsan_orch.Orch
module Campaign = Embsan_fuzz.Campaign
module Firmware_db = Embsan_guest.Firmware_db

let fw_name = "OpenHarmony-stm32f407" (* LiteOS RTOS image, cheap to boot *)
let default_execs = 800 (* per worker *)
let seed = 1
let epoch_execs = 100

type sample = {
  s_jobs : int;
  s_execs : int;
  s_wall_s : float;
  s_workers : Orch.worker_stat array;
  s_aggregate : float;
  s_unique_bugs : int;
  s_coverage : int;
  s_bug_ids : string list;
}

let campaign_cfg fw execs =
  {
    (Campaign.default_config fw) with
    max_execs = execs;
    seed;
    stop_when_all_found = false;
  }

let run_jobs fw execs jobs =
  let cfg =
    {
      (Orch.default_config ~jobs ~epoch_execs fw) with
      campaign = campaign_cfg fw execs;
      jobs;
    }
  in
  let r = Orch.run cfg in
  {
    s_jobs = jobs;
    s_execs = r.o_campaign.r_execs;
    s_wall_s = r.o_wall_s;
    s_workers = r.o_workers;
    s_aggregate = r.o_aggregate_rate;
    s_unique_bugs = List.length r.o_campaign.r_found;
    s_coverage = r.o_campaign.r_coverage;
    s_bug_ids =
      List.sort compare
        (List.map
           (fun (f : Campaign.found) -> f.f_bug.Embsan_guest.Defs.b_id)
           r.o_campaign.r_found);
  }

let worker_json (w : Orch.worker_stat) =
  Printf.sprintf
    {|{ "id": %d, "execs": %d, "crashes": %d, "corpus": %d, "coverage": %d, "cpu_secs": %.3f, "execs_per_sec": %.1f }|}
    w.w_id w.w_execs w.w_crashes w.w_corpus w.w_coverage w.w_cpu_s w.w_rate

let sample_json base s =
  let utilization =
    if s.s_wall_s > 0. then
      Array.fold_left (fun a (w : Orch.worker_stat) -> a +. w.w_cpu_s) 0.
        s.s_workers
      /. (s.s_wall_s *. float_of_int s.s_jobs)
    else 0.
  in
  Printf.sprintf
    {|{
      "jobs": %d,
      "execs": %d,
      "wall_secs": %.3f,
      "execs_per_sec_wall": %.1f,
      "aggregate_execs_per_sec": %.1f,
      "speedup_vs_jobs1": %.2f,
      "utilization": %.3f,
      "unique_bugs": %d,
      "merged_coverage": %d,
      "workers": [
        %s
      ]
    }|}
    s.s_jobs s.s_execs s.s_wall_s
    (if s.s_wall_s > 0. then float_of_int s.s_execs /. s.s_wall_s else 0.)
    s.s_aggregate
    (if base > 0. then s.s_aggregate /. base else 0.)
    utilization s.s_unique_bugs s.s_coverage
    (String.concat ",\n        "
       (Array.to_list (Array.map worker_json s.s_workers)))

let run ?(execs = default_execs) () =
  let fw = Option.get (Firmware_db.find fw_name) in
  Fmt.pr "@.Orchestrator scaling (%s, %d execs/worker, seed %d)@." fw_name
    execs seed;
  let sweep = List.map (run_jobs fw execs) [ 1; 2; 4 ] in
  let base =
    match sweep with s :: _ -> s.s_aggregate | [] -> assert false
  in
  List.iter
    (fun s ->
      Fmt.pr
        "  jobs %d: %5d execs in %6.2fs wall  (%7.1f e/s wall, %7.1f e/s \
         aggregate, %.2fx)@."
        s.s_jobs s.s_execs s.s_wall_s
        (float_of_int s.s_execs /. s.s_wall_s)
        s.s_aggregate
        (s.s_aggregate /. base))
    sweep;
  (* determinism acceptance: the orchestrated jobs=1 unique-bug set must
     equal Campaign.run's for the same config *)
  let direct = Campaign.run (campaign_cfg fw execs) in
  let direct_ids =
    List.sort compare
      (List.map
         (fun (f : Campaign.found) -> f.f_bug.Embsan_guest.Defs.b_id)
         direct.r_found)
  in
  let jobs1 = List.hd sweep in
  let equal = direct_ids = jobs1.s_bug_ids in
  Fmt.pr "  jobs=1 unique-bug set %s Campaign.run's (%d bugs)@."
    (if equal then "equals" else "DIFFERS FROM")
    (List.length direct_ids);
  let json =
    Printf.sprintf
      {|{
  "schema": "embsan-orch-bench/1",
  "firmware": "%s",
  "execs_per_worker": %d,
  "seed": %d,
  "epoch_execs": %d,
  "host_cores": %d,
  "thread_cputime": %b,
  "sweep": [
    %s
  ],
  "jobs1_equals_campaign_run": %b
}
|}
      fw_name execs seed epoch_execs
      (Domain.recommended_domain_count ())
      (Embsan_orch.Cputime.available ())
      (String.concat ",\n    " (List.map (sample_json base) sweep))
      equal
  in
  let oc = open_out "BENCH_orch.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "  wrote BENCH_orch.json@."
