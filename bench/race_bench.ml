(* Race-detection bench: writes BENCH_race.json (schema in README.md).

   Three axes, all on the race-suite firmware (three seeded data races
   between the syscall hart and a worker hart, plus synchronized
   counterparts that must stay silent — lib/guest/race_suite.ml):

   1. discovery curve: executions until first detection per seeded race,
      under ftrace with fuzzed schedules;
   2. detector A/B: KCSAN's sampled watchpoints vs ftrace's exhaustive
      happens-before tracking, same budget, both under fuzzed schedules;
   3. schedule A/B: fixed round-robin vs fuzzer-chosen interleavings,
      both under ftrace alone.  KCSAN is deliberately excluded from this
      axis: its watchpoint stall suspends the watched hart and is itself
      a schedule perturbation, which would contaminate the fixed arm.

   Ratio guards (process exits 1 when violated):
   - fuzzed schedules must find strictly MORE of the seeded races than
     the fixed rotation on every seed — the suite's starvation-window
     race is reachable only under interleavings round-robin never
     produces;
   - ftrace must find at least as many seeded races as KCSAN. *)

module Campaign = Embsan_fuzz.Campaign
module Embsan = Embsan_core.Embsan
module Firmware_db = Embsan_guest.Firmware_db

let execs_per_run = 300
let seeds = [ 1; 2; 3 ]

type sample = {
  s_seed : int;
  s_found : (string * int * int option) list; (* bug id, exec, sched seed *)
  s_execs : int;
}

let run_one ~sanitizers ~sched seed =
  let fw = Firmware_db.race_suite_fw in
  let cfg =
    {
      (Campaign.default_config fw) with
      sanitizers;
      max_execs = execs_per_run;
      seed;
      stop_when_all_found = false;
      use_sched = sched;
    }
  in
  let r = Campaign.run cfg in
  let found =
    List.sort_uniq compare
      (List.map
         (fun (f : Campaign.found) -> (f.f_bug.Embsan_guest.Defs.b_id, f.f_exec, f.f_sched))
         r.Campaign.r_found)
  in
  (* one row per bug: first detection only *)
  let seen = Hashtbl.create 4 in
  let found =
    List.filter
      (fun (id, _, _) ->
        if Hashtbl.mem seen id then false
        else begin
          Hashtbl.add seen id ();
          true
        end)
      (List.sort (fun (_, a, _) (_, b, _) -> compare a b) found)
  in
  { s_seed = seed; s_found = found; s_execs = r.Campaign.r_execs }

let races s = List.length s.s_found

let sample_json s =
  let row (id, exec, sched) =
    Printf.sprintf {|{ "bug": "%s", "exec": %d, "sched_seed": %s }|} id exec
      (match sched with None -> "null" | Some n -> string_of_int n)
  in
  Printf.sprintf {|{ "seed": %d, "execs": %d, "found": [%s] }|} s.s_seed
    s.s_execs
    (String.concat ", " (List.map row s.s_found))

let pp_arm name samples =
  Fmt.pr "  %-28s %s@." name
    (String.concat "  "
       (List.map
          (fun s -> Printf.sprintf "seed %d: %d/3" s.s_seed (races s))
          samples))

let run () =
  Fmt.pr "@.Race detection: ftrace + schedule fuzzing (race-suite, %d \
          execs/run)@."
    execs_per_run;
  let arm name ~sanitizers ~sched =
    let samples = List.map (run_one ~sanitizers ~sched) seeds in
    pp_arm name samples;
    samples
  in
  let fixed_ftrace =
    arm "ftrace, fixed round-robin" ~sanitizers:Embsan.ftrace_only ~sched:false
  in
  let fuzzed_ftrace =
    arm "ftrace, fuzzed schedules" ~sanitizers:Embsan.ftrace_only ~sched:true
  in
  let fuzzed_kcsan =
    arm "kcsan, fuzzed schedules" ~sanitizers:Embsan.kcsan_only ~sched:true
  in
  let guard_sched =
    List.for_all2 (fun fz fx -> races fz > races fx) fuzzed_ftrace fixed_ftrace
  in
  let guard_detector =
    List.for_all2 (fun ft kc -> races ft >= races kc) fuzzed_ftrace fuzzed_kcsan
  in
  Fmt.pr "  guard fuzzed > fixed   : %s@."
    (if guard_sched then "ok" else "VIOLATED");
  Fmt.pr "  guard ftrace >= kcsan  : %s@."
    (if guard_detector then "ok" else "VIOLATED");
  let arm_json samples =
    String.concat ",\n      " (List.map sample_json samples)
  in
  let json =
    Printf.sprintf
      {|{
  "schema": "embsan-race-bench/1",
  "firmware": "race-suite",
  "seeded_races": 3,
  "execs_per_run": %d,
  "seeds": [%s],
  "schedule_ab": {
    "sanitizer": "ftrace",
    "fixed": [
      %s
    ],
    "fuzzed": [
      %s
    ]
  },
  "detector_ab": {
    "schedules": "fuzzed",
    "ftrace": [
      %s
    ],
    "kcsan": [
      %s
    ]
  },
  "guards": {
    "fuzzed_schedules_find_strictly_more": %b,
    "ftrace_finds_at_least_kcsan": %b
  }
}
|}
      execs_per_run
      (String.concat ", " (List.map string_of_int seeds))
      (arm_json fixed_ftrace) (arm_json fuzzed_ftrace) (arm_json fuzzed_ftrace)
      (arm_json fuzzed_kcsan) guard_sched guard_detector
  in
  let oc = open_out "BENCH_race.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "  wrote BENCH_race.json@.";
  if not (guard_sched && guard_detector) then begin
    Fmt.pr "  RATIO GUARD VIOLATED@.";
    exit 1
  end
