(* Table 2: comparison of sanitizing capabilities on previously found bugs
   between EmbSan-C, EmbSan-D and (native) KASAN.

   The 25 syzbot bugs of the bug-suite firmware are replayed with their
   reproducers under the three sanitizer configurations.  The paper's
   result: every configuration catches every bug except the two global
   out-of-bounds bugs (fbcon_get_font, string), which EmbSan-D misses for
   lack of compile-time redzones. *)

open Embsan_guest
module Embsan = Embsan_core.Embsan

type row = {
  bug : Defs.bug;
  embsan_c : bool;
  embsan_d : bool;
  native_kasan : bool;
}

let detect config (bug : Defs.bug) =
  let fw = Firmware_db.syzbot_suite_fw in
  match Replay.run_reproducer fw config bug.b_syscalls with
  | outcome -> Replay.detects bug outcome
  | exception Replay.Boot_failed _ -> false

let run () =
  let fw = Firmware_db.syzbot_suite_fw in
  List.map
    (fun bug ->
      {
        bug;
        embsan_c = detect (Replay.Embsan_mode (Embsan.kasan_only, `C)) bug;
        embsan_d = detect (Replay.Embsan_mode (Embsan.kasan_only, `D)) bug;
        native_kasan = detect Replay.Native_kasan bug;
      })
    fw.fw_bugs

let kind_column (b : Defs.bug) =
  match b.b_kind with
  | Embsan_core.Report.Oob_access -> "Out-of-bounds"
  | Use_after_free -> "Use-after-free"
  | Double_free -> "Double-free"
  | Invalid_free -> "Invalid-free"
  | Null_deref -> "Null-pointer-deref"
  | Wild_access -> "Wild-access"
  | Data_race -> "Data-race"
  | Memory_leak -> "Memory-leak"
  | Unaligned_access -> "Unaligned-access"

let yn = function true -> "Yes" | false -> "No"

(* Expectation from the bug class: global/stack-redzone bugs are invisible
   to dynamic-only instrumentation. *)
let expected_d (b : Defs.bug) =
  match b.b_class with
  | Defs.Global_bug | Defs.Stack_bug -> false
  | Heap_bug | Null_bug | Race_bug -> true

let print rows =
  Fmt.pr "@.Table 2: sanitizing capabilities on previously found bugs@.";
  Fmt.pr "%-20s %-26s %-9s %-9s %-6s@." "Bug Type" "Location" "EmbSan-C"
    "EmbSan-D" "KASAN";
  Fmt.pr "%s@." (String.make 75 '-');
  List.iter
    (fun r ->
      Fmt.pr "%-20s %-26s %-9s %-9s %-6s@." (kind_column r.bug)
        r.bug.b_paper_location (yn r.embsan_c) (yn r.embsan_d)
        (yn r.native_kasan))
    rows;
  let total = List.length rows in
  let c_yes = List.length (List.filter (fun r -> r.embsan_c) rows) in
  let d_yes = List.length (List.filter (fun r -> r.embsan_d) rows) in
  let n_yes = List.length (List.filter (fun r -> r.native_kasan) rows) in
  let shape_ok =
    List.for_all
      (fun r ->
        r.embsan_c && r.native_kasan && r.embsan_d = expected_d r.bug)
      rows
  in
  Fmt.pr "%s@." (String.make 75 '-');
  Fmt.pr "detected: EmbSan-C %d/%d, EmbSan-D %d/%d, KASAN %d/%d@." c_yes total
    d_yes total n_yes total;
  Fmt.pr "paper shape (C and KASAN catch all; D misses only global OOB): %s@."
    (if shape_ok then "REPRODUCED" else "DEVIATION");
  shape_ok
