(* Ablation benches for the design choices called out in DESIGN.md:

   1. KCSAN sampling interval x stall window: race recall vs overhead;
   2. EmbSan-D heap-poison init routine (the Prober's heap discovery):
      slab OOB recall collapses without it;
   3. EmbSan-C hypercall fast path vs generic probe dispatch: overhead
      delta from the cost model over the measured callout counts;
   4. freed-block tracking (host quarantine) size: double-free
      classification quality under tracking pressure. *)

open Embsan_guest
module Embsan = Embsan_core.Embsan
module Report = Embsan_core.Report
module Runtime = Embsan_core.Runtime
module Kasan = Embsan_core.Kasan
module Shadow = Embsan_core.Shadow
module Machine = Embsan_emu.Machine
module Cost_model = Embsan_emu.Cost_model

let run_to_ready machine =
  match Machine.run_until_ready machine ~max_insns:30_000_000 with
  | None -> ()
  | Some s -> Fmt.failwith "boot failed: %a" Machine.pp_stop s

let push_calls machine calls =
  List.iter
    (fun (nr, args) ->
      Embsan_emu.Devices.mailbox_push machine.Machine.mailbox ~nr ~args;
      ignore (Machine.run_until_mailbox_idle machine ~max_insns:10_000_000))
    calls

(* --- 1. KCSAN interval x stall sweep ----------------------------------------- *)

let kcsan_sweep () =
  Fmt.pr "@.Ablation 1: KCSAN sampling interval x stall window (x86_64 race \
          workload)@.";
  Fmt.pr "%-10s %-8s %-14s %-10s@." "interval" "stall" "races found"
    "cost (rel)";
  let fw = List.nth Firmware_db.all 5 (* OpenWRT-x86_64 *) in
  let workload = List.concat (List.init 6 (fun i -> [ (11, [| i land 1; 7; 0 |]) ])) in
  let base_cost = ref None in
  List.iter
    (fun (interval, stall) ->
      let session = Replay.session_for fw Embsan.kcsan_only in
      let machine = Embsan.make_machine session in
      let rt =
        Embsan.attach ~kcsan_interval:interval ~kcsan_stall:stall session
          machine
      in
      run_to_ready machine;
      let c0 = Machine.total_cost machine in
      push_calls machine workload;
      let cost = Machine.total_cost machine - c0 in
      let races =
        List.length
          (List.filter
             (fun (r : Report.t) -> r.kind = Report.Data_race)
             (Runtime.reports rt))
      in
      let rel =
        match !base_cost with
        | None ->
            base_cost := Some cost;
            1.0
        | Some b -> float_of_int cost /. float_of_int b
      in
      Fmt.pr "%-10d %-8d %-14d %-10.2f@." interval stall races rel)
    [ (480, 300); (480, 1200); (120, 300); (120, 1200); (30, 1200) ]

(* --- 2. EmbSan-D heap-poison init on/off --------------------------------------- *)

let heap_poison_ablation () =
  Fmt.pr "@.Ablation 2: EmbSan-D heap-poison init routine (bcm63xx slab OOB)@.";
  let fw = List.nth Firmware_db.all 1 (* OpenWRT-bcm63xx *) in
  let oob_bugs =
    List.filter (fun (b : Defs.bug) -> b.b_kind = Report.Oob_access) fw.fw_bugs
  in
  let detect ~with_poison =
    let session = Replay.session_for fw Embsan.kasan_only in
    let spec =
      if with_poison then session.s_spec
      else
        {
          session.s_spec with
          Embsan_core.Dsl.init =
            List.filter
              (function Embsan_core.Dsl.Poison _ -> false | _ -> true)
              session.s_spec.init;
        }
    in
    List.length
      (List.filter
         (fun (b : Defs.bug) ->
           let machine = Embsan.make_machine session in
           let sink = Report.create_sink () in
           let _rt =
             Runtime.attach ~spec ~mode:Runtime.D ~image:session.s_image ~sink
               machine
           in
           run_to_ready machine;
           push_calls machine b.b_syscalls;
           List.exists
             (fun (r : Report.t) ->
               Defs.kind_matches b r.kind
               && match r.location with
                  | Some l -> List.mem l (Defs.bug_symbols b)
                  | None -> false)
             (Report.unique_reports sink))
         oob_bugs)
  in
  let with_p = detect ~with_poison:true in
  let without_p = detect ~with_poison:false in
  Fmt.pr "  slab OOB bugs detected with heap poison   : %d/%d@." with_p
    (List.length oob_bugs);
  Fmt.pr "  slab OOB bugs detected without heap poison: %d/%d@." without_p
    (List.length oob_bugs)

(* --- 3. hypercall fast path vs generic dispatch -------------------------------- *)

let fastpath_ablation () =
  Fmt.pr "@.Ablation 3: EmbSan-C hypercall fast path vs generic trap dispatch@.";
  let fw = List.hd Firmware_db.all (* OpenWRT-armvirt *) in
  let session = Replay.session_for ~forced_mode:`C fw Embsan.kasan_only in
  let machine = Embsan.make_machine session in
  let rt = Embsan.attach session machine in
  run_to_ready machine;
  let c0 = Machine.total_cost machine in
  let workload =
    List.concat_map (fun (b : Defs.bug) -> b.b_benign) fw.fw_bugs
  in
  push_calls machine workload;
  let fast_cost = Machine.total_cost machine - c0 in
  (* the generic path costs generic_trap_dispatch per callout instead *)
  let delta =
    rt.Runtime.callouts
    * (Cost_model.generic_trap_dispatch - Cost_model.embsan_c_hypercall)
  in
  let generic_cost = fast_cost + delta in
  Fmt.pr "  callouts: %d; fast-path cost %d; generic-dispatch cost %d \
          (+%.1f%%)@."
    rt.Runtime.callouts fast_cost generic_cost
    (100. *. float_of_int delta /. float_of_int fast_cost)

(* --- 4. freed-block tracking size ------------------------------------------------ *)

let quarantine_ablation () =
  Fmt.pr "@.Ablation 4: freed-block tracking size vs double-free \
          classification@.";
  Fmt.pr "%-12s %-22s@." "tracking" "second free reports as";
  List.iter
    (fun quarantine_max ->
      let sink = Report.create_sink () in
      let shadow = Shadow.create ~ram_base:0x10000 ~ram_size:0x10000 in
      let k =
        Kasan.create ~quarantine_max ~shadow ~sink ~symbolize:(fun _ -> None) ()
      in
      (* allocate+free 64 blocks, then free the first one again *)
      for i = 0 to 63 do
        Kasan.on_alloc k ~ptr:(0x10100 + (i * 64)) ~size:48 ~pc:i;
        Kasan.on_free k ~ptr:(0x10100 + (i * 64)) ~pc:(1000 + i) ~hart:0
      done;
      Kasan.on_free k ~ptr:0x10100 ~pc:9999 ~hart:0;
      let kind =
        match Report.unique_reports sink with
        | [ r ] -> Report.kind_name r.kind
        | l -> Fmt.str "%d reports" (List.length l)
      in
      Fmt.pr "%-12d %-22s@." quarantine_max kind)
    [ 4; 64; 512 ]

let run () =
  kcsan_sweep ();
  heap_poison_ablation ();
  fastpath_ablation ();
  quarantine_ablation ()
