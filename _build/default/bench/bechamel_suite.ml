(* Wall-clock micro-benchmarks (Bechamel), one per reproduced table/figure:
   these complement the deterministic cycle-model numbers with host-time
   measurements of the machinery itself. *)

open Bechamel
open Toolkit
open Embsan_guest
module Embsan = Embsan_core.Embsan

let syzbot_oob_bug =
  List.hd Firmware_db.syzbot_suite_fw.fw_bugs (* ringbuf_map_alloc *)

(* Table 1: firmware build + probing phase. *)
let test_table1_prepare =
  Test.make ~name:"table1/prepare_session (build+probe stm32mp1)"
    (Staged.stage (fun () ->
         let fw = List.nth Firmware_db.all 7 in
         ignore
           (Embsan.prepare ~sanitizers:Embsan.kasan_only
              ~firmware:(Firmware_db.embsan_firmware fw)
              ())))

(* Table 2: one reproducer replay under EmbSan-C. *)
let test_table2_replay =
  Test.make ~name:"table2/replay_reproducer (EmbSan-C)"
    (Staged.stage (fun () ->
         ignore
           (Replay.run_reproducer Firmware_db.syzbot_suite_fw
              (Replay.Embsan_mode (Embsan.kasan_only, `C))
              syzbot_oob_bug.b_syscalls)))

(* Tables 3/4: a short fuzzing burst. *)
let test_table3_fuzz =
  Test.make ~name:"table3/fuzz_40_execs (Tardis, LiteOS)"
    (Staged.stage (fun () ->
         let fw = List.nth Firmware_db.all 7 in
         let cfg =
           {
             (Embsan_fuzz.Campaign.default_config fw) with
             max_execs = 40;
             stop_when_all_found = false;
           }
         in
         ignore (Embsan_fuzz.Campaign.run cfg)))

(* Figure 2: raw emulator throughput (the denominator of every slowdown). *)
let test_fig2_throughput =
  let fw = List.hd Firmware_db.all in
  let inst = Replay.boot fw Replay.No_sanitizer in
  Test.make ~name:"fig2/emulator_100k_insns"
    (Staged.stage (fun () ->
         ignore (Embsan_emu.Machine.run inst.machine ~max_insns:100_000)))

let benchmark () =
  let tests =
    Test.make_grouped ~name:"embsan"
      [
        test_table1_prepare;
        test_table2_replay;
        test_table3_fuzz;
        test_fig2_throughput;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.8) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "@.Bechamel wall-clock (host time per run):@.";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "  %-45s %10.3f ms@." name (est /. 1e6)
      | Some _ | None -> Fmt.pr "  %-45s (no estimate)@." name)
    results

let run () =
  try benchmark ()
  with e ->
    Fmt.pr "bechamel suite failed: %s@." (Printexc.to_string e)
