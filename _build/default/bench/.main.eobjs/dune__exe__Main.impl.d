bench/main.ml: Ablation Array Bechamel_suite Campaigns Embsan_guest Firmware_db Fmt List Overhead String Sys Table2 Unix
