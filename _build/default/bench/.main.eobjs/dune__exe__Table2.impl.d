bench/table2.ml: Defs Embsan_core Embsan_guest Firmware_db Fmt List Replay String
