bench/campaigns.ml: Array Campaign Embsan_core Embsan_fuzz Embsan_guest Embsan_isa Firmware_db Fmt Hashtbl List Prog Replay String
