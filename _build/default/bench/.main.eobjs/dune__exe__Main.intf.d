bench/main.mli:
