bench/bechamel_suite.ml: Analyze Bechamel Benchmark Embsan_core Embsan_emu Embsan_fuzz Embsan_guest Firmware_db Fmt Hashtbl Instance List Measure Printexc Replay Staged Test Time Toolkit
