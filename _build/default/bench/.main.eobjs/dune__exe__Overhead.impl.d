bench/overhead.ml: Campaign Campaigns Embsan_core Embsan_fuzz Embsan_guest Firmware_db Fmt List Option Prog Replay String
