bench/ablation.ml: Defs Embsan_core Embsan_emu Embsan_guest Firmware_db Fmt List Replay
