(* Figure 2: runtime overhead of EmbSan vs native sanitizers.

   Replays each firmware's merged (clean) fuzzing corpus under seven
   configurations and reports modeled-cycle slowdowns relative to the
   uninstrumented run, grouped the way the figure subdivides them:
   instrumentation mode, base OS and architecture.  Absolute factors come
   from the documented cost model (see lib/emu/cost_model.ml); the *shape*
   - who is cheap, who is expensive, C vs D ordering - is the
   reproduction target. *)

open Embsan_guest
open Embsan_fuzz
module Embsan = Embsan_core.Embsan

type row = {
  o_fw : Firmware_db.firmware;
  o_progs : int;
  (* slowdowns; None = configuration impossible (closed source) *)
  c_kasan : float option;
  d_kasan : float option;
  n_kasan : float option;
  c_kcsan : float option;
  d_kcsan : float option;
  n_kcsan : float option;
}

let replay_cost fw corpus config =
  match Replay.boot fw config with
  | inst ->
      let calls = List.concat_map Prog.to_reproducer corpus in
      let o = Replay.replay inst calls in
      Some (float_of_int o.o_cost)
  | exception Replay.Boot_failed _ -> None

let measure ?max_execs fw =
  let r = Campaigns.campaign ?max_execs fw in
  let corpus = Campaign.clean_corpus fw r.r_corpus_progs in
  if List.length corpus < 3 then None
  else
  match replay_cost fw corpus Replay.No_sanitizer with
  | None -> None
  | Some base ->
      let slow config =
        Option.map (fun c -> c /. base) (replay_cost fw corpus config)
      in
      Some
        {
          o_fw = fw;
          o_progs = List.length corpus;
          c_kasan = slow (Replay.Embsan_mode (Embsan.kasan_only, `C));
          d_kasan = slow (Replay.Embsan_mode (Embsan.kasan_only, `D));
          n_kasan = slow Replay.Native_kasan;
          c_kcsan = slow (Replay.Embsan_mode (Embsan.kcsan_only, `C));
          d_kcsan = slow (Replay.Embsan_mode (Embsan.kcsan_only, `D));
          n_kcsan = slow Replay.Native_kcsan;
        }

let cell = function Some f -> Fmt.str "%5.2fx" f | None -> "   - "

let band rows pick =
  let vs = List.filter_map pick rows in
  match vs with
  | [] -> "-"
  | _ ->
      Fmt.str "%.1fx-%.1fx"
        (List.fold_left min infinity vs)
        (List.fold_left max 0. vs)

let print rows =
  Fmt.pr "@.Figure 2: runtime overhead (slowdown vs uninstrumented run)@.";
  Fmt.pr "%-22s %-6s| %-8s %-8s %-8s | %-8s %-8s %-8s@." "Firmware" "progs"
    "EmbSan-C" "EmbSan-D" "KASAN" "EmbSan-C" "EmbSan-D" "KCSAN";
  Fmt.pr "%-22s %-6s| %-26s | %-26s@." "" "" "  (KASAN functionality)"
    "  (KCSAN functionality)";
  Fmt.pr "%s@." (String.make 95 '-');
  List.iter
    (fun r ->
      Fmt.pr "%-22s %-6d| %-8s %-8s %-8s | %-8s %-8s %-8s@."
        r.o_fw.Firmware_db.fw_name r.o_progs (cell r.c_kasan) (cell r.d_kasan)
        (cell r.n_kasan) (cell r.c_kcsan) (cell r.d_kcsan) (cell r.n_kcsan))
    rows;
  Fmt.pr "%s@." (String.make 95 '-');
  let linux r = r.o_fw.Firmware_db.fw_base_os = "Embedded Linux" in
  let rtos r = not (linux r) in
  Fmt.pr "measured bands (paper's reported bands in parentheses):@.";
  Fmt.pr "  EmbSan-C KASAN, Linux : %-12s (2.2x-2.5x)@."
    (band (List.filter linux rows) (fun r -> r.c_kasan));
  Fmt.pr "  EmbSan-D KASAN, Linux : %-12s (2.7x-2.8x)@."
    (band (List.filter linux rows) (fun r -> r.d_kasan));
  Fmt.pr "  native KASAN,   Linux : %-12s (2.2x-2.7x)@."
    (band (List.filter linux rows) (fun r -> r.n_kasan));
  Fmt.pr "  EmbSan-C KCSAN        : %-12s (5.2x-5.7x)@."
    (band rows (fun r -> r.c_kcsan));
  Fmt.pr "  native KCSAN          : %-12s (5.4x-6.1x)@."
    (band rows (fun r -> r.n_kcsan));
  Fmt.pr "  EmbSan KASAN, RTOS    : %-12s (2.5x-3.2x)@."
    (band (List.filter rtos rows) (fun r -> r.d_kasan));
  (* the paper's qualitative claims *)
  let avg pick =
    let vs = List.filter_map pick rows in
    List.fold_left ( +. ) 0. vs /. float_of_int (max 1 (List.length vs))
  in
  let c = avg (fun r -> r.c_kasan)
  and d = avg (fun r -> r.d_kasan)
  and kc = avg (fun r -> r.c_kcsan)
  and nk = avg (fun r -> r.n_kcsan) in
  Fmt.pr "shape: EmbSan-C cheaper than EmbSan-D (KASAN): %s; KCSAN ~2-3x \
          KASAN's cost: %s@."
    (if c < d then "yes" else "NO")
    (if kc > 1.5 *. c && nk > 1.5 *. c then "yes" else "NO")

let run ?max_execs () =
  let rows = List.filter_map (fun fw -> measure ?max_execs fw) Firmware_db.all in
  print rows;
  rows
