(* End-to-end MiniC tests: compile with the driver, execute on the emulator,
   observe results through the halt code, traps and memory. *)

open Embsan_isa
open Embsan_emu
open Embsan_minic

let compile ?(mode = Codegen.Plain) ?(arch = Arch.Arm_ev) src =
  Driver.compile_string ~cfg:{ Driver.default_config with mode; arch } src

let run_image ?(harts = 2) ?(max_insns = 2_000_000) img =
  let m = Machine.create ~harts ~arch:img.Image.arch () in
  Machine.load_image m img;
  Machine.boot m;
  let stop = Machine.run m ~max_insns in
  (m, stop)

let run ?mode ?arch ?harts src = run_image ?harts (compile ?mode ?arch src)

let expect_halt ?mode ?arch ?harts ~code src =
  let _, stop = run ?mode ?arch ?harts src in
  match stop with
  | Machine.Halted c -> Alcotest.(check int) "halt code" code c
  | s -> Alcotest.failf "expected halt, got %a" Machine.pp_stop s

(* --- Basic semantics ---------------------------------------------------------- *)

let arithmetic () =
  expect_halt ~code:((7 * 6) + (100 / 5) - (17 mod 5))
    "fun kmain() { return 7 * 6 + 100 / 5 - 17 % 5; }"

let precedence () =
  expect_halt ~code:(2 + (3 * 4)) "fun kmain() { return 2 + 3 * 4; }";
  expect_halt ~code:((1 lsl 4) lor 2) "fun kmain() { return 1 << 4 | 2; }";
  expect_halt ~code:3 "fun kmain() { return 3 & 2 ^ 1 | 0; }"

let unsigned_semantics () =
  (* relational operators are unsigned: 0xFFFFFFFF > 1 *)
  expect_halt ~code:1 "fun kmain() { return 0xFFFFFFFF > 1; }";
  expect_halt ~code:1 "fun kmain() { return slt(0xFFFFFFFF, 1); }";
  expect_halt ~code:1 "fun kmain() { return slt(0 - 1, 1); }";
  expect_halt ~code:1 "fun kmain() { return sgt(5, 0 - 3); }";
  (* >> is logical *)
  expect_halt ~code:0x7FFFFFFF "fun kmain() { return 0xFFFFFFFE >> 1; }";
  (* / and % are unsigned *)
  expect_halt ~code:0x7FFFFFFF "fun kmain() { return 0xFFFFFFFE / 2; }"

let control_flow () =
  expect_halt ~code:55
    {|
fun kmain() {
  var sum = 0;
  var i = 1;
  while (i <= 10) { sum = sum + i; i = i + 1; }
  return sum;
}
|};
  expect_halt ~code:12
    {|
fun kmain() {
  var n = 0;
  var i = 0;
  while (1) {
    i = i + 1;
    if (i > 7) { break; }
    if (i % 2) { continue; }
    n = n + i;   // 2 + 4 + 6
  }
  return n;
}
|};
  expect_halt ~code:3
    {|
fun kmain() {
  var x = 10;
  if (x > 100) { return 1; }
  else { if (x > 5) { return 3; } else { return 2; } }
}
|}

let functions_and_recursion () =
  expect_halt ~code:120
    {|
fun fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
fun kmain() { return fact(5); }
|};
  expect_halt ~code:55
    {|
fun fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
fun kmain() { return fib(10); }
|};
  expect_halt ~code:(1 + 2 + 3 + 4)
    {|
fun sum4(a, b, c, d) { return a + b + c + d; }
fun kmain() { return sum4(1, 2, 3, 4); }
|}

let globals () =
  expect_halt ~code:10
    {|
var g = 3;
arr tab[4] = { 1, 2, 3 };
fun kmain() {
  g = g + 1;
  tab[3] = g;
  return tab[0] + tab[1] + tab[2] + tab[3];   // 1+2+3+4
}
|};
  expect_halt ~code:Char.(code 'e')
    {|
barr msg[] = "hello";
fun kmain() { return msg[1]; }
|};
  expect_halt ~code:6
    {|
barr buf[16];
fun kmain() {
  buf[0] = 1; buf[5] = 2; buf[15] = 3;
  return buf[0] + buf[5] + buf[15];
}
|}

let local_arrays_fixed () =
  expect_halt ~code:28
    {|
fun kmain() {
  arr a[8];
  barr b[8];
  var i = 0;
  while (i < 8) { a[i] = i; b[i] = i * 2; i = i + 1; }
  return a[7] + b[7] + a[3] + b[2];
}
|}

let pointers_and_raw_memory () =
  expect_halt ~code:0x44332211
    {|
barr buf[8];
fun kmain() {
  buf[0] = 0x11; buf[1] = 0x22; buf[2] = 0x33; buf[3] = 0x44;
  return load32(&buf);
}
|};
  expect_halt ~code:0xBEEF
    {|
arr cell[2];
fun kmain() {
  store16(&cell[1], 0xBEEF);
  return load16(&cell[1]);
}
|};
  expect_halt ~code:7
    {|
var x = 3;
fun bump(p, d) { store32(p, load32(p) + d); return 0; }
fun kmain() { bump(&x, 4); return x; }
|}

let short_circuit () =
  expect_halt ~code:1
    {|
var calls = 0;
fun side(v) { calls = calls + 1; return v; }
fun kmain() {
  var r = side(0) && side(1);   // second not evaluated
  if (calls != 1) { return 100; }
  r = side(1) || side(0);       // second not evaluated
  if (calls != 2) { return 101; }
  if (r != 1) { return 102; }
  return side(2) && side(3);    // both evaluated, nonzero -> 1
}
|}

let deep_expressions_spill () =
  (* forces the spill path: >5 live temporaries plus calls inside *)
  expect_halt ~code:((1 + 2) * (3 + 4) * ((5 + 6) * (7 + 8)) mod 256)
    {|
fun id(x) { return x; }
fun kmain() {
  var r = (id(1) + id(2)) * (id(3) + id(4)) * ((id(5) + id(6)) * (id(7) + id(8)));
  return r % 256;
}
|};
  expect_halt ~code:29
    {|
fun kmain() {
  var a = 1;
  return (((a + 1) + (a + 2)) + ((a + 3) + (a + 4))) +
         (((a + 0) + (a + 1)) + ((a + 2) + (a + 3))) +
         ((a + 1) + (a + 2));
}
|}

let builtins_trap () =
  let img =
    compile
      {|
fun kmain() { return trap2(40, 6, 7); }
|}
  in
  let m = Machine.create ~arch:Arch.Arm_ev () in
  Machine.load_image m img;
  Machine.boot m;
  Machine.set_trap_handler m 40 (fun _m cpu ->
      let a = Cpu.get cpu Reg.a0 and b = Cpu.get cpu Reg.a1 in
      Cpu.set cpu Reg.a0 (a * b));
  (match Machine.run m ~max_insns:100_000 with
  | Machine.Halted 42 -> ()
  | s -> Alcotest.failf "expected 42, got %a" Machine.pp_stop s)

let builtins_amo () =
  expect_halt ~code:5
    {|
var c = 5;
fun kmain() {
  var old = amo_add(&c, 3);   // old = 5, c = 8
  if (c != 8) { return 100; }
  var prev = amo_swap(&c, 1); // prev = 8, c = 1
  if (prev != 8) { return 101; }
  return old;
}
|}

let halt_builtin () = expect_halt ~code:9 "fun kmain() { halt(9); return 0; }"

let comments_and_chars () =
  expect_halt ~code:(Char.code 'A' + 1)
    {|
// line comment
/* block
   comment */
fun kmain() { return 'A' + 1; }
|}

let multi_arch_same_behavior () =
  List.iter
    (fun arch ->
      expect_halt ~arch ~code:99
        "fun f(x) { return x * 9; } fun kmain() { return f(11); }")
    Arch.all

(* --- Error cases --------------------------------------------------------------- *)

let expect_semantic_error src =
  match compile src with
  | _ -> Alcotest.fail "expected semantic error"
  | exception Check.Semantic_error _ -> ()

let expect_parse_error src =
  match compile src with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Parse_error _ -> ()

let semantic_errors () =
  expect_semantic_error "fun kmain() { return x; }";
  expect_semantic_error "fun kmain() { return f(1); }";
  expect_semantic_error "fun f(a, a) { return 0; } fun kmain() { return 0; }";
  expect_semantic_error "fun kmain() { break; }";
  expect_semantic_error "var g = 1; fun kmain() { return g[0]; }";
  expect_semantic_error "arr a[4]; fun kmain() { a = 3; return 0; }";
  expect_semantic_error "fun f(x) { return x; } fun kmain() { return f(1, 2); }";
  expect_semantic_error "fun kmain() { var n = 3; return trap1(n, 1); }";
  expect_semantic_error "var dup = 1; var dup = 2; fun kmain() { return 0; }"

let parse_errors () =
  expect_parse_error "fun kmain() { return 1 + ; }";
  expect_parse_error "fun kmain( { return 0; }";
  expect_parse_error "fun kmain() { if 1 { return 0; } }";
  expect_parse_error "fun kmain() { return 0caf; }"

(* --- Instrumented modes --------------------------------------------------------- *)

(* Count trap callouts under EmbSan-C instrumentation.  Locals live in
   memory in this compiler, so local reads/writes are instrumented too:
   data[2]=7 -> 1 store; var x = data[2] -> 1 array load + 1 local store;
   return x -> 1 local load. *)
let trap_mode_callouts () =
  let img =
    compile ~mode:Codegen.Trap_callout
      {|
arr data[8];
fun kmain() {
  data[2] = 7;
  var x = data[2];
  return x;
}
|}
  in
  let m = Machine.create ~arch:Arch.Arm_ev () in
  Machine.load_image m img;
  Machine.boot m;
  let loads = ref 0 and stores = ref 0 and others = ref 0 in
  List.iter
    (fun n ->
      Machine.set_trap_handler m n (fun _ _ ->
          match Embsan_emu.Hypercall.decode_check n with
          | Some (false, _) -> incr loads
          | Some (true, _) -> incr stores
          | None -> assert false))
    [ 16; 17; 18; 19; 20; 21 ];
  List.iter
    (fun n -> Machine.set_trap_handler m n (fun _ _ -> incr others))
    [
      Embsan_emu.Hypercall.san_global;
      Embsan_emu.Hypercall.san_stack_poison;
      Embsan_emu.Hypercall.san_stack_unpoison;
      Embsan_emu.Hypercall.san_alloc;
      Embsan_emu.Hypercall.san_free;
    ];
  (match Machine.run m ~max_insns:100_000 with
  | Machine.Halted 7 -> ()
  | s -> Alcotest.failf "unexpected stop %a" Machine.pp_stop s);
  Alcotest.(check int) "two load callouts" 2 !loads;
  Alcotest.(check int) "two store callouts" 2 !stores;
  Alcotest.(check bool) "global registered" true (!others >= 1)

(* Native KASAN baseline: global out-of-bounds write hits the redzone and
   reports through the kasan_report hypercall. *)
let inline_kasan_global_oob () =
  let img =
    compile ~mode:Codegen.Inline_kasan
      {|
arr small[4];
fun poke(i, v) { small[i] = v; return 0; }
fun kmain() {
  poke(0, 1);
  poke(3, 1);    // in bounds: no report
  poke(4, 1);    // one past the end: redzone
  return 0;
}
|}
  in
  let m = Machine.create ~arch:Arch.Arm_ev () in
  Machine.load_image m img;
  Machine.boot m;
  let reports = ref [] in
  Machine.set_trap_handler m Embsan_emu.Hypercall.kasan_report (fun _m cpu ->
      reports := (Cpu.get cpu Reg.a0, Cpu.get cpu Reg.a1) :: !reports);
  (match Machine.run m ~max_insns:1_000_000 with
  | Machine.Halted 0 -> ()
  | s -> Alcotest.failf "unexpected stop %a" Machine.pp_stop s);
  match !reports with
  | [ (addr, info) ] ->
      let img_sym = Image.symbol_addr_exn img "small" in
      Alcotest.(check int) "fault addr" (img_sym + 16) addr;
      Alcotest.(check int) "size 4, write" (4 lor 0x100) info
  | l -> Alcotest.failf "expected exactly 1 report, got %d" (List.length l)

let inline_kasan_stack_oob () =
  let img =
    compile ~mode:Codegen.Inline_kasan
      {|
fun scribble(n) {
  barr buf[8];
  var i = 0;
  while (i < n) { buf[i] = 0xAA; i = i + 1; }
  return 0;
}
fun kmain() {
  scribble(8);    // fine
  scribble(9);    // one past the end -> stack redzone
  return 0;
}
|}
  in
  let m = Machine.create ~arch:Arch.Arm_ev () in
  Machine.load_image m img;
  Machine.boot m;
  let reports = ref 0 in
  Machine.set_trap_handler m Embsan_emu.Hypercall.kasan_report (fun _ _ ->
      incr reports);
  (match Machine.run m ~max_insns:1_000_000 with
  | Machine.Halted 0 -> ()
  | s -> Alcotest.failf "unexpected stop %a" Machine.pp_stop s);
  Alcotest.(check int) "one stack OOB report" 1 !reports

let inline_kasan_no_false_positives () =
  let img =
    compile ~mode:Codegen.Inline_kasan
      {|
arr a[16];
barr b[33];
fun kmain() {
  var i = 0;
  while (i < 16) { a[i] = i; i = i + 1; }
  i = 0;
  while (i < 33) { b[i] = i; i = i + 1; }
  var s = 0;
  i = 0;
  while (i < 16) { s = s + a[i]; i = i + 1; }
  i = 0;
  while (i < 33) { s = s + b[i]; i = i + 1; }
  return s % 251;
}
|}
  in
  let m = Machine.create ~arch:Arch.Arm_ev () in
  Machine.load_image m img;
  Machine.boot m;
  let reports = ref 0 in
  Machine.set_trap_handler m Embsan_emu.Hypercall.kasan_report (fun _ _ ->
      incr reports);
  (match Machine.run m ~max_insns:2_000_000 with
  | Machine.Halted _ -> ()
  | s -> Alcotest.failf "unexpected stop %a" Machine.pp_stop s);
  Alcotest.(check int) "no reports" 0 !reports

(* Instrumentation must add cost: same program, plain vs trap mode. *)
let instrumentation_overhead_visible () =
  let src =
    {|
barr buf[64];
fun kmain() {
  var i = 0;
  while (i < 1000) { buf[i % 64] = i; i = i + 1; }
  return 0;
}
|}
  in
  let run_cost mode =
    let m, stop = run ~mode src in
    (match stop with
    | Machine.Halted _ | Machine.Unhandled_trap _ -> ()
    | s -> Alcotest.failf "unexpected stop %a" Machine.pp_stop s);
    Machine.total_cost m
  in
  let plain = run_cost Codegen.Plain in
  let kasan = run_cost Codegen.Inline_kasan in
  Alcotest.(check bool) "kasan costs more" true (kasan > plain)

let indirect_calls () =
  expect_halt ~code:624
    {|
arr table[4];
fun add3(a, b, c) { return a + b + c; }
fun mul3(a, b, c) { return a * b * c; }
fun kmain() {
  table[0] = &add3;
  table[1] = &mul3;
  var r1 = icall3(table[0], 1, 2, 3);
  var r2 = icall3(table[1], 2, 3, 4);
  return r1 * 100 + r2;
}
|}

let kcov_callouts () =
  let cfg =
    { Embsan_minic.Driver.default_config with kcov = true }
  in
  let img =
    Embsan_minic.Driver.compile_string ~cfg
      {|
fun branchy(x) {
  if (x > 2) { return 1; }
  else { return 2; }
}
fun kmain() {
  var n = 0;
  var i = 0;
  while (i < 4) { n = n + branchy(i); i = i + 1; }
  return n;
}
|}
  in
  let m = Machine.create ~arch:Arch.Arm_ev () in
  Machine.load_image m img;
  Machine.boot m;
  let pcs = ref [] in
  Machine.set_trap_handler m Embsan_emu.Hypercall.kcov (fun _m cpu ->
      pcs := Cpu.get cpu Reg.a0 :: !pcs);
  (match Machine.run m ~max_insns:100_000 with
  | Machine.Halted 7 -> () (* 2+2+2+1 *)
  | s -> Alcotest.failf "stop %a" Machine.pp_stop s);
  (* function entries + loop head + both branch sides covered *)
  Alcotest.(check bool) "many kcov sites" true (List.length !pcs > 8);
  Alcotest.(check bool) "distinct pcs" true
    (List.length (List.sort_uniq compare !pcs) >= 5)

let native_kcsan_build_runs () =
  (* the inline fast path + slow path must at least execute cleanly *)
  expect_halt ~mode:Codegen.Inline_kcsan ~code:55
    {|
var acc = 0;
fun kmain() {
  var i = 1;
  while (i <= 10) { acc = acc + i; i = i + 1; }
  return acc;
}
|}

let nosan_not_instrumented () =
  (* a nosan function under trap mode emits no check callouts *)
  let img =
    compile ~mode:Codegen.Trap_callout
      {|
nosan fun quiet(p) { return load32(p); }
fun kmain() { return quiet(&marker) & 0xFF; }
var marker = 0x2A;
|}
  in
  let m = Machine.create ~arch:Arch.Arm_ev () in
  Machine.load_image m img;
  Machine.boot m;
  let callouts = ref 0 in
  List.iter
    (fun n -> Machine.set_trap_handler m n (fun _ _ -> incr callouts))
    [ 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ];
  (match Machine.run m ~max_insns:100_000 with
  | Machine.Halted 0x2A -> ()
  | s -> Alcotest.failf "stop %a" Machine.pp_stop s);
  (* kmain's own local/return accesses still trap, but quiet's raw load
     must not: probe by running quiet's body alone being callout-free is
     impractical here, so assert the total is low (kmain-only) *)
  Alcotest.(check bool) "few callouts" true (!callouts <= 4)

let () =
  Alcotest.run "embsan_minic"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick arithmetic;
          Alcotest.test_case "precedence" `Quick precedence;
          Alcotest.test_case "unsigned ops" `Quick unsigned_semantics;
          Alcotest.test_case "control flow" `Quick control_flow;
          Alcotest.test_case "functions/recursion" `Quick functions_and_recursion;
          Alcotest.test_case "globals" `Quick globals;
          Alcotest.test_case "local arrays" `Quick local_arrays_fixed;
          Alcotest.test_case "pointers/raw memory" `Quick pointers_and_raw_memory;
          Alcotest.test_case "short circuit" `Quick short_circuit;
          Alcotest.test_case "spill-heavy expressions" `Quick deep_expressions_spill;
          Alcotest.test_case "chars and comments" `Quick comments_and_chars;
          Alcotest.test_case "same behavior on all arches" `Quick
            multi_arch_same_behavior;
        ] );
      ( "builtins",
        [
          Alcotest.test_case "trap" `Quick builtins_trap;
          Alcotest.test_case "atomics" `Quick builtins_amo;
          Alcotest.test_case "halt" `Quick halt_builtin;
        ] );
      ( "extended",
        [
          Alcotest.test_case "indirect calls (icall3)" `Quick indirect_calls;
          Alcotest.test_case "kcov callouts" `Quick kcov_callouts;
          Alcotest.test_case "native kcsan build runs" `Quick
            native_kcsan_build_runs;
          Alcotest.test_case "nosan skips instrumentation" `Quick
            nosan_not_instrumented;
        ] );
      ( "errors",
        [
          Alcotest.test_case "semantic" `Quick semantic_errors;
          Alcotest.test_case "parse" `Quick parse_errors;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "trap callouts" `Quick trap_mode_callouts;
          Alcotest.test_case "native kasan: global OOB" `Quick
            inline_kasan_global_oob;
          Alcotest.test_case "native kasan: stack OOB" `Quick
            inline_kasan_stack_oob;
          Alcotest.test_case "native kasan: clean run" `Quick
            inline_kasan_no_false_positives;
          Alcotest.test_case "overhead visible" `Quick
            instrumentation_overhead_visible;
        ] );
    ]
