(* Tests for the EVA-32 ISA: codec round-trips across the three architecture
   flavors, assembler layout and label resolution, image serialization. *)

open Embsan_isa

module Astring_lite = struct
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i =
      i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
    in
    go 0
end

let sample_insns : Insn.t list =
  [
    Nop;
    Halt;
    Fence;
    Li (Reg.a0, 0xDEADBEEF);
    Li (Reg.t4, 0);
    Alu (Add, Reg.a0, Reg.a1, Reg.a2);
    Alu (Sltu, Reg.t0, Reg.s3, Reg.zero);
    Alui (Xor, Reg.s0, Reg.s1, -5);
    Alui (Shl, Reg.t1, Reg.t2, 31);
    Load (W8, true, Reg.a0, Reg.sp, -4);
    Load (W8, false, Reg.a1, Reg.sp, 0);
    Load (W16, true, Reg.a2, Reg.t0, 2);
    Load (W16, false, Reg.a3, Reg.t1, 0x7FFF);
    Load (W32, false, Reg.t3, Reg.s2, 1024);
    Store (W8, Reg.sp, Reg.a0, -1);
    Store (W16, Reg.t0, Reg.a1, 2);
    Store (W32, Reg.s0, Reg.ra, 0);
    Branch (Eq, Reg.a0, Reg.a1, 64);
    Branch (Ne, Reg.a0, Reg.zero, -64);
    Branch (Lt, Reg.t0, Reg.t1, 8);
    Branch (Ltu, Reg.t0, Reg.t1, 8);
    Branch (Ge, Reg.t0, Reg.t1, -8);
    Branch (Geu, Reg.t0, Reg.t1, 16);
    Jal (Reg.ra, 256);
    Jal (Reg.zero, -256);
    Jalr (Reg.zero, Reg.ra, 0);
    Jalr (Reg.ra, Reg.t0, 12);
    Trap 42;
    Amo (Amo_add, Reg.a0, Reg.t0, Reg.a1);
    Amo (Amo_swap, Reg.a0, Reg.t0, Reg.a1);
  ]

let roundtrip_arch arch () =
  List.iter
    (fun insn ->
      let encoded = Codec.encode arch insn in
      Alcotest.(check int) "size" Insn.size (String.length encoded);
      let decoded = Codec.decode arch ~addr:0 encoded 0 in
      Alcotest.(check string)
        (Disasm.to_string insn)
        (Disasm.to_string insn) (Disasm.to_string decoded))
    sample_insns

let encodings_differ () =
  let insn = Insn.Li (Reg.a0, 0x11223344) in
  let e_arm = Codec.encode Arch.Arm_ev insn in
  let e_mips = Codec.encode Arch.Mips_ev insn in
  let e_x86 = Codec.encode Arch.X86_ev insn in
  Alcotest.(check bool) "arm<>mips" true (e_arm <> e_mips);
  Alcotest.(check bool) "arm<>x86" true (e_arm <> e_x86);
  (* mips immediates are big-endian *)
  Alcotest.(check int) "mips imm msb first" 0x11 (Char.code e_mips.[4]);
  Alcotest.(check int) "arm imm lsb first" 0x44 (Char.code e_arm.[4])

let zero_opcode_invalid () =
  List.iter
    (fun arch ->
      match Codec.decode arch ~addr:0 (String.make 8 '\000') 0 with
      | _ -> Alcotest.fail "expected decode error"
      | exception Codec.Decode_error _ -> ())
    Arch.all

let word32_tests () =
  Alcotest.(check int) "wrap" 0 (Word32.wrap 0x1_0000_0000);
  Alcotest.(check int) "signed" (-1) (Word32.signed 0xFFFF_FFFF);
  Alcotest.(check int) "sub underflow" 0xFFFF_FFFF (Word32.sub 0 1);
  Alcotest.(check int) "sext8" 0xFFFF_FF80 (Word32.sext 0x80 8);
  Alcotest.(check int) "zext8" 0x80 (Word32.zext 0xF80 8);
  Alcotest.(check int) "divu by zero" 0xFFFF_FFFF (Word32.divu 5 0);
  Alcotest.(check int) "remu by zero" 5 (Word32.remu 5 0);
  Alcotest.(check bool) "lt_s" true (Word32.lt_s 0xFFFF_FFFF 0);
  Alcotest.(check bool) "lt_u" false (Word32.lt_u 0xFFFF_FFFF 0);
  Alcotest.(check int) "shrs" 0xFFFF_FFFF (Word32.shrs 0x8000_0000 31)

let qcheck_roundtrip =
  let open QCheck2 in
  let gen_reg = Gen.map Reg.of_int (Gen.int_range 0 15) in
  let gen_imm = Gen.map Word32.wrap (Gen.int_range 0 0xFFFFFFF) in
  let gen_simm = Gen.int_range (-1000000) 1000000 in
  let gen_insn =
    Gen.oneof
      [
        Gen.map2 (fun r i -> Insn.Li (r, i)) gen_reg gen_imm;
        Gen.map3 (fun a b c -> Insn.Alu (Add, a, b, c)) gen_reg gen_reg gen_reg;
        Gen.map3 (fun a b i -> Insn.Alui (Sub, a, b, i)) gen_reg gen_reg gen_simm;
        Gen.map3
          (fun a b i -> Insn.Load (W32, false, a, b, i))
          gen_reg gen_reg gen_simm;
        Gen.map3 (fun a b i -> Insn.Store (W16, a, b, i)) gen_reg gen_reg gen_simm;
        Gen.map3 (fun a b i -> Insn.Branch (Ltu, a, b, i * 8)) gen_reg gen_reg
          (Gen.int_range (-1000) 1000);
        Gen.map (fun n -> Insn.Trap (n land 0xFFFF)) Gen.nat;
      ]
  in
  Test.make ~name:"codec round-trip (random insns, all arches)" ~count:500
    (Gen.pair (Gen.oneofl Arch.all) gen_insn) (fun (arch, insn) ->
      let d = Codec.decode arch ~addr:0 (Codec.encode arch insn) 0 in
      Disasm.to_string d = Disasm.to_string insn)

(* --- Assembler ------------------------------------------------------------- *)

let asm_simple_image () =
  let open Asm in
  let u =
    {
      unit_name = "u";
      text =
        [
          Label "start";
          li Reg.a0 7;
          call "double";
          j "end";
          Label "double";
          Ins (Alu (Add, Reg.a0, Reg.a0, Reg.a0));
          ret;
          Label "end";
          halt;
        ];
      data = [ Label "message"; Bytes "hi\000"; Align 4; Label "counter"; Words [ 99 ] ];
    }
  in
  let img = assemble ~arch:Arch.Arm_ev ~text_base:0x2_0000 ~entry:"start" [ u ] in
  Alcotest.(check int) "entry" 0x2_0000 img.entry;
  let start = Image.symbol_addr_exn img "start" in
  let double = Image.symbol_addr_exn img "double" in
  Alcotest.(check int) "start" 0x2_0000 start;
  Alcotest.(check int) "double" (0x2_0000 + 24) double;
  let counter = Image.find_symbol img "counter" |> Option.get in
  Alcotest.(check bool) "counter in data" true (counter.addr > double);
  (* check the call instruction encodes the right relative offset *)
  let text = Option.get (Image.section img "text") in
  match Codec.decode img.arch ~addr:(start + 8) text.data 8 with
  | Jal (rd, off) ->
      Alcotest.(check string) "rd=ra" "ra" (Reg.name rd);
      Alcotest.(check int) "offset" (double - (start + 8)) off
  | other -> Alcotest.failf "expected jal, got %s" (Disasm.to_string other)

let asm_duplicate_label () =
  let open Asm in
  let u = { unit_name = "u"; text = [ Label "x"; Label "x" ]; data = [] } in
  match assemble ~arch:Arch.Arm_ev ~text_base:0 ~entry:"x" [ u ] with
  | _ -> Alcotest.fail "expected duplicate label error"
  | exception Asm_error _ -> ()

let asm_undefined_label () =
  let open Asm in
  let u = { unit_name = "u"; text = [ Label "go"; j "nowhere" ]; data = [] } in
  match assemble ~arch:Arch.Arm_ev ~text_base:0 ~entry:"go" [ u ] with
  | _ -> Alcotest.fail "expected undefined label error"
  | exception Asm_error _ -> ()

let asm_multi_unit_layout () =
  let open Asm in
  let u1 = { unit_name = "a"; text = [ Label "f1"; ret ]; data = [ Label "d1"; Words [ 1 ] ] } in
  let u2 = { unit_name = "b"; text = [ Label "f2"; ret ]; data = [ Label "d2"; Words [ 2 ] ] } in
  let img = assemble ~arch:Arch.Mips_ev ~text_base:0x1_0000 ~entry:"f1" [ u1; u2 ] in
  let f1 = Image.symbol_addr_exn img "f1"
  and f2 = Image.symbol_addr_exn img "f2"
  and d1 = Image.symbol_addr_exn img "d1"
  and d2 = Image.symbol_addr_exn img "d2" in
  Alcotest.(check bool) "text order" true (f1 < f2);
  Alcotest.(check bool) "data after text" true (d1 > f2);
  Alcotest.(check bool) "data order" true (d1 < d2)

let asm_align () =
  let open Asm in
  let u =
    { unit_name = "u"; text = [ Label "e"; halt ]; data = [ Bytes "abc"; Align 8; Label "al"; Words [ 5 ] ] }
  in
  let img = assemble ~arch:Arch.X86_ev ~text_base:0x1000 ~entry:"e" [ u ] in
  let al = Image.symbol_addr_exn img "al" in
  Alcotest.(check int) "aligned" 0 (al mod 8)

(* --- Image ------------------------------------------------------------------ *)

let image_roundtrip () =
  let open Asm in
  let u =
    {
      unit_name = "u";
      text = [ Label "main"; li Reg.a0 1; halt ];
      data = [ Label "glob"; Words [ 0xCAFE ] ];
    }
  in
  let img = assemble ~arch:Arch.Mips_ev ~text_base:0x4_0000 ~entry:"main" [ u ] in
  let blob = Image.serialize img in
  let img2 = Image.parse blob in
  Alcotest.(check int) "entry" img.entry img2.entry;
  Alcotest.(check int) "nsyms" (List.length img.symbols) (List.length img2.symbols);
  Alcotest.(check int) "glob addr" (Image.symbol_addr_exn img "glob")
    (Image.symbol_addr_exn img2 "glob");
  let t1 = Option.get (Image.section img "text")
  and t2 = Option.get (Image.section img2 "text") in
  Alcotest.(check string) "text bytes" t1.data t2.data

let image_strip () =
  let open Asm in
  let u = { unit_name = "u"; text = [ Label "main"; halt ]; data = [] } in
  let img = assemble ~arch:Arch.Arm_ev ~text_base:0x1000 ~entry:"main" [ u ] in
  let stripped = Image.strip img in
  Alcotest.(check bool) "stripped" true (Image.is_stripped stripped);
  Alcotest.(check bool) "original kept" false (Image.is_stripped img);
  (* round-trips preserve strippedness *)
  let back = Image.parse (Image.serialize stripped) in
  Alcotest.(check bool) "roundtrip stripped" true (Image.is_stripped back)

let image_symbol_at () =
  let open Asm in
  let u =
    { unit_name = "u"; text = [ Label "f"; Ins Nop; Ins Nop; Label "g"; halt ]; data = [] }
  in
  let img = assemble ~arch:Arch.Arm_ev ~text_base:0 ~entry:"f" [ u ] in
  let sym_at a = Option.map (fun (s : Image.symbol) -> s.name) (Image.symbol_at img a) in
  Alcotest.(check (option string)) "at f" (Some "f") (sym_at 0);
  Alcotest.(check (option string)) "inside f" (Some "f") (sym_at 8);
  Alcotest.(check (option string)) "at g" (Some "g") (sym_at 16);
  Alcotest.(check (option string)) "beyond" None (sym_at 4096)

let bad_image_rejected () =
  (match Image.parse "XXXX" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Image.Parse_error _ -> ());
  match Image.parse "EVAF" with
  | _ -> Alcotest.fail "expected parse error on truncation"
  | exception Image.Parse_error _ -> ()

(* --- Disassembler ------------------------------------------------------------ *)

let disasm_strings () =
  let checks =
    [
      (Insn.Li (Reg.a0, 0xBEEF), "li a0, 0x0000beef");
      (Insn.Alu (Add, Reg.t0, Reg.t1, Reg.t2), "add t0, t1, t2");
      (Insn.Load (W8, false, Reg.a1, Reg.sp, -4), "lbu a1, -4(sp)");
      (Insn.Store (W16, Reg.s0, Reg.a2, 8), "sh a2, 8(s0)");
      (Insn.Branch (Ltu, Reg.t0, Reg.t1, -16), "bltu t0, t1, -16");
      (Insn.Jalr (Reg.zero, Reg.ra, 0), "jalr zero, 0(ra)");
      (Insn.Trap 21, "trap 21");
      (Insn.Amo (Amo_add, Reg.a0, Reg.t0, Reg.a1), "amo.add a0, a1, (t0)");
    ]
  in
  List.iter
    (fun (insn, expect) ->
      Alcotest.(check string) expect expect (Disasm.to_string insn))
    checks

let disasm_listing_symbols () =
  let open Asm in
  let u =
    {
      unit_name = "u";
      text = [ Label "main"; li Reg.a0 1; Label "stop"; halt ];
      data = [];
    }
  in
  let img = assemble ~arch:Arch.X86_ev ~text_base:0x1000 ~entry:"main" [ u ] in
  let listing =
    Disasm.section_listing img (Option.get (Image.section img "text"))
  in
  Alcotest.(check bool) "main label shown" true
    (String.length listing > 0
    && Astring_lite.contains listing "main:"
    && Astring_lite.contains listing "stop:"
    && Astring_lite.contains listing "halt")

let word32_qcheck =
  let open QCheck2 in
  Test.make ~name:"sext o zext of low bits is identity on signed view"
    ~count:300
    Gen.(pair (int_range 0 0xFFFF) (int_range 9 31))
    (fun (v, bits) ->
      let s = Word32.sext v bits in
      Word32.zext s bits = Word32.zext v bits)

let () =
  Alcotest.run "embsan_isa"
    [
      ( "word32",
        [ Alcotest.test_case "arithmetic/extension" `Quick word32_tests ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip arm-ev" `Quick (roundtrip_arch Arch.Arm_ev);
          Alcotest.test_case "roundtrip mips-ev" `Quick (roundtrip_arch Arch.Mips_ev);
          Alcotest.test_case "roundtrip x86-ev" `Quick (roundtrip_arch Arch.X86_ev);
          Alcotest.test_case "flavors differ" `Quick encodings_differ;
          Alcotest.test_case "zero opcode invalid" `Quick zero_opcode_invalid;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
      ( "asm",
        [
          Alcotest.test_case "simple image" `Quick asm_simple_image;
          Alcotest.test_case "duplicate label" `Quick asm_duplicate_label;
          Alcotest.test_case "undefined label" `Quick asm_undefined_label;
          Alcotest.test_case "multi-unit layout" `Quick asm_multi_unit_layout;
          Alcotest.test_case "align directive" `Quick asm_align;
        ] );
      ( "disasm",
        [
          Alcotest.test_case "mnemonics" `Quick disasm_strings;
          Alcotest.test_case "listing with symbols" `Quick disasm_listing_symbols;
          QCheck_alcotest.to_alcotest word32_qcheck;
        ] );
      ( "image",
        [
          Alcotest.test_case "serialize/parse roundtrip" `Quick image_roundtrip;
          Alcotest.test_case "strip" `Quick image_strip;
          Alcotest.test_case "symbol_at" `Quick image_symbol_at;
          Alcotest.test_case "bad image rejected" `Quick bad_image_rejected;
        ] );
    ]
