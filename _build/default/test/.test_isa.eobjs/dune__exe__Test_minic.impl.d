test/test_minic.ml: Alcotest Arch Char Check Codegen Cpu Driver Embsan_emu Embsan_isa Embsan_minic Image List Machine Parser Reg
