test/test_fuzz.ml: Alcotest Array Campaign Corpus Defs Embsan_core Embsan_fuzz Embsan_guest Firmware_db List Option Prog QCheck2 QCheck_alcotest Replay Rng
