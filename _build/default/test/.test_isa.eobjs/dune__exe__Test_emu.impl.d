test/test_emu.ml: Alcotest Arch Array Asm Char Cost_model Coverage Cpu Devices Embsan_emu Embsan_isa Fault Hypercall Image List Machine Probe Reg Services Trace
