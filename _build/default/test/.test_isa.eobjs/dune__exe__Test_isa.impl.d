test/test_isa.ml: Alcotest Arch Asm Char Codec Disasm Embsan_isa Gen Image Insn List Option QCheck2 QCheck_alcotest Reg String Test Word32
