(* Smartwatch firmware under Tardis-style fuzzing.

     dune exec examples/smartwatch_tardis.exe

   InfiniTime-like FreeRTOS firmware: no kcov support in the guest, so
   coverage comes OS-agnostically from the emulator's translated-block
   probes (the Tardis mechanism).  After the campaign, every finding is
   cross-checked by rebuilding the same firmware with the *native* in-guest
   KASAN and replaying the reproducer - the paper's S4.2 soundness
   experiment in miniature. *)

open Embsan_guest
open Embsan_fuzz

let () =
  let fw =
    match Firmware_db.find "InfiniTime" with Some fw -> fw | None -> assert false
  in
  Fmt.pr "fuzzing %s (%s) with OS-agnostic coverage@." fw.fw_name fw.fw_base_os;
  let cfg = { (Campaign.default_config fw) with max_execs = 2500; seed = 7 } in
  let result = Campaign.run cfg in
  Fmt.pr "%a@." Campaign.pp_result result;

  Fmt.pr "@.cross-checking findings under the native in-guest KASAN build:@.";
  List.iter
    (fun (f : Campaign.found) ->
      let calls = Prog.to_reproducer f.f_prog in
      let outcome = Replay.run_reproducer fw Replay.Native_kasan calls in
      let reproduced = Replay.detects f.f_bug outcome in
      Fmt.pr "  %-28s %s@." f.f_bug.b_id
        (if reproduced then "reproduced under native KASAN"
         else "not reproduced under native KASAN");
      if reproduced then
        List.iter
          (fun (r : Embsan_core.Report.t) ->
            Fmt.pr "    native report: %s@." (Embsan_core.Report.title r))
          outcome.o_reports)
    result.r_found
