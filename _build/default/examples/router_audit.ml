(* Router firmware audit: the paper's motivating scenario.

     dune exec examples/router_audit.exe

   A security team receives an OpenWRT-based router image (here:
   OpenWRT-bcm63xx, built from source without sanitizer support, so EmbSan
   runs in dynamic mode) and fuzzes its syscall surface with a
   Syzkaller-style campaign.  Every finding is confirmed by replaying its
   reproducer on a fresh instance. *)

open Embsan_guest
open Embsan_fuzz

let () =
  let fw =
    match Firmware_db.find "OpenWRT-bcm63xx" with
    | Some fw -> fw
    | None -> assert false
  in
  Fmt.pr "auditing %s (%s, %s, %s instrumentation)@." fw.fw_name fw.fw_base_os
    (Embsan_isa.Arch.to_string fw.fw_arch)
    (Firmware_db.inst_name fw.fw_inst);
  Fmt.pr "syscall surface: %d syscalls@." (List.length fw.fw_syscalls);

  let cfg =
    { (Campaign.default_config fw) with max_execs = 3000; seed = 42 }
  in
  let t0 = Sys.time () in
  let result = Campaign.run cfg in
  Fmt.pr "@.%a@." Campaign.pp_result result;
  Fmt.pr "@.campaign: %d executions, %d guest instructions, %.2fs host time@."
    result.r_execs result.r_insns (Sys.time () -. t0);

  (* the security report: one entry per confirmed bug with its reproducer *)
  Fmt.pr "@.== security findings ==@.";
  List.iter
    (fun (f : Campaign.found) ->
      Fmt.pr "@.[%s] %s in %s@."
        (match f.f_bug.b_kind with
        | Embsan_core.Report.Oob_access -> "HIGH  "
        | Use_after_free -> "HIGH  "
        | Double_free -> "MEDIUM"
        | _ -> "INFO  ")
        (Embsan_core.Report.kind_name f.f_bug.b_kind)
        f.f_bug.b_paper_location;
      Fmt.pr "  reproducer: %a@." Prog.pp f.f_prog;
      Fmt.pr "  %s@."
        (if f.f_confirmed then "confirmed on a fresh instance"
         else "NOT confirmed (state-dependent)"))
    result.r_found
