(* Sanitizing closed-source firmware: the hardest of the paper's three
   firmware categories.

     dune exec examples/closed_firmware.exe

   The TP-Link-like VxWorks image ships as a stripped binary.  The Prober's
   binary mode scans the decoded image for function prologues, dry-runs the
   firmware with call/return probes and *infers* the allocator entry points
   from their dynamic behavior - no symbols, no source, no recompilation.
   EmbSan-D then catches a heap overflow in the PPPoE daemon. *)

open Embsan_guest
module Embsan = Embsan_core.Embsan
module Machine = Embsan_emu.Machine
module Devices = Embsan_emu.Devices
module Report = Embsan_core.Report
module Image = Embsan_isa.Image

let () =
  let fw =
    match Firmware_db.find "TP-Link WDR-7660" with
    | Some fw -> fw
    | None -> assert false
  in
  let image = fw.fw_build ~kcov:false Embsan_minic.Codegen.Plain in
  Fmt.pr "firmware image: %a@." Image.pp image;
  assert (Image.is_stripped image);

  (* binary-mode probing: multi-pass dry run with dynamic inference *)
  let session =
    Embsan.prepare ~sanitizers:Embsan.kasan_only
      ~firmware:(Embsan.Binary (image, Embsan_core.Prober.no_hints))
      ()
  in
  Fmt.pr "@.prober notes:@.";
  List.iter (Fmt.pr "  %s@.") session.s_platform.p_notes;
  Fmt.pr "@.inferred interception functions:@.";
  List.iter
    (fun (f : Embsan_core.Dsl.func_sig) ->
      Fmt.pr "  %s at 0x%x (%s)@." f.f_name f.f_addr
        (match f.f_kind with `Alloc _ -> "allocator" | `Free _ -> "free"))
    session.s_spec.functions;

  (* attack surface: PADR packets with attacker-controlled tag lengths *)
  let machine = Embsan.make_machine session in
  let runtime = Embsan.attach session machine in
  (match Machine.run_until_ready machine ~max_insns:30_000_000 with
  | None -> ()
  | Some stop -> Fmt.failwith "boot failed: %a" Machine.pp_stop stop);
  let pppoe_padr ~tag_len =
    Devices.mailbox_push machine.mailbox ~nr:20 ~args:[| 1; tag_len; 0x41 |];
    ignore (Machine.run_until_mailbox_idle machine ~max_insns:10_000_000)
  in
  pppoe_padr ~tag_len:8;
  Fmt.pr "@.benign PADR processed (reports: %d)@." (Report.count runtime.sink);
  pppoe_padr ~tag_len:30;
  match Embsan.reports runtime with
  | [] -> Fmt.pr "overflow missed?!@."
  | reports ->
      List.iter (fun r -> Fmt.pr "@.%a@." Report.pp r) reports;
      Fmt.pr
        "@.note: the report has no symbol (stripped binary); the faulting pc \
         identifies the daemon@."
