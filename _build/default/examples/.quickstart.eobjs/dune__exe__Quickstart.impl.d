examples/quickstart.ml: Embsan_core Embsan_emu Embsan_guest Embsan_isa Embsan_minic Fmt List
