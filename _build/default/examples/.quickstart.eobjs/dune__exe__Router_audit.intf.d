examples/router_audit.mli:
