examples/smartwatch_tardis.mli:
