examples/closed_firmware.ml: Embsan_core Embsan_emu Embsan_guest Embsan_isa Embsan_minic Firmware_db Fmt List
