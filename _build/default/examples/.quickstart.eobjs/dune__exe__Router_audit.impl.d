examples/router_audit.ml: Campaign Embsan_core Embsan_fuzz Embsan_guest Embsan_isa Firmware_db Fmt List Prog Sys
