examples/smartwatch_tardis.ml: Campaign Embsan_core Embsan_fuzz Embsan_guest Firmware_db Fmt List Prog Replay
