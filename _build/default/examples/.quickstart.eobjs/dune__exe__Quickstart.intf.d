examples/quickstart.mli:
