examples/closed_firmware.mli:
