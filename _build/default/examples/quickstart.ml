(* Quickstart: write a little firmware, sanitize it with EmbSan, watch a
   heap overflow get caught.

     dune exec examples/quickstart.exe

   The firmware is a MiniC program with a bump allocator and one syscall
   whose length check is off by a constant - the classic embedded parsing
   bug.  We build it *without* any sanitizer instrumentation and let
   EmbSan-D catch the bug purely from the emulator side. *)

module Driver = Embsan_minic.Driver
module Machine = Embsan_emu.Machine
module Devices = Embsan_emu.Devices
module Embsan = Embsan_core.Embsan
module Report = Embsan_core.Report
module Prober = Embsan_core.Prober

let firmware_source =
  {|
barr heap_pool[4096];
var heap_next = 0;

// a tiny bump allocator named so the Prober recognizes it
fun kmalloc(size) {
  var p = &heap_pool + heap_next;
  heap_next = heap_next + ((size + 7) & ~7);
  san_alloc(p, size);
  return p;
}

fun kfree(p) { san_free(p, 0); return 0; }

// BUG: copies [len] bytes into a 32-byte packet buffer but validates the
// length against the 48-byte wire frame
fun handle_packet(len, seed) {
  if (len > 48) { return 0 - 22; }
  var pkt = kmalloc(32);
  if (pkt == 0) { return 0 - 12; }
  var i = 0;
  while (i < len) {
    store8(pkt + i, (seed + i) & 0xFF);
    i = i + 1;
  }
  var sum = fnv1a(pkt, 4);
  kfree(pkt);
  return sum & 0x7FFFFFFF;
}

fun kmain() {
  san_poison(&heap_pool, 4096);
  mb_ready();
  while (1) {
    if (mb_pending()) {
      var nr = mb_nr();
      var ret = 0 - 38;
      if (nr == 1) { ret = handle_packet(mb_arg(0), mb_arg(1)); }
      mb_complete(ret);
    }
  }
  return 0;
}
|}

let () =
  (* 1. build the plain (uninstrumented) firmware *)
  let image =
    Driver.compile Driver.default_config
      [ Embsan_guest.Libk.unit_; { src_name = "demo"; code = firmware_source } ]
  in
  Fmt.pr "built firmware: %a@." Embsan_isa.Image.pp image;

  (* 2. pre-testing probing phase: distill KASAN's interface and probe the
     firmware (symbols available, no compile-time instrumentation ->
     EmbSan-D) *)
  let session =
    Embsan.prepare ~sanitizers:Embsan.kasan_only
      ~firmware:(Embsan.Source (image, Prober.no_hints))
      ()
  in
  Fmt.pr "@.-- the specification the Distiller and Prober compiled --@.%s@."
    (Embsan.spec_text session);

  (* 3. testing phase: boot and attach the Common Sanitizer Runtime *)
  let machine = Embsan.make_machine session in
  let runtime = Embsan.attach session machine in
  (match Machine.run_until_ready machine ~max_insns:10_000_000 with
  | None -> Fmt.pr "firmware is ready@."
  | Some stop -> Fmt.failwith "boot failed: %a" Machine.pp_stop stop);

  (* 4. drive the syscall interface: first a benign packet, then the bug *)
  let syscall nr args =
    Devices.mailbox_push machine.mailbox ~nr ~args;
    ignore (Machine.run_until_mailbox_idle machine ~max_insns:10_000_000)
  in
  syscall 1 [| 24; 7 |];
  Fmt.pr "benign packet processed; reports so far: %d@."
    (Report.count runtime.sink);
  syscall 1 [| 40; 7 |];

  (* 5. the report *)
  match Embsan.reports runtime with
  | [] -> Fmt.pr "no report - something is off!@."
  | reports -> List.iter (fun r -> Fmt.pr "@.%a@." Report.pp r) reports
