(** Binary encoder/decoder for EVA-32 instructions, parameterized by
    architecture flavor. *)

exception Decode_error of { addr : int; reason : string }

(** Encode [insn] into [buf] at byte offset [pos] (8 bytes). *)
val encode_into : Arch.t -> bytes -> int -> Insn.t -> unit

(** Encode to a fresh 8-byte string. *)
val encode : Arch.t -> Insn.t -> string

(** Decode the instruction whose bytes are read through [get] starting at
    byte offset [pos]; [addr] is used in error reports. *)
val decode_with : Arch.t -> addr:int -> (int -> int) -> int -> Insn.t

(** Decode from a string at byte offset [pos]. *)
val decode : Arch.t -> addr:int -> string -> int -> Insn.t

(** Decode a whole code blob into (address, instruction) pairs; raises
    {!Decode_error} on the first invalid slot. *)
val decode_all : Arch.t -> base:int -> string -> (int * Insn.t) list
