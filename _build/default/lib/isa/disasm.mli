(** Textual disassembly of EVA-32 instructions. *)

val pp_insn : Format.formatter -> Insn.t -> unit
val to_string : Insn.t -> string

(** Disassemble a code section with symbol labels; undecodable slots print
    as data words. *)
val section_listing : Image.t -> Image.section -> string
