(** EVA-32 register file: 16 general-purpose registers.

    ABI: r0 zero, r1 ra, r2 sp, r3..r6 a0..a3 (a0 = return value),
    r7..r10 + r15 caller-saved temporaries, r11..r14 callee-saved. *)

type t

val count : int

(** Raises [Invalid_argument] outside [0, 15]. *)
val of_int : int -> t

val to_int : t -> int
val zero : t
val ra : t
val sp : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val t0 : t
val t1 : t
val t2 : t
val t3 : t
val s0 : t
val s1 : t
val s2 : t
val s3 : t
val t4 : t

(** Argument registers a0..a3, by position. *)
val args : t array

val temps : t array
val saved : t array
val name : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
