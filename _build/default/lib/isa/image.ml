(* Firmware image container: loadable sections, entry point, and an optional
   symbol table.  Closed-source firmware is modeled by {!strip}, after which
   only binary-level analysis is possible. *)

type symbol_kind = Func | Object

type symbol = { name : string; addr : int; size : int; kind : symbol_kind }

type section = { sec_name : string; base : int; data : string }

type t = {
  arch : Arch.t;
  entry : int;
  sections : section list;
  symbols : symbol list; (* empty when stripped *)
}

let magic = "EVAF"

let strip t = { t with symbols = [] }

let is_stripped t = t.symbols = []

let find_symbol t name = List.find_opt (fun s -> String.equal s.name name) t.symbols

let symbol_addr_exn t name =
  match find_symbol t name with
  | Some s -> s.addr
  | None -> raise Not_found

(** Innermost symbol covering [addr], if any. *)
let symbol_at t addr =
  List.fold_left
    (fun best s ->
      if addr >= s.addr && addr < s.addr + max 1 s.size then
        match best with
        | Some b when b.size <= s.size -> best
        | _ -> Some s
      else best)
    None t.symbols

(** Total span [lo, hi) covered by loadable sections. *)
let load_bounds t =
  match t.sections with
  | [] -> (0, 0)
  | secs ->
      let lo = List.fold_left (fun acc s -> min acc s.base) max_int secs in
      let hi =
        List.fold_left (fun acc s -> max acc (s.base + String.length s.data)) 0 secs
      in
      (lo, hi)

let section t name = List.find_opt (fun s -> String.equal s.sec_name name) t.sections

(* --- Binary serialization ---------------------------------------------- *)

let put_u32 buf v =
  let v = Word32.wrap v in
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let serialize t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr (Arch.to_byte t.arch));
  Buffer.add_char buf (if t.symbols = [] then '\000' else '\001');
  put_u32 buf t.entry;
  put_u32 buf (List.length t.sections);
  List.iter
    (fun s ->
      put_str buf s.sec_name;
      put_u32 buf s.base;
      put_str buf s.data)
    t.sections;
  put_u32 buf (List.length t.symbols);
  List.iter
    (fun (s : symbol) ->
      put_str buf s.name;
      put_u32 buf s.addr;
      put_u32 buf s.size;
      Buffer.add_char buf (match s.kind with Func -> 'F' | Object -> 'O'))
    t.symbols;
  Buffer.contents buf

exception Parse_error of string

let parse blob =
  let pos = ref 0 in
  let len = String.length blob in
  let need n =
    if !pos + n > len then raise (Parse_error "truncated image")
  in
  let get_byte () =
    need 1;
    let c = Char.code blob.[!pos] in
    incr pos;
    c
  in
  let get_u32 () =
    need 4;
    let v =
      Char.code blob.[!pos]
      lor (Char.code blob.[!pos + 1] lsl 8)
      lor (Char.code blob.[!pos + 2] lsl 16)
      lor (Char.code blob.[!pos + 3] lsl 24)
    in
    pos := !pos + 4;
    v
  in
  let get_str () =
    let n = get_u32 () in
    need n;
    let s = String.sub blob !pos n in
    pos := !pos + n;
    s
  in
  need 4;
  if not (String.equal (String.sub blob 0 4) magic) then
    raise (Parse_error "bad magic");
  pos := 4;
  let arch =
    match Arch.of_byte (get_byte ()) with
    | Some a -> a
    | None -> raise (Parse_error "unknown arch byte")
  in
  let _has_symbols = get_byte () in
  let entry = get_u32 () in
  let nsec = get_u32 () in
  let sections =
    List.init nsec (fun _ ->
        let sec_name = get_str () in
        let base = get_u32 () in
        let data = get_str () in
        { sec_name; base; data })
  in
  let nsym = get_u32 () in
  let symbols =
    List.init nsym (fun _ ->
        let name = get_str () in
        let addr = get_u32 () in
        let size = get_u32 () in
        let kind =
          match get_byte () with
          | 0x46 (* 'F' *) -> Func
          | 0x4F (* 'O' *) -> Object
          | _ -> raise (Parse_error "bad symbol kind")
        in
        { name; addr; size; kind })
  in
  { arch; entry; sections; symbols }

let pp fmt t =
  Fmt.pf fmt "@[<v>image %a entry=%s%s@,%a@,symbols: %d@]" Arch.pp t.arch
    (Word32.to_hex t.entry)
    (if is_stripped t then " (stripped)" else "")
    (Fmt.list ~sep:Fmt.cut (fun fmt s ->
         Fmt.pf fmt "  %-6s %s..%s (%d bytes)" s.sec_name (Word32.to_hex s.base)
           (Word32.to_hex (s.base + String.length s.data))
           (String.length s.data)))
    t.sections (List.length t.symbols)
