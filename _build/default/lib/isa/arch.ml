(* Architecture flavors of the EVA-32 instruction set.

   The three flavors share instruction semantics but differ in binary
   encoding: opcode numbering and immediate endianness.  This forces every
   consumer of firmware bytes (loader, prober, disassembler) through
   arch-dependent paths, mirroring the paper's x86 / ARM / MIPS targets. *)

type t =
  | Arm_ev
  | Mips_ev
  | X86_ev

let all = [ Arm_ev; Mips_ev; X86_ev ]

let to_string = function
  | Arm_ev -> "arm-ev"
  | Mips_ev -> "mips-ev"
  | X86_ev -> "x86-ev"

let of_string = function
  | "arm-ev" -> Some Arm_ev
  | "mips-ev" -> Some Mips_ev
  | "x86-ev" -> Some X86_ev
  | _ -> None

let to_byte = function Arm_ev -> 0xA1 | Mips_ev -> 0xB2 | X86_ev -> 0xC3

let of_byte = function
  | 0xA1 -> Some Arm_ev
  | 0xB2 -> Some Mips_ev
  | 0xC3 -> Some X86_ev
  | _ -> None

(** Immediate fields are big-endian on [Mips_ev], little-endian otherwise. *)
let big_endian = function Mips_ev -> true | Arm_ev | X86_ev -> false

(** Injective opcode-byte transformation applied to the canonical opcode
    index.  Each flavor has a distinct instruction encoding. *)
let opcode_byte arch canonical =
  match arch with
  | Arm_ev -> canonical
  | Mips_ev -> (canonical + 0x40) land 0xFF
  | X86_ev -> canonical lxor 0xA5

let opcode_index arch byte =
  match arch with
  | Arm_ev -> byte
  | Mips_ev -> (byte - 0x40) land 0xFF
  | X86_ev -> byte lxor 0xA5

let pp fmt arch = Fmt.string fmt (to_string arch)
