(* Textual disassembly of EVA-32 instructions. *)

let pp_insn fmt (insn : Insn.t) =
  let r = Reg.name in
  match insn with
  | Nop -> Fmt.string fmt "nop"
  | Halt -> Fmt.string fmt "halt"
  | Fence -> Fmt.string fmt "fence"
  | Li (rd, imm) -> Fmt.pf fmt "li %s, %s" (r rd) (Word32.to_hex imm)
  | Alu (op, rd, rs1, rs2) ->
      Fmt.pf fmt "%s %s, %s, %s" (Insn.alu_name op) (r rd) (r rs1) (r rs2)
  | Alui (op, rd, rs1, imm) ->
      Fmt.pf fmt "%si %s, %s, %d" (Insn.alu_name op) (r rd) (r rs1) imm
  | Load (w, signed, rd, rs1, imm) ->
      let mnem =
        match (w, signed) with
        | W8, true -> "lb"
        | W8, false -> "lbu"
        | W16, true -> "lh"
        | W16, false -> "lhu"
        | W32, _ -> "lw"
      in
      Fmt.pf fmt "%s %s, %d(%s)" mnem (r rd) imm (r rs1)
  | Store (w, rs1, rs2, imm) ->
      let mnem = match w with W8 -> "sb" | W16 -> "sh" | W32 -> "sw" in
      Fmt.pf fmt "%s %s, %d(%s)" mnem (r rs2) imm (r rs1)
  | Branch (c, rs1, rs2, imm) ->
      Fmt.pf fmt "%s %s, %s, %+d" (Insn.cond_name c) (r rs1) (r rs2) imm
  | Jal (rd, imm) -> Fmt.pf fmt "jal %s, %+d" (r rd) imm
  | Jalr (rd, rs1, imm) -> Fmt.pf fmt "jalr %s, %d(%s)" (r rd) imm (r rs1)
  | Trap n -> Fmt.pf fmt "trap %d" n
  | Amo (Amo_add, rd, rs1, rs2) ->
      Fmt.pf fmt "amo.add %s, %s, (%s)" (r rd) (r rs2) (r rs1)
  | Amo (Amo_swap, rd, rs1, rs2) ->
      Fmt.pf fmt "amo.swap %s, %s, (%s)" (r rd) (r rs2) (r rs1)

let to_string insn = Fmt.str "%a" pp_insn insn

(** Disassemble a code section of an image; tolerant of embedded data
    (undecodable slots print as [.word]). *)
let section_listing (image : Image.t) (sec : Image.section) =
  let buf = Buffer.create 1024 in
  let n = String.length sec.data / Insn.size in
  for i = 0 to n - 1 do
    let addr = sec.base + (i * Insn.size) in
    (match Image.symbol_at image addr with
    | Some s when s.addr = addr -> Buffer.add_string buf (Fmt.str "%s:\n" s.name)
    | Some _ | None -> ());
    let line =
      match Codec.decode image.arch ~addr sec.data (i * Insn.size) with
      | insn -> to_string insn
      | exception Codec.Decode_error _ -> ".word (data)"
    in
    Buffer.add_string buf (Fmt.str "  %s: %s\n" (Word32.to_hex addr) line)
  done;
  Buffer.contents buf
