lib/isa/disasm.ml: Buffer Codec Fmt Image Insn Reg String Word32
