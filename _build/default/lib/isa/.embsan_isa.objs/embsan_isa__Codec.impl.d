lib/isa/codec.ml: Arch Bytes Char Insn List Printf Reg String Word32
