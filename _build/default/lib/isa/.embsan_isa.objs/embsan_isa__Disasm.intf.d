lib/isa/disasm.mli: Format Image Insn
