lib/isa/insn.mli: Reg
