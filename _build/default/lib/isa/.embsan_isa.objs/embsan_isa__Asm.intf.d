lib/isa/asm.mli: Arch Image Insn Reg
