lib/isa/asm.ml: Buffer Bytes Char Codec Format Hashtbl Image Insn List Reg String Word32
