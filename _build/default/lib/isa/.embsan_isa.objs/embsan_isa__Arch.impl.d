lib/isa/arch.ml: Fmt
