lib/isa/word32.ml: Printf
