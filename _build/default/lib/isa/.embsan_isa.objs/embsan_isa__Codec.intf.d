lib/isa/codec.mli: Arch Insn
