lib/isa/reg.ml: Fmt Int
