lib/isa/word32.mli:
