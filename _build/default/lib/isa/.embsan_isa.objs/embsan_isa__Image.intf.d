lib/isa/image.mli: Arch Format
