lib/isa/insn.ml: Reg
