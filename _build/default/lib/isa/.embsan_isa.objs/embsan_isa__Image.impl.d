lib/isa/image.ml: Arch Buffer Char Fmt List String Word32
