(* EVA-32 instruction set.

   Every instruction occupies 8 bytes:
     byte 0      opcode (flavor-transformed, see {!Arch.opcode_byte})
     byte 1      rd
     byte 2      rs1
     byte 3      rs2
     bytes 4..7  32-bit immediate (endianness per flavor)

   Control flow: branch and jump offsets are byte offsets relative to the
   address of the branch instruction itself. *)

type width = W8 | W16 | W32

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4

type alu_op =
  | Add
  | Sub
  | Mul
  | Divu
  | Remu
  | And
  | Or
  | Xor
  | Shl
  | Shru
  | Shrs
  | Slt   (* signed less-than, result 0/1 *)
  | Sltu  (* unsigned less-than *)
  | Seq
  | Sne

type cond = Eq | Ne | Lt | Ltu | Ge | Geu

type amo_op = Amo_add | Amo_swap

type t =
  | Nop
  | Halt
  | Li of Reg.t * int (* rd <- imm *)
  | Alu of alu_op * Reg.t * Reg.t * Reg.t (* rd <- rs1 op rs2 *)
  | Alui of alu_op * Reg.t * Reg.t * int (* rd <- rs1 op imm *)
  | Load of width * bool * Reg.t * Reg.t * int
      (* (width, signed, rd, rs1, imm): rd <- mem[rs1+imm] *)
  | Store of width * Reg.t * Reg.t * int
      (* (width, rs1, rs2, imm): mem[rs1+imm] <- rs2 *)
  | Branch of cond * Reg.t * Reg.t * int (* if rs1 cond rs2 then pc += imm *)
  | Jal of Reg.t * int (* rd <- pc+8; pc += imm *)
  | Jalr of Reg.t * Reg.t * int (* rd <- pc+8; pc <- rs1+imm *)
  | Trap of int (* hypercall, number in imm *)
  | Amo of amo_op * Reg.t * Reg.t * Reg.t
      (* (op, rd, rs1, rs2): rd <- mem32[rs1]; mem32[rs1] <- op old rs2 *)
  | Fence

let size = 8

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Divu -> "divu"
  | Remu -> "remu"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shru -> "shru"
  | Shrs -> "shrs"
  | Slt -> "slt"
  | Sltu -> "sltu"
  | Seq -> "seq"
  | Sne -> "sne"

let cond_name = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lt -> "blt"
  | Ltu -> "bltu"
  | Ge -> "bge"
  | Geu -> "bgeu"

(** Does this instruction end a basic block? *)
let ends_block = function
  | Branch _ | Jal _ | Jalr _ | Halt | Trap _ -> true
  | Nop | Li _ | Alu _ | Alui _ | Load _ | Store _ | Amo _ | Fence -> false

let is_memory_access = function
  | Load _ | Store _ | Amo _ -> true
  | Nop | Halt | Li _ | Alu _ | Alui _ | Branch _ | Jal _ | Jalr _ | Trap _
  | Fence ->
      false
