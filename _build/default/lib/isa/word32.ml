(* 32-bit machine words represented as OCaml ints in [0, 2^32). *)

let mask = 0xFFFF_FFFF

let wrap v = v land mask

(** Two's-complement signed view of a 32-bit word. *)
let signed v =
  let v = wrap v in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let of_signed v = wrap v

let add a b = wrap (a + b)
let sub a b = wrap (a - b)
let mul a b = wrap (a * b)

let divu a b = if b = 0 then mask else wrap a / wrap b
let remu a b = if b = 0 then wrap a else wrap a mod wrap b

let shl a n = wrap (a lsl (n land 31))
let shru a n = wrap a lsr (n land 31)
let shrs a n = of_signed (signed a asr (n land 31))

let lt_s a b = signed a < signed b
let lt_u a b = wrap a < wrap b

(** Sign-extend the low [bits] bits of [v] to a full word. *)
let sext v bits =
  let v = v land ((1 lsl bits) - 1) in
  if v land (1 lsl (bits - 1)) <> 0 then wrap (v - (1 lsl bits)) else v

let zext v bits = v land ((1 lsl bits) - 1)

let to_hex v = Printf.sprintf "0x%08x" (wrap v)
