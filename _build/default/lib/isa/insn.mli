(** EVA-32 instruction set.  Every instruction occupies 8 bytes; branch and
    jump offsets are byte offsets relative to the branch instruction's own
    address. *)

type width = W8 | W16 | W32

val width_bytes : width -> int

type alu_op =
  | Add
  | Sub
  | Mul
  | Divu
  | Remu
  | And
  | Or
  | Xor
  | Shl
  | Shru
  | Shrs
  | Slt  (** signed less-than, result 0/1 *)
  | Sltu  (** unsigned less-than *)
  | Seq
  | Sne

type cond = Eq | Ne | Lt | Ltu | Ge | Geu

type amo_op = Amo_add | Amo_swap

type t =
  | Nop
  | Halt
  | Li of Reg.t * int  (** rd <- imm *)
  | Alu of alu_op * Reg.t * Reg.t * Reg.t  (** rd <- rs1 op rs2 *)
  | Alui of alu_op * Reg.t * Reg.t * int  (** rd <- rs1 op imm *)
  | Load of width * bool * Reg.t * Reg.t * int
      (** (width, signed, rd, rs1, imm): rd <- mem\[rs1+imm\] *)
  | Store of width * Reg.t * Reg.t * int
      (** (width, rs1, rs2, imm): mem\[rs1+imm\] <- rs2 *)
  | Branch of cond * Reg.t * Reg.t * int
      (** if rs1 cond rs2 then pc += imm *)
  | Jal of Reg.t * int  (** rd <- pc+8; pc += imm *)
  | Jalr of Reg.t * Reg.t * int  (** rd <- pc+8; pc <- rs1+imm *)
  | Trap of int  (** hypercall *)
  | Amo of amo_op * Reg.t * Reg.t * Reg.t
      (** (op, rd, rs1, rs2): rd <- mem32\[rs1\]; mem32\[rs1\] <- op old rs2 *)
  | Fence

(** Instruction size in bytes (fixed). *)
val size : int

val alu_name : alu_op -> string
val cond_name : cond -> string

(** Does this instruction end a basic block? *)
val ends_block : t -> bool

val is_memory_access : t -> bool
