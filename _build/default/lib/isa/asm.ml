(* Two-pass assembler for EVA-32 with labels, data directives and the usual
   pseudo-instructions.  Produces a loadable {!Image.t} with a symbol table
   derived from labels (one symbol per label, sized to the next label). *)

type item =
  | Ins of Insn.t
  | La of Reg.t * string * int (* load absolute address of label (+offset) *)
  | Bcc of Insn.cond * Reg.t * Reg.t * string (* branch to label *)
  | Jmp of string (* unconditional jump to label *)
  | Calli of string (* call: jal ra, label *)
  | Label of string
  | Bytes of string
  | Words of int list
  | Space of int
  | Align of int
  | Comment of string

(* Pseudo-instruction helpers. *)

let li rd n = Ins (Insn.Li (rd, Word32.wrap n))
let la rd label = La (rd, label, 0)
let la_off rd label off = La (rd, label, off)
let mv rd rs = Ins (Insn.Alui (Add, rd, rs, 0))
let addi rd rs n = Ins (Insn.Alui (Add, rd, rs, n))
let ret = Ins (Insn.Jalr (Reg.zero, Reg.ra, 0))
let call f = Calli f
let j label = Jmp label
let beq a b l = Bcc (Insn.Eq, a, b, l)
let bne a b l = Bcc (Insn.Ne, a, b, l)
let blt a b l = Bcc (Insn.Lt, a, b, l)
let bltu a b l = Bcc (Insn.Ltu, a, b, l)
let bge a b l = Bcc (Insn.Ge, a, b, l)
let bgeu a b l = Bcc (Insn.Geu, a, b, l)
let beqz a l = Bcc (Insn.Eq, a, Reg.zero, l)
let bnez a l = Bcc (Insn.Ne, a, Reg.zero, l)
let load w ?(signed = false) rd rs1 off = Ins (Insn.Load (w, signed, rd, rs1, off))
let store w rs1 rs2 off = Ins (Insn.Store (w, rs1, rs2, off))
let trap n = Ins (Insn.Trap n)
let halt = Ins Insn.Halt

(** One translation unit: text (code) items and data items. *)
type unit_ = { unit_name : string; text : item list; data : item list }

exception Asm_error of string

let errf fmt = Format.kasprintf (fun s -> raise (Asm_error s)) fmt

let item_size = function
  | Ins _ | La _ | Bcc _ | Jmp _ | Calli _ -> Insn.size
  | Label _ | Comment _ -> 0
  | Bytes s -> String.length s
  | Words ws -> 4 * List.length ws
  | Space n -> n
  | Align _ -> -1 (* computed during layout *)

type layout = {
  labels : (string, int) Hashtbl.t;
  text_base : int;
  data_base : int;
  text_size : int;
  data_size : int;
}

let layout_pass ~text_base units =
  let labels = Hashtbl.create 256 in
  let place region_tag base items_of =
    let pos = ref base in
    List.iter
      (fun (u : unit_) ->
        List.iter
          (fun item ->
            match item with
            | Label name ->
                if Hashtbl.mem labels name then
                  errf "duplicate label %s (unit %s)" name u.unit_name;
                Hashtbl.add labels name !pos
            | Align n ->
                let n = max n 1 in
                pos := (!pos + n - 1) / n * n
            | _ -> pos := !pos + item_size item)
          (items_of u))
      units;
    ignore region_tag;
    !pos
  in
  let text_end = place `Text text_base (fun u -> u.text) in
  let data_base = (text_end + 7) / 8 * 8 in
  let data_end = place `Data data_base (fun u -> u.data) in
  {
    labels;
    text_base;
    data_base;
    text_size = text_end - text_base;
    data_size = data_end - data_base;
  }

let resolve layout name =
  match Hashtbl.find_opt layout.labels name with
  | Some a -> a
  | None -> errf "undefined label %s" name

let emit_pass arch layout ~base items_list =
  let buf = Buffer.create 4096 in
  let scratch = Bytes.create Insn.size in
  let pos = ref base in
  let emit_insn insn =
    Codec.encode_into arch scratch 0 insn;
    Buffer.add_bytes buf scratch;
    pos := !pos + Insn.size
  in
  List.iter
    (fun items ->
      List.iter
        (fun item ->
          match item with
          | Ins insn -> emit_insn insn
          | La (rd, label, off) -> emit_insn (Li (rd, Word32.wrap (resolve layout label + off)))
          | Bcc (c, a, b, label) -> emit_insn (Branch (c, a, b, resolve layout label - !pos))
          | Jmp label -> emit_insn (Jal (Reg.zero, resolve layout label - !pos))
          | Calli label -> emit_insn (Jal (Reg.ra, resolve layout label - !pos))
          | Label _ | Comment _ -> ()
          | Bytes s ->
              Buffer.add_string buf s;
              pos := !pos + String.length s
          | Words ws ->
              List.iter
                (fun w ->
                  let w = Word32.wrap w in
                  Buffer.add_char buf (Char.chr (w land 0xFF));
                  Buffer.add_char buf (Char.chr ((w lsr 8) land 0xFF));
                  Buffer.add_char buf (Char.chr ((w lsr 16) land 0xFF));
                  Buffer.add_char buf (Char.chr ((w lsr 24) land 0xFF)))
                ws;
              pos := !pos + (4 * List.length ws)
          | Space n ->
              Buffer.add_string buf (String.make n '\000');
              pos := !pos + n
          | Align n ->
              let n = max n 1 in
              let target = (!pos + n - 1) / n * n in
              Buffer.add_string buf (String.make (target - !pos) '\000');
              pos := target)
        items)
    items_list;
  Buffer.contents buf

(* Labels become symbols sized up to the next label in the same region.
   Labels beginning with ".L" are assembler-local (compiler-generated
   control-flow targets) and do not appear in the symbol table, so function
   symbols span their whole bodies. *)
let is_local_label name = String.length name >= 2 && String.sub name 0 2 = ".L"

let symbols_of_region kind ~base ~size items_list =
  let pos = ref base in
  let acc = ref [] in
  List.iter
    (List.iter (fun item ->
         match item with
         | Label name ->
             if not (is_local_label name) then acc := (name, !pos) :: !acc
         | Align n ->
             let n = max n 1 in
             pos := (!pos + n - 1) / n * n
         | _ -> pos := !pos + item_size item))
    items_list;
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) (List.rev !acc) in
  let rec mk = function
    | [] -> []
    | [ (name, addr) ] -> [ { Image.name; addr; size = base + size - addr; kind } ]
    | (name, addr) :: ((_, next) :: _ as rest) ->
        { Image.name; addr; size = next - addr; kind } :: mk rest
  in
  mk sorted

(** Assemble translation units into a firmware image.  [entry] names the
    entry-point label. *)
let assemble ~arch ~text_base ~entry units =
  let layout = layout_pass ~text_base units in
  let texts = List.map (fun u -> u.text) units in
  let datas = List.map (fun u -> u.data) units in
  let text_blob = emit_pass arch layout ~base:layout.text_base texts in
  let data_blob = emit_pass arch layout ~base:layout.data_base datas in
  let text_syms =
    symbols_of_region Image.Func ~base:layout.text_base ~size:layout.text_size
      texts
  in
  let data_syms =
    symbols_of_region Image.Object ~base:layout.data_base
      ~size:layout.data_size datas
  in
  {
    Image.arch;
    entry = resolve layout entry;
    sections =
      [
        { Image.sec_name = "text"; base = layout.text_base; data = text_blob };
        { Image.sec_name = "data"; base = layout.data_base; data = data_blob };
      ];
    symbols = text_syms @ data_syms;
  }
