(* EVA-32 register file: 16 general-purpose registers.

   ABI conventions:
     r0          hardwired zero
     r1  (ra)    return address
     r2  (sp)    stack pointer
     r3..r6      a0..a3, arguments; a0 holds the return value
     r7..r10     t0..t3, caller-saved temporaries
     r11..r14    s0..s3, callee-saved
     r15 (t4)    extra caller-saved temporary *)

type t = int

let count = 16

let of_int n =
  if n < 0 || n >= count then invalid_arg "Reg.of_int";
  n

let to_int r = r

let zero = 0
let ra = 1
let sp = 2
let a0 = 3
let a1 = 4
let a2 = 5
let a3 = 6
let t0 = 7
let t1 = 8
let t2 = 9
let t3 = 10
let s0 = 11
let s1 = 12
let s2 = 13
let s3 = 14
let t4 = 15

let args = [| a0; a1; a2; a3 |]
let temps = [| t0; t1; t2; t3; t4 |]
let saved = [| s0; s1; s2; s3 |]

let name r =
  match r with
  | 0 -> "zero"
  | 1 -> "ra"
  | 2 -> "sp"
  | 3 -> "a0"
  | 4 -> "a1"
  | 5 -> "a2"
  | 6 -> "a3"
  | 7 -> "t0"
  | 8 -> "t1"
  | 9 -> "t2"
  | 10 -> "t3"
  | 11 -> "s0"
  | 12 -> "s1"
  | 13 -> "s2"
  | 14 -> "s3"
  | 15 -> "t4"
  | _ -> invalid_arg "Reg.name"

let equal = Int.equal
let pp fmt r = Fmt.string fmt (name r)
