(** Firmware image container: loadable sections, entry point and an
    optional symbol table; closed-source firmware is modeled by {!strip}. *)

type symbol_kind = Func | Object

type symbol = { name : string; addr : int; size : int; kind : symbol_kind }

type section = { sec_name : string; base : int; data : string }

type t = {
  arch : Arch.t;
  entry : int;
  sections : section list;
  symbols : symbol list;
}

val magic : string

(** Drop the symbol table (what shipping a closed-source binary does). *)
val strip : t -> t

val is_stripped : t -> bool
val find_symbol : t -> string -> symbol option

(** Raises [Not_found]. *)
val symbol_addr_exn : t -> string -> int

(** Innermost symbol covering [addr], if any. *)
val symbol_at : t -> int -> symbol option

(** Total span [lo, hi) covered by loadable sections. *)
val load_bounds : t -> int * int

val section : t -> string -> section option

(** Serialize to the on-disk binary format. *)
val serialize : t -> string

exception Parse_error of string

(** Parse the binary format back; raises {!Parse_error}. *)
val parse : string -> t

val pp : Format.formatter -> t -> unit
