(** Two-pass assembler for EVA-32 with labels, data directives and
    pseudo-instructions.  Produces a loadable {!Image.t}; labels become
    symbols sized to the next label, except ".L"-prefixed local labels. *)

type item =
  | Ins of Insn.t
  | La of Reg.t * string * int  (** load absolute address of label+offset *)
  | Bcc of Insn.cond * Reg.t * Reg.t * string  (** branch to label *)
  | Jmp of string
  | Calli of string  (** jal ra, label *)
  | Label of string
  | Bytes of string
  | Words of int list
  | Space of int
  | Align of int
  | Comment of string

(** Pseudo-instruction helpers. *)

val li : Reg.t -> int -> item
val la : Reg.t -> string -> item
val la_off : Reg.t -> string -> int -> item
val mv : Reg.t -> Reg.t -> item
val addi : Reg.t -> Reg.t -> int -> item
val ret : item
val call : string -> item
val j : string -> item
val beq : Reg.t -> Reg.t -> string -> item
val bne : Reg.t -> Reg.t -> string -> item
val blt : Reg.t -> Reg.t -> string -> item
val bltu : Reg.t -> Reg.t -> string -> item
val bge : Reg.t -> Reg.t -> string -> item
val bgeu : Reg.t -> Reg.t -> string -> item
val beqz : Reg.t -> string -> item
val bnez : Reg.t -> string -> item
val load : Insn.width -> ?signed:bool -> Reg.t -> Reg.t -> int -> item
val store : Insn.width -> Reg.t -> Reg.t -> int -> item
val trap : int -> item
val halt : item

(** One translation unit: code items and data items. *)
type unit_ = { unit_name : string; text : item list; data : item list }

exception Asm_error of string

(** Is this an assembler-local (non-symbol) label? *)
val is_local_label : string -> bool

(** Assemble translation units into a firmware image; [entry] names the
    entry-point label.  Raises {!Asm_error} on duplicate or undefined
    labels. *)
val assemble :
  arch:Arch.t -> text_base:int -> entry:string -> unit_ list -> Image.t
