(* Binary encoder/decoder for EVA-32 instructions, parameterized by
   architecture flavor (opcode numbering and immediate endianness). *)

exception Decode_error of { addr : int; reason : string }

(* Canonical opcode indices.  0 is deliberately invalid so that executing
   zero-filled memory faults immediately. *)

let alu_index = function
  | Insn.Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Divu -> 3
  | Remu -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shru -> 9
  | Shrs -> 10
  | Slt -> 11
  | Sltu -> 12
  | Seq -> 13
  | Sne -> 14

let alu_of_index = function
  | 0 -> Insn.Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Divu
  | 4 -> Remu
  | 5 -> And
  | 6 -> Or
  | 7 -> Xor
  | 8 -> Shl
  | 9 -> Shru
  | 10 -> Shrs
  | 11 -> Slt
  | 12 -> Sltu
  | 13 -> Seq
  | 14 -> Sne
  | _ -> invalid_arg "alu_of_index"

let cond_index = function
  | Insn.Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ltu -> 3
  | Ge -> 4
  | Geu -> 5

let cond_of_index = function
  | 0 -> Insn.Eq
  | 1 -> Ne
  | 2 -> Lt
  | 3 -> Ltu
  | 4 -> Ge
  | 5 -> Geu
  | _ -> invalid_arg "cond_of_index"

(* Canonical opcode layout:
   1          nop
   2          halt
   3          li
   4..18      alu (reg-reg)
   19..33     alu (reg-imm)
   34..38     loads: lb lbu lh lhu lw
   39..41     stores: sb sh sw
   42..47     branches
   48         jal
   49         jalr
   50         trap
   51         amo.add
   52         amo.swap
   53         fence *)

let canonical_of_insn (insn : Insn.t) =
  match insn with
  | Nop -> 1
  | Halt -> 2
  | Li _ -> 3
  | Alu (op, _, _, _) -> 4 + alu_index op
  | Alui (op, _, _, _) -> 19 + alu_index op
  | Load (W8, true, _, _, _) -> 34
  | Load (W8, false, _, _, _) -> 35
  | Load (W16, true, _, _, _) -> 36
  | Load (W16, false, _, _, _) -> 37
  | Load (W32, _, _, _, _) -> 38
  | Store (W8, _, _, _) -> 39
  | Store (W16, _, _, _) -> 40
  | Store (W32, _, _, _) -> 41
  | Branch (c, _, _, _) -> 42 + cond_index c
  | Jal _ -> 48
  | Jalr _ -> 49
  | Trap _ -> 50
  | Amo (Amo_add, _, _, _) -> 51
  | Amo (Amo_swap, _, _, _) -> 52
  | Fence -> 53

let max_canonical = 53

let fields (insn : Insn.t) =
  (* (rd, rs1, rs2, imm) for the fixed encoding slots. *)
  match insn with
  | Nop | Halt | Fence -> (0, 0, 0, 0)
  | Li (rd, imm) -> (Reg.to_int rd, 0, 0, imm)
  | Alu (_, rd, rs1, rs2) -> (Reg.to_int rd, Reg.to_int rs1, Reg.to_int rs2, 0)
  | Alui (_, rd, rs1, imm) -> (Reg.to_int rd, Reg.to_int rs1, 0, imm)
  | Load (_, _, rd, rs1, imm) -> (Reg.to_int rd, Reg.to_int rs1, 0, imm)
  | Store (_, rs1, rs2, imm) -> (0, Reg.to_int rs1, Reg.to_int rs2, imm)
  | Branch (_, rs1, rs2, imm) -> (0, Reg.to_int rs1, Reg.to_int rs2, imm)
  | Jal (rd, imm) -> (Reg.to_int rd, 0, 0, imm)
  | Jalr (rd, rs1, imm) -> (Reg.to_int rd, Reg.to_int rs1, 0, imm)
  | Trap n -> (0, 0, 0, n)
  | Amo (_, rd, rs1, rs2) -> (Reg.to_int rd, Reg.to_int rs1, Reg.to_int rs2, 0)

let encode_into arch buf pos insn =
  let canonical = canonical_of_insn insn in
  let rd, rs1, rs2, imm = fields insn in
  let imm = Word32.wrap imm in
  Bytes.set_uint8 buf pos (Arch.opcode_byte arch canonical);
  Bytes.set_uint8 buf (pos + 1) rd;
  Bytes.set_uint8 buf (pos + 2) rs1;
  Bytes.set_uint8 buf (pos + 3) rs2;
  if Arch.big_endian arch then (
    Bytes.set_uint8 buf (pos + 4) ((imm lsr 24) land 0xFF);
    Bytes.set_uint8 buf (pos + 5) ((imm lsr 16) land 0xFF);
    Bytes.set_uint8 buf (pos + 6) ((imm lsr 8) land 0xFF);
    Bytes.set_uint8 buf (pos + 7) (imm land 0xFF))
  else (
    Bytes.set_uint8 buf (pos + 4) (imm land 0xFF);
    Bytes.set_uint8 buf (pos + 5) ((imm lsr 8) land 0xFF);
    Bytes.set_uint8 buf (pos + 6) ((imm lsr 16) land 0xFF);
    Bytes.set_uint8 buf (pos + 7) ((imm lsr 24) land 0xFF))

let encode arch insn =
  let buf = Bytes.create Insn.size in
  encode_into arch buf 0 insn;
  Bytes.to_string buf

let read_imm arch (get : int -> int) pos =
  if Arch.big_endian arch then
    (get (pos + 4) lsl 24)
    lor (get (pos + 5) lsl 16)
    lor (get (pos + 6) lsl 8)
    lor get (pos + 7)
  else
    get (pos + 4)
    lor (get (pos + 5) lsl 8)
    lor (get (pos + 6) lsl 16)
    lor (get (pos + 7) lsl 24)

(** Decode the 8-byte instruction whose bytes are read through [get]
    starting at byte offset [pos].  [addr] is used for error reporting. *)
let decode_with arch ~addr (get : int -> int) pos =
  let opcode = Arch.opcode_index arch (get pos) in
  let rd () = Reg.of_int (get (pos + 1))
  and rs1 () = Reg.of_int (get (pos + 2))
  and rs2 () = Reg.of_int (get (pos + 3)) in
  let imm () = read_imm arch get pos in
  let simm () = Word32.signed (imm ()) in
  if opcode < 1 || opcode > max_canonical then
    raise (Decode_error { addr; reason = Printf.sprintf "bad opcode %d" opcode })
  else
    match opcode with
    | 1 -> Insn.Nop
    | 2 -> Halt
    | 3 -> Li (rd (), imm ())
    | n when n >= 4 && n <= 18 -> Alu (alu_of_index (n - 4), rd (), rs1 (), rs2 ())
    | n when n >= 19 && n <= 33 -> Alui (alu_of_index (n - 19), rd (), rs1 (), simm ())
    | 34 -> Load (W8, true, rd (), rs1 (), simm ())
    | 35 -> Load (W8, false, rd (), rs1 (), simm ())
    | 36 -> Load (W16, true, rd (), rs1 (), simm ())
    | 37 -> Load (W16, false, rd (), rs1 (), simm ())
    | 38 -> Load (W32, false, rd (), rs1 (), simm ())
    | 39 -> Store (W8, rs1 (), rs2 (), simm ())
    | 40 -> Store (W16, rs1 (), rs2 (), simm ())
    | 41 -> Store (W32, rs1 (), rs2 (), simm ())
    | n when n >= 42 && n <= 47 -> Branch (cond_of_index (n - 42), rs1 (), rs2 (), simm ())
    | 48 -> Jal (rd (), simm ())
    | 49 -> Jalr (rd (), rs1 (), simm ())
    | 50 -> Trap (imm ())
    | 51 -> Amo (Amo_add, rd (), rs1 (), rs2 ())
    | 52 -> Amo (Amo_swap, rd (), rs1 (), rs2 ())
    | 53 -> Fence
    | _ ->
        raise
          (Decode_error { addr; reason = Printf.sprintf "bad opcode %d" opcode })

let decode arch ~addr (s : string) pos =
  decode_with arch ~addr (fun i -> Char.code s.[i]) pos

(** [decode_all arch s] decodes a whole code blob; raises {!Decode_error} on
    the first invalid instruction. *)
let decode_all arch ~base (s : string) =
  let n = String.length s / Insn.size in
  List.init n (fun i ->
      let pos = i * Insn.size in
      (base + pos, decode arch ~addr:(base + pos) s pos))
