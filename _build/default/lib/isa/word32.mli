(** 32-bit machine words represented as OCaml ints in [0, 2^32). *)

val mask : int

(** Truncate to 32 bits. *)
val wrap : int -> int

(** Two's-complement signed view of a 32-bit word. *)
val signed : int -> int

val of_signed : int -> int
val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int

(** Unsigned division; division by zero yields all-ones (like many cores). *)
val divu : int -> int -> int

(** Unsigned remainder; remainder by zero yields the dividend. *)
val remu : int -> int -> int

val shl : int -> int -> int
val shru : int -> int -> int
val shrs : int -> int -> int
val lt_s : int -> int -> bool
val lt_u : int -> int -> bool

(** Sign-extend the low [bits] bits to a full word. *)
val sext : int -> int -> int

(** Zero-extend (keep) the low [bits] bits. *)
val zext : int -> int -> int

val to_hex : int -> string
