(** Architecture flavors of the EVA-32 instruction set: shared semantics,
    different binary encodings (opcode numbering and immediate endianness),
    standing in for the paper's x86 / ARM / MIPS targets. *)

type t = Arm_ev | Mips_ev | X86_ev

val all : t list
val to_string : t -> string
val of_string : string -> t option
val to_byte : t -> int
val of_byte : int -> t option

(** Immediate fields are big-endian on [Mips_ev]. *)
val big_endian : t -> bool

(** Injective opcode-byte transformation of the canonical opcode index. *)
val opcode_byte : t -> int -> int

val opcode_index : t -> int -> int
val pp : Format.formatter -> t -> unit
