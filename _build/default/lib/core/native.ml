(* Collector for reports produced by the *native* in-guest sanitizers
   (the Inline_kasan / Inline_kcsan baseline builds).  The guest runtime
   reports findings through the kasan_report / kcsan_report hypercalls;
   this module turns them into the same structured reports as EmbSan's, so
   benches can compare detection parity directly. *)

open Embsan_emu

type t = {
  sink : Report.sink;
  symbolize : int -> string option;
  shadow_offset : int option; (* to classify via the guest shadow byte *)
}

let classify_kasan t machine ~addr ~info =
  if info land 0x200 <> 0 then Report.Double_free
  else if addr < 0x1000 then Report.Null_deref
  else
    match t.shadow_offset with
    | None -> Report.Oob_access
    | Some off -> (
        let sh_addr = (addr lsr 3) + off in
        match Machine.read_mem machine ~addr:sh_addr ~width:1 with
        | 0xFB -> Report.Use_after_free
        | _ -> Report.Oob_access
        | exception Fault.Memory_fault _ -> Report.Wild_access)

let attach ?shadow_offset ~sink ~symbolize machine =
  let t = { sink; symbolize; shadow_offset } in
  Machine.set_trap_handler machine Hypercall.kasan_report (fun m cpu ->
      let addr = Cpu.get cpu Embsan_isa.Reg.a0 in
      let info = Cpu.get cpu Embsan_isa.Reg.a1 in
      let pc =
        match Cpu.get cpu Embsan_isa.Reg.a2 with
        | 0 ->
            (* double-free reports come from __kasan_free: walk out of the
               runtime (__kasan_free <- san_free <- allocator <- caller) *)
            Unwind.caller_pc m cpu ~depth:3
        | access_pc -> access_pc
      in
      ignore
        (Report.add t.sink
           {
             kind = classify_kasan t m ~addr ~info;
             sanitizer = "kasan";
             addr;
             size = info land 0xFF;
             is_write = info land 0x100 <> 0;
             pc;
             hart = cpu.Cpu.id;
             location = t.symbolize pc;
             detail = "reported by native in-guest KASAN";
           }));
  Machine.set_trap_handler machine Hypercall.kcsan_report (fun _m cpu ->
      let addr = Cpu.get cpu Embsan_isa.Reg.a0 in
      let info = Cpu.get cpu Embsan_isa.Reg.a1 in
      let pc =
        match Cpu.get cpu Embsan_isa.Reg.a2 with
        | 0 -> cpu.Cpu.pc - Embsan_isa.Insn.size
        | access_pc -> access_pc
      in
      ignore
        (Report.add t.sink
           {
             kind = Report.Data_race;
             sanitizer = "kcsan";
             addr;
             size = info land 0xFF;
             is_write = info land 0x100 <> 0;
             pc;
             hart = cpu.Cpu.id;
             location = t.symbolize pc;
             detail = "reported by native in-guest KCSAN";
           }));
  t
