(** Sanitizer Common Function Distiller (paper section 3.1): merges the
    reference sanitizers' interface specifications into a single DSL
    specification using the paper's union rules - union of interception
    points, per-point union of arguments, per-handler annotations of the
    argument segments each sanitizer consumes. *)

(** Canonical ordering of merged argument names. *)
val merge_args : string list list -> string list

(** Merge interface specs into a DSL specification (platform information is
    filled in later by the Prober). *)
val distill : Api_spec.t list -> Dsl.spec
