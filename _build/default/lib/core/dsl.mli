(** EmbSan's in-house DSL (paper sections 3.1-3.2): the Distiller compiles
    merged sanitizer interfaces into it, the Prober appends the platform
    description and initial setup routine, the Common Sanitizer Runtime
    consumes it.  The textual form round-trips ({!parse} o {!to_string}). *)

type handler = {
  h_san : string;
  h_op : string;
  h_args : string list;
      (** which segments of the merged argument union this sanitizer
          consumes (section 3.1's annotations) *)
}

type intercept = {
  i_point : Api_spec.point;
  i_args : string list;  (** merged argument union at this point *)
  i_handlers : handler list;
}

type init_action =
  | Poison of { addr : int; size : int; code : string }
  | Unpoison of { addr : int; size : int }
  | Alloc of { ptr : int; size : int }  (** pre-ready allocation replay *)
  | Region of { name : string; addr : int; size : int }
  | Note of string

type func_sig = {
  f_name : string;
  f_addr : int;
  f_size : int;  (** code bytes; accesses from inside are exempt *)
  f_kind : [ `Alloc of int  (** size argument index *) | `Free of int ];
}

type exempt = { e_name : string; e_addr : int; e_size : int }

type spec = {
  sanitizers : string list;
  arch : Embsan_isa.Arch.t option;
  intercepts : intercept list;
  functions : func_sig list;
  exempts : exempt list;
  init : init_action list;
}

val empty : spec

val find_intercept : spec -> Api_spec.point -> intercept option

(** Does [spec] route events at [point] to sanitizer [san]? *)
val wants : spec -> Api_spec.point -> string -> bool

val pp : Format.formatter -> spec -> unit
val to_string : spec -> string

exception Dsl_error of string

(** Parse the textual DSL; raises {!Dsl_error} on malformed input. *)
val parse : string -> spec
