(* Frame-pointer unwinding over the guest ABI.

   Every MiniC function saves its return address at [s0-4] and the caller's
   frame pointer at [s0-8], so the host can walk call frames to attribute a
   sanitizer callout arriving from allocator glue to the kernel function
   that actually triggered it (the moral equivalent of KASAN's stack
   traces). *)

open Embsan_emu

(** [caller_pc machine cpu ~depth] returns the pc of the call site [depth]
    frames above the current function (depth 0 = the pc of the trapping
    instruction itself).  Falls back to the innermost pc when the chain
    leaves RAM. *)
let caller_pc machine (cpu : Cpu.t) ~depth =
  let innermost = cpu.pc - Embsan_isa.Insn.size in
  let in_ram addr =
    addr >= Machine.ram_base machine
    && addr + 4 <= Machine.ram_base machine + Machine.ram_size machine
  in
  let rec go s0 pc depth =
    if depth <= 0 then pc
    else if not (in_ram (s0 - 8)) then pc
    else
      let ra = Machine.read_mem machine ~addr:(s0 - 4) ~width:4 in
      let s0' = Machine.read_mem machine ~addr:(s0 - 8) ~width:4 in
      if ra = 0 || not (in_ram ra) then pc
      else go s0' (ra - Embsan_isa.Insn.size) (depth - 1)
  in
  go (Cpu.get cpu Embsan_isa.Reg.s0) innermost depth
