(* Sanitizer Common Function Distiller (S3.1).

   Takes the reference sanitizers' interface specifications and merges them
   into a single DSL specification using the paper's rules:

   1. the merged set of interception points is the union of the individual
      sanitizers' sets;
   2. per interception point, the merged argument list is the union of the
      individual argument lists;
   3. arguments that share target data but are not exactly the same are
      combined into the largest possible union, and each handler carries an
      annotation of which argument segments belong to it. *)

(* Argument subsumption: "value" covers nothing else, but a sanitizer asking
   for (addr, size) is satisfied by a merged (addr, size, value, pc, hart).
   Arguments with the same name share target data; the merge keeps one copy
   in a canonical order. *)
let canonical_arg_order = [ "addr"; "size"; "value"; "ptr"; "pc"; "hart" ]

let arg_rank a =
  let rec go i = function
    | [] -> List.length canonical_arg_order
    | x :: rest -> if String.equal x a then i else go (i + 1) rest
  in
  go 0 canonical_arg_order

let merge_args lists =
  let all = List.concat lists in
  let uniq =
    List.fold_left (fun acc a -> if List.mem a acc then acc else a :: acc) [] all
  in
  List.sort (fun a b -> compare (arg_rank a, a) (arg_rank b, b)) uniq

(** Merge sanitizer interface specs into a DSL specification (no platform
    information yet; the Prober fills that in). *)
let distill (specs : Api_spec.t list) : Dsl.spec =
  let points =
    List.concat_map (fun (s : Api_spec.t) -> List.map (fun a -> a.Api_spec.point) s.apis) specs
    |> List.fold_left (fun acc p -> if List.mem p acc then acc else acc @ [ p ]) []
  in
  let intercepts =
    List.map
      (fun point ->
        let relevant =
          List.concat_map
            (fun (s : Api_spec.t) ->
              List.filter_map
                (fun (a : Api_spec.api) ->
                  if a.point = point then Some (s.san_name, a) else None)
                s.apis)
            specs
        in
        let merged_args = merge_args (List.map (fun (_, a) -> a.Api_spec.args) relevant) in
        let handlers =
          List.map
            (fun (san, (a : Api_spec.api)) ->
              { Dsl.h_san = san; h_op = a.operation; h_args = a.args })
            relevant
        in
        { Dsl.i_point = point; i_args = merged_args; i_handlers = handlers })
      points
  in
  {
    Dsl.empty with
    sanitizers = List.map (fun (s : Api_spec.t) -> s.san_name) specs;
    intercepts;
  }
