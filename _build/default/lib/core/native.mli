(** Collector for reports produced by the {e native} in-guest sanitizers
    (the Inline_kasan / Inline_kcsan baseline builds): turns the guest
    runtime's report hypercalls into the same structured reports as
    EmbSan's, so benches compare detection parity directly. *)

type t = {
  sink : Report.sink;
  symbolize : int -> string option;
  shadow_offset : int option;
      (** guest shadow location, for classifying KASAN reports *)
}

(** Install kasan_report / kcsan_report hypercall handlers on a machine. *)
val attach :
  ?shadow_offset:int ->
  sink:Report.sink ->
  symbolize:(int -> string option) ->
  Embsan_emu.Machine.t ->
  t
