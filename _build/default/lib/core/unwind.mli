(** Frame-pointer unwinding over the guest ABI (every function saves its
    return address at [s0-4] and the caller's frame pointer at [s0-8]),
    used to attribute sanitizer callouts arriving from allocator glue to
    the kernel function that triggered them. *)

(** [caller_pc machine cpu ~depth] is the pc of the call site [depth]
    frames above the current function (depth 0 = the trapping instruction
    itself); falls back to the innermost pc when the chain leaves RAM. *)
val caller_pc : Embsan_emu.Machine.t -> Embsan_emu.Cpu.t -> depth:int -> int
