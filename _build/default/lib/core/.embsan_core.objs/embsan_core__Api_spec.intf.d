lib/core/api_spec.mli:
