lib/core/unwind.ml: Cpu Embsan_emu Embsan_isa Machine
