lib/core/unwind.mli: Embsan_emu
