lib/core/kmemleak.ml: Hashtbl Printf Report
