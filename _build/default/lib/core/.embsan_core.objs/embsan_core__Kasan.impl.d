lib/core/kasan.ml: Hashtbl Printf Queue Report Shadow
