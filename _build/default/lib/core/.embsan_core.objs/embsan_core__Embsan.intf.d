lib/core/embsan.mli: Dsl Embsan_emu Embsan_isa Prober Report Runtime
