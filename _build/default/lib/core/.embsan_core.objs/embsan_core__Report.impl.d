lib/core/report.ml: Fmt Hashtbl List Option Printf String
