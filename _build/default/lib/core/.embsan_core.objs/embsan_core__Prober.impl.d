lib/core/prober.ml: Arch Array Codec Cpu Dsl Embsan_emu Embsan_isa Fault Format Hashtbl Hypercall Image Insn List Machine Printf Probe Reg String
