lib/core/api_spec.ml: Format List String
