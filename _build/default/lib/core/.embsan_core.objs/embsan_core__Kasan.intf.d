lib/core/kasan.mli: Hashtbl Queue Report Shadow
