lib/core/distiller.mli: Api_spec Dsl
