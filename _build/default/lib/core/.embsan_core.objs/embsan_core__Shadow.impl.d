lib/core/shadow.ml: Bytes Char Printf
