lib/core/native.mli: Embsan_emu Report
