lib/core/runtime.ml: Api_spec Array Cost_model Cpu Dsl Embsan_emu Embsan_isa Fmt Hashtbl Hypercall Image Insn Kasan Kcsan Kmemleak List Machine Option Probe Reg Report Services Shadow Unwind
