lib/core/report.mli: Format Hashtbl
