lib/core/kcsan.ml: Array Embsan_emu Printf Report Shadow
