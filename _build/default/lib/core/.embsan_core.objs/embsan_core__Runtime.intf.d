lib/core/runtime.mli: Dsl Embsan_emu Embsan_isa Format Kasan Kcsan Kmemleak Report Shadow
