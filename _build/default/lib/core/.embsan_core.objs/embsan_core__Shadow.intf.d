lib/core/shadow.mli: Bytes
