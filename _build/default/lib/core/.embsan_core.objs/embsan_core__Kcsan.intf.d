lib/core/kcsan.mli: Embsan_emu Report Shadow
