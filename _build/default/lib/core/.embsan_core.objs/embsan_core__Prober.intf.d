lib/core/prober.mli: Dsl Embsan_isa
