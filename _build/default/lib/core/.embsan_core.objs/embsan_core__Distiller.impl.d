lib/core/distiller.ml: Api_spec Dsl List String
