lib/core/kmemleak.mli: Hashtbl Report
