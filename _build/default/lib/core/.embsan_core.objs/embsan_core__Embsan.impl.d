lib/core/embsan.ml: Api_spec Distiller Dsl Embsan_emu Embsan_isa Image Prober Runtime
