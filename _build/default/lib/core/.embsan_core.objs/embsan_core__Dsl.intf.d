lib/core/dsl.mli: Api_spec Embsan_isa Format
