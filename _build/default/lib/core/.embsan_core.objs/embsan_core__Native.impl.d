lib/core/native.ml: Cpu Embsan_emu Embsan_isa Fault Hypercall Machine Report Unwind
