lib/core/dsl.ml: Api_spec Buffer Embsan_isa Fmt Format List String
