(* EmbSan's in-house DSL (S3.1, S3.2).

   The Distiller compiles merged sanitizer interface specifications into
   this DSL; the Prober appends the platform description and the initial
   setup routine; the Common Sanitizer Runtime consumes the whole
   specification.  The DSL has a stable textual form (parser + printer,
   round-trip tested) so specifications can be inspected, stored and
   hand-edited ("human intervention", S3.2). *)

type handler = { h_san : string; h_op : string; h_args : string list }
(* e.g. { h_san = "kasan"; h_op = "check_access"; h_args = ["addr";"size"] }
   h_args annotates which segments of the merged argument union this
   sanitizer consumes (S3.1's per-argument annotations). *)

type intercept = {
  i_point : Api_spec.point;
  i_args : string list; (* merged argument union at this point *)
  i_handlers : handler list;
}

type init_action =
  | Poison of { addr : int; size : int; code : string }
  | Unpoison of { addr : int; size : int }
  | Alloc of { ptr : int; size : int } (* pre-ready allocation replay *)
  | Region of { name : string; addr : int; size : int }
  | Note of string

type func_sig = {
  f_name : string; (* symbol or synthesized name *)
  f_addr : int;
  f_size : int; (* code bytes; accesses from inside are exempt from checks *)
  f_kind : [ `Alloc of int (* size argument index *) | `Free of int ];
}

type exempt = { e_name : string; e_addr : int; e_size : int }
(* allocator-internal helpers whose accesses are legal metadata traffic *)

type spec = {
  sanitizers : string list;
  arch : Embsan_isa.Arch.t option;
  intercepts : intercept list;
  functions : func_sig list; (* interception functions found by the Prober *)
  exempts : exempt list;
  init : init_action list;
}

let empty =
  {
    sanitizers = [];
    arch = None;
    intercepts = [];
    functions = [];
    exempts = [];
    init = [];
  }

let find_intercept spec point =
  List.find_opt (fun i -> i.i_point = point) spec.intercepts

let wants spec point san =
  match find_intercept spec point with
  | None -> false
  | Some i -> List.exists (fun h -> h.h_san = san) i.i_handlers

(* --- Printer ----------------------------------------------------------------------- *)

let pp_handler fmt h =
  Fmt.pf fmt "%s.%s(%s)" h.h_san h.h_op (String.concat ", " h.h_args)

let pp_intercept fmt i =
  Fmt.pf fmt "intercept %s(%s) -> %a;"
    (Api_spec.point_name i.i_point)
    (String.concat ", " i.i_args)
    (Fmt.list ~sep:(Fmt.any ", ") pp_handler)
    i.i_handlers

let pp_action fmt = function
  | Poison { addr; size; code } -> Fmt.pf fmt "poison 0x%x 0x%x %s;" addr size code
  | Unpoison { addr; size } -> Fmt.pf fmt "unpoison 0x%x 0x%x;" addr size
  | Alloc { ptr; size } -> Fmt.pf fmt "alloc 0x%x 0x%x;" ptr size
  | Region { name; addr; size } -> Fmt.pf fmt "region %s 0x%x 0x%x;" name addr size
  | Note s -> Fmt.pf fmt "note %S;" s

let pp_func fmt f =
  match f.f_kind with
  | `Alloc i ->
      Fmt.pf fmt "function alloc %s 0x%x 0x%x size_arg %d;" f.f_name f.f_addr
        f.f_size i
  | `Free i ->
      Fmt.pf fmt "function free %s 0x%x 0x%x ptr_arg %d;" f.f_name f.f_addr
        f.f_size i

let pp_exempt fmt e =
  Fmt.pf fmt "exempt %s 0x%x 0x%x;" e.e_name e.e_addr e.e_size

let pp fmt spec =
  Fmt.pf fmt "@[<v>sanitizers %s;@,%a%a%a%a@[<v 2>init {@,%a@]@,}@]"
    (String.concat ", " spec.sanitizers)
    Fmt.(option (fun fmt a -> Fmt.pf fmt "arch %a;@," Embsan_isa.Arch.pp a))
    spec.arch
    Fmt.(list ~sep:nop (fun fmt i -> Fmt.pf fmt "%a@," pp_intercept i))
    spec.intercepts
    Fmt.(list ~sep:nop (fun fmt f -> Fmt.pf fmt "%a@," pp_func f))
    spec.functions
    Fmt.(list ~sep:nop (fun fmt e -> Fmt.pf fmt "%a@," pp_exempt e))
    spec.exempts
    Fmt.(list ~sep:cut pp_action)
    spec.init

let to_string spec = Fmt.str "%a" pp spec

(* --- Parser ------------------------------------------------------------------------ *)

exception Dsl_error of string

let errf fmt = Format.kasprintf (fun s -> raise (Dsl_error s)) fmt

let int_of_tok s =
  try int_of_string s with _ -> errf "bad integer %S" s

(* split a statement into word tokens, treating punctuation as separators
   but keeping quoted strings intact *)
let words s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let in_string = ref false in
  String.iter
    (fun c ->
      if !in_string then begin
        if c = '"' then begin
          in_string := false;
          out := ("\"" ^ Buffer.contents buf) :: !out;
          Buffer.clear buf
        end
        else Buffer.add_char buf c
      end
      else
        match c with
        | '"' ->
            flush ();
            in_string := true
        | ' ' | '\t' | '\n' | '(' | ')' | ',' -> flush ()
        | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

(* parse "kasan.check_access" into (san, op) *)
let parse_dotted s =
  match String.index_opt s '.' with
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> errf "expected sanitizer.operation, got %S" s

let parse_intercept_stmt toks =
  match toks with
  | point :: rest ->
      let point =
        match Api_spec.point_of_name point with
        | Some p -> p
        | None -> errf "unknown interception point %s" point
      in
      (* args until "->", then handlers; each handler is san.op possibly
         followed by its own args until the next dotted token *)
      let rec split_args acc = function
        | "->" :: rest -> (List.rev acc, rest)
        | a :: rest -> split_args (a :: acc) rest
        | [] -> errf "intercept lacks '->'"
      in
      let i_args, handler_toks = split_args [] rest in
      let rec parse_handlers acc = function
        | [] -> List.rev acc
        | tok :: rest when String.contains tok '.' ->
            let h_san, h_op = parse_dotted tok in
            let rec take_args args = function
              | tok :: _ as rest when String.contains tok '.' -> (List.rev args, rest)
              | tok :: rest -> take_args (tok :: args) rest
              | [] -> (List.rev args, [])
            in
            let h_args, rest = take_args [] rest in
            parse_handlers ({ h_san; h_op; h_args } :: acc) rest
        | tok :: _ -> errf "expected handler, got %S" tok
      in
      { i_point = point; i_args; i_handlers = parse_handlers [] handler_toks }
  | [] -> errf "empty intercept"

let parse_function_stmt toks =
  match toks with
  | [ "alloc"; name; addr; size; "size_arg"; i ] ->
      {
        f_name = name;
        f_addr = int_of_tok addr;
        f_size = int_of_tok size;
        f_kind = `Alloc (int_of_tok i);
      }
  | [ "free"; name; addr; size; "ptr_arg"; i ] ->
      {
        f_name = name;
        f_addr = int_of_tok addr;
        f_size = int_of_tok size;
        f_kind = `Free (int_of_tok i);
      }
  | _ -> errf "bad function statement"

let parse_action toks =
  match toks with
  | [ "poison"; addr; size; code ] ->
      Poison { addr = int_of_tok addr; size = int_of_tok size; code }
  | [ "unpoison"; addr; size ] ->
      Unpoison { addr = int_of_tok addr; size = int_of_tok size }
  | [ "alloc"; ptr; size ] ->
      Alloc { ptr = int_of_tok ptr; size = int_of_tok size }
  | [ "region"; name; addr; size ] ->
      Region { name; addr = int_of_tok addr; size = int_of_tok size }
  | [ "note"; s ] when String.length s > 0 && s.[0] = '"' ->
      Note (String.sub s 1 (String.length s - 1))
  | _ -> errf "bad init action %s" (String.concat " " toks)

(** Parse the textual DSL back into a specification. *)
let parse text =
  (* statements are ';'-terminated except the init { ... } block *)
  let spec = ref empty in
  let in_init = ref false in
  let buf = Buffer.create 64 in
  let handle_stmt stmt =
    match words stmt with
    | [] -> ()
    | "sanitizers" :: names -> spec := { !spec with sanitizers = names }
    | [ "arch"; a ] -> (
        match Embsan_isa.Arch.of_string a with
        | Some arch -> spec := { !spec with arch = Some arch }
        | None -> errf "unknown arch %s" a)
    | "intercept" :: rest ->
        spec := { !spec with intercepts = !spec.intercepts @ [ parse_intercept_stmt rest ] }
    | "function" :: rest ->
        spec := { !spec with functions = !spec.functions @ [ parse_function_stmt rest ] }
    | [ "exempt"; name; addr; size ] ->
        spec :=
          {
            !spec with
            exempts =
              !spec.exempts
              @ [ { e_name = name; e_addr = int_of_tok addr; e_size = int_of_tok size } ];
          }
    | toks when !in_init ->
        spec := { !spec with init = !spec.init @ [ parse_action toks ] }
    | toks -> errf "unexpected statement %s" (String.concat " " toks)
  in
  String.iter
    (fun c ->
      match c with
      | ';' ->
          handle_stmt (Buffer.contents buf);
          Buffer.clear buf
      | '{' when String.trim (Buffer.contents buf) = "init" ->
          in_init := true;
          Buffer.clear buf
      | '}' when !in_init ->
          handle_stmt (Buffer.contents buf);
          in_init := false;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    text;
  (match String.trim (Buffer.contents buf) with
  | "" -> ()
  | s -> errf "trailing content %S" s);
  !spec
