(** Embedded Platform Configuration Prober (paper section 3.2): produces
    the platform description and initial setup routine, in the DSL, for the
    three firmware categories - compile-time instrumented, source/symbols
    available, and closed-source binary. *)

type platform = {
  p_arch : Embsan_isa.Arch.t;
  p_entry : int;
  p_ram_base : int;
  p_ram_size : int;
  p_functions : Dsl.func_sig list;
  p_exempts : Dsl.exempt list;
  p_init : Dsl.init_action list;
  p_ready_insns : int;  (** dry-run instructions until ready-to-run *)
  p_notes : string list;
}

(** Domain-specific prior knowledge the tester can supply ("human
    intervention", section 3.2). *)
type hints = {
  h_alloc_names : string list;
  h_free_names : string list;
  h_exempt_prefixes : string list;
  h_heap_symbol : string option;
  h_heap_region : (int * int) option;
  h_alloc_addrs : (int * int) list;  (** binary mode: (addr, size-arg) *)
  h_free_addrs : (int * int) list;  (** binary mode: (addr, ptr-arg) *)
}

val no_hints : hints

val default_alloc_names : string list
val default_free_names : string list
val default_heap_symbols : string list
val default_exempt_prefixes : string list

exception Probe_error of string

(** Mode 1: dry-run trap-instrumented firmware against the dummy sanitizer
    library, recording every pre-ready sanitizer action as the init
    routine. *)
val probe_instrumented :
  ?ram_base:int ->
  ?ram_size:int ->
  ?boot_budget:int ->
  Embsan_isa.Image.t ->
  platform

(** Mode 2: identify allocator entry points and the heap region from the
    symbol table, then dry-run to the ready point. *)
val probe_symbols :
  ?ram_base:int ->
  ?ram_size:int ->
  ?boot_budget:int ->
  ?hints:hints ->
  Embsan_isa.Image.t ->
  platform

(** Mode 3: stripped binary - scan for function prologues, dry-run with
    call/return probes and infer allocator-shaped functions dynamically. *)
val probe_binary :
  ?ram_base:int ->
  ?ram_size:int ->
  ?boot_budget:int ->
  ?hints:hints ->
  Embsan_isa.Image.t ->
  platform

(** Fold a probed platform into a distilled DSL spec. *)
val apply_to_spec : Dsl.spec -> platform -> Dsl.spec
