(* FreeRTOS heap_4-style allocator (pvPortMalloc/vPortFree): an
   address-ordered free list with split-on-allocate and coalesce-on-free,
   with in-band 8-byte block headers [size ; next-offset/magic].  All
   metadata traffic runs at the (exempt, nosan) allocator functions' pcs. *)

let pool_size = 16384

let source =
  Printf.sprintf
    {|
barr heap_pool[%d];
var heap4_head = 0xFFFFF;     // free-list head offset; 0xFFFFF = none
var heap4_lock = 0;
var heap4_ready = 0;
var heap4_free_bytes = 0;

nosan fun heap4_init_once() {
  if (heap4_ready == 0) {
    heap4_ready = 1;
    heap4_head = 0;
    heap4_free_bytes = %d;
    store32(&heap_pool, %d);
    store32(&heap_pool + 4, 0xFFFFF);
  }
  return 0;
}

nosan fun pvPortMalloc(size) {
  if (size == 0) { return 0; }
  while (amo_swap(&heap4_lock, 1) != 0) { }
  heap4_init_once();
  var need = ((size + 7) & ~7) + 8;
  var prev = 0xFFFFF;
  var cur = heap4_head;
  while (cur != 0xFFFFF) {
    var base = &heap_pool + cur;
    var bsize = load32(base);
    if (bsize >= need) {
      var next = load32(base + 4);
      if (bsize - need >= 16) {
        var rem = cur + need;
        store32(&heap_pool + rem, bsize - need);
        store32(&heap_pool + rem + 4, next);
        next = rem;
        store32(base, need);
        bsize = need;
      }
      if (prev == 0xFFFFF) { heap4_head = next; }
      else { store32(&heap_pool + prev + 4, next); }
      store32(base + 4, 0xA110C8ED);        // allocated magic
      heap4_free_bytes = heap4_free_bytes - bsize;
      store32(&heap4_lock, 0);
      san_alloc(base + 8, size);
      return base + 8;
    }
    prev = cur;
    cur = load32(base + 4);
  }
  store32(&heap4_lock, 0);
  return 0;
}

nosan fun vPortFree(p) {
  if (p == 0) { return 0; }
  while (amo_swap(&heap4_lock, 1) != 0) { }
  var base = p - 8;
  var off = base - &heap_pool;
  var bsize = load32(base);
  var objsize = bsize - 8;      // poison only the freed payload, not the
                                // whole coalesced region
  heap4_free_bytes = heap4_free_bytes + bsize;
  // address-ordered insert
  var prev = 0xFFFFF;
  var cur = heap4_head;
  while (cur != 0xFFFFF) {
    if (cur > off) { break; }
    prev = cur;
    cur = load32(&heap_pool + cur + 4);
  }
  // coalesce with the following block
  if (cur != 0xFFFFF) {
    if (off + bsize == cur) {
      bsize = bsize + load32(&heap_pool + cur);
      store32(base, bsize);
      cur = load32(&heap_pool + cur + 4);
    }
  }
  store32(base + 4, cur);
  if (prev == 0xFFFFF) { heap4_head = off; }
  else {
    // coalesce with the preceding block
    var psize = load32(&heap_pool + prev);
    if (prev + psize == off) {
      store32(&heap_pool + prev, psize + bsize);
      store32(&heap_pool + prev + 4, load32(base + 4));
    }
    else { store32(&heap_pool + prev + 4, off); }
  }
  store32(&heap4_lock, 0);
  san_free(p, objsize);
  return 0;
}

nosan fun kheap_init() {
  san_poison(&heap_pool, %d);
  return 0;
}
|}
    pool_size pool_size pool_size pool_size

let unit_ = { Embsan_minic.Driver.src_name = "alloc_heap4"; code = source }
