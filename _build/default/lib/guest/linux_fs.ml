(* Embedded-Linux filesystem subsystems with injected bugs (Tables 3/4):
   NFS client, NFS common XDR decoding, btrfs (UAF variant and the SMP race
   variant), FUSE and a minimal VFS path walker. *)

open Defs
module Report = Embsan_core.Report

(* --- fs/nfs: read-ahead window (OOB, mt7629 and rk3566) --------------------- *)

let nfs : module_def =
  {
    m_name = "fs_nfs";
    m_source =
      {|
var nfs_mounted = 0;
var nfs_reads = 0;

// BUG (fs/nfs, OOB write): the server-provided chunk count is multiplied
// by the 8-byte chunk size after the <=12 validation, so counts 9..12
// overrun the 72-byte read descriptor (9 slots of 8).
fun nfs_read_ahead(chunks, seed) {
  if (chunks > 12) { return 0 - 22; }
  var desc = kmalloc(72);
  if (desc == 0) { return 0 - 12; }
  var i = 0;
  while (i < chunks) {
    store32(desc + i * 8, seed + i);
    store32(desc + i * 8 + 4, i);
    i = i + 1;
  }
  nfs_reads = nfs_reads + 1;
  var first = load32(desc);
  kfree(desc);
  return first & 0x7FFFFFFF;
}

fun sys_nfs(a, b, c) {
  if (a == 0) { nfs_mounted = 1; return 0; }
  if (a == 1) {
    if (nfs_mounted == 0) { return 0 - 19; }
    return nfs_read_ahead(b, c);
  }
  if (a == 2) { nfs_mounted = 0; return nfs_reads; }
  return 0 - 22;
}

fun fs_nfs_init() {
  syscall_table[8] = &sys_nfs;
  return 0;
}
|};
    m_init = Some "fs_nfs_init";
    m_syscalls =
      [
        { sc_nr = 8; sc_name = "nfs"; sc_args = [ Flag [ 0; 1; 2 ]; Range (0, 16); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/nfs_read_ahead";
          b_paper_location = "fs/nfs";
          b_symbol = "nfs_read_ahead";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (8, [| 0; 0; 0 |]); (8, [| 1; 11; 5 |]) ];
          b_benign = [ (8, [| 0; 0; 0 |]); (8, [| 1; 8; 5 |]) ];
        };
      ];
  }

(* --- fs/nfs_common: XDR string decode (OOB, armvirt and rk3566) ------------- *)

let nfs_common : module_def =
  {
    m_name = "fs_nfs_common";
    m_source =
      {|
barr xdr_wire[96];
var xdr_decoded = 0;

// BUG (fs/nfs_common, OOB write): the name buffer is sized from the
// on-wire length, but XDR copies the 4-byte-aligned padded length, so any
// non-multiple-of-4 length spills up to 3 bytes past the buffer.
fun nfs_common_decode(wire_len) {
  if (wire_len == 0) { return 0 - 22; }
  if (wire_len > 64) { return 0 - 22; }
  var name = kmalloc(wire_len);
  if (name == 0) { return 0 - 12; }
  var padded = (wire_len + 3) & ~3;
  var i = 0;
  while (i < padded) {
    store8(name + i, load8(&xdr_wire + (i & 95)));
    i = i + 1;
  }
  xdr_decoded = xdr_decoded + 1;
  var csum_len = wire_len;
  if (csum_len > 8) { csum_len = 8; }
  var h = fnv1a(name, csum_len);
  kfree(name);
  return h & 0x7FFFFFFF;
}

fun sys_nfs_common(a, b, c) {
  if (a == 0) { return xdr_decoded + c; }
  if (a == 1) { return nfs_common_decode(b); }
  return 0 - 22;
}

fun fs_nfs_common_init() {
  syscall_table[9] = &sys_nfs_common;
  memset(&xdr_wire, 0x41, 96);
  return 0;
}
|};
    m_init = Some "fs_nfs_common_init";
    m_syscalls =
      [
        { sc_nr = 9; sc_name = "nfs_common"; sc_args = [ Flag [ 0; 1 ]; Len; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/nfs_common_decode";
          b_paper_location = "fs/nfs_common";
          b_symbol = "nfs_common_decode";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (9, [| 1; 62; 0 |]) ];
          b_benign = [ (9, [| 1; 60; 0 |]) ];
        };
      ];
  }

(* --- fs/btrfs ----------------------------------------------------------------- *)

let btrfs_uaf_bug =
  {
    b_id = "linux/btrfs_scan_device";
    b_paper_location = "fs/btrfs";
    b_symbol = "btrfs_scan_one_device";
    b_alt_symbols = [];
    b_kind = Report.Use_after_free;
    b_class = Heap_bug;
    b_syscalls = [ (10, [| 0; 1; 0 |]); (10, [| 1; 0; 0 |]) ];
    b_benign = [ (10, [| 0; 0; 0 |]); (10, [| 1; 0; 0 |]) ];
  }

let btrfs_race_bugs =
  [
    {
      b_id = "linux/btrfs_trans_race";
      b_paper_location = "fs/btrfs";
      b_symbol = "btrfs_commit_transaction";
      b_alt_symbols = [ "btrfs_sync"; "btrfs_commit_worker" ];
      b_kind = Report.Data_race;
      b_class = Race_bug;
      b_syscalls = [ (11, [| 0; 0; 0 |]); (11, [| 0; 0; 0 |]); (11, [| 0; 0; 0 |]) ];
      b_benign = [];
    };
    {
      b_id = "linux/btrfs_dirty_race";
      b_paper_location = "fs/btrfs";
      b_symbol = "btrfs_mark_dirty";
      b_alt_symbols = [];
      (* note: conflicts attributed to the sync/worker read side belong to
         the generation race above *)
      b_kind = Report.Data_race;
      b_class = Race_bug;
      b_syscalls = [ (11, [| 1; 0; 0 |]); (11, [| 1; 0; 0 |]); (11, [| 1; 0; 0 |]) ];
      b_benign = [];
    };
  ]

(* [races]: include the unsynchronized transaction-commit worker (only the
   SMP x86_64 build runs it).  [uaf]: include the stale device-handle scan
   bug (the bcm63xx kernel version). *)
let btrfs ~uaf ~races : module_def =
  let scan_source =
    if uaf then
      {|
// BUG (fs/btrfs, UAF): a device handle released on the degraded path stays
// in the device list and the next scan reads its generation field.
fun btrfs_scan_one_device(degraded) {
  if (btrfs_device == 0) {
    btrfs_device = kmalloc(56);
    if (btrfs_device == 0) { return 0 - 12; }
    store32(btrfs_device, 4096);       // sectorsize
    store32(btrfs_device + 4, 1);      // generation
  }
  if (degraded == 1) {
    if (btrfs_degraded == 0) {
      kfree(btrfs_device);
      btrfs_degraded = 1;              // handle stays in the list
    }
    return 0 - 117;
  }
  return load32(btrfs_device + 4);
}
|}
    else
      {|
fun btrfs_scan_one_device(degraded) {
  if (btrfs_device == 0) {
    btrfs_device = kmalloc(56);
    if (btrfs_device == 0) { return 0 - 12; }
    store32(btrfs_device, 4096);
    store32(btrfs_device + 4, 1);
  }
  if (degraded == 1) {
    kfree(btrfs_device);
    btrfs_device = 0;                  // fixed: drop from the list
    btrfs_degraded = 1;
    return 0 - 117;
  }
  return load32(btrfs_device + 4);
}
|}
  in
  let race_source =
    if races then
      {|
// BUG (fs/btrfs, data races): transaction generation and the dirty-bytes
// accounting are updated by both the syscall path and the async commit
// worker without synchronization.
fun btrfs_commit_transaction() {
  btrfs_generation = btrfs_generation + 1;
  btrfs_dirty_bytes = btrfs_dirty_bytes + 512;
  return btrfs_generation;
}

fun btrfs_mark_dirty(n) {
  btrfs_dirty_bytes = btrfs_dirty_bytes + n;
  if (btrfs_dirty_bytes > 65536) { btrfs_dirty_bytes = 0; }
  return btrfs_dirty_bytes;
}

fun btrfs_commit_worker(a, b, c) {
  var i = 0;
  while (i < 400) {
    btrfs_commit_transaction();
    btrfs_mark_dirty(64);
    i = i + 1;
  }
  return 0;
}

fun btrfs_sync(which, n) {
  queue_work(&btrfs_commit_worker);
  var i = 0;
  while (i < 400) {
    if (which == 0) { btrfs_commit_transaction(); }
    else { btrfs_mark_dirty(n & 0xFF); }
    i = i + 1;
  }
  return btrfs_generation;
}
|}
    else
      {|
fun btrfs_sync(which, n) {
  btrfs_generation = btrfs_generation + which + (n & 1);
  return btrfs_generation;
}
|}
  in
  {
    m_name = "fs_btrfs";
    m_source =
      Printf.sprintf
        {|
var btrfs_device = 0;
var btrfs_degraded = 0;
var btrfs_generation = 0;
var btrfs_dirty_bytes = 0;
%s
%s
fun sys_btrfs_scan(a, b, c) {
  if (a == 0) { return btrfs_scan_one_device(b + (c & 0)); }
  if (a == 1) { return btrfs_scan_one_device(0); }
  return 0 - 22;
}

fun sys_btrfs_sync(a, b, c) {
  return btrfs_sync(a, b + (c & 0));
}

fun fs_btrfs_init() {
  syscall_table[10] = &sys_btrfs_scan;
  syscall_table[11] = &sys_btrfs_sync;
  return 0;
}
|}
        scan_source race_source;
    m_init = Some "fs_btrfs_init";
    m_syscalls =
      [
        { sc_nr = 10; sc_name = "btrfs_scan"; sc_args = [ Flag [ 0; 1 ]; Flag [ 0; 1 ]; Any32 ] };
        { sc_nr = 11; sc_name = "btrfs_sync"; sc_args = [ Flag [ 0; 1 ]; Len; Any32 ] };
      ];
    m_bugs = (if uaf then [ btrfs_uaf_bug ] else []) @ if races then btrfs_race_bugs else [];
  }

(* --- fs/fuse: connection setup (double free, ipq807x) ------------------------ *)

let fuse : module_def =
  {
    m_name = "fs_fuse";
    m_source =
      {|
var fuse_conn = 0;
var fuse_conn_live = 0;

// BUG (fs/fuse, double free): when INIT negotiation fails the connection
// is freed, but the abort path frees it again because the live flag is
// updated only after the reply is sent.
fun fuse_conn_setup(version) {
  if (fuse_conn_live != 0) { return 0 - 16; }
  fuse_conn = kmalloc(64);
  if (fuse_conn == 0) { return 0 - 12; }
  store32(fuse_conn, version);
  fuse_conn_live = 1;
  if (version < 7) {
    kfree(fuse_conn);            // negotiation failed
    fuse_abort_conn();           // abort also frees
    return 0 - 71;
  }
  return 0;
}

fun fuse_abort_conn() {
  if (fuse_conn_live == 0) { return 0 - 2; }
  kfree(fuse_conn);
  fuse_conn = 0;
  fuse_conn_live = 0;
  return 0;
}

fun sys_fuse(a, b, c) {
  if (a == 0) { return fuse_conn_setup(b + (c & 0)); }
  if (a == 1) { return fuse_abort_conn(); }
  return 0 - 22;
}

fun fs_fuse_init() {
  syscall_table[12] = &sys_fuse;
  return 0;
}
|};
    m_init = Some "fs_fuse_init";
    m_syscalls =
      [
        { sc_nr = 12; sc_name = "fuse"; sc_args = [ Flag [ 0; 1 ]; Range (0, 15); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/fuse_conn_setup";
          b_paper_location = "fs/fuse";
          b_symbol = "fuse_abort_conn";
          b_alt_symbols = [];
          b_kind = Report.Double_free;
          b_class = Heap_bug;
          b_syscalls = [ (12, [| 0; 5; 0 |]) ];
          b_benign = [ (12, [| 0; 9; 0 |]); (12, [| 1; 0; 0 |]) ];
        };
      ];
  }

let linux_all ~sched_classify ~sched_filter ~btrfs_uaf ~btrfs_races =
  [
    nfs;
    nfs_common;
    btrfs ~uaf:btrfs_uaf ~races:btrfs_races;
    fuse;
    Linux_net.sched ~classify_bug:sched_classify ~filter_bug:sched_filter;
  ]
