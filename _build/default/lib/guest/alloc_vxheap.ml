(* VxWorks-style memory partition allocator (memPartAlloc/memPartFree):
   next-fit over an implicit block list with a rover that resumes the scan
   where the previous allocation left off. *)

let pool_size = 16384

let source =
  Printf.sprintf
    {|
barr heap_pool[%d];
var vx_lock = 0;
var vx_ready = 0;
var vx_rover = 0;

nosan fun vx_init_once() {
  if (vx_ready == 0) {
    vx_ready = 1;
    store32(&heap_pool, %d);
    store32(&heap_pool + 4, 0x4D454D50);   // "MEMP"
  }
  return 0;
}

// scan from [start] until [limit]; returns block offset or 0xFFFFF
nosan fun vx_scan(start, limit, need) {
  var off = start;
  while (off < limit) {
    var hdr = load32(&heap_pool + off);
    var used = hdr >> 31;
    var bsize = hdr & 0x7FFFFFFF;
    if (used == 0) {
      // merge following free blocks
      while (off + bsize < %d) {
        var nh = load32(&heap_pool + off + bsize);
        if ((nh >> 31) != 0) { break; }
        bsize = bsize + (nh & 0x7FFFFFFF);
      }
      store32(&heap_pool + off, bsize);
      if (bsize >= need) { return off; }
    }
    off = off + bsize;
  }
  return 0xFFFFF;
}

nosan fun memPartAlloc(size) {
  if (size == 0) { return 0; }
  while (amo_swap(&vx_lock, 1) != 0) { }
  vx_init_once();
  var need = ((size + 7) & ~7) + 8;
  var found = vx_scan(vx_rover, %d, need);
  if (found == 0xFFFFF) { found = vx_scan(0, vx_rover, need); }
  if (found == 0xFFFFF) {
    store32(&vx_lock, 0);
    return 0;
  }
  var bsize = load32(&heap_pool + found) & 0x7FFFFFFF;
  if (bsize - need >= 16) {
    store32(&heap_pool + found + need, bsize - need);
    store32(&heap_pool + found + need + 4, 0x4D454D50);
    bsize = need;
  }
  store32(&heap_pool + found, bsize | 0x80000000);
  store32(&heap_pool + found + 4, 0x4D454D50);
  vx_rover = found + bsize;
  if (vx_rover >= %d) { vx_rover = 0; }
  store32(&vx_lock, 0);
  san_alloc(&heap_pool + found + 8, size);
  return &heap_pool + found + 8;
}

nosan fun memPartFree(p) {
  if (p == 0) { return 0; }
  while (amo_swap(&vx_lock, 1) != 0) { }
  var base = p - 8;
  var hdr = load32(base);
  var bsize = hdr & 0x7FFFFFFF;
  store32(base, bsize);
  store32(&vx_lock, 0);
  san_free(p, bsize - 8);
  return 0;
}

nosan fun kheap_init() {
  san_poison(&heap_pool, %d);
  return 0;
}
|}
    pool_size pool_size pool_size pool_size pool_size pool_size

let unit_ = { Embsan_minic.Driver.src_name = "alloc_vxheap"; code = source }
