(** Shared definitions for guest kernels: syscall descriptors (consumed by
    the fuzzers), kernel-module descriptions and injected-bug records. *)

(** Argument domains for syscall fuzzing, syzlang-style. *)
type arg_domain =
  | Flag of int list  (** one of these values *)
  | Range of int * int  (** inclusive *)
  | Len  (** length-like: small, occasionally a boundary constant *)
  | Any32

type syscall_desc = {
  sc_nr : int;
  sc_name : string;
  sc_args : arg_domain list;  (** at most 3 *)
}

(** Detectability class - decides the EmbSan-C/EmbSan-D capability matrix
    of Table 2. *)
type bug_class =
  | Heap_bug  (** detectable by C and D (poisoned heap / freed memory) *)
  | Global_bug  (** needs compile-time global redzones: C and native only *)
  | Stack_bug  (** needs compile-time stack redzones: C and native only *)
  | Null_bug  (** architectural fault; caught by every configuration *)
  | Race_bug  (** needs the KCSAN functionality *)

type bug = {
  b_id : string;
  b_paper_location : string;  (** the paper's Location column *)
  b_symbol : string;  (** guest function containing the bad access *)
  b_alt_symbols : string list;
  b_kind : Embsan_core.Report.bug_kind;
  b_class : bug_class;
  b_syscalls : (int * int array) list;  (** reproducer: calls in order *)
  b_benign : (int * int array) list;  (** same path, no violation *)
}

val bug_symbols : bug -> string list

(** Does a report of kind [k] match this bug?  Accepts the real-world
    manifestations: an OOB landing in freed memory reports as UAF, a
    double free of an untracked block as invalid-free. *)
val kind_matches : bug -> Embsan_core.Report.bug_kind -> bool

type module_def = {
  m_name : string;
  m_source : string;  (** MiniC compilation unit *)
  m_init : string option;  (** init function called from kmain *)
  m_syscalls : syscall_desc list;
  m_bugs : bug list;
}

val reproducer : bug -> (int * int array) list

(** Size of each kernel's indirect syscall table. *)
val table_size : int
