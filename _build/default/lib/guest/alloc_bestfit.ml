(* LiteOS-style best-fit allocator (LOS_MemAlloc/LOS_MemFree): an implicit
   block list over the whole pool - every block carries an 8-byte header
   [size|used-bit ; magic].  Allocation walks all blocks picking the
   best-fitting free one, coalescing adjacent free runs as it walks. *)

let pool_size = 16384

let source =
  Printf.sprintf
    {|
barr heap_pool[%d];
var los_lock = 0;
var los_ready = 0;

nosan fun los_init_once() {
  if (los_ready == 0) {
    los_ready = 1;
    store32(&heap_pool, %d);          // one big free block (bit31 clear)
    store32(&heap_pool + 4, 0x105A110C);
  }
  return 0;
}

nosan fun LOS_MemAlloc(size) {
  if (size == 0) { return 0; }
  while (amo_swap(&los_lock, 1) != 0) { }
  los_init_once();
  var need = ((size + 7) & ~7) + 8;
  var off = 0;
  var best = 0xFFFFF;
  var best_size = 0xFFFFF;
  while (off < %d) {
    var hdr = load32(&heap_pool + off);
    var used = hdr >> 31;
    var bsize = hdr & 0x7FFFFFFF;
    if (used == 0) {
      // coalesce the following free run into this block
      while (off + bsize < %d) {
        var nh = load32(&heap_pool + off + bsize);
        if ((nh >> 31) != 0) { break; }
        bsize = bsize + (nh & 0x7FFFFFFF);
      }
      store32(&heap_pool + off, bsize);
      if (bsize >= need) {
        if (bsize < best_size) { best = off; best_size = bsize; }
      }
    }
    off = off + bsize;
  }
  if (best == 0xFFFFF) {
    store32(&los_lock, 0);
    return 0;
  }
  if (best_size - need >= 16) {
    store32(&heap_pool + best + need, best_size - need);
    store32(&heap_pool + best + need + 4, 0x105A110C);
    best_size = need;
  }
  store32(&heap_pool + best, best_size | 0x80000000);
  store32(&heap_pool + best + 4, 0x105A110C);
  store32(&los_lock, 0);
  san_alloc(&heap_pool + best + 8, size);
  return &heap_pool + best + 8;
}

nosan fun LOS_MemFree(p) {
  if (p == 0) { return 0; }
  while (amo_swap(&los_lock, 1) != 0) { }
  var base = p - 8;
  var hdr = load32(base);
  var bsize = hdr & 0x7FFFFFFF;
  store32(base, bsize);               // clear the used bit
  store32(&los_lock, 0);
  san_free(p, bsize - 8);
  return 0;
}

nosan fun kheap_init() {
  san_poison(&heap_pool, %d);
  return 0;
}
|}
    pool_size pool_size pool_size pool_size pool_size

let unit_ = { Embsan_minic.Driver.src_name = "alloc_bestfit"; code = source }
