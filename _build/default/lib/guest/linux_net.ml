(* Embedded-Linux network subsystems with injected bugs (Tables 3/4).

   Handlers follow the realistic pattern: validate (incompletely), allocate
   from the slab, move payload bytes, and maintain per-subsystem state.
   Each bug lives in a function named after the paper's report location.

   Modules shared by firmware with *different* bug sets are generated per
   variant (a board's kernel tree carries different driver versions), so a
   campaign on one firmware cannot find another firmware's bugs. *)

open Defs
module Report = Embsan_core.Report

(* --- net/netfilter: rule table management (OOB write, OpenWRT-armvirt) --- *)

let netfilter : module_def =
  {
    m_name = "net_netfilter";
    m_source =
      {|
// netfilter: a rule is 16 bytes: [proto, verdict, match_len, pad] + match bytes
barr nf_scratch[64];
var nf_rule_count = 0;
var nf_drop_count = 0;

fun nf_checksum_rule(rule, len) {
  return fnv1a(rule, len);
}

// BUG (net/netfilter, OOB write): match_len is validated against the rule
// capacity but the 4-byte header is not accounted for, so match_len in
// (12, 16] writes past the 16-byte rule object.
fun nf_setrule(proto, verdict, match_len) {
  if (match_len > 16) { return 0 - 22; }
  var rule = kmalloc(16);
  if (rule == 0) { return 0 - 12; }
  store8(rule, proto);
  store8(rule + 1, verdict);
  store8(rule + 2, match_len);
  store8(rule + 3, 0);
  var i = 0;
  while (i < match_len) {
    store8(rule + 4 + i, load8(&nf_scratch + (i & 63)));
    i = i + 1;
  }
  nf_rule_count = nf_rule_count + 1;
  var sum = nf_checksum_rule(rule, 4);
  kfree(rule);
  return sum & 0x7FFFFFFF;
}

fun sys_netfilter(a, b, c) {
  if (a == 0) { return nf_rule_count; }
  if (a == 1) { return nf_setrule(b & 0xFF, (b >> 8) & 0xFF, c); }
  if (a == 2) { nf_drop_count = nf_drop_count + 1; return nf_drop_count; }
  return 0 - 22;
}

fun net_netfilter_init() {
  syscall_table[32] = &sys_netfilter;
  memset(&nf_scratch, 0x5A, 64);
  return 0;
}
|};
    m_init = Some "net_netfilter_init";
    m_syscalls =
      [
        {
          sc_nr = 32;
          sc_name = "netfilter";
          sc_args = [ Flag [ 0; 1; 2 ]; Any32; Len ];
        };
      ];
    m_bugs =
      [
        {
          b_id = "linux/nf_setrule";
          b_paper_location = "net/netfilter";
          b_symbol = "nf_setrule";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (32, [| 1; 6; 15 |]) ];
          b_benign = [ (32, [| 1; 6; 10 |]) ];
        };
      ];
  }

(* --- net/wireless: scan result handling (OOB write, OpenWRT-armvirt) ------ *)

let wireless : module_def =
  {
    m_name = "net_wireless";
    m_source =
      {|
var wext_scan_active = 0;
var wext_bss_seen = 0;

// BUG (net/wireless, OOB write): the SSID length field from the "air" is
// trusted; IEEE 802.11 allows up to 32 bytes but the element buffer is
// sized for 32 *total* bytes including the 2-byte element header.
fun wext_scan_result(ssid_len, seed) {
  var bss = kmalloc(32);
  if (bss == 0) { return 0 - 12; }
  if (ssid_len > 32) { kfree(bss); return 0 - 22; }
  store8(bss, 0);              // element id
  store8(bss + 1, ssid_len);   // element len
  var i = 0;
  while (i < ssid_len) {
    store8(bss + 2 + i, (seed + i) & 0xFF);
    i = i + 1;
  }
  wext_bss_seen = wext_bss_seen + 1;
  var h = fnv1a(bss, 2);
  kfree(bss);
  return h & 0x7FFFFFFF;
}

fun sys_wireless(a, b, c) {
  if (a == 0) { wext_scan_active = 1; return 0; }
  if (a == 1) { return wext_scan_result(b, c); }
  if (a == 2) { wext_scan_active = 0; return wext_bss_seen; }
  return 0 - 22;
}

fun net_wireless_init() {
  syscall_table[33] = &sys_wireless;
  return 0;
}
|};
    m_init = Some "net_wireless_init";
    m_syscalls =
      [
        {
          sc_nr = 33;
          sc_name = "wireless";
          sc_args = [ Flag [ 0; 1; 2 ]; Len; Any32 ];
        };
      ];
    m_bugs =
      [
        {
          b_id = "linux/wext_scan_result";
          b_paper_location = "net/wireless";
          b_symbol = "wext_scan_result";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (33, [| 1; 31; 7 |]) ];
          b_benign = [ (33, [| 1; 16; 7 |]) ];
        };
      ];
  }

(* --- net/sched: classifier OOB (ipq807x variant) / filter UAF (rk3566) ----- *)

let classify_bug =
  {
    b_id = "linux/tc_classify";
    b_paper_location = "net/sched";
    b_symbol = "tc_classify";
    b_alt_symbols = [];
    b_kind = Report.Oob_access;
    b_class = Global_bug;
    (* dscp 8..11 lands in the 16-byte global redzone; beyond that the read
       silently hits the next object (the classic redzone blind spot) *)
    b_syscalls = [ (34, [| 0; 9; 0 |]) ];
    b_benign = [ (34, [| 0; 5; 0 |]) ];
  }

let filter_uaf_bug =
  {
    b_id = "linux/tc_filter_del";
    b_paper_location = "net/sched";
    b_symbol = "tc_filter_stats";
    b_alt_symbols = [];
    b_kind = Report.Use_after_free;
    b_class = Heap_bug;
    b_syscalls = [ (34, [| 1; 1; 0 |]); (34, [| 2; 0; 0 |]); (34, [| 3; 0; 0 |]) ];
    b_benign = [ (34, [| 1; 1; 0 |]); (34, [| 3; 0; 0 |]) ];
  }

let sched ~classify_bug:with_oob ~filter_bug:with_uaf : module_def =
  let classify_guard =
    if with_oob then "" else "  if (dscp > 7) { return 0; }\n"
  in
  let del_clear =
    if with_uaf then "  if (flush == 1) { tc_filter = 0; }"
    else "  tc_filter = 0; if (flush == 1) { tc_filter = 0; }"
  in
  {
    m_name = "net_sched";
    m_source =
      Printf.sprintf
        {|
var tc_filter = 0;
var tc_filter_live = 0;
var tc_class_hits = 0;

arr tc_prio_map[8] = { 0, 1, 2, 3, 4, 5, 6, 7 };

// priority-to-band lookup; buggy kernels trust the 8-bit DSCP value even
// though the map has 8 entries (global OOB read)
fun tc_classify(dscp) {
%s  var band = tc_prio_map[dscp];
  tc_class_hits = tc_class_hits + 1;
  return band;
}

fun tc_filter_new(kind) {
  if (tc_filter_live != 0) { return 0 - 16; }
  tc_filter = kmalloc(40);
  if (tc_filter == 0) { return 0 - 12; }
  store32(tc_filter, kind);
  store32(tc_filter + 4, 0);
  tc_filter_live = 1;
  return 0;
}

// deleting without the flush flag leaves the stale pointer behind in buggy
// kernels; a subsequent stats query dereferences it (UAF)
fun tc_filter_del(flush) {
  if (tc_filter_live == 0) { return 0 - 2; }
  kfree(tc_filter);
  tc_filter_live = 0;
%s
  return 0;
}

fun tc_filter_stats() {
  if (tc_filter == 0) { return 0 - 2; }
  return load32(tc_filter + 4);
}

fun sys_sched(a, b, c) {
  if (a == 0) { return tc_classify(b & 0xFF); }
  if (a == 1) { return tc_filter_new(b + c); }
  if (a == 2) { return tc_filter_del(b); }
  if (a == 3) { return tc_filter_stats(); }
  return 0 - 22;
}

fun net_sched_init() {
  syscall_table[34] = &sys_sched;
  return 0;
}
|}
        classify_guard del_clear;
    m_init = Some "net_sched_init";
    m_syscalls =
      [
        {
          sc_nr = 34;
          sc_name = "sched";
          sc_args = [ Flag [ 0; 1; 2; 3 ]; Range (0, 15); Flag [ 0; 1 ] ];
        };
      ];
    m_bugs =
      (if with_oob then [ classify_bug ] else [])
      @ if with_uaf then [ filter_uaf_bug ] else [];
  }

(* --- net/core: skb lifetime (double free, OpenWRT-mt7629) ------------------- *)

let core : module_def =
  {
    m_name = "net_core";
    m_source =
      {|
var skb_alloc_count = 0;

fun skb_alloc(len) {
  if (len > 200) { return 0; }
  var skb = kmalloc(len + 16);
  if (skb == 0) { return 0; }
  store32(skb, len);
  store32(skb + 4, 1);          // refcount
  skb_alloc_count = skb_alloc_count + 1;
  return skb;
}

// BUG (net/core, double free): the congested path frees the clone and
// reports a collapsed error code, so the unwind frees it again.
fun skb_clone_xmit(len, corrupt) {
  var skb = skb_alloc(len);
  if (skb == 0) { return 0 - 12; }
  var clone = kmalloc(len + 16);
  if (clone == 0) { kfree(skb); return 0 - 12; }
  memcpy(clone, skb, len + 16);
  var err = 0;
  if (corrupt == 7) {
    kfree(clone);               // error path frees...
    err = 0 - 5;
  }
  if (err != 0) {
    kfree(clone);               // ...and the unwind frees again
    kfree(skb);
    return err;
  }
  kfree(clone);
  kfree(skb);
  return len;
}

fun sys_netcore(a, b, c) {
  if (a == 0) { return skb_alloc_count; }
  if (a == 1) { return skb_clone_xmit(b & 0xFF, c); }
  return 0 - 22;
}

fun net_core_init() {
  syscall_table[36] = &sys_netcore;
  return 0;
}
|};
    m_init = Some "net_core_init";
    m_syscalls =
      [
        { sc_nr = 36; sc_name = "netcore"; sc_args = [ Flag [ 0; 1 ]; Len; Range (0, 15) ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/skb_clone_xmit";
          b_paper_location = "net/core";
          b_symbol = "skb_clone_xmit";
          b_alt_symbols = [];
          b_kind = Report.Double_free;
          b_class = Heap_bug;
          b_syscalls = [ (36, [| 1; 32; 7 |]) ];
          b_benign = [ (36, [| 1; 32; 3 |]) ];
        };
      ];
  }

(* --- netrom: session teardown (double free, OpenWRT-rtl839x) ----------------- *)

let netrom : module_def =
  {
    m_name = "fs_netrom";
    m_source =
      {|
var nr_session = 0;
var nr_session_state = 0;

fun netrom_connect(addr) {
  if (nr_session != 0) { return 0 - 16; }
  nr_session = kmalloc(48);
  if (nr_session == 0) { return 0 - 12; }
  store32(nr_session, addr);
  nr_session_state = 1;
  return 0;
}

// BUG (fs/netrom, double free): close on a session already torn down by
// the timeout path frees the control block a second time.
fun netrom_close(timed_out) {
  if (nr_session == 0) { return 0 - 2; }
  if (timed_out == 3) {
    kfree(nr_session);          // timeout path
    nr_session_state = 0;
  }
  if (nr_session_state == 0) {
    kfree(nr_session);          // close path frees again
    nr_session = 0;
    return 0 - 110;
  }
  kfree(nr_session);
  nr_session = 0;
  nr_session_state = 0;
  return 0;
}

fun sys_netrom(a, b, c) {
  if (a == 0) { return netrom_connect(b + c); }
  if (a == 1) { return netrom_close(c); }
  return 0 - 22;
}

fun fs_netrom_init() {
  syscall_table[13] = &sys_netrom;
  return 0;
}
|};
    m_init = Some "fs_netrom_init";
    m_syscalls =
      [
        { sc_nr = 13; sc_name = "netrom"; sc_args = [ Flag [ 0; 1 ]; Any32; Range (0, 7) ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/netrom_close";
          b_paper_location = "fs/netrom";
          b_symbol = "netrom_close";
          b_alt_symbols = [];
          b_kind = Report.Double_free;
          b_class = Heap_bug;
          b_syscalls = [ (13, [| 0; 5; 0 |]); (13, [| 1; 0; 3 |]) ];
          b_benign = [ (13, [| 0; 5; 0 |]); (13, [| 1; 0; 1 |]) ];
        };
      ];
  }
