(* The Table-2 bug suite: 25 previously-confirmed Embedded Linux bugs from
   syzbot, re-created with the same function names, bug types and - for the
   last two - the global-OOB class that only compile-time redzones catch.

   Every bug registers one syscall (10 + index) whose handler reaches the
   bad access under the trigger arguments; benign arguments exercise the
   same path without the violation. *)

open Defs
module Report = Embsan_core.Report

type case = {
  c_location : string;
  c_kind : Report.bug_kind;
  c_class : bug_class;
  c_source : string; (* defines a handler function named c_location *)
  c_trigger : int array list; (* per-call args of the reproducer *)
  c_benign : int array list;
}

let nr_of_index i = 10 + i

(* Helper used by many cases: a stateful object freed on one path and used
   on another.  Each case still has its own globals and field layout. *)

let cases : case list =
  [
    {
      c_location = "ringbuf_map_alloc";
      c_kind = Report.Oob_access;
      c_class = Heap_bug;
      c_source =
        {|
// 5.17-rc2 OOB: the ringbuf header is placed after the data area using
// the unmasked size, so non-power-of-two sizes index past the allocation.
fun ringbuf_map_alloc(a, b, c) {
  var size = b & 0x7F;
  if (size < 8) { return 0 - 22; }
  var rb = kmalloc(72);
  if (rb == 0) { return 0 - 12; }
  store32(rb + (size & ~7), 0x52494E47);   // header at rounded size
  var v = load32(rb);
  kfree(rb);
  return v & 0x7FFFFFFF;
}
|};
      c_trigger = [ [| 0; 120; 0 |] ];
      c_benign = [ [| 0; 48; 0 |] ];
    };
    {
      c_location = "ieee80211_scan_rx";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var scan_req = 0;
// 5.19 UAF: an aborted scan frees the request while beacons still route
// through the rx path that dereferences it.
fun ieee80211_scan_rx(a, b, c) {
  if (a == 0) {
    if (scan_req == 0) { scan_req = kmalloc(96); }
    if (scan_req == 0) { return 0 - 12; }
    store32(scan_req, 1);
    return 0;
  }
  if (a == 1) {
    if (scan_req != 0) { kfree(scan_req); }    // abort: pointer kept
    return 0;
  }
  if (scan_req == 0) { return 0 - 2; }
  return load32(scan_req);                      // rx after abort
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "bpf_prog_test_run_xdp";
      c_kind = Report.Oob_access;
      c_class = Heap_bug;
      c_source =
        {|
// 5.17-rc1 OOB: test-run sizes the frame for data_len but the XDP
// metadata area is carved out in front without shrinking the data.
fun bpf_prog_test_run_xdp(a, b, c) {
  var data_len = b & 0xFF;
  var meta_len = c & 31;
  if (data_len > 128) { return 0 - 22; }
  var frame = kmalloc(128);
  if (frame == 0) { return 0 - 12; }
  var i = 0;
  while (i < data_len + meta_len) {            // meta not accounted
    store8(frame + i, i & 0xFF);
    i = i + 1;
  }
  var v = load8(frame);
  kfree(frame);
  return v;
}
|};
      c_trigger = [ [| 0; 120; 24 |] ];
      c_benign = [ [| 0; 90; 24 |] ];
    };
    {
      c_location = "btrfs_scan_one_device";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var syz_btrfs_dev = 0;
// 5.17 UAF: device handle freed on the duplicate-fsid path but kept in
// the scan list.
fun btrfs_scan_one_device(a, b, c) {
  if (syz_btrfs_dev == 0) {
    syz_btrfs_dev = kmalloc(56);
    if (syz_btrfs_dev == 0) { return 0 - 12; }
    store32(syz_btrfs_dev + 4, 7);
    return 0;
  }
  if (a == 1) {
    kfree(syz_btrfs_dev);                      // duplicate fsid
    return 0 - 17;
  }
  return load32(syz_btrfs_dev + 4);
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "post_one_notification";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var wq_pipe = 0;
// 5.19-rc1 UAF: the watch-queue pipe is torn down while a notification
// is being posted into its ring.
fun post_one_notification(a, b, c) {
  if (a == 0) {
    if (wq_pipe == 0) { wq_pipe = kmalloc(64); }
    if (wq_pipe == 0) { return 0 - 12; }
    store32(wq_pipe, 0);
    return 0;
  }
  if (a == 1) {
    if (wq_pipe != 0) { kfree(wq_pipe); }      // teardown keeps pointer
    return 0;
  }
  if (wq_pipe == 0) { return 0 - 2; }
  var slot = load32(wq_pipe) & 7;
  store32(wq_pipe + 8 + slot * 4, b);          // post into freed ring
  store32(wq_pipe, slot + 1);
  return slot;
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 5; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 5; 0 |] ];
    };
    {
      c_location = "post_watch_notification";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var watch_list = 0;
// 5.19-rc1 UAF: the watch list node is freed by key GC but the
// notification walk still visits it.
fun post_watch_notification(a, b, c) {
  if (a == 0) {
    if (watch_list == 0) { watch_list = kmalloc(48); }
    if (watch_list == 0) { return 0 - 12; }
    store32(watch_list + 12, b);
    return 0;
  }
  if (a == 1) {
    if (watch_list != 0) { kfree(watch_list); }
    return 0;
  }
  if (watch_list == 0) { return 0 - 2; }
  return load32(watch_list + 12);              // walk after GC
}
|};
      c_trigger = [ [| 0; 3; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 3; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "watch_queue_set_filter";
      c_kind = Report.Oob_access;
      c_class = Heap_bug;
      c_source =
        {|
// 5.17-rc6 OOB: the filter copy trusts the user-supplied count before
// clamping it to the allocated filter table.
fun watch_queue_set_filter(a, b, c) {
  var nr_filters = b & 31;
  var wfilter = kmalloc(80);                   // room for 10 entries
  if (wfilter == 0) { return 0 - 12; }
  var i = 0;
  while (i < nr_filters) {
    store32(wfilter + i * 8, c);
    store32(wfilter + i * 8 + 4, i);
    i = i + 1;
  }
  var v = load32(wfilter);
  kfree(wfilter);
  return v & 0x7FFFFFFF;
}
|};
      c_trigger = [ [| 0; 12; 1 |] ];
      c_benign = [ [| 0; 9; 1 |] ];
    };
    {
      c_location = "free_pages";
      c_kind = Report.Null_deref;
      c_class = Null_bug;
      c_source =
        {|
// 5.17-rc8 null-ptr-deref: freeing order-N pages with a null struct page
// dereferences the page flags.
fun free_pages(a, b, c) {
  var page = 0;
  if (b < 100) { page = kmalloc(32); }
  if (page == 0) {
    return load32(page + 4);                   // null + 4
  }
  var v = load32(page + 4);
  kfree(page);
  return v;
}
|};
      c_trigger = [ [| 0; 200; 0 |] ];
      c_benign = [ [| 0; 5; 0 |] ];
    };
    {
      c_location = "vxlan_vnifilter_dump_dev";
      c_kind = Report.Oob_access;
      c_class = Heap_bug;
      c_source =
        {|
// 5.17 OOB: the VNI dump writes one summary entry per VNI but the
// message buffer is sized for the previous dump's count.
fun vxlan_vnifilter_dump_dev(a, b, c) {
  var vnis = b & 15;
  var msg = kmalloc(96);                       // 8 entries x 12
  if (msg == 0) { return 0 - 12; }
  var i = 0;
  while (i < vnis) {
    store32(msg + i * 12, 0x08000000 + i);
    store32(msg + i * 12 + 4, c);
    store32(msg + i * 12 + 8, 0);
    i = i + 1;
  }
  var v = load32(msg);
  kfree(msg);
  return v & 0x7FFFFFFF;
}
|};
      c_trigger = [ [| 0; 10; 0 |] ];
      c_benign = [ [| 0; 7; 0 |] ];
    };
    {
      c_location = "imageblit";
      c_kind = Report.Oob_access;
      c_class = Heap_bug;
      c_source =
        {|
// 5.19 OOB: console blit with a y offset beyond the framebuffer height
// writes past the end of the framebuffer.
fun imageblit(a, b, c) {
  var fb = kmalloc(256);                       // 16x16 fb, 1 byte/px
  if (fb == 0) { return 0 - 12; }
  var y = b & 31;
  var x = c & 15;
  var row = 0;
  while (row < 8) {
    store8(fb + (y + row) * 16 + x, 0xFF);     // y > 8 runs off the fb
    row = row + 1;
  }
  var v = load8(fb);
  kfree(fb);
  return v;
}
|};
      c_trigger = [ [| 0; 12; 3 |] ];
      c_benign = [ [| 0; 4; 3 |] ];
    };
    {
      c_location = "bpf_jit_free";
      c_kind = Report.Oob_access;
      c_class = Heap_bug;
      c_source =
        {|
// 5.19-rc4 OOB: the JIT image size is rounded to the insn alignment when
// poisoning the header, overrunning odd-sized images.
fun bpf_jit_free(a, b, c) {
  var img_size = (b & 63) + 4;
  var img = kmalloc(img_size);
  if (img == 0) { return 0 - 12; }
  var rounded = (img_size + 7) & ~7;
  var i = 0;
  while (i < rounded) {
    store8(img + i, 0xCC);                     // poison past odd sizes
    i = i + 1;
  }
  var v = load8(img);
  kfree(img);
  return v;
}
|};
      c_trigger = [ [| 0; 17; 0 |] ];
      c_benign = [ [| 0; 20; 0 |] ];
    };
    {
      c_location = "null_skcipher_crypt";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var skcipher_tfm = 0;
// 5.17-rc6 UAF: the null-cipher tfm is freed while a request still
// references it.
fun null_skcipher_crypt(a, b, c) {
  if (a == 0) {
    if (skcipher_tfm == 0) { skcipher_tfm = kmalloc(40); }
    if (skcipher_tfm == 0) { return 0 - 12; }
    store32(skcipher_tfm, 0x63727970);
    return 0;
  }
  if (a == 1) {
    if (skcipher_tfm != 0) { kfree(skcipher_tfm); }
    return 0;
  }
  if (skcipher_tfm == 0) { return 0 - 2; }
  return load32(skcipher_tfm);                 // crypt after free
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "bio_poll";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var polled_bio = 0;
// 5.18-rc6 UAF: the bio completes (and is freed) between submission and
// the poll loop's dereference.
fun bio_poll(a, b, c) {
  if (a == 0) {
    if (polled_bio == 0) { polled_bio = kmalloc(72); }
    if (polled_bio == 0) { return 0 - 12; }
    store32(polled_bio + 16, 0);               // bi_status
    return 0;
  }
  if (a == 1) {
    if (polled_bio != 0) { kfree(polled_bio); }   // completion frees
    return 0;
  }
  if (polled_bio == 0) { return 0 - 2; }
  return load32(polled_bio + 16);              // poll after completion
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "blk_mq_sched_free_rqs";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var sched_tags = 0;
// 5.18 UAF: the scheduler tag set is freed on elevator switch while the
// flush path still walks the request array.
fun blk_mq_sched_free_rqs(a, b, c) {
  if (a == 0) {
    if (sched_tags == 0) { sched_tags = kmalloc(112); }
    if (sched_tags == 0) { return 0 - 12; }
    store32(sched_tags + 8, b & 7);
    return 0;
  }
  if (a == 1) {
    if (sched_tags != 0) { kfree(sched_tags); }
    return 0;
  }
  if (sched_tags == 0) { return 0 - 2; }
  var n = load32(sched_tags + 8);              // walk after free
  return n;
}
|};
      c_trigger = [ [| 0; 3; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 3; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "do_sync_mmap_readahead";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var mmap_file = 0;
// 5.18-rc7 UAF: the file is closed concurrently with a major fault's
// readahead, which still reads the file's ra state.
fun do_sync_mmap_readahead(a, b, c) {
  if (a == 0) {
    if (mmap_file == 0) { mmap_file = kmalloc(88); }
    if (mmap_file == 0) { return 0 - 12; }
    store32(mmap_file + 24, 32);               // ra_pages
    return 0;
  }
  if (a == 1) {
    if (mmap_file != 0) { kfree(mmap_file); }
    return 0;
  }
  if (mmap_file == 0) { return 0 - 2; }
  return load32(mmap_file + 24);               // readahead after close
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "filp_close";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var open_filp = 0;
var filp_refs = 0;
// 5.18 UAF: a second close on the same struct file reads its f_op after
// the first close released it.
fun filp_close(a, b, c) {
  if (a == 0) {
    if (open_filp == 0) { open_filp = kmalloc(64); filp_refs = 1; }
    if (open_filp == 0) { return 0 - 12; }
    store32(open_filp + 4, 0x66696C65);
    return 0;
  }
  if (open_filp == 0) { return 0 - 9; }
  var ops = load32(open_filp + 4);             // second close: UAF read
  if (filp_refs == 1) {
    kfree(open_filp);
    filp_refs = 0;                             // pointer left behind
  }
  return ops & 0x7FFFFFFF;
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 1; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 1; 0; 0 |] ];
    };
    {
      c_location = "setup_rw_floppy";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var floppy_cmd = 0;
// 5.17-rc4 UAF: the raw command buffer is released by the timeout
// handler while the interrupt path still programs the FDC from it.
fun setup_rw_floppy(a, b, c) {
  if (a == 0) {
    if (floppy_cmd == 0) { floppy_cmd = kmalloc(48); }
    if (floppy_cmd == 0) { return 0 - 12; }
    store8(floppy_cmd, 0xE6);                  // READ DATA
    return 0;
  }
  if (a == 1) {
    if (floppy_cmd != 0) { kfree(floppy_cmd); }  // timeout path
    return 0;
  }
  if (floppy_cmd == 0) { return 0 - 2; }
  return load8(floppy_cmd);                    // irq path after timeout
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "driver_register";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var drv_node = 0;
// 5.18-next UAF: re-registering a driver whose private node was freed by
// a failed probe reads the stale list node.
fun driver_register(a, b, c) {
  if (a == 0) {
    if (drv_node == 0) { drv_node = kmalloc(56); }
    if (drv_node == 0) { return 0 - 12; }
    store32(drv_node + 8, 0);
    return 0;
  }
  if (a == 1) {
    if (drv_node != 0) { kfree(drv_node); }    // failed probe
    return 0;
  }
  if (drv_node == 0) { return 0 - 2; }
  return load32(drv_node + 8);                 // re-register
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "dev_uevent";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var uevent_dev = 0;
// 5.17-rc4 UAF: a uevent is emitted for a device being deleted; the
// kobject name is read after the release.
fun dev_uevent(a, b, c) {
  if (a == 0) {
    if (uevent_dev == 0) { uevent_dev = kmalloc(72); }
    if (uevent_dev == 0) { return 0 - 12; }
    store8(uevent_dev + 32, 'e');
    return 0;
  }
  if (a == 1) {
    if (uevent_dev != 0) { kfree(uevent_dev); }
    return 0;
  }
  if (uevent_dev == 0) { return 0 - 2; }
  return load8(uevent_dev + 32);               // name read after release
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "run_unpack";
      c_kind = Report.Oob_access;
      c_class = Heap_bug;
      c_source =
        {|
// 6.0 OOB (ntfs3): the run-list decompressor trusts the on-disk size
// nibbles and writes entries past the mapping pairs array.
fun run_unpack(a, b, c) {
  var pairs = b & 31;
  var runs = kmalloc(120);                     // 15 runs x 8
  if (runs == 0) { return 0 - 12; }
  var i = 0;
  while (i < pairs) {
    store32(runs + i * 8, c + i);
    store32(runs + i * 8 + 4, i);
    i = i + 1;
  }
  var v = load32(runs);
  kfree(runs);
  return v & 0x7FFFFFFF;
}
|};
      c_trigger = [ [| 0; 17; 2 |] ];
      c_benign = [ [| 0; 14; 2 |] ];
    };
    {
      c_location = "ath9k_hif_usb_rx_cb";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var hif_rx_ctx = 0;
// 5.19 UAF: USB disconnect frees the rx context while a completed URB's
// callback still runs against it.
fun ath9k_hif_usb_rx_cb(a, b, c) {
  if (a == 0) {
    if (hif_rx_ctx == 0) { hif_rx_ctx = kmalloc(64); }
    if (hif_rx_ctx == 0) { return 0 - 12; }
    store32(hif_rx_ctx + 12, 0);
    return 0;
  }
  if (a == 1) {
    if (hif_rx_ctx != 0) { kfree(hif_rx_ctx); }  // disconnect
    return 0;
  }
  if (hif_rx_ctx == 0) { return 0 - 2; }
  var n = load32(hif_rx_ctx + 12) + 1;
  store32(hif_rx_ctx + 12, n);                   // URB callback
  return n;
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0; 0 |] ];
    };
    {
      c_location = "vma_adjust";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var adj_vma = 0;
// 5.19-rc1 UAF: a vma merged away is freed, but the adjust path still
// updates its end address.
fun vma_adjust(a, b, c) {
  if (a == 0) {
    if (adj_vma == 0) { adj_vma = kmalloc(80); }
    if (adj_vma == 0) { return 0 - 12; }
    store32(adj_vma + 4, 0x2000);              // vm_end
    return 0;
  }
  if (a == 1) {
    if (adj_vma != 0) { kfree(adj_vma); }      // merged away
    return 0;
  }
  if (adj_vma == 0) { return 0 - 2; }
  store32(adj_vma + 4, b);                     // adjust after merge
  return 0;
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 2; 0x3000; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 2; 0x3000; 0 |] ];
    };
    {
      c_location = "nilfs_mdt_destroy";
      c_kind = Report.Use_after_free;
      c_class = Heap_bug;
      c_source =
        {|
var mdt_info = 0;
// 6.0-rc7 UAF: a failed fill_super destroys the mdt twice through two
// error paths; the second destroy reads the freed info block.
fun nilfs_mdt_destroy(a, b, c) {
  if (a == 0) {
    if (mdt_info == 0) { mdt_info = kmalloc(44); }
    if (mdt_info == 0) { return 0 - 12; }
    store32(mdt_info, 0x4E49);
    return 0;
  }
  if (mdt_info == 0) { return 0 - 2; }
  var v = load32(mdt_info);                    // second destroy reads
  if (b == 0) {
    kfree(mdt_info);                           // first destroy frees
    if (c == 1) { mdt_info = 0; }
  }
  return v & 0xFFFF;
}
|};
      c_trigger = [ [| 0; 0; 0 |]; [| 1; 0; 0 |]; [| 1; 0; 0 |] ];
      c_benign = [ [| 0; 0; 0 |]; [| 1; 0; 1 |] ];
    };
    {
      c_location = "fbcon_get_font";
      c_kind = Report.Oob_access;
      c_class = Global_bug;
      c_source =
        {|
// built-in console fonts: 6 fonts x 16 bytes of header data
barr builtin_fonts[96];
// 5.7-rc5 GLOBAL OOB: the font index is validated against the newer
// 8-font table, but this kernel ships 6 fonts.
fun fbcon_get_font(a, b, c) {
  var idx = b & 7;                             // idx 6..7 past the table
  var off = idx * 16;
  var v = load8(&builtin_fonts + off) + load8(&builtin_fonts + off + 8);
  return v + (c & 0);
}
|};
      c_trigger = [ [| 0; 6; 0 |] ];
      c_benign = [ [| 0; 4; 0 |] ];
    };
    {
      c_location = "string";
      c_kind = Report.Oob_access;
      c_class = Global_bug;
      c_source =
        {|
// vsnprintf field-width padding table
barr string_pad_table[24];
// 4.17-rc1 GLOBAL OOB (lib/vsprintf string()): precision handling reads
// the pad table one element past the end for maximal field widths.
fun string(a, b, c) {
  var width = b & 31;
  if (width > 25) { return 0 - 22; }
  var pad = load8(&string_pad_table + width); // width 24..25 past the table
  return pad + (c & 0);
}
|};
      c_trigger = [ [| 0; 25; 0 |] ];
      c_benign = [ [| 0; 12; 0 |] ];
    };
  ]

(* --- module assembly ---------------------------------------------------------- *)

let module_of_cases () : module_def =
  let sources = List.map (fun c -> c.c_source) cases in
  let registrations =
    List.mapi
      (fun i c ->
        Printf.sprintf "  syscall_table[%d] = &%s;" (nr_of_index i) c.c_location)
      cases
  in
  let init =
    Printf.sprintf "fun syzbot_suite_init() {\n%s\n  return 0;\n}\n"
      (String.concat "\n" registrations)
  in
  let bugs =
    List.mapi
      (fun i c ->
        {
          b_id = "syzbot/" ^ c.c_location;
          b_paper_location = c.c_location;
          b_symbol = c.c_location;
          b_alt_symbols = [];
          b_kind = c.c_kind;
          b_class = c.c_class;
          b_syscalls = List.map (fun args -> (nr_of_index i, args)) c.c_trigger;
          b_benign = List.map (fun args -> (nr_of_index i, args)) c.c_benign;
        })
      cases
  in
  let syscalls =
    List.mapi
      (fun i c ->
        {
          sc_nr = nr_of_index i;
          sc_name = c.c_location;
          sc_args = [ Flag [ 0; 1; 2 ]; Len; Any32 ];
        })
      cases
  in
  {
    m_name = "syzbot_suite";
    m_source = String.concat "\n" sources ^ "\n" ^ init;
    m_init = Some "syzbot_suite_init";
    m_syscalls = syscalls;
    m_bugs = bugs;
  }

let suite = module_of_cases ()
let bug_count = List.length cases
