(* Shared definitions for guest kernels: syscall descriptors (consumed by
   the fuzzers), kernel module descriptions and injected-bug records. *)

(* Argument domains for syscall fuzzing, syzlang-style. *)
type arg_domain =
  | Flag of int list (* one of these values *)
  | Range of int * int (* inclusive *)
  | Len (* a length-like value: small, occasionally huge *)
  | Any32

type syscall_desc = {
  sc_nr : int;
  sc_name : string;
  sc_args : arg_domain list; (* at most 3 *)
}

(* How a bug is detectable - decides the EmbSan-C / EmbSan-D capability
   matrix of Table 2. *)
type bug_class =
  | Heap_bug (* detectable by C and D (poisoned heap / freed memory) *)
  | Global_bug (* needs compile-time global redzones: C and native only *)
  | Stack_bug (* needs compile-time stack redzones: C and native only *)
  | Null_bug (* architectural fault; reported by every configuration *)
  | Race_bug (* needs the KCSAN functionality *)

type bug = {
  b_id : string; (* unique, e.g. "linux/ringbuf_map_alloc" *)
  b_paper_location : string; (* the paper's Location column *)
  b_symbol : string; (* guest function containing the bad access *)
  b_alt_symbols : string list; (* other functions the same bug manifests in *)
  b_kind : Embsan_core.Report.bug_kind;
  b_class : bug_class;
  b_syscalls : (int * int array) list; (* reproducer: calls in order *)
  b_benign : (int * int array) list; (* same path, no violation *)
}

let bug_symbols b = b.b_symbol :: b.b_alt_symbols

(* An out-of-bounds write that lands in an adjacent *freed* object is
   classified use-after-free by the shadow (exactly like real KASAN), and a
   double free whose first free aged out of tracking reports as an invalid
   free; the matcher accepts these manifestations. *)
let kind_matches (b : bug) (k : Embsan_core.Report.bug_kind) =
  b.b_kind = k
  ||
  match (b.b_kind, k) with
  | Embsan_core.Report.Oob_access, Embsan_core.Report.Use_after_free -> true
  | Embsan_core.Report.Double_free, Embsan_core.Report.Invalid_free -> true
  | _ -> false

type module_def = {
  m_name : string;
  m_source : string; (* MiniC compilation unit *)
  m_init : string option; (* init function called from kmain *)
  m_syscalls : syscall_desc list;
  m_bugs : bug list;
}

let reproducer b = b.b_syscalls

(* Syscall number allocation (per-kernel table of 96 entries):
   0..7    core (getpid-ish, nop, ...)
   8..31   fs
   32..55  net
   56..79  drivers
   80..95  os-specific *)
let table_size = 96
