(* Shared kernel-core template for the RTOS-family guests (LiteOS,
   FreeRTOS, VxWorks).  Smaller than the Linux base: single hart, indirect
   service table, mailbox serve loop. *)

let source ~banner ~inits =
  let init_calls =
    String.concat "\n" (List.map (fun f -> Printf.sprintf "  %s();" f) inits)
  in
  Printf.sprintf
    {|
arr syscall_table[96];
barr os_banner[] = %S;

fun sys_nop(a, b, c) { return a & (b | c) & 0; }
fun sys_version(a, b, c) { return 0x00010004; }

fun kmain() {
  kheap_init();
  uart_puts(&os_banner);
  syscall_table[0] = &sys_nop;
  syscall_table[1] = &sys_version;
%s
  mb_ready();
  while (1) {
    if (mb_pending()) {
      var nr = mb_nr();
      var ret = 0 - 38;
      if (nr < 96) {
        var fp = syscall_table[nr];
        if (fp != 0) { ret = icall3(fp, mb_arg(0), mb_arg(1), mb_arg(2)); }
      }
      mb_complete(ret);
    }
  }
  return 0;
}
|}
    banner init_calls

let core_syscalls =
  [
    { Defs.sc_nr = 0; sc_name = "nop"; sc_args = [ Defs.Any32; Defs.Any32; Defs.Any32 ] };
    { Defs.sc_nr = 1; sc_name = "version"; sc_args = [] };
  ]

let sources ~banner ~alloc_unit (modules : Defs.module_def list) =
  let inits = List.filter_map (fun m -> m.Defs.m_init) modules in
  [ Libk.unit_; alloc_unit ]
  @ [ { Embsan_minic.Driver.src_name = "rtos_base"; code = source ~banner ~inits } ]
  @ List.map
      (fun m -> { Embsan_minic.Driver.src_name = m.Defs.m_name; code = m.Defs.m_source })
      modules

let build ?(kcov = false) ~arch ~mode ~banner ~alloc_unit modules =
  let cfg = { Embsan_minic.Driver.default_config with arch; mode; kcov } in
  Embsan_minic.Driver.compile cfg (sources ~banner ~alloc_unit modules)

let syscalls (modules : Defs.module_def list) =
  core_syscalls @ List.concat_map (fun m -> m.Defs.m_syscalls) modules

let bugs (modules : Defs.module_def list) =
  List.concat_map (fun m -> m.Defs.m_bugs) modules
