(* FreeRTOS-style guest modeling the InfiniTime smartwatch firmware:
   heap_4 allocator, littlefs-like flash filesystem, SPI transfer engine
   and the ST7789 display driver. *)

open Defs
module Report = Embsan_core.Report

(* --- src/libs/littlefs (OOB write) -------------------------------------------- *)

let littlefs : module_def =
  {
    m_name = "freertos_littlefs";
    m_source =
      {|
var lfs_cache = 0;
var lfs_reads = 0;

// BUG (src/libs/littlefs, OOB write): a read that straddles the cache
// block copies block_size bytes from the requested offset, overrunning
// the cache tail for offsets near the end.
fun lfs_cache_read(off, len) {
  if (lfs_cache == 0) {
    lfs_cache = pvPortMalloc(128);
    if (lfs_cache == 0) { return 0 - 12; }
  }
  if (len > 64) { return 0 - 22; }
  var start = off & 127;
  var i = 0;
  while (i < len) {
    store8(lfs_cache + start + i, (off + i) & 0xFF);  // start+len can pass 128
    i = i + 1;
  }
  lfs_reads = lfs_reads + 1;
  return load8(lfs_cache + start);
}

fun sys_littlefs(a, b, c) {
  if (a == 0) { return lfs_reads; }
  if (a == 1) { return lfs_cache_read(b, c); }
  return 0 - 22;
}

fun freertos_littlefs_init() {
  syscall_table[16] = &sys_littlefs;
  return 0;
}
|};
    m_init = Some "freertos_littlefs_init";
    m_syscalls =
      [
        { sc_nr = 16; sc_name = "lfs_read"; sc_args = [ Flag [ 0; 1 ]; Range (0, 127); Len ] };
      ];
    m_bugs =
      [
        {
          b_id = "freertos/lfs_cache_read";
          b_paper_location = "src/libs/littlefs/";
          b_symbol = "lfs_cache_read";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (16, [| 1; 100; 40 |]) ];
          b_benign = [ (16, [| 1; 32; 40 |]) ];
        };
      ];
  }

(* --- src/drivers/Spi (OOB write) ------------------------------------------------ *)

let spi : module_def =
  {
    m_name = "freertos_spi";
    m_source =
      {|
var spi_xfers = 0;

// BUG (src/drivers/Spi, OOB write): the DMA descriptor list holds 6
// segments, but a transfer is split on 32-byte boundaries of a length
// capped at 255 bytes (up to 8 segments).
fun spi_dma_transfer(len) {
  if (len > 255) { return 0 - 22; }
  var segs = pvPortMalloc(48);                 // 6 segments x 8
  if (segs == 0) { return 0 - 12; }
  var n = (len + 31) >> 5;
  var i = 0;
  while (i < n) {
    store32(segs + i * 8, 0x40003000);
    store32(segs + i * 8 + 4, 32);
    i = i + 1;
  }
  spi_xfers = spi_xfers + 1;
  var v = load32(segs);
  vPortFree(segs);
  return v & 0x7FFFFFFF;
}

fun sys_spi(a, b, c) {
  if (a == 0) { return spi_xfers + (c & 0); }
  if (a == 1) { return spi_dma_transfer(b); }
  return 0 - 22;
}

fun freertos_spi_init() {
  syscall_table[17] = &sys_spi;
  return 0;
}
|};
    m_init = Some "freertos_spi_init";
    m_syscalls =
      [
        { sc_nr = 17; sc_name = "spi_xfer"; sc_args = [ Flag [ 0; 1 ]; Range (0, 255); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "freertos/spi_dma_transfer";
          b_paper_location = "src/drivers/Spi";
          b_symbol = "spi_dma_transfer";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (17, [| 1; 230; 0 |]) ];
          b_benign = [ (17, [| 1; 150; 0 |]) ];
        };
      ];
  }

(* --- src/drivers/St7789 (UAF) ------------------------------------------------------ *)

let st7789 : module_def =
  {
    m_name = "freertos_st7789";
    m_source =
      {|
var st_framebuf = 0;
var st_fb_live = 0;
var st_sleeping = 0;

fun st7789_wake(depth) {
  if (st_framebuf == 0) {
    st_framebuf = pvPortMalloc(96);
    if (st_framebuf == 0) { return 0 - 12; }
    st_fb_live = 1;
  }
  st_sleeping = 0;
  return depth & 1;
}

fun st7789_sleep(release_fb) {
  if (st_framebuf == 0) { return 0 - 2; }
  st_sleeping = 1;
  if (release_fb == 1) {
    if (st_fb_live == 1) {
      vPortFree(st_framebuf);                  // pointer kept for wake
      st_fb_live = 0;
    }
  }
  return 0;
}

// BUG (src/drivers/St7789, UAF): the flush task keeps running while the
// sleep path released the framebuffer.
fun st7789_flush(line) {
  if (st_framebuf == 0) { return 0 - 2; }
  store8(st_framebuf + (line & 63), 0xAA);     // flush after sleep release
  return line & 63;
}

fun sys_st7789(a, b, c) {
  if (a == 0) { return st7789_wake(b + (c & 0)); }
  if (a == 1) { return st7789_sleep(b & 1); }
  if (a == 2) { return st7789_flush(b); }
  return 0 - 22;
}

fun freertos_st7789_init() {
  syscall_table[18] = &sys_st7789;
  return 0;
}
|};
    m_init = Some "freertos_st7789_init";
    m_syscalls =
      [
        { sc_nr = 18; sc_name = "st7789"; sc_args = [ Flag [ 0; 1; 2 ]; Range (0, 63); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "freertos/st7789_flush";
          b_paper_location = "src/drivers/St7789";
          b_symbol = "st7789_flush";
          b_alt_symbols = [];
          b_kind = Report.Use_after_free;
          b_class = Heap_bug;
          b_syscalls = [ (18, [| 0; 0; 0 |]); (18, [| 1; 1; 0 |]); (18, [| 2; 5; 0 |]) ];
          b_benign = [ (18, [| 0; 0; 0 |]); (18, [| 2; 5; 0 |]) ];
        };
      ];
  }

let banner = "FreeRTOS-EV (InfiniTime-like)\n"
let modules = [ littlefs; spi; st7789 ]

let build ?(kcov = false) ~arch ~mode () =
  ( Rtos_base.build ~kcov ~arch ~mode ~banner ~alloc_unit:Alloc_heap4.unit_ modules,
    Rtos_base.syscalls modules,
    Rtos_base.bugs modules )
