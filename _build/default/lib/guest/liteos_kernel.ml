(* LiteOS-style guest (OpenHarmony stm32mp1 / stm32f407 boards): best-fit
   allocator, VFS path walker and a FAT directory parser. *)

open Defs
module Report = Embsan_core.Report

(* --- fs/vfs: path lookup (OOB, both stm32 boards) --------------------------- *)

let vfs : module_def =
  {
    m_name = "liteos_vfs";
    m_source =
      {|
barr vfs_path_buf[128];
var vfs_lookups = 0;

// BUG (fs/vfs, OOB write): a path component is copied into the 24-byte
// dentry name field with the component length capped at NAME_MAX (32).
fun vfs_path_lookup(comp_len, seed) {
  if (comp_len > 32) { return 0 - 36; }        // ENAMETOOLONG at NAME_MAX
  var dentry = LOS_MemAlloc(40);               // 16 header + 24 name
  if (dentry == 0) { return 0 - 12; }
  store32(dentry, 0x64656E74);
  var i = 0;
  while (i < comp_len) {
    store8(dentry + 16 + i, (seed + i) & 0x7F);  // comp_len 25..32 spills
    i = i + 1;
  }
  vfs_lookups = vfs_lookups + 1;
  var h = fnv1a(dentry + 16, 4);
  LOS_MemFree(dentry);
  return h & 0x7FFFFFFF;
}

fun sys_vfs(a, b, c) {
  if (a == 0) { return vfs_lookups; }
  if (a == 1) { return vfs_path_lookup(b, c); }
  return 0 - 22;
}

fun liteos_vfs_init() {
  syscall_table[14] = &sys_vfs;
  memset(&vfs_path_buf, '/', 128);
  return 0;
}
|};
    m_init = Some "liteos_vfs_init";
    m_syscalls =
      [
        { sc_nr = 14; sc_name = "vfs_lookup"; sc_args = [ Flag [ 0; 1 ]; Len; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "liteos/vfs_path_lookup";
          b_paper_location = "fs/vfs";
          b_symbol = "vfs_path_lookup";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (14, [| 1; 30; 11 |]) ];
          b_benign = [ (14, [| 1; 20; 11 |]) ];
        };
      ];
  }

(* --- fs/fat: directory entry parser (OOB, stm32f407 only) --------------------- *)

let fat : module_def =
  {
    m_name = "liteos_fat";
    m_source =
      {|
var fat_sector_cache = 0;
var fat_dirents = 0;

// BUG (fs/fat, OOB read): long-filename entries chain up to the sequence
// number; sequences above 1 read past the single cached 64-byte sector.
fun fat_parse_dirent(seq, off) {
  if (fat_sector_cache == 0) {
    fat_sector_cache = LOS_MemAlloc(64);
    if (fat_sector_cache == 0) { return 0 - 12; }
    memset(fat_sector_cache, 0x20, 64);
  }
  var entry_off = (off & 31) + (seq & 7) * 32;   // seq > 1 runs off the sector
  var attr = load8(fat_sector_cache + entry_off);
  fat_dirents = fat_dirents + 1;
  return attr;
}

fun sys_fat(a, b, c) {
  if (a == 0) { return fat_dirents; }
  if (a == 1) { return fat_parse_dirent(b, c); }
  return 0 - 22;
}

fun liteos_fat_init() {
  syscall_table[15] = &sys_fat;
  return 0;
}
|};
    m_init = Some "liteos_fat_init";
    m_syscalls =
      [
        { sc_nr = 15; sc_name = "fat_dirent"; sc_args = [ Flag [ 0; 1 ]; Range (0, 7); Range (0, 63) ] };
      ];
    m_bugs =
      [
        {
          b_id = "liteos/fat_parse_dirent";
          b_paper_location = "fs/fat";
          b_symbol = "fat_parse_dirent";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (15, [| 1; 2; 10 |]) ];
          b_benign = [ (15, [| 1; 1; 10 |]) ];
        };
      ];
  }

let banner = "LiteOS-EV 1.0\n"

let build ?(with_fat = true) ?(kcov = false) ~arch ~mode () =
  let modules = if with_fat then [ vfs; fat ] else [ vfs ] in
  ( Rtos_base.build ~kcov ~arch ~mode ~banner ~alloc_unit:Alloc_bestfit.unit_ modules,
    Rtos_base.syscalls modules,
    Rtos_base.bugs modules )
