(* Embedded-Linux-style kernel: slab allocator, indirect syscall table,
   optional SMP worker hart, and a configurable set of subsystem modules.
   This is the base OS of the OpenWRT-* and OpenHarmony-rk3566 firmware. *)

open Defs

let smp_source =
  {|
// asynchronous work queue drained by the kworker hart; queue state is
// spinlock-protected (the injected btrfs races are elsewhere)
arr work_queue[16];
var work_head = 0;
var work_tail = 0;
var work_lock = 0;

fun queue_work(fp) {
  while (amo_swap(&work_lock, 1) != 0) { }
  work_queue[work_head & 15] = fp;
  work_head = work_head + 1;
  store32(&work_lock, 0);
  return 0;
}

fun kworker_main() {
  while (1) {
    var fp = 0;
    while (amo_swap(&work_lock, 1) != 0) { }
    if (work_tail != work_head) {
      fp = work_queue[work_tail & 15];
      work_tail = work_tail + 1;
    }
    store32(&work_lock, 0);
    if (fp != 0) { icall3(fp, 0, 0, 0); }
  }
  return 0;
}

fun start_workers() {
  trap3(10, 1, &kworker_main, __stack_top - 0x10000);
  return 0;
}
|}

let base_source ~smp ~inits =
  let init_calls =
    String.concat "\n" (List.map (fun f -> Printf.sprintf "  %s();" f) inits)
  in
  Printf.sprintf
    {|
arr syscall_table[96];
var linux_boot_stamp = 0;

fun sys_nop(a, b, c) { return a & (b | c) & 0; }
fun sys_getpid(a, b, c) { return 1; }
fun sys_uname(a, b, c) { return 0x45564131; }    // "EVA1"

%s

fun kmain() {
  kheap_init();
  linux_boot_stamp = plat_cycles();
  syscall_table[0] = &sys_nop;
  syscall_table[1] = &sys_getpid;
  syscall_table[2] = &sys_uname;
%s
%s
  mb_ready();
  while (1) {
    if (mb_pending()) {
      var nr = mb_nr();
      var ret = 0 - 38;
      if (nr < 96) {
        var fp = syscall_table[nr];
        if (fp != 0) { ret = icall3(fp, mb_arg(0), mb_arg(1), mb_arg(2)); }
      }
      mb_complete(ret);
    }
  }
  return 0;
}
|}
    (if smp then smp_source else "")
    init_calls
    (if smp then "  start_workers();" else "")

let core_syscalls =
  [
    { sc_nr = 0; sc_name = "nop"; sc_args = [ Any32; Any32; Any32 ] };
    { sc_nr = 1; sc_name = "getpid"; sc_args = [] };
    { sc_nr = 2; sc_name = "uname"; sc_args = [] };
  ]

(** Assemble sources for a Linux-family firmware from its module set. *)
let sources ~smp (modules : module_def list) =
  let inits = List.filter_map (fun m -> m.m_init) modules in
  [ Libk.unit_; Alloc_slab.unit_ ]
  @ [ { Embsan_minic.Driver.src_name = "linux_base"; code = base_source ~smp ~inits } ]
  @ List.map
      (fun m -> { Embsan_minic.Driver.src_name = m.m_name; code = m.m_source })
      modules

let build ?(smp = false) ?(kcov = false) ~arch ~mode (modules : module_def list) =
  let cfg = { Embsan_minic.Driver.default_config with arch; mode; kcov } in
  Embsan_minic.Driver.compile cfg (sources ~smp modules)

let syscalls (modules : module_def list) =
  core_syscalls @ List.concat_map (fun m -> m.m_syscalls) modules

let bugs (modules : module_def list) = List.concat_map (fun m -> m.m_bugs) modules
