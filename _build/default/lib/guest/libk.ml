(* Common guest support library: byte-wise memory/string routines, UART
   console output and the mailbox (executor device) protocol. *)

let source =
  {|
// --- memory and strings -----------------------------------------------------

fun memcpy(dst, src, n) {
  var i = 0;
  while (i < n) { store8(dst + i, load8(src + i)); i = i + 1; }
  return dst;
}

fun memset(p, v, n) {
  var i = 0;
  while (i < n) { store8(p + i, v); i = i + 1; }
  return p;
}

fun memcmp(a, b, n) {
  var i = 0;
  while (i < n) {
    var ca = load8(a + i);
    var cb = load8(b + i);
    if (ca != cb) {
      if (ca < cb) { return 0 - 1; }
      return 1;
    }
    i = i + 1;
  }
  return 0;
}

fun strlen(s) {
  var n = 0;
  while (load8(s + n) != 0) { n = n + 1; }
  return n;
}

fun strncpy(dst, src, n) {
  var i = 0;
  while (i < n) {
    var c = load8(src + i);
    store8(dst + i, c);
    if (c == 0) { return dst; }
    i = i + 1;
  }
  return dst;
}

// 32-bit FNV-1a over a buffer - used by several subsystems as a checksum
fun fnv1a(p, n) {
  var h = 0x811C9DC5;
  var i = 0;
  while (i < n) {
    h = (h ^ load8(p + i)) * 0x01000193;
    i = i + 1;
  }
  return h;
}

// --- console -------------------------------------------------------------------

fun uart_putc(c) { store8(0xF0000000, c); return 0; }

fun uart_puts(s) {
  var i = 0;
  while (load8(s + i) != 0) { uart_putc(load8(s + i)); i = i + 1; }
  return 0;
}

fun uart_put_hex(v) {
  var i = 28;
  uart_putc('0'); uart_putc('x');
  while (1) {
    var d = (v >> i) & 15;
    if (d < 10) { uart_putc('0' + d); } else { uart_putc('a' + d - 10); }
    if (i == 0) { break; }
    i = i - 4;
  }
  return 0;
}

// --- platform devices -------------------------------------------------------------

fun plat_cycles() { return load32(0xF0000300); }
fun plat_rng() { return load32(0xF0000400); }
fun plat_exit(code) { store32(0xF0000100, code); return 0; }

// --- mailbox / executor protocol ---------------------------------------------------

fun mb_pending() { return load32(0xF0000200); }
fun mb_nr() { return load32(0xF0000204); }
fun mb_arg(i) { return load32(0xF0000208 + i * 4); }
fun mb_complete(ret) {
  store32(0xF0000220, ret);
  store32(0xF0000224, 1);
  return 0;
}
fun mb_ready() { store32(0xF0000228, 1); return 0; }
|}

let unit_ = { Embsan_minic.Driver.src_name = "libk"; code = source }
