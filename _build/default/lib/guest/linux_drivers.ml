(* Embedded-Linux device drivers with injected bugs (Tables 3/4).  Each
   vendor driver is its own compilation unit, so firmware images mix and
   match exactly the drivers their board has. *)

open Defs
module Report = Embsan_core.Report

(* --- drivers/net/ethernet/marvell (OOB write, armvirt) ----------------------- *)

let eth_marvell : module_def =
  {
    m_name = "eth_marvell";
    m_source =
      {|
var mvneta_txq_fill = 0;

// BUG (drivers/net/ethernet/marvell, OOB write): the TX descriptor ring
// is 8 entries of 12 bytes, but the fill level check uses the *byte* size.
fun mvneta_tx_fill(slot, dma_addr, len) {
  var ring = kmalloc(96);
  if (ring == 0) { return 0 - 12; }
  if (slot > 96) { kfree(ring); return 0 - 22; }   // wrong bound: slots go to 8
  var d = ring + slot * 12;
  store32(d, dma_addr);
  store32(d + 4, len);
  store32(d + 8, 0x80000000);
  mvneta_txq_fill = mvneta_txq_fill + 1;
  var cmd = load32(ring + 8);
  kfree(ring);
  return cmd >> 16;
}

fun sys_eth_marvell(a, b, c) {
  if (a == 0) { return mvneta_txq_fill; }
  if (a == 1) { return mvneta_tx_fill(b & 0x7F, 0x1000, c); }
  return 0 - 22;
}

fun eth_marvell_init() {
  syscall_table[56] = &sys_eth_marvell;
  return 0;
}
|};
    m_init = Some "eth_marvell_init";
    m_syscalls =
      [
        { sc_nr = 56; sc_name = "eth_marvell"; sc_args = [ Flag [ 0; 1 ]; Range (0, 12); Len ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/mvneta_tx_fill";
          b_paper_location = "drivers/net/ethernet/marvell";
          b_symbol = "mvneta_tx_fill";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (56, [| 1; 9; 64 |]) ];
          b_benign = [ (56, [| 1; 5; 64 |]) ];
        };
      ];
  }

(* --- drivers/net/ethernet/realtek (OOB write; armvirt, rtl839x, x86_64) ------ *)

let eth_realtek : module_def =
  {
    m_name = "eth_realtek";
    m_source =
      {|
var r8169_stats_words = 0;

// BUG (drivers/net/ethernet/realtek, OOB write): hardware statistics are
// 10 words but the DMA snapshot buffer is sized for the 8 words of the
// previous chip generation.
fun r8169_get_stats(generation) {
  var stats = kmalloc(32);             // 8 words
  if (stats == 0) { return 0 - 12; }
  var words = 8;
  if (generation >= 2) { words = 10; } // new chips report 10 words
  var i = 0;
  while (i < words) {
    store32(stats + i * 4, plat_rng());
    i = i + 1;
  }
  r8169_stats_words = words;
  var total = load32(stats);
  kfree(stats);
  return total & 0xFFFF;
}

fun sys_eth_realtek(a, b, c) {
  if (a == 0) { return r8169_stats_words + (c & 0); }
  if (a == 1) { return r8169_get_stats(b & 3); }
  return 0 - 22;
}

fun eth_realtek_init() {
  syscall_table[57] = &sys_eth_realtek;
  return 0;
}
|};
    m_init = Some "eth_realtek_init";
    m_syscalls =
      [
        { sc_nr = 57; sc_name = "eth_realtek"; sc_args = [ Flag [ 0; 1 ]; Range (0, 3); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/r8169_get_stats";
          b_paper_location = "drivers/net/ethernet/realtek";
          b_symbol = "r8169_get_stats";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (57, [| 1; 2; 0 |]) ];
          b_benign = [ (57, [| 1; 1; 0 |]) ];
        };
      ];
  }

(* --- drivers/net/ethernet/atheros (double free, armvirt) ---------------------- *)

let eth_atheros : module_def =
  {
    m_name = "eth_atheros";
    m_source =
      {|
var atl1c_ring = 0;
var atl1c_ring_live = 0;

fun atl1c_open() {
  if (atl1c_ring_live != 0) { return 0 - 16; }
  atl1c_ring = kmalloc(128);
  if (atl1c_ring == 0) { return 0 - 12; }
  atl1c_ring_live = 1;
  return 0;
}

// BUG (drivers/net/ethernet/atheros, double free): close after a TX
// timeout reset frees the ring that the reset path already released.
fun atl1c_close(after_reset) {
  if (atl1c_ring_live == 0) { return 0 - 2; }
  if (after_reset == 5) {
    kfree(atl1c_ring);           // reset path freed it...
  }
  kfree(atl1c_ring);             // ...close frees it again
  atl1c_ring = 0;
  atl1c_ring_live = 0;
  return 0;
}

fun sys_eth_atheros(a, b, c) {
  if (a == 0) { return atl1c_open(); }
  if (a == 1) { return atl1c_close(b + (c & 0)); }
  return 0 - 22;
}

fun eth_atheros_init() {
  syscall_table[58] = &sys_eth_atheros;
  return 0;
}
|};
    m_init = Some "eth_atheros_init";
    m_syscalls =
      [
        { sc_nr = 58; sc_name = "eth_atheros"; sc_args = [ Flag [ 0; 1 ]; Range (0, 7); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/atl1c_close";
          b_paper_location = "drivers/net/ethernet/atheros";
          b_symbol = "atl1c_close";
          b_alt_symbols = [];
          b_kind = Report.Double_free;
          b_class = Heap_bug;
          b_syscalls = [ (58, [| 0; 0; 0 |]); (58, [| 1; 5; 0 |]) ];
          b_benign = [ (58, [| 0; 0; 0 |]); (58, [| 1; 2; 0 |]) ];
        };
      ];
  }

(* --- drivers/net/ethernet/broadcom (two OOBs, ipq807x) ------------------------- *)

let eth_broadcom : module_def =
  {
    m_name = "eth_broadcom";
    m_source =
      {|
barr bgmac_rx_staging[64];
var bgmac_rx_count = 0;

// BUG 1 (drivers/net/ethernet/broadcom, OOB write): the RX frame length
// from the descriptor is trusted up to the MTU, but the staging copy
// buffer is smaller than the MTU.
fun bgmac_dma_rx(frame_len) {
  if (frame_len > 96) { return 0 - 90; }    // "MTU" check
  var buf = kmalloc(64);
  if (buf == 0) { return 0 - 12; }
  var i = 0;
  while (i < frame_len) {
    store8(buf + i, load8(&bgmac_rx_staging + (i & 63)));
    i = i + 1;
  }
  bgmac_rx_count = bgmac_rx_count + 1;
  var h = fnv1a(buf, 4);
  kfree(buf);
  return h & 0x7FFFFFFF;
}

// BUG 2 (drivers/net/ethernet/broadcom, OOB read): the per-queue counter
// table has 4 entries; the queue index comes from an 8-entry mask.
arr bgmac_q_counters[4];
fun bgmac_read_counters(q) {
  var v = bgmac_q_counters[q & 7];          // q 4..7 read past the table
  return v + bgmac_rx_count;
}

fun sys_eth_broadcom(a, b, c) {
  if (a == 0) { return bgmac_dma_rx(b + (c & 0)); }
  if (a == 1) { return bgmac_read_counters(b); }
  return 0 - 22;
}

fun eth_broadcom_init() {
  syscall_table[59] = &sys_eth_broadcom;
  memset(&bgmac_rx_staging, 0x66, 64);
  return 0;
}
|};
    m_init = Some "eth_broadcom_init";
    m_syscalls =
      [
        { sc_nr = 59; sc_name = "eth_broadcom"; sc_args = [ Flag [ 0; 1 ]; Len; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/bgmac_dma_rx";
          b_paper_location = "drivers/net/ethernet/broadcom";
          b_symbol = "bgmac_dma_rx";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (59, [| 0; 80; 0 |]) ];
          b_benign = [ (59, [| 0; 48; 0 |]) ];
        };
        {
          b_id = "linux/bgmac_read_counters";
          b_paper_location = "drivers/net/ethernet/broadcom";
          b_symbol = "bgmac_read_counters";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Global_bug;
          b_syscalls = [ (59, [| 1; 5; 0 |]) ];
          b_benign = [ (59, [| 1; 2; 0 |]) ];
        };
      ];
  }

(* --- drivers/net/ethernet/mediatek (OOB write, mt7629) -------------------------- *)

let eth_mediatek : module_def =
  {
    m_name = "eth_mediatek";
    m_source =
      {|
var mtk_tx_seq = 0;

// BUG (drivers/net/ethernet/mediatek, OOB write): TSO header parsing
// writes the 16-byte pseudo header at the offset given by the header
// length field without checking it against the descriptor size.
fun mtk_tx_map(hdr_off) {
  var desc = kmalloc(48);
  if (desc == 0) { return 0 - 12; }
  if (hdr_off > 40) { kfree(desc); return 0 - 22; }
  var i = 0;
  while (i < 16) {
    store8(desc + hdr_off + i, mtk_tx_seq & 0xFF);   // hdr_off 33..40 spills
    i = i + 1;
  }
  mtk_tx_seq = mtk_tx_seq + 1;
  var v = load32(desc);
  kfree(desc);
  return v & 0x7FFFFFFF;
}

fun sys_eth_mediatek(a, b, c) {
  if (a == 0) { return mtk_tx_seq + (c & 0); }
  if (a == 1) { return mtk_tx_map(b); }
  return 0 - 22;
}

fun eth_mediatek_init() {
  syscall_table[61] = &sys_eth_mediatek;
  return 0;
}
|};
    m_init = Some "eth_mediatek_init";
    m_syscalls =
      [
        { sc_nr = 61; sc_name = "eth_mediatek"; sc_args = [ Flag [ 0; 1 ]; Len; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/mtk_tx_map";
          b_paper_location = "drivers/net/ethernet/mediatek";
          b_symbol = "mtk_tx_map";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (61, [| 1; 38; 0 |]) ];
          b_benign = [ (61, [| 1; 30; 0 |]) ];
        };
      ];
  }

(* --- drivers/net/ethernet/stmicro (OOB write, x86_64) ---------------------------- *)

let eth_stmicro : module_def =
  {
    m_name = "eth_stmicro";
    m_source =
      {|
var stmmac_desc_count = 0;

// BUG (drivers/net/ethernet/stmicro, OOB write): extended descriptors are
// 32 bytes but the allocation uses the 16-byte basic descriptor size when
// the extended-mode flag comes from user configuration.
fun stmmac_init_desc(extended, seed) {
  var size = 16;
  var desc = kmalloc(16);
  if (desc == 0) { return 0 - 12; }
  if (extended == 1) { size = 32; }        // size grows, allocation did not
  var i = 0;
  while (i < size) {
    store8(desc + i, (seed + i) & 0xFF);
    i = i + 1;
  }
  stmmac_desc_count = stmmac_desc_count + 1;
  var v = load8(desc);
  kfree(desc);
  return v;
}

fun sys_eth_stmicro(a, b, c) {
  if (a == 0) { return stmmac_desc_count; }
  if (a == 1) { return stmmac_init_desc(b & 1, c); }
  return 0 - 22;
}

fun eth_stmicro_init() {
  syscall_table[62] = &sys_eth_stmicro;
  return 0;
}
|};
    m_init = Some "eth_stmicro_init";
    m_syscalls =
      [
        { sc_nr = 62; sc_name = "eth_stmicro"; sc_args = [ Flag [ 0; 1 ]; Flag [ 0; 1 ]; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/stmmac_init_desc";
          b_paper_location = "drivers/net/ethernet/stmicro";
          b_symbol = "stmmac_init_desc";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (62, [| 1; 1; 3 |]) ];
          b_benign = [ (62, [| 1; 0; 3 |]) ];
        };
      ];
  }

(* --- drivers/net/wireless/broadcom (UAF, bcm63xx) --------------------------------- *)

let wifi_broadcom : module_def =
  {
    m_name = "wifi_broadcom";
    m_source =
      {|
var brcm_vif = 0;
var brcm_vif_live = 0;

fun brcm_join(ssid_hash) {
  if (brcm_vif_live != 0) { return 0 - 16; }
  brcm_vif = kmalloc(80);
  if (brcm_vif == 0) { return 0 - 12; }
  store32(brcm_vif, ssid_hash);
  store32(brcm_vif + 8, 0);      // beacon count
  brcm_vif_live = 1;
  return 0;
}

fun brcm_leave(keep_fw) {
  if (brcm_vif_live == 0) { return 0 - 2; }
  kfree(brcm_vif);
  brcm_vif_live = 0;
  if (keep_fw == 0) { brcm_vif = 0; }
  return 0;
}

// BUG (drivers/net/wireless/broadcom, UAF): the firmware-event path still
// delivers beacons to an interface that [brcm_leave] freed with the
// keep-firmware flag set.
fun brcm_fweh_beacon() {
  if (brcm_vif == 0) { return 0 - 2; }
  var n = load32(brcm_vif + 8) + 1;
  store32(brcm_vif + 8, n);
  return n;
}

fun sys_wifi_broadcom(a, b, c) {
  if (a == 0) { return brcm_join(b + (c & 0)); }
  if (a == 1) { return brcm_leave(b & 1); }
  if (a == 2) { return brcm_fweh_beacon(); }
  return 0 - 22;
}

fun wifi_broadcom_init() {
  syscall_table[63] = &sys_wifi_broadcom;
  return 0;
}
|};
    m_init = Some "wifi_broadcom_init";
    m_syscalls =
      [
        { sc_nr = 63; sc_name = "wifi_broadcom"; sc_args = [ Flag [ 0; 1; 2 ]; Range (0, 3); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/brcm_fweh_beacon";
          b_paper_location = "drivers/net/wireless/broadcom";
          b_symbol = "brcm_fweh_beacon";
          b_alt_symbols = [];
          b_kind = Report.Use_after_free;
          b_class = Heap_bug;
          b_syscalls = [ (63, [| 0; 2; 0 |]); (63, [| 1; 1; 0 |]); (63, [| 2; 0; 0 |]) ];
          b_benign = [ (63, [| 0; 2; 0 |]); (63, [| 2; 0; 0 |]) ];
        };
      ];
  }

(* --- drivers/net/wireless/ath (UAF, ipq807x) ---------------------------------------- *)

let wifi_ath : module_def =
  {
    m_name = "wifi_ath";
    m_source =
      {|
var ath_txq = 0;
var ath_txq_live = 0;
var ath_pending = 0;

fun ath_start(qdepth) {
  if (ath_txq_live != 0) { return 0 - 16; }
  if (qdepth > 16) { return 0 - 22; }
  ath_txq = kmalloc(64);
  if (ath_txq == 0) { return 0 - 12; }
  store32(ath_txq, qdepth);
  ath_txq_live = 1;
  ath_pending = 0;
  return 0;
}

fun ath_tx(seq) {
  if (ath_txq_live == 0) { return 0 - 2; }
  ath_pending = ath_pending + 1;
  store32(ath_txq + 4, seq);
  return ath_pending;
}

// BUG (drivers/net/wireless/ath, UAF): stop frees the TX queue while
// completions are still pending; the completion handler then writes the
// freed queue.
fun ath_stop_drain(force) {
  if (ath_txq_live == 0) { return 0 - 2; }
  kfree(ath_txq);
  ath_txq_live = 0;
  if (force == 1) {
    if (ath_pending > 0) {
      store32(ath_txq + 8, 0xDEAD);    // completion against freed queue
    }
  }
  ath_txq = 0;
  ath_pending = 0;
  return 0;
}

fun sys_wifi_ath(a, b, c) {
  if (a == 0) { return ath_start(b); }
  if (a == 1) { return ath_tx(c); }
  if (a == 2) { return ath_stop_drain(b & 1); }
  return 0 - 22;
}

fun wifi_ath_init() {
  syscall_table[64] = &sys_wifi_ath;
  return 0;
}
|};
    m_init = Some "wifi_ath_init";
    m_syscalls =
      [
        { sc_nr = 64; sc_name = "wifi_ath"; sc_args = [ Flag [ 0; 1; 2 ]; Range (0, 17); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/ath_stop_drain";
          b_paper_location = "drivers/net/wireless/ath";
          b_symbol = "ath_stop_drain";
          b_alt_symbols = [];
          b_kind = Report.Use_after_free;
          b_class = Heap_bug;
          b_syscalls = [ (64, [| 0; 8; 0 |]); (64, [| 1; 0; 5 |]); (64, [| 2; 1; 0 |]) ];
          b_benign = [ (64, [| 0; 8; 0 |]); (64, [| 2; 0; 0 |]) ];
        };
      ];
  }

(* --- drivers/net/wireless/intel/iwlwifi (OOB write, x86_64) --------------------------- *)

let wifi_iwlwifi : module_def =
  {
    m_name = "wifi_iwlwifi";
    m_source =
      {|
barr iwl_fw_blob[128];
var iwl_cmds_sent = 0;

// BUG (drivers/net/wireless/intel/iwlwifi, OOB write): host command
// payloads are capped at 64 bytes, but the 4-byte command header is
// written after the payload at the unchecked total offset.
fun iwl_send_hcmd(payload_len, cmd_id) {
  if (payload_len > 64) { return 0 - 22; }
  var cmd = kmalloc(64);
  if (cmd == 0) { return 0 - 12; }
  memcpy(cmd, &iwl_fw_blob, payload_len);
  store32(cmd + payload_len, cmd_id);       // payload_len 61..64 spills
  iwl_cmds_sent = iwl_cmds_sent + 1;
  var v = load32(cmd);
  kfree(cmd);
  return v & 0x7FFFFFFF;
}

fun sys_wifi_iwlwifi(a, b, c) {
  if (a == 0) { return iwl_cmds_sent; }
  if (a == 1) { return iwl_send_hcmd(b, c); }
  return 0 - 22;
}

fun wifi_iwlwifi_init() {
  syscall_table[65] = &sys_wifi_iwlwifi;
  memset(&iwl_fw_blob, 0x10, 128);
  return 0;
}
|};
    m_init = Some "wifi_iwlwifi_init";
    m_syscalls =
      [
        { sc_nr = 65; sc_name = "wifi_iwlwifi"; sc_args = [ Flag [ 0; 1 ]; Len; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/iwl_send_hcmd";
          b_paper_location = "drivers/net/wireless/intel/iwlwifi";
          b_symbol = "iwl_send_hcmd";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (65, [| 1; 62; 9 |]) ];
          b_benign = [ (65, [| 1; 32; 9 |]) ];
        };
      ];
  }

(* --- drivers/net/wireless/broadcom/b43 (OOB write, x86_64) ----------------------------- *)

let wifi_b43 : module_def =
  {
    m_name = "wifi_b43";
    m_source =
      {|
var b43_dma_slots = 0;

// BUG (drivers/net/wireless/broadcom/b43, OOB write): the DMA slot index
// wraps at 16 in the hardware but the driver's mirror array has 12
// entries (the old core revision's count).
fun b43_dma_tx(slot, meta) {
  var ring = kmalloc(48);              // 12 slots x 4 bytes
  if (ring == 0) { return 0 - 12; }
  var idx = slot & 15;
  store32(ring + idx * 4, meta);       // idx 12..15 out of bounds
  b43_dma_slots = b43_dma_slots + 1;
  var v = load32(ring);
  kfree(ring);
  return v & 0x7FFFFFFF;
}

fun sys_wifi_b43(a, b, c) {
  if (a == 0) { return b43_dma_slots; }
  if (a == 1) { return b43_dma_tx(b, c); }
  return 0 - 22;
}

fun wifi_b43_init() {
  syscall_table[66] = &sys_wifi_b43;
  return 0;
}
|};
    m_init = Some "wifi_b43_init";
    m_syscalls =
      [
        { sc_nr = 66; sc_name = "wifi_b43"; sc_args = [ Flag [ 0; 1 ]; Range (0, 15); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/b43_dma_tx";
          b_paper_location = "drivers/net/wireless/broadcom/b43";
          b_symbol = "b43_dma_tx";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (66, [| 1; 13; 7 |]) ];
          b_benign = [ (66, [| 1; 9; 7 |]) ];
        };
      ];
  }

(* --- drivers/bluetooth (OOB write, bcm63xx) --------------------------------------------- *)

let bluetooth : module_def =
  {
    m_name = "bluetooth";
    m_source =
      {|
var hci_cmd_count = 0;

// BUG (drivers/bluetooth, OOB write): the HCI event copies the remote
// name with the length from the packet; names are up to 48 bytes but the
// connection slot reserves 32.
fun hci_remote_name_evt(name_len, seed) {
  if (name_len > 48) { return 0 - 22; }
  var conn = kmalloc(32);
  if (conn == 0) { return 0 - 12; }
  var i = 0;
  while (i < name_len) {
    store8(conn + i, (seed + i * 7) & 0xFF);
    i = i + 1;
  }
  hci_cmd_count = hci_cmd_count + 1;
  var h = fnv1a(conn, 4);
  kfree(conn);
  return h & 0x7FFFFFFF;
}

fun sys_bluetooth(a, b, c) {
  if (a == 0) { return hci_cmd_count; }
  if (a == 1) { return hci_remote_name_evt(b, c); }
  return 0 - 22;
}

fun bluetooth_init() {
  syscall_table[67] = &sys_bluetooth;
  return 0;
}
|};
    m_init = Some "bluetooth_init";
    m_syscalls =
      [
        { sc_nr = 67; sc_name = "bluetooth"; sc_args = [ Flag [ 0; 1 ]; Len; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/hci_remote_name_evt";
          b_paper_location = "drivers/bluetooth";
          b_symbol = "hci_remote_name_evt";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (67, [| 1; 40; 3 |]) ];
          b_benign = [ (67, [| 1; 24; 3 |]) ];
        };
      ];
  }

(* --- drivers/net/bluetooth/realtek (UAF, rtl839x) ----------------------------------------- *)

let bt_realtek : module_def =
  {
    m_name = "bt_realtek";
    m_source =
      {|
var btrtl_dev = 0;
var btrtl_dev_live = 0;

fun btrtl_setup(fw_ver) {
  if (btrtl_dev_live != 0) { return 0 - 16; }
  btrtl_dev = kmalloc(40);
  if (btrtl_dev == 0) { return 0 - 12; }
  store32(btrtl_dev, fw_ver);
  btrtl_dev_live = 1;
  return 0;
}

// BUG (drivers/net/bluetooth/realtek, UAF): shutdown frees the device
// state but the suspended flag keeps a resume path that reads it.
fun btrtl_shutdown(suspended) {
  if (btrtl_dev_live == 0) { return 0 - 2; }
  kfree(btrtl_dev);
  btrtl_dev_live = 0;
  if (suspended == 1) { return 0; }    // resume path keeps the stale pointer
  btrtl_dev = 0;
  return 0;
}

fun btrtl_resume() {
  if (btrtl_dev == 0) { return 0 - 19; }
  return load32(btrtl_dev);            // UAF after suspended shutdown
}

fun sys_bt_realtek(a, b, c) {
  if (a == 0) { return btrtl_setup(b + (c & 0)); }
  if (a == 1) { return btrtl_shutdown(b & 1); }
  if (a == 2) { return btrtl_resume(); }
  return 0 - 22;
}

fun bt_realtek_init() {
  syscall_table[68] = &sys_bt_realtek;
  return 0;
}
|};
    m_init = Some "bt_realtek_init";
    m_syscalls =
      [
        { sc_nr = 68; sc_name = "bt_realtek"; sc_args = [ Flag [ 0; 1; 2 ]; Range (0, 3); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/btrtl_resume";
          b_paper_location = "drivers/net/bluetooth/realtek";
          b_symbol = "btrtl_resume";
          b_alt_symbols = [];
          b_kind = Report.Use_after_free;
          b_class = Heap_bug;
          b_syscalls = [ (68, [| 0; 3; 0 |]); (68, [| 1; 1; 0 |]); (68, [| 2; 0; 0 |]) ];
          b_benign = [ (68, [| 0; 3; 0 |]); (68, [| 2; 0; 0 |]) ];
        };
      ];
  }

(* --- drivers/dma/bcm2835-dma (OOB write, bcm63xx) -------------------------------------------- *)

let dma_bcm2835 : module_def =
  {
    m_name = "dma_bcm2835";
    m_source =
      {|
var bcm_dma_started = 0;

// BUG (drivers/dma/bcm2835-dma, OOB write): the control-block chain
// length is taken from the transfer size in 256-byte frames, but the
// chain array holds 4 control blocks of 16 bytes.
fun bcm2835_dma_start(xfer_len) {
  var cbs = kmalloc(64);              // 4 control blocks
  if (cbs == 0) { return 0 - 12; }
  var frames = (xfer_len + 255) >> 8;
  if (frames > 6) { kfree(cbs); return 0 - 22; }   // wrong cap: array holds 4
  var i = 0;
  while (i < frames) {
    store32(cbs + i * 16, 0x3000 + i);
    store32(cbs + i * 16 + 4, 256);
    i = i + 1;
  }
  bcm_dma_started = bcm_dma_started + 1;
  var v = load32(cbs);
  kfree(cbs);
  return v & 0x7FFFFFFF;
}

fun sys_dma_bcm2835(a, b, c) {
  if (a == 0) { return bcm_dma_started + (c & 0); }
  if (a == 1) { return bcm2835_dma_start(b); }
  return 0 - 22;
}

fun dma_bcm2835_init() {
  syscall_table[69] = &sys_dma_bcm2835;
  return 0;
}
|};
    m_init = Some "dma_bcm2835_init";
    m_syscalls =
      [
        { sc_nr = 69; sc_name = "dma_bcm2835"; sc_args = [ Flag [ 0; 1 ]; Range (0, 2048); Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/bcm2835_dma_start";
          b_paper_location = "drivers/dma/bcm2835-dma";
          b_symbol = "bcm2835_dma_start";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (69, [| 1; 1300; 0 |]) ];
          b_benign = [ (69, [| 1; 900; 0 |]) ];
        };
      ];
  }

(* --- drivers/dma/mediatek (double free, mt7629) ----------------------------------------------- *)

let dma_mediatek : module_def =
  {
    m_name = "dma_mediatek";
    m_source =
      {|
var mtk_dma_desc = 0;
var mtk_dma_live = 0;

fun mtk_dma_prep(len) {
  if (mtk_dma_live != 0) { return 0 - 16; }
  if (len > 128) { return 0 - 22; }
  mtk_dma_desc = kmalloc(24);
  if (mtk_dma_desc == 0) { return 0 - 12; }
  store32(mtk_dma_desc, len);
  mtk_dma_live = 1;
  return 0;
}

// BUG (drivers/dma/mediatek, double free): terminating a channel whose
// transfer already completed frees the descriptor that the completion
// callback freed.
fun mtk_dma_terminate(completed) {
  if (mtk_dma_live == 0) { return 0 - 2; }
  if (completed == 2) {
    kfree(mtk_dma_desc);          // completion already freed it
  }
  kfree(mtk_dma_desc);
  mtk_dma_desc = 0;
  mtk_dma_live = 0;
  return 0;
}

fun sys_dma_mediatek(a, b, c) {
  if (a == 0) { return mtk_dma_prep(b); }
  if (a == 1) { return mtk_dma_terminate(c); }
  return 0 - 22;
}

fun dma_mediatek_init() {
  syscall_table[70] = &sys_dma_mediatek;
  return 0;
}
|};
    m_init = Some "dma_mediatek_init";
    m_syscalls =
      [
        { sc_nr = 70; sc_name = "dma_mediatek"; sc_args = [ Flag [ 0; 1 ]; Len; Range (0, 3) ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/mtk_dma_terminate";
          b_paper_location = "drivers/dma/mediatek";
          b_symbol = "mtk_dma_terminate";
          b_alt_symbols = [];
          b_kind = Report.Double_free;
          b_class = Heap_bug;
          b_syscalls = [ (70, [| 0; 32; 0 |]); (70, [| 1; 0; 2 |]) ];
          b_benign = [ (70, [| 0; 32; 0 |]); (70, [| 1; 0; 1 |]) ];
        };
      ];
  }

(* --- drivers/scsi/aic7xxx (OOB write, bcm63xx) --------------------------------------------------- *)

let scsi_aic7xxx : module_def =
  {
    m_name = "scsi_aic7xxx";
    m_source =
      {|
var ahc_scb_count = 0;

// BUG (drivers/scsi/aic7xxx, OOB write): the CDB is copied into the SCB
// with the length from the request; 16-byte CDBs overflow the 12-byte
// field of older sequencer firmware SCBs.
fun ahc_queue_scb(cdb_len, lun) {
  if (cdb_len > 16) { return 0 - 22; }
  var scb = kmalloc(28);            // 16 header + 12 CDB field
  if (scb == 0) { return 0 - 12; }
  store32(scb, lun);
  var i = 0;
  while (i < cdb_len) {
    store8(scb + 16 + i, 0xC0 + i);   // cdb_len 13..16 spills
    i = i + 1;
  }
  ahc_scb_count = ahc_scb_count + 1;
  var v = load32(scb + 4);
  kfree(scb);
  return v & 0x7FFFFFFF;
}

fun sys_scsi_aic7xxx(a, b, c) {
  if (a == 0) { return ahc_scb_count; }
  if (a == 1) { return ahc_queue_scb(b, c); }
  return 0 - 22;
}

fun scsi_aic7xxx_init() {
  syscall_table[71] = &sys_scsi_aic7xxx;
  return 0;
}
|};
    m_init = Some "scsi_aic7xxx_init";
    m_syscalls =
      [
        { sc_nr = 71; sc_name = "scsi_aic7xxx"; sc_args = [ Flag [ 0; 1 ]; Range (0, 16); Range (0, 7) ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/ahc_queue_scb";
          b_paper_location = "drivers/scsi/aic7xxx";
          b_symbol = "ahc_queue_scb";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (71, [| 1; 15; 2 |]) ];
          b_benign = [ (71, [| 1; 10; 2 |]) ];
        };
      ];
  }

(* --- drivers/iommu (OOB write, x86_64) ------------------------------------------------------------- *)

let iommu : module_def =
  {
    m_name = "iommu";
    m_source =
      {|
var iommu_maps = 0;

// BUG (drivers/iommu, OOB write): a second-level page table holds 32
// entries, but the index uses 6 bits of the IOVA.
fun iommu_map_page(iova, phys) {
  var pt = kmalloc(128);            // 32 entries x 4
  if (pt == 0) { return 0 - 12; }
  var idx = (iova >> 12) & 63;      // should be & 31
  store32(pt + idx * 4, phys | 1);
  iommu_maps = iommu_maps + 1;
  var v = load32(pt);
  kfree(pt);
  return v & 0x7FFFFFFF;
}

fun sys_iommu(a, b, c) {
  if (a == 0) { return iommu_maps; }
  if (a == 1) { return iommu_map_page(b, c); }
  return 0 - 22;
}

fun iommu_init() {
  syscall_table[72] = &sys_iommu;
  return 0;
}
|};
    m_init = Some "iommu_init";
    m_syscalls =
      [
        { sc_nr = 72; sc_name = "iommu"; sc_args = [ Flag [ 0; 1 ]; Any32; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "linux/iommu_map_page";
          b_paper_location = "drivers/iommu";
          b_symbol = "iommu_map_page";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (72, [| 1; 0x21000; 0x5000 |]) ];
          b_benign = [ (72, [| 1; 0x11000; 0x5000 |]) ];
        };
      ];
  }
