(* Linux-like slab allocator (kmalloc/kfree).

   One contiguous pool symbol ([heap_pool]) is carved at init into four
   size caches plus a large-object bump arena.  Object state lives in a
   separate state array (out-of-band), like slab freelist metadata kept off
   the objects themselves.  Allocator functions are [nosan] - kernels
   exclude the allocator from sanitizer instrumentation - and EmbSan-D
   exempts their pc range.

   Layout of heap_pool (24576 bytes):
     [    0,  2048)  cache 0: 64 objects x 32 B
     [ 2048,  6144)  cache 1: 64 objects x 64 B
     [ 6144, 10240)  cache 2: 32 objects x 128 B
     [10240, 14336)  cache 3: 16 objects x 256 B
     [14336, 24576)  large-object arena (bump, 8 B headers) *)

let source =
  {|
barr heap_pool[24576];
barr slab_state[176];          // 64+64+32+16 per-object state bytes
var slab_lock = 0;
var big_next = 14336;
var kmalloc_fail_count = 0;

nosan fun slab_lock_acquire() {
  while (amo_swap(&slab_lock, 1) != 0) { }
  return 0;
}

nosan fun slab_lock_release() {
  store32(&slab_lock, 0);
  return 0;
}

// cache index for a request size; 4 means the large arena
nosan fun slab_cache_index(size) {
  if (size <= 32) { return 0; }
  if (size <= 64) { return 1; }
  if (size <= 128) { return 2; }
  if (size <= 256) { return 3; }
  return 4;
}

nosan fun slab_cache_objsize(c) {
  if (c == 0) { return 32; }
  if (c == 1) { return 64; }
  if (c == 2) { return 128; }
  return 256;
}

nosan fun slab_cache_base(c) {
  if (c == 0) { return 0; }
  if (c == 1) { return 2048; }
  if (c == 2) { return 6144; }
  return 10240;
}

nosan fun slab_cache_count(c) {
  if (c == 0) { return 64; }
  if (c == 1) { return 64; }
  if (c == 2) { return 32; }
  return 16;
}

nosan fun slab_state_base(c) {
  if (c == 0) { return 0; }
  if (c == 1) { return 64; }
  if (c == 2) { return 128; }
  return 160;
}

nosan fun kmalloc(size) {
  if (size == 0) { return 0; }
  slab_lock_acquire();
  var c = slab_cache_index(size);
  if (c == 4) {
    // large object: bump arena with an 8-byte in-band header.  Kept inline
    // so every metadata access runs at kmalloc's (exempt) pc.
    var need = (size + 15) & ~7;
    if (big_next + need > 24576) {
      slab_lock_release();
      return 0;
    }
    var hdr = &heap_pool + big_next;
    big_next = big_next + need;
    store32(hdr, size);
    store32(hdr + 4, 0xB16B10C5);       // big-block magic
    slab_lock_release();
    san_alloc(hdr + 8, size);
    return hdr + 8;
  }
  var sbase = slab_state_base(c);
  var count = slab_cache_count(c);
  var i = 0;
  while (i < count) {
    if (slab_state[sbase + i] == 0) {
      slab_state[sbase + i] = 1;
      var p = &heap_pool + slab_cache_base(c) + i * slab_cache_objsize(c);
      slab_lock_release();
      san_alloc(p, size);
      return p;
    }
    i = i + 1;
  }
  kmalloc_fail_count = kmalloc_fail_count + 1;
  slab_lock_release();
  return 0;
}

nosan fun kfree(p) {
  if (p == 0) { return 0; }
  var off = p - &heap_pool;
  if (off >= 14336) {
    // large object: header precedes the block
    san_free(p, load32(p - 8));
    return 0;
  }
  slab_lock_acquire();
  var c = 0;
  if (off >= 2048) { c = 1; }
  if (off >= 6144) { c = 2; }
  if (off >= 10240) { c = 3; }
  var objsize = slab_cache_objsize(c);
  var i = (off - slab_cache_base(c)) / objsize;
  var sbase = slab_state_base(c);
  slab_state[sbase + i] = 0;
  slab_lock_release();
  san_free(p, objsize);
  return 0;
}

// kcalloc-alike used by several drivers
nosan fun kzalloc(size) {
  var p = kmalloc(size);
  if (p != 0) { memset(p, 0, size); }
  return p;
}

nosan fun kheap_init() {
  san_poison(&heap_pool, 24576);
  return 0;
}
|}

let unit_ = { Embsan_minic.Driver.src_name = "alloc_slab"; code = source }

(** Total pool bytes, exported for layout assertions in tests. *)
let pool_size = 24576
