lib/guest/liteos_kernel.ml: Alloc_bestfit Defs Embsan_core Rtos_base
