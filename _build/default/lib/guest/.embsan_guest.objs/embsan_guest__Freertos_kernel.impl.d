lib/guest/freertos_kernel.ml: Alloc_heap4 Defs Embsan_core Rtos_base
