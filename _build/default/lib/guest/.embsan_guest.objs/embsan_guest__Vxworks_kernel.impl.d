lib/guest/vxworks_kernel.ml: Alloc_vxheap Defs Embsan_core Embsan_isa Rtos_base
