lib/guest/alloc_heap4.ml: Embsan_minic Printf
