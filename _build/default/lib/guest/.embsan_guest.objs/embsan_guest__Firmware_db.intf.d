lib/guest/firmware_db.mli: Defs Embsan_core Embsan_isa Embsan_minic Format
