lib/guest/defs.ml: Embsan_core
