lib/guest/alloc_slab.ml: Embsan_minic
