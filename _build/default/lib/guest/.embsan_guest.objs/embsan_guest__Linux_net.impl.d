lib/guest/linux_net.ml: Defs Embsan_core Printf
