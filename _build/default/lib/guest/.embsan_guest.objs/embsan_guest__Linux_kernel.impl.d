lib/guest/linux_kernel.ml: Alloc_slab Defs Embsan_minic Libk List Printf String
