lib/guest/replay.mli: Defs Embsan_core Embsan_emu Firmware_db
