lib/guest/libk.ml: Embsan_minic
