lib/guest/linux_drivers.ml: Defs Embsan_core
