lib/guest/replay.ml: Defs Devices Embsan_core Embsan_emu Embsan_isa Embsan_minic Firmware_db Format Hashtbl List Machine Option Printf Services String
