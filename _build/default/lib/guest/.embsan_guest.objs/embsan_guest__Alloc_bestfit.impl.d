lib/guest/alloc_bestfit.ml: Embsan_minic Printf
