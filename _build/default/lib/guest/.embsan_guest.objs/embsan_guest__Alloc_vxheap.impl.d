lib/guest/alloc_vxheap.ml: Embsan_minic Printf
