lib/guest/rtos_base.ml: Defs Embsan_minic Libk List Printf String
