lib/guest/syzbot_suite.ml: Defs Embsan_core List Printf String
