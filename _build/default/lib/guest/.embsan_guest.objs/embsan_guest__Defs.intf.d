lib/guest/defs.mli: Embsan_core
