lib/guest/linux_fs.ml: Defs Embsan_core Linux_net Printf
