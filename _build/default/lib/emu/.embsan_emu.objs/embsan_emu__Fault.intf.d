lib/emu/fault.mli: Format
