lib/emu/device.ml:
