lib/emu/probe.ml: List
