lib/emu/hypercall.ml: Printf
