lib/emu/machine.ml: Arch Array Codec Cost_model Cpu Device Devices Embsan_isa Fault Fmt Hashtbl Image Insn Lazy List Probe Ram Reg Word32 Word32_hex
