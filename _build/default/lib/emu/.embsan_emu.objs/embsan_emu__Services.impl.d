lib/emu/services.ml: Array Buffer Char Cpu Devices Embsan_isa Fault Hashtbl Hypercall Machine Reg
