lib/emu/coverage.ml: Array Bytes Cpu Embsan_isa List Machine Probe
