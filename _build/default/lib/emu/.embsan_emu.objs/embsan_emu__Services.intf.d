lib/emu/services.mli: Machine
