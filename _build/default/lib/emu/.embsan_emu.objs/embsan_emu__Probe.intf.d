lib/emu/probe.mli:
