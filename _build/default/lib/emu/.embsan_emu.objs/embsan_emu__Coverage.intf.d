lib/emu/coverage.mli: Bytes Machine
