lib/emu/machine.mli: Cpu Device Devices Embsan_isa Fault Format Hashtbl Probe Ram
