lib/emu/devices.ml: Array Buffer Char Device Fault List Queue
