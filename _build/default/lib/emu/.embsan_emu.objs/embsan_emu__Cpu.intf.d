lib/emu/cpu.mli: Embsan_isa Format
