lib/emu/hypercall.mli:
