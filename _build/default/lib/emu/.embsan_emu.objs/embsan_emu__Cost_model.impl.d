lib/emu/cost_model.ml: Embsan_isa
