lib/emu/trace.ml: Array Cpu Embsan_isa Fmt List Machine Printf Probe String Word32_hex
