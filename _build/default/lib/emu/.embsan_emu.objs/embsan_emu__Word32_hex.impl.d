lib/emu/word32_hex.ml: Printf
