lib/emu/fault.ml: Fmt Word32_hex
