lib/emu/cpu.ml: Array Embsan_isa Fmt Reg Word32 Word32_hex
