lib/emu/ram.ml: Bytes Char Embsan_isa Fault Int32 List Printf String
