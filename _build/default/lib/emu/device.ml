(* Memory-mapped device interface. *)

type t = {
  name : string;
  base : int;
  size : int;
  read : offset:int -> width:int -> int;
  write : offset:int -> width:int -> value:int -> unit;
}

let covers t addr = addr >= t.base && addr < t.base + t.size
