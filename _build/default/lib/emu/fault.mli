(** Exceptions shared between the bus, devices, translator and run loop. *)

type access = {
  hart : int;
  pc : int;
  addr : int;
  size : int;
  is_write : bool;
}

val pp_access : Format.formatter -> access -> unit

(** Architectural memory fault (unmapped address, null page, ...). *)
exception Memory_fault of access * string

(** Raised by the HALT instruction and the power device. *)
exception Halted of int

(** A probe callback abandons the current instruction; the run loop resets
    the hart to [pc] so the instruction re-executes after the stall. *)
exception Retry_at of int
