(** Instrumentation probes inserted into translated code templates
    (EmbSan's core mechanism, paper section 3.3).  Subscribing bumps
    [epoch], which invalidates cached translations so callbacks are baked
    into freshly generated code. *)

type mem_event = {
  hart : int;
  pc : int;
  addr : int;
  size : int;
  is_write : bool;
  is_atomic : bool;  (** AMO instructions: marked accesses for KCSAN *)
  value : int;  (** value being written (stores); 0 for loads *)
}

type call_event = { c_hart : int; c_pc : int; c_target : int }
type ret_event = { r_hart : int; r_pc : int; r_target : int; r_retval : int }
type block_event = { b_hart : int; b_pc : int }

type t = {
  mutable mem : (mem_event -> unit) list;
  mutable calls : (call_event -> unit) list;
  mutable rets : (ret_event -> unit) list;
  mutable blocks : (block_event -> unit) list;
  mutable epoch : int;
}

val create : unit -> t
val on_mem : t -> (mem_event -> unit) -> unit
val on_call : t -> (call_event -> unit) -> unit
val on_ret : t -> (ret_event -> unit) -> unit
val on_block : t -> (block_event -> unit) -> unit
val clear : t -> unit
val fire_mem : t -> mem_event -> unit
val fire_call : t -> call_event -> unit
val fire_ret : t -> ret_event -> unit
val fire_block : t -> block_event -> unit
