(* Full-system machine: RAM, MMIO bus, harts, hypercall table, and a
   TCG-like execution engine that translates basic blocks into closure
   arrays with instrumentation probes baked in at translation time. *)

open Embsan_isa

type stop =
  | Halted of int
  | Fault of Fault.access * string
  | Unhandled_trap of { pc : int; num : int }
  | Decode_fault of { pc : int; reason : string }
  | Budget_exhausted
  | Deadlock

let pp_stop fmt = function
  | Halted code -> Fmt.pf fmt "halted(%d)" code
  | Fault (a, reason) -> Fmt.pf fmt "fault(%s: %a)" reason Fault.pp_access a
  | Unhandled_trap { pc; num } ->
      Fmt.pf fmt "unhandled-trap(%d @ %s)" num (Word32_hex.hex pc)
  | Decode_fault { pc; reason } ->
      Fmt.pf fmt "decode-fault(%s @ %s)" reason (Word32_hex.hex pc)
  | Budget_exhausted -> Fmt.string fmt "budget-exhausted"
  | Deadlock -> Fmt.string fmt "deadlock"

type block = { b_epoch : int; b_ops : (Cpu.t -> unit) array }

type t = {
  arch : Arch.t;
  ram : Ram.t;
  mutable devices : Device.t list;
  uart : Devices.uart;
  mailbox : Devices.mailbox;
  harts : Cpu.t array;
  probes : Probe.t;
  block_cache : (int, block) Hashtbl.t;
  trap_handlers : (int, handler) Hashtbl.t;
  mutable total_insns : int;
  mutable cost : int; (* modeled guest cycles, Cost_model weights *)
  mutable external_cost : int; (* host-side sanitizer cost units *)
  mutable next_hart : int;
  mutable entry : int;
}

and handler = t -> Cpu.t -> unit

exception Trap_unhandled of int * int (* pc, num *)

let ram_base t = Ram.base t.ram
let ram_size t = Ram.size t.ram

let create ?(harts = 2) ?(ram_base = 0x0001_0000) ?(ram_size = 4 * 1024 * 1024)
    ?(seed = 1) ~arch () =
  let ram = Ram.create ~base:ram_base ~size:ram_size in
  let uart_state, uart_dev = Devices.uart () in
  let mailbox_state, mailbox_dev = Devices.mailbox () in
  let rec m =
    lazy
      {
        arch;
        ram;
        devices =
          [
            uart_dev;
            Devices.power ();
            mailbox_dev;
            Devices.timer ~now:(fun () -> (Lazy.force m).total_insns);
            Devices.rng ~seed;
          ];
        uart = uart_state;
        mailbox = mailbox_state;
        harts = Array.init harts Cpu.create;
        probes = Probe.create ();
        block_cache = Hashtbl.create 1024;
        trap_handlers = Hashtbl.create 16;
        total_insns = 0;
        cost = 0;
        external_cost = 0;
        next_hart = 0;
        entry = 0;
      }
  in
  Lazy.force m

let add_device t dev = t.devices <- dev :: t.devices

let flush_tcg t = Hashtbl.reset t.block_cache

let set_trap_handler t num handler = Hashtbl.replace t.trap_handlers num handler

let remove_trap_handler t num = Hashtbl.remove t.trap_handlers num

(** Add host-side sanitizer cost units (see {!Cost_model}). *)
let add_external_cost t units = t.external_cost <- t.external_cost + units

(** Modeled total cost of the run so far: translated guest cycles plus
    host-side sanitizer work. *)
let total_cost t = t.cost + t.external_cost

let load_image t (image : Image.t) =
  if image.arch <> t.arch then invalid_arg "Machine.load_image: arch mismatch";
  Ram.load_image t.ram image;
  t.entry <- image.entry;
  flush_tcg t

let start_hart t id ~pc ~sp = Cpu.reset t.harts.(id) ~pc ~sp

(** Boot hart 0 at the image entry with the stack at the top of RAM. *)
let boot t =
  start_hart t 0 ~pc:t.entry ~sp:(Ram.limit t.ram - 16)

(* --- Bus ------------------------------------------------------------------ *)

let find_device t addr = List.find_opt (fun d -> Device.covers d addr) t.devices

let bus_read t (acc : Fault.access) =
  if Ram.contains t.ram acc.addr ~size:acc.size then Ram.read t.ram acc.addr acc.size
  else
    match find_device t acc.addr with
    | Some d -> d.read ~offset:(acc.addr - d.base) ~width:acc.size
    | None ->
        Ram.check t.ram acc;
        0

let bus_write t (acc : Fault.access) value =
  if Ram.contains t.ram acc.addr ~size:acc.size then
    Ram.write t.ram acc.addr acc.size value
  else
    match find_device t acc.addr with
    | Some d -> d.write ~offset:(acc.addr - d.base) ~width:acc.size ~value
    | None -> Ram.check t.ram acc

(* Debug accessors used by the sanitizer runtime and tests. *)
let read_mem t ~addr ~width =
  bus_read t { hart = -1; pc = 0; addr; size = width; is_write = false }

let write_mem t ~addr ~width ~value =
  bus_write t { hart = -1; pc = 0; addr; size = width; is_write = true } value

let read_string t ~addr ~len = Ram.read_string t.ram ~addr ~len

let console_output t = Devices.uart_output t.uart

(* --- TCG-like translator ------------------------------------------------- *)

let max_block_insns = 32

let alu_eval (op : Insn.alu_op) a b =
  match op with
  | Add -> Word32.add a b
  | Sub -> Word32.sub a b
  | Mul -> Word32.mul a b
  | Divu -> Word32.divu a b
  | Remu -> Word32.remu a b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> Word32.shl a b
  | Shru -> Word32.shru a b
  | Shrs -> Word32.shrs a b
  | Slt -> if Word32.lt_s a b then 1 else 0
  | Sltu -> if Word32.lt_u a b then 1 else 0
  | Seq -> if Word32.wrap a = Word32.wrap b then 1 else 0
  | Sne -> if Word32.wrap a <> Word32.wrap b then 1 else 0

let cond_eval (c : Insn.cond) a b =
  match c with
  | Eq -> Word32.wrap a = Word32.wrap b
  | Ne -> Word32.wrap a <> Word32.wrap b
  | Lt -> Word32.lt_s a b
  | Ltu -> Word32.lt_u a b
  | Ge -> not (Word32.lt_s a b)
  | Geu -> not (Word32.lt_u a b)

let load_result width signed raw =
  match (width : Insn.width) with
  | W8 -> if signed then Word32.sext raw 8 else Word32.zext raw 8
  | W16 -> if signed then Word32.sext raw 16 else Word32.zext raw 16
  | W32 -> Word32.wrap raw

let fetch_insn t pc =
  if not (Ram.contains t.ram pc ~size:Insn.size) then
    raise
      (Fault.Memory_fault
         ( { hart = -1; pc; addr = pc; size = Insn.size; is_write = false },
           "instruction fetch outside RAM" ));
  Codec.decode_with t.arch ~addr:pc (fun off -> Ram.read8 t.ram off) pc

(* Translate one basic block starting at [base].  Instrumentation probes are
   specialized in: if no memory probe is subscribed the generated load/store
   ops contain no callback at all, exactly like an uninstrumented TCG
   template. *)
let translate t base =
  let mem_probes = t.probes.mem <> [] in
  let tick_alu cpu =
    cpu.Cpu.insns <- cpu.Cpu.insns + 1;
    t.total_insns <- t.total_insns + 1;
    t.cost <- t.cost + Cost_model.alu_insn
  in
  let tick_mem (cpu : Cpu.t) =
    cpu.Cpu.insns <- cpu.Cpu.insns + 1;
    t.total_insns <- t.total_insns + 1;
    t.cost <- t.cost + Cost_model.mem_insn
  in
  let rec collect pc acc n =
    let insn = fetch_insn t pc in
    let acc = (pc, insn) :: acc in
    if Insn.ends_block insn || n + 1 >= max_block_insns then (List.rev acc, pc + Insn.size)
    else collect (pc + Insn.size) acc (n + 1)
  in
  let insns, end_pc = collect base [] 0 in
  let op_of (pc, insn) : Cpu.t -> unit =
    match (insn : Insn.t) with
    | Nop | Fence -> tick_alu
    | Halt ->
        fun cpu ->
          tick_alu cpu;
          raise (Fault.Halted (Cpu.get cpu Reg.a0))
    | Li (rd, imm) ->
        fun cpu ->
          tick_alu cpu;
          Cpu.set cpu rd imm
    | Alu (op, rd, rs1, rs2) ->
        fun cpu ->
          tick_alu cpu;
          Cpu.set cpu rd (alu_eval op (Cpu.get cpu rs1) (Cpu.get cpu rs2))
    | Alui (op, rd, rs1, imm) ->
        fun cpu ->
          tick_alu cpu;
          Cpu.set cpu rd (alu_eval op (Cpu.get cpu rs1) imm)
    | Load (w, signed, rd, rs1, imm) ->
        let size = Insn.width_bytes w in
        if mem_probes then (fun cpu ->
          tick_mem cpu;
          let addr = Word32.add (Cpu.get cpu rs1) imm in
          Probe.fire_mem t.probes
            {
              hart = cpu.id;
              pc;
              addr;
              size;
              is_write = false;
              is_atomic = false;
              value = 0;
            };
          let raw =
            bus_read t { hart = cpu.id; pc; addr; size; is_write = false }
          in
          Cpu.set cpu rd (load_result w signed raw))
        else fun cpu ->
          tick_mem cpu;
          let addr = Word32.add (Cpu.get cpu rs1) imm in
          let raw =
            bus_read t { hart = cpu.id; pc; addr; size; is_write = false }
          in
          Cpu.set cpu rd (load_result w signed raw)
    | Store (w, rs1, rs2, imm) ->
        let size = Insn.width_bytes w in
        if mem_probes then (fun cpu ->
          tick_mem cpu;
          let addr = Word32.add (Cpu.get cpu rs1) imm in
          let value = Cpu.get cpu rs2 in
          Probe.fire_mem t.probes
            {
              hart = cpu.id;
              pc;
              addr;
              size;
              is_write = true;
              is_atomic = false;
              value;
            };
          bus_write t { hart = cpu.id; pc; addr; size; is_write = true } value)
        else fun cpu ->
          tick_mem cpu;
          let addr = Word32.add (Cpu.get cpu rs1) imm in
          bus_write t
            { hart = cpu.id; pc; addr; size; is_write = true }
            (Cpu.get cpu rs2)
    | Amo (op, rd, rs1, rs2) ->
        fun cpu ->
          tick_mem cpu;
          let addr = Cpu.get cpu rs1 in
          if mem_probes then
            Probe.fire_mem t.probes
              {
                hart = cpu.id;
                pc;
                addr;
                size = 4;
                is_write = true;
                is_atomic = true;
                value = Cpu.get cpu rs2;
              };
          let acc : Fault.access =
            { hart = cpu.id; pc; addr; size = 4; is_write = true }
          in
          let old = bus_read t { acc with is_write = false } in
          let next =
            match op with
            | Amo_add -> Word32.add old (Cpu.get cpu rs2)
            | Amo_swap -> Cpu.get cpu rs2
          in
          bus_write t acc next;
          Cpu.set cpu rd old
    | Branch (c, rs1, rs2, imm) ->
        fun cpu ->
          tick_alu cpu;
          cpu.pc <-
            (if cond_eval c (Cpu.get cpu rs1) (Cpu.get cpu rs2) then
               Word32.add pc imm
             else pc + Insn.size)
    | Jal (rd, imm) ->
        let target = Word32.add pc imm in
        let is_call = Reg.equal rd Reg.ra in
        fun cpu ->
          tick_alu cpu;
          Cpu.set cpu rd (pc + Insn.size);
          cpu.pc <- target;
          if is_call && t.probes.calls <> [] then
            Probe.fire_call t.probes
              { c_hart = cpu.id; c_pc = pc; c_target = target }
    | Jalr (rd, rs1, imm) ->
        let is_call = Reg.equal rd Reg.ra in
        let is_ret = Reg.equal rd Reg.zero && Reg.equal rs1 Reg.ra in
        fun cpu ->
          tick_alu cpu;
          let target = Word32.add (Cpu.get cpu rs1) imm in
          Cpu.set cpu rd (pc + Insn.size);
          cpu.pc <- target;
          if is_call && t.probes.calls <> [] then
            Probe.fire_call t.probes
              { c_hart = cpu.id; c_pc = pc; c_target = target }
          else if is_ret && t.probes.rets <> [] then
            Probe.fire_ret t.probes
              {
                r_hart = cpu.id;
                r_pc = pc;
                r_target = target;
                r_retval = Cpu.get cpu Reg.a0;
              }
    | Trap num ->
        fun cpu ->
          tick_alu cpu;
          cpu.pc <- pc + Insn.size;
          (match Hashtbl.find_opt t.trap_handlers num with
          | Some handler -> handler t cpu
          | None -> raise (Trap_unhandled (pc, num)))
  in
  let ops = List.map op_of insns in
  let ops =
    match List.rev insns with
    | (_, last) :: _ when Insn.ends_block last -> ops
    | _ -> ops @ [ (fun cpu -> cpu.Cpu.pc <- end_pc) ]
  in
  { b_epoch = t.probes.epoch; b_ops = Array.of_list ops }

let lookup_block t pc =
  match Hashtbl.find_opt t.block_cache pc with
  | Some b when b.b_epoch = t.probes.epoch -> b
  | Some _ | None ->
      let b = translate t pc in
      Hashtbl.replace t.block_cache pc b;
      b

(* --- Run loop -------------------------------------------------------------- *)

let exec_block t (cpu : Cpu.t) =
  let pc = cpu.pc in
  if t.probes.blocks <> [] then
    Probe.fire_block t.probes { b_hart = cpu.id; b_pc = pc };
  let block = lookup_block t pc in
  let ops = block.b_ops in
  for i = 0 to Array.length ops - 1 do
    ops.(i) cpu
  done

let runnable t (cpu : Cpu.t) =
  cpu.status = Running && cpu.stall_until <= t.total_insns

(** Run until a stop condition.  [until] is checked between blocks and makes
    the machine pause (reported as [Budget_exhausted]?  no: returns [None]).
    Returns [Some stop] for a definitive machine stop, [None] when [until]
    fired or all work is done without halting. *)
let run_slice t ~max_insns ~(until : unit -> bool) =
  let deadline = t.total_insns + max_insns in
  let n = Array.length t.harts in
  let rec loop idle_rounds =
    if until () then None
    else if t.total_insns >= deadline then Some Budget_exhausted
    else begin
      (* pick next runnable hart round-robin *)
      let rec pick k =
        if k >= n then None
        else
          let cpu = t.harts.((t.next_hart + k) mod n) in
          if runnable t cpu then Some cpu else pick (k + 1)
      in
      match pick 0 with
      | Some cpu -> (
          t.next_hart <- (cpu.id + 1) mod n;
          match exec_block t cpu with
          | () -> loop 0
          | exception Fault.Halted code -> Some (Halted code)
          | exception Fault.Memory_fault (acc, reason) -> Some (Fault (acc, reason))
          | exception Fault.Retry_at pc ->
              cpu.pc <- pc;
              loop 0
          | exception Trap_unhandled (pc, num) -> Some (Unhandled_trap { pc; num })
          | exception Codec.Decode_error { addr; reason } ->
              Some (Decode_fault { pc = addr; reason }))
      | None ->
          (* all harts parked/halted/stalled: advance time past the nearest
             stall, or report deadlock *)
          let nearest =
            Array.fold_left
              (fun acc (cpu : Cpu.t) ->
                if cpu.status = Running && cpu.stall_until > t.total_insns then
                  min acc cpu.stall_until
                else acc)
              max_int t.harts
          in
          if nearest = max_int || idle_rounds > 2 then Some Deadlock
          else begin
            t.total_insns <- nearest;
            loop (idle_rounds + 1)
          end
    end
  in
  loop 0

let run t ~max_insns =
  match run_slice t ~max_insns ~until:(fun () -> false) with
  | Some stop -> stop
  | None -> Budget_exhausted

(** Run until the mailbox signals the ready-to-run doorbell. *)
let run_until_ready t ~max_insns =
  run_slice t ~max_insns ~until:(fun () -> Devices.mailbox_ready t.mailbox)

(** Run until the current mailbox request completes and the queue drains. *)
let run_until_mailbox_idle t ~max_insns =
  run_slice t ~max_insns ~until:(fun () -> Devices.mailbox_idle t.mailbox)
