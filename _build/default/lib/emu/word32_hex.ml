(* Tiny formatting helper so low-level modules do not depend on the ISA
   library's word module for printing alone. *)

let hex v = Printf.sprintf "0x%08x" (v land 0xFFFF_FFFF)
