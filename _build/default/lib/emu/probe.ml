(* Instrumentation probes inserted into translated code templates.

   This is the mechanism EmbSan's Common Sanitizer Runtime relies on
   (S3.3): callbacks are *inserted at translation time* into the ops of a
   basic block, so subscribing or unsubscribing bumps [epoch] and flushes
   the translation cache. *)

type mem_event = {
  hart : int;
  pc : int;
  addr : int;
  size : int;
  is_write : bool;
  is_atomic : bool; (* AMO instructions: marked accesses for KCSAN *)
  value : int; (* value being written (stores); 0 for loads (pre-access) *)
}

type call_event = { c_hart : int; c_pc : int; c_target : int }

type ret_event = { r_hart : int; r_pc : int; r_target : int; r_retval : int }

type block_event = { b_hart : int; b_pc : int }

type t = {
  mutable mem : (mem_event -> unit) list;
  mutable calls : (call_event -> unit) list;
  mutable rets : (ret_event -> unit) list;
  mutable blocks : (block_event -> unit) list;
  mutable epoch : int;
}

let create () = { mem = []; calls = []; rets = []; blocks = []; epoch = 0 }

let bump t = t.epoch <- t.epoch + 1

let on_mem t f =
  t.mem <- t.mem @ [ f ];
  bump t

let on_call t f =
  t.calls <- t.calls @ [ f ];
  bump t

let on_ret t f =
  t.rets <- t.rets @ [ f ];
  bump t

let on_block t f =
  t.blocks <- t.blocks @ [ f ];
  bump t

let clear t =
  t.mem <- [];
  t.calls <- [];
  t.rets <- [];
  t.blocks <- [];
  bump t

let fire_mem t ev = List.iter (fun f -> f ev) t.mem
let fire_call t ev = List.iter (fun f -> f ev) t.calls
let fire_ret t ev = List.iter (fun f -> f ev) t.rets
let fire_block t ev = List.iter (fun f -> f ev) t.blocks
