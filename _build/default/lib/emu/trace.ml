(* Execution tracing through the probe machinery: a bounded ring of
   block/call/return (and optionally memory) events, symbolized at print
   time.  The emulator-side introspection a firmware analyst drives the
   machine with (`embsan trace ...`). *)

type event =
  | Block of { bt_hart : int; bt_pc : int }
  | Call of { ct_hart : int; ct_pc : int; ct_target : int; ct_args : int array }
  | Return of { rt_hart : int; rt_pc : int; rt_retval : int }
  | Mem of Probe.mem_event

type t = {
  ring : event array;
  mutable next : int;
  mutable total : int;
  machine : Machine.t;
}

let push t ev =
  t.ring.(t.next) <- ev;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

(** Attach a tracer; [mem] additionally records every memory access (very
    verbose - the ring keeps only the newest [capacity] events). *)
let attach ?(capacity = 256) ?(mem = false) ?(blocks = true) (m : Machine.t) =
  let t =
    {
      ring = Array.make (max 1 capacity) (Block { bt_hart = 0; bt_pc = 0 });
      next = 0;
      total = 0;
      machine = m;
    }
  in
  if blocks then
    Probe.on_block m.probes (fun (ev : Probe.block_event) ->
        push t (Block { bt_hart = ev.b_hart; bt_pc = ev.b_pc }));
  Probe.on_call m.probes (fun (ev : Probe.call_event) ->
      let cpu = m.harts.(ev.c_hart) in
      let args =
        Array.map (fun r -> Cpu.get cpu r) Embsan_isa.Reg.args
      in
      push t
        (Call
           { ct_hart = ev.c_hart; ct_pc = ev.c_pc; ct_target = ev.c_target;
             ct_args = args }));
  Probe.on_ret m.probes (fun (ev : Probe.ret_event) ->
      push t (Return { rt_hart = ev.r_hart; rt_pc = ev.r_pc; rt_retval = ev.r_retval }));
  if mem then Probe.on_mem m.probes (fun ev -> push t (Mem ev));
  t

(** Events currently in the ring, oldest first. *)
let events t =
  let n = Array.length t.ring in
  let count = min t.total n in
  List.init count (fun i -> t.ring.((t.next - count + i + (2 * n)) mod n))

(** Total events observed (including those evicted from the ring). *)
let total t = t.total

let pp_event ?(symbolize = fun _ -> None) fmt = function
  | Block { bt_hart; bt_pc } ->
      Fmt.pf fmt "hart%d  block  %s%s" bt_hart (Word32_hex.hex bt_pc)
        (match symbolize bt_pc with Some s -> "  <" ^ s ^ ">" | None -> "")
  | Call { ct_hart; ct_target; ct_args; _ } ->
      Fmt.pf fmt "hart%d  call   %s%s(%s)" ct_hart (Word32_hex.hex ct_target)
        (match symbolize ct_target with Some s -> "  " ^ s | None -> "")
        (String.concat ", "
           (Array.to_list (Array.map (Printf.sprintf "0x%x") ct_args)))
  | Return { rt_hart; rt_retval; _ } ->
      Fmt.pf fmt "hart%d  ret    -> 0x%x" rt_hart rt_retval
  | Mem ev ->
      Fmt.pf fmt "hart%d  %s%d  %s%s" ev.hart
        (if ev.is_write then "st" else "ld")
        ev.size (Word32_hex.hex ev.addr)
        (if ev.is_write then Printf.sprintf " <- 0x%x" ev.value else "")

let pp ?symbolize fmt t =
  Fmt.pf fmt "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (pp_event ?symbolize))
    (events t)
