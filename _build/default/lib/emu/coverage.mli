(** Basic-block coverage collection with the two paths the paper's fuzzers
    use: OS-agnostic translated-block probes (Tardis) and guest-assisted
    kcov hypercalls (Syzkaller). *)

type t = {
  bitmap : Bytes.t;  (** 64 KiB AFL-style edge bitmap *)
  mutable last_loc : int array;
  mutable blocks_seen : int;
}

val bitmap_size : int
val create : harts:int -> t
val record : t -> hart:int -> pc:int -> unit

(** Subscribe to translated-block events (works on any firmware). *)
val attach_tcg : t -> Machine.t -> unit

(** Hypercall number reserved for guest kcov reporting. *)
val kcov_trap : int

(** Install the kcov hypercall handler (requires a kcov-built guest). *)
val attach_kcov : t -> Machine.t -> unit

val reset_edges : t -> unit

(** Non-zero edges bucketed into AFL-style hit-count classes. *)
val signature : t -> (int * int) list

val edge_count : t -> int
