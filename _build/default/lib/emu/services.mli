(** Baseline platform hypercall services every firmware can rely on:
    secondary hart startup, hart identification, explicit exit, character
    output, and a default (dropping) kcov handler. *)

val install : Machine.t -> unit
