(* Exceptions shared between the bus, devices, translator and run loop. *)

type access = {
  hart : int;
  pc : int;
  addr : int;
  size : int;
  is_write : bool;
}

let pp_access fmt a =
  Fmt.pf fmt "hart%d pc=%s %s addr=%s size=%d" a.hart (Word32_hex.hex a.pc)
    (if a.is_write then "write" else "read")
    (Word32_hex.hex a.addr) a.size

(** Architectural memory fault (unmapped address, MMIO misuse, ...). *)
exception Memory_fault of access * string

(** Raised by the HALT instruction and the power device. *)
exception Halted of int

(** A probe callback requests that the current instruction be abandoned and
    retried at [pc] once the hart's stall window expires (KCSAN). *)
exception Retry_at of int
