(** Per-hart architectural state. *)

type status = Parked | Running | Halted

type t = {
  id : int;
  regs : int array;
  mutable pc : int;
  mutable status : status;
  mutable stall_until : int;
      (** global instruction count below which this hart is stalled *)
  mutable insns : int;  (** instructions retired on this hart *)
}

val create : int -> t

(** Read a register (r0 reads as zero). *)
val get : t -> Embsan_isa.Reg.t -> int

(** Write a register (writes to r0 are ignored; values wrap to 32 bits). *)
val set : t -> Embsan_isa.Reg.t -> int -> unit

(** Zero the registers and start running at [pc] with stack [sp]. *)
val reset : t -> pc:int -> sp:int -> unit

val pp : Format.formatter -> t -> unit
