(* Per-hart architectural state. *)

open Embsan_isa

type status = Parked | Running | Halted

type t = {
  id : int;
  regs : int array; (* 16 registers; r0 reads as zero *)
  mutable pc : int;
  mutable status : status;
  mutable stall_until : int; (* global instruction count; 0 = not stalled *)
  mutable insns : int; (* instructions retired on this hart *)
}

let create id = { id; regs = Array.make Reg.count 0; pc = 0; status = Parked; stall_until = 0; insns = 0 }

let get cpu r = if Reg.equal r Reg.zero then 0 else cpu.regs.(Reg.to_int r)

let set cpu r v =
  let i = Reg.to_int r in
  if i <> 0 then cpu.regs.(i) <- Word32.wrap v

let reset cpu ~pc ~sp =
  Array.fill cpu.regs 0 (Array.length cpu.regs) 0;
  cpu.pc <- pc;
  set cpu Reg.sp sp;
  cpu.status <- Running;
  cpu.stall_until <- 0

let pp fmt cpu =
  Fmt.pf fmt "@[<v>hart%d pc=%s status=%s@,%a@]" cpu.id (Word32_hex.hex cpu.pc)
    (match cpu.status with
    | Parked -> "parked"
    | Running -> "running"
    | Halted -> "halted")
    (Fmt.iter_bindings
       (fun f () ->
         Array.iteri (fun i v -> f (Reg.name (Reg.of_int i)) v) cpu.regs)
       (fun fmt (n, v) -> Fmt.pf fmt "%s=%s " n (Word32_hex.hex v)))
    ()
