(* Guest-side runtime sources linked by the driver according to the
   instrumentation mode.

   - The *glue* unit provides the [san_alloc]/[san_free]/[san_poison]/
     [san_unpoison] hook functions that guest kernels call around their
     allocators, plus platform constants.  Its body depends on the mode:
     empty for plain firmware, trap callouts for EmbSan-C, calls into the
     in-guest runtime for the native sanitizer baselines.
   - The *KASAN runtime* is the native in-guest shadow-memory
     implementation (the paper's reference baseline).
   - The *KCSAN runtime* is the native in-guest watchpoint-based data race
     detector baseline. *)

module Hypercall = Embsan_emu.Hypercall
module Asm = Embsan_isa.Asm

(* KASAN shadow byte encoding (subset of the kernel's):
   0x00 addressable, 0x01..0x07 partially addressable,
   0xF1 heap redzone / unallocated heap, 0xF3 stack redzone,
   0xF9 global redzone, 0xFB freed. *)
let shadow_heap = 0xF1
let shadow_stack = 0xF3
let shadow_global = 0xF9
let shadow_freed = 0xFB

let platform_constants ~stack_top =
  Printf.sprintf "var __stack_top = 0x%x;\n" stack_top

let glue_plain ~stack_top =
  platform_constants ~stack_top
  ^ {|
// Plain firmware: the hooks exist as call sites (like any kernel's
// kasan_* stubs when KASAN is compiled out) but do nothing.  Under
// EmbSan-D the host intercepts the allocator functions themselves.
nosan fun san_alloc(p, size) { return 0; }
nosan fun san_free(p, size) { return 0; }
nosan fun san_poison(p, size) { return 0; }
nosan fun san_unpoison(p, size) { return 0; }
|}

let glue_trap ~stack_top =
  platform_constants ~stack_top
  ^ Printf.sprintf
      {|
// EmbSan-C: every hook is a single trapping instruction into the dummy
// sanitizer library (S3.2, firmware category 1).
nosan fun san_alloc(p, size) { return trap2(%d, p, size); }
nosan fun san_free(p, size) { return trap2(%d, p, size); }
nosan fun san_poison(p, size) { return trap2(%d, p, size); }
nosan fun san_unpoison(p, size) { return trap2(%d, p, size); }
|}
      Hypercall.san_alloc Hypercall.san_free Hypercall.san_poison_region
      Hypercall.san_stack_unpoison

let glue_inline_kasan ~stack_top =
  platform_constants ~stack_top
  ^ {|
nosan fun san_alloc(p, size) { return __kasan_alloc(p, size); }
nosan fun san_free(p, size) { return __kasan_free(p, size); }
nosan fun san_poison(p, size) { return __kasan_poison_heap(p, size); }
nosan fun san_unpoison(p, size) { return __kasan_unpoison(p, size); }
|}

let glue_inline_kcsan ~stack_top =
  platform_constants ~stack_top
  ^ {|
nosan fun san_alloc(p, size) { return 0; }
nosan fun san_free(p, size) { return 0; }
nosan fun san_poison(p, size) { return 0; }
nosan fun san_unpoison(p, size) { return 0; }
|}

(* --- Native KASAN runtime -------------------------------------------------- *)

let kasan_runtime ~shadow_offset =
  Printf.sprintf
    {|
// In-guest KASAN runtime (native baseline).  Compiled without
// instrumentation, like the kernel's mm/kasan/.  Shadow byte for address a
// lives at (a >> 3) + %d.

nosan fun __kasan_shadow(a) { return (a >> 3) + 0x%x; }

nosan fun __kasan_poison_val(a, size, v) {
  // clamp to the shadowed range: corrupted allocator metadata must not
  // walk the poisoner off the end of the shadow region
  if (a >= __stack_top) { return 0; }
  if (a + size > __stack_top) { size = __stack_top - a; }
  var sh = __kasan_shadow(a);
  var n = (size + 7) >> 3;
  var i = 0;
  while (i < n) { store8(sh + i, v); i = i + 1; }
  return 0;
}

nosan fun __kasan_poison(a, size) {
  return __kasan_poison_val(a, size, 0x%x);   // stack redzone
}

nosan fun __kasan_poison_heap(a, size) {
  return __kasan_poison_val(a, size, 0x%x);   // heap redzone / unallocated
}

nosan fun __kasan_unpoison(a, size) {
  var sh = __kasan_shadow(a);
  var n = size >> 3;
  var i = 0;
  while (i < n) { store8(sh + i, 0); i = i + 1; }
  if (size & 7) { store8(sh + n, size & 7); }
  return 0;
}

nosan fun __kasan_alloc(p, size) {
  return __kasan_unpoison(p, size);
}

nosan fun __kasan_free(p, size) {
  if (load8(__kasan_shadow(p)) == 0xFB) {
    trap2(%d, p, 0x200);                      // double-free
    return 0;
  }
  return __kasan_poison_val(p, size, 0x%x);   // freed
}

nosan fun __kasan_register_global(a, size) {
  __kasan_poison_val(a - 16, 16, 0x%x);       // left redzone
  var end = a + size;
  var rz_start = (end + 7) & ~7;
  __kasan_poison_val(rz_start, 16 + rz_start - end, 0x%x);
  // partial granule at the object tail
  if (size & 7) { store8(__kasan_shadow(a) + (size >> 3), size & 7); }
  return 0;
}

// Slow path invoked (through the register-preserving stub) when the inline
// fast path sees a non-zero shadow byte.  szrw = size | is_write << 8.
nosan fun __kasan_check_slow(a, szrw, pc) {
  var size = szrw & 0xFF;
  var last = a + size - 1;
  var sh = load8(__kasan_shadow(last));
  if (sh == 0) { return 0; }
  if (sh < 8) {
    if ((last & 7) < sh) { return 0; }
  }
  trap3(%d, a, szrw, pc);
  return 0;
}
|}
    shadow_offset shadow_offset shadow_stack shadow_heap Hypercall.kasan_report
    shadow_freed shadow_global shadow_global Hypercall.kasan_report

(* --- Native KCSAN runtime ---------------------------------------------------- *)

let kcsan_runtime ~interval ~delay =
  Printf.sprintf
    {|
// In-guest KCSAN runtime (native baseline): a single soft watchpoint slot,
// counter-based sampling with jittered re-arm, and a delay window during
// which concurrent conflicting accesses from other harts are detected.
// The common case never reaches this file: the compiler inlines the
// watchpoint granule compare and the countdown; this slow path runs on a
// watchpoint hit or when the counter expires.

var __kcsan_skip = %d;
var __kcsan_rng = 0x2545F491;
var __kcsan_watch_addr = 0;
var __kcsan_watch_info = 0;
var __kcsan_consumed = 0;

nosan fun __kcsan_check(a, szrw, pc) {
  // conflict check against the active watchpoint
  var w = __kcsan_watch_addr;
  if (w != 0) {
    if ((w >> 3) == (a >> 3)) {
      if (((szrw | __kcsan_watch_info) & 0x100) != 0) {
        __kcsan_consumed = 1;
      }
      return 0;
    }
  }
  // counter expired: jittered re-arm (fixed strides alias with loop periods)
  var x = __kcsan_rng;
  x = x ^ (x << 13);
  x = x ^ (x >> 17);
  x = x ^ (x << 5);
  __kcsan_rng = x;
  __kcsan_skip = 1 + (%d / 2) + ((x >> 4) %% %d);
  // device memory is volatile; never watch it (ioremap ranges are skipped)
  if ((a >> 28) == 0xF) { return 0; }
  if (__kcsan_watch_addr != 0) { return 0; }
  // arm the watchpoint and stall this hart for the delay window
  __kcsan_watch_addr = a;
  __kcsan_watch_info = szrw;
  __kcsan_consumed = 0;
  var before = load32(a & ~3);
  var i = 0;
  while (i < %d) { i = i + 1; }
  var after = load32(a & ~3);
  var hit = __kcsan_consumed;
  __kcsan_watch_addr = 0;
  if (hit != 0) { trap3(%d, a, szrw, pc); return 0; }
  if (before != after) { trap3(%d, a, szrw, pc); }
  return 0;
}
|}
    interval interval interval delay Hypercall.kcsan_report
    Hypercall.kcsan_report

(* --- Register-preserving assembly stubs ---------------------------------------- *)

let save_restore_stub ~stub ~target =
  let open Embsan_isa in
  let open Asm in
  [
    Label stub;
    Ins (Insn.Alui (Add, Reg.sp, Reg.sp, -32));
    store W32 Reg.sp Reg.ra 28;
    store W32 Reg.sp Reg.t0 24;
    store W32 Reg.sp Reg.t1 20;
    store W32 Reg.sp Reg.t2 16;
    store W32 Reg.sp Reg.t3 12;
    store W32 Reg.sp Reg.t4 8;
    call target;
    load W32 Reg.ra Reg.sp 28;
    load W32 Reg.t0 Reg.sp 24;
    load W32 Reg.t1 Reg.sp 20;
    load W32 Reg.t2 Reg.sp 16;
    load W32 Reg.t3 Reg.sp 12;
    load W32 Reg.t4 Reg.sp 8;
    Ins (Insn.Alui (Add, Reg.sp, Reg.sp, 32));
    ret;
  ]

let stubs_unit mode : Asm.unit_ option =
  match (mode : Codegen.mode) with
  | Inline_kasan ->
      Some
        {
          Asm.unit_name = "kasan_stubs";
          text = save_restore_stub ~stub:"__kasan_stub" ~target:"__kasan_check_slow";
          data = [];
        }
  | Inline_kcsan ->
      Some
        {
          Asm.unit_name = "kcsan_stubs";
          text = save_restore_stub ~stub:"__kcsan_stub" ~target:"__kcsan_check";
          data = [];
        }
  | Plain | Trap_callout -> None
