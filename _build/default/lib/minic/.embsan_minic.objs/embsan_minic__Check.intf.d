lib/minic/check.mli: Ast Hashtbl
