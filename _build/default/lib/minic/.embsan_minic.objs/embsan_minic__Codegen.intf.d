lib/minic/codegen.mli: Ast Check Embsan_isa
