lib/minic/runtime_src.ml: Codegen Embsan_emu Embsan_isa Insn Printf Reg
