lib/minic/driver.mli: Ast Check Codegen Embsan_isa
