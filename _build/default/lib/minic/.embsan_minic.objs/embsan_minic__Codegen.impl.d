lib/minic/codegen.ml: Array Asm Ast Check Embsan_emu Embsan_isa Format Hashtbl Insn List Printf Reg String Word32
