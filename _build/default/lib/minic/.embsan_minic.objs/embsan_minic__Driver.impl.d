lib/minic/driver.ml: Arch Asm Check Codegen Embsan_isa List Parser Runtime_src
