(** Recursive-descent parser for MiniC. *)

exception Parse_error of string

(** Parse a full compilation unit from source text; [name] is used in
    error locations.  Raises {!Parse_error} or {!Lexer.Lex_error}. *)
val parse_unit : name:string -> string -> Ast.comp_unit
