(* Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW of string (* var arr barr fun nosan if else while return break continue *)
  | PUNCT of string
  | EOF

type t = { src : string; file : string; mutable pos : int; mutable line : int }

exception Lex_error of string

let errf t fmt =
  Format.kasprintf
    (fun s -> raise (Lex_error (Printf.sprintf "%s:%d: %s" t.file t.line s)))
    fmt

let create ~file src = { src; file; pos = 0; line = 1 }

let keywords =
  [ "var"; "arr"; "barr"; "fun"; "nosan"; "if"; "else"; "while"; "return";
    "break"; "continue" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let peek t = if t.pos < String.length t.src then Some t.src.[t.pos] else None
let peek2 t = if t.pos + 1 < String.length t.src then Some t.src.[t.pos + 1] else None

let advance t =
  (match peek t with Some '\n' -> t.line <- t.line + 1 | _ -> ());
  t.pos <- t.pos + 1

let rec skip_ws t =
  match peek t with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance t;
      skip_ws t
  | Some '/' when peek2 t = Some '/' ->
      let rec to_eol () =
        match peek t with
        | Some '\n' | None -> ()
        | Some _ ->
            advance t;
            to_eol ()
      in
      to_eol ();
      skip_ws t
  | Some '/' when peek2 t = Some '*' ->
      advance t;
      advance t;
      let rec to_close () =
        match (peek t, peek2 t) with
        | Some '*', Some '/' ->
            advance t;
            advance t
        | None, _ -> errf t "unterminated comment"
        | Some _, _ ->
            advance t;
            to_close ()
      in
      to_close ();
      skip_ws t
  | Some _ | None -> ()

let escape t = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> errf t "bad escape \\%c" c

let next t : token * int =
  skip_ws t;
  let line = t.line in
  match peek t with
  | None -> (EOF, line)
  | Some c when is_ident_start c ->
      let start = t.pos in
      while (match peek t with Some c -> is_ident_char c | None -> false) do
        advance t
      done;
      let s = String.sub t.src start (t.pos - start) in
      ((if List.mem s keywords then KW s else IDENT s), line)
  | Some '0' when peek2 t = Some 'x' || peek2 t = Some 'X' ->
      advance t;
      advance t;
      let start = t.pos in
      while (match peek t with Some c -> is_hex c | None -> false) do
        advance t
      done;
      if t.pos = start then errf t "empty hex literal";
      (INT (int_of_string ("0x" ^ String.sub t.src start (t.pos - start))), line)
  | Some c when is_digit c ->
      let start = t.pos in
      while (match peek t with Some c -> is_digit c | None -> false) do
        advance t
      done;
      (INT (int_of_string (String.sub t.src start (t.pos - start))), line)
  | Some '\'' ->
      advance t;
      let c =
        match peek t with
        | Some '\\' ->
            advance t;
            let e = match peek t with Some e -> e | None -> errf t "bad char" in
            advance t;
            escape t e
        | Some c ->
            advance t;
            c
        | None -> errf t "unterminated char"
      in
      (match peek t with
      | Some '\'' -> advance t
      | _ -> errf t "unterminated char literal");
      (INT (Char.code c), line)
  | Some '"' ->
      advance t;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek t with
        | Some '"' -> advance t
        | Some '\\' ->
            advance t;
            (match peek t with
            | Some e ->
                advance t;
                Buffer.add_char buf (escape t e)
            | None -> errf t "unterminated string");
            go ()
        | Some c ->
            advance t;
            Buffer.add_char buf c;
            go ()
        | None -> errf t "unterminated string"
      in
      go ();
      (STRING (Buffer.contents buf), line)
  | Some c ->
      let two s =
        advance t;
        advance t;
        (PUNCT s, line)
      in
      let one s =
        advance t;
        (PUNCT s, line)
      in
      (match (c, peek2 t) with
      | '<', Some '<' -> two "<<"
      | '>', Some '>' -> two ">>"
      | '<', Some '=' -> two "<="
      | '>', Some '=' -> two ">="
      | '=', Some '=' -> two "=="
      | '!', Some '=' -> two "!="
      | '&', Some '&' -> two "&&"
      | '|', Some '|' -> two "||"
      | ( ( '+' | '-' | '*' | '/' | '%' | '(' | ')' | '{' | '}' | '[' | ']'
          | ';' | ',' | '=' | '<' | '>' | '!' | '&' | '|' | '^' | '~' ),
          _ ) ->
          one (String.make 1 c)
      | _ -> errf t "unexpected character %C" c)

(** Tokenize the whole source, returning tokens paired with line numbers. *)
let tokenize ~file src =
  let t = create ~file src in
  let rec go acc =
    match next t with
    | (EOF, _) as tok -> List.rev (tok :: acc)
    | tok -> go (tok :: acc)
  in
  go []
