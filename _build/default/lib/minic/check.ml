(* Semantic checks and program-level symbol environment for MiniC.

   A program is a set of compilation units linked together; global and
   function names share one namespace and must be unique program-wide. *)

exception Semantic_error of string

let errf fmt = Format.kasprintf (fun s -> raise (Semantic_error s)) fmt

type gobj =
  | Var of { init : int }
  | Array of { elem : Ast.elem_size; count : int; init : Ast.ginit }
  | Func of { arity : int; no_sanitize : bool }

type env = { objects : (string, gobj) Hashtbl.t }

let max_args = 4

let build_env (units : Ast.comp_unit list) =
  let objects = Hashtbl.create 64 in
  let add name obj =
    if Hashtbl.mem objects name then errf "duplicate global name %s" name;
    if Ast.is_builtin name then errf "%s shadows a builtin" name;
    Hashtbl.add objects name obj
  in
  List.iter
    (fun (u : Ast.comp_unit) ->
      List.iter
        (fun g ->
          match g with
          | Ast.Gvar (name, init) -> add name (Var { init })
          | Ast.Garray (name, elem, count, init) ->
              if count <= 0 then errf "array %s has non-positive size" name;
              (match init with
              | Ast.Str_init s when String.length s + 1 > count ->
                  errf "initializer for %s longer than array" name
              | Ast.Word_init ws when List.length ws > count ->
                  errf "initializer for %s longer than array" name
              | Ast.Zero | Ast.Str_init _ | Ast.Word_init _ -> ());
              add name (Array { elem; count; init }))
        u.globals;
      List.iter
        (fun (f : Ast.func) ->
          if List.length f.params > max_args then
            errf "%s: more than %d parameters" f.fname max_args;
          let seen = Hashtbl.create 8 in
          List.iter
            (fun p ->
              if Hashtbl.mem seen p then errf "%s: duplicate parameter %s" f.fname p;
              Hashtbl.add seen p ())
            f.params;
          add f.fname
            (Func { arity = List.length f.params; no_sanitize = f.no_sanitize }))
        u.funcs)
    units;
  { objects }

let lookup env name = Hashtbl.find_opt env.objects name

(* Local scope within a function: name -> is_array (with elem size). *)
type local = Lvar | Larray of Ast.elem_size * int

let collect_locals (f : Ast.func) =
  let locals = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.add locals p Lvar) f.params;
  let declare name l =
    if Hashtbl.mem locals name then
      errf "%s: duplicate local %s" f.fname name;
    Hashtbl.add locals name l
  in
  let rec scan_stmt (s : Ast.stmt) =
    match s with
    | Local (name, _) -> declare name Lvar
    | Local_array (name, elem, n) ->
        if n <= 0 then errf "%s: array %s has non-positive size" f.fname name;
        declare name (Larray (elem, n))
    | If (_, a, b) ->
        List.iter scan_stmt a;
        List.iter scan_stmt b
    | While (_, body) -> List.iter scan_stmt body
    | Expr _ | Assign _ | Assign_index _ | Return _ | Break | Continue -> ()
  in
  List.iter scan_stmt f.body;
  locals

let check_func env (f : Ast.func) =
  let locals = collect_locals f in
  let rec check_expr (e : Ast.expr) =
    match e with
    | Int _ -> ()
    | Ident name -> (
        match (Hashtbl.find_opt locals name, lookup env name) with
        | Some Lvar, _ -> ()
        | Some (Larray _), _ ->
            errf "%s: array %s used as a scalar (use &%s)" f.fname name name
        | None, Some (Var _) -> ()
        | None, Some (Array _) ->
            errf "%s: array %s used as a scalar (use &%s)" f.fname name name
        | None, Some (Func _) ->
            errf "%s: function %s used as a value (use &%s)" f.fname name name
        | None, None -> errf "%s: undefined identifier %s" f.fname name)
    | Index (name, idx) ->
        (match (Hashtbl.find_opt locals name, lookup env name) with
        | Some (Larray _), _ | None, Some (Array _) -> ()
        | Some Lvar, _ | None, Some (Var _ | Func _) ->
            errf "%s: %s is not an array" f.fname name
        | None, None -> errf "%s: undefined array %s" f.fname name);
        check_expr idx
    | Addr name -> (
        match (Hashtbl.find_opt locals name, lookup env name) with
        | Some _, _ | None, Some _ -> ()
        | None, None -> errf "%s: undefined identifier &%s" f.fname name)
    | Addr_index (name, idx) ->
        (match (Hashtbl.find_opt locals name, lookup env name) with
        | Some (Larray _), _ | None, Some (Array _) -> ()
        | _ -> errf "%s: &%s[...] requires an array" f.fname name);
        check_expr idx
    | Unop (_, e) -> check_expr e
    | Binop (_, a, b) ->
        check_expr a;
        check_expr b
    | Call (name, args) ->
        List.iter check_expr args;
        let n = List.length args in
        (match List.assoc_opt name Ast.builtins with
        | Some arity ->
            if n <> arity then
              errf "%s: builtin %s expects %d argument(s), got %d" f.fname name
                arity n;
            if String.length name > 4 && String.sub name 0 4 = "trap" then (
              match args with
              | Ast.Int _ :: _ -> ()
              | _ -> errf "%s: %s requires a constant trap number" f.fname name)
        | None -> (
            match lookup env name with
            | Some (Func { arity; _ }) ->
                if n <> arity then
                  errf "%s: %s expects %d argument(s), got %d" f.fname name
                    arity n
            | Some (Var _ | Array _) -> errf "%s: %s is not a function" f.fname name
            | None -> errf "%s: undefined function %s" f.fname name))
  in
  let rec check_stmt ~in_loop (s : Ast.stmt) =
    match s with
    | Expr e -> check_expr e
    | Assign (name, e) ->
        (match (Hashtbl.find_opt locals name, lookup env name) with
        | Some Lvar, _ | None, Some (Var _) -> ()
        | Some (Larray _), _ | None, Some (Array _) ->
            errf "%s: cannot assign to array %s" f.fname name
        | None, Some (Func _) -> errf "%s: cannot assign to function %s" f.fname name
        | None, None -> errf "%s: undefined identifier %s" f.fname name);
        check_expr e
    | Assign_index (name, idx, e) ->
        check_expr (Index (name, idx));
        check_expr e
    | If (c, a, b) ->
        check_expr c;
        List.iter (check_stmt ~in_loop) a;
        List.iter (check_stmt ~in_loop) b
    | While (c, body) ->
        check_expr c;
        List.iter (check_stmt ~in_loop:true) body
    | Return (Some e) -> check_expr e
    | Return None -> ()
    | Break | Continue ->
        if not in_loop then errf "%s: break/continue outside loop" f.fname
    | Local (_, Some e) -> check_expr e
    | Local (_, None) | Local_array _ -> ()
  in
  List.iter (check_stmt ~in_loop:false) f.body

(** Validate a whole program; returns the symbol environment used by
    code generation. *)
let check_program (units : Ast.comp_unit list) =
  let env = build_env units in
  List.iter (fun (u : Ast.comp_unit) -> List.iter (check_func env) u.funcs) units;
  env
