(* MiniC code generator targeting the EVA-32 assembler eDSL.

   Expression evaluation uses a virtual value stack of locations
   (constants, temp registers t0..t4, machine-stack spill slots).  Spills
   always evict the deepest register-held entry, which keeps the spill area
   a LIFO; all spills are materialized back by the time a statement ends.

   Sanitizer instrumentation modes:
   - [Plain]: no instrumentation (EmbSan-D target firmware);
   - [Trap_callout]: every source-level memory access is preceded by a
     single trapping instruction, the "dummy sanitizer library" of the
     paper's EmbSan-C flow; global and stack arrays get redzones whose
     poisoning is likewise requested through trap callouts;
   - [Inline_kasan]: the native KASAN baseline; accesses get an inline
     shadow-byte fast path and call an assembly stub on the slow path,
     redzones are poisoned by the in-guest runtime;
   - [Inline_kcsan]: the native KCSAN baseline; every access calls the
     in-guest KCSAN runtime through a register-preserving stub.

   Instrumented accesses: array indexing, raw load/store builtins, atomics
   and global scalar accesses.  Compiler-managed frame traffic (parameter
   homes, spills, locals) is not instrumented, like real compilers. *)

open Embsan_isa
module Hypercall = Embsan_emu.Hypercall

type mode = Plain | Trap_callout | Inline_kasan | Inline_kcsan

type options = {
  mode : mode;
  redzone : int; (* bytes on each side of protected arrays *)
  shadow_offset : int; (* inline KASAN: shadow byte at (addr >> 3) + offset *)
  kcov : bool; (* kcov-style coverage traps at entries and branch targets *)
}

let default_options = { mode = Plain; redzone = 16; shadow_offset = 0; kcov = false }

let has_redzones = function
  | Trap_callout | Inline_kasan -> true
  | Plain | Inline_kcsan -> false

exception Codegen_error of string

let errf fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

(* --- Per-function context --------------------------------------------------- *)

type slot = Svar of int (* s0-relative offset *) | Sarray of array_slot

and array_slot = {
  a_elem : Ast.elem_size;
  a_count : int;
  a_data_off : int; (* s0-relative offset of element 0 *)
  a_region_off : int; (* s0-relative offset of the padded region *)
  a_region_size : int;
}

type ctx = {
  env : Check.env;
  opts : options;
  fn : Ast.func;
  slots : (string, slot) Hashtbl.t;
  frame_size : int;
  counter : int ref; (* program-wide label counter *)
  mutable out : Asm.item list; (* reversed *)
  mutable vstack : loc list; (* head = top *)
  mutable free : Reg.t list;
  mutable loops : (string * string) list; (* (continue, break) labels *)
  exit_label : string;
}

and loc = Lconst of int | Lreg of Reg.t | Lspill

let sanitize ctx = ctx.opts.mode <> Plain && not ctx.fn.no_sanitize

let fresh_label ctx tag =
  incr ctx.counter;
  Printf.sprintf ".L%d_%s" !(ctx.counter) tag

let emit ctx item = ctx.out <- item :: ctx.out
let emit_i ctx insn = emit ctx (Asm.Ins insn)

(* --- Value-stack machinery ---------------------------------------------------- *)

let temp_pool = [ Reg.t0; Reg.t1; Reg.t2; Reg.t3; Reg.t4 ]

let release ctx r = if List.mem r temp_pool then ctx.free <- r :: ctx.free

(* Spill the deepest register-held entry to the machine stack. *)
let spill_deepest ctx =
  let rec find_idx i best = function
    | [] -> best
    | Lreg _ :: rest -> find_idx (i + 1) (Some i) rest
    | (Lconst _ | Lspill) :: rest -> find_idx (i + 1) best rest
  in
  match find_idx 0 None ctx.vstack with
  | None -> errf "%s: expression too complex (no spillable value)" ctx.fn.fname
  | Some idx ->
      let r =
        match List.nth ctx.vstack idx with Lreg r -> r | _ -> assert false
      in
      emit_i ctx (Alui (Add, Reg.sp, Reg.sp, -4));
      emit_i ctx (Store (W32, Reg.sp, r, 0));
      ctx.vstack <- List.mapi (fun i l -> if i = idx then Lspill else l) ctx.vstack;
      release ctx r

let rec alloc_reg ctx =
  match ctx.free with
  | r :: rest ->
      ctx.free <- rest;
      r
  | [] ->
      spill_deepest ctx;
      alloc_reg ctx

let push_const ctx c = ctx.vstack <- Lconst (Word32.wrap c) :: ctx.vstack
let push_reg ctx r = ctx.vstack <- Lreg r :: ctx.vstack

let pop_loc ctx =
  match ctx.vstack with
  | l :: rest ->
      ctx.vstack <- rest;
      l
  | [] -> errf "%s: internal: value stack underflow" ctx.fn.fname

(* Pop the top value into some temp register (caller must [release] it). *)
let pop_any ctx =
  match pop_loc ctx with
  | Lreg r -> r
  | Lconst c ->
      let r = alloc_reg ctx in
      emit_i ctx (Li (r, c));
      r
  | Lspill ->
      let r = alloc_reg ctx in
      emit_i ctx (Load (W32, false, r, Reg.sp, 0));
      emit_i ctx (Alui (Add, Reg.sp, Reg.sp, 4));
      r

(* Pop the top value into a *specific* register (a0..a3 for marshaling). *)
let pop_into ctx target =
  match pop_loc ctx with
  | Lconst c -> emit_i ctx (Li (target, c))
  | Lreg r ->
      if not (Reg.equal r target) then emit_i ctx (Alui (Add, target, r, 0));
      release ctx r
  | Lspill ->
      emit_i ctx (Load (W32, false, target, Reg.sp, 0));
      emit_i ctx (Alui (Add, Reg.sp, Reg.sp, 4))

(* Discard the top value. *)
let discard ctx =
  match pop_loc ctx with
  | Lconst _ -> ()
  | Lreg r -> release ctx r
  | Lspill -> emit_i ctx (Alui (Add, Reg.sp, Reg.sp, 4))

(* Spill every register-held entry (before calls and across branches). *)
let spill_all ctx =
  let rec has_reg = function
    | [] -> false
    | Lreg _ :: _ -> true
    | _ :: rest -> has_reg rest
  in
  while has_reg ctx.vstack do
    spill_deepest ctx
  done

(* --- Sanitizer callouts --------------------------------------------------------- *)

let kasan_stub = "__kasan_stub"
let kcsan_stub = "__kcsan_stub"

(* [addr_reg] must be a temp-pool register (never a0..a3). *)
let emit_check ctx ~is_write ~size addr_reg =
  if sanitize ctx then
    match ctx.opts.mode with
    | Plain -> ()
    | Trap_callout ->
        emit_i ctx (Alui (Add, Reg.a0, addr_reg, 0));
        emit_i ctx (Trap (Hypercall.check ~is_write ~size))
    | Inline_kasan ->
        let ok = fresh_label ctx "asan_ok" in
        (* device memory (0xFxxxxxxx) has no shadow; skip like ioremap *)
        emit_i ctx (Alui (Shru, Reg.a0, addr_reg, 28));
        emit_i ctx (Alui (Xor, Reg.a0, Reg.a0, 0xF));
        emit ctx (Asm.beqz Reg.a0 ok);
        emit_i ctx (Alui (Shru, Reg.a0, addr_reg, 3));
        emit_i ctx (Li (Reg.a1, ctx.opts.shadow_offset));
        emit_i ctx (Alu (Add, Reg.a0, Reg.a0, Reg.a1));
        emit_i ctx (Load (W8, false, Reg.a0, Reg.a0, 0));
        emit ctx (Asm.beqz Reg.a0 ok);
        emit_i ctx (Alui (Add, Reg.a0, addr_reg, 0));
        emit_i ctx (Li (Reg.a1, size lor (if is_write then 0x100 else 0)));
        (* jal with offset 8 falls through while capturing the access pc *)
        emit_i ctx (Jal (Reg.a2, 8));
        emit ctx (Asm.call kasan_stub);
        emit ctx (Asm.Label ok)
    | Inline_kcsan ->
        (* inline fast path: active-watchpoint granule compare, then the
           sampling countdown; the runtime is entered only on a watchpoint
           hit or when the (jittered) counter expires *)
        let slow = fresh_label ctx "kcsan_slow" in
        let ok = fresh_label ctx "kcsan_ok" in
        emit_i ctx (Alui (Shru, Reg.a0, addr_reg, 3));
        emit ctx (Asm.la Reg.a1 "__kcsan_watch_addr");
        emit_i ctx (Load (W32, false, Reg.a1, Reg.a1, 0));
        emit_i ctx (Alui (Shru, Reg.a1, Reg.a1, 3));
        emit ctx (Asm.Bcc (Embsan_isa.Insn.Eq, Reg.a0, Reg.a1, slow));
        emit ctx (Asm.la Reg.a0 "__kcsan_skip");
        emit_i ctx (Load (W32, false, Reg.a1, Reg.a0, 0));
        emit_i ctx (Alui (Add, Reg.a1, Reg.a1, -1));
        emit_i ctx (Store (W32, Reg.a0, Reg.a1, 0));
        emit ctx (Asm.bnez Reg.a1 ok);
        emit ctx (Asm.Label slow);
        emit_i ctx (Alui (Add, Reg.a0, addr_reg, 0));
        emit_i ctx (Li (Reg.a1, size lor (if is_write then 0x100 else 0)));
        emit_i ctx (Jal (Reg.a2, 8));
        emit ctx (Asm.call kcsan_stub);
        emit ctx (Asm.Label ok)

(* kcov-style coverage callout: capture the site pc (jal +8 trick) and trap.
   Emitted at statement boundaries only, where a0 is dead. *)
let emit_kcov ctx =
  if ctx.opts.kcov && not ctx.fn.no_sanitize then begin
    emit_i ctx (Jal (Reg.a0, 8));
    emit_i ctx (Trap 9)
  end

(* --- Expression generation -------------------------------------------------------- *)

let rec try_const ctx (e : Ast.expr) =
  match e with
  | Int n -> Some (Word32.wrap n)
  | Unop (op, a) -> (
      match try_const ctx a with
      | None -> None
      | Some a -> (
          match op with
          | Neg -> Some (Word32.wrap (-a))
          | Not -> Some (if a = 0 then 1 else 0)
          | Bnot -> Some (Word32.wrap (lnot a))))
  | Binop ((Land | Lor), _, _) -> None
  | Binop (op, a, b) -> (
      match (try_const ctx a, try_const ctx b) with
      | Some a, Some b -> const_binop op a b
      | _ -> None)
  | Ident _ | Index _ | Addr _ | Addr_index _ | Call _ -> None

and const_binop op a b =
  let bool_ c = Some (if c then 1 else 0) in
  match (op : Ast.binop) with
  | Mul -> Some (Word32.mul a b)
  | Div -> if b = 0 then None else Some (Word32.divu a b)
  | Mod -> if b = 0 then None else Some (Word32.remu a b)
  | Add -> Some (Word32.add a b)
  | Sub -> Some (Word32.sub a b)
  | Shl -> Some (Word32.shl a b)
  | Shr -> Some (Word32.shru a b)
  | Lt -> bool_ (Word32.lt_u a b)
  | Le -> bool_ (not (Word32.lt_u b a))
  | Gt -> bool_ (Word32.lt_u b a)
  | Ge -> bool_ (not (Word32.lt_u a b))
  | Eq -> bool_ (a = b)
  | Ne -> bool_ (a <> b)
  | Band -> Some (a land b)
  | Bxor -> Some (a lxor b)
  | Bor -> Some (a lor b)
  | Land | Lor -> None

(* Compute the absolute address of [name[idx]] into a temp register and
   return it (element size attached).  Pushes nothing. *)
let rec gen_index_addr ctx name idx =
  let elem, base =
    match Hashtbl.find_opt ctx.slots name with
    | Some (Sarray a) -> (a.a_elem, `Local a.a_data_off)
    | Some (Svar _) -> errf "%s: %s is not an array" ctx.fn.fname name
    | None -> (
        match Check.lookup ctx.env name with
        | Some (Check.Array { elem; _ }) -> (elem, `Global)
        | _ -> errf "%s: %s is not an array" ctx.fn.fname name)
  in
  gen_expr ctx idx;
  let ri = pop_any ctx in
  (match elem with
  | Ast.Word -> emit_i ctx (Alui (Shl, ri, ri, 2))
  | Ast.Byte -> ());
  (match base with
  | `Global ->
      let rb = alloc_reg ctx in
      emit ctx (Asm.la rb name);
      emit_i ctx (Alu (Add, ri, ri, rb));
      release ctx rb
  | `Local off ->
      emit_i ctx (Alu (Add, ri, ri, Reg.s0));
      emit_i ctx (Alui (Add, ri, ri, off)));
  (ri, elem)

and gen_expr ctx (e : Ast.expr) =
  match try_const ctx e with
  | Some c -> push_const ctx c
  | None -> gen_expr_nonconst ctx e

and gen_expr_nonconst ctx (e : Ast.expr) =
  match e with
  | Int n -> push_const ctx n
  | Ident name -> (
      match Hashtbl.find_opt ctx.slots name with
      | Some (Svar off) ->
          let r = alloc_reg ctx in
          if sanitize ctx then begin
            (* locals live in memory in this compiler, so ASAN-faithful
               instrumentation covers them like any other memory operand *)
            emit_i ctx (Alui (Add, r, Reg.s0, off));
            emit_check ctx ~is_write:false ~size:4 r;
            emit_i ctx (Load (W32, false, r, r, 0))
          end
          else emit_i ctx (Load (W32, false, r, Reg.s0, off));
          push_reg ctx r
      | Some (Sarray _) -> errf "%s: array %s as scalar" ctx.fn.fname name
      | None ->
          (* global scalar *)
          let r = alloc_reg ctx in
          emit ctx (Asm.la r name);
          emit_check ctx ~is_write:false ~size:4 r;
          emit_i ctx (Load (W32, false, r, r, 0));
          push_reg ctx r)
  | Index (name, idx) ->
      let ra, elem = gen_index_addr ctx name idx in
      let size = Ast.elem_bytes elem in
      emit_check ctx ~is_write:false ~size ra;
      let width : Insn.width = match elem with Ast.Word -> W32 | Ast.Byte -> W8 in
      emit_i ctx (Load (width, false, ra, ra, 0));
      push_reg ctx ra
  | Addr name -> (
      let r = alloc_reg ctx in
      (match Hashtbl.find_opt ctx.slots name with
      | Some (Svar off) -> emit_i ctx (Alui (Add, r, Reg.s0, off))
      | Some (Sarray a) -> emit_i ctx (Alui (Add, r, Reg.s0, a.a_data_off))
      | None -> emit ctx (Asm.la r name));
      push_reg ctx r)
  | Addr_index (name, idx) ->
      let ra, _elem = gen_index_addr ctx name idx in
      push_reg ctx ra
  | Unop (op, a) -> (
      gen_expr ctx a;
      let r = pop_any ctx in
      (match op with
      | Neg -> emit_i ctx (Alu (Sub, r, Reg.zero, r))
      | Not -> emit_i ctx (Alui (Sltu, r, r, 1))
      | Bnot -> emit_i ctx (Alui (Xor, r, r, -1)));
      push_reg ctx r)
  | Binop (Land, a, b) -> gen_short_circuit ctx ~is_and:true a b
  | Binop (Lor, a, b) -> gen_short_circuit ctx ~is_and:false a b
  | Binop (op, a, b) -> gen_binop ctx op a b
  | Call (name, args) when Ast.is_builtin name -> gen_builtin ctx name args
  | Call (name, args) ->
      List.iter (gen_expr ctx) args;
      (* pop args right-to-left into a_{n-1}..a_0 *)
      let n = List.length args in
      for i = n - 1 downto 0 do
        pop_into ctx Reg.args.(i)
      done;
      spill_all ctx;
      emit ctx (Asm.call name);
      let r = alloc_reg ctx in
      emit_i ctx (Alui (Add, r, Reg.a0, 0));
      push_reg ctx r

and gen_short_circuit ctx ~is_and a b =
  gen_expr ctx a;
  let ra = pop_any ctx in
  spill_all ctx;
  let rd = alloc_reg ctx in
  emit_i ctx (Alu (Sne, rd, ra, Reg.zero));
  release ctx ra;
  let skip = fresh_label ctx (if is_and then "and_skip" else "or_skip") in
  if is_and then emit ctx (Asm.beqz rd skip) else emit ctx (Asm.bnez rd skip);
  gen_expr ctx b;
  let rb = pop_any ctx in
  emit_i ctx (Alu (Sne, rd, rb, Reg.zero));
  release ctx rb;
  emit ctx (Asm.Label skip);
  push_reg ctx rd

and gen_binop ctx op a b =
  gen_expr ctx a;
  gen_expr ctx b;
  (* immediate forms for constant right operands *)
  let imm_op : Ast.binop -> Insn.alu_op option = function
    | Add -> Some Add
    | Sub -> Some Sub
    | Mul -> Some Mul
    | Band -> Some And
    | Bor -> Some Or
    | Bxor -> Some Xor
    | Shl -> Some Shl
    | Shr -> Some Shru
    | Lt -> Some Sltu
    | Eq -> Some Seq
    | Ne -> Some Sne
    | Div | Mod | Le | Gt | Ge | Land | Lor -> None
  in
  match (ctx.vstack, imm_op op) with
  | Lconst c :: _, Some alu ->
      ignore (pop_loc ctx);
      let r = pop_any ctx in
      (* Seq/Sne have no immediate form in the ISA; synthesize via xor *)
      (match alu with
      | Seq ->
          emit_i ctx (Alui (Xor, r, r, c));
          emit_i ctx (Alui (Sltu, r, r, 1))
      | Sne ->
          emit_i ctx (Alui (Xor, r, r, c));
          emit_i ctx (Alu (Sltu, r, Reg.zero, r))
      | Add | Sub | Mul | And | Or | Xor | Shl | Shru | Sltu ->
          emit_i ctx (Alui (alu, r, r, c))
      | Divu | Remu | Shrs | Slt -> assert false);
      push_reg ctx r
  | _ ->
      let rb = pop_any ctx in
      let ra = pop_any ctx in
      (match (op : Ast.binop) with
      | Mul -> emit_i ctx (Alu (Mul, ra, ra, rb))
      | Div -> emit_i ctx (Alu (Divu, ra, ra, rb))
      | Mod -> emit_i ctx (Alu (Remu, ra, ra, rb))
      | Add -> emit_i ctx (Alu (Add, ra, ra, rb))
      | Sub -> emit_i ctx (Alu (Sub, ra, ra, rb))
      | Shl -> emit_i ctx (Alu (Shl, ra, ra, rb))
      | Shr -> emit_i ctx (Alu (Shru, ra, ra, rb))
      | Lt -> emit_i ctx (Alu (Sltu, ra, ra, rb))
      | Le ->
          emit_i ctx (Alu (Sltu, ra, rb, ra));
          emit_i ctx (Alui (Xor, ra, ra, 1))
      | Gt -> emit_i ctx (Alu (Sltu, ra, rb, ra))
      | Ge ->
          emit_i ctx (Alu (Sltu, ra, ra, rb));
          emit_i ctx (Alui (Xor, ra, ra, 1))
      | Eq -> emit_i ctx (Alu (Seq, ra, ra, rb))
      | Ne -> emit_i ctx (Alu (Sne, ra, ra, rb))
      | Band -> emit_i ctx (Alu (And, ra, ra, rb))
      | Bxor -> emit_i ctx (Alu (Xor, ra, ra, rb))
      | Bor -> emit_i ctx (Alu (Or, ra, ra, rb))
      | Land | Lor -> assert false);
      release ctx rb;
      push_reg ctx ra

and gen_builtin ctx name args =
  let mem_load width size =
    match args with
    | [ p ] ->
        gen_expr ctx p;
        let r = pop_any ctx in
        emit_check ctx ~is_write:false ~size r;
        emit_i ctx (Load (width, false, r, r, 0));
        push_reg ctx r
    | _ -> assert false
  in
  let mem_store width size =
    match args with
    | [ p; v ] ->
        gen_expr ctx p;
        gen_expr ctx v;
        let rv = pop_any ctx in
        let rp = pop_any ctx in
        emit_check ctx ~is_write:true ~size rp;
        emit_i ctx (Store (width, rp, rv, 0));
        release ctx rv;
        release ctx rp;
        push_const ctx 0
    | _ -> assert false
  in
  match (name, args) with
  | "load8", _ -> mem_load W8 1
  | "load16", _ -> mem_load W16 2
  | "load32", _ -> mem_load W32 4
  | "store8", _ -> mem_store W8 1
  | "store16", _ -> mem_store W16 2
  | "store32", _ -> mem_store W32 4
  | ("trap0" | "trap1" | "trap2" | "trap3"), Ast.Int num :: rest ->
      List.iter (gen_expr ctx) rest;
      let n = List.length rest in
      for i = n - 1 downto 0 do
        pop_into ctx Reg.args.(i)
      done;
      emit_i ctx (Trap num);
      let r = alloc_reg ctx in
      emit_i ctx (Alui (Add, r, Reg.a0, 0));
      push_reg ctx r
  | ("trap0" | "trap1" | "trap2" | "trap3"), _ ->
      errf "%s: trap number must be a literal" ctx.fn.fname
  | "halt", [ c ] ->
      gen_expr ctx c;
      pop_into ctx Reg.a0;
      emit_i ctx Halt;
      push_const ctx 0
  | ("amo_add" | "amo_swap"), [ p; v ] ->
      gen_expr ctx p;
      gen_expr ctx v;
      let rv = pop_any ctx in
      let rp = pop_any ctx in
      (* atomics are marked accesses: KASAN checks them, KCSAN ignores them *)
      if ctx.opts.mode <> Inline_kcsan then emit_check ctx ~is_write:true ~size:4 rp;
      let op : Insn.amo_op = if name = "amo_add" then Amo_add else Amo_swap in
      emit_i ctx (Amo (op, rp, rp, rv));
      release ctx rv;
      push_reg ctx rp
  | "icall3", fp :: args3 ->
      gen_expr ctx fp;
      List.iter (gen_expr ctx) args3;
      let n = List.length args3 in
      for i = n - 1 downto 0 do
        pop_into ctx Reg.args.(i)
      done;
      let rfp = pop_any ctx in
      spill_all ctx;
      emit_i ctx (Jalr (Reg.ra, rfp, 0));
      release ctx rfp;
      let r = alloc_reg ctx in
      emit_i ctx (Alui (Add, r, Reg.a0, 0));
      push_reg ctx r
  | "slt", [ a; b ] | "sgt", [ b; a ] ->
      gen_expr ctx a;
      gen_expr ctx b;
      let rb = pop_any ctx in
      let ra = pop_any ctx in
      emit_i ctx (Alu (Slt, ra, ra, rb));
      release ctx rb;
      push_reg ctx ra
  | _ -> errf "%s: bad builtin use %s" ctx.fn.fname name

(* --- Statements ----------------------------------------------------------------- *)

let rec gen_stmt ctx (s : Ast.stmt) =
  match s with
  | Expr e ->
      gen_expr ctx e;
      discard ctx
  | Assign (name, e) -> (
      match Hashtbl.find_opt ctx.slots name with
      | Some (Svar off) ->
          gen_expr ctx e;
          let r = pop_any ctx in
          if sanitize ctx then begin
            let ra = alloc_reg ctx in
            emit_i ctx (Alui (Add, ra, Reg.s0, off));
            emit_check ctx ~is_write:true ~size:4 ra;
            emit_i ctx (Store (W32, ra, r, 0));
            release ctx ra
          end
          else emit_i ctx (Store (W32, Reg.s0, r, off));
          release ctx r
      | Some (Sarray _) -> errf "%s: assign to array %s" ctx.fn.fname name
      | None ->
          (* global scalar *)
          gen_expr ctx e;
          let rv = pop_any ctx in
          let rb = alloc_reg ctx in
          emit ctx (Asm.la rb name);
          emit_check ctx ~is_write:true ~size:4 rb;
          emit_i ctx (Store (W32, rb, rv, 0));
          release ctx rb;
          release ctx rv)
  | Assign_index (name, idx, e) ->
      let ra, elem = gen_index_addr ctx name idx in
      push_reg ctx ra;
      gen_expr ctx e;
      let rv = pop_any ctx in
      let ra = pop_any ctx in
      let size = Ast.elem_bytes elem in
      emit_check ctx ~is_write:true ~size ra;
      let width : Insn.width = match elem with Ast.Word -> W32 | Ast.Byte -> W8 in
      emit_i ctx (Store (width, ra, rv, 0));
      release ctx rv;
      release ctx ra
  | If (cond, then_, else_) ->
      gen_expr ctx cond;
      let r = pop_any ctx in
      release ctx r;
      let lelse = fresh_label ctx "else" in
      emit ctx (Asm.beqz r lelse);
      emit_kcov ctx;
      List.iter (gen_stmt ctx) then_;
      if else_ = [] then emit ctx (Asm.Label lelse)
      else begin
        let lend = fresh_label ctx "endif" in
        emit ctx (Asm.j lend);
        emit ctx (Asm.Label lelse);
        emit_kcov ctx;
        List.iter (gen_stmt ctx) else_;
        emit ctx (Asm.Label lend)
      end
  | While (cond, body) ->
      let lcond = fresh_label ctx "while" in
      let lend = fresh_label ctx "wend" in
      emit_kcov ctx;
      emit ctx (Asm.Label lcond);
      gen_expr ctx cond;
      let r = pop_any ctx in
      release ctx r;
      emit ctx (Asm.beqz r lend);
      ctx.loops <- (lcond, lend) :: ctx.loops;
      List.iter (gen_stmt ctx) body;
      ctx.loops <- List.tl ctx.loops;
      emit ctx (Asm.j lcond);
      emit ctx (Asm.Label lend)
  | Return (Some e) ->
      gen_expr ctx e;
      pop_into ctx Reg.a0;
      emit ctx (Asm.j ctx.exit_label)
  | Return None ->
      emit_i ctx (Li (Reg.a0, 0));
      emit ctx (Asm.j ctx.exit_label)
  | Break -> (
      match ctx.loops with
      | (_, brk) :: _ -> emit ctx (Asm.j brk)
      | [] -> errf "%s: break outside loop" ctx.fn.fname)
  | Continue -> (
      match ctx.loops with
      | (cont, _) :: _ -> emit ctx (Asm.j cont)
      | [] -> errf "%s: continue outside loop" ctx.fn.fname)
  | Local (name, init) -> (
      match init with
      | None -> ()
      | Some e -> gen_stmt ctx (Assign (name, e)))
  | Local_array _ -> ()

(* --- Frame layout and function assembly ------------------------------------------ *)

let align4 n = (n + 3) land lnot 3
let align8 n = (n + 7) land lnot 7

let layout_frame env opts (f : Ast.func) =
  ignore env;
  let slots = Hashtbl.create 16 in
  let cursor = ref (-8) in
  let alloc_var name =
    cursor := !cursor - 4;
    Hashtbl.replace slots name (Svar !cursor)
  in
  List.iter alloc_var f.params;
  let arrays = ref [] in
  let protected = opts.mode <> Plain && has_redzones opts.mode && not f.no_sanitize in
  let rec scan (s : Ast.stmt) =
    match s with
    | Local (name, _) -> alloc_var name
    | Local_array (name, elem, count) ->
        (* protected arrays are 8-aligned so shadow granule math is exact *)
        let data_size =
          if protected then align8 (count * Ast.elem_bytes elem)
          else align4 (count * Ast.elem_bytes elem)
        in
        let rz = if protected then align8 opts.redzone else 0 in
        let region_size = data_size + (2 * rz) in
        cursor := !cursor - region_size;
        if protected then cursor := !cursor land lnot 7;
        let region_off = !cursor in
        let slot =
          {
            a_elem = elem;
            a_count = count;
            a_data_off = region_off + rz;
            a_region_off = region_off;
            a_region_size = region_size;
          }
        in
        Hashtbl.replace slots name (Sarray slot);
        arrays := slot :: !arrays
    | If (_, a, b) ->
        List.iter scan a;
        List.iter scan b
    | While (_, body) -> List.iter scan body
    | Expr _ | Assign _ | Assign_index _ | Return _ | Break | Continue -> ()
  in
  List.iter scan f.body;
  let frame_size = (- !cursor + 7) land lnot 7 in
  (slots, frame_size, List.rev !arrays)

(* Poison or unpoison a region through the mode's mechanism. *)
let emit_stack_region_callout ctx ~poison ~offset ~size =
  emit_i ctx (Alui (Add, Reg.a0, Reg.s0, offset));
  emit_i ctx (Li (Reg.a1, size));
  match ctx.opts.mode with
  | Trap_callout ->
      emit_i ctx
        (Trap
           (if poison then Hypercall.san_stack_poison
            else Hypercall.san_stack_unpoison))
  | Inline_kasan ->
      emit ctx (Asm.call (if poison then "__kasan_poison" else "__kasan_unpoison"))
  | Plain | Inline_kcsan -> ()

let gen_func env opts counter (f : Ast.func) =
  let slots, frame_size, arrays = layout_frame env opts f in
  let ctx =
    {
      env;
      opts;
      fn = f;
      slots;
      frame_size;
      counter;
      out = [];
      vstack = [];
      free = temp_pool;
      loops = [];
      exit_label = Printf.sprintf ".Lexit_%s" f.fname;
    }
  in
  let protected = sanitize ctx && has_redzones opts.mode in
  (* prologue *)
  emit ctx (Asm.Label f.fname);
  emit_i ctx (Alui (Add, Reg.sp, Reg.sp, -frame_size));
  emit_i ctx (Store (W32, Reg.sp, Reg.ra, frame_size - 4));
  emit_i ctx (Store (W32, Reg.sp, Reg.s0, frame_size - 8));
  emit_i ctx (Alui (Add, Reg.s0, Reg.sp, frame_size));
  List.iteri
    (fun i p ->
      match Hashtbl.find ctx.slots p with
      | Svar off -> emit_i ctx (Store (W32, Reg.s0, Reg.args.(i), off))
      | Sarray _ -> assert false)
    f.params;
  emit_kcov ctx;
  if protected then
    List.iter
      (fun a ->
        let rz = a.a_data_off - a.a_region_off in
        emit_stack_region_callout ctx ~poison:true ~offset:a.a_region_off ~size:rz;
        emit_stack_region_callout ctx ~poison:true
          ~offset:(a.a_data_off + align8 (a.a_count * Ast.elem_bytes a.a_elem))
          ~size:rz)
      arrays;
  (* body *)
  List.iter (gen_stmt ctx) f.body;
  (* implicit return 0 when control falls off the end *)
  emit_i ctx (Li (Reg.a0, 0));
  (* epilogue *)
  emit ctx (Asm.Label ctx.exit_label);
  if protected && arrays <> [] then begin
    (* preserve the return value across the unpoison callouts *)
    emit_i ctx (Alui (Add, Reg.t4, Reg.a0, 0));
    List.iter
      (fun a ->
        emit_stack_region_callout ctx ~poison:false ~offset:a.a_region_off
          ~size:a.a_region_size)
      arrays;
    emit_i ctx (Alui (Add, Reg.a0, Reg.t4, 0))
  end;
  emit_i ctx (Load (W32, false, Reg.ra, Reg.s0, -4));
  emit_i ctx (Alui (Add, Reg.sp, Reg.s0, 0));
  emit_i ctx (Load (W32, false, Reg.s0, Reg.sp, -8));
  emit ctx Asm.ret;
  List.rev ctx.out

(* --- Global data ------------------------------------------------------------------- *)

let gen_globals opts (globals : Ast.global list) =
  let protected = has_redzones opts.mode in
  let rz = align8 opts.redzone in
  List.concat_map
    (fun (g : Ast.global) ->
      match g with
      | Gvar (name, init) -> [ Asm.Align 4; Asm.Label name; Asm.Words [ init ] ]
      | Garray (name, elem, count, init) ->
          let total = count * Ast.elem_bytes elem in
          let body =
            match init with
            | Zero -> [ Asm.Space total ]
            | Word_init ws ->
                let pad = count - List.length ws in
                [ Asm.Words (ws @ List.init pad (fun _ -> 0)) ]
            | Str_init s ->
                [ Asm.Bytes (s ^ String.make (total - String.length s) '\000') ]
          in
          if protected then
            (* 8-aligned, redzones on both sides; tail padded to a granule *)
            [ Asm.Align 8; Asm.Space rz; Asm.Label name ]
            @ body
            @ [ Asm.Space (rz + (align8 total - total)) ]
          else (Asm.Align 4 :: Asm.Label name :: body))
    globals

(* Global arrays of the whole program, for crt0 registration. *)
let protected_globals (units : Ast.comp_unit list) =
  List.concat_map
    (fun (u : Ast.comp_unit) ->
      List.filter_map
        (fun (g : Ast.global) ->
          match g with
          | Garray (name, elem, count, _) -> Some (name, count * Ast.elem_bytes elem)
          | Gvar _ -> None)
        u.globals)
    units

(* --- Startup code -------------------------------------------------------------------- *)

let gen_crt0 opts ~stack_top units =
  let items = ref [ Asm.Label "_start" ] in
  let emit i = items := i :: !items in
  (* the platform reserves the top of RAM (shadow region); all modes use the
     same stack top so overhead comparisons run identical memory layouts *)
  emit (Asm.li Reg.sp stack_top);
  (match opts.mode with
  | Trap_callout ->
      List.iter
        (fun (name, size) ->
          emit (Asm.la Reg.a0 name);
          emit (Asm.li Reg.a1 size);
          emit (Asm.trap Hypercall.san_global))
        (protected_globals units)
  | Inline_kasan ->
      List.iter
        (fun (name, size) ->
          emit (Asm.la Reg.a0 name);
          emit (Asm.li Reg.a1 size);
          emit (Asm.call "__kasan_register_global"))
        (protected_globals units)
  | Plain | Inline_kcsan -> ());
  emit (Asm.call "kmain");
  emit Asm.halt;
  { Asm.unit_name = "crt0"; text = List.rev !items; data = [] }

(* --- Program compilation ---------------------------------------------------------------- *)

(** Compile checked units into assembler units (crt0 first).  The caller is
    responsible for linking mode-appropriate runtime units (sanitizer glue,
    stubs) before assembling. *)
let compile_program env opts ~stack_top (units : Ast.comp_unit list) =
  let counter = ref 0 in
  let asm_units =
    List.map
      (fun (u : Ast.comp_unit) ->
        {
          Asm.unit_name = u.cu_name;
          text = List.concat_map (gen_func env opts counter) u.funcs;
          data = gen_globals opts u.globals;
        })
      units
  in
  gen_crt0 opts ~stack_top units :: asm_units
