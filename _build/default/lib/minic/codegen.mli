(** MiniC code generator targeting the EVA-32 assembler eDSL, with the
    sanitizer instrumentation passes:

    - [Plain]: no instrumentation (EmbSan-D target firmware);
    - [Trap_callout]: one trapping instruction per source-level memory
      access plus redzone callouts - EmbSan-C's dummy sanitizer library;
    - [Inline_kasan]: the native in-guest KASAN baseline (inline shadow
      fast path, stub slow path, redzones);
    - [Inline_kcsan]: the native in-guest KCSAN baseline (inline
      watchpoint-compare + sampling fast path).

    Instrumented accesses: array indexing, raw load/store builtins, atomics
    (KASAN only), global and local scalar accesses.  Compiler-managed frame
    traffic (parameter homes, spills) is not instrumented. *)

type mode = Plain | Trap_callout | Inline_kasan | Inline_kcsan

type options = {
  mode : mode;
  redzone : int;  (** bytes on each side of protected arrays *)
  shadow_offset : int;  (** inline KASAN: shadow at (addr>>3)+offset *)
  kcov : bool;  (** kcov-style coverage traps at entries/branch targets *)
}

val default_options : options

(** Do globals/stack arrays get compile-time redzones in this mode? *)
val has_redzones : mode -> bool

exception Codegen_error of string

(** Compile checked units into assembler units (generated crt0 first).
    The caller links mode-appropriate runtime units before assembling. *)
val compile_program :
  Check.env ->
  options ->
  stack_top:int ->
  Ast.comp_unit list ->
  Embsan_isa.Asm.unit_ list
