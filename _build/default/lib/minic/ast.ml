(* MiniC abstract syntax.

   MiniC is a small B-like systems language: every value is a 32-bit word.
   Relational operators compare *unsigned* (use the [slt]/[sgt] builtins for
   signed comparison); [/], [%] and [>>] are unsigned too.  Arrays come in
   word ([arr]) and byte ([barr]) element sizes; indexing scales by the
   element size.  Raw memory is reached through the load/store builtins. *)

type unop = Neg | Not | Bnot

type binop =
  | Mul
  | Div
  | Mod
  | Add
  | Sub
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Band
  | Bxor
  | Bor
  | Land (* short-circuit && *)
  | Lor (* short-circuit || *)

type expr =
  | Int of int
  | Ident of string
  | Index of string * expr (* a[e], scaled by a's element size *)
  | Addr of string (* &name: address of a global/local object *)
  | Addr_index of string * expr (* &a[e] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type elem_size = Word | Byte

let elem_bytes = function Word -> 4 | Byte -> 1

type stmt =
  | Expr of expr
  | Assign of string * expr
  | Assign_index of string * expr * expr (* a[e1] = e2 *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Break
  | Continue
  | Local of string * expr option (* var x; / var x = e; *)
  | Local_array of string * elem_size * int (* arr x[n]; / barr x[n]; *)

type ginit = Zero | Word_init of int list | Str_init of string

type global =
  | Gvar of string * int (* var g; / var g = <const>; *)
  | Garray of string * elem_size * int * ginit

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  no_sanitize : bool; (* declared [nosan fun]: excluded from instrumentation *)
}

type comp_unit = { cu_name : string; globals : global list; funcs : func list }

(* Builtins and their arities.  [trapN] builtins require a constant first
   argument (the hypercall number). *)
let builtins =
  [
    ("load8", 1);
    ("load16", 1);
    ("load32", 1);
    ("store8", 2);
    ("store16", 2);
    ("store32", 2);
    ("trap0", 1);
    ("trap1", 2);
    ("trap2", 3);
    ("trap3", 4);
    ("halt", 1);
    ("amo_add", 2);
    ("amo_swap", 2);
    ("slt", 2); (* signed a < b *)
    ("sgt", 2); (* signed a > b *)
    ("icall3", 4); (* indirect call: icall3(fp, a, b, c) *)
  ]

let is_builtin name = List.mem_assoc name builtins
