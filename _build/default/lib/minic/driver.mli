(** MiniC compilation driver: parse, check, generate code, link the
    mode-appropriate runtime units (sanitizer glue, in-guest runtimes,
    stubs) and assemble a firmware image. *)

type config = {
  arch : Embsan_isa.Arch.t;
  mode : Codegen.mode;
  ram_base : int;
  ram_size : int;
  text_base : int;
  redzone : int;
  kcov : bool;  (** compile kcov-style coverage callouts in *)
  kcsan_interval : int;  (** native KCSAN sampling interval (accesses) *)
  kcsan_delay : int;  (** native KCSAN watchpoint delay (iterations) *)
}

val default_config : config

(** Memory layout: the top eighth of RAM is the (guest) shadow region; the
    stack grows down from just below it.  All modes share the layout so
    overhead comparisons are apples-to-apples. *)

val shadow_base : config -> int
val stack_top : config -> int

(** Guest shadow mapping: shadow byte of [a] lives at
    [(a lsr 3) + shadow_offset cfg]. *)
val shadow_offset : config -> int

type source = { src_name : string; code : string }

(** Parse and semantically check sources plus the mode's runtime units. *)
val frontend : config -> source list -> Check.env * Ast.comp_unit list

(** Compile sources into a firmware image.  The guest entry point is
    [kmain]; execution starts at the generated [_start]. *)
val compile : config -> source list -> Embsan_isa.Image.t

(** Convenience for tests: compile a single source string. *)
val compile_string :
  ?cfg:config -> ?name:string -> string -> Embsan_isa.Image.t
