(* Recursive-descent parser for MiniC. *)

exception Parse_error of string

type t = {
  toks : (Lexer.token * int) array;
  file : string;
  mutable pos : int;
}

let errf t fmt =
  let line = snd t.toks.(min t.pos (Array.length t.toks - 1)) in
  Format.kasprintf
    (fun s -> raise (Parse_error (Printf.sprintf "%s:%d: %s" t.file line s)))
    fmt

let peek t = fst t.toks.(t.pos)
let peek2 t =
  if t.pos + 1 < Array.length t.toks then fst t.toks.(t.pos + 1) else Lexer.EOF

let advance t = t.pos <- t.pos + 1

let expect_punct t s =
  match peek t with
  | Lexer.PUNCT p when p = s -> advance t
  | tok ->
      errf t "expected '%s', got %s" s
        (match tok with
        | Lexer.INT n -> string_of_int n
        | IDENT i -> i
        | STRING _ -> "<string>"
        | KW k -> k
        | PUNCT p -> "'" ^ p ^ "'"
        | EOF -> "<eof>")

let expect_ident t =
  match peek t with
  | Lexer.IDENT s ->
      advance t;
      s
  | _ -> errf t "expected identifier"

let accept_punct t s =
  match peek t with
  | Lexer.PUNCT p when p = s ->
      advance t;
      true
  | _ -> false

(* --- Expressions ------------------------------------------------------------ *)

let binop_of_punct = function
  | "*" -> Some Ast.Mul
  | "/" -> Some Ast.Div
  | "%" -> Some Ast.Mod
  | "+" -> Some Ast.Add
  | "-" -> Some Ast.Sub
  | "<<" -> Some Ast.Shl
  | ">>" -> Some Ast.Shr
  | "<" -> Some Ast.Lt
  | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt
  | ">=" -> Some Ast.Ge
  | "==" -> Some Ast.Eq
  | "!=" -> Some Ast.Ne
  | "&" -> Some Ast.Band
  | "^" -> Some Ast.Bxor
  | "|" -> Some Ast.Bor
  | "&&" -> Some Ast.Land
  | "||" -> Some Ast.Lor
  | _ -> None

(* precedence levels, low to high *)
let levels =
  [
    [ Ast.Lor ];
    [ Ast.Land ];
    [ Ast.Bor ];
    [ Ast.Bxor ];
    [ Ast.Band ];
    [ Ast.Eq; Ast.Ne ];
    [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ];
    [ Ast.Shl; Ast.Shr ];
    [ Ast.Add; Ast.Sub ];
    [ Ast.Mul; Ast.Div; Ast.Mod ];
  ]

let rec parse_expr t = parse_level t levels

and parse_level t = function
  | [] -> parse_unary t
  | ops :: rest ->
      let lhs = ref (parse_level t rest) in
      let continue_ = ref true in
      while !continue_ do
        match peek t with
        | Lexer.PUNCT p -> (
            match binop_of_punct p with
            | Some op when List.mem op ops ->
                advance t;
                let rhs = parse_level t rest in
                lhs := Ast.Binop (op, !lhs, rhs)
            | Some _ | None -> continue_ := false)
        | _ -> continue_ := false
      done;
      !lhs

and parse_unary t =
  match peek t with
  | Lexer.PUNCT "-" ->
      advance t;
      Ast.Unop (Neg, parse_unary t)
  | Lexer.PUNCT "!" ->
      advance t;
      Ast.Unop (Not, parse_unary t)
  | Lexer.PUNCT "~" ->
      advance t;
      Ast.Unop (Bnot, parse_unary t)
  | Lexer.PUNCT "&" ->
      advance t;
      let name = expect_ident t in
      if accept_punct t "[" then begin
        let idx = parse_expr t in
        expect_punct t "]";
        Ast.Addr_index (name, idx)
      end
      else Ast.Addr name
  | _ -> parse_primary t

and parse_primary t =
  match peek t with
  | Lexer.INT n ->
      advance t;
      Ast.Int n
  | Lexer.PUNCT "(" ->
      advance t;
      let e = parse_expr t in
      expect_punct t ")";
      e
  | Lexer.IDENT name -> (
      advance t;
      match peek t with
      | Lexer.PUNCT "(" ->
          advance t;
          let args =
            if accept_punct t ")" then []
            else begin
              let rec go acc =
                let e = parse_expr t in
                if accept_punct t "," then go (e :: acc)
                else begin
                  expect_punct t ")";
                  List.rev (e :: acc)
                end
              in
              go []
            end
          in
          Ast.Call (name, args)
      | Lexer.PUNCT "[" ->
          advance t;
          let idx = parse_expr t in
          expect_punct t "]";
          Ast.Index (name, idx)
      | _ -> Ast.Ident name)
  | _ -> errf t "expected expression"

(* --- Constant expressions --------------------------------------------------- *)

let mask32 v = v land 0xFFFF_FFFF

let rec const_eval t (e : Ast.expr) =
  match e with
  | Int n -> mask32 n
  | Unop (Neg, e) -> mask32 (-const_eval t e)
  | Unop (Not, e) -> if const_eval t e = 0 then 1 else 0
  | Unop (Bnot, e) -> mask32 (lnot (const_eval t e))
  | Binop (op, a, b) -> (
      let a = const_eval t a and b = const_eval t b in
      match op with
      | Mul -> mask32 (a * b)
      | Div -> if b = 0 then errf t "division by zero in constant" else a / b
      | Mod -> if b = 0 then errf t "division by zero in constant" else a mod b
      | Add -> mask32 (a + b)
      | Sub -> mask32 (a - b)
      | Shl -> mask32 (a lsl (b land 31))
      | Shr -> a lsr (b land 31)
      | Lt -> if a < b then 1 else 0
      | Le -> if a <= b then 1 else 0
      | Gt -> if a > b then 1 else 0
      | Ge -> if a >= b then 1 else 0
      | Eq -> if a = b then 1 else 0
      | Ne -> if a <> b then 1 else 0
      | Band -> a land b
      | Bxor -> a lxor b
      | Bor -> a lor b
      | Land -> if a <> 0 && b <> 0 then 1 else 0
      | Lor -> if a <> 0 || b <> 0 then 1 else 0)
  | Ident _ | Index _ | Addr _ | Addr_index _ | Call _ ->
      errf t "expected a constant expression"

let parse_const t = const_eval t (parse_expr t)

(* --- Statements -------------------------------------------------------------- *)

let rec parse_stmt t : Ast.stmt =
  match peek t with
  | Lexer.KW "var" ->
      advance t;
      let name = expect_ident t in
      let init = if accept_punct t "=" then Some (parse_expr t) else None in
      expect_punct t ";";
      Local (name, init)
  | Lexer.KW (("arr" | "barr") as kw) ->
      advance t;
      let es = if kw = "arr" then Ast.Word else Ast.Byte in
      let name = expect_ident t in
      expect_punct t "[";
      let n = parse_const t in
      expect_punct t "]";
      expect_punct t ";";
      Local_array (name, es, n)
  | Lexer.KW "if" ->
      advance t;
      expect_punct t "(";
      let cond = parse_expr t in
      expect_punct t ")";
      let then_ = parse_block t in
      let else_ =
        match peek t with
        | Lexer.KW "else" -> (
            advance t;
            match peek t with
            | Lexer.KW "if" -> [ parse_stmt t ]
            | _ -> parse_block t)
        | _ -> []
      in
      If (cond, then_, else_)
  | Lexer.KW "while" ->
      advance t;
      expect_punct t "(";
      let cond = parse_expr t in
      expect_punct t ")";
      let body = parse_block t in
      While (cond, body)
  | Lexer.KW "return" ->
      advance t;
      if accept_punct t ";" then Return None
      else begin
        let e = parse_expr t in
        expect_punct t ";";
        Return (Some e)
      end
  | Lexer.KW "break" ->
      advance t;
      expect_punct t ";";
      Break
  | Lexer.KW "continue" ->
      advance t;
      expect_punct t ";";
      Continue
  | Lexer.IDENT name when peek2 t = Lexer.PUNCT "=" ->
      advance t;
      advance t;
      let e = parse_expr t in
      expect_punct t ";";
      Assign (name, e)
  | Lexer.IDENT name when peek2 t = Lexer.PUNCT "[" -> (
      (* could be a[i] = e; or an expression statement like f(a[i]);
         here IDENT "[" can only start an index: parse and decide *)
      advance t;
      advance t;
      let idx = parse_expr t in
      expect_punct t "]";
      if accept_punct t "=" then begin
        let e = parse_expr t in
        expect_punct t ";";
        Assign_index (name, idx, e)
      end
      else begin
        (* it was an expression statement beginning with an index *)
        expect_punct t ";";
        Expr (Index (name, idx))
      end)
  | _ ->
      let e = parse_expr t in
      expect_punct t ";";
      Expr e

and parse_block t =
  expect_punct t "{";
  let rec go acc =
    if accept_punct t "}" then List.rev acc else go (parse_stmt t :: acc)
  in
  go []

(* --- Top level ----------------------------------------------------------------- *)

let parse_global_init t es n =
  if accept_punct t "=" then
    match peek t with
    | Lexer.STRING s ->
        advance t;
        if es <> Ast.Byte then errf t "string initializer requires barr";
        (Ast.Str_init s, if n = 0 then String.length s + 1 else n)
    | Lexer.PUNCT "{" ->
        advance t;
        let rec go acc =
          let v = parse_const t in
          if accept_punct t "," then go (v :: acc)
          else begin
            expect_punct t "}";
            List.rev (v :: acc)
          end
        in
        let vs = go [] in
        (Ast.Word_init vs, if n = 0 then List.length vs else n)
    | _ -> errf t "expected string or { ... } initializer"
  else (Ast.Zero, n)

let parse_top t : [ `Global of Ast.global | `Func of Ast.func | `Eof ] =
  match peek t with
  | Lexer.EOF -> `Eof
  | Lexer.KW "var" ->
      advance t;
      let name = expect_ident t in
      let init = if accept_punct t "=" then parse_const t else 0 in
      expect_punct t ";";
      `Global (Gvar (name, init))
  | Lexer.KW (("arr" | "barr") as kw) ->
      advance t;
      let es = if kw = "arr" then Ast.Word else Ast.Byte in
      let name = expect_ident t in
      expect_punct t "[";
      let n = if accept_punct t "]" then 0 else begin
          let n = parse_const t in
          expect_punct t "]";
          n
        end
      in
      let init, n = parse_global_init t es n in
      if n <= 0 then errf t "array %s has no size" name;
      expect_punct t ";";
      `Global (Garray (name, es, n, init))
  | Lexer.KW "nosan" | Lexer.KW "fun" ->
      let no_sanitize = peek t = Lexer.KW "nosan" in
      if no_sanitize then advance t;
      (match peek t with
      | Lexer.KW "fun" -> advance t
      | _ -> errf t "expected 'fun' after 'nosan'");
      let fname = expect_ident t in
      expect_punct t "(";
      let params =
        if accept_punct t ")" then []
        else begin
          let rec go acc =
            let p = expect_ident t in
            if accept_punct t "," then go (p :: acc)
            else begin
              expect_punct t ")";
              List.rev (p :: acc)
            end
          in
          go []
        end
      in
      let body = parse_block t in
      `Func { fname; params; body; no_sanitize }
  | _ -> errf t "expected a top-level declaration"

(** Parse a full compilation unit from source text. *)
let parse_unit ~name src : Ast.comp_unit =
  let toks = Array.of_list (Lexer.tokenize ~file:name src) in
  let t = { toks; file = name; pos = 0 } in
  let rec go globals funcs =
    match parse_top t with
    | `Eof -> { Ast.cu_name = name; globals = List.rev globals; funcs = List.rev funcs }
    | `Global g -> go (g :: globals) funcs
    | `Func f -> go globals (f :: funcs)
  in
  go [] []
