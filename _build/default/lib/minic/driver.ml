(* MiniC compilation driver: parse, check, generate code, link the
   mode-appropriate runtime units and assemble a firmware image. *)

open Embsan_isa

type config = {
  arch : Arch.t;
  mode : Codegen.mode;
  ram_base : int;
  ram_size : int;
  text_base : int;
  redzone : int;
  kcov : bool; (* compile kcov-style coverage callouts in *)
  kcsan_interval : int; (* native KCSAN sampling interval (accesses) *)
  kcsan_delay : int; (* native KCSAN watchpoint delay (loop iterations) *)
}

let default_config =
  {
    arch = Arch.Arm_ev;
    mode = Codegen.Plain;
    ram_base = 0x0001_0000;
    ram_size = 4 * 1024 * 1024;
    text_base = 0x0001_0000;
    redzone = 16;
    kcov = false;
    kcsan_interval = 40;
    kcsan_delay = 130;
  }

(* Memory layout: the top eighth of RAM is reserved as the (guest) shadow
   region; the stack grows down from just below it.  All modes use the same
   layout so overhead comparisons are apples-to-apples. *)
let shadow_base cfg = cfg.ram_base + cfg.ram_size - (cfg.ram_size / 8)
let stack_top cfg = shadow_base cfg
let shadow_offset cfg = shadow_base cfg - (cfg.ram_base lsr 3)

type source = { src_name : string; code : string }

let runtime_sources cfg =
  let st = stack_top cfg in
  let glue =
    match cfg.mode with
    | Codegen.Plain -> Runtime_src.glue_plain ~stack_top:st
    | Trap_callout -> Runtime_src.glue_trap ~stack_top:st
    | Inline_kasan -> Runtime_src.glue_inline_kasan ~stack_top:st
    | Inline_kcsan -> Runtime_src.glue_inline_kcsan ~stack_top:st
  in
  let extra =
    match cfg.mode with
    | Codegen.Inline_kasan ->
        [
          {
            src_name = "kasan_rt";
            code = Runtime_src.kasan_runtime ~shadow_offset:(shadow_offset cfg);
          };
        ]
    | Inline_kcsan ->
        [
          {
            src_name = "kcsan_rt";
            code =
              Runtime_src.kcsan_runtime ~interval:cfg.kcsan_interval
                ~delay:cfg.kcsan_delay;
          };
        ]
    | Plain | Trap_callout -> []
  in
  { src_name = "san_glue"; code = glue } :: extra

(** Parse and semantically check sources plus the mode's runtime units. *)
let frontend cfg sources =
  let all = sources @ runtime_sources cfg in
  let units =
    List.map (fun s -> Parser.parse_unit ~name:s.src_name s.code) all
  in
  let env = Check.check_program units in
  (env, units)

(** Compile sources into a firmware image.  The guest entry point is the
    [kmain] function; execution starts at the generated [_start]. *)
let compile cfg sources =
  let env, units = frontend cfg sources in
  let opts =
    {
      Codegen.mode = cfg.mode;
      redzone = cfg.redzone;
      shadow_offset = shadow_offset cfg;
      kcov = cfg.kcov;
    }
  in
  let asm_units = Codegen.compile_program env opts ~stack_top:(stack_top cfg) units in
  let asm_units =
    match Runtime_src.stubs_unit cfg.mode with
    | Some stub -> asm_units @ [ stub ]
    | None -> asm_units
  in
  Asm.assemble ~arch:cfg.arch ~text_base:cfg.text_base ~entry:"_start" asm_units

(** Convenience for tests: compile a single source string. *)
let compile_string ?(cfg = default_config) ?(name = "test") code =
  compile cfg [ { src_name = name; code } ]
