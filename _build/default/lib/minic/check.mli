(** Semantic checks and the program-level symbol environment for MiniC.
    A program is a set of compilation units linked together; globals and
    functions share one namespace and must be unique program-wide. *)

exception Semantic_error of string

type gobj =
  | Var of { init : int }
  | Array of { elem : Ast.elem_size; count : int; init : Ast.ginit }
  | Func of { arity : int; no_sanitize : bool }

type env = { objects : (string, gobj) Hashtbl.t }

(** Functions take at most this many parameters (register-passed). *)
val max_args : int

val lookup : env -> string -> gobj option

(** Validate a whole program; returns the environment code generation
    uses.  Raises {!Semantic_error}. *)
val check_program : Ast.comp_unit list -> env
