lib/fuzz/corpus.mli: Hashtbl Prog Rng
