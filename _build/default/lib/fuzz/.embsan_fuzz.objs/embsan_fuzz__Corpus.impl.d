lib/fuzz/corpus.ml: Hashtbl List Prog Rng
