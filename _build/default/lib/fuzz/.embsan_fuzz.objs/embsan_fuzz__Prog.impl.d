lib/fuzz/prog.ml: Array Defs Embsan_guest Fmt List Rng String
