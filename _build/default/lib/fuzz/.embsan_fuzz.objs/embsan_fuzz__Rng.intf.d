lib/fuzz/rng.mli:
