lib/fuzz/rng.ml: Array List
