lib/fuzz/prog.mli: Defs Embsan_guest Format Rng
