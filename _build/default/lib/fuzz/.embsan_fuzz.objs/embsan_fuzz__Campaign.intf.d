lib/fuzz/campaign.mli: Defs Embsan_core Embsan_guest Firmware_db Format Prog
