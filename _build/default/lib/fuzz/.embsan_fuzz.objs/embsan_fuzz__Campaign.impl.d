lib/fuzz/campaign.ml: Corpus Defs Embsan_core Embsan_emu Embsan_guest Embsan_isa Embsan_minic Firmware_db Fmt Hashtbl List Option Prog Replay Rng
