(** Deterministic PRNG (splitmix-style) for reproducible fuzzing. *)

type t

val create : seed:int -> t
val next : t -> int

(** Uniform in [0, n). *)
val below : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val chance : t -> percent:int -> bool
val pick : t -> 'a list -> 'a
val pick_arr : t -> 'a array -> 'a

(** A boundary constant likely to trip size checks. *)
val interesting : t -> int
