(* Deterministic PRNG (splitmix-style) for reproducible fuzzing campaigns. *)

type t = { mutable state : int }

let create ~seed = { state = (seed * 0x9E3779B9) lor 1 }

let next t =
  let z = (t.state + 0x9E3779B9) land max_int in
  t.state <- z;
  let z = (z lxor (z lsr 16)) * 0x85EBCA6B land max_int in
  let z = (z lxor (z lsr 13)) * 0xC2B2AE35 land max_int in
  z lxor (z lsr 16)

(** Uniform in [0, n). *)
let below t n = if n <= 0 then 0 else next t mod n

(** Uniform in [lo, hi] inclusive. *)
let range t lo hi = lo + below t (hi - lo + 1)

let chance t ~percent = below t 100 < percent

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty"
  | l -> List.nth l (below t (List.length l))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_arr: empty"
  else a.(below t (Array.length a))

(** A "interesting" 32-bit value: boundary constants that trip size checks. *)
let interesting t =
  pick t
    [ 0; 1; 7; 8; 15; 16; 31; 32; 63; 64; 127; 128; 255; 256; 1023; 1024;
      4095; 4096; 0x7FFFFFFF; 0x80000000; 0xFFFFFFFF ]
