(** Coverage-triaged corpus, AFL-style: a program joins when its execution
    produced an (edge, hit-bucket) pair never seen before. *)

type entry = { e_prog : Prog.t; e_new_pairs : int }

type t = {
  seen : (int * int, unit) Hashtbl.t;
  mutable entries : entry list;
  mutable total_pairs : int;
}

val create : unit -> t

(** Record an execution's coverage signature; [true] iff it contributed new
    coverage (the program was added). *)
val consider : t -> Prog.t -> (int * int) list -> bool

val size : t -> int
val coverage : t -> int
val pick : Rng.t -> t -> Prog.t option

(** All programs, oldest first (the "merged corpus"). *)
val programs : t -> Prog.t list
