(* Machine checkpoint/restore service (DESIGN.md "Snapshot service").

   A snapshot captures everything a fresh boot would establish: guest RAM
   (full copy at capture), per-hart architectural state, device state (via
   the {!Device.t} save/restore hooks) and, optionally, the host-side
   sanitizer runtime (shadow planes, KASAN/KCSAN/kmemleak tables, report
   sink).  Restore is O(pages touched): capture arms {!Ram} dirty-page
   tracking on the snapshot channel, and restore reverts only the pages
   written since.

   Single-active-snapshot discipline: capture clears the snapshot dirty
   channel, so only the *most recent* capture of a machine can be restored
   through the dirty-page fast path.  Restoring an older snapshot falls
   back to a full-RAM revert (see [restore ~full:true]).  Restoring the
   latest snapshot repeatedly is supported and is the persistent-fuzzing
   hot path.

   What is deliberately NOT captured: probe subscribers and site state, trap
   handlers, device callbacks (mailbox on_ready/on_complete), the
   translation cache and engine statistics — all host-side wiring or
   caches whose contents are semantically transparent.  Restore calls
   {!Machine.flush_tcg} because translations of guest code pages that were
   modified and then reverted would otherwise survive with stale bodies. *)

open Embsan_emu

type hart_state = {
  h_regs : int array;
  h_pc : int;
  h_status : Cpu.status;
  h_stall_until : int;
  h_insns : int;
}

type t = {
  machine : Machine.t;
  ram_image : Bytes.t; (* full RAM contents at capture *)
  harts : hart_state array;
  devices : (string * string) array; (* device name, opaque save blob *)
  total_insns : int;
  cost : int;
  external_cost : int;
  next_hart : int;
  entry : int;
  rehost : string option; (* rehost-hook state (memo table, pending IRQs) *)
  runtime : (Embsan_core.Runtime.t * Embsan_core.Runtime.state) option;
}

let save_hart (cpu : Cpu.t) =
  {
    h_regs = Array.copy cpu.Cpu.regs;
    h_pc = cpu.Cpu.pc;
    h_status = cpu.Cpu.status;
    h_stall_until = cpu.Cpu.stall_until;
    h_insns = cpu.Cpu.insns;
  }

let restore_hart (cpu : Cpu.t) (h : hart_state) =
  Array.blit h.h_regs 0 cpu.Cpu.regs 0 (Array.length cpu.Cpu.regs);
  cpu.Cpu.pc <- h.h_pc;
  cpu.Cpu.status <- h.h_status;
  cpu.Cpu.stall_until <- h.h_stall_until;
  cpu.Cpu.insns <- h.h_insns

(** Checkpoint [machine] (and [runtime]'s host-side sanitizer state, when
    given).  Enables dirty-page tracking — an O(1), flush-free site patch
    (store sites read the flag at run time) — and clears the snapshot
    dirty channel, so the write set accumulated afterwards is exactly
    "pages to revert". *)
let capture ?runtime (machine : Machine.t) =
  Machine.set_dirty_tracking machine true;
  Ram.clear_dirty machine.Machine.ram ~channel:Ram.snap_channel;
  {
    machine;
    ram_image = Bytes.copy machine.Machine.ram.Ram.bytes;
    harts = Array.map save_hart machine.Machine.harts;
    devices =
      Array.map
        (fun (d : Device.t) -> (d.Device.name, d.Device.save ()))
        machine.Machine.devices;
    total_insns = machine.Machine.total_insns;
    cost = machine.Machine.cost;
    external_cost = machine.Machine.external_cost;
    next_hart = machine.Machine.next_hart;
    entry = machine.Machine.entry;
    rehost =
      Option.map
        (fun (rh : Machine.rehost) -> rh.Machine.rh_save ())
        machine.Machine.rehost;
    runtime = Option.map (fun rt -> (rt, Embsan_core.Runtime.save rt)) runtime;
  }

(** Number of RAM pages currently dirty since the last capture (the data
    volume the next {!restore} will move). *)
let dirty_pages (machine : Machine.t) =
  Ram.dirty_count machine.Machine.ram ~channel:Ram.snap_channel

(** Revert the machine (and captured runtime) to snapshot [t].  RAM is
    reverted page-wise in O(pages written since capture); [~full:true]
    forces a whole-RAM revert instead (required when [t] is not the most
    recent capture of this machine).  Returns the number of pages
    reverted.  The translation cache is flushed — stale translations of
    reverted guest code must not survive. *)
let restore ?(full = false) t =
  let m = t.machine in
  let ram = m.Machine.ram in
  let pages =
    if full || not (Ram.track_dirty ram) then begin
      Bytes.blit t.ram_image 0 ram.Ram.bytes 0 (Bytes.length t.ram_image);
      (* every page may have changed: mark all pages dirty for the other
         channels, then clear our own bit *)
      Ram.mark_dirty_range ram ~addr:ram.Ram.base ~size:(Bytes.length t.ram_image);
      Ram.clear_dirty ram ~channel:Ram.snap_channel;
      Ram.page_count ram
    end
    else Ram.revert_dirty ram ~channel:Ram.snap_channel ~from:t.ram_image
  in
  Array.iteri (fun i h -> restore_hart m.Machine.harts.(i) h) t.harts;
  Array.iteri
    (fun i (name, blob) ->
      let d = m.Machine.devices.(i) in
      if d.Device.name <> name then
        invalid_arg
          (Printf.sprintf "Snap.restore: device %d is %s, snapshot has %s" i
             d.Device.name name);
      d.Device.restore blob)
    t.devices;
  m.Machine.total_insns <- t.total_insns;
  m.Machine.cost <- t.cost;
  m.Machine.external_cost <- t.external_cost;
  m.Machine.next_hart <- t.next_hart;
  m.Machine.entry <- t.entry;
  (* rehost-hook state (memo table, pending interrupts) reverts with the
     machine; a hook installed only after capture keeps its live state *)
  (match (m.Machine.rehost, t.rehost) with
  | Some rh, Some blob -> rh.Machine.rh_restore blob
  | _ -> ());
  Option.iter
    (fun (rt, st) -> Embsan_core.Runtime.restore rt st)
    t.runtime;
  Machine.flush_tcg m;
  pages
