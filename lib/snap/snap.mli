(** Machine checkpoint/restore service for persistent-mode fuzzing (see
    DESIGN.md "Snapshot service").

    {!capture} checkpoints guest RAM, hart registers, device state, the
    rehost-hook state (MMIO memo table and pending interrupts, via the
    {!Embsan_emu.Machine.rehost} save/restore closures) and (optionally)
    the host-side sanitizer runtime; {!restore} reverts in
    O(pages written since capture) using {!Embsan_emu.Ram} dirty-page
    tracking.  Single-active-snapshot discipline: only the most recent
    capture of a machine restores through the dirty-page fast path; older
    snapshots need [restore ~full:true].  Host-side wiring — probe
    subscribers, trap handlers, device callbacks, the fuzzer's
    {!Embsan_emu.Coverage} state — is deliberately not captured and
    survives a restore. *)

type t

(** Checkpoint the machine (and the runtime's sanitizer state, when
    given).  Enables dirty-page tracking — an O(1), flush-free site patch
    (translated store sites read the tracking flag at run time). *)
val capture : ?runtime:Embsan_core.Runtime.t -> Embsan_emu.Machine.t -> t

(** Pages written since the last capture — the volume the next {!restore}
    will move. *)
val dirty_pages : Embsan_emu.Machine.t -> int

(** Revert machine (and captured runtime) to the snapshot; returns pages
    reverted.  Flushes the translation cache.  [~full:true] forces a
    whole-RAM revert (required for non-latest snapshots). *)
val restore : ?full:bool -> t -> int
