(** Host-side kmemleak-style leak detector: the "third sanitizer"
    demonstrating the paper's section-5 adaptability claim.  It consumes
    only the allocator interception points and reports allocation sites
    that accumulate live blocks past a grace window when {!scan} runs. *)

type alloc_rec = { l_size : int; l_pc : int; l_at : int }

type t = {
  sink : Report.sink;
  symbolize : int -> string option;
  live : (int, alloc_rec) Hashtbl.t;
  mutable allocs : int;
  mutable frees : int;
  grace_insns : int;
  site_threshold : int;
}

val create :
  ?grace_insns:int ->
  ?site_threshold:int ->
  sink:Report.sink ->
  symbolize:(int -> string option) ->
  unit ->
  t

(** Snapshot of the live-block table and counters. *)
type state

val save : t -> state
val restore : t -> state -> unit

val on_alloc : t -> ptr:int -> size:int -> pc:int -> now:int -> unit
val on_free : t -> ptr:int -> unit

(** Number of currently tracked live blocks. *)
val live_blocks : t -> int

(** Scan for leaks at instruction count [now]; returns the number of new
    reports added to the sink. *)
val scan : t -> now:int -> int

(** The registry plugin ({!Sanitizer.S} implementation); its [scan] hook
    is the leak pass {!Runtime.scan_leaks} sums over. *)
val plugin : Sanitizer.plugin
