(* Common Sanitizer Runtime (S3.3, S3.5).

   Consumes the merged DSL specification (Distiller) plus the platform
   description and init routine (Prober), then hooks the firmware's
   execution:

   - EmbSan-D: memory probes inserted into the emulator's translated code
     templates, and call/return probes intercepting the allocator
     functions named in the spec;
   - EmbSan-C: direct hypercall dispatch for the compile-time callouts
     (check traps and state-maintenance traps), which skips the probe
     machinery and is the cheaper path.

   The runtime is sanitizer-agnostic: {!attach} instantiates the plugins
   the spec selects from the {!Sanitizer} registry and compiles the spec's
   intercepts ONCE into per-interception-point dispatch plans -- flat
   arrays of handler closures, so the hot path performs no [Dsl.wants]
   list scans and no option matches.  Both backends construct the same
   typed {!Sanitizer.event}s feeding the same plans.

   Host-side work is charged to the machine's external cost counter using
   {!Embsan_emu.Cost_model}, which is what the overhead bench (Figure 2)
   measures. *)

open Embsan_isa
open Embsan_emu

type inst_mode = C | D

let mode_name = function C -> "EmbSan-C" | D -> "EmbSan-D"

(* --- EmbSan-D allocator interception: per-hart bounded pending stacks --------- *)

(* An intercepted allocator call waits for its matching return to learn the
   returned pointer.  A crash, tail call or reboot inside the allocator
   means that return never arrives, so the stacks are bounded: at capacity
   the oldest frame is dropped, and a return matching a deeper frame
   abandons everything pushed above it.  Flat int arrays (hart-major), no
   per-event allocation. *)

let pending_cap = 16

type pending = {
  p_ret : int array; (* harts * cap: awaited return addresses *)
  p_size : int array; (* requested allocation sizes *)
  p_depth : int array; (* per-hart stack depth *)
}

let pending_create ~harts =
  {
    p_ret = Array.make (harts * pending_cap) 0;
    p_size = Array.make (harts * pending_cap) 0;
    p_depth = Array.make harts 0;
  }

let pending_push p ~hart ~ra ~size =
  let base = hart * pending_cap in
  let d = p.p_depth.(hart) in
  if d = pending_cap then begin
    (* the allocator never returned this deep (tail-call/reboot): the
       bottom frame is stale, drop it *)
    Array.blit p.p_ret (base + 1) p.p_ret base (pending_cap - 1);
    Array.blit p.p_size (base + 1) p.p_size base (pending_cap - 1);
    p.p_ret.(base + pending_cap - 1) <- ra;
    p.p_size.(base + pending_cap - 1) <- size
  end
  else begin
    p.p_ret.(base + d) <- ra;
    p.p_size.(base + d) <- size;
    p.p_depth.(hart) <- d + 1
  end

(* Top-down match of a return address; frames above the match never
   returned and are abandoned with it. *)
let pending_pop p ~hart ~ra =
  let base = hart * pending_cap in
  let rec go i =
    if i < 0 then None
    else if p.p_ret.(base + i) = ra then begin
      p.p_depth.(hart) <- i;
      Some p.p_size.(base + i)
    end
    else go (i - 1)
  in
  go (p.p_depth.(hart) - 1)

let pending_depth_of p ~hart = p.p_depth.(hart)

type pending_state = { ps_ret : int array; ps_size : int array; ps_depth : int array }

let pending_save p =
  {
    ps_ret = Array.copy p.p_ret;
    ps_size = Array.copy p.p_size;
    ps_depth = Array.copy p.p_depth;
  }

let pending_restore p (s : pending_state) =
  Array.blit s.ps_ret 0 p.p_ret 0 (Array.length p.p_ret);
  Array.blit s.ps_size 0 p.p_size 0 (Array.length p.p_size);
  Array.blit s.ps_depth 0 p.p_depth 0 (Array.length p.p_depth)

(* --- Runtime ------------------------------------------------------------------ *)

type t = {
  spec : Dsl.spec;
  mode : inst_mode;
  machine : Machine.t;
  sink : Report.sink;
  shadow : Shadow.t;
  instances : Sanitizer.instance array; (* spec.sanitizers order *)
  (* compiled dispatch plans: one flat closure array per interception
     point, fixed at attach time *)
  load_plan : Sanitizer.access_fn array;
  store_plan : Sanitizer.access_fn array;
  alloc_plan : (Sanitizer.event -> unit) array;
  free_plan : (Sanitizer.event -> unit) array;
  global_plan : (Sanitizer.event -> unit) array;
  stack_poison_plan : (Sanitizer.event -> unit) array;
  stack_unpoison_plan : (Sanitizer.event -> unit) array;
  plan_index : (Api_spec.point * string list) list;
  event_units : int; (* per-event cost of this mode's delivery mechanism *)
  mutable ready : bool;
  mutable active : bool; (* {!set_enabled}: event-delivery gate *)
  (* D-mode probe subscription handles, kept so {!set_enabled} can detach
     and re-attach by patching the site table -- never by flushing *)
  mutable subs : Probe.sub list;
  pending : pending;
  (* pc ranges of intercepted allocator functions: accesses from inside are
     legal metadata traffic and exempt from checks (the compile-time analog
     is excluding mm/slab from instrumentation).  Sorted, disjoint, split
     into two parallel arrays for the binary search. *)
  exempt_lo : int array;
  exempt_hi : int array;
  token : unit ref; (* identity guard for save/restore pairing *)
  mutable mem_events : int;
  mutable callouts : int;
  mutable intercepted_calls : int;
}

(* Sorted-merge the exempt ranges so membership is a binary search. *)
let compile_exempts ranges =
  let sorted =
    List.sort compare (List.filter (fun (lo, hi) -> hi > lo) ranges)
  in
  let merged =
    List.fold_left
      (fun acc (lo, hi) ->
        match acc with
        | (plo, phi) :: rest when lo <= phi -> (plo, max phi hi) :: rest
        | _ -> (lo, hi) :: acc)
      [] sorted
  in
  let arr = Array.of_list (List.rev merged) in
  (Array.map fst arr, Array.map snd arr)

let pc_exempt t pc =
  let lo = t.exempt_lo in
  let n = Array.length lo in
  if n = 0 then false
  else begin
    (* count entries with lo <= pc; candidates left of that boundary *)
    let l = ref 0 and r = ref n in
    while !r > !l do
      let m = (!l + !r) lsr 1 in
      if Array.unsafe_get lo m <= pc then l := m + 1 else r := m
    done;
    !l > 0 && pc < Array.unsafe_get t.exempt_hi (!l - 1)
  end

let charge t units = Machine.add_external_cost t.machine units

(* --- Event dispatch ----------------------------------------------------------- *)

let run_event_plan plan ev = Array.iter (fun f -> f ev) plan

(* State-maintenance events that are not tied to a DSL interception point
   (poison/unpoison and readiness) go to every instance. *)
let broadcast t ev = Array.iter (fun i -> Sanitizer.event i ev) t.instances

let dispatch_access t ~pc ~addr ~size ~is_write ~is_atomic ~hart =
  (* [active] gates delivery for EmbSan-C, whose callout traps stay
     installed while disabled; EmbSan-D unsubscribes its probes outright,
     so this check is vacuously true there *)
  if t.active then begin
    t.mem_events <- t.mem_events + 1;
    charge t t.event_units;
    if not (pc_exempt t pc) then begin
      let plan = if is_write then t.store_plan else t.load_plan in
      for i = 0 to Array.length plan - 1 do
        (Array.unsafe_get plan i) ~pc ~addr ~size ~is_write ~is_atomic ~hart
      done
    end
  end

(* --- Init routine ------------------------------------------------------------- *)

let shadow_code_of_string = function
  | "heap" -> Shadow.Heap_redzone
  | "stack" -> Shadow.Stack_redzone
  | "global" -> Shadow.Global_redzone
  | "freed" -> Shadow.Freed
  | s -> invalid_arg ("unknown poison code " ^ s)

let apply_init_action t (a : Dsl.init_action) =
  match a with
  | Dsl.Poison { addr; size; code } ->
      broadcast t
        (Sanitizer.Poison { addr; size; code = shadow_code_of_string code })
  | Unpoison { addr; size } -> broadcast t (Sanitizer.Unpoison { addr; size })
  | Alloc { ptr; size } ->
      run_event_plan t.alloc_plan
        (Sanitizer.Alloc { ptr; size; pc = 0; now = t.machine.total_insns })
  | Region { name = "global"; addr; size } ->
      broadcast t (Sanitizer.Register_global { addr; size })
  | Region _ -> ()
  | Note _ -> ()

let on_ready t () =
  if not t.ready then begin
    t.ready <- true;
    List.iter (apply_init_action t) t.spec.Dsl.init;
    broadcast t Sanitizer.Ready
  end

(* --- Backends ------------------------------------------------------------------ *)

let install_mem_probes t =
  let s =
    Probe.subscribe_mem t.machine.probes (fun (ev : Probe.mem_event) ->
        if t.ready then
          dispatch_access t ~pc:ev.pc ~addr:ev.addr ~size:ev.size
            ~is_write:ev.is_write ~is_atomic:ev.is_atomic ~hart:ev.hart)
  in
  t.subs <- t.subs @ [ s ]

let install_call_interception t =
  let allocs = Hashtbl.create 16 and frees = Hashtbl.create 16 in
  List.iter
    (fun (f : Dsl.func_sig) ->
      match f.f_kind with
      | `Alloc size_arg -> Hashtbl.replace allocs f.f_addr size_arg
      | `Free ptr_arg -> Hashtbl.replace frees f.f_addr ptr_arg)
    t.spec.Dsl.functions;
  if Hashtbl.length allocs > 0 || Hashtbl.length frees > 0 then begin
    let sc =
      Probe.subscribe_call t.machine.probes (fun (ev : Probe.call_event) ->
        match Hashtbl.find_opt allocs ev.c_target with
        | Some size_arg ->
            t.intercepted_calls <- t.intercepted_calls + 1;
            charge t Cost_model.embsan_d_probe;
            let size = Cpu.get t.machine.harts.(ev.c_hart) Reg.args.(size_arg) in
            pending_push t.pending ~hart:ev.c_hart ~ra:(ev.c_pc + Insn.size)
              ~size
        | None -> (
            match Hashtbl.find_opt frees ev.c_target with
            | Some ptr_arg ->
                t.intercepted_calls <- t.intercepted_calls + 1;
                charge t Cost_model.embsan_d_probe;
                let ptr = Cpu.get t.machine.harts.(ev.c_hart) Reg.args.(ptr_arg) in
                run_event_plan t.free_plan
                  (Sanitizer.Free { ptr; pc = ev.c_pc; hart = ev.c_hart })
            | None -> ()))
    in
    let sr =
      Probe.subscribe_ret t.machine.probes (fun (ev : Probe.ret_event) ->
        match pending_pop t.pending ~hart:ev.r_hart ~ra:ev.r_target with
        | Some size ->
            (* attribute the allocation to its call site, not to the
               allocator's return instruction *)
            run_event_plan t.alloc_plan
              (Sanitizer.Alloc
                 {
                   ptr = ev.r_retval;
                   size;
                   pc = ev.r_target - Insn.size;
                   now = t.machine.total_insns;
                 })
        | None -> ())
    in
    t.subs <- t.subs @ [ sc; sr ]
  end

let install_callout_traps t =
  let m = t.machine in
  List.iter
    (fun num ->
      Machine.set_trap_handler m num (fun _m cpu ->
          t.callouts <- t.callouts + 1;
          match Hypercall.decode_check num with
          | Some (is_write, size) ->
              dispatch_access t
                ~pc:(cpu.Cpu.pc - Insn.size)
                ~addr:(Cpu.get cpu Reg.a0)
                ~size ~is_write ~is_atomic:false ~hart:cpu.Cpu.id
          | None -> assert false))
    [ 16; 17; 18; 19; 20; 21 ];
  let update num f =
    Machine.set_trap_handler m num (fun _m cpu ->
        if t.active then begin
          t.callouts <- t.callouts + 1;
          charge t Cost_model.embsan_c_hypercall;
          f cpu
        end)
  in
  (* the trap sits in the san_* glue called from the allocator, so walk two
     frames up to attribute the event to the kernel function itself *)
  update Hypercall.san_alloc (fun cpu ->
      if Array.length t.alloc_plan > 0 then
        run_event_plan t.alloc_plan
          (Sanitizer.Alloc
             {
               ptr = Cpu.get cpu Reg.a0;
               size = Cpu.get cpu Reg.a1;
               pc = Unwind.caller_pc t.machine cpu ~depth:2;
               now = t.machine.total_insns;
             }));
  update Hypercall.san_free (fun cpu ->
      if Array.length t.free_plan > 0 then
        (* the glue reports (ptr, size); the tracked size wins *)
        run_event_plan t.free_plan
          (Sanitizer.Free
             {
               ptr = Cpu.get cpu Reg.a0;
               pc = Unwind.caller_pc t.machine cpu ~depth:2;
               hart = cpu.Cpu.id;
             }));
  update Hypercall.san_global (fun cpu ->
      run_event_plan t.global_plan
        (Sanitizer.Register_global
           { addr = Cpu.get cpu Reg.a0; size = Cpu.get cpu Reg.a1 }));
  update Hypercall.san_stack_poison (fun cpu ->
      run_event_plan t.stack_poison_plan
        (Sanitizer.Stack_poison
           { addr = Cpu.get cpu Reg.a0; size = Cpu.get cpu Reg.a1 }));
  update Hypercall.san_stack_unpoison (fun cpu ->
      run_event_plan t.stack_unpoison_plan
        (Sanitizer.Stack_unpoison
           { addr = Cpu.get cpu Reg.a0; size = Cpu.get cpu Reg.a1 }));
  update Hypercall.san_poison_region (fun cpu ->
      broadcast t
        (Sanitizer.Poison
           {
             addr = Cpu.get cpu Reg.a0;
             size = Cpu.get cpu Reg.a1;
             code = Shadow.Heap_redzone;
           }))

(* --- Attachment ---------------------------------------------------------------- *)

let symbolize_of_image (image : Image.t option) pc =
  match image with
  | None -> None
  | Some img ->
      Option.map (fun (s : Image.symbol) -> s.name) (Image.symbol_at img pc)

(* Instances named by the intercept's handlers, in handler order, filtered
   to created instances that subscribe to the point; one slot per
   sanitizer. *)
let planned_instances instances spec point =
  match Dsl.find_intercept spec point with
  | None -> []
  | Some i ->
      let seen = Hashtbl.create 4 in
      List.filter_map
        (fun (h : Dsl.handler) ->
          if Hashtbl.mem seen h.h_san then None
          else begin
            Hashtbl.add seen h.h_san ();
            Array.find_opt
              (fun inst ->
                String.equal (Sanitizer.instance_name inst) h.h_san
                && List.mem point (Sanitizer.instance_points inst))
              instances
          end)
        i.i_handlers

(** Attach the runtime to a machine per the spec.  [image] (optional,
    un-stripped) provides report symbolization. *)
let attach ~spec ~mode ?image ?(sink = Report.create_sink ()) ?(tuning = [])
    (machine : Machine.t) =
  Plugins.ensure_builtin ();
  let shadow =
    Shadow.create ~ram_base:(Machine.ram_base machine)
      ~ram_size:(Machine.ram_size machine)
  in
  let symbolize = symbolize_of_image image in
  let ctx =
    {
      Sanitizer.machine;
      mode = (match mode with C -> `C | D -> `D);
      shadow;
      sink;
      symbolize;
      tuning;
    }
  in
  let instances =
    Array.of_list
      (List.filter_map
         (fun name ->
           match Sanitizer.find name with
           | Some p -> Some (Sanitizer.instantiate p ctx)
           | None ->
               Logs.debug (fun m ->
                   m "Runtime.attach: no plugin registered for %S; skipped"
                     name);
               None)
         spec.Dsl.sanitizers)
  in
  let planned point = planned_instances instances spec point in
  let access_plan point =
    Array.of_list (List.map Sanitizer.access (planned point))
  in
  let event_plan point =
    Array.of_list (List.map (fun i -> Sanitizer.event i) (planned point))
  in
  let plan_index =
    List.map
      (fun point -> (point, List.map Sanitizer.instance_name (planned point)))
      [
        Api_spec.P_load;
        Api_spec.P_store;
        Api_spec.P_func_alloc;
        Api_spec.P_func_free;
        Api_spec.P_global_register;
        Api_spec.P_stack_poison;
        Api_spec.P_stack_unpoison;
      ]
  in
  let exempt_lo, exempt_hi =
    compile_exempts
      (List.map
         (fun (f : Dsl.func_sig) -> (f.f_addr, f.f_addr + f.f_size))
         spec.Dsl.functions
      @ List.map
          (fun (e : Dsl.exempt) -> (e.e_addr, e.e_addr + e.e_size))
          spec.Dsl.exempts)
  in
  let t =
    {
      spec;
      mode;
      machine;
      sink;
      shadow;
      instances;
      load_plan = access_plan Api_spec.P_load;
      store_plan = access_plan Api_spec.P_store;
      alloc_plan = event_plan Api_spec.P_func_alloc;
      free_plan = event_plan Api_spec.P_func_free;
      global_plan = event_plan Api_spec.P_global_register;
      stack_poison_plan = event_plan Api_spec.P_stack_poison;
      stack_unpoison_plan = event_plan Api_spec.P_stack_unpoison;
      plan_index;
      event_units =
        (match mode with
        | C -> Cost_model.embsan_c_hypercall
        | D -> Cost_model.embsan_d_probe);
      ready = false;
      active = true;
      subs = [];
      pending = pending_create ~harts:(Array.length machine.Machine.harts);
      exempt_lo;
      exempt_hi;
      token = ref ();
      mem_events = 0;
      callouts = 0;
      intercepted_calls = 0;
    }
  in
  Services.install machine;
  (match mode with
  | C ->
      (* compile-time callouts: direct hypercall dispatch, no probes *)
      install_callout_traps t;
      (* C-mode state maintenance is live from boot; mark ready from boot *)
      t.ready <- true
  | D ->
      install_mem_probes t;
      install_call_interception t;
      machine.mailbox.on_ready <- on_ready t);
  t

(** Pause/resume sanitizer event delivery.  O(1) and flush-free in both
    modes: EmbSan-D detaches/re-attaches its probe subscriptions by
    patching the shared site table (zero translation-cache flushes), and
    EmbSan-C gates its installed callout traps on the [active] flag.
    No-op when the requested state is current.  While disabled,
    state-maintenance events are paused too, so long disabled windows can
    leave shadow state stale -- this is for toggle-style A/B measurement,
    not partial sanitizing. *)
let set_enabled t on =
  if on <> t.active then begin
    t.active <- on;
    match t.mode with
    | C -> ()
    | D ->
        if on then begin
          install_mem_probes t;
          install_call_interception t
        end
        else begin
          List.iter Probe.unsubscribe t.subs;
          t.subs <- []
        end
  end

let enabled t = t.active

(* --- Introspection ------------------------------------------------------------- *)

(** Sanitizer names in the compiled plan of [point], in dispatch order. *)
let plan_names t point =
  match List.assoc_opt point t.plan_index with Some l -> l | None -> []

let pending_depth t ~hart = pending_depth_of t.pending ~hart
let pending_capacity = pending_cap

(* --- Snapshot support ---------------------------------------------------------- *)

type state = {
  r_token : unit ref;
  r_shadow : Shadow.state;
  r_plugins : (string * (unit -> unit)) list; (* name, restore thunk *)
  r_sink : Report.sink_state;
  r_ready : bool;
  r_pending : pending_state;
  r_mem_events : int;
  r_callouts : int;
  r_intercepted_calls : int;
}

(** Snapshot the runtime's host-side sanitizer state: shadow planes, every
    plugin instance's checkpoint (keyed by sanitizer name), the
    report-dedup sink and the D-mode allocator-interception stacks.  Probe
    wiring, trap handlers and the compiled dispatch plans are structural
    (installed once by {!attach}) and are not part of the state. *)
let save t =
  {
    r_token = t.token;
    r_shadow = Shadow.save t.shadow;
    r_plugins =
      Array.to_list
        (Array.map
           (fun i -> (Sanitizer.instance_name i, Sanitizer.checkpoint i))
           t.instances);
    r_sink = Report.save_sink t.sink;
    r_ready = t.ready;
    r_pending = pending_save t.pending;
    r_mem_events = t.mem_events;
    r_callouts = t.callouts;
    r_intercepted_calls = t.intercepted_calls;
  }

let restore t (s : state) =
  if s.r_token != t.token then
    invalid_arg "Runtime.restore: state belongs to a different runtime";
  Shadow.restore t.shadow s.r_shadow;
  List.iter (fun (_name, thunk) -> thunk ()) s.r_plugins;
  Report.restore_sink t.sink s.r_sink;
  t.ready <- s.r_ready;
  pending_restore t.pending s.r_pending;
  t.mem_events <- s.r_mem_events;
  t.callouts <- s.r_callouts;
  t.intercepted_calls <- s.r_intercepted_calls

let reports t = Report.unique_reports t.sink

(** Run every plugin's detector pass now (typically after a test
    completes); returns the number of new reports. *)
let scan_leaks t =
  Array.fold_left
    (fun acc i -> acc + Sanitizer.scan i ~now:t.machine.total_insns)
    0 t.instances

(** Per-plugin counter snapshots, in instantiation order. *)
let plugin_stats t =
  Array.to_list
    (Array.map
       (fun i -> (Sanitizer.instance_name i, Sanitizer.stats i))
       t.instances)

let pp_stats fmt t =
  Fmt.pf fmt
    "%s: %d mem events, %d callouts, %d intercepted calls, %d unique reports"
    (mode_name t.mode) t.mem_events t.callouts t.intercepted_calls
    (Report.count t.sink)
