(* Common Sanitizer Runtime (S3.3, S3.5).

   Consumes the merged DSL specification (Distiller) plus the platform
   description and init routine (Prober), then hooks the firmware's
   execution:

   - EmbSan-D: memory probes inserted into the emulator's translated code
     templates, and call/return probes intercepting the allocator
     functions named in the spec;
   - EmbSan-C: direct hypercall dispatch for the compile-time callouts
     (check traps and state-maintenance traps), which skips the probe
     machinery and is the cheaper path.

   Host-side work is charged to the machine's external cost counter using
   {!Embsan_emu.Cost_model}, which is what the overhead bench (Figure 2)
   measures. *)

open Embsan_isa
open Embsan_emu

type inst_mode = C | D

let mode_name = function C -> "EmbSan-C" | D -> "EmbSan-D"

type t = {
  spec : Dsl.spec;
  mode : inst_mode;
  machine : Machine.t;
  sink : Report.sink;
  shadow : Shadow.t;
  kasan : Kasan.t option;
  kcsan : Kcsan.t option;
  kmemleak : Kmemleak.t option;
  mutable ready : bool;
  (* EmbSan-D allocator interception state: per-hart stack of pending
     allocator calls awaiting their return *)
  mutable pending_allocs : (int * int * int) list; (* hart, ret addr, size *)
  (* pc ranges of intercepted allocator functions: accesses from inside are
     legal metadata traffic and exempt from checks (the compile-time analog
     is excluding mm/slab from instrumentation) *)
  exempt_ranges : (int * int) array;
  mutable mem_events : int;
  mutable callouts : int;
  mutable intercepted_calls : int;
}

let pc_exempt t pc =
  let n = Array.length t.exempt_ranges in
  let rec go i =
    if i >= n then false
    else
      let lo, hi = t.exempt_ranges.(i) in
      (pc >= lo && pc < hi) || go (i + 1)
  in
  go 0

let charge t units = Machine.add_external_cost t.machine units

let event_cost t =
  match t.mode with
  | C -> Cost_model.embsan_c_hypercall
  | D -> Cost_model.embsan_d_probe

(* --- Init routine ------------------------------------------------------------------ *)

let shadow_code_of_string = function
  | "heap" -> Shadow.Heap_redzone
  | "stack" -> Shadow.Stack_redzone
  | "global" -> Shadow.Global_redzone
  | "freed" -> Shadow.Freed
  | s -> invalid_arg ("unknown poison code " ^ s)

let apply_init_action t (a : Dsl.init_action) =
  match (a, t.kasan) with
  | Dsl.Poison { addr; size; code }, Some k ->
      Kasan.on_poison k ~addr ~size (shadow_code_of_string code)
  | Unpoison { addr; size }, Some k -> Kasan.on_unpoison k ~addr ~size
  | Alloc { ptr; size }, Some k -> Kasan.on_alloc k ~ptr ~size ~pc:0
  | Region { name = "global"; addr; size }, Some k ->
      Kasan.on_register_global k ~addr ~size
  | Region _, Some _ -> ()
  | (Poison _ | Unpoison _ | Alloc _ | Region _), None -> ()
  | Note _, _ -> ()

let on_ready t () =
  if not t.ready then begin
    t.ready <- true;
    List.iter (apply_init_action t) t.spec.Dsl.init;
    (* re-establish live allocations made during boot (EmbSan-D intercepts
       them before the heap-poison init action runs) *)
    match t.kasan with
    | Some k ->
        Hashtbl.iter
          (fun ptr (info : Kasan.alloc_info) ->
            if info.freed_pc = None then
              Shadow.unpoison t.shadow ~addr:ptr ~size:info.a_size)
          k.allocs
    | None -> ()
  end

(* --- Event dispatch ----------------------------------------------------------------- *)

let dispatch_access_checked t ~addr ~size ~is_write ~is_atomic ~pc ~hart =
  (match t.kasan with
  | Some k when Dsl.wants t.spec (if is_write then Api_spec.P_store else P_load) "kasan"
    ->
      Kasan.on_access k ~addr ~size ~is_write ~pc ~hart
  | Some _ | None -> ());
  match t.kcsan with
  | Some k
    when (not is_atomic)
         && Dsl.wants t.spec (if is_write then Api_spec.P_store else P_load) "kcsan"
    ->
      charge t
        (match t.mode with
        | C -> Cost_model.kcsan_host_check_c
        | D -> Cost_model.kcsan_host_check_d);
      Kcsan.on_access k t.machine ~addr ~size ~is_write ~pc ~hart
  | Some _ | None -> ()

let dispatch_access t ~addr ~size ~is_write ?(is_atomic = false) ~pc ~hart () =
  t.mem_events <- t.mem_events + 1;
  charge t (event_cost t);
  if not (pc_exempt t pc) then
    dispatch_access_checked t ~addr ~size ~is_write ~is_atomic ~pc ~hart

let install_mem_probes t =
  Probe.on_mem t.machine.probes (fun (ev : Probe.mem_event) ->
      if t.ready then
        dispatch_access t ~addr:ev.addr ~size:ev.size ~is_write:ev.is_write
          ~is_atomic:ev.is_atomic ~pc:ev.pc ~hart:ev.hart ())

let install_call_interception t =
  let allocs = Hashtbl.create 16 and frees = Hashtbl.create 16 in
  List.iter
    (fun (f : Dsl.func_sig) ->
      match f.f_kind with
      | `Alloc size_arg -> Hashtbl.replace allocs f.f_addr size_arg
      | `Free ptr_arg -> Hashtbl.replace frees f.f_addr ptr_arg)
    t.spec.Dsl.functions;
  if Hashtbl.length allocs > 0 || Hashtbl.length frees > 0 then begin
    Probe.on_call t.machine.probes (fun (ev : Probe.call_event) ->
        match Hashtbl.find_opt allocs ev.c_target with
        | Some size_arg ->
            t.intercepted_calls <- t.intercepted_calls + 1;
            charge t Cost_model.embsan_d_probe;
            let size = Cpu.get t.machine.harts.(ev.c_hart) Reg.args.(size_arg) in
            t.pending_allocs <-
              (ev.c_hart, ev.c_pc + Insn.size, size) :: t.pending_allocs
        | None -> (
            match Hashtbl.find_opt frees ev.c_target with
            | Some ptr_arg ->
                t.intercepted_calls <- t.intercepted_calls + 1;
                charge t Cost_model.embsan_d_probe;
                let ptr = Cpu.get t.machine.harts.(ev.c_hart) Reg.args.(ptr_arg) in
                (match t.kasan with
                | Some k -> Kasan.on_free k ~ptr ~pc:ev.c_pc ~hart:ev.c_hart
                | None -> ());
                (match t.kmemleak with
                | Some l -> Kmemleak.on_free l ~ptr
                | None -> ())
            | None -> ()));
    Probe.on_ret t.machine.probes (fun (ev : Probe.ret_event) ->
        match
          List.partition
            (fun (h, ra, _) -> h = ev.r_hart && ra = ev.r_target)
            t.pending_allocs
        with
        | (_, ra, size) :: _, rest ->
            t.pending_allocs <- rest;
            (* attribute the allocation to its call site, not to the
               allocator's return instruction *)
            let pc = ra - Insn.size in
            (match t.kasan with
            | Some k -> Kasan.on_alloc k ~ptr:ev.r_retval ~size ~pc
            | None -> ());
            (match t.kmemleak with
            | Some l ->
                Kmemleak.on_alloc l ~ptr:ev.r_retval ~size ~pc
                  ~now:t.machine.total_insns
            | None -> ())
        | [], _ -> ())
  end

let install_callout_traps t =
  let m = t.machine in
  List.iter
    (fun num ->
      Machine.set_trap_handler m num (fun _m cpu ->
          t.callouts <- t.callouts + 1;
          match Hypercall.decode_check num with
          | Some (is_write, size) ->
              dispatch_access t
                ~addr:(Cpu.get cpu Reg.a0)
                ~size ~is_write
                ~pc:(cpu.Cpu.pc - Insn.size)
                ~hart:cpu.Cpu.id ()
          | None -> assert false))
    [ 16; 17; 18; 19; 20; 21 ];
  let update num f =
    Machine.set_trap_handler m num (fun _m cpu ->
        t.callouts <- t.callouts + 1;
        charge t Cost_model.embsan_c_hypercall;
        f cpu)
  in
  (* the trap sits in the san_* glue called from the allocator, so walk two
     frames up to attribute the event to the kernel function itself *)
  update Hypercall.san_alloc (fun cpu ->
      let ptr = Cpu.get cpu Reg.a0 and size = Cpu.get cpu Reg.a1 in
      let pc = Unwind.caller_pc t.machine cpu ~depth:2 in
      (match t.kasan with
      | Some k -> Kasan.on_alloc k ~ptr ~size ~pc
      | None -> ());
      match t.kmemleak with
      | Some l -> Kmemleak.on_alloc l ~ptr ~size ~pc ~now:t.machine.total_insns
      | None -> ());
  update Hypercall.san_free (fun cpu ->
      let ptr = Cpu.get cpu Reg.a0 in
      (match t.kasan with
      | Some k ->
          (* the glue reports (ptr, size); the tracked size wins *)
          Kasan.on_free k ~ptr
            ~pc:(Unwind.caller_pc t.machine cpu ~depth:2)
            ~hart:cpu.Cpu.id
      | None -> ());
      match t.kmemleak with
      | Some l -> Kmemleak.on_free l ~ptr
      | None -> ());
  update Hypercall.san_global (fun cpu ->
      match t.kasan with
      | Some k ->
          Kasan.on_register_global k ~addr:(Cpu.get cpu Reg.a0)
            ~size:(Cpu.get cpu Reg.a1)
      | None -> ());
  update Hypercall.san_stack_poison (fun cpu ->
      match t.kasan with
      | Some k ->
          Kasan.on_stack_poison k ~addr:(Cpu.get cpu Reg.a0)
            ~size:(Cpu.get cpu Reg.a1)
      | None -> ());
  update Hypercall.san_stack_unpoison (fun cpu ->
      match t.kasan with
      | Some k ->
          Kasan.on_stack_unpoison k ~addr:(Cpu.get cpu Reg.a0)
            ~size:(Cpu.get cpu Reg.a1)
      | None -> ());
  update Hypercall.san_poison_region (fun cpu ->
      match t.kasan with
      | Some k ->
          Kasan.on_poison k ~addr:(Cpu.get cpu Reg.a0)
            ~size:(Cpu.get cpu Reg.a1) Shadow.Heap_redzone
      | None -> ())

(* --- Attachment ---------------------------------------------------------------------- *)

let symbolize_of_image (image : Image.t option) pc =
  match image with
  | None -> None
  | Some img ->
      Option.map (fun (s : Image.symbol) -> s.name) (Image.symbol_at img pc)

(** Attach the runtime to a machine per the spec.  [image] (optional,
    un-stripped) provides report symbolization. *)
let attach ~spec ~mode ?image ?(sink = Report.create_sink ())
    ?(kcsan_interval = 120) ?(kcsan_stall = 1200) (machine : Machine.t) =
  let shadow =
    Shadow.create ~ram_base:(Machine.ram_base machine)
      ~ram_size:(Machine.ram_size machine)
  in
  let symbolize = symbolize_of_image image in
  let with_kasan = List.mem "kasan" spec.Dsl.sanitizers in
  let with_kcsan = List.mem "kcsan" spec.Dsl.sanitizers in
  let kasan =
    if with_kasan then Some (Kasan.create ~shadow ~sink ~symbolize ())
    else None
  in
  let kcsan =
    if with_kcsan then
      Some
        (Kcsan.create ~interval:kcsan_interval ~stall_insns:kcsan_stall ~shadow
           ~sink ~symbolize ())
    else None
  in
  let kmemleak =
    if List.mem "kmemleak" spec.Dsl.sanitizers then
      Some (Kmemleak.create ~sink ~symbolize ())
    else None
  in
  let t =
    {
      spec;
      mode;
      machine;
      sink;
      shadow;
      kasan;
      kcsan;
      kmemleak;
      ready = false;
      pending_allocs = [];
      exempt_ranges =
        Array.of_list
          (List.map
             (fun (f : Dsl.func_sig) -> (f.f_addr, f.f_addr + f.f_size))
             spec.Dsl.functions
          @ List.map
              (fun (e : Dsl.exempt) -> (e.e_addr, e.e_addr + e.e_size))
              spec.Dsl.exempts);
      mem_events = 0;
      callouts = 0;
      intercepted_calls = 0;
    }
  in
  Services.install machine;
  (match mode with
  | C ->
      (* compile-time callouts: direct hypercall dispatch, no probes *)
      install_callout_traps t;
      (* C-mode state maintenance is live from boot; mark ready from boot *)
      t.ready <- true
  | D ->
      install_mem_probes t;
      install_call_interception t;
      machine.mailbox.on_ready <- on_ready t);
  t

(* --- Snapshot support --------------------------------------------------------- *)

type state = {
  r_shadow : Shadow.state;
  r_kasan : Kasan.state option;
  r_kcsan : Kcsan.state option;
  r_kmemleak : Kmemleak.state option;
  r_sink : Report.sink_state;
  r_ready : bool;
  r_pending_allocs : (int * int * int) list;
  r_mem_events : int;
  r_callouts : int;
  r_intercepted_calls : int;
}

(** Snapshot the runtime's host-side sanitizer state: shadow planes, KASAN
    allocation table and quarantine, KCSAN watchpoint/sampling state, the
    kmemleak live-block table and the report-dedup sink.  Probe wiring and
    trap handlers are structural (installed once by {!attach}) and are not
    part of the state. *)
let save t =
  {
    r_shadow = Shadow.save t.shadow;
    r_kasan = Option.map Kasan.save t.kasan;
    r_kcsan = Option.map Kcsan.save t.kcsan;
    r_kmemleak = Option.map Kmemleak.save t.kmemleak;
    r_sink = Report.save_sink t.sink;
    r_ready = t.ready;
    r_pending_allocs = t.pending_allocs;
    r_mem_events = t.mem_events;
    r_callouts = t.callouts;
    r_intercepted_calls = t.intercepted_calls;
  }

let restore t (s : state) =
  Shadow.restore t.shadow s.r_shadow;
  (match (t.kasan, s.r_kasan) with
  | Some k, Some ks -> Kasan.restore k ks
  | None, None -> ()
  | _ -> invalid_arg "Runtime.restore: kasan presence mismatch");
  (match (t.kcsan, s.r_kcsan) with
  | Some k, Some ks -> Kcsan.restore k ks
  | None, None -> ()
  | _ -> invalid_arg "Runtime.restore: kcsan presence mismatch");
  (match (t.kmemleak, s.r_kmemleak) with
  | Some l, Some ls -> Kmemleak.restore l ls
  | None, None -> ()
  | _ -> invalid_arg "Runtime.restore: kmemleak presence mismatch");
  Report.restore_sink t.sink s.r_sink;
  t.ready <- s.r_ready;
  t.pending_allocs <- s.r_pending_allocs;
  t.mem_events <- s.r_mem_events;
  t.callouts <- s.r_callouts;
  t.intercepted_calls <- s.r_intercepted_calls

let reports t = Report.unique_reports t.sink

(** Run the kmemleak scan now (typically after a test completes); returns
    the number of new leak reports. *)
let scan_leaks t =
  match t.kmemleak with
  | Some l -> Kmemleak.scan l ~now:t.machine.total_insns
  | None -> 0

let pp_stats fmt t =
  Fmt.pf fmt
    "%s: %d mem events, %d callouts, %d intercepted calls, %d unique reports"
    (mode_name t.mode) t.mem_events t.callouts t.intercepted_calls
    (Report.count t.sink)
