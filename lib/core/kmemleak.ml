(* Host-side kmemleak-style leak detector: the "third sanitizer" that
   demonstrates S5's adaptability claim.  It consumes only the allocator
   interception points the Distiller already knows (func_alloc/func_free),
   so plugging it in required a header describing its interface, this
   runtime, and nothing else.

   Detection is scan-based like the kernel's kmemleak: at a scan point
   (typically after a test completes), live allocations older than the
   grace window whose allocation site keeps accumulating live blocks are
   reported as leaks. *)

type alloc_rec = { l_size : int; l_pc : int; l_at : int (* insns at alloc *) }

type t = {
  sink : Report.sink;
  symbolize : int -> string option;
  live : (int, alloc_rec) Hashtbl.t; (* ptr -> record *)
  mutable allocs : int;
  mutable frees : int;
  grace_insns : int; (* blocks younger than this are not suspicious *)
  site_threshold : int; (* live blocks per allocation site to report *)
}

let create ?(grace_insns = 50_000) ?(site_threshold = 4) ~sink ~symbolize () =
  {
    sink;
    symbolize;
    live = Hashtbl.create 256;
    allocs = 0;
    frees = 0;
    grace_insns;
    site_threshold;
  }

(* --- Snapshot support -------------------------------------------------------- *)

(* [alloc_rec] is immutable, so the bindings can be shared. *)
type state = { s_live : (int * alloc_rec) list; s_allocs : int; s_frees : int }

let save t =
  {
    s_live = Hashtbl.fold (fun ptr r acc -> (ptr, r) :: acc) t.live [];
    s_allocs = t.allocs;
    s_frees = t.frees;
  }

let restore t (s : state) =
  Hashtbl.reset t.live;
  List.iter (fun (ptr, r) -> Hashtbl.replace t.live ptr r) s.s_live;
  t.allocs <- s.s_allocs;
  t.frees <- s.s_frees

let on_alloc t ~ptr ~size ~pc ~now =
  t.allocs <- t.allocs + 1;
  if ptr <> 0 then
    Hashtbl.replace t.live ptr { l_size = size; l_pc = pc; l_at = now }

let on_free t ~ptr =
  t.frees <- t.frees + 1;
  Hashtbl.remove t.live ptr

let live_blocks t = Hashtbl.length t.live

(** Scan for leaks: allocation sites holding [site_threshold]+ live blocks
    all older than the grace window.  Returns the number of new reports. *)
let scan t ~now =
  let sites : (int, int * alloc_rec) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ptr (r : alloc_rec) ->
      if now - r.l_at > t.grace_insns then
        let n, oldest =
          match Hashtbl.find_opt sites r.l_pc with
          | Some (n, oldest) -> (n, oldest)
          | None -> (0, r)
        in
        Hashtbl.replace sites r.l_pc
          ((n + 1), if r.l_at < oldest.l_at then r else oldest))
    t.live;
  let fresh = ref 0 in
  Hashtbl.iter
    (fun pc (n, oldest) ->
      if n >= t.site_threshold then
        let added =
          Report.add t.sink
            {
              kind = Report.Memory_leak;
              sanitizer = "kmemleak";
              addr = 0;
              size = oldest.l_size;
              is_write = false;
              pc;
              hart = 0;
              location = t.symbolize pc;
              detail =
                Printf.sprintf "%d live blocks from this site, oldest %d insns"
                  n (now - oldest.l_at);
            }
        in
        if added then incr fresh)
    sites;
  !fresh

(* --- Plugin ------------------------------------------------------------------ *)

module Plugin = struct
  let name = "kmemleak"
  let points = [ Api_spec.P_func_alloc; Api_spec.P_func_free ]

  type nonrec t = t

  let create (ctx : Sanitizer.ctx) =
    create ~sink:ctx.sink ~symbolize:ctx.symbolize ()

  (* never planned at P_load/P_store *)
  let access _ ~pc:_ ~addr:_ ~size:_ ~is_write:_ ~is_atomic:_ ~hart:_ = ()

  let event t = function
    | Sanitizer.Alloc { ptr; size; pc; now } -> on_alloc t ~ptr ~size ~pc ~now
    | Free { ptr; pc = _; hart = _ } -> on_free t ~ptr
    | Poison _ | Unpoison _ | Register_global _ | Stack_poison _
    | Stack_unpoison _ | Ready ->
        ()

  let scan t ~now = scan t ~now

  let checkpoint t =
    let s = save t in
    fun () -> restore t s

  let stats t =
    [ ("allocs", t.allocs); ("frees", t.frees); ("live", live_blocks t) ]
end

let plugin : Sanitizer.plugin = (module Plugin)
