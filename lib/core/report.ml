(* Sanitizer bug reports: structured records, deduplication and kernel-style
   pretty printing. *)

type bug_kind =
  | Oob_access
  | Use_after_free
  | Double_free
  | Invalid_free
  | Null_deref
  | Wild_access
  | Data_race
  | Memory_leak
  | Unaligned_access

let kind_name = function
  | Oob_access -> "out-of-bounds access"
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Invalid_free -> "invalid-free"
  | Null_deref -> "null-ptr-deref"
  | Wild_access -> "wild-memory-access"
  | Data_race -> "data-race"
  | Memory_leak -> "memory-leak"
  | Unaligned_access -> "unaligned-access"

type t = {
  kind : bug_kind;
  sanitizer : string; (* "kasan" | "kcsan" | "embsan" *)
  addr : int;
  size : int;
  is_write : bool;
  pc : int;
  hart : int;
  location : string option; (* symbolized function, when available *)
  detail : string; (* free-form: allocation info, racing pc, ... *)
}

(** Deduplication key: bug class at a location, like syzbot's crash titles. *)
let dedup_key r =
  Printf.sprintf "%s:%s" (kind_name r.kind)
    (match r.location with Some l -> l | None -> Printf.sprintf "pc_0x%x" r.pc)

let title r =
  Printf.sprintf "%s: %s in %s"
    (String.uppercase_ascii r.sanitizer)
    (kind_name r.kind)
    (match r.location with Some l -> l | None -> Printf.sprintf "0x%08x" r.pc)

let pp fmt r =
  Fmt.pf fmt
    "@[<v>==================================================================@,\
     BUG: %s@,\
     %s of size %d at addr 0x%08x by hart %d pc 0x%08x@,\
     %s@,\
     ==================================================================@]"
    (title r)
    (if r.is_write then "Write" else "Read")
    r.size r.addr r.hart r.pc r.detail

(* --- Collection sink with dedup ------------------------------------------------ *)

type sink = {
  mutable reports : t list; (* newest first *)
  seen : (string, int) Hashtbl.t; (* dedup key -> hit count *)
  mutable limit : int;
}

let create_sink ?(limit = 10_000) () =
  { reports = []; seen = Hashtbl.create 64; limit }

(** Add a report; returns [true] if it is a new (non-duplicate) bug. *)
let add sink r =
  let key = dedup_key r in
  match Hashtbl.find_opt sink.seen key with
  | Some n ->
      Hashtbl.replace sink.seen key (n + 1);
      false
  | None ->
      Hashtbl.replace sink.seen key 1;
      if List.length sink.reports < sink.limit then
        sink.reports <- r :: sink.reports;
      true

let unique_reports sink = List.rev sink.reports
let count sink = Hashtbl.length sink.seen

(** Total report events including duplicates of already-seen bugs. *)
let total_hits sink = Hashtbl.fold (fun _ n acc -> acc + n) sink.seen 0
let hits sink key = Option.value ~default:0 (Hashtbl.find_opt sink.seen key)
let clear sink =
  sink.reports <- [];
  Hashtbl.reset sink.seen

(* --- Snapshot support -------------------------------------------------------- *)

(* Reports are immutable records, so the lists can be shared; the dedup
   table is flattened to bindings. *)
type sink_state = {
  ss_reports : t list;
  ss_seen : (string * int) list;
  ss_limit : int;
}

let save_sink sink =
  {
    ss_reports = sink.reports;
    ss_seen = Hashtbl.fold (fun k n acc -> (k, n) :: acc) sink.seen [];
    ss_limit = sink.limit;
  }

let restore_sink sink (s : sink_state) =
  sink.reports <- s.ss_reports;
  Hashtbl.reset sink.seen;
  List.iter (fun (k, n) -> Hashtbl.replace sink.seen k n) s.ss_seen;
  sink.limit <- s.ss_limit
