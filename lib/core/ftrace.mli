(** FastTrack happens-before race detector (EmbedSanitizer direction) —
    precise vector-clock race detection as a pure {!Sanitizer} plugin.
    Lives entirely outside the Common Sanitizer Runtime: an
    {!Api_spec.ftrace} interface header plus this {!Sanitizer.S}
    implementation; no runtime/machine/probe edits.  Synchronization
    edges arrive through the guest's {!Embsan_emu.Hypercall.san_sync}
    trap, whose handler the plugin installs itself via the public
    [Machine.set_trap_handler] API. *)

(** Vector clocks over at most 8 harts, exposed so the algebraic laws the
    detector relies on (join upper bound / associativity / idempotence,
    pointwise happens-before order, epoch ordering) are testable. *)
module Vc : sig
  type t = int array

  val create : int -> t
  val copy : t -> t

  (** In-place pointwise maximum: [join a b] makes [a := a ⊔ b]. *)
  val join : t -> t -> unit

  (** Pointwise order: every component of [a] is [<=] that of [b]. *)
  val leq : t -> t -> bool

  (** Does epoch [e] happen before (or equal) the thread clock [v]? *)
  val hb_epoch : int -> t -> bool
end

(** Epoch packing: [(clock lsl 3) lor hart]; clock 0 reserved for "no
    access recorded". *)

val epoch : clock:int -> hart:int -> int

val epoch_hart : int -> int
val epoch_clock : int -> int

type t

val create :
  sink:Report.sink ->
  symbolize:(int -> string option) ->
  base:int ->
  limit:int ->
  harts:int ->
  unit ->
  t

(** The FastTrack read/write rules over the flat last-access shadow;
    marked ([is_atomic]) accesses and known sync words are excluded. *)
val on_access :
  t ->
  pc:int ->
  addr:int ->
  size:int ->
  is_write:bool ->
  is_atomic:bool ->
  hart:int ->
  unit

(** A {!Embsan_emu.Hypercall.san_sync} edge: op 0 = acquire, 1 = release,
    2 = irq_off, 3 = irq_on (the IRQ pseudo-lock). *)
val on_sync : t -> hart:int -> op:int -> addr:int -> unit

type state

val save : t -> state
val restore : t -> state -> unit

val plugin : Sanitizer.plugin

(** Register the plugin under ["ftrace"] (idempotent). *)
val register : unit -> unit
