(* EmbSan top-level API: the Pre-testing Probing Phase (S3.4) and the
   Testing Phase (S3.5) in two calls:

     let session = Embsan.prepare ~sanitizers ~firmware () in
     let rt = Embsan.attach session machine in
     ... run fuzzing / reproducers ...
     Embsan.reports rt

   [prepare] distills the chosen reference sanitizers' interfaces, probes
   the firmware per its category and compiles the merged DSL
   specification.  [attach] compiles that specification into live hooks on
   an emulator instance. *)

open Embsan_isa

type sanitizers = {
  kasan : bool;
  kcsan : bool;
  kmemleak : bool;
  ualign : bool;
  ftrace : bool;
}

let kasan_only =
  { kasan = true; kcsan = false; kmemleak = false; ualign = false; ftrace = false }

let kcsan_only =
  { kasan = false; kcsan = true; kmemleak = false; ualign = false; ftrace = false }

let ftrace_only =
  { kasan = false; kcsan = false; kmemleak = false; ualign = false; ftrace = true }

let all_sanitizers =
  { kasan = true; kcsan = true; kmemleak = false; ualign = false; ftrace = false }

let with_kmemleak s = { s with kmemleak = true }
let with_ualign s = { s with ualign = true }
let with_ftrace s = { s with ftrace = true }

(** Firmware category, deciding the Prober mode (S3.2) and the runtime's
    instrumentation mode. *)
type firmware =
  | Instrumented of Image.t (* open source, compile-time callouts: EmbSan-C *)
  | Source of Image.t * Prober.hints (* open source, symbols only: EmbSan-D *)
  | Binary of Image.t * Prober.hints (* closed source, stripped: EmbSan-D *)

type session = {
  s_sanitizers : sanitizers;
  s_spec : Dsl.spec;
  s_platform : Prober.platform;
  s_mode : Runtime.inst_mode;
  s_image : Image.t; (* as supplied (stripped for Binary) *)
}

let image_of_firmware = function
  | Instrumented i -> i
  | Source (i, _) -> i
  | Binary (i, _) -> Image.strip i

(** Pre-testing probing phase. *)
let prepare ?(ram_base = 0x0001_0000) ?(ram_size = 4 * 1024 * 1024)
    ?(boot_budget = 20_000_000) ~sanitizers ~firmware () =
  let headers =
    (if sanitizers.kasan then [ Api_spec.kasan () ] else [])
    @ (if sanitizers.kcsan then [ Api_spec.kcsan () ] else [])
    @ (if sanitizers.kmemleak then [ Api_spec.kmemleak () ] else [])
    @ (if sanitizers.ualign then begin
         (* a non-builtin plugin must be in the registry before attach *)
         Ualign.register ();
         [ Api_spec.ualign () ]
       end
       else [])
    @
    if sanitizers.ftrace then begin
      Ftrace.register ();
      [ Api_spec.ftrace () ]
    end
    else []
  in
  if headers = [] then invalid_arg "Embsan.prepare: no sanitizer selected";
  let distilled = Distiller.distill headers in
  let image = image_of_firmware firmware in
  let platform, mode =
    match firmware with
    | Instrumented img ->
        (Prober.probe_instrumented ~ram_base ~ram_size ~boot_budget img, Runtime.C)
    | Source (img, hints) ->
        (Prober.probe_symbols ~ram_base ~ram_size ~boot_budget ~hints img, Runtime.D)
    | Binary (img, hints) ->
        ( Prober.probe_binary ~ram_base ~ram_size ~boot_budget ~hints
            (Image.strip img),
          Runtime.D )
  in
  let spec = Prober.apply_to_spec distilled platform in
  {
    s_sanitizers = sanitizers;
    s_spec = spec;
    s_platform = platform;
    s_mode = mode;
    s_image = image;
  }

(** The session's full specification in the textual DSL. *)
let spec_text session = Dsl.to_string session.s_spec

(** Testing phase: hook a fresh machine running the session's firmware.
    [kcsan_interval]/[kcsan_stall] are sugar for the ["kcsan.interval"] /
    ["kcsan.stall"] tuning keys. *)
let attach ?sink ?kcsan_interval ?kcsan_stall session machine =
  let tuning =
    (match kcsan_interval with
    | Some v -> [ ("kcsan.interval", v) ]
    | None -> [])
    @ match kcsan_stall with Some v -> [ ("kcsan.stall", v) ] | None -> []
  in
  Runtime.attach ~spec:session.s_spec ~mode:session.s_mode
    ~image:session.s_image ?sink ~tuning machine

(** Convenience: create a machine for this session's firmware and boot it. *)
let make_machine ?(harts = 2) ?seed session =
  let m =
    Embsan_emu.Machine.create ~harts ~arch:session.s_image.Image.arch
      ~ram_base:session.s_platform.Prober.p_ram_base
      ~ram_size:session.s_platform.Prober.p_ram_size ?seed ()
  in
  Embsan_emu.Machine.load_image m session.s_image;
  Embsan_emu.Machine.boot m;
  m

let reports (rt : Runtime.t) = Runtime.reports rt
