(* Embedded Platform Configuration Prober (S3.2).

   Produces the platform description and initial setup routine, in the DSL,
   for the three firmware categories:

   1. [probe_instrumented] - open source with compile-time instrumentation:
      dry-run the trap-instrumented firmware against the dummy sanitizer
      library; every sanitizer action before the ready-to-run doorbell is
      recorded and compiled into the DSL init routine.
   2. [probe_symbols] - open source without instrumentation: identify the
      allocator interception functions and the heap region from the symbol
      table (with optional domain-specific hints), and dry-run to confirm
      the firmware boots and to locate the ready point.
   3. [probe_binary] - closed-source, stripped binary: scan decoded code
      for function prologues, dry-run with call/return probes, and infer
      allocator candidates from dynamic behavior; tester hints can override
      ("human intervention", S3.2). *)

open Embsan_isa
open Embsan_emu

type platform = {
  p_arch : Arch.t;
  p_entry : int;
  p_ram_base : int;
  p_ram_size : int;
  p_functions : Dsl.func_sig list;
  p_exempts : Dsl.exempt list;
  p_init : Dsl.init_action list;
  p_ready_insns : int; (* dry-run instructions until ready-to-run *)
  p_notes : string list;
}

type hints = {
  h_alloc_names : string list; (* extra allocator entry names *)
  h_free_names : string list;
  h_exempt_prefixes : string list; (* allocator-internal helper name prefixes *)
  h_heap_symbol : string option;
  h_heap_region : (int * int) option; (* absolute override *)
  h_alloc_addrs : (int * int) list; (* binary mode: (addr, size_arg) *)
  h_free_addrs : (int * int) list; (* binary mode: (addr, ptr_arg) *)
}

let no_hints =
  {
    h_alloc_names = [];
    h_free_names = [];
    h_exempt_prefixes = [];
    h_heap_symbol = None;
    h_heap_region = None;
    h_alloc_addrs = [];
    h_free_addrs = [];
  }

(* Default interception-function name patterns across the embedded OSs we
   target ("various Xalloc()", S3.2). *)
let default_alloc_names =
  [ "kmalloc"; "xmalloc"; "malloc"; "pvPortMalloc"; "LOS_MemAlloc"; "memPartAlloc" ]

let default_free_names =
  [ "kfree"; "xfree"; "free"; "vPortFree"; "LOS_MemFree"; "memPartFree" ]

let default_heap_symbols = [ "heap_pool"; "g_heap"; "ucHeap"; "mem_pool" ]

(* Allocator-internal helper prefixes: accesses from these functions are
   legal metadata traffic (the paper's "domain-specific prior knowledge"). *)
let default_exempt_prefixes =
  [ "slab_"; "heap4_"; "los_"; "vx_"; "kheap_"; "mem_part_" ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let find_exempts_by_prefix (image : Image.t) ~prefixes =
  List.filter_map
    (fun (s : Image.symbol) ->
      if
        s.kind = Image.Func
        && List.exists (fun prefix -> starts_with ~prefix s.name) prefixes
      then Some { Dsl.e_name = s.name; e_addr = s.addr; e_size = s.size }
      else None)
    image.symbols

exception Probe_error of string

let errf fmt = Format.kasprintf (fun s -> raise (Probe_error s)) fmt

let boot_machine ?(harts = 2) ~ram_base ~ram_size (image : Image.t) =
  let m = Machine.create ~harts ~arch:image.arch ~ram_base ~ram_size () in
  Machine.load_image m image;
  Machine.boot m;
  m

let builtin_platform_traps m =
  (* platform services every firmware may use during boot *)
  Machine.set_trap_handler m Hypercall.hart_start (fun m cpu ->
      let id = Cpu.get cpu Reg.a0
      and pc = Cpu.get cpu Reg.a1
      and sp = Cpu.get cpu Reg.a2 in
      if id > 0 && id < Array.length m.harts then Machine.start_hart m id ~pc ~sp);
  Machine.set_trap_handler m Hypercall.current_hart (fun _m cpu ->
      Cpu.set cpu Reg.a0 cpu.Cpu.id);
  Machine.set_trap_handler m Hypercall.exit_ (fun _m cpu ->
      raise (Fault.Halted (Cpu.get cpu Reg.a0)));
  Machine.set_trap_handler m Hypercall.kcov (fun _ _ -> ());
  (* interrupt-stub announcement / end-of-interrupt: recorded and inert
     respectively during the probing dry run (no controller is armed) *)
  Machine.set_trap_handler m Hypercall.irq_register (fun m cpu ->
      m.Machine.irq_entry <- Cpu.get cpu Reg.a0);
  Machine.set_trap_handler m Hypercall.irq_eoi (fun _ _ -> ())

(* --- Mode 1: compile-time instrumented firmware ------------------------------- *)

let probe_instrumented ?(ram_base = 0x0001_0000) ?(ram_size = 4 * 1024 * 1024)
    ?(boot_budget = 20_000_000) (image : Image.t) =
  let m = boot_machine ~ram_base ~ram_size image in
  builtin_platform_traps m;
  let actions = ref [] in
  let record a = actions := a :: !actions in
  (* access-check callouts, and sync-edge announcements (san_sync): inert
     during the dry run — a sanitizer plugin may claim them at attach *)
  let ignore_checks = [ 16; 17; 18; 19; 20; 21; Hypercall.san_sync ] in
  List.iter
    (fun n -> Machine.set_trap_handler m n (fun _ _ -> ()))
    ignore_checks;
  Machine.set_trap_handler m Hypercall.san_global (fun _m cpu ->
      record
        (Dsl.Region
           {
             name = "global";
             addr = Cpu.get cpu Reg.a0;
             size = Cpu.get cpu Reg.a1;
           }));
  Machine.set_trap_handler m Hypercall.san_stack_poison (fun _m cpu ->
      record
        (Dsl.Poison
           { addr = Cpu.get cpu Reg.a0; size = Cpu.get cpu Reg.a1; code = "stack" }));
  Machine.set_trap_handler m Hypercall.san_stack_unpoison (fun _m cpu ->
      record (Dsl.Unpoison { addr = Cpu.get cpu Reg.a0; size = Cpu.get cpu Reg.a1 }));
  Machine.set_trap_handler m Hypercall.san_poison_region (fun _m cpu ->
      record
        (Dsl.Poison
           { addr = Cpu.get cpu Reg.a0; size = Cpu.get cpu Reg.a1; code = "heap" }));
  Machine.set_trap_handler m Hypercall.san_alloc (fun _m cpu ->
      record (Dsl.Alloc { ptr = Cpu.get cpu Reg.a0; size = Cpu.get cpu Reg.a1 }));
  Machine.set_trap_handler m Hypercall.san_free (fun _m cpu ->
      record
        (Dsl.Poison
           { addr = Cpu.get cpu Reg.a0; size = Cpu.get cpu Reg.a1; code = "freed" }));
  (* heap-poison callouts arrive as stack_poison traps from the glue; the
     distinction is in the recorded region sizes - keep them as-is *)
  (match Machine.run_until_ready m ~max_insns:boot_budget with
  | None -> ()
  | Some stop ->
      errf "instrumented dry-run did not reach ready: %a" Machine.pp_stop stop);
  {
    p_arch = image.arch;
    p_entry = image.entry;
    p_ram_base = ram_base;
    p_ram_size = ram_size;
    p_functions = [];
    p_exempts = [];
    p_init = List.rev !actions;
    p_ready_insns = m.total_insns;
    p_notes = [ "mode=instrumented"; "init routine recorded from dry run" ];
  }

(* --- Mode 2: source / symbols available ----------------------------------------- *)

let find_functions_by_name (image : Image.t) ~alloc_names ~free_names =
  List.filter_map
    (fun (s : Image.symbol) ->
      if s.kind <> Image.Func then None
      else if List.mem s.name alloc_names then
        Some { Dsl.f_name = s.name; f_addr = s.addr; f_size = s.size; f_kind = `Alloc 0 }
      else if List.mem s.name free_names then
        Some { Dsl.f_name = s.name; f_addr = s.addr; f_size = s.size; f_kind = `Free 0 }
      else None)
    image.symbols

let find_heap_region (image : Image.t) hints =
  match hints.h_heap_region with
  | Some r -> Some r
  | None ->
      let candidates =
        match hints.h_heap_symbol with
        | Some s -> [ s ]
        | None -> default_heap_symbols
      in
      List.find_map
        (fun name ->
          match Image.find_symbol image name with
          | Some s -> Some (s.addr, s.size)
          | None -> None)
        candidates

let probe_symbols ?(ram_base = 0x0001_0000) ?(ram_size = 4 * 1024 * 1024)
    ?(boot_budget = 20_000_000) ?(hints = no_hints) (image : Image.t) =
  if Image.is_stripped image then
    errf "probe_symbols requires a symbol table (use probe_binary)";
  let functions =
    find_functions_by_name image
      ~alloc_names:(hints.h_alloc_names @ default_alloc_names)
      ~free_names:(hints.h_free_names @ default_free_names)
  in
  let has_alloc =
    List.exists
      (fun f -> match f.Dsl.f_kind with `Alloc _ -> true | `Free _ -> false)
      functions
  in
  let heap = find_heap_region image hints in
  let exempts =
    find_exempts_by_prefix image
      ~prefixes:(hints.h_exempt_prefixes @ default_exempt_prefixes)
  in
  let m = boot_machine ~ram_base ~ram_size image in
  builtin_platform_traps m;
  (match Machine.run_until_ready m ~max_insns:boot_budget with
  | None -> ()
  | Some stop -> errf "dry-run did not reach ready: %a" Machine.pp_stop stop);
  let init =
    match (heap, has_alloc) with
    | Some (addr, size), true ->
        [
          Dsl.Region { name = "heap"; addr; size };
          Dsl.Poison { addr; size; code = "heap" };
        ]
    | None, true -> [ Dsl.Note "heap region unknown: slab OOB coverage reduced" ]
    | _, false -> [ Dsl.Note "no allocator entry point found" ]
  in
  {
    p_arch = image.arch;
    p_entry = image.entry;
    p_ram_base = ram_base;
    p_ram_size = ram_size;
    p_functions = functions;
    p_exempts = exempts;
    p_init = init;
    p_ready_insns = m.total_insns;
    p_notes = [ "mode=symbols" ];
  }

(* --- Mode 3: closed-source binary ------------------------------------------------- *)

(* Function entries: an instruction that grows the stack followed within a
   few slots by a store of ra - our ABI's prologue shape, and a realistic
   binary-analysis heuristic. *)
let scan_prologues (image : Image.t) =
  match Image.section image "text" with
  | None -> []
  | Some sec ->
      let insns =
        try Codec.decode_all image.arch ~base:sec.base sec.data
        with Codec.Decode_error _ -> []
      in
      let arr = Array.of_list insns in
      let entries = ref [] in
      Array.iteri
        (fun i (addr, insn) ->
          match insn with
          | Insn.Alui (Add, rd, rs1, imm)
            when Reg.equal rd Reg.sp && Reg.equal rs1 Reg.sp && imm < 0 ->
              let is_ra_store j =
                if i + j >= Array.length arr then false
                else
                  match snd arr.(i + j) with
                  | Insn.Store (W32, base, src, _)
                    when Reg.equal base Reg.sp && Reg.equal src Reg.ra ->
                      true
                  | _ -> false
              in
              if is_ra_store 1 || is_ra_store 2 then entries := addr :: !entries
          | _ -> ())
        arr;
      List.rev !entries

(* one observed call to a recognized function entry *)
type call_record = {
  cr_target : int;
  cr_arg0 : int;
  cr_parent : int option; (* innermost active recognized call on this hart *)
  mutable cr_retval : int option;
}

(* Dry-run with call/return probes and infer allocator-shaped functions:
   boot-time calls with small first arguments returning distinct in-RAM
   pointers are allocators; functions called (outside allocator internals)
   with a previously returned pointer are frees.  Call-parent tracking
   excludes the allocator's internal helpers, which otherwise look exactly
   like frees (they receive the fresh pointer as an argument). *)
let probe_binary ?(ram_base = 0x0001_0000) ?(ram_size = 4 * 1024 * 1024)
    ?(boot_budget = 20_000_000) ?(hints = no_hints) (image : Image.t) =
  let entries = scan_prologues image in
  let m = boot_machine ~ram_base ~ram_size image in
  builtin_platform_traps m;
  let records : call_record list ref = ref [] in
  let pending : (int * int * call_record) list ref = ref [] in
  (* (hart, return addr, record); head = innermost *)
  let entry_set = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace entry_set a ()) entries;
  Probe.on_call m.probes (fun ev ->
      if Hashtbl.mem entry_set ev.c_target && List.length !records < 100_000
      then begin
        let parent =
          List.find_map
            (fun (h, _, r) -> if h = ev.c_hart then Some r.cr_target else None)
            !pending
        in
        let r =
          {
            cr_target = ev.c_target;
            cr_arg0 = Cpu.get m.harts.(ev.c_hart) Reg.a0;
            cr_parent = parent;
            cr_retval = None;
          }
        in
        records := r :: !records;
        pending := (ev.c_hart, ev.c_pc + Insn.size, r) :: !pending
      end);
  Probe.on_ret m.probes (fun ev ->
      match
        List.partition
          (fun (h, ra, _) -> h = ev.r_hart && ra = ev.r_target)
          !pending
      with
      | (_, _, r) :: _, rest ->
          pending := rest;
          r.cr_retval <- Some ev.r_retval
      | [], _ -> ());
  (match Machine.run_until_ready m ~max_insns:boot_budget with
  | None -> ()
  | Some stop -> errf "binary dry-run did not reach ready: %a" Machine.pp_stop stop);
  let records = List.rev !records in
  let in_ram a = a >= ram_base && a < ram_base + ram_size in
  let distinct l = List.sort_uniq compare l in
  let targets = distinct (List.map (fun r -> r.cr_target) records) in
  let calls_of t = List.filter (fun r -> r.cr_target = t) records in
  let alloc_candidates =
    List.filter_map
      (fun t ->
        let calls = calls_of t in
        let rets = distinct (List.filter_map (fun r -> r.cr_retval) calls) in
        if
          List.length calls >= 2
          && List.length rets >= 2
          && List.for_all in_ram rets
          && List.for_all (fun r -> r.cr_arg0 > 0 && r.cr_arg0 < 0x10000) calls
        then Some (t, rets)
        else None)
      targets
  in
  let alloc_addrs = List.map fst alloc_candidates in
  let all_rets = List.concat_map snd alloc_candidates in
  (* first pass: called with an allocated pointer, never from inside an
     allocator *)
  let f0 =
    List.filter
      (fun t ->
        (not (List.mem t alloc_addrs))
        && List.exists
             (fun r ->
               List.mem r.cr_arg0 all_rets
               && not
                    (match r.cr_parent with
                    | Some p -> List.mem p alloc_addrs
                    | None -> false))
             (calls_of t))
      targets
  in
  (* second pass: drop helpers only ever invoked from inside another free
     candidate (e.g. the free routine's internal callees) *)
  let free_candidates =
    List.filter
      (fun t ->
        List.exists
          (fun r ->
            match r.cr_parent with
            | Some p -> not (List.mem p f0)
            | None -> true)
          (calls_of t))
      f0
  in
  (* function extent estimate: up to the next discovered prologue *)
  let sorted_entries = List.sort compare entries in
  let fn_size addr =
    let rec next = function
      | [] -> 512
      | e :: rest -> if e > addr then e - addr else next rest
    in
    min 4096 (next sorted_entries)
  in
  let functions =
    List.map
      (fun (addr, size_arg) ->
        {
          Dsl.f_name = Printf.sprintf "sub_%08x" addr;
          f_addr = addr;
          f_size = fn_size addr;
          f_kind = `Alloc size_arg;
        })
      (hints.h_alloc_addrs
      @ List.map (fun a -> (a, 0)) alloc_addrs)
    @ List.map
        (fun (addr, ptr_arg) ->
          {
            Dsl.f_name = Printf.sprintf "sub_%08x" addr;
            f_addr = addr;
            f_size = fn_size addr;
            f_kind = `Free ptr_arg;
          })
        (hints.h_free_addrs @ List.map (fun a -> (a, 0)) free_candidates)
  in
  let heap =
    match hints.h_heap_region with
    | Some r -> Some r
    | None -> (
        match distinct all_rets with
        | [] -> None
        | rets ->
            (* the allocator's arena starts at the first returned chunk;
               widen past the last observed chunk to cover later growth *)
            let lo = List.fold_left min max_int rets in
            let hi = List.fold_left max 0 rets in
            Some (lo, hi + 4096 - lo))
  in
  let candidate_addrs =
    alloc_addrs @ free_candidates
    @ List.map fst hints.h_alloc_addrs
    @ List.map fst hints.h_free_addrs
  in
  (* helpers invoked from inside allocator candidates handle metadata *)
  let exempts =
    List.filter_map
      (fun t ->
        if
          (not (List.mem t candidate_addrs))
          && List.exists
               (fun r ->
                 match r.cr_parent with
                 | Some p -> List.mem p candidate_addrs
                 | None -> false)
               (calls_of t)
        then
          Some
            {
              Dsl.e_name = Printf.sprintf "sub_%08x" t;
              e_addr = t;
              e_size = fn_size t;
            }
        else None)
      targets
  in
  let init =
    (match heap with
    | Some (addr, size) ->
        [
          Dsl.Region { name = "heap"; addr; size };
          Dsl.Poison { addr; size; code = "heap" };
        ]
    | None -> [])
    @ [ Dsl.Note "mode=binary: allocators inferred dynamically" ]
  in
  {
    p_arch = image.arch;
    p_entry = image.entry;
    p_ram_base = ram_base;
    p_ram_size = ram_size;
    p_functions = functions;
    p_exempts = exempts;
    p_init = init;
    p_ready_insns = m.total_insns;
    p_notes =
      [
        Printf.sprintf "mode=binary prologues=%d" (List.length entries);
        Printf.sprintf "alloc_candidates=%d free_candidates=%d"
          (List.length alloc_candidates)
          (List.length free_candidates);
      ];
  }

(** Fold a probed platform into a distilled DSL spec. *)
let apply_to_spec (spec : Dsl.spec) platform =
  {
    spec with
    Dsl.arch = Some platform.p_arch;
    functions = spec.Dsl.functions @ platform.p_functions;
    exempts = spec.Dsl.exempts @ platform.p_exempts;
    init = spec.Dsl.init @ platform.p_init;
  }
