(** Sanitizer plugin architecture: the typed event vocabulary shared by
    both instrumentation backends, the first-class-module plugin
    interface, and the registry keyed by DSL sanitizer name.  The Common
    Sanitizer Runtime compiles a DSL spec into flat per-interception-point
    arrays of plugin handlers; adding a sanitizer is a module implementing
    {!S} plus an {!Api_spec} header (see {!Ualign}) — no runtime edits. *)

(** Cold-path events.  Access checks are the hot path and dispatch through
    {!access_fn} closures instead, keeping memory events allocation-free. *)
type event =
  | Alloc of { ptr : int; size : int; pc : int; now : int }
      (** an intercepted allocator returned [ptr] ([now] = retired insns) *)
  | Free of { ptr : int; pc : int; hart : int }
  | Poison of { addr : int; size : int; code : Shadow.code }
  | Unpoison of { addr : int; size : int }
  | Register_global of { addr : int; size : int }
  | Stack_poison of { addr : int; size : int }
  | Stack_unpoison of { addr : int; size : int }
  | Ready  (** firmware signalled readiness (after init-routine replay) *)

val event_name : event -> string

(** Hot-path access check: one indirect call per plugin per memory event,
    no allocation. *)
type access_fn =
  pc:int ->
  addr:int ->
  size:int ->
  is_write:bool ->
  is_atomic:bool ->
  hart:int ->
  unit

type mode = [ `C | `D ]

(** Everything a plugin may need at creation time.  [shadow] is the
    unified shadow-plane resource shared across plugins; [tuning] carries
    per-plugin knobs (e.g. ["kcsan.interval"]). *)
type ctx = {
  machine : Embsan_emu.Machine.t;
  mode : mode;
  shadow : Shadow.t;
  sink : Report.sink;
  symbolize : int -> string option;
  tuning : (string * int) list;
}

(** [tuned ctx key ~default] looks [key] up in [ctx.tuning]. *)
val tuned : ctx -> string -> default:int -> int

module type S = sig
  val name : string
  (** DSL sanitizer name (registry key). *)

  val points : Api_spec.point list
  (** Interception points this plugin subscribes to. *)

  type t

  val create : ctx -> t

  val access : t -> access_fn
  (** Hot-path handler; evaluated once at plan-compile time.  Only
      meaningful when [points] includes P_load or P_store. *)

  val event : t -> event -> unit
  (** Cold-path handler; plugins ignore events they do not care about. *)

  val scan : t -> now:int -> int
  (** On-demand detector pass (kmemleak-style); returns new reports. *)

  val checkpoint : t -> unit -> unit
  (** Capture mutable state; the returned restore thunk must survive
      repeated invocation. *)

  val stats : t -> (string * int) list
end

type plugin = (module S)

val name : plugin -> string
val supports : plugin -> Api_spec.point -> bool

(** A created plugin instance (existentially packed). *)
type instance

val instantiate : plugin -> ctx -> instance
val instance_name : instance -> string
val instance_points : instance -> Api_spec.point list
val access : instance -> access_fn
val event : instance -> event -> unit
val scan : instance -> now:int -> int
val checkpoint : instance -> unit -> unit
val stats : instance -> (string * int) list

(** {2 Registry} *)

(** Register (or replace) a plugin under its [S.name]. *)
val register : plugin -> unit

val find : string -> plugin option

(** Registered names, sorted. *)
val registered : unit -> string list
