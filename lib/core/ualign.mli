(** UBSAN-style unaligned-access detector — the plugin architecture's
    drop-in proof.  Lives entirely outside the Common Sanitizer Runtime:
    an {!Api_spec.ualign} interface header plus this {!Sanitizer.S}
    implementation; no runtime/machine/probe edits. *)

type t = {
  sink : Report.sink;
  symbolize : int -> string option;
  mutable checks : int;
  mutable unaligned : int;
}

val create :
  sink:Report.sink -> symbolize:(int -> string option) -> unit -> t

(** Report a 2- or 4-byte access whose address is not a multiple of its
    size ([Report.Unaligned_access]). *)
val on_access :
  t -> addr:int -> size:int -> is_write:bool -> pc:int -> hart:int -> unit

type state

val save : t -> state
val restore : t -> state -> unit

val plugin : Sanitizer.plugin

(** Register the plugin under ["ualign"] (idempotent). *)
val register : unit -> unit
