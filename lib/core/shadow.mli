(** Unified host-side shadow memory (paper section 3.3): one byte of KASAN
    state per 8-byte granule of guest RAM using the kernel encoding, plus a
    parallel per-granule plane used by the KCSAN functionality. *)

type code =
  | Addressable
  | Partial of int  (** first [k] bytes of the granule are addressable *)
  | Heap_redzone
  | Stack_redzone
  | Global_redzone
  | Freed

(** Smart constructor for [Partial]: raises [Invalid_argument] unless
    [k] is in 1..7 (0 is a redzone's business, 8 is [Addressable]). *)
val partial : int -> code

(** Raises [Invalid_argument] on [Partial k] with [k] outside 1..7 — the
    encoding would otherwise alias to a different code and break the
    [code_of_byte] round-trip. *)
val byte_of_code : code -> int

(** Inverse of {!byte_of_code}; raises [Invalid_argument] on unknown bytes. *)
val code_of_byte : int -> code

val code_name : code -> string

type t = {
  base : int;
  limit : int;
  kasan : Bytes.t;
  kcsan_epoch : Bytes.t;
}

val granule : int

val create : ram_base:int -> ram_size:int -> t

(** Is [addr] inside the shadowed guest RAM? *)
val covers : t -> int -> bool

(** Shadow state of the granule containing [addr]. *)
val get : t -> int -> code

(** Poison [addr, addr+size) with [code]; granule-rounded outward on the
    tail like the kernel implementation. *)
val poison : t -> addr:int -> size:int -> code -> unit

(** Mark [addr, addr+size) addressable; a non-multiple-of-8 tail becomes a
    partial granule. *)
val unpoison : t -> addr:int -> size:int -> unit

type verdict = Valid | Invalid of code

(** Validate an access of [size] (1/2/4) bytes at [addr]; accesses outside
    guest RAM are [Valid] (MMIO and fault logic own them). *)
val check : t -> addr:int -> size:int -> verdict

(** Bump and return the KCSAN sampling counter of [addr]'s granule. *)
val kcsan_bump : t -> int -> int

(** Snapshot of both shadow planes (deep copy); a saved [state] is immune
    to later mutation of the live shadow and survives repeated restores. *)
type state

val save : t -> state
val restore : t -> state -> unit
