(** Sanitizer interface specifications: the Distiller's input (the
    "interface header files" of paper section 3.1), shipped in a small
    declarative header format and parsed here. *)

type role = Check | Update

type point =
  | P_load
  | P_store
  | P_func_alloc  (** allocator-entry interception (various Xalloc()) *)
  | P_func_free
  | P_global_register
  | P_stack_poison
  | P_stack_unpoison

val point_name : point -> string
val point_of_name : string -> point option

type api = {
  role : role;
  point : point;
  args : string list;  (** argument names, e.g. [["addr"; "size"]] *)
  operation : string;  (** runtime operation to dispatch to *)
}

type t = { san_name : string; resources : string list; apis : api list }

(** Reference interface header texts. *)

val kasan_header : string
val kcsan_header : string
val kmemleak_header : string

(** The fourth sanitizer's header (UBSAN-style alignment checker); see
    {!Ualign}. *)
val ualign_header : string

(** The FastTrack happens-before race detector's header; see {!Ftrace}. *)
val ftrace_header : string

exception Spec_error of string

(** Parse a header text; raises {!Spec_error} on malformed input. *)
val parse_header : string -> t

val kasan : unit -> t
val kcsan : unit -> t
val kmemleak : unit -> t
val ualign : unit -> t
val ftrace : unit -> t
