(* Unified host-side shadow memory (S3.3).

   One byte of KASAN state per 8-byte granule of guest RAM, using the kernel
   encoding, plus a parallel per-granule plane used by the KCSAN
   functionality for its sampling state.  Keeping both planes in one
   structure is the paper's "unified shadow memory that records information
   for multiple sanitizer functionalities". *)

type code =
  | Addressable
  | Partial of int (* first k bytes of the granule are addressable *)
  | Heap_redzone
  | Stack_redzone
  | Global_redzone
  | Freed

(* A [Partial k] granule is only meaningful for k in 1..7: k = 0 would be
   fully poisoned (a redzone byte says which kind) and k = 8 is
   [Addressable].  The old [k land 7] silently aliased out-of-range
   constructions — [Partial 8] encoded as [Addressable] and survived a
   round-trip as a different code — so out-of-range is rejected loudly
   instead. *)
let partial k =
  if k >= 1 && k <= 7 then Partial k
  else invalid_arg (Printf.sprintf "Shadow.partial %d (want 1..7)" k)

let byte_of_code = function
  | Addressable -> 0x00
  | Partial k ->
      if k >= 1 && k <= 7 then k
      else invalid_arg (Printf.sprintf "Shadow.byte_of_code: Partial %d (want 1..7)" k)
  | Heap_redzone -> 0xF1
  | Stack_redzone -> 0xF3
  | Global_redzone -> 0xF9
  | Freed -> 0xFB

let code_of_byte = function
  | 0x00 -> Addressable
  | k when k >= 1 && k <= 7 -> Partial k
  | 0xF1 -> Heap_redzone
  | 0xF3 -> Stack_redzone
  | 0xF9 -> Global_redzone
  | 0xFB -> Freed
  | b -> invalid_arg (Printf.sprintf "Shadow.code_of_byte 0x%x" b)

let code_name = function
  | Addressable -> "addressable"
  | Partial k -> Printf.sprintf "partial(%d)" k
  | Heap_redzone -> "heap-redzone"
  | Stack_redzone -> "stack-redzone"
  | Global_redzone -> "global-redzone"
  | Freed -> "freed"

type t = {
  base : int; (* guest RAM base *)
  limit : int;
  kasan : Bytes.t; (* one byte per granule *)
  kcsan_epoch : Bytes.t; (* sampling state plane for KCSAN *)
}

let granule = 8

let create ~ram_base ~ram_size =
  let granules = (ram_size + granule - 1) / granule in
  {
    base = ram_base;
    limit = ram_base + ram_size;
    kasan = Bytes.make granules '\000';
    kcsan_epoch = Bytes.make granules '\000';
  }

let covers t addr = addr >= t.base && addr < t.limit
let index t addr = (addr - t.base) / granule

let get t addr = code_of_byte (Bytes.get_uint8 t.kasan (index t addr))

let set_raw t addr byte = Bytes.set_uint8 t.kasan (index t addr) byte

(** Poison [addr, addr+size) with [code]; granule-rounded outward on the
    tail like the kernel implementation. *)
let poison t ~addr ~size code =
  if size > 0 && covers t addr then begin
    let b = byte_of_code code in
    let first = index t addr in
    let last = index t (min (addr + size - 1) (t.limit - 1)) in
    Bytes.fill t.kasan first (last - first + 1) (Char.chr b)
  end

(** Mark [addr, addr+size) addressable; a non-multiple-of-8 tail becomes a
    partial granule. *)
let unpoison t ~addr ~size =
  if size > 0 && covers t addr then begin
    let full = size / granule in
    let first = index t addr in
    Bytes.fill t.kasan first full '\000';
    let tail = size mod granule in
    if tail <> 0 then set_raw t (addr + (full * granule)) tail
  end

type verdict = Valid | Invalid of code

(** Validate an access of [size] (1/2/4) bytes at [addr].  Accesses outside
    guest RAM are not the shadow's business (MMIO and fault logic handle
    them). *)
let check t ~addr ~size =
  if not (covers t addr) then Valid
  else begin
    let last = addr + size - 1 in
    let sh = Bytes.get_uint8 t.kasan (index t last) in
    if sh = 0 then
      (* fast path: access may still start in a different, poisoned granule *)
      if index t addr = index t last then Valid
      else begin
        let sh0 = Bytes.get_uint8 t.kasan (index t addr) in
        if sh0 = 0 then Valid else Invalid (code_of_byte sh0)
      end
    else if sh < 8 then
      if last land (granule - 1) < sh then Valid else Invalid (Partial sh)
    else Invalid (code_of_byte sh)
  end

(* --- Snapshot support --------------------------------------------------------- *)

type state = { s_kasan : Bytes.t; s_kcsan_epoch : Bytes.t }

(** Deep copy of both shadow planes for the snapshot service. *)
let save t =
  { s_kasan = Bytes.copy t.kasan; s_kcsan_epoch = Bytes.copy t.kcsan_epoch }

let restore t (s : state) =
  if
    Bytes.length s.s_kasan <> Bytes.length t.kasan
    || Bytes.length s.s_kcsan_epoch <> Bytes.length t.kcsan_epoch
  then invalid_arg "Shadow.restore: size mismatch";
  Bytes.blit s.s_kasan 0 t.kasan 0 (Bytes.length t.kasan);
  Bytes.blit s.s_kcsan_epoch 0 t.kcsan_epoch 0 (Bytes.length t.kcsan_epoch)

(* --- KCSAN plane -------------------------------------------------------------- *)

(** Per-granule monotonically wrapping access counter, used by the host
    KCSAN runtime to diversify watchpoint selection across addresses. *)
let kcsan_bump t addr =
  if covers t addr then begin
    let i = index t addr in
    let v = Bytes.get_uint8 t.kcsan_epoch i in
    Bytes.set_uint8 t.kcsan_epoch i ((v + 1) land 0xFF);
    v
  end
  else 0
