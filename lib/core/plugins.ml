(* Registry bootstrap for the built-in sanitizers.

   This is the only place the runtime's side of the architecture names
   concrete sanitizers: {!Runtime.attach} calls {!ensure_builtin} and then
   works purely off the registry.  Out-of-tree sanitizers register
   themselves with {!Sanitizer.register} (see {!Ualign.register}) and need
   no entry here.

   [Runtime.attach] runs concurrently from the orchestrator's worker
   domains, so the once-flag is guarded by a mutex: exactly one domain
   performs the registration, and any domain returning from
   [ensure_builtin] observes the completed bootstrap (the registrations
   happen before the flag's critical section ends). *)

let lock = Mutex.create ()
let done_ = ref false

let ensure_builtin () =
  Mutex.protect lock (fun () ->
      if not !done_ then begin
        Sanitizer.register Kasan.plugin;
        Sanitizer.register Kcsan.plugin;
        Sanitizer.register Kmemleak.plugin;
        done_ := true
      end)
