(* Registry bootstrap for the built-in sanitizers.

   This is the only place the runtime's side of the architecture names
   concrete sanitizers: {!Runtime.attach} calls {!ensure_builtin} and then
   works purely off the registry.  Out-of-tree sanitizers register
   themselves with {!Sanitizer.register} (see {!Ualign.register}) and need
   no entry here. *)

let done_ = ref false

let ensure_builtin () =
  if not !done_ then begin
    done_ := true;
    Sanitizer.register Kasan.plugin;
    Sanitizer.register Kcsan.plugin;
    Sanitizer.register Kmemleak.plugin
  end
