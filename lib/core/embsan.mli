(** EmbSan top-level API: the Pre-testing Probing Phase (section 3.4) and
    the Testing Phase (section 3.5) in two calls:

    {[
      let session = Embsan.prepare ~sanitizers ~firmware () in
      let machine = Embsan.make_machine session in
      let runtime = Embsan.attach session machine in
      (* fuzz / replay ... *)
      Embsan.reports runtime
    ]} *)

type sanitizers = {
  kasan : bool;
  kcsan : bool;
  kmemleak : bool;
  ualign : bool;
  ftrace : bool;
}

val kasan_only : sanitizers
val kcsan_only : sanitizers

(** Only the FastTrack happens-before race detector ({!Ftrace}). *)
val ftrace_only : sanitizers

(** KASAN + KCSAN (the paper's evaluation set). *)
val all_sanitizers : sanitizers

(** Add the kmemleak functionality to a selection. *)
val with_kmemleak : sanitizers -> sanitizers

(** Add the unaligned-access detector ({!Ualign}) to a selection. *)
val with_ualign : sanitizers -> sanitizers

(** Add the happens-before race detector ({!Ftrace}) to a selection. *)
val with_ftrace : sanitizers -> sanitizers

(** Firmware category, deciding the Prober mode and the runtime's
    instrumentation mode. *)
type firmware =
  | Instrumented of Embsan_isa.Image.t
      (** open source with compile-time callouts: EmbSan-C *)
  | Source of Embsan_isa.Image.t * Prober.hints
      (** open source, symbols only: EmbSan-D *)
  | Binary of Embsan_isa.Image.t * Prober.hints
      (** closed source; the image is stripped: EmbSan-D *)

type session = {
  s_sanitizers : sanitizers;
  s_spec : Dsl.spec;
  s_platform : Prober.platform;
  s_mode : Runtime.inst_mode;
  s_image : Embsan_isa.Image.t;
}

(** Pre-testing probing phase: distill the selected sanitizers' interfaces,
    probe the firmware, compile the merged DSL specification. *)
val prepare :
  ?ram_base:int ->
  ?ram_size:int ->
  ?boot_budget:int ->
  sanitizers:sanitizers ->
  firmware:firmware ->
  unit ->
  session

(** The session's full specification in the textual DSL. *)
val spec_text : session -> string

(** Testing phase: hook a machine running the session's firmware. *)
val attach :
  ?sink:Report.sink ->
  ?kcsan_interval:int ->
  ?kcsan_stall:int ->
  session ->
  Embsan_emu.Machine.t ->
  Runtime.t

(** Create and boot a machine for this session's firmware. *)
val make_machine : ?harts:int -> ?seed:int -> session -> Embsan_emu.Machine.t

val reports : Runtime.t -> Report.t list
