(* UBSAN-style unaligned-access detector: the plugin architecture's
   drop-in proof.

   This sanitizer exists entirely outside the Common Sanitizer Runtime: an
   {!Api_spec.ualign} interface header (so the Distiller emits its DSL
   entry) plus this module (a {!Sanitizer.S} implementation registered
   with {!Sanitizer.register}).  Neither runtime.ml, machine.ml nor
   probe.ml know it exists; both instrumentation backends reach it through
   the compiled dispatch plans.

   Detection: a 2- or 4-byte access whose address is not a multiple of its
   size.  The emulated cores tolerate misalignment (like ARMv7's unaligned
   load/store support), so these bugs are silent until the firmware runs
   on a stricter core - exactly the class a sanitizer should surface. *)

type t = {
  sink : Report.sink;
  symbolize : int -> string option;
  mutable checks : int;
  mutable unaligned : int;
}

let create ~sink ~symbolize () = { sink; symbolize; checks = 0; unaligned = 0 }

let on_access t ~addr ~size ~is_write ~pc ~hart =
  t.checks <- t.checks + 1;
  if size > 1 && addr land (size - 1) <> 0 then begin
    t.unaligned <- t.unaligned + 1;
    ignore
      (Report.add t.sink
         {
           kind = Report.Unaligned_access;
           sanitizer = "ualign";
           addr;
           size;
           is_write;
           pc;
           hart;
           location = t.symbolize pc;
           detail =
             Printf.sprintf "address 0x%08x is not %d-byte aligned" addr size;
         })
  end

(* --- Snapshot support -------------------------------------------------------- *)

type state = { s_checks : int; s_unaligned : int }

let save t = { s_checks = t.checks; s_unaligned = t.unaligned }

let restore t s =
  t.checks <- s.s_checks;
  t.unaligned <- s.s_unaligned

(* --- Plugin ------------------------------------------------------------------ *)

module Plugin = struct
  let name = "ualign"
  let points = [ Api_spec.P_load; Api_spec.P_store ]

  type nonrec t = t

  let create (ctx : Sanitizer.ctx) =
    create ~sink:ctx.sink ~symbolize:ctx.symbolize ()

  let access t ~pc ~addr ~size ~is_write ~is_atomic:_ ~hart =
    on_access t ~addr ~size ~is_write ~pc ~hart

  let event _ _ = ()
  let scan _ ~now:_ = 0

  let checkpoint t =
    let s = save t in
    fun () -> restore t s

  let stats t = [ ("checks", t.checks); ("unaligned", t.unaligned) ]
end

let plugin : Sanitizer.plugin = (module Plugin)
let register () = Sanitizer.register plugin
