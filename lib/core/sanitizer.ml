(* Sanitizer plugin architecture (DESIGN.md "Sanitizer plugin architecture").

   The paper's claim (S3.2-S3.3) is that distilling sanitizer interception
   APIs into a DSL makes the on-host runtime generic.  This module is the
   host-side half of that claim: a typed event vocabulary, a first-class-
   module plugin interface, and a registry keyed by the DSL sanitizer name.

   The Common Sanitizer Runtime instantiates the plugins a spec selects and
   compiles the spec's intercepts into flat per-point handler arrays; both
   instrumentation backends (EmbSan-C hypercall traps and EmbSan-D
   translation-time probes) construct the same typed events and feed the
   same compiled plan.  A new sanitizer is a module implementing {!S} plus
   an {!Api_spec} header -- no runtime changes (see Ualign). *)

(* --- Typed event vocabulary -------------------------------------------------- *)

(* Cold-path events.  The access check is deliberately NOT a constructor of
   this type: memory events are the hot path and must stay allocation-free,
   so they dispatch through {!access_fn} closures instead. *)
type event =
  | Alloc of { ptr : int; size : int; pc : int; now : int }
      (** an intercepted allocator returned [ptr] ([now] = retired insns) *)
  | Free of { ptr : int; pc : int; hart : int }
  | Poison of { addr : int; size : int; code : Shadow.code }
  | Unpoison of { addr : int; size : int }
  | Register_global of { addr : int; size : int }
  | Stack_poison of { addr : int; size : int }
  | Stack_unpoison of { addr : int; size : int }
  | Ready  (** the firmware signalled readiness (post init-routine replay) *)

let event_name = function
  | Alloc _ -> "alloc"
  | Free _ -> "free"
  | Poison _ -> "poison"
  | Unpoison _ -> "unpoison"
  | Register_global _ -> "register_global"
  | Stack_poison _ -> "stack_poison"
  | Stack_unpoison _ -> "stack_unpoison"
  | Ready -> "ready"

(* Hot-path access check: plain labelled closure, no event record, so a
   compiled dispatch plan costs one indirect call per plugin per access. *)
type access_fn =
  pc:int ->
  addr:int ->
  size:int ->
  is_write:bool ->
  is_atomic:bool ->
  hart:int ->
  unit

(* --- Plugin interface -------------------------------------------------------- *)

type mode = [ `C | `D ]

type ctx = {
  machine : Embsan_emu.Machine.t;
  mode : mode;
  shadow : Shadow.t;  (** unified shadow planes, shared across plugins *)
  sink : Report.sink;
  symbolize : int -> string option;
  tuning : (string * int) list;  (** plugin knobs, e.g. ["kcsan.interval"] *)
}

let tuned ctx key ~default =
  Option.value ~default (List.assoc_opt key ctx.tuning)

module type S = sig
  val name : string
  (** The DSL sanitizer name this plugin implements (registry key). *)

  val points : Api_spec.point list
  (** Interception points the plugin subscribes to; the runtime only
      includes it in the dispatch plans of these points. *)

  type t

  val create : ctx -> t

  val access : t -> access_fn
  (** Hot-path handler, called for P_load/P_store plan slots.  Evaluated
      once at plan-compile time; only meaningful when [points] contains
      P_load or P_store. *)

  val event : t -> event -> unit
  (** Cold-path handler: plan-routed alloc/free/global/stack events plus
      broadcast state maintenance (poison/unpoison/ready).  Plugins ignore
      events they do not care about. *)

  val scan : t -> now:int -> int
  (** On-demand detector pass (kmemleak-style); returns new reports. *)

  val checkpoint : t -> unit -> unit
  (** [checkpoint t] captures the plugin's mutable state and returns a
      restore thunk.  The thunk must survive repeated invocation (a
      snapshot is restored many times in persistent-mode fuzzing). *)

  val stats : t -> (string * int) list
end

type plugin = (module S)

let name (module P : S) = P.name
let supports (module P : S) point = List.mem point P.points

(* --- Instances --------------------------------------------------------------- *)

type instance = Instance : (module S with type t = 'a) * 'a -> instance

let instantiate (module P : S) ctx = Instance ((module P), P.create ctx)
let instance_name (Instance ((module P), _)) = P.name
let instance_points (Instance ((module P), _)) = P.points
let access (Instance ((module P), x)) = P.access x
let event (Instance ((module P), x)) ev = P.event x ev
let scan (Instance ((module P), x)) ~now = P.scan x ~now
let checkpoint (Instance ((module P), x)) = P.checkpoint x
let stats (Instance ((module P), x)) = P.stats x

(* --- Registry ---------------------------------------------------------------- *)

(* The registry is process-global toplevel state, and every worker domain
   of the campaign orchestrator reaches it through [Runtime.attach]
   (register at bootstrap, find per attach), so all access goes through
   one mutex.  Plugins themselves stay domain-free: [find] hands out the
   immutable first-class module, and each runtime instantiates its own
   per-domain state from it. *)
let registry : (string, plugin) Hashtbl.t = Hashtbl.create 8
let registry_lock = Mutex.create ()

(** Register (or replace) a plugin under its [S.name].  Domain-safe. *)
let register (module P : S) =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.replace registry P.name (module P : S))

let find n = Mutex.protect registry_lock (fun () -> Hashtbl.find_opt registry n)

let registered () =
  Mutex.protect registry_lock (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry []))
