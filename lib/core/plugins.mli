(** Registry bootstrap: registers the built-in sanitizer plugins (KASAN,
    KCSAN, kmemleak) exactly once.  {!Runtime.attach} calls this; other
    sanitizers register themselves via {!Sanitizer.register}. *)

val ensure_builtin : unit -> unit
