(** Host-side KCSAN runtime: soft watchpoints with stall windows.  On a
    sampled access the runtime arms a watchpoint, snapshots the watched
    value, stalls the accessing hart (other harts keep running) and retries
    the access when the window closes; a conflicting access from another
    hart during the window - or a changed value - is a data race. *)

type watchpoint = {
  w_addr : int;
  w_size : int;
  w_write : bool;
  w_hart : int;
  w_pc : int;
  w_before : int;
  mutable w_conflict : (int * int * bool) option;  (** pc, hart, is_write *)
}

type t = {
  sink : Report.sink;
  symbolize : int -> string option;
  shadow : Shadow.t;
  interval : int;
  stall_insns : int;
  mutable skip : int;
  mutable rng : int;
  mutable watch : watchpoint option;
  mutable pending_close : (int * int) option;
  mutable access_events : int;
  mutable watchpoints_set : int;
  mutable races : int;
}

val create :
  ?interval:int ->
  ?stall_insns:int ->
  shadow:Shadow.t ->
  sink:Report.sink ->
  symbolize:(int -> string option) ->
  unit ->
  t

(** Snapshot of the sampling state, armed watchpoint and counters.  The
    stalled hart's [stall_until] lives in {!Embsan_emu.Cpu.t} and is
    restored with the machine. *)
type state

val save : t -> state
val restore : t -> state -> unit

(** Process one memory access event.  May raise
    {!Embsan_emu.Fault.Retry_at} to stall the accessing hart; the retried
    access closes the watchpoint.  Atomic and MMIO accesses must be
    filtered out by the caller / are never watched. *)
val on_access :
  t ->
  Embsan_emu.Machine.t ->
  addr:int ->
  size:int ->
  is_write:bool ->
  pc:int ->
  hart:int ->
  unit

(** The registry plugin ({!Sanitizer.S} implementation).  Its compiled
    access handler filters atomics and charges the mode's host-side
    race-check cost ([kcsan.interval] / [kcsan.stall] tuning keys). *)
val plugin : Sanitizer.plugin
