(* FastTrack happens-before race detector (EmbedSanitizer direction): the
   fifth sanitizer, and the hard stress of the zero-core-edit plugin claim.

   Where KCSAN samples watchpoints and only sees the races it stalls on,
   ftrace maintains the full happens-before partial order and reports
   every conflicting access pair it observes, on the first occurrence:

   - per-hart vector clocks, with the FastTrack epoch optimization: most
     metadata is one packed (clock, hart) epoch word, and the common
     same-epoch access is a single compare;
   - per-address last-write / last-read metadata in flat shadow planes
     keyed off the existing 8-byte shadow granule, at two 4-byte slots per
     granule so adjacent 32-bit guest variables never false-share a cell;
     each slot also records the byte range touched, so sub-word accesses
     only race when their ranges actually overlap;
   - synchronization edges learned from the guest: locking primitives
     announce acquire/release (and irq_off/irq_on, modeled as a global
     pseudo-lock) through the {!Embsan_emu.Hypercall.san_sync} trap.  The
     handler is installed by the plugin itself via the public
     [Machine.set_trap_handler] API -- like everything else here, entirely
     outside runtime.ml / machine.ml / probe.ml (pinned by grep tests,
     like ualign);
   - full snapshot save/restore through the plugin checkpoint channel.

   Addresses that ever appear as sync objects (lock words) are treated as
   marked accesses and excluded from race checking, exactly as TSan
   excludes atomics: the lock implementation's own plain release store
   would otherwise race with every later acquire. *)

open Embsan_isa
open Embsan_emu

(* --- Epochs ------------------------------------------------------------------ *)

(* An epoch packs (clock, hart) as [clock lsl 3 lor hart]: at most 8 harts,
   clock saturating below 2^28 so the word stays a 31-bit immediate.
   Clock 0 is reserved, so 0 means "no access recorded" and the all-ones
   word is free to mean "read-shared". *)

let max_harts = 8
let none = 0
let shared = 0xFFFF_FFFF
let epoch ~clock ~hart = (clock lsl 3) lor hart
let epoch_hart e = e land 7
let epoch_clock e = e lsr 3

(* --- Vector clocks ----------------------------------------------------------- *)

(* Exposed (also via the mli) so the QCheck suite can pin the algebraic
   laws the detector relies on: join is an upper bound, associative,
   commutative and idempotent; happens-before is the pointwise order. *)
module Vc = struct
  type t = int array

  let create n : t = Array.make n 0
  let copy (v : t) = Array.copy v

  let join (a : t) (b : t) =
    for i = 0 to Array.length a - 1 do
      if b.(i) > a.(i) then a.(i) <- b.(i)
    done

  let leq (a : t) (b : t) =
    let n = Array.length a in
    let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
    go 0

  (* Does epoch [e] happen before (or equal) the thread clock [v]? *)
  let hb_epoch e (v : t) = epoch_clock e <= v.(epoch_hart e)
end

(* --- Per-slot access metadata ------------------------------------------------- *)

(* Two 4-byte slots per 8-byte shadow granule; four Bytes planes of one
   32-bit little-endian word per slot:
     we  last-write epoch (0 = none)
     wi  last-write info: pc lsl 5 | lo lsl 3 | hi   (byte range [lo,hi))
     re  last-read epoch (0 = none, 0xFFFFFFFF = read-shared)
     ri  last-read info, same packing
   Read-shared slots spill to a side table holding a full vector clock
   plus per-hart info words; write bursts collapse them back. *)

let pack_info ~pc ~lo ~hi = (pc lsl 5) lor (lo lsl 3) lor hi
let info_pc i = i lsr 5
let info_lo i = (i lsr 3) land 3
let info_hi i = i land 7

let overlaps i ~lo ~hi =
  let lo' = info_lo i and hi' = info_hi i in
  lo < hi' && lo' < hi

type shared_reads = { sr_clocks : Vc.t; sr_info : int array }

type t = {
  sink : Report.sink;
  symbolize : int -> string option;
  base : int; (* shadowed RAM window, from the shared shadow resource *)
  limit : int;
  nslots : int;
  we : Bytes.t;
  wi : Bytes.t;
  re : Bytes.t;
  ri : Bytes.t;
  shared_tbl : (int, shared_reads) Hashtbl.t;
  vc : Vc.t array; (* per-hart clocks, C_t *)
  locks : (int, Vc.t) Hashtbl.t; (* per-sync-object clocks, L_m *)
  sync_slots : (int, unit) Hashtbl.t; (* slots of known lock words *)
  reported : (int, unit) Hashtbl.t; (* (pc, other_pc) pairs already reported *)
  mutable checks : int;
  mutable races : int;
  mutable acquires : int;
  mutable releases : int;
  mutable promotions : int;
}

let get32 b i = Int32.to_int (Bytes.get_int32_le b (i * 4)) land 0xFFFF_FFFF
let set32 b i v = Bytes.set_int32_le b (i * 4) (Int32.of_int v)

(* The IRQ pseudo-lock: interrupts-disabled sections synchronize with each
   other globally, so irq_off acquires and irq_on releases this key. *)
let irq_lock = -1

let create ~sink ~symbolize ~base ~limit ~harts () =
  let harts = min harts max_harts in
  let nslots = ((limit - base) + 3) / 4 in
  let vc =
    Array.init harts (fun h ->
        let v = Vc.create harts in
        v.(h) <- 1;
        v)
  in
  {
    sink;
    symbolize;
    base;
    limit;
    nslots;
    we = Bytes.make (nslots * 4) '\000';
    wi = Bytes.make (nslots * 4) '\000';
    re = Bytes.make (nslots * 4) '\000';
    ri = Bytes.make (nslots * 4) '\000';
    shared_tbl = Hashtbl.create 16;
    vc;
    locks = Hashtbl.create 16;
    sync_slots = Hashtbl.create 16;
    reported = Hashtbl.create 16;
    checks = 0;
    races = 0;
    acquires = 0;
    releases = 0;
    promotions = 0;
  }

let slot_of t addr = (addr - t.base) lsr 2
let in_window t addr = addr >= t.base && addr < t.limit

(* --- Reporting --------------------------------------------------------------- *)

let report t ~pc ~addr ~size ~is_write ~hart ~other_pc ~other_hart
    ~other_write =
  let key = (pc lsl 26) lxor other_pc in
  if not (Hashtbl.mem t.reported key) then begin
    Hashtbl.add t.reported key ();
    t.races <- t.races + 1;
    let kind w = if w then "write" else "read" in
    let where p =
      match t.symbolize p with Some s -> Printf.sprintf " (%s)" s | None -> ""
    in
    ignore
      (Report.add t.sink
         {
           kind = Report.Data_race;
           sanitizer = "ftrace";
           addr;
           size;
           is_write;
           pc;
           hart;
           location = t.symbolize pc;
           detail =
             Printf.sprintf "%s races with hart %d %s at pc 0x%08x%s"
               (kind is_write) other_hart (kind other_write) other_pc
               (where other_pc);
         })
  end

(* --- The FastTrack access rules ---------------------------------------------- *)

let check_write t ~hart ~pc ~addr ~size ~slot ~lo ~hi =
  let c = t.vc.(hart) in
  let e_t = epoch ~clock:c.(hart) ~hart in
  let we = get32 t.we slot in
  if we = e_t then begin
    (* same-epoch write: widen the recorded byte range *)
    let i = get32 t.wi slot in
    if info_pc i = pc then
      set32 t.wi slot
        (pack_info ~pc ~lo:(min lo (info_lo i)) ~hi:(max hi (info_hi i)))
  end
  else begin
    (if we <> none && epoch_hart we <> hart && not (Vc.hb_epoch we c) then
       let i = get32 t.wi slot in
       if overlaps i ~lo ~hi then
         report t ~pc ~addr ~size ~is_write:true ~hart ~other_pc:(info_pc i)
           ~other_hart:(epoch_hart we) ~other_write:true);
    let re = get32 t.re slot in
    (if re = shared then begin
       match Hashtbl.find_opt t.shared_tbl slot with
       | None -> ()
       | Some sr ->
           for u = 0 to Array.length sr.sr_clocks - 1 do
             if u <> hart && sr.sr_clocks.(u) > c.(u) then
               let i = sr.sr_info.(u) in
               if overlaps i ~lo ~hi then
                 report t ~pc ~addr ~size ~is_write:true ~hart
                   ~other_pc:(info_pc i) ~other_hart:u ~other_write:false
           done
     end
     else if re <> none && epoch_hart re <> hart && not (Vc.hb_epoch re c) then
       let i = get32 t.ri slot in
       if overlaps i ~lo ~hi then
         report t ~pc ~addr ~size ~is_write:true ~hart ~other_pc:(info_pc i)
           ~other_hart:(epoch_hart re) ~other_write:false);
    set32 t.we slot e_t;
    set32 t.wi slot (pack_info ~pc ~lo ~hi);
    (* a write that passed the checks dominates the read set *)
    if re <> none then begin
      set32 t.re slot none;
      if re = shared then Hashtbl.remove t.shared_tbl slot
    end
  end

let check_read t ~hart ~pc ~addr ~size ~slot ~lo ~hi =
  let c = t.vc.(hart) in
  let e_t = epoch ~clock:c.(hart) ~hart in
  let re = get32 t.re slot in
  if re = e_t then begin
    let i = get32 t.ri slot in
    if info_pc i = pc then
      set32 t.ri slot
        (pack_info ~pc ~lo:(min lo (info_lo i)) ~hi:(max hi (info_hi i)))
  end
  else begin
    (let we = get32 t.we slot in
     if we <> none && epoch_hart we <> hart && not (Vc.hb_epoch we c) then
       let i = get32 t.wi slot in
       if overlaps i ~lo ~hi then
         report t ~pc ~addr ~size ~is_write:false ~hart ~other_pc:(info_pc i)
           ~other_hart:(epoch_hart we) ~other_write:true);
    if re = shared then begin
      (* already read-shared: the marker is not an epoch, so test it first *)
      match Hashtbl.find_opt t.shared_tbl slot with
      | None -> () (* unreachable; be robust *)
      | Some sr ->
          sr.sr_clocks.(hart) <- c.(hart);
          sr.sr_info.(hart) <- pack_info ~pc ~lo ~hi
    end
    else if re = none || Vc.hb_epoch re c then begin
      (* exclusive read, or exclusive handoff: keep the epoch representation *)
      set32 t.re slot e_t;
      set32 t.ri slot (pack_info ~pc ~lo ~hi)
    end
    else begin
      (* concurrent reads from two harts: promote to read-shared *)
      t.promotions <- t.promotions + 1;
      let n = Array.length t.vc in
      let sr = { sr_clocks = Vc.create n; sr_info = Array.make n 0 } in
      let u = epoch_hart re in
      sr.sr_clocks.(u) <- epoch_clock re;
      sr.sr_info.(u) <- get32 t.ri slot;
      sr.sr_clocks.(hart) <- c.(hart);
      sr.sr_info.(hart) <- pack_info ~pc ~lo ~hi;
      Hashtbl.replace t.shared_tbl slot sr;
      set32 t.re slot shared
    end
  end

let on_access t ~pc ~addr ~size ~is_write ~is_atomic ~hart =
  if
    (not is_atomic)
    && hart < Array.length t.vc
    && in_window t addr
    && not (Hashtbl.mem t.sync_slots (slot_of t addr))
  then begin
    t.checks <- t.checks + 1;
    (* split the access per 4-byte slot (a 4-byte access at an odd offset
       spans two); record the byte range within each slot *)
    let fin = addr + size in
    let s0 = slot_of t addr and s1 = slot_of t (fin - 1) in
    for slot = s0 to min s1 (t.nslots - 1) do
      let slot_base = t.base + (slot lsl 2) in
      let lo = max addr slot_base - slot_base in
      let hi = min fin (slot_base + 4) - slot_base in
      if is_write then check_write t ~hart ~pc ~addr ~size ~slot ~lo ~hi
      else check_read t ~hart ~pc ~addr ~size ~slot ~lo ~hi
    done
  end

(* --- Synchronization edges ---------------------------------------------------- *)

let lock_vc t key =
  match Hashtbl.find_opt t.locks key with
  | Some v -> v
  | None ->
      let v = Vc.create (Array.length t.vc) in
      Hashtbl.add t.locks key v;
      v

(* A lock word is a sync object, not data: exclude its slot from race
   checking and drop any metadata recorded before we learned that. *)
let mark_sync_word t addr =
  if in_window t addr then begin
    let slot = slot_of t addr in
    if not (Hashtbl.mem t.sync_slots slot) then begin
      Hashtbl.add t.sync_slots slot ();
      set32 t.we slot none;
      set32 t.re slot none;
      Hashtbl.remove t.shared_tbl slot
    end
  end

let acquire t ~hart ~key =
  if hart < Array.length t.vc then begin
    t.acquires <- t.acquires + 1;
    Vc.join t.vc.(hart) (lock_vc t key)
  end

let release t ~hart ~key =
  if hart < Array.length t.vc then begin
    t.releases <- t.releases + 1;
    let c = t.vc.(hart) in
    let l = lock_vc t key in
    Array.blit c 0 l 0 (Array.length c);
    (* advance into a fresh epoch, saturating the 28-bit clock *)
    if c.(hart) < 0x0FFF_FFFF then c.(hart) <- c.(hart) + 1
  end

let on_sync t ~hart ~op ~addr =
  match op with
  | 0 ->
      mark_sync_word t addr;
      acquire t ~hart ~key:addr
  | 1 ->
      mark_sync_word t addr;
      release t ~hart ~key:addr
  | 2 -> acquire t ~hart ~key:irq_lock
  | 3 -> release t ~hart ~key:irq_lock
  | _ -> ()

(* --- Snapshot support --------------------------------------------------------- *)

type state = {
  s_we : Bytes.t;
  s_wi : Bytes.t;
  s_re : Bytes.t;
  s_ri : Bytes.t;
  s_shared : (int * shared_reads) list;
  s_vc : Vc.t array;
  s_locks : (int * Vc.t) list;
  s_sync : int list;
  s_reported : int list;
  s_counters : int * int * int * int * int;
}

let copy_sr sr =
  { sr_clocks = Vc.copy sr.sr_clocks; sr_info = Array.copy sr.sr_info }

let save t =
  {
    s_we = Bytes.copy t.we;
    s_wi = Bytes.copy t.wi;
    s_re = Bytes.copy t.re;
    s_ri = Bytes.copy t.ri;
    s_shared =
      Hashtbl.fold (fun k sr acc -> (k, copy_sr sr) :: acc) t.shared_tbl [];
    s_vc = Array.map Vc.copy t.vc;
    s_locks = Hashtbl.fold (fun k v acc -> (k, Vc.copy v) :: acc) t.locks [];
    s_sync = Hashtbl.fold (fun k () acc -> k :: acc) t.sync_slots [];
    s_reported = Hashtbl.fold (fun k () acc -> k :: acc) t.reported [];
    s_counters = (t.checks, t.races, t.acquires, t.releases, t.promotions);
  }

let restore t s =
  Bytes.blit s.s_we 0 t.we 0 (Bytes.length t.we);
  Bytes.blit s.s_wi 0 t.wi 0 (Bytes.length t.wi);
  Bytes.blit s.s_re 0 t.re 0 (Bytes.length t.re);
  Bytes.blit s.s_ri 0 t.ri 0 (Bytes.length t.ri);
  Hashtbl.reset t.shared_tbl;
  List.iter (fun (k, sr) -> Hashtbl.replace t.shared_tbl k (copy_sr sr)) s.s_shared;
  Array.iteri (fun i v -> Array.blit v 0 t.vc.(i) 0 (Array.length v)) s.s_vc;
  Hashtbl.reset t.locks;
  List.iter (fun (k, v) -> Hashtbl.replace t.locks k (Vc.copy v)) s.s_locks;
  Hashtbl.reset t.sync_slots;
  List.iter (fun k -> Hashtbl.replace t.sync_slots k ()) s.s_sync;
  Hashtbl.reset t.reported;
  List.iter (fun k -> Hashtbl.replace t.reported k ()) s.s_reported;
  let c, r, a, rl, p = s.s_counters in
  t.checks <- c;
  t.races <- r;
  t.acquires <- a;
  t.releases <- rl;
  t.promotions <- p

(* --- Plugin ------------------------------------------------------------------- *)

module Plugin = struct
  let name = "ftrace"
  let points = [ Api_spec.P_load; Api_spec.P_store ]

  type nonrec t = t

  let create (ctx : Sanitizer.ctx) =
    let machine = ctx.machine in
    let t =
      create ~sink:ctx.sink ~symbolize:ctx.symbolize
        ~base:ctx.shadow.Shadow.base ~limit:ctx.shadow.Shadow.limit
        ~harts:(Array.length machine.Machine.harts)
        ()
    in
    (* the sync-edge channel: installed here, through the same public
       trap-handler API the guest services use -- no core edits *)
    Machine.set_trap_handler machine Hypercall.san_sync (fun _m cpu ->
        on_sync t ~hart:cpu.Cpu.id ~op:(Cpu.get cpu Reg.a0)
          ~addr:(Cpu.get cpu Reg.a1));
    t

  let access t ~pc ~addr ~size ~is_write ~is_atomic ~hart =
    on_access t ~pc ~addr ~size ~is_write ~is_atomic ~hart

  let event _ _ = ()
  let scan _ ~now:_ = 0

  let checkpoint t =
    let s = save t in
    fun () -> restore t s

  let stats t =
    [
      ("checks", t.checks);
      ("races", t.races);
      ("acquires", t.acquires);
      ("releases", t.releases);
      ("shared_promotions", t.promotions);
    ]
end

let plugin : Sanitizer.plugin = (module Plugin)
let register () = Sanitizer.register plugin
