(** Common Sanitizer Runtime (paper sections 3.3 and 3.5): consumes the
    merged DSL specification plus platform description and hooks the
    firmware's execution - translated-code probes and allocator
    interception for EmbSan-D, direct hypercall dispatch for EmbSan-C.

    The runtime is sanitizer-agnostic: {!attach} instantiates the plugins
    named by the spec from the {!Sanitizer} registry and compiles the
    spec's intercepts once into flat per-interception-point dispatch plans
    (arrays of handler closures), which both backends feed with the same
    typed {!Sanitizer.event}s.  Host-side work is charged to the machine's
    external cost counter. *)

type inst_mode = C | D

val mode_name : inst_mode -> string

(** Per-hart bounded stacks of in-flight allocator calls (EmbSan-D
    interception awaiting the allocator's return). *)
type pending

(** Stack capacity per hart; pushing past it drops the oldest frame. *)
val pending_capacity : int

type t = {
  spec : Dsl.spec;
  mode : inst_mode;
  machine : Embsan_emu.Machine.t;
  sink : Report.sink;
  shadow : Shadow.t;
  instances : Sanitizer.instance array;  (** spec.sanitizers order *)
  load_plan : Sanitizer.access_fn array;
  store_plan : Sanitizer.access_fn array;
  alloc_plan : (Sanitizer.event -> unit) array;
  free_plan : (Sanitizer.event -> unit) array;
  global_plan : (Sanitizer.event -> unit) array;
  stack_poison_plan : (Sanitizer.event -> unit) array;
  stack_unpoison_plan : (Sanitizer.event -> unit) array;
  plan_index : (Api_spec.point * string list) list;
  event_units : int;
  mutable ready : bool;
  mutable active : bool;  (** {!set_enabled}: event-delivery gate *)
  mutable subs : Embsan_emu.Probe.sub list;
      (** D-mode probe handles, detached/re-attached by {!set_enabled} *)
  pending : pending;
  exempt_lo : int array;  (** sorted disjoint exempt ranges (parallel) *)
  exempt_hi : int array;
  token : unit ref;
  mutable mem_events : int;
  mutable callouts : int;
  mutable intercepted_calls : int;
}

(** Is [pc] inside an intercepted allocator function or an exempt helper
    (legal metadata traffic)?  Binary search over the sorted merged
    ranges. *)
val pc_exempt : t -> int -> bool

(** Attach the runtime to a machine per the spec.  [image] (un-stripped)
    provides report symbolization; [sink] collects reports.  [tuning]
    carries per-plugin knobs (e.g. ["kcsan.interval"]), which plugins read
    via {!Sanitizer.tuned}. *)
val attach :
  spec:Dsl.spec ->
  mode:inst_mode ->
  ?image:Embsan_isa.Image.t ->
  ?sink:Report.sink ->
  ?tuning:(string * int) list ->
  Embsan_emu.Machine.t ->
  t

(** Pause/resume sanitizer event delivery.  O(1) and flush-free in both
    modes: EmbSan-D detaches/re-attaches its probe subscriptions by
    patching the shared site table (zero translation-cache flushes);
    EmbSan-C gates its installed callout traps.  No-op when the requested
    state is current.  State-maintenance events pause too, so long
    disabled windows can leave shadow state stale -- intended for
    toggle-style A/B measurement, not partial sanitizing. *)
val set_enabled : t -> bool -> unit

val enabled : t -> bool

(** Sanitizer names in the compiled dispatch plan of [point], in dispatch
    order (the DSL handler order, deduplicated, filtered to instantiated
    plugins that subscribe to the point). *)
val plan_names : t -> Api_spec.point -> string list

(** Current depth of [hart]'s in-flight allocator-call stack. *)
val pending_depth : t -> hart:int -> int

(** Snapshot of the runtime's host-side sanitizer state: shadow planes,
    every plugin instance's checkpoint (keyed by sanitizer name), the
    report-dedup sink, and the D-mode allocator-interception stacks.
    Probe wiring, trap handlers and the compiled dispatch plans are
    structural (installed once by {!attach}) and not captured. *)
type state

val save : t -> state

(** Restore a snapshot previously taken from this same runtime.
    @raise Invalid_argument if [state] came from a different runtime. *)
val restore : t -> state -> unit

(** Unique reports collected so far. *)
val reports : t -> Report.t list

(** Run every plugin's on-demand detector pass (typically after a test
    completes); returns the number of new reports. *)
val scan_leaks : t -> int

(** Per-plugin counter snapshots, in instantiation order. *)
val plugin_stats : t -> (string * (string * int) list) list

val pp_stats : Format.formatter -> t -> unit
