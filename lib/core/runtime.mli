(** Common Sanitizer Runtime (paper sections 3.3 and 3.5): consumes the
    merged DSL specification plus platform description and hooks the
    firmware's execution - translated-code probes and allocator
    interception for EmbSan-D, direct hypercall dispatch for EmbSan-C.
    Host-side work is charged to the machine's external cost counter. *)

type inst_mode = C | D

val mode_name : inst_mode -> string

type t = {
  spec : Dsl.spec;
  mode : inst_mode;
  machine : Embsan_emu.Machine.t;
  sink : Report.sink;
  shadow : Shadow.t;
  kasan : Kasan.t option;
  kcsan : Kcsan.t option;
  kmemleak : Kmemleak.t option;
  mutable ready : bool;
  mutable pending_allocs : (int * int * int) list;
  exempt_ranges : (int * int) array;
  mutable mem_events : int;
  mutable callouts : int;
  mutable intercepted_calls : int;
}

(** Is [pc] inside an intercepted allocator function or an exempt helper
    (legal metadata traffic)? *)
val pc_exempt : t -> int -> bool

(** Attach the runtime to a machine per the spec.  [image] (un-stripped)
    provides report symbolization; [sink] collects reports. *)
val attach :
  spec:Dsl.spec ->
  mode:inst_mode ->
  ?image:Embsan_isa.Image.t ->
  ?sink:Report.sink ->
  ?kcsan_interval:int ->
  ?kcsan_stall:int ->
  Embsan_emu.Machine.t ->
  t

(** Snapshot of the runtime's host-side sanitizer state: shadow planes,
    KASAN allocation table/quarantine, KCSAN watchpoint and sampling
    state, kmemleak live-block table, the report-dedup sink, and the
    D-mode allocator-interception stack.  Probe wiring and trap handlers
    are structural (installed once by {!attach}) and not captured. *)
type state

val save : t -> state
val restore : t -> state -> unit

(** Unique reports collected so far. *)
val reports : t -> Report.t list

(** Run the kmemleak scan now (typically after a test completes); returns
    the number of new leak reports. *)
val scan_leaks : t -> int

val pp_stats : Format.formatter -> t -> unit
