(** Host-side KASAN runtime: shadow state maintenance and access
    validation, de-coupled from the guest (paper section 3.3).  Detects
    out-of-bounds accesses (heap via poisoned free space, globals/stack via
    compile-time redzones), use-after-free, double/invalid free and null
    dereferences. *)

type alloc_info = { a_size : int; a_pc : int; mutable freed_pc : int option }

type t = {
  shadow : Shadow.t;
  allocs : (int, alloc_info) Hashtbl.t;
      (** live and recently-freed blocks, keyed by pointer *)
  sink : Report.sink;
  symbolize : int -> string option;
  quarantine : int Queue.t;
  quarantine_max : int;
  mutable redzone : int;
  mutable access_checks : int;
  mutable alloc_events : int;
  mutable free_events : int;
}

val create :
  ?quarantine_max:int ->
  shadow:Shadow.t ->
  sink:Report.sink ->
  symbolize:(int -> string option) ->
  unit ->
  t

(** Snapshot of the allocation table, quarantine and counters (deep copy
    of the mutable allocation records in both directions — a saved [state]
    survives repeated restores).  The shadow is snapshotted separately via
    {!Shadow.save}. *)
type state

val save : t -> state
val restore : t -> state -> unit

(** State maintenance (the sanitizer's [Update] operations). *)

val on_poison : t -> addr:int -> size:int -> Shadow.code -> unit
val on_unpoison : t -> addr:int -> size:int -> unit
val on_alloc : t -> ptr:int -> size:int -> pc:int -> unit

(** Free a block; reports double-free on a tracked freed block and
    invalid-free on an unknown pointer. *)
val on_free : t -> ptr:int -> pc:int -> hart:int -> unit

(** Register a global object: poisons redzones on both sides and the
    partial tail granule. *)
val on_register_global : t -> addr:int -> size:int -> unit

val on_stack_poison : t -> addr:int -> size:int -> unit
val on_stack_unpoison : t -> addr:int -> size:int -> unit

(** Validate one access (the sanitizer's [Check] operation); adds a report
    to the sink on a violation and always returns (KASAN reports and
    continues). *)
val on_access :
  t -> addr:int -> size:int -> is_write:bool -> pc:int -> hart:int -> unit

(** The registry plugin ({!Sanitizer.S} implementation).  Its [Ready]
    event re-establishes live boot-time allocations after the init-routine
    heap poison replays. *)
val plugin : Sanitizer.plugin
