(* Host-side KCSAN runtime: soft watchpoints with stall windows.

   On a sampled access the runtime arms a watchpoint, snapshots the watched
   value, stalls the accessing hart (the emulator keeps running the other
   harts) and retries the access when the window closes.  A conflicting
   access from another hart during the window - or a changed value - is a
   data race. *)

type watchpoint = {
  w_addr : int;
  w_size : int;
  w_write : bool;
  w_hart : int;
  w_pc : int;
  w_before : int;
  mutable w_conflict : (int * int * bool) option; (* pc, hart, is_write *)
}

type t = {
  sink : Report.sink;
  symbolize : int -> string option;
  shadow : Shadow.t; (* unified shadow: KCSAN uses its sampling plane *)
  interval : int;
  stall_insns : int;
  mutable skip : int;
  mutable rng : int; (* xorshift state for sampling jitter *)
  mutable watch : watchpoint option;
  (* the (hart, pc) whose retried access must close the watchpoint *)
  mutable pending_close : (int * int) option;
  mutable access_events : int;
  mutable watchpoints_set : int;
  mutable races : int;
}

let create ?(interval = 120) ?(stall_insns = 1200) ~shadow ~sink ~symbolize () =
  {
    sink;
    symbolize;
    shadow;
    interval;
    stall_insns;
    skip = interval;
    rng = 0x2545F491;
    watch = None;
    pending_close = None;
    access_events = 0;
    watchpoints_set = 0;
    races = 0;
  }

(* --- Snapshot support -------------------------------------------------------- *)

type state = {
  s_skip : int;
  s_rng : int;
  s_watch : watchpoint option;
  s_pending_close : (int * int) option;
  s_access_events : int;
  s_watchpoints_set : int;
  s_races : int;
}

(* [watchpoint] has a mutable conflict field; copy on both save and
   restore so the saved state is immune to later window activity. *)
let copy_watch (w : watchpoint) = { w with w_conflict = w.w_conflict }

let save t =
  {
    s_skip = t.skip;
    s_rng = t.rng;
    s_watch = Option.map copy_watch t.watch;
    s_pending_close = t.pending_close;
    s_access_events = t.access_events;
    s_watchpoints_set = t.watchpoints_set;
    s_races = t.races;
  }

let restore t (s : state) =
  t.skip <- s.s_skip;
  t.rng <- s.s_rng;
  t.watch <- Option.map copy_watch s.s_watch;
  t.pending_close <- s.s_pending_close;
  t.access_events <- s.s_access_events;
  t.watchpoints_set <- s.s_watchpoints_set;
  t.races <- s.s_races

let overlap a asize b bsize = a < b + bsize && b < a + asize

let report t (w : watchpoint) ~other =
  t.races <- t.races + 1;
  let detail =
    match other with
    | Some (pc, hart, is_write) ->
        Printf.sprintf "race with hart %d pc 0x%08x (%s)" hart pc
          (if is_write then "write" else "read")
    | None -> "value changed during watch window"
  in
  ignore
    (Report.add t.sink
       {
         kind = Report.Data_race;
         sanitizer = "kcsan";
         addr = w.w_addr;
         size = w.w_size;
         is_write = w.w_write;
         pc = w.w_pc;
         hart = w.w_hart;
         location = t.symbolize w.w_pc;
         detail;
       })

let read_watched machine ~addr ~size =
  Embsan_emu.Machine.read_mem machine ~addr ~width:(min size 4)

(** Process one memory access event.  May raise {!Embsan_emu.Fault.Retry_at}
    to stall the accessing hart (the access is re-executed when the stall
    window expires, which is what closes the watchpoint). *)
let on_access t machine ~addr ~size ~is_write ~pc ~hart =
  t.access_events <- t.access_events + 1;
  (* 1. closing a previously armed watchpoint? *)
  (match (t.watch, t.pending_close) with
  | Some w, Some (h, p) when h = hart && p = pc ->
      t.watch <- None;
      t.pending_close <- None;
      let after = read_watched machine ~addr:w.w_addr ~size:w.w_size in
      (match w.w_conflict with
      | Some _ as other -> report t w ~other
      | None -> if after <> w.w_before then report t w ~other:None)
  | _ -> ());
  (* 2. conflict detection against the active watchpoint *)
  (match t.watch with
  | Some w
    when w.w_hart <> hart
         && overlap w.w_addr w.w_size addr size
         && (w.w_write || is_write)
         && w.w_conflict = None ->
      w.w_conflict <- Some (pc, hart, is_write)
  | Some _ | None -> ());
  (* 3. sampling: arm a new watchpoint every [interval] accesses *)
  ignore (Shadow.kcsan_bump t.shadow addr);
  t.skip <- t.skip - 1;
  (* never watch device memory: MMIO registers are volatile by nature and
     re-reading them has side effects (like the kernel skipping ioremap) *)
  if t.skip <= 0 && Shadow.covers t.shadow addr then begin
    (* jittered interval: a fixed stride aliases with guest loop periods and
       keeps sampling the same access site, like real KCSAN's
       prandom-perturbed skip count avoids *)
    let x = t.rng in
    let x = x lxor (x lsl 13) land 0x3FFFFFFF in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0x3FFFFFFF in
    t.rng <- x;
    t.skip <- 1 + (t.interval / 2) + (x mod t.interval);
    if t.watch = None && t.pending_close = None then begin
      let before = read_watched machine ~addr ~size in
      t.watch <-
        Some
          {
            w_addr = addr;
            w_size = size;
            w_write = is_write;
            w_hart = hart;
            w_pc = pc;
            w_before = before;
            w_conflict = None;
          };
      t.watchpoints_set <- t.watchpoints_set + 1;
      t.pending_close <- Some (hart, pc);
      let cpu = machine.Embsan_emu.Machine.harts.(hart) in
      cpu.Embsan_emu.Cpu.stall_until <-
        machine.Embsan_emu.Machine.total_insns + t.stall_insns;
      raise (Embsan_emu.Fault.Retry_at pc)
    end
  end

(* --- Plugin ------------------------------------------------------------------ *)

module Plugin = struct
  let name = "kcsan"
  let points = [ Api_spec.P_load; Api_spec.P_store ]

  type nonrec t = { k : t; machine : Embsan_emu.Machine.t; check_cost : int }

  let create (ctx : Sanitizer.ctx) =
    let interval = Sanitizer.tuned ctx "kcsan.interval" ~default:120 in
    let stall_insns = Sanitizer.tuned ctx "kcsan.stall" ~default:1200 in
    {
      k =
        create ~interval ~stall_insns ~shadow:ctx.shadow ~sink:ctx.sink
          ~symbolize:ctx.symbolize ();
      machine = ctx.machine;
      (* host-side race-check work is dearer on the D path (it rides the
         probe machinery); bake the mode into the compiled handler *)
      check_cost =
        (match ctx.mode with
        | `C -> Embsan_emu.Cost_model.kcsan_host_check_c
        | `D -> Embsan_emu.Cost_model.kcsan_host_check_d);
    }

  (* marked (atomic) accesses are never data races by definition *)
  let access p ~pc ~addr ~size ~is_write ~is_atomic ~hart =
    if not is_atomic then begin
      Embsan_emu.Machine.add_external_cost p.machine p.check_cost;
      on_access p.k p.machine ~addr ~size ~is_write ~pc ~hart
    end

  let event _ _ = ()
  let scan _ ~now:_ = 0

  let checkpoint p =
    let s = save p.k in
    fun () -> restore p.k s

  let stats p =
    [
      ("access_events", p.k.access_events);
      ("watchpoints_set", p.k.watchpoints_set);
      ("races", p.k.races);
    ]
end

let plugin : Sanitizer.plugin = (module Plugin)
