(* Host-side KASAN runtime: shadow state maintenance and access validation.

   De-coupled from the guest: runs at native host speed on events delivered
   by the Common Sanitizer Runtime (S3.3).  Detects out-of-bounds accesses
   (heap via poisoned free space and redzones, globals and stack via
   compile-time redzones when available), use-after-free, double-free and
   null dereferences. *)

type alloc_info = { a_size : int; a_pc : int; mutable freed_pc : int option }

type t = {
  shadow : Shadow.t;
  allocs : (int, alloc_info) Hashtbl.t; (* live and recently freed, by ptr *)
  sink : Report.sink;
  symbolize : int -> string option;
  quarantine : int Queue.t; (* recently freed pointers, FIFO *)
  quarantine_max : int; (* bounded tracking of freed blocks *)
  mutable redzone : int;
  mutable access_checks : int;
  mutable alloc_events : int;
  mutable free_events : int;
}

let create ?(quarantine_max = 512) ~shadow ~sink ~symbolize () =
  {
    shadow;
    allocs = Hashtbl.create 256;
    sink;
    symbolize;
    quarantine = Queue.create ();
    quarantine_max;
    redzone = 16;
    access_checks = 0;
    alloc_events = 0;
    free_events = 0;
  }

(* --- Snapshot support -------------------------------------------------------- *)

type state = {
  s_allocs : (int * alloc_info) list;
  s_quarantine : int list; (* front (oldest) first *)
  s_redzone : int;
  s_access_checks : int;
  s_alloc_events : int;
  s_free_events : int;
}

(* [alloc_info] has a mutable field, so BOTH directions copy the records:
   save so later frees don't mutate the snapshot, restore so post-restore
   frees don't either (a snapshot may be restored many times). *)
let copy_info (i : alloc_info) =
  { a_size = i.a_size; a_pc = i.a_pc; freed_pc = i.freed_pc }

let save t =
  {
    s_allocs =
      Hashtbl.fold (fun ptr i acc -> (ptr, copy_info i) :: acc) t.allocs [];
    s_quarantine = List.rev (Queue.fold (fun acc p -> p :: acc) [] t.quarantine);
    s_redzone = t.redzone;
    s_access_checks = t.access_checks;
    s_alloc_events = t.alloc_events;
    s_free_events = t.free_events;
  }

let restore t (s : state) =
  Hashtbl.reset t.allocs;
  List.iter (fun (ptr, i) -> Hashtbl.replace t.allocs ptr (copy_info i)) s.s_allocs;
  Queue.clear t.quarantine;
  List.iter (fun p -> Queue.push p t.quarantine) s.s_quarantine;
  t.redzone <- s.s_redzone;
  t.access_checks <- s.s_access_checks;
  t.alloc_events <- s.s_alloc_events;
  t.free_events <- s.s_free_events

let report t ~kind ~addr ~size ~is_write ~pc ~hart ~detail =
  ignore
    (Report.add t.sink
       {
         kind;
         sanitizer = "kasan";
         addr;
         size;
         is_write;
         pc;
         hart;
         location = t.symbolize pc;
         detail;
       })

(* --- State maintenance ------------------------------------------------------- *)

let on_poison t ~addr ~size code = Shadow.poison t.shadow ~addr ~size code

let on_unpoison t ~addr ~size = Shadow.unpoison t.shadow ~addr ~size

let on_alloc t ~ptr ~size ~pc =
  t.alloc_events <- t.alloc_events + 1;
  if ptr <> 0 then begin
    Hashtbl.replace t.allocs ptr { a_size = size; a_pc = pc; freed_pc = None };
    Shadow.unpoison t.shadow ~addr:ptr ~size
  end

let on_free t ~ptr ~pc ~hart =
  t.free_events <- t.free_events + 1;
  if ptr <> 0 then
    match Hashtbl.find_opt t.allocs ptr with
    | Some info when info.freed_pc = None ->
        info.freed_pc <- Some pc;
        Shadow.poison t.shadow ~addr:ptr ~size:info.a_size Shadow.Freed;
        Queue.push ptr t.quarantine;
        if Queue.length t.quarantine > t.quarantine_max then begin
          (* stop tracking the oldest freed block (its shadow stays freed
             until the allocator reuses the address) *)
          let old = Queue.pop t.quarantine in
          match Hashtbl.find_opt t.allocs old with
          | Some i when i.freed_pc <> None -> Hashtbl.remove t.allocs old
          | Some _ | None -> ()
        end
    | Some _ ->
        report t ~kind:Report.Double_free ~addr:ptr ~size:0 ~is_write:true ~pc
          ~hart ~detail:"block already freed"
    | None ->
        report t ~kind:Report.Invalid_free ~addr:ptr ~size:0 ~is_write:true ~pc
          ~hart ~detail:"pointer was never allocated"

let on_register_global t ~addr ~size =
  let rz = t.redzone in
  Shadow.poison t.shadow ~addr:(addr - rz) ~size:rz Shadow.Global_redzone;
  let end_ = addr + size in
  let rz_start = (end_ + 7) land lnot 7 in
  Shadow.poison t.shadow ~addr:rz_start ~size:(rz + rz_start - end_)
    Shadow.Global_redzone;
  (* partial granule at the object tail *)
  if size land 7 <> 0 then Shadow.unpoison t.shadow ~addr ~size

let on_stack_poison t ~addr ~size =
  Shadow.poison t.shadow ~addr ~size Shadow.Stack_redzone

let on_stack_unpoison t ~addr ~size = Shadow.unpoison t.shadow ~addr ~size

(* --- Validation ------------------------------------------------------------------ *)

let describe_owner t addr =
  (* find the allocation record covering or nearest-below addr *)
  let best = ref None in
  Hashtbl.iter
    (fun ptr (info : alloc_info) ->
      if addr >= ptr && addr < ptr + info.a_size + 64 then
        match !best with
        | Some (p, _) when p >= ptr -> ()
        | _ -> best := Some (ptr, info))
    t.allocs;
  match !best with
  | Some (ptr, info) ->
      Printf.sprintf "block 0x%08x size %d alloc_pc 0x%08x%s" ptr info.a_size
        info.a_pc
        (match info.freed_pc with
        | Some pc -> Printf.sprintf " freed_pc 0x%08x" pc
        | None -> "")
  | None -> "no nearby allocation"

let on_access t ~addr ~size ~is_write ~pc ~hart =
  t.access_checks <- t.access_checks + 1;
  if addr < 0x1000 then
    report t ~kind:Report.Null_deref ~addr ~size ~is_write ~pc ~hart
      ~detail:"dereference in the first page"
  else
    match Shadow.check t.shadow ~addr ~size with
    | Shadow.Valid -> ()
    | Invalid code ->
        let kind =
          match code with
          | Shadow.Freed -> Report.Use_after_free
          | Heap_redzone | Stack_redzone | Global_redzone | Partial _ ->
              Report.Oob_access
          | Addressable -> assert false
        in
        report t ~kind ~addr ~size ~is_write ~pc ~hart
          ~detail:
            (Printf.sprintf "shadow: %s; %s" (Shadow.code_name code)
               (describe_owner t addr))

(* --- Plugin ------------------------------------------------------------------ *)

module Plugin = struct
  let name = "kasan"

  let points =
    [
      Api_spec.P_load;
      Api_spec.P_store;
      Api_spec.P_func_alloc;
      Api_spec.P_func_free;
      Api_spec.P_global_register;
      Api_spec.P_stack_poison;
      Api_spec.P_stack_unpoison;
    ]

  type nonrec t = t

  let create (ctx : Sanitizer.ctx) =
    create ~shadow:ctx.shadow ~sink:ctx.sink ~symbolize:ctx.symbolize ()

  let access t ~pc ~addr ~size ~is_write ~is_atomic:_ ~hart =
    on_access t ~addr ~size ~is_write ~pc ~hart

  let event t = function
    | Sanitizer.Alloc { ptr; size; pc; now = _ } -> on_alloc t ~ptr ~size ~pc
    | Free { ptr; pc; hart } -> on_free t ~ptr ~pc ~hart
    | Poison { addr; size; code } -> on_poison t ~addr ~size code
    | Unpoison { addr; size } -> on_unpoison t ~addr ~size
    | Register_global { addr; size } -> on_register_global t ~addr ~size
    | Stack_poison { addr; size } -> on_stack_poison t ~addr ~size
    | Stack_unpoison { addr; size } -> on_stack_unpoison t ~addr ~size
    | Ready ->
        (* re-establish live allocations made during boot: EmbSan-D
           intercepts them before the heap-poison init action replays *)
        Hashtbl.iter
          (fun ptr (info : alloc_info) ->
            if info.freed_pc = None then
              Shadow.unpoison t.shadow ~addr:ptr ~size:info.a_size)
          t.allocs

  let scan _ ~now:_ = 0

  let checkpoint t =
    let s = save t in
    fun () -> restore t s

  let stats t =
    [
      ("access_checks", t.access_checks);
      ("alloc_events", t.alloc_events);
      ("free_events", t.free_events);
    ]
end

let plugin : Sanitizer.plugin = (module Plugin)
