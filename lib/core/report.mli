(** Sanitizer bug reports: structured records, deduplication and
    kernel-style pretty printing. *)

type bug_kind =
  | Oob_access
  | Use_after_free
  | Double_free
  | Invalid_free
  | Null_deref
  | Wild_access
  | Data_race
  | Memory_leak
  | Unaligned_access

val kind_name : bug_kind -> string

type t = {
  kind : bug_kind;
  sanitizer : string;  (** "kasan" | "kcsan" | "kmemleak" *)
  addr : int;
  size : int;
  is_write : bool;
  pc : int;
  hart : int;
  location : string option;  (** symbolized function, when available *)
  detail : string;  (** free-form: allocation info, racing pc, ... *)
}

(** Deduplication key: bug class at a location, like syzbot's crash titles. *)
val dedup_key : t -> string

(** One-line title, e.g. ["KASAN: use-after-free in tc_filter_stats"]. *)
val title : t -> string

(** Kernel-oops-style multi-line rendering. *)
val pp : Format.formatter -> t -> unit

(** A collection sink with duplicate suppression. *)
type sink = {
  mutable reports : t list;
  seen : (string, int) Hashtbl.t;
  mutable limit : int;
}

val create_sink : ?limit:int -> unit -> sink

(** Add a report; returns [true] iff it is a new (non-duplicate) bug. *)
val add : sink -> t -> bool

(** Unique reports in arrival order. *)
val unique_reports : sink -> t list

(** Number of unique bugs seen. *)
val count : sink -> int

(** Hit count for one dedup key. *)
val hits : sink -> string -> int

(** Total report events including duplicates of already-seen bugs. *)
val total_hits : sink -> int

val clear : sink -> unit

(** Snapshot of the sink (report list plus dedup table): restoring reverts
    both the unique reports and the per-key hit counts. *)
type sink_state

val save_sink : sink -> sink_state
val restore_sink : sink -> sink_state -> unit
