(* Sanitizer interface specifications.

   The Distiller's input is the reference sanitizer's interface description
   ("the sanitizers' interface header files", S3.1).  We ship the KASAN and
   KCSAN reference interfaces in a small declarative header format and parse
   them here:

     sanitizer kasan;
     resource shadow_memory;
     check  load(addr, size) => check_access;
     update func_alloc(ptr, size) => alloc;

   Each line declares one interception API: its role (check/update), the
   interception point, the arguments the sanitizer wants at that point and
   the runtime operation to invoke. *)

type role = Check | Update

type point =
  | P_load
  | P_store
  | P_func_alloc (* allocator-entry interception (various Xalloc()) *)
  | P_func_free
  | P_global_register
  | P_stack_poison
  | P_stack_unpoison

let point_name = function
  | P_load -> "load"
  | P_store -> "store"
  | P_func_alloc -> "func_alloc"
  | P_func_free -> "func_free"
  | P_global_register -> "global"
  | P_stack_poison -> "stack_poison"
  | P_stack_unpoison -> "stack_unpoison"

let point_of_name = function
  | "load" -> Some P_load
  | "store" -> Some P_store
  | "func_alloc" -> Some P_func_alloc
  | "func_free" -> Some P_func_free
  | "global" -> Some P_global_register
  | "stack_poison" -> Some P_stack_poison
  | "stack_unpoison" -> Some P_stack_unpoison
  | _ -> None

type api = {
  role : role;
  point : point;
  args : string list; (* argument names, e.g. ["addr"; "size"; "pc"] *)
  operation : string; (* runtime operation to dispatch to *)
}

type t = { san_name : string; resources : string list; apis : api list }

(* --- Reference interface headers ------------------------------------------------ *)

let kasan_header =
  {|
/* Kernel Address Sanitizer - interception interface */
sanitizer kasan;
resource shadow_memory;
resource alloc_tracking;
resource quarantine;
check  load(addr, size) => check_access;
check  store(addr, size) => check_access;
update func_alloc(ptr, size) => alloc;
update func_free(ptr) => free;
update global(addr, size) => register_global;
update stack_poison(addr, size) => poison_stack;
update stack_unpoison(addr, size) => unpoison_stack;
|}

let kcsan_header =
  {|
/* Kernel Concurrency Sanitizer - interception interface */
sanitizer kcsan;
resource watchpoints;
check  load(addr, size, pc, hart) => access;
check  store(addr, size, value, pc, hart) => access;
|}

(* The "third sanitizer" of S5's adaptability discussion: a kmemleak-style
   leak detector whose entire interface is the allocator interception
   points the Distiller already understands. *)
let kmemleak_header =
  {|
/* kmemleak-style leak detector - interception interface */
sanitizer kmemleak;
resource alloc_tracking;
update func_alloc(ptr, size, pc) => track_alloc;
update func_free(ptr) => track_free;
|}

(* A UBSAN-style alignment checker: the fourth sanitizer, demonstrating
   that a new detector is an interface header plus a registered plugin
   (Ualign) -- the runtime needs no changes. *)
let ualign_header =
  {|
/* UBSAN-style unaligned-access detector - interception interface */
sanitizer ualign;
resource alignment_rules;
check  load(addr, size, pc) => check_align;
check  store(addr, size, pc) => check_align;
|}

(* An EmbedSanitizer-style FastTrack happens-before race detector: precise
   vector-clock race detection as a pure plugin (Ftrace).  Synchronization
   edges arrive out-of-band through the guest's san_sync hypercall, so the
   interface header only declares the two hot-path access checks. *)
let ftrace_header =
  {|
/* FastTrack happens-before race detector - interception interface */
sanitizer ftrace;
resource vector_clocks;
resource sync_objects;
check  load(addr, size, pc) => hb_read;
check  store(addr, size, pc) => hb_write;
|}

(* --- Header parser ----------------------------------------------------------------- *)

exception Spec_error of string

let errf fmt = Format.kasprintf (fun s -> raise (Spec_error s)) fmt

let strip_comment line =
  match String.index_opt line '/' with
  | Some i when i + 1 < String.length line && line.[i + 1] = '*' ->
      String.sub line 0 i
  | _ -> line

let tokens_of_line line =
  line
  |> String.map (fun c ->
         match c with '(' | ')' | ',' | ';' -> ' ' | c -> c)
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let parse_header text =
  let name = ref None and resources = ref [] and apis = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = strip_comment (String.trim line) in
         if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "/*")
         then
           match tokens_of_line line with
           | [] -> ()
           | [ "sanitizer"; n ] -> name := Some n
           | [ "resource"; r ] -> resources := r :: !resources
           | role :: point :: rest -> (
               let role =
                 match role with
                 | "check" -> Check
                 | "update" -> Update
                 | r -> errf "bad role %s" r
               in
               let point =
                 match point_of_name point with
                 | Some p -> p
                 | None -> errf "unknown interception point %s" point
               in
               match List.rev rest with
               | operation :: "=>" :: rev_args ->
                   apis := { role; point; args = List.rev rev_args; operation } :: !apis
               | _ -> errf "missing '=> operation' in %S" line)
           | _ -> errf "cannot parse header line %S" line);
  match !name with
  | None -> errf "header lacks a 'sanitizer' declaration"
  | Some san_name ->
      { san_name; resources = List.rev !resources; apis = List.rev !apis }

let kasan () = parse_header kasan_header
let kcsan () = parse_header kcsan_header
let kmemleak () = parse_header kmemleak_header
let ualign () = parse_header ualign_header
let ftrace () = parse_header ftrace_header
