(* Cycle cost model used to compute sanitizer slowdowns (Figure 2).

   Host wall-clock in this container says nothing about the paper's
   QEMU-on-Ryzen testbed, so overhead factors are computed from dynamic
   counts weighted by these constants.  Justification:

   - A TCG-translated guest ALU instruction costs roughly an order of
     magnitude more than a native one; loads/stores pay the softmmu
     translation path on top, making them ~3x an ALU op.
   - An EmbSan-D probe leaves the translated-code loop, reconstructs the
     sanitizer call arguments and dispatches into the host runtime; the
     paper's perf analysis (S4.3) attributes EmbSan-D's extra cost to
     exactly this "context switch and argument reconstruction".
   - An EmbSan-C callout enters the host through the direct hypercall fast
     path (S3.3), which skips argument reconstruction.
   - Native (in-guest) sanitizer checks have no host-side constant: their
     cost is whatever their inlined guest instructions cost through the
     first two rules, i.e. they run *translated*, which is the reason the
     paper found EmbSan occasionally beating native sanitizers. *)

let alu_insn = 10
let mem_insn = 30

let embsan_d_probe = 78
let embsan_c_hypercall = 115

(* Extra host-side work per access for the KCSAN functionality.  The two
   modes differ: a C-mode hypercall carries the sanitizer-relevant accesses
   only, and the host reconstructs the full access record from guest
   registers before the watchpoint lookup; D-mode events arrive pre-decoded
   from the translated-code probe and pass an address prefilter first, so
   the average per-event work is smaller. *)
let kcsan_host_check_c = 380
let kcsan_host_check_d = 170

(** Generic (non-fast-path) hypercall dispatch: routing an EmbSan-C callout
    through the same probe machinery and argument reconstruction as an
    EmbSan-D event instead of the direct hypercall path (S3.3).  Used by
    the ablation bench. *)
let generic_trap_dispatch = 215

let insn_cost (insn : Embsan_isa.Insn.t) =
  if Embsan_isa.Insn.is_memory_access insn then mem_insn else alu_insn

(** Total modeled cost of a translated block's instructions.  The engine
    charges this once per block entry (batched accounting) instead of
    ticking per executed instruction, and corrects with the per-op prefix
    sums on exceptional exits. *)
let block_cost insns =
  List.fold_left (fun acc (_, i) -> acc + insn_cost i) 0 insns
