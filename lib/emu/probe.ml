(* Instrumentation probes inserted into translated code templates.

   This is the mechanism EmbSan's Common Sanitizer Runtime relies on
   (S3.3): callbacks are *inserted at translation time* into the ops of a
   basic block, so subscribing or unsubscribing bumps [epoch] and flushes
   the translation cache (the machine also drops chained-successor links
   through the same epoch check).

   Subscribers are stored in arrays, appended in registration order.
   Registration is rare and cold; dispatch is the hot path, so [fire_*]
   special-cases the common one-sanitizer case into a direct closure call
   and the no-subscriber case is compiled out of the templates entirely
   (the machine consults [has_*] at translation time). *)

type mem_event = {
  hart : int;
  pc : int;
  addr : int;
  size : int;
  is_write : bool;
  is_atomic : bool; (* AMO instructions: marked accesses for KCSAN *)
  value : int; (* value being written (stores); 0 for loads (pre-access) *)
}

type call_event = { c_hart : int; c_pc : int; c_target : int }

type ret_event = { r_hart : int; r_pc : int; r_target : int; r_retval : int }

type block_event = { b_hart : int; b_pc : int }

type t = {
  mutable mem : (mem_event -> unit) array;
  mutable calls : (call_event -> unit) array;
  mutable rets : (ret_event -> unit) array;
  mutable blocks : (block_event -> unit) array;
  mutable epoch : int;
}

let create () =
  { mem = [||]; calls = [||]; rets = [||]; blocks = [||]; epoch = 0 }

let bump t = t.epoch <- t.epoch + 1

(* Append preserving registration (fire) order.  O(n) copy, but n is the
   number of *subscribers* (a handful), not events, and registration is
   once per attach -- unlike the old [l @ [f]] list representation this
   keeps dispatch allocation-free and cache-friendly. *)
let append a f = Array.append a [| f |]

let on_mem t f =
  t.mem <- append t.mem f;
  bump t

let on_call t f =
  t.calls <- append t.calls f;
  bump t

let on_ret t f =
  t.rets <- append t.rets f;
  bump t

let on_block t f =
  t.blocks <- append t.blocks f;
  bump t

let clear t =
  t.mem <- [||];
  t.calls <- [||];
  t.rets <- [||];
  t.blocks <- [||];
  bump t

let has_mem t = Array.length t.mem > 0
let has_calls t = Array.length t.calls > 0
let has_rets t = Array.length t.rets > 0
let has_blocks t = Array.length t.blocks > 0

(* Dedicated single-subscriber fast path: one sanitizer attached is the
   overwhelmingly common configuration, and a direct closure call beats a
   generic iteration. *)

let fire_mem t ev =
  let a = t.mem in
  if Array.length a = 1 then (Array.unsafe_get a 0) ev
  else
    for i = 0 to Array.length a - 1 do
      (Array.unsafe_get a i) ev
    done

let fire_call t ev =
  let a = t.calls in
  if Array.length a = 1 then (Array.unsafe_get a 0) ev
  else
    for i = 0 to Array.length a - 1 do
      (Array.unsafe_get a i) ev
    done

let fire_ret t ev =
  let a = t.rets in
  if Array.length a = 1 then (Array.unsafe_get a 0) ev
  else
    for i = 0 to Array.length a - 1 do
      (Array.unsafe_get a i) ev
    done

let fire_block t ev =
  let a = t.blocks in
  if Array.length a = 1 then (Array.unsafe_get a 0) ev
  else
    for i = 0 to Array.length a - 1 do
      (Array.unsafe_get a i) ev
    done
