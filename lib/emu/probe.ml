(* Patchable instrumentation probe sites for the translated code
   templates.

   This is the mechanism EmbSan's Common Sanitizer Runtime relies on
   (S3.3), redesigned Icicle-style ("instrumentation without
   recompilation"): translated blocks compile in per-kind *sites* that
   consult the subscriber arrays below at run time.  The arrays ARE the
   shared site table -- subscribing or unsubscribing swaps an array in
   O(1) and every already-translated block observes the change on its
   next dispatch.  No epoch, no translation-cache flush, no
   retranslation.

   Subscribers are stored in arrays, appended in registration order.
   Registration is rare and cold; dispatch is the hot path, so a site's
   armed check is one array-length load and [fire_*] special-cases the
   common one-sanitizer case into a direct closure call. *)

type mem_event = {
  hart : int;
  pc : int;
  addr : int;
  size : int;
  is_write : bool;
  is_atomic : bool; (* AMO instructions: marked accesses for KCSAN *)
  value : int; (* value being written (stores); 0 for loads (pre-access) *)
}

type call_event = { c_hart : int; c_pc : int; c_target : int }

type ret_event = { r_hart : int; r_pc : int; r_target : int; r_retval : int }

type block_event = { b_hart : int; b_pc : int }

type t = {
  mutable mem : (mem_event -> unit) array;
  mutable calls : (call_event -> unit) array;
  mutable rets : (ret_event -> unit) array;
  mutable blocks : (block_event -> unit) array;
}

(* A subscription handle: an idempotent removal thunk closing over the
   exact subscriber it added. *)
type sub = { mutable live : bool; remove : unit -> unit }

let create () = { mem = [||]; calls = [||]; rets = [||]; blocks = [||] }

(* Append preserving registration (fire) order.  O(n) copy, but n is the
   number of *subscribers* (a handful), not events, and registration is
   once per attach -- unlike the old [l @ [f]] list representation this
   keeps dispatch allocation-free and cache-friendly. *)
let append a f = Array.append a [| f |]

(* Remove the first physical occurrence of [f], preserving the order of
   everything else; the array swap is the whole "unpatch" -- sites see
   the new table on their next check. *)
let remove_first a f =
  let rec go = function
    | [] -> []
    | g :: rest -> if g == f then rest else g :: go rest
  in
  Array.of_list (go (Array.to_list a))

let subscribe_mem t f =
  t.mem <- append t.mem f;
  { live = true; remove = (fun () -> t.mem <- remove_first t.mem f) }

let subscribe_call t f =
  t.calls <- append t.calls f;
  { live = true; remove = (fun () -> t.calls <- remove_first t.calls f) }

let subscribe_ret t f =
  t.rets <- append t.rets f;
  { live = true; remove = (fun () -> t.rets <- remove_first t.rets f) }

let subscribe_block t f =
  t.blocks <- append t.blocks f;
  { live = true; remove = (fun () -> t.blocks <- remove_first t.blocks f) }

let unsubscribe (s : sub) =
  if s.live then begin
    s.live <- false;
    s.remove ()
  end

(* Handle-free subscription, kept for callers that never detach. *)
let on_mem t f = ignore (subscribe_mem t f : sub)
let on_call t f = ignore (subscribe_call t f : sub)
let on_ret t f = ignore (subscribe_ret t f : sub)
let on_block t f = ignore (subscribe_block t f : sub)

let clear t =
  t.mem <- [||];
  t.calls <- [||];
  t.rets <- [||];
  t.blocks <- [||]

let has_mem t = Array.length t.mem > 0
let has_calls t = Array.length t.calls > 0
let has_rets t = Array.length t.rets > 0
let has_blocks t = Array.length t.blocks > 0

(* Dedicated single-subscriber fast path: one sanitizer attached is the
   overwhelmingly common configuration, and a direct closure call beats a
   generic iteration. *)

let fire_mem t ev =
  let a = t.mem in
  if Array.length a = 1 then (Array.unsafe_get a 0) ev
  else
    for i = 0 to Array.length a - 1 do
      (Array.unsafe_get a i) ev
    done

let fire_call t ev =
  let a = t.calls in
  if Array.length a = 1 then (Array.unsafe_get a 0) ev
  else
    for i = 0 to Array.length a - 1 do
      (Array.unsafe_get a i) ev
    done

let fire_ret t ev =
  let a = t.rets in
  if Array.length a = 1 then (Array.unsafe_get a 0) ev
  else
    for i = 0 to Array.length a - 1 do
      (Array.unsafe_get a i) ev
    done

let fire_block t ev =
  let a = t.blocks in
  if Array.length a = 1 then (Array.unsafe_get a 0) ev
  else
    for i = 0 to Array.length a - 1 do
      (Array.unsafe_get a i) ev
    done
