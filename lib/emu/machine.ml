(* Full-system machine: RAM, MMIO bus, harts, hypercall table, and a
   TCG-like execution engine that translates basic blocks into closure
   arrays with *patchable instrumentation sites*.

   Engine hot-path design (see DESIGN.md "Execution engine" and
   "Fuzzing-first engine"):

   - patchable probe sites: every translated op that can be instrumented
     (mem/call/ret/compare, plus dirty-page tracking) compiles in a site
     that consults the shared site table ({!Probe.t} subscriber arrays,
     [Ram.track_dirty], [Cmplog.enabled]) at run time.  Toggling any of
     them is an O(1) mutation observed by already-translated code on its
     next dispatch -- no retranslation, no flush (Icicle's
     "instrumentation without recompilation");
   - block chaining: each translated block caches up to two successor
     links (generation-tagged), so straight-line code and loops transfer
     control without touching the block hashtable;
   - superblock formation: chain heads that stay hot are fused with their
     chained successors into a single closure array, with per-boundary
     guard ops that keep scheduling, probe events and accounting exactly
     what the unfused chain would produce;
   - allocation-free RAM fast path: load/store templates are specialized
     at translation time per width and bounds-check straight into
     [Ram.bytes]; the {!Fault.access} record is only constructed on the
     MMIO/fault slow path;
   - batched accounting: retired-instruction and cycle-cost counters are
     charged once per block entry from translate-time totals, with a
     prefix-sum correction on exceptional exits, instead of two mutable
     increments per instruction;
   - the [Baseline] engine mode keeps the original per-instruction,
     hashtable-every-block interpreter for semantics-equivalence tests and
     as the measured before/after baseline in BENCH_emu.json. *)

open Embsan_isa

type stop =
  | Halted of int
  | Fault of Fault.access * string
  | Unhandled_trap of { pc : int; num : int }
  | Decode_fault of { pc : int; reason : string }
  | Budget_exhausted
  | Deadlock

let pp_stop fmt = function
  | Halted code -> Fmt.pf fmt "halted(%d)" code
  | Fault (a, reason) -> Fmt.pf fmt "fault(%s: %a)" reason Fault.pp_access a
  | Unhandled_trap { pc; num } ->
      Fmt.pf fmt "unhandled-trap(%d @ %s)" num (Word32_hex.hex pc)
  | Decode_fault { pc; reason } ->
      Fmt.pf fmt "decode-fault(%s @ %s)" reason (Word32_hex.hex pc)
  | Budget_exhausted -> Fmt.string fmt "budget-exhausted"
  | Deadlock -> Fmt.string fmt "deadlock"

(* A translated block.  [b_gen] tags the translation-cache generation the
   block (and anything it links to) was built under; a mismatch
   invalidates the block and every chain link pointing at it.  Probe
   state is NOT baked in -- ops carry patchable sites -- so there is no
   probe epoch.  [b_insns]/[b_cost] are the translate-time totals charged
   on entry; [b_cost_pfx.(i)] / [b_insn_pfx.(i)] are the cost / retired
   insns of ops 0..i inclusive, used to correct the pre-charge when op
   [i] raises (superblocks make the op->insn mapping non-trivial, so the
   insn side needs its own prefix array too).

   [b_execs]/[b_super] drive superblock formation: when a chain head
   stays hot, its chained successors are fused into [b_super], a block
   whose ops are the concatenation of freshly translated constituents
   with guard ops at the boundaries ([b_blocks] counts constituents, and
   is the fused block's cost against the per-turn chain budget). *)
type block = {
  b_base : int; (* guest pc this block was translated from *)
  b_gen : int;
  b_ops : (Cpu.t -> unit) array;
  b_insns : int;
  b_cost : int;
  b_cost_pfx : int array;
  b_insn_pfx : int array;
  b_blocks : int; (* chain-budget cost: 1, or fused constituent count *)
  mutable b_execs : int; (* hotness counter for superblock formation *)
  mutable b_super : block option; (* fused [this + chained successors] *)
  mutable l0_pc : int;
  mutable l0 : block option;
  mutable l1_pc : int;
  mutable l1 : block option;
}

type engine = Fast | Baseline

(* Model-free MMIO rehosting hook (implemented by lib/rehost; the record
   of closures keeps the emulator free of fuzzer dependencies).  When
   installed, unmapped-bus accesses from guest code (hart >= 0) whose
   address satisfies [rh_covers] are served by the hook instead of
   faulting: reads come from a fuzz-input stream behind a (pc, addr)
   memoization table, writes are recorded.  The host-side debug accessors
   ([read_mem]/[write_mem], hart = -1) never consult the hook so they
   cannot pollute the memo table.  [rh_save]/[rh_restore] round-trip the
   hook's state (memo table, pending interrupt plan) through {!Snap}. *)
type rehost = {
  rh_read : pc:int -> addr:int -> size:int -> int;
  rh_write : pc:int -> addr:int -> size:int -> value:int -> unit;
  rh_covers : int -> bool;
  rh_save : unit -> string;
  rh_restore : string -> unit;
}

type t = {
  arch : Arch.t;
  ram : Ram.t;
  mutable devices : Device.t array; (* sorted by base, non-overlapping *)
  uart : Devices.uart;
  mailbox : Devices.mailbox;
  harts : Cpu.t array;
  probes : Probe.t;
  cmplog : Cmplog.t;
  block_cache : (int, block) Hashtbl.t;
  trap_handlers : (int, handler) Hashtbl.t;
  stats : Engine_stats.t;
  mutable engine : engine;
  mutable superblocks : bool; (* substitute fused blocks when available *)
  mutable super_threshold : int; (* execs before fusing; power of two *)
  mutable tcg_gen : int; (* bumped by flush_tcg; invalidates chain links *)
  mutable deadline : int; (* current run_slice deadline, for fused guards *)
  mutable total_insns : int;
  mutable cost : int; (* modeled guest cycles, Cost_model weights *)
  mutable external_cost : int; (* host-side sanitizer cost units *)
  mutable next_hart : int;
  mutable entry : int;
  mutable sched : scheduler option;
  mutable rehost : rehost option;
  mutable irq_entry : int;
      (* guest interrupt stub entry pc (Hypercall.irq_register); -1 = none *)
}

and handler = t -> Cpu.t -> unit

(* External hart scheduler: pick the next hart to run and the absolute
   [total_insns] deadline of its turn, or [None] when no hart is runnable
   (the run loop then applies its usual stall/deadlock handling).  [None]
   in the field selects the built-in round-robin rotation. *)
and scheduler = t -> (Cpu.t * int) option

exception Trap_unhandled of int * int (* pc, num *)

let ram_base t = Ram.base t.ram
let ram_size t = Ram.size t.ram

let sort_devices ds =
  let a = Array.copy ds in
  Array.sort (fun (a : Device.t) (b : Device.t) -> compare a.base b.base) a;
  a

let create ?(harts = 2) ?(ram_base = 0x0001_0000) ?(ram_size = 4 * 1024 * 1024)
    ?(seed = 1) ~arch () =
  let ram = Ram.create ~base:ram_base ~size:ram_size in
  let uart_state, uart_dev = Devices.uart () in
  let mailbox_state, mailbox_dev = Devices.mailbox () in
  let rec m =
    lazy
      {
        arch;
        ram;
        devices =
          sort_devices
            [|
              uart_dev;
              Devices.power ();
              mailbox_dev;
              Devices.timer ~now:(fun () -> (Lazy.force m).total_insns);
              Devices.rng ~seed;
            |];
        uart = uart_state;
        mailbox = mailbox_state;
        harts = Array.init harts Cpu.create;
        probes = Probe.create ();
        cmplog = Cmplog.create ();
        block_cache = Hashtbl.create 1024;
        trap_handlers = Hashtbl.create 16;
        stats = Engine_stats.create ();
        engine = Fast;
        superblocks = true;
        super_threshold = 64;
        tcg_gen = 0;
        deadline = max_int;
        total_insns = 0;
        cost = 0;
        external_cost = 0;
        next_hart = 0;
        entry = 0;
        sched = None;
        rehost = None;
        irq_entry = -1;
      }
  in
  Lazy.force m

let add_device t dev =
  t.devices <- sort_devices (Array.append t.devices [| dev |])

let flush_raw t =
  Hashtbl.reset t.block_cache;
  (* chained links and fused superblocks inside still-referenced blocks
     survive the hashtable reset; bumping the generation invalidates
     them *)
  t.tcg_gen <- t.tcg_gen + 1

(* Explicit invalidation (self-modifying code, engine switch, snapshot
   restore).  Instrumentation toggles do NOT come through here any more:
   probe subscribe/unsubscribe, dirty tracking and cmplog all patch live
   sites, which is what keeps [flushes_invalidate] at ~0 under a
   probe-toggle storm (the toggle-storm oracle pins this). *)
let flush_tcg t =
  flush_raw t;
  t.stats.flushes_invalidate <- t.stats.flushes_invalidate + 1

let set_engine t engine =
  if t.engine <> engine then begin
    t.engine <- engine;
    flush_tcg t
  end

(* Dirty-page tracking is a patchable site in the translated store
   templates: stores consult [Ram.track_dirty] at run time, so toggling
   is one boolean write -- no flush, and a no-op toggle is free. *)
let set_dirty_tracking t on = Ram.set_track_dirty t.ram on

(* Compare-operand recording is a patchable site in branch/compare
   templates; same O(1), flush-free toggle. *)
let set_cmplog t on = t.cmplog.Cmplog.enabled <- on

(* The rehost hook is consulted only on the unmapped-MMIO slow paths
   (after the RAM bounds check and device dispatch both miss), which the
   translated templates already reach through run-time calls -- so
   arming/disarming is one field write observed by already-translated
   code: O(1), no flush (the zero-flush discipline the toggle-storm
   oracle pins for the other knobs). *)
let set_rehost t rh = t.rehost <- rh

(** Enable/disable hot-chain fusion.  O(1): existing fused blocks are
    kept but not substituted while off. *)
let set_superblocks t on = t.superblocks <- on

(** Executions of a chain head before fusion is attempted; must be a
    power of two (the hotness check is a mask). *)
let set_super_threshold t n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Machine.set_super_threshold: power of two >= 2 expected";
  t.super_threshold <- n

let set_trap_handler t num handler = Hashtbl.replace t.trap_handlers num handler

let remove_trap_handler t num = Hashtbl.remove t.trap_handlers num

(** Add host-side sanitizer cost units (see {!Cost_model}). *)
let add_external_cost t units = t.external_cost <- t.external_cost + units

(** Modeled total cost of the run so far: translated guest cycles plus
    host-side sanitizer work. *)
let total_cost t = t.cost + t.external_cost

let load_image t (image : Image.t) =
  if image.arch <> t.arch then invalid_arg "Machine.load_image: arch mismatch";
  Ram.load_image t.ram image;
  t.entry <- image.entry;
  (* loading replaces guest code: an unavoidable flush, accounted apart
     from invalidation flushes so toggle-storm measurements start at 0 *)
  flush_raw t;
  t.stats.flushes_load <- t.stats.flushes_load + 1

let start_hart t id ~pc ~sp = Cpu.reset t.harts.(id) ~pc ~sp

(** Boot hart 0 at the image entry with the stack at the top of RAM. *)
let boot t =
  start_hart t 0 ~pc:t.entry ~sp:(Ram.limit t.ram - 16)

(* --- Bus ------------------------------------------------------------------ *)

(* Devices are kept sorted by base and do not overlap, so MMIO dispatch is
   a binary search instead of the old linear list walk. *)
let find_device t addr =
  let ds = t.devices in
  let lo = ref 0 and hi = ref (Array.length ds - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = ds.(mid) in
    if addr < d.Device.base then hi := mid - 1
    else if addr >= d.Device.base + d.Device.size then lo := mid + 1
    else begin
      found := Some d;
      lo := !hi + 1
    end
  done;
  !found

let bus_read t (acc : Fault.access) =
  if Ram.contains t.ram acc.addr ~size:acc.size then Ram.read t.ram acc.addr acc.size
  else
    match find_device t acc.addr with
    | Some d -> d.read ~offset:(acc.addr - d.base) ~width:acc.size
    | None -> (
        match t.rehost with
        | Some rh when acc.hart >= 0 && rh.rh_covers acc.addr ->
            t.stats.rehost_reads <- t.stats.rehost_reads + 1;
            rh.rh_read ~pc:acc.pc ~addr:acc.addr ~size:acc.size
        | _ ->
            Ram.check t.ram acc;
            0)

let bus_write t (acc : Fault.access) value =
  if Ram.contains t.ram acc.addr ~size:acc.size then
    Ram.write t.ram acc.addr acc.size value
  else
    match find_device t acc.addr with
    | Some d -> d.write ~offset:(acc.addr - d.base) ~width:acc.size ~value
    | None -> (
        match t.rehost with
        | Some rh when acc.hart >= 0 && rh.rh_covers acc.addr ->
            rh.rh_write ~pc:acc.pc ~addr:acc.addr ~size:acc.size ~value
        | _ -> Ram.check t.ram acc)

(* The fast engine charges a whole block's retired-insn total on entry, so
   while the block's ops run [total_insns] is over-charged by the ops not
   yet executed.  That is invisible to pure guest code, but devices can
   observe the counter (the timer reads it) and probe callbacks key stall
   windows off it, so a mid-block access must see exactly the count the
   per-instruction-ticking baseline engine would show.  [over] is the op's
   translate-time distance from the block end; the counter is rewound
   around the callback and restored even when it raises (power writes
   raise [Halted], probes raise [Retry_at]), which keeps the
   [exec_ops] prefix-sum rollback arithmetic intact. *)
let rewound t ~over f =
  if over = 0 then f ()
  else begin
    t.total_insns <- t.total_insns - over;
    match f () with
    | v ->
        t.total_insns <- t.total_insns + over;
        v
    | exception e ->
        t.total_insns <- t.total_insns + over;
        raise e
  end

(* MMIO/fault slow paths for the translated fast-path templates: the
   {!Fault.access} record is only allocated here, after the RAM bounds
   check has already failed.  [over] rewinds the block pre-charge around
   the device callback (see {!rewound}); the fault path needs no rewind
   because fault records carry no counters. *)

let slow_read t ~hart ~pc ~addr ~size ~over =
  match find_device t addr with
  | Some d ->
      rewound t ~over (fun () ->
          d.Device.read ~offset:(addr - d.base) ~width:size)
  | None -> (
      match t.rehost with
      | Some rh when hart >= 0 && rh.rh_covers addr ->
          t.stats.rehost_reads <- t.stats.rehost_reads + 1;
          rewound t ~over (fun () -> rh.rh_read ~pc ~addr ~size)
      | _ ->
          Ram.check t.ram { hart; pc; addr; size; is_write = false };
          0)

let slow_write t ~hart ~pc ~addr ~size ~over value =
  match find_device t addr with
  | Some d ->
      rewound t ~over (fun () ->
          d.Device.write ~offset:(addr - d.base) ~width:size ~value)
  | None -> (
      match t.rehost with
      | Some rh when hart >= 0 && rh.rh_covers addr ->
          rewound t ~over (fun () -> rh.rh_write ~pc ~addr ~size ~value)
      | _ -> Ram.check t.ram { hart; pc; addr; size; is_write = true })

(* Debug accessors used by the sanitizer runtime and tests. *)
let read_mem t ~addr ~width =
  bus_read t { hart = -1; pc = 0; addr; size = width; is_write = false }

let write_mem t ~addr ~width ~value =
  bus_write t { hart = -1; pc = 0; addr; size = width; is_write = true } value

let read_string t ~addr ~len = Ram.read_string t.ram ~addr ~len

let console_output t = Devices.uart_output t.uart

(* --- TCG-like translator ------------------------------------------------- *)

let max_block_insns = 32

let alu_eval (op : Insn.alu_op) a b =
  match op with
  | Add -> Word32.add a b
  | Sub -> Word32.sub a b
  | Mul -> Word32.mul a b
  | Divu -> Word32.divu a b
  | Remu -> Word32.remu a b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> Word32.shl a b
  | Shru -> Word32.shru a b
  | Shrs -> Word32.shrs a b
  | Slt -> if Word32.lt_s a b then 1 else 0
  | Sltu -> if Word32.lt_u a b then 1 else 0
  | Seq -> if Word32.wrap a = Word32.wrap b then 1 else 0
  | Sne -> if Word32.wrap a <> Word32.wrap b then 1 else 0

let cond_eval (c : Insn.cond) a b =
  match c with
  | Eq -> Word32.wrap a = Word32.wrap b
  | Ne -> Word32.wrap a <> Word32.wrap b
  | Lt -> Word32.lt_s a b
  | Ltu -> Word32.lt_u a b
  | Ge -> not (Word32.lt_s a b)
  | Geu -> not (Word32.lt_u a b)

let load_result width signed raw =
  match (width : Insn.width) with
  | W8 -> if signed then Word32.sext raw 8 else Word32.zext raw 8
  | W16 -> if signed then Word32.sext raw 16 else Word32.zext raw 16
  | W32 -> Word32.wrap raw

let fetch_insn t pc =
  if not (Ram.contains t.ram pc ~size:Insn.size) then
    raise
      (Fault.Memory_fault
         ( { hart = -1; pc; addr = pc; size = Insn.size; is_write = false },
           "instruction fetch outside RAM" ));
  Codec.decode_with t.arch ~addr:pc (fun off -> Ram.read8 t.ram off) pc

let collect_block t base =
  let rec collect pc acc n =
    let insn = fetch_insn t pc in
    let acc = (pc, insn) :: acc in
    if Insn.ends_block insn || n + 1 >= max_block_insns then
      (List.rev acc, pc + Insn.size)
    else collect (pc + Insn.size) acc (n + 1)
  in
  collect base [] 0

(* Translate one basic block starting at [base] for the fast engine.
   Instrumentation points compile to *patchable sites*: each op that can
   be instrumented captures the machine's shared probe/cmplog/dirty state
   records and checks the armed condition (one field load and branch) at
   run time, dispatching to a probed or an uninstrumented closure both
   built here.  Toggling a probe therefore patches every translated block
   at once, with zero flushes; the unarmed path still bounds-checks
   straight into RAM bytes with no callback and no allocation, exactly
   like an uninstrumented TCG template.  Ops do not touch the
   retired-insn/cost counters; those are charged per-block by the run
   loop.

   [pad_insns] supports superblock formation: a constituent re-translated
   into a fused block sits [pad_insns] retired instructions before the
   fused block's end, so every op's [over] rewind distance is shifted by
   it (the fused pre-charge covers the whole superblock). *)
let translate_fast ?(pad_insns = 0) t base =
  let p = t.probes in
  let cl = t.cmplog in
  let ram = t.ram in
  (* Register indices, arithmetic ops and RAM bounds are all resolved at
     translation time; the generated closures touch [cpu.regs] and the RAM
     bytes directly.  Register values are invariantly 32-bit-wrapped (only
     these stores write them, and they mask), and r0 is never written, so
     unsafe reads of precomputed indices are exact [Cpu.get] semantics. *)
  let bytes = ram.Ram.bytes in
  let rbase = ram.Ram.base in
  let rlim = rbase + Bytes.length bytes in
  (* Dirty-page tracking is a patchable site too: stores read
     [ram.track_dirty] at run time.  The tracked store path adds one
     byte write per store (two when the access straddles a page
     boundary) and no allocation. *)
  let dirtyb = ram.Ram.dirty in
  let pshift = Ram.page_shift in
  let mark off n =
    Bytes.unsafe_set dirtyb (off lsr pshift) '\xFF';
    let last = (off + n - 1) lsr pshift in
    if last <> off lsr pshift then Bytes.unsafe_set dirtyb last '\xFF'
  in
  let ri = Reg.to_int in
  let sgn v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v in
  let insns, end_pc = collect_block t base in
  let n_insns = List.length insns in
  (* [idx] is the op's position in the block; memory ops turn it into the
     [over] rewind distance so device reads and probe callbacks observe
     exact per-instruction counters despite the batched block pre-charge
     (see {!rewound}). *)
  let op_of idx (pc, insn) : Cpu.t -> unit =
    match (insn : Insn.t) with
    | Nop | Fence -> fun _cpu -> ()
    | Halt -> fun cpu -> raise (Fault.Halted (Cpu.get cpu Reg.a0))
    | Li (rd, imm) ->
        let d = ri rd and v = Word32.wrap imm in
        if d = 0 then fun _cpu -> ()
        else fun cpu -> Array.unsafe_set cpu.Cpu.regs d v
    | Alu (op, rd, rs1, rs2) ->
        let d = ri rd and a = ri rs1 and b = ri rs2 in
        if d = 0 then fun _cpu -> () (* ALU ops are pure; r0 sink discards *)
        else
          let bin f cpu =
            let r = cpu.Cpu.regs in
            Array.unsafe_set r d
              (f (Array.unsafe_get r a) (Array.unsafe_get r b)
              land 0xFFFF_FFFF)
          in
          (* reg-reg compares carry a cmplog site: when recording is
             enabled the operand pair feeds compare-operand coverage *)
          let cbin f cpu =
            let r = cpu.Cpu.regs in
            let x = Array.unsafe_get r a and y = Array.unsafe_get r b in
            if cl.Cmplog.enabled then Cmplog.record cl ~pc ~lhs:x ~rhs:y;
            Array.unsafe_set r d (f x y land 0xFFFF_FFFF)
          in
          (match (op : Insn.alu_op) with
          | Add -> bin (fun x y -> x + y)
          | Sub -> bin (fun x y -> x - y)
          | Mul -> bin (fun x y -> x * y)
          | Divu -> bin (fun x y -> if y = 0 then 0xFFFF_FFFF else x / y)
          | Remu -> bin (fun x y -> if y = 0 then x else x mod y)
          | And -> bin (fun x y -> x land y)
          | Or -> bin (fun x y -> x lor y)
          | Xor -> bin (fun x y -> x lxor y)
          | Shl -> bin (fun x y -> x lsl (y land 31))
          | Shru -> bin (fun x y -> x lsr (y land 31))
          | Shrs -> bin (fun x y -> sgn x asr (y land 31))
          | Slt -> cbin (fun x y -> if sgn x < sgn y then 1 else 0)
          | Sltu -> cbin (fun x y -> if x < y then 1 else 0)
          | Seq -> cbin (fun x y -> if x = y then 1 else 0)
          | Sne -> cbin (fun x y -> if x <> y then 1 else 0))
    | Alui (op, rd, rs1, imm) ->
        let d = ri rd and a = ri rs1 in
        if d = 0 then fun _cpu -> ()
        else
          let unary f cpu =
            let r = cpu.Cpu.regs in
            Array.unsafe_set r d (f (Array.unsafe_get r a) land 0xFFFF_FFFF)
          in
          let w = Word32.wrap imm in
          (* immediate-compare cmplog site: the immediate is the value the
             guest is comparing against (a magic constant, when large) *)
          let cunary f cpu =
            let r = cpu.Cpu.regs in
            let x = Array.unsafe_get r a in
            if cl.Cmplog.enabled then Cmplog.record cl ~pc ~lhs:x ~rhs:w;
            Array.unsafe_set r d (f x land 0xFFFF_FFFF)
          in
          (match (op : Insn.alu_op) with
          | Add -> unary (fun x -> x + imm)
          | Sub -> unary (fun x -> x - imm)
          | Mul -> unary (fun x -> x * imm)
          | Divu -> unary (fun x -> if w = 0 then 0xFFFF_FFFF else x / w)
          | Remu -> unary (fun x -> if w = 0 then x else x mod w)
          | And -> unary (fun x -> x land imm)
          | Or -> unary (fun x -> x lor imm)
          | Xor ->
              (* [x == CONST] compiles to [xor rd, rs, CONST; sltu rd, rd,
                 1] (no Seq immediate form), so a large xor immediate IS
                 an equality guard's magic constant -- record it.  Small
                 immediates are overwhelmingly bit-twiddling; skip them to
                 bound the noise. *)
              if w > 0xFF then cunary (fun x -> x lxor imm)
              else unary (fun x -> x lxor imm)
          | Shl -> unary (fun x -> x lsl (imm land 31))
          | Shru -> unary (fun x -> x lsr (imm land 31))
          | Shrs -> unary (fun x -> sgn x asr (imm land 31))
          | Slt ->
              let si = sgn w in
              unary (fun x -> if sgn x < si then 1 else 0)
          | Sltu -> unary (fun x -> if x < w then 1 else 0)
          | Seq -> cunary (fun x -> if x = w then 1 else 0)
          | Sne -> cunary (fun x -> if x <> w then 1 else 0))
    | Load (w, signed, rd, rs1, imm) ->
        let size = Insn.width_bytes w in
        let over = pad_insns + n_insns - 1 - idx in
        (* probed path, taken when the mem site is armed at run time *)
        let probed cpu =
          rewound t ~over (fun () ->
              let addr = Word32.add (Cpu.get cpu rs1) imm in
              Probe.fire_mem p
                {
                  hart = cpu.id;
                  pc;
                  addr;
                  size;
                  is_write = false;
                  is_atomic = false;
                  value = 0;
                };
              let raw =
                bus_read t { hart = cpu.id; pc; addr; size; is_write = false }
              in
              Cpu.set cpu rd (load_result w signed raw))
        in
        (* allocation-free fast path, width-specialized at translate time *)
        let d = ri rd and a = ri rs1 in
        let set (r : int array) v = if d <> 0 then Array.unsafe_set r d v in
        let fast : Cpu.t -> unit =
          match (w : Insn.width) with
          | W32 ->
              fun cpu ->
                let r = cpu.Cpu.regs in
                let addr = (Array.unsafe_get r a + imm) land 0xFFFF_FFFF in
                if addr >= rbase && addr + 4 <= rlim then
                  set r
                    (Int32.to_int (Bytes.get_int32_le bytes (addr - rbase))
                    land 0xFFFF_FFFF)
                else
                  set r
                    (Word32.wrap
                       (slow_read t ~hart:cpu.id ~pc ~addr ~size:4 ~over))
          | W16 ->
              fun cpu ->
                let r = cpu.Cpu.regs in
                let addr = (Array.unsafe_get r a + imm) land 0xFFFF_FFFF in
                let raw =
                  if addr >= rbase && addr + 2 <= rlim then
                    Bytes.get_uint16_le bytes (addr - rbase)
                  else slow_read t ~hart:cpu.id ~pc ~addr ~size:2 ~over
                in
                set r (if signed then Word32.sext raw 16 else raw land 0xFFFF)
          | W8 ->
              fun cpu ->
                let r = cpu.Cpu.regs in
                let addr = (Array.unsafe_get r a + imm) land 0xFFFF_FFFF in
                let raw =
                  if addr >= rbase && addr + 1 <= rlim then
                    Char.code (Bytes.unsafe_get bytes (addr - rbase))
                  else slow_read t ~hart:cpu.id ~pc ~addr ~size:1 ~over
                in
                set r (if signed then Word32.sext raw 8 else raw land 0xFF)
        in
        (* the patchable site: one subscriber-array load and branch *)
        fun cpu ->
          if Array.length p.Probe.mem = 0 then fast cpu else probed cpu
    | Store (w, rs1, rs2, imm) ->
        let size = Insn.width_bytes w in
        let over = pad_insns + n_insns - 1 - idx in
        let probed cpu =
          rewound t ~over (fun () ->
              let addr = Word32.add (Cpu.get cpu rs1) imm in
              let value = Cpu.get cpu rs2 in
              Probe.fire_mem p
                {
                  hart = cpu.id;
                  pc;
                  addr;
                  size;
                  is_write = true;
                  is_atomic = false;
                  value;
                };
              bus_write t
                { hart = cpu.id; pc; addr; size; is_write = true }
                value)
        in
        (* dirty marking consults [ram.track_dirty] at run time: the
           dirty-track site of the store template *)
        let a = ri rs1 and v = ri rs2 in
        let fast : Cpu.t -> unit =
          match (w : Insn.width) with
          | W32 ->
              fun cpu ->
                let r = cpu.Cpu.regs in
                let addr = (Array.unsafe_get r a + imm) land 0xFFFF_FFFF in
                if addr >= rbase && addr + 4 <= rlim then begin
                  let off = addr - rbase in
                  Bytes.set_int32_le bytes off
                    (Int32.of_int (Array.unsafe_get r v));
                  if ram.Ram.track_dirty then mark off 4
                end
                else
                  slow_write t ~hart:cpu.id ~pc ~addr ~size:4 ~over
                    (Array.unsafe_get r v)
          | W16 ->
              fun cpu ->
                let r = cpu.Cpu.regs in
                let addr = (Array.unsafe_get r a + imm) land 0xFFFF_FFFF in
                if addr >= rbase && addr + 2 <= rlim then begin
                  let off = addr - rbase in
                  Bytes.set_uint16_le bytes off
                    (Array.unsafe_get r v land 0xFFFF);
                  if ram.Ram.track_dirty then mark off 2
                end
                else
                  slow_write t ~hart:cpu.id ~pc ~addr ~size:2 ~over
                    (Array.unsafe_get r v)
          | W8 ->
              fun cpu ->
                let r = cpu.Cpu.regs in
                let addr = (Array.unsafe_get r a + imm) land 0xFFFF_FFFF in
                if addr >= rbase && addr + 1 <= rlim then begin
                  let off = addr - rbase in
                  Bytes.unsafe_set bytes off
                    (Char.unsafe_chr (Array.unsafe_get r v land 0xFF));
                  if ram.Ram.track_dirty then
                    Bytes.unsafe_set dirtyb (off lsr pshift) '\xFF'
                end
                else
                  slow_write t ~hart:cpu.id ~pc ~addr ~size:1 ~over
                    (Array.unsafe_get r v)
        in
        fun cpu ->
          if Array.length p.Probe.mem = 0 then fast cpu else probed cpu
    | Amo (op, rd, rs1, rs2) ->
        let over = pad_insns + n_insns - 1 - idx in
        let probed cpu =
          rewound t ~over (fun () ->
              let addr = Cpu.get cpu rs1 in
              Probe.fire_mem p
                {
                  hart = cpu.id;
                  pc;
                  addr;
                  size = 4;
                  is_write = true;
                  is_atomic = true;
                  value = Cpu.get cpu rs2;
                };
              let acc : Fault.access =
                { hart = cpu.id; pc; addr; size = 4; is_write = true }
              in
              let old = bus_read t { acc with is_write = false } in
              let next =
                match op with
                | Amo_add -> Word32.add old (Cpu.get cpu rs2)
                | Amo_swap -> Cpu.get cpu rs2
              in
              bus_write t acc next;
              Cpu.set cpu rd old)
        in
        let d = ri rd and a = ri rs1 and v = ri rs2 in
        let is_add = match op with Amo_add -> true | Amo_swap -> false in
        let fast cpu =
          let r = cpu.Cpu.regs in
          let addr = Array.unsafe_get r a in
          if addr >= rbase && addr + 4 <= rlim then begin
            let off = addr - rbase in
            let old =
              Int32.to_int (Bytes.get_int32_le bytes off) land 0xFFFF_FFFF
            in
            let next =
              if is_add then (old + Array.unsafe_get r v) land 0xFFFF_FFFF
              else Array.unsafe_get r v
            in
            Bytes.set_int32_le bytes off (Int32.of_int next);
            if ram.Ram.track_dirty then mark off 4;
            if d <> 0 then Array.unsafe_set r d old
          end
          else begin
            let old = slow_read t ~hart:cpu.id ~pc ~addr ~size:4 ~over in
            let next =
              if is_add then Word32.add old (Array.unsafe_get r v)
              else Array.unsafe_get r v
            in
            slow_write t ~hart:cpu.id ~pc ~addr ~size:4 ~over next;
            if d <> 0 then Array.unsafe_set r d (Word32.wrap old)
          end
        in
        fun cpu ->
          if Array.length p.Probe.mem = 0 then fast cpu else probed cpu
    | Branch (c, rs1, rs2, imm) ->
        let a = ri rs1 and b = ri rs2 in
        let taken = Word32.add pc imm and ft = pc + Insn.size in
        (* the branch's cmplog site records the compared operand pair *)
        let br test cpu =
          let r = cpu.Cpu.regs in
          let x = Array.unsafe_get r a and y = Array.unsafe_get r b in
          if cl.Cmplog.enabled then Cmplog.record cl ~pc ~lhs:x ~rhs:y;
          cpu.Cpu.pc <- (if test x y then taken else ft)
        in
        (match (c : Insn.cond) with
        | Eq -> br (fun x y -> x = y)
        | Ne -> br (fun x y -> x <> y)
        | Lt -> br (fun x y -> sgn x < sgn y)
        | Ltu -> br (fun x y -> x < y)
        | Ge -> br (fun x y -> sgn x >= sgn y)
        | Geu -> br (fun x y -> x >= y))
    | Jal (rd, imm) ->
        let target = Word32.add pc imm in
        let link = pc + Insn.size in
        let d = ri rd in
        if Reg.equal rd Reg.ra then (fun cpu ->
          (* call site: armed check after the architectural effects so the
             event observes the post-transfer state, as before *)
          Cpu.set cpu rd link;
          cpu.pc <- target;
          if Array.length p.Probe.calls > 0 then
            Probe.fire_call p { c_hart = cpu.id; c_pc = pc; c_target = target })
        else fun cpu ->
          if d <> 0 then Array.unsafe_set cpu.Cpu.regs d link;
          cpu.Cpu.pc <- target
    | Jalr (rd, rs1, imm) ->
        let is_call = Reg.equal rd Reg.ra in
        let is_ret = Reg.equal rd Reg.zero && Reg.equal rs1 Reg.ra in
        let link = pc + Insn.size in
        if is_call then (fun cpu ->
          let target = Word32.add (Cpu.get cpu rs1) imm in
          Cpu.set cpu rd link;
          cpu.pc <- target;
          if Array.length p.Probe.calls > 0 then
            Probe.fire_call p { c_hart = cpu.id; c_pc = pc; c_target = target })
        else if is_ret then (fun cpu ->
          let target = Word32.add (Cpu.get cpu rs1) imm in
          Cpu.set cpu rd link;
          cpu.pc <- target;
          if Array.length p.Probe.rets > 0 then
            Probe.fire_ret p
              {
                r_hart = cpu.id;
                r_pc = pc;
                r_target = target;
                r_retval = Cpu.get cpu Reg.a0;
              })
        else
          let d = ri rd and a = ri rs1 in
          fun cpu ->
            let r = cpu.Cpu.regs in
            let target = (Array.unsafe_get r a + imm) land 0xFFFF_FFFF in
            if d <> 0 then Array.unsafe_set r d link;
            cpu.Cpu.pc <- target
    | Trap num ->
        let next_pc = pc + Insn.size in
        fun cpu ->
          cpu.pc <- next_pc;
          (match Hashtbl.find_opt t.trap_handlers num with
          | Some handler -> handler t cpu
          | None -> raise (Trap_unhandled (pc, num)))
  in
  let ops = List.mapi op_of insns in
  let costs = List.map (fun (_, i) -> Cost_model.insn_cost i) insns in
  let ops, costs =
    match List.rev insns with
    | (_, last) :: _ when Insn.ends_block last -> (ops, costs)
    | _ -> (ops @ [ (fun cpu -> cpu.Cpu.pc <- end_pc) ], costs @ [ 0 ])
  in
  let cost_pfx = Array.of_list costs in
  let total = ref 0 in
  for i = 0 to Array.length cost_pfx - 1 do
    total := !total + cost_pfx.(i);
    cost_pfx.(i) <- !total
  done;
  (* retired insns of ops 0..i inclusive: 1:1 for decoded insns, flat for
     the synthetic fall-through pc-setter *)
  let n_ops = Array.length cost_pfx in
  let insn_pfx = Array.init n_ops (fun i -> min (i + 1) n_insns) in
  {
    b_base = base;
    b_gen = t.tcg_gen;
    b_ops = Array.of_list ops;
    b_insns = n_insns;
    b_cost = !total;
    b_cost_pfx = cost_pfx;
    b_insn_pfx = insn_pfx;
    b_blocks = 1;
    b_execs = 0;
    b_super = None;
    l0_pc = min_int;
    l0 = None;
    l1_pc = min_int;
    l1 = None;
  }

(* The pre-overhaul engine, kept close to verbatim: per-instruction
   accounting, record-allocating bus accesses, hashtable lookup on every
   block, no chaining.  It is the reference for the semantics-equivalence
   tests and the measured "baseline" row of BENCH_emu.json.  Probe state
   is consulted at run time here too (the site-table contract applies to
   both engines), so baseline blocks also survive probe toggles. *)
let translate_baseline t base =
  let tick_alu cpu =
    cpu.Cpu.insns <- cpu.Cpu.insns + 1;
    t.total_insns <- t.total_insns + 1;
    t.cost <- t.cost + Cost_model.alu_insn
  in
  let tick_mem (cpu : Cpu.t) =
    cpu.Cpu.insns <- cpu.Cpu.insns + 1;
    t.total_insns <- t.total_insns + 1;
    t.cost <- t.cost + Cost_model.mem_insn
  in
  let insns, end_pc = collect_block t base in
  let op_of (pc, insn) : Cpu.t -> unit =
    match (insn : Insn.t) with
    | Nop | Fence -> tick_alu
    | Halt ->
        fun cpu ->
          tick_alu cpu;
          raise (Fault.Halted (Cpu.get cpu Reg.a0))
    | Li (rd, imm) ->
        fun cpu ->
          tick_alu cpu;
          Cpu.set cpu rd imm
    | Alu (op, rd, rs1, rs2) ->
        fun cpu ->
          tick_alu cpu;
          Cpu.set cpu rd (alu_eval op (Cpu.get cpu rs1) (Cpu.get cpu rs2))
    | Alui (op, rd, rs1, imm) ->
        fun cpu ->
          tick_alu cpu;
          Cpu.set cpu rd (alu_eval op (Cpu.get cpu rs1) imm)
    | Load (w, signed, rd, rs1, imm) ->
        let size = Insn.width_bytes w in
        fun cpu ->
          tick_mem cpu;
          let addr = Word32.add (Cpu.get cpu rs1) imm in
          if Probe.has_mem t.probes then
            Probe.fire_mem t.probes
              {
                hart = cpu.id;
                pc;
                addr;
                size;
                is_write = false;
                is_atomic = false;
                value = 0;
              };
          let raw =
            bus_read t { hart = cpu.id; pc; addr; size; is_write = false }
          in
          Cpu.set cpu rd (load_result w signed raw)
    | Store (w, rs1, rs2, imm) ->
        let size = Insn.width_bytes w in
        fun cpu ->
          tick_mem cpu;
          let addr = Word32.add (Cpu.get cpu rs1) imm in
          let value = Cpu.get cpu rs2 in
          if Probe.has_mem t.probes then
            Probe.fire_mem t.probes
              {
                hart = cpu.id;
                pc;
                addr;
                size;
                is_write = true;
                is_atomic = false;
                value;
              };
          bus_write t { hart = cpu.id; pc; addr; size; is_write = true } value
    | Amo (op, rd, rs1, rs2) ->
        fun cpu ->
          tick_mem cpu;
          let addr = Cpu.get cpu rs1 in
          if Probe.has_mem t.probes then
            Probe.fire_mem t.probes
              {
                hart = cpu.id;
                pc;
                addr;
                size = 4;
                is_write = true;
                is_atomic = true;
                value = Cpu.get cpu rs2;
              };
          let acc : Fault.access =
            { hart = cpu.id; pc; addr; size = 4; is_write = true }
          in
          let old = bus_read t { acc with is_write = false } in
          let next =
            match op with
            | Amo_add -> Word32.add old (Cpu.get cpu rs2)
            | Amo_swap -> Cpu.get cpu rs2
          in
          bus_write t acc next;
          Cpu.set cpu rd old
    | Branch (c, rs1, rs2, imm) ->
        fun cpu ->
          tick_alu cpu;
          cpu.pc <-
            (if cond_eval c (Cpu.get cpu rs1) (Cpu.get cpu rs2) then
               Word32.add pc imm
             else pc + Insn.size)
    | Jal (rd, imm) ->
        let target = Word32.add pc imm in
        let is_call = Reg.equal rd Reg.ra in
        fun cpu ->
          tick_alu cpu;
          Cpu.set cpu rd (pc + Insn.size);
          cpu.pc <- target;
          if is_call && Probe.has_calls t.probes then
            Probe.fire_call t.probes
              { c_hart = cpu.id; c_pc = pc; c_target = target }
    | Jalr (rd, rs1, imm) ->
        let is_call = Reg.equal rd Reg.ra in
        let is_ret = Reg.equal rd Reg.zero && Reg.equal rs1 Reg.ra in
        fun cpu ->
          tick_alu cpu;
          let target = Word32.add (Cpu.get cpu rs1) imm in
          Cpu.set cpu rd (pc + Insn.size);
          cpu.pc <- target;
          if is_call && Probe.has_calls t.probes then
            Probe.fire_call t.probes
              { c_hart = cpu.id; c_pc = pc; c_target = target }
          else if is_ret && Probe.has_rets t.probes then
            Probe.fire_ret t.probes
              {
                r_hart = cpu.id;
                r_pc = pc;
                r_target = target;
                r_retval = Cpu.get cpu Reg.a0;
              }
    | Trap num ->
        fun cpu ->
          tick_alu cpu;
          cpu.pc <- pc + Insn.size;
          (match Hashtbl.find_opt t.trap_handlers num with
          | Some handler -> handler t cpu
          | None -> raise (Trap_unhandled (pc, num)))
  in
  let ops = List.map op_of insns in
  let ops =
    match List.rev insns with
    | (_, last) :: _ when Insn.ends_block last -> ops
    | _ -> ops @ [ (fun cpu -> cpu.Cpu.pc <- end_pc) ]
  in
  (* baseline ops self-tick, so block totals are zero: the batched
     pre-charge in the fast run loop must not double-count them *)
  {
    b_base = base;
    b_gen = t.tcg_gen;
    b_ops = Array.of_list ops;
    b_insns = 0;
    b_cost = 0;
    b_cost_pfx = [||];
    b_insn_pfx = [||];
    b_blocks = 1;
    b_execs = 0;
    b_super = None;
    l0_pc = min_int;
    l0 = None;
    l1_pc = min_int;
    l1 = None;
  }

let translate t base =
  t.stats.translations <- t.stats.translations + 1;
  match t.engine with
  | Fast -> translate_fast t base
  | Baseline -> translate_baseline t base

let lookup_block t pc =
  match Hashtbl.find_opt t.block_cache pc with
  | Some b when b.b_gen = t.tcg_gen ->
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      b
  | Some _ | None ->
      t.stats.cache_misses <- t.stats.cache_misses + 1;
      let b = translate t pc in
      Hashtbl.replace t.block_cache pc b;
      b

(* --- Run loop -------------------------------------------------------------- *)

(* Execute one translated block with batched accounting: charge the
   translate-time totals up front, run the ops, and on an exceptional exit
   roll the counters back to exactly what per-instruction accounting would
   have charged (ops 0..i inclusive when op [i] raised -- an instruction
   that raises *after* starting, e.g. a faulting store or a probe-stalled
   retry, still counts as retired-then-rolled-back, matching the baseline
   engine's tick-before-access order). *)
let exec_ops t (b : block) (cpu : Cpu.t) =
  t.total_insns <- t.total_insns + b.b_insns;
  t.cost <- t.cost + b.b_cost;
  cpu.insns <- cpu.insns + b.b_insns;
  let ops = b.b_ops in
  let n = Array.length ops in
  let i = ref 0 in
  try
    while !i < n do
      (Array.unsafe_get ops !i) cpu;
      incr i
    done
  with e ->
    let ran_insns = b.b_insn_pfx.(!i) in
    let ran_cost = b.b_cost_pfx.(!i) in
    t.total_insns <- t.total_insns - b.b_insns + ran_insns;
    t.cost <- t.cost - b.b_cost + ran_cost;
    cpu.insns <- cpu.insns - b.b_insns + ran_insns;
    raise e

(* Blocks executed per hart turn.  The chain budget is a constant so the
   schedule depends only on guest control flow and retired-insn counts --
   never on probe subscriptions or translation-cache state -- which is
   what makes probed and unprobed executions architecturally identical
   (the differential-semantics test pins this).  Superblocks count
   against the same budget as their constituent blocks ([b_blocks]), so
   fusion never changes the schedule either. *)
let chain_limit = 16

let link_lookup (b : block) pc gen =
  match b.l0 with
  | Some nb when b.l0_pc = pc && nb.b_gen = gen -> Some nb
  | _ -> (
      match b.l1 with
      | Some nb when b.l1_pc = pc && nb.b_gen = gen -> Some nb
      | _ -> None)

let link_set (b : block) pc nb =
  match b.l0 with
  | None ->
      b.l0_pc <- pc;
      b.l0 <- Some nb
  | Some _ when b.l0_pc = pc ->
      b.l0 <- Some nb
  | Some _ ->
      b.l1_pc <- pc;
      b.l1 <- Some nb

(* --- Superblock formation -------------------------------------------------- *)

let super_max_blocks = 4

(* Fuse a hot chain head with its l0-linked successors into one closure
   array.  Every constituent is RE-translated with [pad_insns] = the
   retired insns of the constituents after it, so the [over] rewind
   distances baked into its memory ops stay exact under the fused
   pre-charge (devices and probe callbacks observe per-instruction-exact
   counters, same as unfused).

   A guard op sits at each boundary and re-establishes exactly the
   conditions the unfused dispatcher would have checked between blocks --
   predicted pc, running status, deadline, stall window -- on the exact
   (rewound) counter, firing the block probe when armed and bailing out
   with [Fault.Retry_at] on any mismatch, which the run loop already
   treats as "end the turn here" with prefix-exact rollback.  The result
   is architecturally indistinguishable from the unfused chain. *)
let form_super t (head : block) =
  (* follow l0 links through live, unfused constituents *)
  let rec follow acc b n =
    if n >= super_max_blocks then List.rev acc
    else
      match b.l0 with
      | Some nb
        when nb.b_gen = t.tcg_gen && nb.b_blocks = 1 && nb.b_insns > 0 ->
          follow (nb :: acc) nb (n + 1)
      | _ -> List.rev acc
  in
  let chain = follow [ head ] head 1 in
  let k = List.length chain in
  if k >= 2 then begin
    (* pad for constituent i = retired insns of constituents i+1.. *)
    let insns = List.map (fun b -> b.b_insns) chain in
    let total_insns = List.fold_left ( + ) 0 insns in
    let pads =
      let rec go = function
        | [] -> []
        | n :: rest ->
            let tail = List.fold_left ( + ) 0 rest in
            ignore n;
            tail :: go rest
      in
      go insns
    in
    let parts =
      List.map2
        (fun (b : block) pad -> (translate_fast ~pad_insns:pad t b.b_base, pad))
        chain pads
    in
    let ops = ref [] and cost_pfx = ref [] and insn_pfx = ref [] in
    let cost_base = ref 0 and insn_base = ref 0 in
    List.iteri
      (fun i ((part : block), pad) ->
        if i > 0 then begin
          (* boundary guard into this constituent *)
          let next_base = part.b_base in
          let rem = pad + part.b_insns in
          let guard (cpu : Cpu.t) =
            let eff = t.total_insns - rem in
            if
              cpu.Cpu.pc <> next_base
              || cpu.Cpu.status <> Cpu.Running
              || eff >= t.deadline
              || cpu.Cpu.stall_until > eff
            then begin
              t.stats.super_exits <- t.stats.super_exits + 1;
              raise (Fault.Retry_at cpu.Cpu.pc)
            end;
            t.stats.super_transfers <- t.stats.super_transfers + 1;
            if Array.length t.probes.Probe.blocks > 0 then
              rewound t ~over:rem (fun () ->
                  Probe.fire_block t.probes
                    { b_hart = cpu.Cpu.id; b_pc = next_base })
          in
          ops := guard :: !ops;
          cost_pfx := !cost_base :: !cost_pfx;
          insn_pfx := !insn_base :: !insn_pfx
        end;
        Array.iteri
          (fun j op ->
            ops := op :: !ops;
            cost_pfx := (!cost_base + part.b_cost_pfx.(j)) :: !cost_pfx;
            insn_pfx := (!insn_base + part.b_insn_pfx.(j)) :: !insn_pfx)
          part.b_ops;
        cost_base := !cost_base + part.b_cost;
        insn_base := !insn_base + part.b_insns)
      parts;
    let sb =
      {
        b_base = head.b_base;
        b_gen = t.tcg_gen;
        b_ops = Array.of_list (List.rev !ops);
        b_insns = total_insns;
        b_cost = !cost_base;
        b_cost_pfx = Array.of_list (List.rev !cost_pfx);
        b_insn_pfx = Array.of_list (List.rev !insn_pfx);
        b_blocks = k;
        b_execs = 0;
        b_super = None;
        l0_pc = min_int;
        l0 = None;
        l1_pc = min_int;
        l1 = None;
      }
    in
    head.b_super <- Some sb;
    t.stats.superblocks_formed <- t.stats.superblocks_formed + 1
  end

(* Pick the block to actually execute for chain head [b]: its fused
   superblock when formed, live, and affordable within the remaining
   chain [budget] (so the schedule is budget-identical to unfused). *)
let effective_block t (b : block) budget =
  if not (t.superblocks && t.engine = Fast) then b
  else begin
    b.b_execs <- b.b_execs + 1;
    (match b.b_super with
    | Some sb when sb.b_gen = t.tcg_gen -> ()
    | _ ->
        (* periodic formation attempt once the head is hot: links may
           appear (or die with a flush) at any time, so retry on a cheap
           mask instead of exactly once *)
        if
          b.b_blocks = 1 && b.b_insns > 0
          && b.b_execs land (t.super_threshold - 1) = 0
        then form_super t b);
    match b.b_super with
    | Some sb when sb.b_gen = t.tcg_gen && budget >= sb.b_blocks ->
        t.stats.super_execs <- t.stats.super_execs + 1;
        sb
    | _ -> b
  end

let rec chain_exec t (cpu : Cpu.t) b budget ~deadline =
  let eb = effective_block t b budget in
  exec_ops t eb cpu;
  let budget = budget - eb.b_blocks in
  if
    budget > 0
    && t.total_insns < deadline
    && cpu.status = Running
    && cpu.stall_until <= t.total_insns
  then begin
    let pc = cpu.pc in
    if Probe.has_blocks t.probes then
      Probe.fire_block t.probes { b_hart = cpu.id; b_pc = pc };
    let nb =
      match link_lookup eb pc t.tcg_gen with
      | Some nb ->
          t.stats.chained <- t.stats.chained + 1;
          nb
      | None ->
          let nb = lookup_block t pc in
          link_set eb pc nb;
          nb
    in
    chain_exec t cpu nb budget ~deadline
  end

let exec_turn t (cpu : Cpu.t) ~deadline =
  if Probe.has_blocks t.probes then
    Probe.fire_block t.probes { b_hart = cpu.id; b_pc = cpu.pc };
  let b = lookup_block t cpu.pc in
  chain_exec t cpu b chain_limit ~deadline

(* Baseline engine: one hashtable lookup and one block per turn. *)
let exec_block_baseline t (cpu : Cpu.t) =
  let pc = cpu.pc in
  if Probe.has_blocks t.probes then
    Probe.fire_block t.probes { b_hart = cpu.id; b_pc = pc };
  let block = lookup_block t pc in
  let ops = block.b_ops in
  for i = 0 to Array.length ops - 1 do
    ops.(i) cpu
  done

let step t cpu ~deadline =
  match t.engine with
  | Fast -> exec_turn t cpu ~deadline
  | Baseline -> exec_block_baseline t cpu

let runnable t (cpu : Cpu.t) =
  cpu.status = Running && cpu.stall_until <= t.total_insns

let set_sched t sched = t.sched <- sched

(** Run until a stop condition.  [until] is checked between hart turns and
    makes the machine pause (reported as [Budget_exhausted]?  no: returns
    [None]).  Returns [Some stop] for a definitive machine stop, [None]
    when [until] fired or all work is done without halting. *)
let run_slice t ~max_insns ~(until : unit -> bool) =
  let deadline = t.total_insns + max_insns in
  (* published for superblock boundary guards, which must observe the
     same deadline the chain dispatcher would have checked *)
  t.deadline <- deadline;
  let n = Array.length t.harts in
  let rec loop idle_rounds =
    if until () then None
    else if t.total_insns >= deadline then Some Budget_exhausted
    else begin
      (* pick next runnable hart: external scheduler when armed (with its
         own per-turn deadline, clamped to the slice), else round-robin *)
      let picked =
        match t.sched with
        | Some sched -> (
            match sched t with
            | Some (cpu, turn_end) -> Some (cpu, min turn_end deadline)
            | None -> None)
        | None ->
            let rec pick k =
              if k >= n then None
              else
                let cpu = t.harts.((t.next_hart + k) mod n) in
                if runnable t cpu then Some (cpu, deadline) else pick (k + 1)
            in
            pick 0
      in
      match picked with
      | Some (cpu, turn_deadline) -> (
          t.next_hart <- (cpu.id + 1) mod n;
          (* published for superblock boundary guards, exactly as the
             slice deadline is: a fused block must not overrun the turn *)
          t.deadline <- turn_deadline;
          match step t cpu ~deadline:turn_deadline with
          | () -> loop 0
          | exception Fault.Halted code -> Some (Halted code)
          | exception Fault.Memory_fault (acc, reason) -> Some (Fault (acc, reason))
          | exception Fault.Retry_at pc ->
              cpu.pc <- pc;
              loop 0
          | exception Trap_unhandled (pc, num) -> Some (Unhandled_trap { pc; num })
          | exception Codec.Decode_error { addr; reason } ->
              Some (Decode_fault { pc = addr; reason }))
      | None ->
          (* all harts parked/halted/stalled: advance time past the nearest
             stall, or report deadlock *)
          let nearest =
            Array.fold_left
              (fun acc (cpu : Cpu.t) ->
                if cpu.status = Running && cpu.stall_until > t.total_insns then
                  min acc cpu.stall_until
                else acc)
              max_int t.harts
          in
          if nearest = max_int || idle_rounds > 2 then Some Deadlock
          else begin
            t.total_insns <- nearest;
            loop (idle_rounds + 1)
          end
    end
  in
  loop 0

let run t ~max_insns =
  match run_slice t ~max_insns ~until:(fun () -> false) with
  | Some stop -> stop
  | None -> Budget_exhausted

(** Run until the mailbox signals the ready-to-run doorbell. *)
let run_until_ready t ~max_insns =
  run_slice t ~max_insns ~until:(fun () -> Devices.mailbox_ready t.mailbox)

(** Run until the current mailbox request completes and the queue drains. *)
let run_until_mailbox_idle t ~max_insns =
  run_slice t ~max_insns ~until:(fun () -> Devices.mailbox_idle t.mailbox)
