(* Memory-mapped device interface.

   [save]/[restore] serialize the device's *guest-visible* state for the
   snapshot service: [save] returns an opaque string, [restore] accepts a
   string previously produced by the same device's [save] and reverts the
   device to that state.  Host-side wiring (callbacks such as the
   mailbox's [on_ready]) is not state and must survive a restore
   untouched.  Stateless devices use {!stateless}. *)

type t = {
  name : string;
  base : int;
  size : int;
  read : offset:int -> width:int -> int;
  write : offset:int -> width:int -> value:int -> unit;
  save : unit -> string;
  restore : string -> unit;
}

(** [save]/[restore] pair for devices with no guest-visible state. *)
let stateless = ((fun () -> ""), fun (_ : string) -> ())

let covers t addr = addr >= t.base && addr < t.base + t.size
