(** Instrumentation probes inserted into translated code templates
    (EmbSan's core mechanism, paper section 3.3).  Subscribing bumps
    [epoch], which invalidates cached translations *and* chained-successor
    links so callbacks are baked into freshly generated code.

    Subscribers live in arrays in registration order; [fire_*] has a
    dedicated single-subscriber fast path (the common one-sanitizer case)
    and the no-subscriber case is specialized out of the templates at
    translation time via [has_*]. *)

type mem_event = {
  hart : int;
  pc : int;
  addr : int;
  size : int;
  is_write : bool;
  is_atomic : bool;  (** AMO instructions: marked accesses for KCSAN *)
  value : int;  (** value being written (stores); 0 for loads *)
}

type call_event = { c_hart : int; c_pc : int; c_target : int }
type ret_event = { r_hart : int; r_pc : int; r_target : int; r_retval : int }
type block_event = { b_hart : int; b_pc : int }

type t = {
  mutable mem : (mem_event -> unit) array;
  mutable calls : (call_event -> unit) array;
  mutable rets : (ret_event -> unit) array;
  mutable blocks : (block_event -> unit) array;
  mutable epoch : int;
}

val create : unit -> t

(** [on_*] append a subscriber (fire order = registration order) and bump
    the epoch. *)

val on_mem : t -> (mem_event -> unit) -> unit
val on_call : t -> (call_event -> unit) -> unit
val on_ret : t -> (ret_event -> unit) -> unit
val on_block : t -> (block_event -> unit) -> unit

(** Unsubscribe everything (bumps the epoch like a subscription does). *)
val clear : t -> unit

val has_mem : t -> bool
val has_calls : t -> bool
val has_rets : t -> bool
val has_blocks : t -> bool

val fire_mem : t -> mem_event -> unit
val fire_call : t -> call_event -> unit
val fire_ret : t -> ret_event -> unit
val fire_block : t -> block_event -> unit
