(** Patchable instrumentation probe sites (EmbSan's core mechanism, paper
    section 3.3, Icicle-style "instrumentation without recompilation").

    Translated blocks compile in per-kind sites that consult the
    subscriber arrays at run time; the arrays are the shared site table,
    so subscribing/unsubscribing is an O(1) array swap observed by all
    already-translated code -- no translation-cache flush, no epoch.

    Subscribers live in arrays in registration order; a site's armed
    check is one array-length load, and [fire_*] has a dedicated
    single-subscriber fast path (the common one-sanitizer case). *)

type mem_event = {
  hart : int;
  pc : int;
  addr : int;
  size : int;
  is_write : bool;
  is_atomic : bool;  (** AMO instructions: marked accesses for KCSAN *)
  value : int;  (** value being written (stores); 0 for loads *)
}

type call_event = { c_hart : int; c_pc : int; c_target : int }
type ret_event = { r_hart : int; r_pc : int; r_target : int; r_retval : int }
type block_event = { b_hart : int; b_pc : int }

type t = {
  mutable mem : (mem_event -> unit) array;
  mutable calls : (call_event -> unit) array;
  mutable rets : (ret_event -> unit) array;
  mutable blocks : (block_event -> unit) array;
}

(** Subscription handle for {!unsubscribe}. *)
type sub

val create : unit -> t

(** [subscribe_*] append a subscriber (fire order = registration order)
    and return a handle; O(1) site patch, zero flushes. *)

val subscribe_mem : t -> (mem_event -> unit) -> sub
val subscribe_call : t -> (call_event -> unit) -> sub
val subscribe_ret : t -> (ret_event -> unit) -> sub
val subscribe_block : t -> (block_event -> unit) -> sub

(** Remove exactly the subscriber the handle added; idempotent, O(1)
    patch, zero flushes.  A no-op on an already-dead handle. *)
val unsubscribe : sub -> unit

(** [on_*]: handle-free subscription for callers that never detach. *)

val on_mem : t -> (mem_event -> unit) -> unit
val on_call : t -> (call_event -> unit) -> unit
val on_ret : t -> (ret_event -> unit) -> unit
val on_block : t -> (block_event -> unit) -> unit

(** Unsubscribe everything (also an O(1) site patch). *)
val clear : t -> unit

val has_mem : t -> bool
val has_calls : t -> bool
val has_rets : t -> bool
val has_blocks : t -> bool

val fire_mem : t -> mem_event -> unit
val fire_call : t -> call_event -> unit
val fire_ret : t -> ret_event -> unit
val fire_block : t -> block_event -> unit
