(* Physical RAM: a flat byte array mapped at [base, base + size).
   Accesses outside raise {!Fault.Memory_fault}; addresses below the first
   page are reported as null-pointer dereferences.

   Dirty-page tracking (the snapshot service's write set, DESIGN.md
   "Snapshot service"): one byte per 4 KiB page, each bit a consumer
   channel.  A store marks its page(s) dirty on *every* channel with a
   single unconditional byte write, so the tracked fast path stays
   allocation-free; consumers (snapshot restore, incremental digests)
   clear only their own bit.  Tracking is off by default -- the translated
   store templates specialize the marking in at translation time, so the
   untracked hot path is byte-identical to the pre-snapshot engine. *)

type t = {
  base : int;
  bytes : Bytes.t;
  mutable track_dirty : bool;
  dirty : Bytes.t; (* one byte per page; bit = dirty on that channel *)
}

let page_shift = 12
let page_size = 1 lsl page_shift

(* Consumer channels of the dirty bitmap. *)
let snap_channel = 0 (* Snap.capture/restore write set *)
let digest_channel = 1 (* Check.Snapshot incremental RAM digest *)

let create ~base ~size =
  {
    base;
    bytes = Bytes.make size '\000';
    track_dirty = false;
    dirty = Bytes.make ((size + page_size - 1) / page_size) '\000';
  }

let base t = t.base
let size t = Bytes.length t.bytes
let limit t = t.base + Bytes.length t.bytes
let page_count t = Bytes.length t.dirty

let track_dirty t = t.track_dirty
let set_track_dirty t on = t.track_dirty <- on

(* Mark the page(s) covered by a write of [size] bytes at byte offset
   [off] dirty on every channel.  Callers have bounds-checked, so both
   page indices are in range; a write can straddle at most one page
   boundary (size <= 4 << page_size). *)
let[@inline] mark_off t off size =
  Bytes.unsafe_set t.dirty (off lsr page_shift) '\xFF';
  let last = (off + size - 1) lsr page_shift in
  if last <> off lsr page_shift then Bytes.unsafe_set t.dirty last '\xFF'

(** Mark [addr, addr+size) dirty (used by bulk writes like {!blit_string};
    the per-access paths mark inline). *)
let mark_dirty_range t ~addr ~size =
  if size > 0 then begin
    let first = (addr - t.base) lsr page_shift in
    let last = (addr - t.base + size - 1) lsr page_shift in
    Bytes.fill t.dirty first (last - first + 1) '\xFF'
  end

let page_is_dirty t ~channel page =
  Char.code (Bytes.get t.dirty page) land (1 lsl channel) <> 0

let dirty_count t ~channel =
  let mask = 1 lsl channel in
  let n = ref 0 in
  for p = 0 to Bytes.length t.dirty - 1 do
    if Char.code (Bytes.unsafe_get t.dirty p) land mask <> 0 then incr n
  done;
  !n

(** Clear [channel]'s dirty bit on every page (other channels keep
    theirs). *)
let clear_dirty t ~channel =
  let keep = lnot (1 lsl channel) land 0xFF in
  for p = 0 to Bytes.length t.dirty - 1 do
    let b = Char.code (Bytes.unsafe_get t.dirty p) in
    if b land (1 lsl channel) <> 0 then
      Bytes.unsafe_set t.dirty p (Char.unsafe_chr (b land keep))
  done

(** Iterate the pages dirty on [channel], in ascending page order. *)
let iter_dirty t ~channel f =
  let mask = 1 lsl channel in
  for p = 0 to Bytes.length t.dirty - 1 do
    if Char.code (Bytes.unsafe_get t.dirty p) land mask <> 0 then f p
  done

(** Revert every page dirty on [channel] to its contents in [from] (a full
    RAM-sized copy), clear that channel's bit and mark the reverted pages
    dirty on every *other* channel (the revert is itself a write those
    consumers must observe).  O(pages touched) data movement; returns the
    number of pages reverted. *)
let revert_dirty t ~channel ~from =
  if Bytes.length from <> Bytes.length t.bytes then
    invalid_arg "Ram.revert_dirty: size mismatch";
  let mask = 1 lsl channel in
  let others = Char.unsafe_chr (lnot mask land 0xFF) in
  let reverted = ref 0 in
  let total = Bytes.length t.bytes in
  for p = 0 to Bytes.length t.dirty - 1 do
    if Char.code (Bytes.unsafe_get t.dirty p) land mask <> 0 then begin
      let off = p lsl page_shift in
      let len = min page_size (total - off) in
      Bytes.blit from off t.bytes off len;
      Bytes.unsafe_set t.dirty p others;
      incr reverted
    end
  done;
  !reverted

let contains t addr ~size:n =
  addr >= t.base && addr + n <= limit t

let fault (acc : Fault.access) t =
  let reason =
    if acc.addr < 0x1000 then "null pointer dereference"
    else if
      (* Either the access starts past the end of RAM, or it starts inside
         RAM and straddles the end ([addr < limit] but [addr+size > limit]).
         Both are "beyond RAM"; only accesses that start outside the mapped
         window entirely (below base, above the null page) are "unmapped". *)
      acc.addr >= limit t
      || (acc.addr >= t.base && acc.addr + acc.size > limit t)
    then "access beyond RAM"
    else "unmapped address"
  in
  raise (Fault.Memory_fault (acc, reason))

let check t (acc : Fault.access) =
  if not (contains t acc.addr ~size:acc.size) then fault acc t

let read8 t addr = Char.code (Bytes.unsafe_get t.bytes (addr - t.base))

let write8 t addr v =
  Bytes.unsafe_set t.bytes (addr - t.base) (Char.unsafe_chr (v land 0xFF));
  if t.track_dirty then
    Bytes.unsafe_set t.dirty ((addr - t.base) lsr page_shift) '\xFF'

(* Width-specialized accessors.  The translator's allocation-free fast
   path selects one of these at translation time, so the per-access code
   has neither a width dispatch nor a {!Fault.access} record.  Callers
   must have checked {!contains} first. *)

let read16 t addr = Bytes.get_uint16_le t.bytes (addr - t.base)

let read32 t addr =
  Int32.to_int (Bytes.get_int32_le t.bytes (addr - t.base)) land 0xFFFF_FFFF

let write16 t addr v =
  Bytes.set_uint16_le t.bytes (addr - t.base) (v land 0xFFFF);
  if t.track_dirty then mark_off t (addr - t.base) 2

let write32 t addr v =
  Bytes.set_int32_le t.bytes (addr - t.base) (Int32.of_int (v land 0xFFFF_FFFF));
  if t.track_dirty then mark_off t (addr - t.base) 4

let read t addr width =
  match width with
  | 1 -> read8 t addr
  | 2 -> read16 t addr
  | 4 -> read32 t addr
  | _ -> invalid_arg "Ram.read"

let write t addr width v =
  match width with
  | 1 -> write8 t addr v
  | 2 -> write16 t addr v
  | 4 -> write32 t addr v
  | _ -> invalid_arg "Ram.write"

let blit_string t ~addr s =
  Bytes.blit_string s 0 t.bytes (addr - t.base) (String.length s);
  if t.track_dirty then mark_dirty_range t ~addr ~size:(String.length s)

let read_string t ~addr ~len = Bytes.sub_string t.bytes (addr - t.base) len

(** Load all sections of a firmware image.  Raises if a section does not fit. *)
let load_image t (image : Embsan_isa.Image.t) =
  List.iter
    (fun (s : Embsan_isa.Image.section) ->
      if not (contains t s.base ~size:(String.length s.data)) then
        invalid_arg
          (Printf.sprintf "Ram.load_image: section %s does not fit" s.sec_name);
      blit_string t ~addr:s.base s.data)
    image.sections
