(* Physical RAM: a flat byte array mapped at [base, base + size).
   Accesses outside raise {!Fault.Memory_fault}; addresses below the first
   page are reported as null-pointer dereferences. *)

type t = { base : int; bytes : Bytes.t }

let create ~base ~size = { base; bytes = Bytes.make size '\000' }

let base t = t.base
let size t = Bytes.length t.bytes
let limit t = t.base + Bytes.length t.bytes

let contains t addr ~size:n =
  addr >= t.base && addr + n <= limit t

let fault (acc : Fault.access) t =
  let reason =
    if acc.addr < 0x1000 then "null pointer dereference"
    else if
      (* Either the access starts past the end of RAM, or it starts inside
         RAM and straddles the end ([addr < limit] but [addr+size > limit]).
         Both are "beyond RAM"; only accesses that start outside the mapped
         window entirely (below base, above the null page) are "unmapped". *)
      acc.addr >= limit t
      || (acc.addr >= t.base && acc.addr + acc.size > limit t)
    then "access beyond RAM"
    else "unmapped address"
  in
  raise (Fault.Memory_fault (acc, reason))

let check t (acc : Fault.access) =
  if not (contains t acc.addr ~size:acc.size) then fault acc t

let read8 t addr = Char.code (Bytes.unsafe_get t.bytes (addr - t.base))

let write8 t addr v =
  Bytes.unsafe_set t.bytes (addr - t.base) (Char.unsafe_chr (v land 0xFF))

(* Width-specialized accessors.  The translator's allocation-free fast
   path selects one of these at translation time, so the per-access code
   has neither a width dispatch nor a {!Fault.access} record.  Callers
   must have checked {!contains} first. *)

let read16 t addr = Bytes.get_uint16_le t.bytes (addr - t.base)

let read32 t addr =
  Int32.to_int (Bytes.get_int32_le t.bytes (addr - t.base)) land 0xFFFF_FFFF

let write16 t addr v = Bytes.set_uint16_le t.bytes (addr - t.base) (v land 0xFFFF)

let write32 t addr v =
  Bytes.set_int32_le t.bytes (addr - t.base) (Int32.of_int (v land 0xFFFF_FFFF))

let read t addr width =
  match width with
  | 1 -> read8 t addr
  | 2 -> read16 t addr
  | 4 -> read32 t addr
  | _ -> invalid_arg "Ram.read"

let write t addr width v =
  match width with
  | 1 -> write8 t addr v
  | 2 -> write16 t addr v
  | 4 -> write32 t addr v
  | _ -> invalid_arg "Ram.write"

let blit_string t ~addr s =
  Bytes.blit_string s 0 t.bytes (addr - t.base) (String.length s)

let read_string t ~addr ~len = Bytes.sub_string t.bytes (addr - t.base) len

(** Load all sections of a firmware image.  Raises if a section does not fit. *)
let load_image t (image : Embsan_isa.Image.t) =
  List.iter
    (fun (s : Embsan_isa.Image.section) ->
      if not (contains t s.base ~size:(String.length s.data)) then
        invalid_arg
          (Printf.sprintf "Ram.load_image: section %s does not fit" s.sec_name);
      blit_string t ~addr:s.base s.data)
    image.sections
