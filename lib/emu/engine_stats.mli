(** Execution-engine counters: translation-cache behaviour, block chaining
    and superblock effectiveness (serialized into BENCH_emu.json). *)

type t = {
  mutable translations : int;  (** blocks translated (misses + stale) *)
  mutable cache_hits : int;  (** lookups that found a live block *)
  mutable cache_misses : int;  (** lookups that had to (re)translate *)
  mutable chained : int;  (** transfers served by a chain link *)
  mutable flushes_load : int;  (** [load_image] flushes *)
  mutable flushes_invalidate : int;
      (** [flush_tcg] / [set_engine] / restore flushes.  Probe and
          dirty-tracking toggles patch sites in place and count as neither
          kind. *)
  mutable superblocks_formed : int;  (** hot chains fused *)
  mutable super_execs : int;  (** entries into a fused block *)
  mutable super_exits : int;  (** guard mispredicts out of a fused block *)
  mutable super_transfers : int;  (** transfers fused away inside supers *)
  mutable rehost_reads : int;
      (** unmapped-MMIO reads served by the rehost layer *)
  mutable irq_injected : int;  (** interrupts vectored by the rehost layer *)
}

val create : unit -> t
val reset : t -> unit

(** Total flushes of either kind (the pre-split [flushes] counter). *)
val flushes : t -> int

(** Fraction of non-chained block lookups served from the cache. *)
val hit_rate : t -> float

(** Fraction of all block-to-block transfers that skipped the hashtable
    (chain links + superblock-internal transfers). *)
val chain_rate : t -> float

val pp : Format.formatter -> t -> unit

(** Version tag of the JSON rendering; bumped on any field change. *)
val schema : string

(** Render as one schema-versioned JSON object holding every raw counter
    (chaining, split flush counts, superblock formation) plus the derived
    rates (used by the bench pipeline). *)
val to_json : t -> string

(** Parse {!to_json} output back into a record ([to_json]/[of_json]
    round-trips on all raw counters).  Raises [Invalid_argument] on a
    missing field or a schema mismatch. *)
val of_json : string -> t
