(** Execution-engine counters: translation-cache behaviour and block
    chaining effectiveness (serialized into BENCH_emu.json). *)

type t = {
  mutable translations : int;  (** blocks translated (misses + stale) *)
  mutable cache_hits : int;  (** lookups that found a live block *)
  mutable cache_misses : int;  (** lookups that had to (re)translate *)
  mutable chained : int;  (** transfers served by a chain link *)
  mutable flushes : int;  (** flush_tcg calls (incl. load_image) *)
}

val create : unit -> t
val reset : t -> unit

(** Fraction of non-chained block lookups served from the cache. *)
val hit_rate : t -> float

(** Fraction of all block-to-block transfers that skipped the hashtable. *)
val chain_rate : t -> float

val pp : Format.formatter -> t -> unit

(** Render as a JSON object (used by the bench pipeline). *)
val to_json : t -> string
