(* Platform hypercall ABI (TRAP instruction numbers).

   The trap number is an instruction immediate; arguments travel in
   a0..a2 and a result, when any, is returned in a0.  Numbers 16..31 are
   the sanitizer callout range emitted by compile-time instrumentation
   (EmbSan-C's "dummy sanitizer library", S3.2 category 1): each API of the
   dummy library is exactly one trapping instruction. *)

let exit_ = 1
let putc = 2
let kcov = 9 (* guest kcov-style coverage report: a0 = covered pc *)
let hart_start = 10 (* a0 = hart id, a1 = entry pc, a2 = stack pointer *)
let current_hart = 11 (* returns hart id in a0 *)

(* Interrupt plumbing for the model-free rehosting layer (lib/rehost).
   [irq_register] announces the guest's interrupt stub (a0 = entry pc);
   the boot harness records it into [Machine.t.irq_entry] so an armed
   rehost controller can vector a hart there at fuzzer-chosen retirement
   points.  [irq_eoi] ends the handler: inert when no controller is
   armed, context-restoring (back to the interrupted pc) when one is. *)
let irq_register = 12 (* a0 = interrupt stub entry pc *)
let irq_eoi = 13 (* end of interrupt: return to the interrupted context *)

(* Sanitizer callouts: memory access checks.  Size and direction are encoded
   in the trap number so the callout is a single instruction; the address is
   in a0. *)
let check_load1 = 16
let check_load2 = 17
let check_load4 = 18
let check_store1 = 19
let check_store2 = 20
let check_store4 = 21

let check ~is_write ~size =
  match (is_write, size) with
  | false, 1 -> check_load1
  | false, 2 -> check_load2
  | false, 4 -> check_load4
  | true, 1 -> check_store1
  | true, 2 -> check_store2
  | true, 4 -> check_store4
  | _ -> invalid_arg "Hypercall.check"

(** Inverse of {!check}: [Some (is_write, size)] for check callout numbers. *)
let decode_check num =
  match num with
  | 16 -> Some (false, 1)
  | 17 -> Some (false, 2)
  | 18 -> Some (false, 4)
  | 19 -> Some (true, 1)
  | 20 -> Some (true, 2)
  | 21 -> Some (true, 4)
  | _ -> None

(* Sanitizer state-maintenance callouts. *)
let san_alloc = 22 (* a0 = ptr, a1 = size *)
let san_free = 23 (* a0 = ptr, a1 = size *)
let san_global = 24 (* a0 = addr, a1 = size: register global w/ redzones *)
let san_stack_poison = 25 (* a0 = addr, a1 = size *)
let san_stack_unpoison = 26 (* a0 = addr, a1 = size *)
let san_poison_region = 27 (* a0 = addr, a1 = size: poison a heap region *)

(* Native (in-guest) sanitizer support. *)
let kasan_report = 28 (* a0 = addr, a1 = size, a2 = is_write *)
let kcsan_report = 29 (* a0 = addr, a1 = size|is_write<<8, a2 = other pc *)

(* Synchronization-edge callout: guest locking primitives announce
   happens-before edges to host-side concurrency sanitizers.
   a0 = op (0 = acquire, 1 = release, 2 = irq_off, 3 = irq_on),
   a1 = sync object address (0 for the IRQ pseudo-lock). *)
let san_sync = 30

let name num =
  match num with
  | 1 -> "exit"
  | 2 -> "putc"
  | 9 -> "kcov"
  | 10 -> "hart_start"
  | 11 -> "current_hart"
  | 12 -> "irq_register"
  | 13 -> "irq_eoi"
  | 16 -> "check_load1"
  | 17 -> "check_load2"
  | 18 -> "check_load4"
  | 19 -> "check_store1"
  | 20 -> "check_store2"
  | 21 -> "check_store4"
  | 22 -> "san_alloc"
  | 23 -> "san_free"
  | 24 -> "san_global"
  | 25 -> "san_stack_poison"
  | 26 -> "san_stack_unpoison"
  | 27 -> "san_poison_region"
  | 28 -> "kasan_report"
  | 29 -> "kcsan_report"
  | 30 -> "san_sync"
  | n -> Printf.sprintf "trap%d" n
