(* Compare-operand coverage (cmplog), Icicle/AFL++-style.

   Branch and compare sites in the fast engine's translated blocks record
   (pc, lhs, rhs) operand triples here when [enabled] -- the field is read
   at run time by the compiled site, so toggling costs one store and no
   translation-cache flush.

   Two artifacts come out of a recording window:

   - *frontier features*: each distinct (pc, operand-agreement level)
     observed since the last [reset] becomes an (index, bucket) pair in
     the same feature space as {!Coverage.signature}, offset above the
     64 KiB edge bitmap so the two never collide.  The agreement level is
     the number of equal low-order bytes between lhs and rhs (0..4,
     "how close is the guard to passing"), which keeps the feature space
     bounded per compare site while still rewarding partial progress
     toward a magic constant -- the corpus admits an input that matches
     one more byte of the guard, exactly the laf-intel gradient;
   - *operand dictionary*: distinct compared-against values accumulate in
     a bounded table that the mutator substitutes into syscall arguments,
     plus a bounded counterpart map ([counterpart]) from each observed
     operand to the value it was compared against -- AFL++'s
     input-to-state stage: when a mutated argument's current value shows
     up as one side of a recorded compare, substituting the other side is
     what actually solves [x == MAGIC] guards.

   Everything is deterministic: tables are fixed-size and open-addressed,
   features are emitted in ascending slot order, and the dictionary
   preserves first-insertion order. *)

(* Feature indices live at [feature_base + slot] so they can be appended
   to a {!Coverage.signature} (indices < 65536) without collision. *)
let feature_base = 1 lsl 16

let feature_slots = 4096 (* per-window (pc, agreement) feature table *)
let triple_slots = 8192 (* per-window (pc, lhs, rhs) dedup table *)
let dict_cap = 256
let pair_slots = 2048 (* counterpart map: operand -> compared-against *)

type t = {
  mutable enabled : bool;
  (* per-window dedup of exact (pc, lhs, rhs) triples: a triple is
     processed once per recording window, everything after the first hit
     is a one-probe table lookup.  Open-addressed; keys are pre-mixed and
     never 0 (0 = empty). *)
  triples : int array;
  (* per-window feature presence, indexed by (pc, agreement) slot *)
  features : Bytes.t;
  (* bounded operand dictionary, first-insertion order *)
  dict : int array;
  mutable dict_n : int;
  dict_seen : (int, unit) Hashtbl.t;
  (* counterpart map: hashed single-slot cache from an operand value to
     the value it was most recently compared against.  Overwrite on
     collision -- recent compares (the ones involving live corpus
     arguments) win, and the map stays O(1) and bounded forever. *)
  pair_key : int array;
  pair_val : int array;
}

let create () =
  {
    enabled = false;
    triples = Array.make triple_slots 0;
    features = Bytes.make feature_slots '\000';
    dict = Array.make dict_cap 0;
    dict_n = 0;
    dict_seen = Hashtbl.create 64;
    pair_key = Array.make pair_slots 0;
    pair_val = Array.make pair_slots 0;
  }

(* splitmix-flavored finalizer; cheap and good enough for table slotting *)
let mix h =
  let h = h lxor (h lsr 16) in
  let h = h * 0x7FEB_352D land 0x3FFF_FFFF_FFFF in
  let h = h lxor (h lsr 15) in
  h * 0x846C_A68B land 0x3FFF_FFFF_FFFF

let triple_key pc lhs rhs =
  let k = mix (pc + mix (lhs + mix rhs)) in
  if k = 0 then 1 else k

(* Number of equal low-order bytes of [lhs]/[rhs] (0..4): the
   "how many guard bytes already match" gradient. *)
let agreement lhs rhs =
  let x = (lhs lxor rhs) land 0xFFFF_FFFF in
  if x = 0 then 4
  else if x land 0xFF_FFFF = 0 then 3
  else if x land 0xFFFF = 0 then 2
  else if x land 0xFF = 0 then 1
  else 0

let dict_add t v =
  if t.dict_n < dict_cap && v <> 0 && not (Hashtbl.mem t.dict_seen v) then begin
    Hashtbl.replace t.dict_seen v ();
    t.dict.(t.dict_n) <- v;
    t.dict_n <- t.dict_n + 1
  end

let pair_put t k v =
  if k <> 0 && v <> 0 then begin
    let s = mix k land (pair_slots - 1) in
    Array.unsafe_set t.pair_key s k;
    Array.unsafe_set t.pair_val s v
  end

(* What was [v] most recently compared against?  [None] when [v] was never
   seen (or its slot was overwritten).  The input-to-state lookup: the
   mutator asks about an argument's current value and substitutes the
   answer. *)
let counterpart t v =
  if v = 0 then None
  else
    let s = mix v land (pair_slots - 1) in
    if Array.unsafe_get t.pair_key s = v then Some (Array.unsafe_get t.pair_val s)
    else None

(* Record one compare: dedup the exact triple, mark the (pc, agreement)
   feature, feed both operands to the dictionary.  Called from translated
   sites, so the fast path (triple already seen this window) is one mix +
   one probe.  The probe sequence is bounded: past [max_probes] collisions
   the triple is dropped for this window, which keeps the site O(1) even
   when a compare-heavy window saturates the table. *)
let max_probes = 8

let record t ~pc ~lhs ~rhs =
  let key = triple_key pc lhs rhs in
  let mask = triple_slots - 1 in
  let i = ref (key land mask) in
  let probes = ref 0 in
  let continue = ref true in
  while !continue do
    let cur = Array.unsafe_get t.triples !i in
    if cur = key then continue := false (* seen this window *)
    else if cur = 0 then begin
      Array.unsafe_set t.triples !i key;
      let slot = mix ((pc * 8) + agreement lhs rhs) land (feature_slots - 1) in
      Bytes.unsafe_set t.features slot '\001';
      dict_add t lhs;
      dict_add t rhs;
      pair_put t lhs rhs;
      pair_put t rhs lhs;
      continue := false
    end
    else begin
      incr probes;
      if !probes >= max_probes then continue := false (* saturated: drop *)
      else i := (!i + 1) land mask
    end
  done

(* Start a new recording window (per fuzzing execution).  The dictionary
   persists across windows -- operands stay useful for later mutations. *)
let reset t =
  Array.fill t.triples 0 triple_slots 0;
  Bytes.fill t.features 0 feature_slots '\000'

(** The window's features as (index, bucket) pairs in ascending index
    order, disjoint from {!Coverage.signature} indices.  Deterministic:
    presence-only (bucket = 1), ascending slots. *)
let features t =
  let acc = ref [] in
  for i = feature_slots - 1 downto 0 do
    if Bytes.unsafe_get t.features i <> '\000' then
      acc := (feature_base + i, 1) :: !acc
  done;
  !acc

(** Dictionary values in first-insertion order. *)
let dict_values t = Array.sub t.dict 0 t.dict_n

let dict_size t = t.dict_n
