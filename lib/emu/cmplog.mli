(** Compare-operand coverage (cmplog): branch/compare sites in the fast
    engine record (pc, lhs, rhs) triples into a bounded deduplicated
    table.  Each recording window yields (a) frontier features -- (index,
    bucket) pairs disjoint from {!Coverage.signature}'s edge indices,
    keyed by (pc, matched-low-bytes agreement level) -- and (b) a bounded
    operand dictionary for input-to-state mutation.  Toggling [enabled]
    patches live sites; no translation-cache flush. *)

type t = {
  mutable enabled : bool;  (** read at run time by compiled sites *)
  triples : int array;
  features : Bytes.t;
  dict : int array;
  mutable dict_n : int;
  dict_seen : (int, unit) Hashtbl.t;
  pair_key : int array;
  pair_val : int array;
}

(** First feature index; everything below is {!Coverage} edge space. *)
val feature_base : int

val create : unit -> t

(** Record one compare.  O(1), allocation-free; dedups the exact triple
    within the current window. *)
val record : t -> pc:int -> lhs:int -> rhs:int -> unit

(** Start a new recording window (per fuzzing execution).  The operand
    dictionary persists across windows. *)
val reset : t -> unit

(** The window's features, ascending index order, bucket = 1. *)
val features : t -> (int * int) list

(** Dictionary values in first-insertion order. *)
val dict_values : t -> int array

val dict_size : t -> int

(** Input-to-state lookup: the value [v] was most recently compared
    against, if still cached.  Persists across windows, like the
    dictionary. *)
val counterpart : t -> int -> int option

(** Number of equal low-order bytes of two 32-bit values (0..4). *)
val agreement : int -> int -> int
