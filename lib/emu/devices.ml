(* Standard platform devices.

   Fixed platform memory map (the "platform device memory allocation" the
   Prober must discover, S3.2):

     0xF000_0000  UART        (byte out, console capture)
     0xF000_0100  POWER       (write -> Halted with the written code)
     0xF000_0200  MAILBOX     (executor/syscall interface + ready doorbell)
     0xF000_0300  TIMER       (read -> low 32 bits of retired instructions)
     0xF000_0400  RNG         (deterministic xorshift32)

   Each stateful device implements the {!Device.t} [save]/[restore] hooks
   for the snapshot service.  Saved state is the *guest-visible* state
   only: host-side wiring (mailbox [on_ready]/[on_complete]) survives a
   restore untouched.  Plain-data state is serialized with [Marshal];
   restore rebuilds mutable containers in place so aliases held by the
   machine stay valid. *)

let uart_base = 0xF000_0000
let power_base = 0xF000_0100
let mailbox_base = 0xF000_0200
let timer_base = 0xF000_0300
let rng_base = 0xF000_0400

(* --- UART ---------------------------------------------------------------- *)

type uart = { out : Buffer.t }

let uart () =
  let state = { out = Buffer.create 256 } in
  let read ~offset:_ ~width:_ = 0 in
  let write ~offset ~width:_ ~value =
    if offset = 0 then Buffer.add_char state.out (Char.chr (value land 0xFF))
  in
  let save () = Buffer.contents state.out in
  let restore s =
    Buffer.clear state.out;
    Buffer.add_string state.out s
  in
  ( state,
    {
      Device.name = "uart";
      base = uart_base;
      size = 0x100;
      read;
      write;
      save;
      restore;
    } )

let uart_output u = Buffer.contents u.out
let uart_clear u = Buffer.clear u.out

(* --- Power --------------------------------------------------------------- *)

let power () =
  let read ~offset:_ ~width:_ = 0 in
  let write ~offset ~width:_ ~value =
    if offset = 0 then raise (Fault.Halted value)
  in
  let save, restore = Device.stateless in
  { Device.name = "power"; base = power_base; size = 0x100; read; write;
    save; restore }

(* --- Mailbox (executor/syscall interface) -------------------------------- *)

(* Register map (offsets):
     0x00  REQ_PENDING  (RO: 1 if a request is waiting)
     0x04  NR           (RO: syscall number)
     0x08..0x1C  ARG0..ARG5
     0x20  RET          (WO: guest writes the syscall result)
     0x24  COMPLETE     (WO: guest writes 1 to acknowledge; pops the queue)
     0x28  READY        (WO: guest writes 1 at ready-to-run state) *)

type request = { nr : int; args : int array (* length 6 *) }

type completion = { c_nr : int; ret : int }

type mailbox = {
  queue : request Queue.t;
  mutable current : request option;
  mutable last_ret : int;
  mutable completions : completion list; (* most recent first *)
  mutable ready : bool;
  mutable on_ready : unit -> unit;
  mutable on_complete : completion -> unit;
}

(* Guest-visible mailbox state as a plain-data Marshal payload.  Requests
   are flattened to (nr, args) pairs so the payload contains no mutable
   structure shared with the live device. *)
type mailbox_state = {
  s_queue : (int * int array) list; (* front first *)
  s_current : (int * int array) option;
  s_last_ret : int;
  s_completions : completion list;
  s_ready : bool;
}

let mailbox () =
  let state =
    {
      queue = Queue.create ();
      current = None;
      last_ret = 0;
      completions = [];
      ready = false;
      on_ready = ignore;
      on_complete = ignore;
    }
  in
  let pop () =
    if state.current = None && not (Queue.is_empty state.queue) then
      state.current <- Some (Queue.pop state.queue)
  in
  let read ~offset ~width:_ =
    pop ();
    match (state.current, offset) with
    | Some _, 0x00 -> 1
    | None, 0x00 -> 0
    | Some r, 0x04 -> r.nr
    | Some r, off when off >= 0x08 && off < 0x20 && (off - 8) mod 4 = 0 ->
        r.args.((off - 8) / 4)
    | (Some _ | None), _ -> 0
  in
  let write ~offset ~width:_ ~value =
    match offset with
    | 0x20 -> state.last_ret <- value
    | 0x24 ->
        (match state.current with
        | Some r ->
            let c = { c_nr = r.nr; ret = state.last_ret } in
            state.completions <- c :: state.completions;
            state.current <- None;
            state.on_complete c
        | None -> ())
    | 0x28 ->
        if value <> 0 && not state.ready then (
          state.ready <- true;
          state.on_ready ())
    | _ -> ()
  in
  let flatten (r : request) = (r.nr, Array.copy r.args) in
  let unflatten (nr, args) = { nr; args = Array.copy args } in
  let save () =
    let s =
      {
        s_queue = Queue.fold (fun acc r -> flatten r :: acc) [] state.queue
                  |> List.rev;
        s_current = Option.map flatten state.current;
        s_last_ret = state.last_ret;
        s_completions = state.completions;
        s_ready = state.ready;
      }
    in
    Marshal.to_string s []
  in
  let restore blob =
    let s : mailbox_state = Marshal.from_string blob 0 in
    Queue.clear state.queue;
    List.iter (fun r -> Queue.push (unflatten r) state.queue) s.s_queue;
    state.current <- Option.map unflatten s.s_current;
    state.last_ret <- s.s_last_ret;
    state.completions <- s.s_completions;
    state.ready <- s.s_ready
  in
  ( state,
    { Device.name = "mailbox"; base = mailbox_base; size = 0x100; read; write;
      save; restore }
  )

let mailbox_push m ~nr ~args =
  let a = Array.make 6 0 in
  Array.blit args 0 a 0 (min (Array.length args) 6);
  Queue.push { nr; args = a } m.queue

let mailbox_ready m = m.ready
let mailbox_idle m = m.current = None && Queue.is_empty m.queue
let mailbox_completions m = List.rev m.completions
let mailbox_clear_completions m = m.completions <- []

(* --- Timer ---------------------------------------------------------------- *)

(* The timer reads the machine's retired-instruction counter, which the
   snapshot service restores separately; the device itself is stateless. *)
let timer ~now =
  let read ~offset ~width:_ = if offset = 0 then now () land 0xFFFF_FFFF else 0 in
  let write ~offset:_ ~width:_ ~value:_ = () in
  let save, restore = Device.stateless in
  { Device.name = "timer"; base = timer_base; size = 0x100; read; write;
    save; restore }

(* --- Deterministic RNG ----------------------------------------------------- *)

let rng ~seed =
  let state = ref (if seed = 0 then 0x9E3779B9 else seed land 0xFFFF_FFFF) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) land 0xFFFF_FFFF in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0xFFFF_FFFF in
    state := x;
    x
  in
  let read ~offset ~width:_ = if offset = 0 then next () else 0 in
  let write ~offset:_ ~width:_ ~value:_ = () in
  let save () = string_of_int !state in
  let restore s = state := int_of_string s in
  { Device.name = "rng"; base = rng_base; size = 0x100; read; write;
    save; restore }
