(** Full-system machine: RAM, MMIO bus, harts, hypercall table, and a
    TCG-like execution engine that translates basic blocks into closure
    arrays with instrumentation probes baked in at translation time.

    The fast engine chains translated blocks (epoch/generation-tagged
    successor links), specializes allocation-free RAM load/store templates
    at translation time, and batches retired-insn/cost accounting per
    block; see DESIGN.md "Execution engine" for the invariants probes may
    rely on. *)

type stop =
  | Halted of int
  | Fault of Fault.access * string
  | Unhandled_trap of { pc : int; num : int }
  | Decode_fault of { pc : int; reason : string }
  | Budget_exhausted
  | Deadlock

val pp_stop : Format.formatter -> stop -> unit

type block

(** [Fast] is the chained, allocation-free, batch-accounted engine;
    [Baseline] is the pre-overhaul per-instruction interpreter kept as the
    semantics reference and bench baseline.  Both retire identical
    architectural state. *)
type engine = Fast | Baseline

type t = {
  arch : Embsan_isa.Arch.t;
  ram : Ram.t;
  mutable devices : Device.t array;  (** sorted by base, non-overlapping *)
  uart : Devices.uart;
  mailbox : Devices.mailbox;
  harts : Cpu.t array;
  probes : Probe.t;
  block_cache : (int, block) Hashtbl.t;
  trap_handlers : (int, handler) Hashtbl.t;
  stats : Engine_stats.t;
  mutable engine : engine;
  mutable tcg_gen : int;  (** bumped by flush_tcg; invalidates chain links *)
  mutable total_insns : int;
  mutable cost : int;  (** modeled guest cycles ({!Cost_model} weights) *)
  mutable external_cost : int;  (** host-side sanitizer cost units *)
  mutable next_hart : int;
  mutable entry : int;
}

and handler = t -> Cpu.t -> unit

exception Trap_unhandled of int * int

val ram_base : t -> int
val ram_size : t -> int

val create :
  ?harts:int ->
  ?ram_base:int ->
  ?ram_size:int ->
  ?seed:int ->
  arch:Embsan_isa.Arch.t ->
  unit ->
  t

val add_device : t -> Device.t -> unit

(** Flush the translation cache and invalidate all chained successor links
    (probe changes do this implicitly via the probe epoch). *)
val flush_tcg : t -> unit

(** Switch execution engines; flushes the translation cache when the mode
    actually changes (blocks of the two engines are not interchangeable). *)
val set_engine : t -> engine -> unit

(** Toggle dirty-page tracking in RAM (see {!Ram}).  The marking is
    specialized into the translated store templates, so an actual toggle
    flushes the translation cache; enabling when already on is free.
    Consumers (snapshot service, incremental digests) own one dirty-bitmap
    channel each and clear only their own bits. *)
val set_dirty_tracking : t -> bool -> unit

val set_trap_handler : t -> int -> handler -> unit
val remove_trap_handler : t -> int -> unit

(** Add host-side sanitizer cost units (see {!Cost_model}). *)
val add_external_cost : t -> int -> unit

(** Modeled total cost so far: translated guest cycles + host-side work. *)
val total_cost : t -> int

val load_image : t -> Embsan_isa.Image.t -> unit
val start_hart : t -> int -> pc:int -> sp:int -> unit

(** Boot hart 0 at the image entry with the stack at the top of RAM. *)
val boot : t -> unit

(** Debug/runtime accessors (no probes fired). *)

val read_mem : t -> addr:int -> width:int -> int
val write_mem : t -> addr:int -> width:int -> value:int -> unit
val read_string : t -> addr:int -> len:int -> string
val console_output : t -> string

(** Run until a definitive stop or the instruction budget is exhausted. *)
val run : t -> max_insns:int -> stop

(** Run until the mailbox signals the ready-to-run doorbell; [None] when
    the doorbell fired, [Some stop] when the machine stopped first. *)
val run_until_ready : t -> max_insns:int -> stop option

(** Run until the current mailbox request completes and the queue drains. *)
val run_until_mailbox_idle : t -> max_insns:int -> stop option
