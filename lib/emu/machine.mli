(** Full-system machine: RAM, MMIO bus, harts, hypercall table, and a
    TCG-like execution engine that translates basic blocks into closure
    arrays with {e patchable instrumentation sites}.

    Every op that can be instrumented (mem/call/ret/compare, plus
    dirty-page tracking) compiles in a site that consults the shared site
    table ({!Probe.t} subscriber arrays, [Ram.track_dirty],
    [Cmplog.enabled]) at run time, so toggling instrumentation is an O(1)
    mutation observed by already-translated code -- no retranslation, no
    flush.

    The fast engine chains translated blocks (generation-tagged successor
    links), fuses hot chains into superblocks, specializes
    allocation-free RAM load/store templates at translation time, and
    batches retired-insn/cost accounting per block; see DESIGN.md
    "Execution engine" and "Fuzzing-first engine" for the invariants
    probes may rely on. *)

type stop =
  | Halted of int
  | Fault of Fault.access * string
  | Unhandled_trap of { pc : int; num : int }
  | Decode_fault of { pc : int; reason : string }
  | Budget_exhausted
  | Deadlock

val pp_stop : Format.formatter -> stop -> unit

type block

(** [Fast] is the chained, allocation-free, batch-accounted engine;
    [Baseline] is the pre-overhaul per-instruction interpreter kept as the
    semantics reference and bench baseline.  Both retire identical
    architectural state, and both consult the probe site table at run
    time. *)
type engine = Fast | Baseline

(** Model-free MMIO rehosting hook (implemented by [lib/rehost]; a record
    of closures so the emulator stays free of fuzzer dependencies).  When
    installed, unmapped-bus accesses from guest code (hart >= 0) whose
    address satisfies [rh_covers] are served by the hook instead of
    faulting: reads come from a fuzz-input stream behind a (pc, addr)
    memoization table (counted in [stats.rehost_reads]), writes are
    recorded.  Debug accessors ([read_mem]/[write_mem], hart = -1) never
    consult the hook.  [rh_save]/[rh_restore] round-trip the hook's state
    (memo table, pending interrupt plan) through {!Snap}. *)
type rehost = {
  rh_read : pc:int -> addr:int -> size:int -> int;
  rh_write : pc:int -> addr:int -> size:int -> value:int -> unit;
  rh_covers : int -> bool;
  rh_save : unit -> string;
  rh_restore : string -> unit;
}

type t = {
  arch : Embsan_isa.Arch.t;
  ram : Ram.t;
  mutable devices : Device.t array;  (** sorted by base, non-overlapping *)
  uart : Devices.uart;
  mailbox : Devices.mailbox;
  harts : Cpu.t array;
  probes : Probe.t;
  cmplog : Cmplog.t;  (** compare-operand coverage sink (see {!Cmplog}) *)
  block_cache : (int, block) Hashtbl.t;
  trap_handlers : (int, handler) Hashtbl.t;
  stats : Engine_stats.t;
  mutable engine : engine;
  mutable superblocks : bool;  (** substitute fused blocks when available *)
  mutable super_threshold : int;  (** execs before fusing; power of two *)
  mutable tcg_gen : int;  (** bumped by flush_tcg; invalidates chain links *)
  mutable deadline : int;  (** current run_slice deadline, for fused guards *)
  mutable total_insns : int;
  mutable cost : int;  (** modeled guest cycles ({!Cost_model} weights) *)
  mutable external_cost : int;  (** host-side sanitizer cost units *)
  mutable next_hart : int;
  mutable entry : int;
  mutable sched : scheduler option;
      (** external hart scheduler; [None] = built-in round-robin *)
  mutable rehost : rehost option;
      (** model-free MMIO rehosting hook; [None] = unmapped accesses
          fault *)
  mutable irq_entry : int;
      (** guest interrupt stub entry pc announced via
          {!Hypercall.irq_register}; -1 = none registered *)
}

and handler = t -> Cpu.t -> unit

(** External hart scheduler: pick the next hart to run and the absolute
    [total_insns] deadline of its turn (clamped to the enclosing slice
    deadline), or [None] when no hart is runnable — the run loop then
    applies its usual stall-advance/deadlock handling.  Both engines stop
    a turn at the first block boundary at or past the turn deadline, and
    block boundaries depend only on guest code, so a given scheduler
    produces the same interleaving on [Fast] and [Baseline] (pinned by
    the sched-transparency oracle). *)
and scheduler = t -> (Cpu.t * int) option

exception Trap_unhandled of int * int

val ram_base : t -> int
val ram_size : t -> int

val create :
  ?harts:int ->
  ?ram_base:int ->
  ?ram_size:int ->
  ?seed:int ->
  arch:Embsan_isa.Arch.t ->
  unit ->
  t

val add_device : t -> Device.t -> unit

(** Explicitly flush the translation cache and invalidate all chained
    successor links and superblocks (self-modifying code, snapshot
    restore).  Instrumentation toggles never flush: probe
    subscribe/unsubscribe, dirty tracking and cmplog all patch live
    sites.  Counted in [stats.flushes_invalidate]. *)
val flush_tcg : t -> unit

(** Switch execution engines; flushes the translation cache when the mode
    actually changes (blocks of the two engines are not interchangeable). *)
val set_engine : t -> engine -> unit

(** Toggle dirty-page tracking in RAM (see {!Ram}).  The marking is a
    patchable site in the translated store templates (stores consult
    [Ram.track_dirty] at run time), so toggling is O(1) and flush-free,
    and a no-op toggle is free.  Consumers (snapshot service, incremental
    digests) own one dirty-bitmap channel each and clear only their own
    bits. *)
val set_dirty_tracking : t -> bool -> unit

(** Toggle compare-operand recording (see {!Cmplog}); O(1), flush-free
    patch of the branch/compare sites. *)
val set_cmplog : t -> bool -> unit

(** Enable/disable hot-chain superblock fusion.  O(1): existing fused
    blocks are kept but not substituted while off. *)
val set_superblocks : t -> bool -> unit

(** Executions of a chain head before fusion is attempted; must be a
    power of two >= 2 (the hotness check is a mask).  Raises
    [Invalid_argument] otherwise. *)
val set_super_threshold : t -> int -> unit

val set_trap_handler : t -> int -> handler -> unit
val remove_trap_handler : t -> int -> unit

(** Arm (or, with [None], disarm) the external hart scheduler. *)
val set_sched : t -> scheduler option -> unit

(** Install (or, with [None], remove) the model-free rehosting hook.  The
    hook is consulted only on the unmapped-MMIO slow paths, which the
    translated templates already reach through run-time calls, so the
    toggle is one O(1) field write observed by already-translated code —
    no retranslation, no flush (same zero-flush discipline as the probe
    and cmplog toggles). *)
val set_rehost : t -> rehost option -> unit

(** Is this hart able to execute right now (running and not stalled)? *)
val runnable : t -> Cpu.t -> bool

(** Add host-side sanitizer cost units (see {!Cost_model}). *)
val add_external_cost : t -> int -> unit

(** Modeled total cost so far: translated guest cycles + host-side work. *)
val total_cost : t -> int

val load_image : t -> Embsan_isa.Image.t -> unit
val start_hart : t -> int -> pc:int -> sp:int -> unit

(** Boot hart 0 at the image entry with the stack at the top of RAM. *)
val boot : t -> unit

(** Debug/runtime accessors (no probes fired). *)

val read_mem : t -> addr:int -> width:int -> int
val write_mem : t -> addr:int -> width:int -> value:int -> unit
val read_string : t -> addr:int -> len:int -> string
val console_output : t -> string

(** Run until a definitive stop or the instruction budget is exhausted. *)
val run : t -> max_insns:int -> stop

(** Run until the mailbox signals the ready-to-run doorbell; [None] when
    the doorbell fired, [Some stop] when the machine stopped first. *)
val run_until_ready : t -> max_insns:int -> stop option

(** Run until the current mailbox request completes and the queue drains. *)
val run_until_mailbox_idle : t -> max_insns:int -> stop option
