(** Platform hypercall ABI (TRAP instruction numbers).  The trap number is
    an instruction immediate; arguments travel in a0..a2 and a result, when
    any, returns in a0.  Numbers 16..31 are the sanitizer callout range
    emitted by compile-time instrumentation (EmbSan-C's dummy sanitizer
    library, paper section 3.2). *)

val exit_ : int
val putc : int

(** Guest kcov-style coverage report: a0 = covered pc. *)
val kcov : int

(** a0 = hart id, a1 = entry pc, a2 = stack pointer. *)
val hart_start : int

val current_hart : int

(** Interrupt plumbing for the model-free rehosting layer: the guest
    announces its interrupt stub (a0 = entry pc), recorded into
    [Machine.t.irq_entry] by the boot harness. *)
val irq_register : int

(** End of interrupt: inert when no rehost controller is armed,
    context-restoring (back to the interrupted pc) when one is. *)
val irq_eoi : int

val check_load1 : int
val check_load2 : int
val check_load4 : int
val check_store1 : int
val check_store2 : int
val check_store4 : int

(** The check callout number for an access shape. *)
val check : is_write:bool -> size:int -> int

(** Inverse of {!check}: [Some (is_write, size)] for callout numbers. *)
val decode_check : int -> (bool * int) option

val san_alloc : int
val san_free : int
val san_global : int
val san_stack_poison : int
val san_stack_unpoison : int
val san_poison_region : int

(** Native in-guest sanitizer report channels. *)

val kasan_report : int
val kcsan_report : int

(** Synchronization-edge callout from guest locking primitives:
    a0 = op (0 = acquire, 1 = release, 2 = irq_off, 3 = irq_on),
    a1 = sync object address (0 for the IRQ pseudo-lock). *)
val san_sync : int

val name : int -> string
