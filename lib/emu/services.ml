(* Baseline platform hypercall services every firmware can rely on:
   secondary hart startup, hart identification, explicit exit and a
   character-output fallback. *)

open Embsan_isa

let install (m : Machine.t) =
  Machine.set_trap_handler m Hypercall.hart_start (fun m cpu ->
      let id = Cpu.get cpu Reg.a0
      and pc = Cpu.get cpu Reg.a1
      and sp = Cpu.get cpu Reg.a2 in
      if id > 0 && id < Array.length m.harts then Machine.start_hart m id ~pc ~sp);
  Machine.set_trap_handler m Hypercall.current_hart (fun _m cpu ->
      Cpu.set cpu Reg.a0 cpu.Cpu.id);
  Machine.set_trap_handler m Hypercall.exit_ (fun _m cpu ->
      raise (Fault.Halted (Cpu.get cpu Reg.a0)));
  Machine.set_trap_handler m Hypercall.putc (fun m cpu ->
      Buffer.add_char m.uart.Devices.out
        (Char.chr (Cpu.get cpu Reg.a0 land 0xFF)));
  (* kcov reports are dropped unless a coverage collector overrides this *)
  if not (Hashtbl.mem m.trap_handlers Hypercall.kcov) then
    Machine.set_trap_handler m Hypercall.kcov (fun _ _ -> ());
  (* interrupt plumbing for the rehosting layer: the stub announcement is
     always recorded (so arming a rehost controller after boot finds it);
     end-of-interrupt stays inert unless a controller overrides it *)
  Machine.set_trap_handler m Hypercall.irq_register (fun m cpu ->
      m.irq_entry <- Cpu.get cpu Reg.a0);
  if not (Hashtbl.mem m.trap_handlers Hypercall.irq_eoi) then
    Machine.set_trap_handler m Hypercall.irq_eoi (fun _ _ -> ())
