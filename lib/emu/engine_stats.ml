(* Execution-engine counters: translation-cache behaviour, block chaining
   and superblock effectiveness.  One instance lives in each {!Machine.t};
   the bench pipeline serializes them into BENCH_emu.json so engine
   regressions show up as a trajectory, not an anecdote. *)

type t = {
  mutable translations : int;  (* blocks translated (misses + stale) *)
  mutable cache_hits : int;  (* hashtable lookups that found a live block *)
  mutable cache_misses : int;  (* lookups that had to (re)translate *)
  mutable chained : int;  (* control transfers served by a chain link *)
  (* [flushes_load] counts the unavoidable flush on [load_image];
     [flushes_invalidate] counts everything else ([flush_tcg],
     [set_engine], snapshot restore).  Probe subscribe/unsubscribe and
     dirty-tracking toggles patch sites in place and count as neither --
     "~0 invalidation flushes under a probe-toggle storm" is the pinned
     property. *)
  mutable flushes_load : int;
  mutable flushes_invalidate : int;
  (* superblock formation: hot chain heads fused into single closure
     arrays.  [super_transfers] counts the block-to-block control
     transfers that happened *inside* a fused block (they skip both the
     hashtable and the chain links), [super_exits] the guard-detected
     mispredicts that bailed back to the dispatcher. *)
  mutable superblocks_formed : int;
  mutable super_execs : int;
  mutable super_exits : int;
  mutable super_transfers : int;
  (* model-free rehosting layer (lib/rehost): unmapped-MMIO reads served
     from the fuzz-input stream, and interrupts vectored at fuzzer-chosen
     retirement points. *)
  mutable rehost_reads : int;
  mutable irq_injected : int;
}

let create () =
  {
    translations = 0;
    cache_hits = 0;
    cache_misses = 0;
    chained = 0;
    flushes_load = 0;
    flushes_invalidate = 0;
    superblocks_formed = 0;
    super_execs = 0;
    super_exits = 0;
    super_transfers = 0;
    rehost_reads = 0;
    irq_injected = 0;
  }

let reset t =
  t.translations <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.chained <- 0;
  t.flushes_load <- 0;
  t.flushes_invalidate <- 0;
  t.superblocks_formed <- 0;
  t.super_execs <- 0;
  t.super_exits <- 0;
  t.super_transfers <- 0;
  t.rehost_reads <- 0;
  t.irq_injected <- 0

(** Total flushes of either kind (the pre-split [flushes] counter). *)
let flushes t = t.flushes_load + t.flushes_invalidate

(** Fraction of non-chained block lookups served from the cache. *)
let hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

(** Fraction of all block-to-block transfers that skipped the hashtable
    (served by a chain link or fused into a superblock). *)
let chain_rate t =
  let fast = t.chained + t.super_transfers in
  let total = t.cache_hits + t.cache_misses + fast in
  if total = 0 then 0.0 else float_of_int fast /. float_of_int total

let pp fmt t =
  Fmt.pf fmt
    "translations=%d cache_hits=%d cache_misses=%d chained=%d \
     flushes_load=%d flushes_invalidate=%d superblocks=%d super_execs=%d \
     super_exits=%d super_transfers=%d rehost_reads=%d irq_injected=%d \
     hit_rate=%.3f chain_rate=%.3f"
    t.translations t.cache_hits t.cache_misses t.chained t.flushes_load
    t.flushes_invalidate t.superblocks_formed t.super_execs t.super_exits
    t.super_transfers t.rehost_reads t.irq_injected (hit_rate t)
    (chain_rate t)

(* One versioned block: every raw counter (chaining, split flushes,
   superblocks, rehosting) plus the derived rates, tagged so downstream
   consumers of BENCH_emu.json fail loudly on a field change instead of
   silently reading zeros.  /2 added rehost_reads + irq_injected. *)
let schema = "embsan-engine-stats/2"

(** Render as a JSON object (used by the bench pipeline). *)
let to_json t =
  Printf.sprintf
    "{\"schema\": \"%s\", \"translations\": %d, \"cache_hits\": %d, \
     \"cache_misses\": %d, \"chained_transfers\": %d, \"flushes_load\": %d, \
     \"flushes_invalidate\": %d, \"superblocks_formed\": %d, \
     \"super_execs\": %d, \"super_exits\": %d, \"super_transfers\": %d, \
     \"rehost_reads\": %d, \"irq_injected\": %d, \"hit_rate\": %.4f, \
     \"chain_rate\": %.4f}"
    schema t.translations t.cache_hits t.cache_misses t.chained
    t.flushes_load t.flushes_invalidate t.superblocks_formed t.super_execs
    t.super_exits t.super_transfers t.rehost_reads t.irq_injected
    (hit_rate t) (chain_rate t)

(* Parse [to_json] output back into a stats record (round-trip pinned in
   test/test_emu.ml).  Scope is exactly our own flat rendering -- no
   general JSON parser is pulled in for one bench artifact. *)
let of_json s =
  let find_sub sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some (i + m)
      else go (i + 1)
    in
    go 0
  in
  let raw name =
    match find_sub (Printf.sprintf "\"%s\":" name) with
    | None -> invalid_arg (Printf.sprintf "Engine_stats.of_json: no %S" name)
    | Some start ->
        let stop = ref start in
        while
          !stop < String.length s && s.[!stop] <> ',' && s.[!stop] <> '}'
        do
          incr stop
        done;
        String.trim (String.sub s start (!stop - start))
  in
  let int_field name =
    match int_of_string_opt (raw name) with
    | Some v -> v
    | None ->
        invalid_arg (Printf.sprintf "Engine_stats.of_json: bad %S" name)
  in
  (match raw "schema" with
  | v when v = Printf.sprintf "%S" schema -> ()
  | v ->
      invalid_arg
        (Printf.sprintf "Engine_stats.of_json: schema %s, expected %S" v
           schema));
  {
    translations = int_field "translations";
    cache_hits = int_field "cache_hits";
    cache_misses = int_field "cache_misses";
    chained = int_field "chained_transfers";
    flushes_load = int_field "flushes_load";
    flushes_invalidate = int_field "flushes_invalidate";
    superblocks_formed = int_field "superblocks_formed";
    super_execs = int_field "super_execs";
    super_exits = int_field "super_exits";
    super_transfers = int_field "super_transfers";
    rehost_reads = int_field "rehost_reads";
    irq_injected = int_field "irq_injected";
  }
