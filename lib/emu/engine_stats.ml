(* Execution-engine counters: translation-cache behaviour and block
   chaining effectiveness.  One instance lives in each {!Machine.t}; the
   bench pipeline serializes them into BENCH_emu.json so engine
   regressions show up as a trajectory, not an anecdote. *)

type t = {
  mutable translations : int;  (* blocks translated (misses + stale) *)
  mutable cache_hits : int;  (* hashtable lookups that found a live block *)
  mutable cache_misses : int;  (* lookups that had to (re)translate *)
  mutable chained : int;  (* control transfers served by a chain link *)
  mutable flushes : int;  (* flush_tcg calls (incl. load_image) *)
}

let create () =
  { translations = 0; cache_hits = 0; cache_misses = 0; chained = 0; flushes = 0 }

let reset t =
  t.translations <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.chained <- 0;
  t.flushes <- 0

(** Fraction of non-chained block lookups served from the cache. *)
let hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

(** Fraction of all block-to-block transfers that skipped the hashtable. *)
let chain_rate t =
  let total = t.cache_hits + t.cache_misses + t.chained in
  if total = 0 then 0.0 else float_of_int t.chained /. float_of_int total

let pp fmt t =
  Fmt.pf fmt
    "translations=%d cache_hits=%d cache_misses=%d chained=%d flushes=%d \
     hit_rate=%.3f chain_rate=%.3f"
    t.translations t.cache_hits t.cache_misses t.chained t.flushes (hit_rate t)
    (chain_rate t)

(** Render as a JSON object (used by the bench pipeline). *)
let to_json t =
  Printf.sprintf
    "{\"translations\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \
     \"chained_transfers\": %d, \"flushes\": %d, \"hit_rate\": %.4f, \
     \"chain_rate\": %.4f}"
    t.translations t.cache_hits t.cache_misses t.chained t.flushes (hit_rate t)
    (chain_rate t)
