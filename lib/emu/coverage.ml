(* Basic-block coverage collection.

   Two collection paths mirror the paper's fuzzers:
   - [attach_tcg]: OS-agnostic coverage from translator block probes, the
     Tardis mechanism (works on any firmware, including closed-source);
   - [attach_kcov]: kernel-assisted coverage where the *guest* reports
     covered PCs through a kcov-style hypercall, the Syzkaller mechanism
     (requires guest support compiled in).

   Signature indices live below 65536 (the bitmap size); {!Cmplog}
   compare features are emitted at [Cmplog.feature_base] and above, so a
   campaign can append them to the same signature without collision. *)

type t = {
  bitmap : Bytes.t; (* 64 KiB edge bitmap, AFL-style *)
  mutable last_loc : int array; (* per-hart previous location *)
  mutable blocks_seen : int;
}

let bitmap_size = 1 lsl 16

let create ~harts =
  { bitmap = Bytes.make bitmap_size '\000'; last_loc = Array.make harts 0; blocks_seen = 0 }

let mix pc = (pc lsr 3) * 0x9E3779B1 land 0xFFFF_FFFF

let record t ~hart ~pc =
  let loc = mix pc land (bitmap_size - 1) in
  let prev = if hart >= 0 && hart < Array.length t.last_loc then t.last_loc.(hart) else 0 in
  let idx = (loc lxor prev) land (bitmap_size - 1) in
  let v = Bytes.get_uint8 t.bitmap idx in
  if v < 255 then Bytes.set_uint8 t.bitmap idx (v + 1);
  if hart >= 0 && hart < Array.length t.last_loc then t.last_loc.(hart) <- loc lsr 1;
  t.blocks_seen <- t.blocks_seen + 1

let attach_tcg t (m : Machine.t) =
  Probe.on_block m.probes (fun (ev : Probe.block_event) ->
      record t ~hart:ev.b_hart ~pc:ev.b_pc)

(** Hypercall number reserved for guest kcov reporting. *)
let kcov_trap = 9

let attach_kcov t (m : Machine.t) =
  Machine.set_trap_handler m kcov_trap (fun _m cpu ->
      record t ~hart:cpu.Cpu.id ~pc:(Cpu.get cpu Embsan_isa.Reg.a0))

let reset_edges t =
  Bytes.fill t.bitmap 0 bitmap_size '\000';
  Array.fill t.last_loc 0 (Array.length t.last_loc) 0;
  t.blocks_seen <- 0

(** Indices of non-zero edges, bucketed AFL-style into hit-count classes. *)
let signature t =
  let acc = ref [] in
  for i = bitmap_size - 1 downto 0 do
    let v = Bytes.get_uint8 t.bitmap i in
    if v > 0 then begin
      let bucket =
        if v = 1 then 1
        else if v = 2 then 2
        else if v = 3 then 3
        else if v <= 7 then 4
        else if v <= 15 then 5
        else if v <= 31 then 6
        else if v <= 127 then 7
        else 8
      in
      acc := (i, bucket) :: !acc
    end
  done;
  !acc

let edge_count t = List.length (signature t)
