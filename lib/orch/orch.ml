(* Multi-domain campaign orchestrator (DESIGN.md "Campaign orchestrator").

   N shared-nothing worker domains fuzz one firmware in parallel: each
   worker owns a full [Campaign.Engine] — its own machine, runtime,
   post-boot snapshot, corpus shard and coverage map — and draws from a
   deterministic per-shard stream split off the campaign seed
   ([Rng.split]).  No guest state is shared; coordination is pure message
   passing over {!Chan}.

   The exchange protocol is epoch-synchronous, which is what makes the
   whole campaign deterministic for any worker count: every epoch the
   coordinator sends each live worker an exec budget plus the frontier
   programs other workers discovered, waits for all epoch reports, and
   merges them in worker-index order.  A worker's behavior is a function
   of (its shard stream, the injections it was sent), and the injections
   are a function of earlier merged epochs — so the merged unique-bug
   set, corpus and coverage are reproducible across runs regardless of
   how the domains were actually scheduled (pinned in test/test_orch.ml).

   Frontier-exchange policy: a worker exports exactly the programs its
   own corpus admitted (new local coverage), with the admitting
   signature.  The coordinator replays the admission decision against a
   global [Corpus] — entries whose signature contains a globally-new
   (edge, bucket) pair join the merged frontier and are rebroadcast to
   every other live worker; the rest are dropped as duplicates.  Global
   triage is the same idea for bugs: deduplication by registered bug id
   in (epoch, worker-index, report-order), so a bug two workers trip
   counts once, credited to the first finder in merge order.

   With [jobs = 1] the single worker uses the campaign stream unsplit
   and no exchange ever happens, so the orchestrated campaign reduces to
   [Campaign.run] bit-for-bit — the determinism contract the acceptance
   tests pin. *)

module Campaign = Embsan_fuzz.Campaign
module Corpus = Embsan_fuzz.Corpus
module Prog = Embsan_fuzz.Prog
module Rng = Embsan_fuzz.Rng
module Firmware_db = Embsan_guest.Firmware_db

(* --- telemetry --------------------------------------------------------------- *)

type worker_stat = {
  w_id : int;
  w_execs : int;
  w_crashes : int;
  w_corpus : int;  (** worker-local corpus shard size *)
  w_coverage : int;  (** worker-local coverage pairs *)
  w_insns : int;
  w_cpu_s : float;  (** CPU seconds of the worker's own domain *)
  w_rate : float;  (** execs/sec over the worker's own CPU time *)
  w_done : bool;
}

type telemetry = {
  t_epoch : int;
  t_wall_s : float;
  t_execs : int;  (** total executions across workers *)
  t_unique_bugs : int;  (** globally deduplicated *)
  t_frontier : int;  (** merged frontier entries *)
  t_coverage : int;  (** merged coverage pairs *)
  t_workers : worker_stat array;
}

(* --- configuration ----------------------------------------------------------- *)

type config = {
  campaign : Campaign.config;  (** per-worker campaign config; [max_execs]
                                   is each worker's budget *)
  jobs : int;
  epoch_execs : int;  (** execs per worker between frontier exchanges *)
  on_telemetry : (telemetry -> unit) option;
}

let default_config ?(jobs = 1) ?(epoch_execs = 100) fw =
  { campaign = Campaign.default_config fw; jobs; epoch_execs; on_telemetry = None }

type result = {
  o_campaign : Campaign.result;  (** merged, [Campaign.run]-compatible *)
  o_workers : worker_stat array;
  o_epochs : int;
  o_wall_s : float;
  o_aggregate_rate : float;
      (** sum of per-worker CPU-time exec rates: the host-core-count
          independent scaling figure BENCH_orch.json reports *)
}

(* --- protocol ---------------------------------------------------------------- *)

type to_worker =
  | Run of { budget : int; injections : (Prog.t * int option * int option) list }
  | Quit

type epoch_report = {
  ep_fresh : (Prog.t * int option * int option * (int * int) list) list;
      (** newly admitted (with schedule and rehost seeds), oldest first *)
  ep_found : Campaign.found list;  (** newly found, oldest first *)
  ep_unmatched : string list;  (** cumulative *)
  ep_execs : int;  (** cumulative *)
  ep_crashes : int;
  ep_corpus : int;
  ep_coverage : int;
  ep_insns : int;
  ep_cpu_s : float;
  ep_done : bool;
}

type from_worker = Epoch of epoch_report | Failed of string

(* --- worker ------------------------------------------------------------------ *)

let worker_rng (cfg : config) shard =
  (* jobs = 1 keeps the campaign stream unsplit: bit-identical to
     [Campaign.run].  With several workers, shard [i] gets the i-th
     sub-stream of the campaign seed. *)
  let root = Rng.create ~seed:cfg.campaign.Campaign.seed in
  if cfg.jobs = 1 then root else Rng.split root ~shard

let worker_main (cfg : config) shard (inbox : to_worker Chan.t)
    (outbox : from_worker Chan.t) =
  let engine =
    match Campaign.Engine.create ~rng:(worker_rng cfg shard) cfg.campaign with
    | e -> Ok e
    | exception exn -> Error (Printexc.to_string exn)
  in
  let rec loop () =
    match Chan.recv inbox with
    | Quit -> ()
    | Run { budget; injections } ->
        (match engine with
        | Error msg -> Chan.send outbox (Failed msg)
        | Ok e -> (
            match
              let module E = Campaign.Engine in
              List.iter
                (fun (p, sched, rehost) ->
                  if not (E.finished e) then E.inject e ?sched ?rehost p)
                injections;
              let steps = ref 0 in
              while (not (E.finished e)) && !steps < budget do
                E.step e;
                incr steps
              done;
              {
                ep_fresh = E.drain_frontier e;
                ep_found = E.drain_found e;
                ep_unmatched = E.unmatched e;
                ep_execs = E.execs e;
                ep_crashes = E.crashes e;
                ep_corpus = E.corpus_size e;
                ep_coverage = E.coverage e;
                ep_insns = E.insns_now e;
                ep_cpu_s = Cputime.thread_s ();
                ep_done = E.finished e;
              }
            with
            | ep -> Chan.send outbox (Epoch ep)
            | exception exn ->
                Chan.send outbox (Failed (Printexc.to_string exn))));
        loop ()
  in
  loop ()

(* --- coordinator ------------------------------------------------------------- *)

let rate ~execs ~cpu_s = if cpu_s > 0. then float_of_int execs /. cpu_s else 0.

let stat_of last done_ i =
  match last.(i) with
  | None ->
      {
        w_id = i;
        w_execs = 0;
        w_crashes = 0;
        w_corpus = 0;
        w_coverage = 0;
        w_insns = 0;
        w_cpu_s = 0.;
        w_rate = 0.;
        w_done = done_.(i);
      }
  | Some ep ->
      {
        w_id = i;
        w_execs = ep.ep_execs;
        w_crashes = ep.ep_crashes;
        w_corpus = ep.ep_corpus;
        w_coverage = ep.ep_coverage;
        w_insns = ep.ep_insns;
        w_cpu_s = ep.ep_cpu_s;
        w_rate = rate ~execs:ep.ep_execs ~cpu_s:ep.ep_cpu_s;
        w_done = done_.(i);
      }

let run (cfg : config) : result =
  if cfg.jobs < 1 || cfg.jobs > 64 then
    invalid_arg "Orch.run: jobs must be in 1..64";
  if cfg.epoch_execs < 1 then invalid_arg "Orch.run: epoch_execs must be >= 1";
  let n = cfg.jobs in
  let t0 = Unix.gettimeofday () in
  let inboxes = Array.init n (fun _ -> Chan.create ()) in
  let outboxes = Array.init n (fun _ -> Chan.create ()) in
  let domains =
    Array.init n (fun i ->
        Domain.spawn (fun () -> worker_main cfg i inboxes.(i) outboxes.(i)))
  in
  let merged = Corpus.create () in
  let found : (string, Campaign.found) Hashtbl.t = Hashtbl.create 16 in
  let last : epoch_report option array = Array.make n None in
  let done_ = Array.make n false in
  let pending : (Prog.t * int option * int option) list array =
    Array.make n []
  in
  (* newest first *)
  let failure = ref None in
  let epochs = ref 0 in
  let total_bugs = List.length cfg.campaign.Campaign.fw.Firmware_db.fw_bugs in
  let stop_globally () =
    (* a bug found by any worker releases the others once the whole
       registry is covered — the orchestrator-level [stop_when_all_found] *)
    cfg.campaign.Campaign.stop_when_all_found
    && Hashtbl.length found >= total_bugs
  in
  while
    (not (Array.for_all Fun.id done_))
    && !failure = None
    && not (stop_globally ())
  do
    incr epochs;
    (* dispatch: exec budget plus the frontier queued for each worker *)
    for i = 0 to n - 1 do
      if not done_.(i) then begin
        Chan.send inboxes.(i)
          (Run { budget = cfg.epoch_execs; injections = List.rev pending.(i) });
        pending.(i) <- []
      end
    done;
    (* collect and merge in worker-index order: the merge is deterministic
       no matter how the domains were scheduled *)
    for i = 0 to n - 1 do
      if not done_.(i) then begin
        match Chan.recv outboxes.(i) with
        | Failed msg ->
            done_.(i) <- true;
            if !failure = None then failure := Some (i, msg)
        | Epoch ep ->
            last.(i) <- Some ep;
            done_.(i) <- ep.ep_done;
            List.iter
              (fun (prog, sched, rehost, signature) ->
                if Corpus.consider merged prog ?sched ?rehost signature then
                  for j = 0 to n - 1 do
                    if j <> i && not done_.(j) then
                      pending.(j) <- (prog, sched, rehost) :: pending.(j)
                  done)
              ep.ep_fresh;
            List.iter
              (fun (f : Campaign.found) ->
                let id = f.Campaign.f_bug.Embsan_guest.Defs.b_id in
                if not (Hashtbl.mem found id) then Hashtbl.replace found id f)
              ep.ep_found
      end
    done;
    match cfg.on_telemetry with
    | None -> ()
    | Some emit ->
        let workers = Array.init n (stat_of last done_) in
        emit
          {
            t_epoch = !epochs;
            t_wall_s = Unix.gettimeofday () -. t0;
            t_execs = Array.fold_left (fun a w -> a + w.w_execs) 0 workers;
            t_unique_bugs = Hashtbl.length found;
            t_frontier = Corpus.size merged;
            t_coverage = Corpus.coverage merged;
            t_workers = workers;
          }
  done;
  Array.iter (fun inbox -> Chan.send inbox Quit) inboxes;
  Array.iter Domain.join domains;
  (match !failure with
  | Some (i, msg) -> Fmt.failwith "Orch.run: worker %d failed: %s" i msg
  | None -> ());
  let workers = Array.init n (stat_of last done_) in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 workers in
  let wall = Unix.gettimeofday () -. t0 in
  {
    o_campaign =
      {
        Campaign.r_fw = cfg.campaign.Campaign.fw;
        r_found = Hashtbl.fold (fun _ f acc -> f :: acc) found [];
        r_execs = sum (fun w -> w.w_execs);
        r_crashes = sum (fun w -> w.w_crashes);
        r_corpus = Corpus.size merged;
        r_coverage = Corpus.coverage merged;
        r_insns = sum (fun w -> w.w_insns);
        r_unmatched =
          List.sort_uniq compare
            (Array.to_list last
            |> List.concat_map (function
                 | None -> []
                 | Some ep -> ep.ep_unmatched));
        r_corpus_progs = Corpus.programs merged;
      };
    o_workers = workers;
    o_epochs = !epochs;
    o_wall_s = wall;
    o_aggregate_rate =
      Array.fold_left (fun acc w -> acc +. w.w_rate) 0. workers;
  }

(* --- pretty printing --------------------------------------------------------- *)

let pp_worker fmt w =
  Fmt.pf fmt
    "worker %d: %6d execs  %4d crashes  corpus %3d  cov %4d  %7.1f e/s (cpu \
     %.2fs)%s"
    w.w_id w.w_execs w.w_crashes w.w_corpus w.w_coverage w.w_rate w.w_cpu_s
    (if w.w_done then "  done" else "")

let pp_telemetry fmt t =
  Fmt.pf fmt "epoch %3d  %6.1fs  %6d execs  %d bugs  frontier %d  cov %d"
    t.t_epoch t.t_wall_s t.t_execs t.t_unique_bugs t.t_frontier t.t_coverage

let pp_result fmt r =
  Fmt.pf fmt "@[<v>%a@,%a@,%d epochs in %.2fs, aggregate %.1f execs/sec@]"
    Campaign.pp_result r.o_campaign
    (Fmt.array ~sep:Fmt.cut pp_worker)
    r.o_workers r.o_epochs r.o_wall_s r.o_aggregate_rate
