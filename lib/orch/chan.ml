(* Unbounded blocking MPSC channel over a stdlib mutex + condition: the
   message-passing substrate between the orchestrator's coordinator and
   its worker domains.  OCaml 5.1 ships Domain/Mutex/Condition but no
   channel, and pulling in domainslib for two operations is not worth a
   dependency, so this is the minimal correct queue: [send] never blocks,
   [recv] parks on the condition until a message arrives. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
}

let create () =
  { lock = Mutex.create (); nonempty = Condition.create (); q = Queue.create () }

let send t v =
  Mutex.protect t.lock (fun () ->
      Queue.push v t.q;
      Condition.signal t.nonempty)

let recv t =
  Mutex.protect t.lock (fun () ->
      while Queue.is_empty t.q do
        Condition.wait t.nonempty t.lock
      done;
      Queue.pop t.q)
