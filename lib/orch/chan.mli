(** Unbounded blocking channel between domains (mutex + condition).
    [send] never blocks; [recv] blocks until a message is available.
    Safe for any number of senders and receivers. *)

type 'a t

val create : unit -> 'a t
val send : 'a t -> 'a -> unit
val recv : 'a t -> 'a
