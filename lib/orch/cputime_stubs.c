/* Per-thread CPU clock for worker-domain telemetry.  Each OCaml domain
   runs on its own system thread, so CLOCK_THREAD_CPUTIME_ID read from
   inside a domain is that domain's CPU time — the basis for the
   orchestrator's per-worker utilization and throughput numbers, which
   must not be polluted by sibling workers time-slicing on the same
   core. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#ifdef _WIN32

CAMLprim value embsan_orch_thread_cputime_ns(value unit)
{
  (void)unit;
  return caml_copy_int64(-1);
}

#else

#include <time.h>

CAMLprim value embsan_orch_thread_cputime_ns(value unit)
{
  struct timespec ts;
  (void)unit;
#ifdef CLOCK_THREAD_CPUTIME_ID
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
#endif
  return caml_copy_int64(-1);
}

#endif
