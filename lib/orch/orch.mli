(** Multi-domain campaign orchestrator: N shared-nothing worker domains
    (each owning its own machine, runtime, post-boot snapshot, corpus
    shard and coverage map) fuzz one firmware under deterministic
    per-shard seed streams, exchanging their coverage frontier through a
    coordinator that also runs global crash dedup/triage.

    The exchange protocol is epoch-synchronous and merged in
    worker-index order, so the campaign is deterministic for any worker
    count; with [jobs = 1] it reduces bit-for-bit to [Campaign.run].
    See DESIGN.md "Campaign orchestrator ([lib/orch])". *)

module Campaign = Embsan_fuzz.Campaign

(** Live per-worker statistics (rates are over the worker domain's own
    CPU time, so they are meaningful even when workers time-slice on
    fewer cores). *)
type worker_stat = {
  w_id : int;
  w_execs : int;
  w_crashes : int;
  w_corpus : int;
  w_coverage : int;
  w_insns : int;
  w_cpu_s : float;
  w_rate : float;
  w_done : bool;
}

(** One epoch's merged view, delivered to [on_telemetry]. *)
type telemetry = {
  t_epoch : int;
  t_wall_s : float;
  t_execs : int;
  t_unique_bugs : int;
  t_frontier : int;
  t_coverage : int;
  t_workers : worker_stat array;
}

type config = {
  campaign : Campaign.config;
      (** per-worker campaign config; [max_execs] is each worker's
          budget and [seed] the campaign seed the shard streams split
          from *)
  jobs : int;  (** worker domains, 1..64 *)
  epoch_execs : int;  (** execs per worker between frontier exchanges *)
  on_telemetry : (telemetry -> unit) option;
}

val default_config :
  ?jobs:int ->
  ?epoch_execs:int ->
  Embsan_guest.Firmware_db.firmware ->
  config

type result = {
  o_campaign : Campaign.result;
      (** merged result, compatible with [Campaign.run]'s: globally
          deduplicated bugs, merged frontier corpus and coverage,
          summed exec/crash/instruction counters *)
  o_workers : worker_stat array;
  o_epochs : int;
  o_wall_s : float;
  o_aggregate_rate : float;
      (** sum of per-worker CPU-time exec rates — the host-core-count
          independent scaling figure *)
}

(** Run the orchestrated campaign.  Raises [Invalid_argument] on a bad
    [jobs]/[epoch_execs], [Failure] if a worker domain fails (e.g. boot
    failure). *)
val run : config -> result

val pp_worker : Format.formatter -> worker_stat -> unit
val pp_telemetry : Format.formatter -> telemetry -> unit
val pp_result : Format.formatter -> result -> unit
