(* Per-domain CPU time (see cputime_stubs.c).  Falls back to process CPU
   time where the per-thread clock is unavailable — still monotonic, but
   then shared across domains, so [available] lets callers label the
   numbers honestly. *)

external thread_cputime_ns : unit -> int64 = "embsan_orch_thread_cputime_ns"

let available = lazy (Int64.compare (thread_cputime_ns ()) 0L >= 0)
let available () = Lazy.force available

(** CPU seconds consumed by the calling domain's thread. *)
let thread_s () =
  let ns = thread_cputime_ns () in
  if Int64.compare ns 0L >= 0 then Int64.to_float ns /. 1e9 else Sys.time ()
