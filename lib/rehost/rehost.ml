(* Model-free MMIO rehosting with fuzzer-scheduled interrupt injection
   (Ember-IO / FuzzBox direction).

   MMIO side: unmapped-bus reads covered by the window are served from
   the [mmio] draw stream behind a (pc, addr) memoization table — the
   first read at a site draws a fresh 32-bit response, later reads at
   the same site replay it (masked to the access width), which is what
   keeps status-polling loops deterministic and reproducers replayable.
   Writes to the window are accepted and counted; like Ember-IO we do
   not model write-back into later reads.

   IRQ side: an injection plan of absolute [total_insns] retirement
   points is drawn at arm time.  A scheduler wrapper clamps every turn
   deadline to the next point, so both engines end the turn at the first
   block boundary at or past it; at that boundary the picked hart's
   register file and pc are saved host-side and the pc is vectored to
   the guest's registered interrupt stub.  The stub's end-of-interrupt
   trap restores the saved context and resumes at the interrupted pc via
   [Fault.Retry_at] (the eoi trap sits mid-block; raising aborts the
   remaining ops with the trap instruction correctly retired on both
   engines).  Every decision is a pure function of [total_insns] and the
   plan, both engine-invariant — the rehost-transparency oracle pins
   Fast ≡ Baseline with the controller armed. *)

open Embsan_emu

type saved = { sv_hart : int; sv_regs : int array; sv_pc : int }

type t = {
  machine : Machine.t;
  memo : (int * int, int) Hashtbl.t; (* (pc, addr) -> 32-bit response *)
  mutable covers : int -> bool;
  mutable draw : (unit -> int) option; (* armed mmio stream; None = off *)
  mutable writes : int; (* MMIO writes accepted (not modeled back) *)
  mutable plan : int list; (* pending absolute injection points *)
  mutable in_irq : bool;
  mutable saved : saved option; (* interrupted context, host-side *)
  mutable inner : Machine.scheduler option; (* captured at arm *)
  mutable wrapper : Machine.scheduler option; (* installed, for ==-guards *)
}

let default_covers addr = addr >= 0xE000_0000 && addr < 0xF000_0000

let mask_of = function
  | 1 -> 0xFF
  | 2 -> 0xFFFF
  | _ -> 0xFFFF_FFFF

let rh_read t ~pc ~addr ~size =
  let key = (pc, addr) in
  let v =
    match Hashtbl.find_opt t.memo key with
    | Some v -> v
    | None ->
        let v =
          match t.draw with
          | Some draw -> draw () land 0xFFFF_FFFF
          | None -> 0 (* unreachable: covers is inactive when disarmed *)
        in
        Hashtbl.add t.memo key v;
        v
  in
  v land mask_of size

let rh_write t ~pc:_ ~addr:_ ~size:_ ~value:_ = t.writes <- t.writes + 1

(* --- snapshot round-trip --------------------------------------------------- *)

(* The blob carries the controller's data state (memo table, write
   count, pending plan, in-flight interrupt context) but not the draw
   closures: a restore mid-exec keeps the exec's streams, and the
   per-exec re-arm resets them from the corpus seed anyway.  Bindings
   are serialized sorted so equal states produce equal blobs. *)
let rh_save t () =
  let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.memo [] in
  let bindings = List.sort compare bindings in
  Marshal.to_string (bindings, t.writes, t.plan, t.in_irq, t.saved) []

let rh_restore t blob =
  let bindings, writes, plan, in_irq, saved =
    (Marshal.from_string blob 0
      : ((int * int) * int) list * int * int list * bool * saved option)
  in
  Hashtbl.reset t.memo;
  List.iter (fun (k, v) -> Hashtbl.add t.memo k v) bindings;
  t.writes <- writes;
  t.plan <- plan;
  t.in_irq <- in_irq;
  t.saved <- saved

(* --- interrupt injection --------------------------------------------------- *)

(* Replicate the machine's built-in rotation exactly (run_slice updates
   [next_hart] and clamps our deadline to the slice, so returning
   [max_int] is the built-in "run to the slice deadline"). *)
let round_robin (m : Machine.t) =
  let harts = m.Machine.harts in
  let n = Array.length harts in
  let rec pick k =
    if k >= n then None
    else
      let cpu = harts.((m.Machine.next_hart + k) mod n) in
      if Machine.runnable m cpu then Some (cpu, max_int) else pick (k + 1)
  in
  pick 0

let inject t (m : Machine.t) (cpu : Cpu.t) =
  t.saved <-
    Some
      {
        sv_hart = cpu.Cpu.id;
        sv_regs = Array.copy cpu.Cpu.regs;
        sv_pc = cpu.Cpu.pc;
      };
  cpu.Cpu.pc <- m.Machine.irq_entry;
  t.in_irq <- true;
  m.Machine.stats.Engine_stats.irq_injected <-
    m.Machine.stats.Engine_stats.irq_injected + 1

(* Scheduler wrapper: delegate the pick to the scheduler captured at arm
   time (or the built-in rotation), then [a] vector the picked hart to
   the interrupt stub when the previous turn carried us to or past the
   next injection point, and [b] clamp the turn deadline to the next
   pending point so both engines first observe the crossing at the same
   block boundary. *)
let hook t (m : Machine.t) =
  match (match t.inner with Some s -> s m | None -> round_robin m) with
  | None -> None
  | Some (cpu, turn_end) ->
      (match t.plan with
      | p :: rest when (not t.in_irq) && m.Machine.total_insns >= p ->
          t.plan <- rest;
          (* without a registered stub the point is just discarded *)
          if m.Machine.irq_entry >= 0 then inject t m cpu
      | _ -> ());
      let turn_end =
        match t.plan with
        | p :: _ when not t.in_irq -> min turn_end p
        | _ -> turn_end
      in
      Some (cpu, turn_end)

(* End-of-interrupt: restore the saved context and resume at the
   interrupted pc.  The trap sits mid-block and the block's remaining
   ops belong to the stub, so the resume must abort them: [Retry_at] is
   caught by the run loop, which re-enters at the restored pc with the
   trap instruction correctly counted as retired on both engines. *)
let eoi t _m (cpu : Cpu.t) =
  match t.saved with
  | Some sv when t.in_irq && sv.sv_hart = cpu.Cpu.id ->
      Array.blit sv.sv_regs 0 cpu.Cpu.regs 0 (Array.length sv.sv_regs);
      t.in_irq <- false;
      t.saved <- None;
      raise (Fault.Retry_at sv.sv_pc)
  | _ -> () (* spurious eoi (no controller-injected interrupt): inert *)

(* --- lifecycle ------------------------------------------------------------- *)

let create machine =
  let t =
    {
      machine;
      memo = Hashtbl.create 64;
      covers = (fun _ -> false);
      draw = None;
      writes = 0;
      plan = [];
      in_irq = false;
      saved = None;
      inner = None;
      wrapper = None;
    }
  in
  Machine.set_rehost machine
    (Some
       {
         Machine.rh_read = (fun ~pc ~addr ~size -> rh_read t ~pc ~addr ~size);
         rh_write =
           (fun ~pc ~addr ~size ~value -> rh_write t ~pc ~addr ~size ~value);
         rh_covers = (fun addr -> t.draw <> None && t.covers addr);
         rh_save = (fun () -> rh_save t ());
         rh_restore = (fun blob -> rh_restore t blob);
       });
  Machine.set_trap_handler machine Hypercall.irq_eoi (fun m cpu ->
      eoi t m cpu);
  t

(* Injection points: 2..8 interrupts at geometrically drawn gaps of
   16..~2K retired instructions (the Sched slice shape).  Syscalls retire
   roughly a thousand instructions each, so a plan's expected span covers
   a few syscalls — dense enough to land inside short windows, spread
   enough to reach late program phases. *)
let draw_plan t irq_draw =
  let count = 2 + irq_draw 7 in
  let point = ref t.machine.Machine.total_insns in
  List.init count (fun _ ->
      point := !point + (16 lsl irq_draw 8) + irq_draw 64;
      !point)

(* Remove the scheduler wrapper, restoring the scheduler captured at arm
   time.  Guarded by physical equality: if someone re-armed the
   machine's scheduler after us, their choice stands. *)
let unwrap t =
  (match (t.wrapper, t.machine.Machine.sched) with
  | Some w, Some cur when w == cur -> Machine.set_sched t.machine t.inner
  | _ -> ());
  t.wrapper <- None;
  t.inner <- None

let arm ?(covers = default_covers) ?irq t ~mmio =
  unwrap t;
  Hashtbl.reset t.memo;
  t.covers <- covers;
  t.draw <- Some mmio;
  t.writes <- 0;
  t.in_irq <- false;
  t.saved <- None;
  t.plan <- [];
  match irq with
  | None -> ()
  | Some irq_draw ->
      t.plan <- draw_plan t irq_draw;
      t.inner <- t.machine.Machine.sched;
      let w = hook t in
      t.wrapper <- Some w;
      Machine.set_sched t.machine (Some w)

let disarm t =
  unwrap t;
  t.draw <- None;
  t.covers <- (fun _ -> false);
  t.plan <- [];
  t.in_irq <- false;
  t.saved <- None

let armed t = t.draw <> None
let pending_irqs t = List.length t.plan
let in_irq t = t.in_irq
let memo_size t = Hashtbl.length t.memo
