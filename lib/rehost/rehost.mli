(** Model-free MMIO rehosting with fuzzer-scheduled interrupt injection
    (Ember-IO / FuzzBox direction): firmware whose peripherals have no
    hand-written device model runs anyway — reads from unmapped MMIO
    space are served from a dedicated fuzz-input stream behind a
    (pc, addr) memoization table, and interrupts are vectored into the
    guest's registered stub at fuzzer-chosen retirement points.

    The controller plugs into the public [Machine.set_rehost] and
    [Machine.set_sched] hooks.  Every decision is a pure function of the
    draw streams and the machine's architectural progress, so an armed
    controller produces the identical execution on [Fast] and [Baseline]
    (the rehost-transparency oracle pins this).  Draw streams are
    abstract closures (give them a dedicated [Rng.split_stream] stream)
    so this library stays free of fuzzer dependencies and a whole
    MMIO/IRQ trajectory replays from one integer seed. *)

type t

(** [create machine] builds a controller and installs its (initially
    inactive) hook on the machine: until {!arm}, no address is covered
    and unmapped accesses fault exactly as before.  Installation is an
    O(1) field write — no translation-cache flush — and also claims the
    {!Embsan_emu.Hypercall.irq_eoi} trap (inert while no interrupt is in
    flight).  Install before [Snap.capture] so checkpoints carry the
    (empty) memo table. *)
val create : Embsan_emu.Machine.t -> t

(** Default rehost window: \[0xE000_0000, 0xF000_0000) — below the
    modeled platform devices, far above RAM, and excluding page zero so
    null-pointer dereferences still fault. *)
val default_covers : int -> bool

(** [arm t ~mmio ?irq ()] activates the controller with fresh draw
    streams, resetting the memo table and all interrupt state (so the
    same seeds always replay the same responses and injection points).

    [mmio ()] supplies a fresh 32-bit response for a (pc, addr) site's
    first read; later reads at the same site replay the memoized value,
    masked to the access width.  [covers] defaults to {!default_covers}.

    [irq], when given, draws an injection plan: 1..4 interrupts at
    absolute retirement points spread from the current [total_insns].
    The controller then wraps the machine's scheduler (the one armed at
    this moment — arm any {!Embsan_sched.Sched} first) so each turn is
    clamped to the next injection point; at that block boundary the
    picked hart's context is saved host-side and its pc vectored to the
    stub registered via {!Embsan_emu.Hypercall.irq_register}.  The
    guest's [irq_eoi] trap restores the saved context.  Without a
    registered stub, points are discarded. *)
val arm :
  ?covers:(int -> bool) -> ?irq:(int -> int) -> t -> mmio:(unit -> int) -> unit

(** Deactivate: no address covered, pending injections dropped, the
    scheduler wrapper removed (restoring the scheduler captured at
    {!arm}).  The machine hook stays installed (still O(1), no flush). *)
val disarm : t -> unit

val armed : t -> bool

(** Remaining injection points in the current plan. *)
val pending_irqs : t -> int

(** Is an injected handler currently running (eoi not yet seen)? *)
val in_irq : t -> bool

(** Distinct (pc, addr) sites memoized since {!arm}. *)
val memo_size : t -> int
