(* The evaluated firmware images (Table 1): name, base OS, architecture,
   EmbSan instrumentation mode, source availability and the fuzzer used,
   plus builders producing the actual images for any compilation mode (the
   native-sanitizer baselines recompile the same firmware). *)

open Embsan_isa
module Codegen = Embsan_minic.Codegen

(* Firmware image builds are deterministic; memoize them so replay-heavy
   benches do not recompile the same kernel hundreds of times.  The cache
   is process-global toplevel state reached concurrently by the campaign
   orchestrator's worker domains (every boot and every ground-truth
   symbolization builds through here), so lookup-or-build is one mutex
   critical section.  Built images are immutable, so handing the same
   [Image.t] to several domains is safe: [Machine.load_image] copies the
   sections into machine-private RAM. *)
let build_cache : (string, Image.t) Hashtbl.t = Hashtbl.create 64
let build_lock = Mutex.create ()

let memo_build name f ~kcov mode =
  let key =
    Printf.sprintf "%s/%b/%s" name kcov
      (match (mode : Codegen.mode) with
      | Plain -> "plain"
      | Trap_callout -> "trap"
      | Inline_kasan -> "ikasan"
      | Inline_kcsan -> "ikcsan")
  in
  Mutex.protect build_lock (fun () ->
      match Hashtbl.find_opt build_cache key with
      | Some img -> img
      | None ->
          let img = f ~kcov mode in
          Hashtbl.add build_cache key img;
          img)

type fuzzer = Syzkaller | Tardis

let fuzzer_name = function Syzkaller -> "Syzkaller" | Tardis -> "Tardis"

type source_avail = Open | Closed

type inst_mode = EmbSan_C | EmbSan_D

let inst_name = function EmbSan_C -> "EmbSan-C" | EmbSan_D -> "EmbSan-D"

type firmware = {
  fw_name : string;
  fw_base_os : string;
  fw_arch : Arch.t;
  fw_inst : inst_mode;
  fw_source : source_avail;
  fw_fuzzer : fuzzer;
  fw_smp : bool;
  fw_build : kcov:bool -> Codegen.mode -> Image.t;
  (* ground-truth image for evaluation scoring: identical layout, but with
     symbols even when the shipped firmware is stripped *)
  fw_truth : kcov:bool -> Codegen.mode -> Image.t;
  fw_syscalls : Defs.syscall_desc list;
  fw_bugs : Defs.bug list;
}

(* --- module sets for the Linux-family images ----------------------------------- *)

let linux_fw ~name ~arch ~inst ~fuzzer ?(smp = false) modules =
  {
    fw_name = name;
    fw_base_os = "Embedded Linux";
    fw_arch = arch;
    fw_inst = inst;
    fw_source = Open;
    fw_fuzzer = fuzzer;
    fw_smp = smp;
    fw_build =
      memo_build name (fun ~kcov mode ->
          Linux_kernel.build ~smp ~kcov ~arch ~mode modules);
    fw_truth =
      memo_build name (fun ~kcov mode ->
          Linux_kernel.build ~smp ~kcov ~arch ~mode modules);
    fw_syscalls = Linux_kernel.syscalls modules;
    fw_bugs = Linux_kernel.bugs modules;
  }

let openwrt_armvirt =
  linux_fw ~name:"OpenWRT-armvirt" ~arch:Arch.Arm_ev ~inst:EmbSan_C
    ~fuzzer:Syzkaller
    [
      Linux_net.netfilter;
      Linux_net.wireless;
      Linux_fs.nfs_common;
      Linux_drivers.eth_marvell;
      Linux_drivers.eth_realtek;
      Linux_drivers.eth_atheros;
    ]

let openwrt_bcm63xx =
  linux_fw ~name:"OpenWRT-bcm63xx" ~arch:Arch.Mips_ev ~inst:EmbSan_D
    ~fuzzer:Syzkaller
    [
      Linux_drivers.bluetooth;
      Linux_drivers.dma_bcm2835;
      Linux_drivers.scsi_aic7xxx;
      Linux_fs.btrfs ~uaf:true ~races:false;
      Linux_drivers.wifi_broadcom;
    ]

let openwrt_ipq807x =
  linux_fw ~name:"OpenWRT-ipq807x" ~arch:Arch.Arm_ev ~inst:EmbSan_C
    ~fuzzer:Syzkaller
    [
      Linux_drivers.eth_broadcom;
      Linux_net.sched ~classify_bug:true ~filter_bug:false;
      Linux_drivers.wifi_ath;
      Linux_fs.fuse;
    ]

let openwrt_mt7629 =
  linux_fw ~name:"OpenWRT-mt7629" ~arch:Arch.Arm_ev ~inst:EmbSan_C
    ~fuzzer:Syzkaller
    [
      Linux_drivers.eth_mediatek;
      Linux_fs.nfs;
      Linux_net.core;
      Linux_drivers.dma_mediatek;
    ]

let openwrt_rtl839x =
  linux_fw ~name:"OpenWRT-rtl839x" ~arch:Arch.Mips_ev ~inst:EmbSan_D
    ~fuzzer:Syzkaller
    [ Linux_drivers.eth_realtek; Linux_drivers.bt_realtek; Linux_net.netrom ]

let openwrt_x86_64 =
  linux_fw ~name:"OpenWRT-x86_64" ~arch:Arch.X86_ev ~inst:EmbSan_C
    ~fuzzer:Syzkaller ~smp:true
    [
      Linux_drivers.iommu;
      Linux_drivers.eth_realtek;
      Linux_drivers.eth_stmicro;
      Linux_drivers.wifi_iwlwifi;
      Linux_drivers.wifi_b43;
      Linux_fs.btrfs ~uaf:false ~races:true;
    ]

let openharmony_rk3566 =
  linux_fw ~name:"OpenHarmony-rk3566" ~arch:Arch.Arm_ev ~inst:EmbSan_C
    ~fuzzer:Tardis
    [
      Linux_fs.nfs;
      Linux_fs.nfs_common;
      Linux_net.sched ~classify_bug:false ~filter_bug:true;
    ]

(* --- RTOS images ------------------------------------------------------------------ *)

let liteos_fw ~name ~arch ~with_fat =
  let build =
    memo_build name (fun ~kcov mode ->
        let img, _, _ = Liteos_kernel.build ~with_fat ~kcov ~arch ~mode () in
        img)
  in
  let _, syscalls, bugs = Liteos_kernel.build ~with_fat ~arch ~mode:Codegen.Plain () in
  {
    fw_name = name;
    fw_base_os = "LiteOS";
    fw_arch = arch;
    fw_inst = EmbSan_D;
    fw_source = Open;
    fw_fuzzer = Tardis;
    fw_smp = false;
    fw_build = build;
    fw_truth = build;
    fw_syscalls = syscalls;
    fw_bugs = bugs;
  }

let openharmony_stm32mp1 =
  liteos_fw ~name:"OpenHarmony-stm32mp1" ~arch:Arch.Arm_ev ~with_fat:false

let openharmony_stm32f407 =
  liteos_fw ~name:"OpenHarmony-stm32f407" ~arch:Arch.Mips_ev ~with_fat:true

let infinitime =
  let build =
    memo_build "InfiniTime" (fun ~kcov mode ->
        let img, _, _ = Freertos_kernel.build ~kcov ~arch:Arch.Arm_ev ~mode () in
        img)
  in
  let _, syscalls, bugs = Freertos_kernel.build ~arch:Arch.Arm_ev ~mode:Codegen.Plain () in
  {
    fw_name = "InfiniTime";
    fw_base_os = "FreeRTOS";
    fw_arch = Arch.Arm_ev;
    fw_inst = EmbSan_D;
    fw_source = Open;
    fw_fuzzer = Tardis;
    fw_smp = false;
    fw_build = build;
    fw_truth = build;
    fw_syscalls = syscalls;
    fw_bugs = bugs;
  }

let tplink_wdr7660 =
  let build =
    memo_build "TP-Link" (fun ~kcov mode ->
        let img, _, _ =
          Vxworks_kernel.build ~stripped:true ~kcov ~arch:Arch.Arm_ev ~mode ()
        in
        img)
  in
  let truth =
    memo_build "TP-Link-truth" (fun ~kcov mode ->
        let img, _, _ =
          Vxworks_kernel.build ~stripped:false ~kcov ~arch:Arch.Arm_ev ~mode ()
        in
        img)
  in
  let _, syscalls, bugs =
    Vxworks_kernel.build ~stripped:true ~arch:Arch.Arm_ev ~mode:Codegen.Plain ()
  in
  {
    fw_name = "TP-Link WDR-7660";
    fw_base_os = "VxWorks";
    fw_arch = Arch.Arm_ev;
    fw_inst = EmbSan_D;
    fw_source = Closed;
    fw_fuzzer = Tardis;
    fw_smp = false;
    fw_build = build;
    fw_truth = truth;
    fw_syscalls = syscalls;
    fw_bugs = bugs;
  }

(** Table 1's eleven firmware images, in the paper's order. *)
let all =
  [
    openwrt_armvirt;
    openwrt_bcm63xx;
    openwrt_ipq807x;
    openwrt_mt7629;
    openwrt_rtl839x;
    openwrt_x86_64;
    openharmony_rk3566;
    openharmony_stm32mp1;
    openharmony_stm32f407;
    infinitime;
    tplink_wdr7660;
  ]

let find name = List.find_opt (fun f -> String.equal f.fw_name name) all

(** The Table-2 bug-suite firmware (syzbot replays); Embedded Linux with
    the 25-bug suite module. *)
let syzbot_suite_fw =
  linux_fw ~name:"syzbot-suite" ~arch:Arch.Arm_ev ~inst:EmbSan_C
    ~fuzzer:Syzkaller
    [ Syzbot_suite.suite ]

(* The compare-coverage demo: a heap bug behind a hard-coded 32-bit token.
   Random [Any32] draws essentially never produce the token, so the gated
   branch is unreachable for the plain mutator; with cmplog the guest's
   own [token == MAGIC] compare donates the constant to the operand
   dictionary (and the agreement-gradient features reward each matched
   byte), so the gate falls.  The bench's cmplog off/on A/B workload. *)
let magic_token = 0x51EC7A3D

let magic_gate_module : Defs.module_def =
  {
    m_name = "drv_magicgate";
    m_source =
      Printf.sprintf
        {|
var gate_obj = 0;

// BUG (drivers/magicgate, use after free): the privileged unlock path is
// guarded by a hard-coded 32-bit token; once entered it tears the gate
// object down and then reads its state word back.
fun magicgate_unlock(token) {
  if (gate_obj == 0) { gate_obj = kmalloc(32); store32(gate_obj, 7); }
  if (token == %d) {
    kfree(gate_obj);
    var v = load32(gate_obj);
    gate_obj = 0;
    return v;
  }
  return 0 - 1;
}

fun sys_magicgate(a, b, c) { return magicgate_unlock(a); }

fun drv_magicgate_init() {
  syscall_table[9] = &sys_magicgate;
  return 0;
}
|}
        magic_token;
    m_init = Some "drv_magicgate_init";
    m_syscalls =
      [ { sc_nr = 9; sc_name = "magicgate"; sc_args = [ Defs.Any32 ] } ];
    m_bugs =
      [
        {
          b_id = "demo/magicgate_unlock";
          b_paper_location = "drivers/magicgate";
          b_symbol = "magicgate_unlock";
          b_alt_symbols = [];
          b_kind = Embsan_core.Report.Use_after_free;
          b_class = Defs.Heap_bug;
          b_syscalls = [ (9, [| magic_token; 0; 0 |]) ];
          b_benign = [ (9, [| 1; 0; 0 |]) ];
        };
      ];
  }

let cmplog_gate_fw =
  linux_fw ~name:"cmplog-gate" ~arch:Arch.Arm_ev ~inst:EmbSan_C
    ~fuzzer:Syzkaller
    [ magic_gate_module ]

(* The race-detection bug suite: three seeded data races (plus synchronized
   counterparts) between the syscall hart and a worker hart the suite
   module starts itself.  The ftrace campaign / schedule-fuzzing A/B
   workload ([bench race]).  SMP stays off: the module owns its worker
   hart and annotates the fork edge itself. *)
let race_suite_fw =
  linux_fw ~name:"race-suite" ~arch:Arch.Arm_ev ~inst:EmbSan_C
    ~fuzzer:Syzkaller
    [ Race_suite.suite ]

(* The rehosting bug suite: a UART/DMA-ish driver whose registers live in
   unmapped MMIO space (no model in [lib/emu/devices.ml]) with an
   IRQ-gated use-after-free — only runnable under the model-free
   rehosting layer, only findable with injected interrupts.  The
   [bench rehost] injection off/on A/B workload. *)
let mmio_suite_fw =
  linux_fw ~name:"mmio-suite" ~arch:Arch.Arm_ev ~inst:EmbSan_C
    ~fuzzer:Syzkaller
    [ Mmio_suite.suite ]

(** Prepare an EmbSan session for a firmware image in its Table-1 mode.
    [kcov] compiles guest coverage callouts in (the Syzkaller setup). *)
let embsan_firmware ?(kcov = false) fw =
  match (fw.fw_inst, fw.fw_source) with
  | EmbSan_C, _ ->
      Embsan_core.Embsan.Instrumented (fw.fw_build ~kcov Codegen.Trap_callout)
  | EmbSan_D, Open ->
      Embsan_core.Embsan.Source
        (fw.fw_build ~kcov Codegen.Plain, Embsan_core.Prober.no_hints)
  | EmbSan_D, Closed ->
      Embsan_core.Embsan.Binary
        (fw.fw_build ~kcov Codegen.Plain, Embsan_core.Prober.no_hints)

(** Force a specific EmbSan instrumentation mode (used by the overhead
    bench to measure both modes on the same firmware).  Closed-source
    firmware cannot be compile-time instrumented. *)
let embsan_firmware_mode ?(kcov = false) fw mode =
  match (mode, fw.fw_source) with
  | `C, Open -> Some (Embsan_core.Embsan.Instrumented (fw.fw_build ~kcov Codegen.Trap_callout))
  | `C, Closed -> None
  | `D, Open ->
      Some
        (Embsan_core.Embsan.Source
           (fw.fw_build ~kcov Codegen.Plain, Embsan_core.Prober.no_hints))
  | `D, Closed ->
      Some
        (Embsan_core.Embsan.Binary
           (fw.fw_build ~kcov Codegen.Plain, Embsan_core.Prober.no_hints))

let pp_table1_row fmt fw =
  Fmt.pf fmt "%-22s %-15s %-8s %-9s %-7s %s" fw.fw_name fw.fw_base_os
    (Arch.to_string fw.fw_arch) (inst_name fw.fw_inst)
    (match fw.fw_source with Open -> "Open" | Closed -> "Closed")
    (fuzzer_name fw.fw_fuzzer)
