(* VxWorks-style guest modeling the TP-Link WDR-7660 router firmware:
   partition allocator and the PPPoE / DHCP server daemons.  This firmware
   ships *stripped* (closed source): only the binary-mode prober applies.

   Because the stripped image gives the prober no symbols, kmain performs a
   handful of boot-time allocations so the dynamic allocator inference has
   signal (real daemons allocate sockets and buffers at startup). *)

open Defs
module Report = Embsan_core.Report

(* --- pppoed (OOB write) --------------------------------------------------------- *)

let pppoed : module_def =
  {
    m_name = "vx_pppoed_mod";
    m_source =
      {|
var pppoed_sessions = 0;
var pppoed_session = 0;

// BUG (pppoed, OOB write): the PADR tag walker copies a tag value with
// the on-wire tag length into the 16-byte host-uniq field.
fun pppoed_input(tag_len, seed) {
  if (tag_len > 32) { return 0 - 22; }
  var pkt = memPartAlloc(40);                 // 24 header + 16 host-uniq
  if (pkt == 0) { return 0 - 12; }
  store32(pkt, 0x11090000);                   // ver/type/code
  var i = 0;
  while (i < tag_len) {
    store8(pkt + 24 + i, (seed + i) & 0xFF);  // tag_len 17..32 spills
    i = i + 1;
  }
  pppoed_sessions = pppoed_sessions + 1;
  var v = load32(pkt);
  memPartFree(pkt);
  if (pppoed_session == 0) {
    pppoed_session = memPartAlloc(16);        // discovery done: open session
    if (pppoed_session != 0) { store32(pppoed_session + 4, pppoed_sessions); }
  }
  return v & 0x7FFFFFFF;
}

// PADT teardown trusts the session pointer: a disconnect arriving before
// discovery completes dereferences null and faults the board.  The real
// router hits the same watchdog-reboot path; the fuzzer recovers via its
// post-boot checkpoint.  Not a registry bug: the sanitizer never sees it
// (Tables 3/4 count sanitizer-class bugs only) - it is the campaign's
// architectural-crash workload.
fun pppoed_disconnect() {
  var s = pppoed_session;
  var sid = load32(s + 4);                    // null deref when no session
  pppoed_session = 0;
  memPartFree(s);
  return sid;
}

fun sys_pppoed(a, b, c) {
  if (a == 0) { return pppoed_sessions; }
  if (a == 1) { return pppoed_input(b, c); }
  if (a == 2) { return pppoed_disconnect(); }
  return 0 - 22;
}

fun vx_pppoed_init() {
  syscall_table[20] = &sys_pppoed;
  return 0;
}
|};
    m_init = Some "vx_pppoed_init";
    m_syscalls =
      [
        { sc_nr = 20; sc_name = "pppoed"; sc_args = [ Flag [ 0; 1; 2 ]; Len; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "vxworks/pppoed_input";
          b_paper_location = "pppoed";
          b_symbol = "pppoed_input";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (20, [| 1; 28; 5 |]) ];
          b_benign = [ (20, [| 1; 12; 5 |]) ];
        };
      ];
  }

(* --- dhcpsd (OOB write) ------------------------------------------------------------ *)

let dhcpsd : module_def =
  {
    m_name = "vx_dhcpsd_mod";
    m_source =
      {|
var dhcpsd_leases = 0;

// BUG (dhcpsd, OOB write): DHCP option 12 (hostname) is copied into the
// lease record with the option length; the record reserves 20 bytes.
fun dhcpsd_parse_options(opt_len, seed) {
  if (opt_len > 48) { return 0 - 22; }
  var lease = memPartAlloc(32);               // 12 header + 20 hostname
  if (lease == 0) { return 0 - 12; }
  store32(lease, 0xC0A80164);                 // leased address
  var i = 0;
  while (i < opt_len) {
    store8(lease + 12 + i, (seed + i) & 0x7F);  // opt_len 21..48 spills
    i = i + 1;
  }
  dhcpsd_leases = dhcpsd_leases + 1;
  var v = load32(lease);
  memPartFree(lease);
  return v & 0x7FFFFFFF;
}

fun sys_dhcpsd(a, b, c) {
  if (a == 0) { return dhcpsd_leases; }
  if (a == 1) { return dhcpsd_parse_options(b, c); }
  return 0 - 22;
}

fun vx_dhcpsd_init() {
  syscall_table[21] = &sys_dhcpsd;
  return 0;
}
|};
    m_init = Some "vx_dhcpsd_init";
    m_syscalls =
      [
        { sc_nr = 21; sc_name = "dhcpsd"; sc_args = [ Flag [ 0; 1 ]; Len; Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "vxworks/dhcpsd_parse_options";
          b_paper_location = "dhcpsd";
          b_symbol = "dhcpsd_parse_options";
          b_alt_symbols = [];
          b_kind = Report.Oob_access;
          b_class = Heap_bug;
          b_syscalls = [ (21, [| 1; 30; 9 |]) ];
          b_benign = [ (21, [| 1; 16; 9 |]) ];
        };
      ];
  }

(* boot-time daemon startup: allocates socket and buffer objects so the
   binary-mode prober's dynamic inference sees allocator behavior *)
let boot_daemons : module_def =
  {
    m_name = "vx_boot";
    m_source =
      {|
var vx_sock_pppoe = 0;
var vx_sock_dhcp = 0;
var vx_log_ring = 0;

fun vx_daemons_start() {
  vx_sock_pppoe = memPartAlloc(48);
  vx_sock_dhcp = memPartAlloc(48);
  vx_log_ring = memPartAlloc(96);
  var tmp = memPartAlloc(24);
  memPartFree(tmp);
  return 0;
}
|};
    m_init = Some "vx_daemons_start";
    m_syscalls = [];
    m_bugs = [];
  }

let banner = "VxWorks-EV bootrom\n"
let modules = [ boot_daemons; pppoed; dhcpsd ]

(** Build the firmware image; [stripped] (default) models the closed-source
    binary the tester actually has. *)
let build ?(stripped = true) ?(kcov = false) ~arch ~mode () =
  let img = Rtos_base.build ~kcov ~arch ~mode ~banner ~alloc_unit:Alloc_vxheap.unit_ modules in
  let img = if stripped then Embsan_isa.Image.strip img else img in
  (img, Rtos_base.syscalls modules, Rtos_base.bugs modules)
