(* Reproducer replay harness: boot a firmware under a sanitizer
   configuration, execute a syscall sequence through the mailbox executor
   and report what was detected.  Used by the Table-2 bench, by campaign
   crash triage and by the test suite. *)

open Embsan_emu
module Embsan = Embsan_core.Embsan
module Report = Embsan_core.Report
module Runtime = Embsan_core.Runtime
module Native = Embsan_core.Native
module Codegen = Embsan_minic.Codegen
module Driver = Embsan_minic.Driver

type outcome = {
  o_reports : Report.t list;
  o_crash : Machine.stop option; (* architectural stop during the replay *)
  o_cost : int; (* modeled cycles consumed *)
  o_insns : int;
}

let boot_budget = 30_000_000
let call_budget = 10_000_000

(* Sanitizer configurations a firmware can be run under. *)
type config =
  | No_sanitizer (* plain run, baseline for overhead *)
  | Embsan_cfg of Embsan.sanitizers (* EmbSan in the firmware's Table-1 mode *)
  | Embsan_mode of Embsan.sanitizers * [ `C | `D ] (* forced mode *)
  | Native_kasan (* in-guest KASAN baseline build *)
  | Native_kcsan (* in-guest KCSAN baseline build *)

let san_name (s : Embsan.sanitizers) =
  let base =
    match (s.kasan, s.kcsan) with
    | true, true -> [ "kasan+kcsan" ]
    | true, false -> [ "kasan" ]
    | false, true -> [ "kcsan" ]
    | false, false -> []
  in
  let extras =
    (if s.kmemleak then [ "kmemleak" ] else [])
    @ (if s.ualign then [ "ualign" ] else [])
    @ if s.ftrace then [ "ftrace" ] else []
  in
  match base @ extras with [] -> "none" | l -> String.concat "+" l

let config_name = function
  | No_sanitizer -> "none"
  | Embsan_cfg s -> Printf.sprintf "EmbSan(%s)" (san_name s)
  | Embsan_mode (s, `C) -> Printf.sprintf "EmbSan-C(%s)" (san_name s)
  | Embsan_mode (s, `D) -> Printf.sprintf "EmbSan-D(%s)" (san_name s)
  | Native_kasan -> "native KASAN"
  | Native_kcsan -> "native KCSAN"

(* A booted instance ready to serve syscalls.  [rt] is the attached EmbSan
   runtime when one exists (EmbSan configs), so the snapshot service can
   checkpoint its host-side sanitizer state alongside the machine. *)
type instance = {
  machine : Machine.t;
  sink : Report.sink;
  fw : Firmware_db.firmware;
  rt : Runtime.t option;
}

exception Boot_failed of string

let bootf fmt = Format.kasprintf (fun s -> raise (Boot_failed s)) fmt

let run_to_ready machine =
  match Machine.run_until_ready machine ~max_insns:boot_budget with
  | None -> ()
  | Some stop -> bootf "firmware did not reach ready: %a" Machine.pp_stop stop

(* Sessions are memoized per (firmware, sanitizers): the probing phase is
   per-firmware work, not per-replay work.  The cache is process-global
   and the orchestrator's worker domains all boot through here, so the
   lookup-or-build is one critical section: the first domain to ask for a
   key runs the probing phase, the others block and share the result.  A
   session is immutable after [prepare] (spec, platform, image), so
   sharing it read-only across domains is safe — each worker builds its
   own machine and runtime from it. *)
let session_cache : (string, Embsan.session) Hashtbl.t = Hashtbl.create 16
let session_lock = Mutex.create ()

let session_for ?(kcov = false) ?forced_mode (fw : Firmware_db.firmware)
    sanitizers =
  let key =
    Printf.sprintf "%s/%b%b%b%b%b/%b/%s" fw.fw_name sanitizers.Embsan.kasan
      sanitizers.Embsan.kcsan sanitizers.Embsan.kmemleak
      sanitizers.Embsan.ualign sanitizers.Embsan.ftrace kcov
      (match forced_mode with Some `C -> "C" | Some `D -> "D" | None -> "-")
  in
  Mutex.protect session_lock (fun () ->
      match Hashtbl.find_opt session_cache key with
      | Some s -> s
      | None ->
          let firmware =
            match forced_mode with
            | None -> Firmware_db.embsan_firmware ~kcov fw
            | Some mode -> (
                match Firmware_db.embsan_firmware_mode ~kcov fw mode with
                | Some f -> f
                | None ->
                    bootf "%s cannot run in that mode (closed source)"
                      fw.fw_name)
          in
          let s = Embsan.prepare ~sanitizers ~firmware () in
          Hashtbl.add session_cache key s;
          s)

let native_mode = function
  | Native_kasan -> Codegen.Inline_kasan
  | Native_kcsan -> Codegen.Inline_kcsan
  | No_sanitizer | Embsan_cfg _ | Embsan_mode _ -> Codegen.Plain

(** Boot an instance of [fw] under [config]. *)
let boot ?(harts = 2) ?(kcov = false) (fw : Firmware_db.firmware) (config : config) =
  let sink = Report.create_sink () in
  (match config with
  | Embsan_cfg _ | Embsan_mode _ ->
      let sanitizers, forced_mode =
        match config with
        | Embsan_cfg s -> (s, None)
        | Embsan_mode (s, m) -> (s, Some m)
        | No_sanitizer | Native_kasan | Native_kcsan -> assert false
      in
      let session = session_for ~kcov ?forced_mode fw sanitizers in
      let machine = Embsan.make_machine ~harts session in
      (* guest locking glue may emit san_sync edges; when no concurrency
         sanitizer subscribes (attach replaces this handler if one does),
         they must be inert, not Unhandled_trap *)
      Machine.set_trap_handler machine Hypercall.san_sync (fun _ _ -> ());
      let rt = Embsan.attach ~sink session machine in
      run_to_ready machine;
      { machine; sink; fw; rt = Some rt }
  | No_sanitizer | Native_kasan | Native_kcsan ->
      let image = fw.fw_build ~kcov (native_mode config) in
      let machine = Machine.create ~harts ~arch:image.Embsan_isa.Image.arch () in
      Machine.load_image machine image;
      Machine.boot machine;
      Services.install machine;
      (* sanitizer callouts may be present in some builds; native reports
         flow through the collector *)
      let symbolize pc =
        Option.map
          (fun (s : Embsan_isa.Image.symbol) -> s.name)
          (Embsan_isa.Image.symbol_at image pc)
      in
      let cfg = Driver.default_config in
      ignore
        (Native.attach
           ~shadow_offset:(Driver.shadow_offset cfg)
           ~sink ~symbolize machine);
      (* plain/native builds still contain no-op or in-guest san glue; any
         stray trap numbers must not kill the machine *)
      List.iter
        (fun n -> Machine.set_trap_handler machine n (fun _ _ -> ()))
        [ 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 30 ];
      run_to_ready machine;
      { machine; sink; fw; rt = None })

(** Execute one syscall; returns [Some stop] if the machine crashed. *)
let syscall inst ~nr ~args =
  Devices.mailbox_push inst.machine.mailbox ~nr ~args;
  Machine.run_until_mailbox_idle inst.machine ~max_insns:call_budget

(** Replay a call sequence, stopping at the first architectural crash. *)
let replay inst (calls : (int * int array) list) =
  let cost0 = Machine.total_cost inst.machine in
  let insns0 = inst.machine.total_insns in
  let rec go = function
    | [] -> None
    | (nr, args) :: rest -> (
        match syscall inst ~nr ~args with
        | None -> go rest
        | Some stop -> Some stop)
  in
  let crash = go calls in
  {
    o_reports = Report.unique_reports inst.sink;
    o_crash = crash;
    o_cost = Machine.total_cost inst.machine - cost0;
    o_insns = inst.machine.total_insns - insns0;
  }

(** One-shot: boot, replay, return the outcome. *)
let run_reproducer fw config calls =
  let inst = boot fw config in
  replay inst calls

(** Did the outcome detect [bug]?  A report whose location matches the
    bug's symbol, or - for null bugs - an architectural null fault. *)
let detects (bug : Defs.bug) (o : outcome) =
  let by_report =
    List.exists
      (fun (r : Report.t) ->
        Defs.kind_matches bug r.kind
        &&
        match r.location with
        | Some l -> List.mem l (Defs.bug_symbols bug)
        | None -> true (* stripped firmware: match on kind alone *))
      o.o_reports
  in
  let by_crash =
    match (bug.b_class, o.o_crash) with
    | Defs.Null_bug, Some (Machine.Fault (_, reason)) ->
        String.equal reason "null pointer dereference"
    | _ -> false
  in
  by_report || by_crash
