(** Reproducer replay harness: boot a firmware under a sanitizer
    configuration, execute syscall sequences through the mailbox executor
    and report what was detected.  Used by the Table-2 bench, campaign
    crash triage and the test suites. *)

module Embsan = Embsan_core.Embsan
module Report = Embsan_core.Report

type outcome = {
  o_reports : Report.t list;
  o_crash : Embsan_emu.Machine.stop option;
  o_cost : int;  (** modeled cycles consumed by the replay *)
  o_insns : int;
}

(** Sanitizer configurations a firmware can run under. *)
type config =
  | No_sanitizer  (** plain run: the overhead baseline *)
  | Embsan_cfg of Embsan.sanitizers  (** EmbSan in the Table-1 mode *)
  | Embsan_mode of Embsan.sanitizers * [ `C | `D ]  (** forced mode *)
  | Native_kasan  (** in-guest KASAN baseline build *)
  | Native_kcsan  (** in-guest KCSAN baseline build *)

val config_name : config -> string

type instance = {
  machine : Embsan_emu.Machine.t;
  sink : Report.sink;
  fw : Firmware_db.firmware;
  rt : Embsan_core.Runtime.t option;
      (** the attached EmbSan runtime (EmbSan configs only), exposed so the
          snapshot service can checkpoint its host-side state *)
}

exception Boot_failed of string

(** Memoized probing phase for (firmware, sanitizers, kcov, mode). *)
val session_for :
  ?kcov:bool ->
  ?forced_mode:[ `C | `D ] ->
  Firmware_db.firmware ->
  Embsan.sanitizers ->
  Embsan.session

(** Boot an instance (raises {!Boot_failed} if the firmware does not reach
    the ready doorbell, or the configuration is impossible). *)
val boot : ?harts:int -> ?kcov:bool -> Firmware_db.firmware -> config -> instance

(** Execute one syscall; [Some stop] if the machine crashed. *)
val syscall :
  instance -> nr:int -> args:int array -> Embsan_emu.Machine.stop option

(** Replay a call sequence, stopping at the first architectural crash. *)
val replay : instance -> (int * int array) list -> outcome

(** Boot + replay in one shot. *)
val run_reproducer :
  Firmware_db.firmware -> config -> (int * int array) list -> outcome

(** Did the outcome detect this bug (matching symbol + compatible kind, or
    a null fault for null bugs)? *)
val detects : Defs.bug -> outcome -> bool
