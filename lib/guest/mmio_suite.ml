(* The rehosting bug suite: a UART/DMA-ish driver whose device registers
   live in the rehost window (0xE000_0000..) and have NO hand-written
   model in [lib/emu/devices.ml] — the image only boots and runs under
   the model-free rehosting layer ([lib/rehost]), which serves every
   register read from the fuzz-input stream behind a (pc, addr)
   memoization table.  The injected bug is IRQ-gated: [sys_mmio_stop]
   frees the DMA descriptor but forgets to clear the completion-pending
   flag and keeps the stale pointer, so the interrupt handler — which
   only ever runs when the rehost controller injects an interrupt —
   dereferences freed heap.  No syscall sequence alone reaches the bad
   access: the [bench rehost] A/B guard pins "found with injection on
   every seed, never without".

   Conventions:

   - boot/init never touches the device window (boot runs before any
     controller is armed; the window would fault), so init only
     registers syscalls and announces the interrupt stub via trap 12;
   - the interrupt stub is [nosan]: it runs on the interrupted stack and
     its end-of-interrupt trap (13) never returns (the controller
     restores the interrupted context), so an instrumented frame would
     leave stack redzones poisoned.  The handler body it calls is a
     normal instrumented function — returning before the eoi — which is
     what makes the freed-heap access KASAN-visible;
   - register polls are bounded loops, not wait-for-value spins: within
     one exec a (pc, addr) site always replays its memoized response, so
     a loop waiting for that value to change would never terminate. *)

open Defs

let suite : module_def =
  {
    m_name = "drv_mmiosuite";
    m_source =
      {|
// ---- device registers (rehost window; no model exists) ----------------------
// 0xE0000000 CTRL     0xE0000004 DMA_ADDR   0xE0000008 STATUS
// 0xE000000C CONFIG   0xE0000010 RX_DATA

var md_dma = 0;      // DMA descriptor (stale after stop: BUG)
var md_active = 0;   // descriptor currently allocated
var md_pending = 0;  // completion pending (stop forgets to clear: BUG)
var md_irq_count = 0;
var md_rx_sum = 0;

// ---- interrupt side ---------------------------------------------------------

// BUG (mmio-suite): completion handler trusts md_pending, but stop
// freed the descriptor without clearing it — freed-heap load/store,
// reachable only under an injected interrupt.
fun mmio_irq_handler() {
  if (md_pending == 1) {
    var v = load32(md_dma + 4);
    store32(md_dma + 8, v + 1);
    md_irq_count = md_irq_count + 1;
  }
  return 0;
}

// The stub the controller vectors into (registered via trap 12).  The
// eoi trap restores the interrupted context and never returns.
nosan fun mmio_irq_stub() {
  mmio_irq_handler();
  trap0(13);
  return 0;
}

// ---- syscall side -----------------------------------------------------------

fun sys_mmio_start(a, b, c) {
  if (md_active == 1) { return 0 - 16; }
  md_dma = kmalloc(32);
  if (md_dma == 0) { return 0 - 12; }
  store32(md_dma + 0, a);
  store32(md_dma + 4, b);
  store32(md_dma + 8, 0);
  store32(0xE0000004, md_dma);       // program the DMA address register
  store32(0xE0000000, 1);            // CTRL: go
  md_active = 1;
  md_pending = 1;
  return load32(0xE000000C);         // CONFIG readback
}

// Bounded status poll: 16 reads of the same site replay one memoized
// response (the determinism the memo table exists for).
fun md_wait_status() {
  var i = 0;
  var s = 0;
  while (i < 16) {
    s = load32(0xE0000008);
    i = i + 1;
  }
  return s;
}

fun sys_mmio_stop(a, b, c) {
  if (md_active == 0) { return 0 - 22; }
  var s = md_wait_status();
  store32(0xE0000000, 0);            // CTRL: halt
  kfree(md_dma);
  md_active = 0;
  // BUG (mmio-suite): md_pending stays 1 and md_dma stays stale — the
  // next injected interrupt dereferences the freed descriptor.
  return s;
}

// UART-ish RX drain: eight reads of one data-register site, plus a
// status read — multiple distinct memoized sites in one call.
fun sys_mmio_read(a, b, c) {
  var i = 0;
  var sum = 0;
  while (i < 8) {
    sum = sum + load32(0xE0000010);
    i = i + 1;
  }
  md_rx_sum = sum + load32(0xE0000008);
  if (a == 1) { return md_irq_count; }
  return md_rx_sum;
}

fun drv_mmiosuite_init() {
  syscall_table[56] = &sys_mmio_start;
  syscall_table[57] = &sys_mmio_stop;
  syscall_table[58] = &sys_mmio_read;
  trap1(12, &mmio_irq_stub);         // announce the interrupt stub
  return 0;
}
|};
    m_init = Some "drv_mmiosuite_init";
    m_syscalls =
      [
        { sc_nr = 56; sc_name = "mmio_start"; sc_args = [ Any32; Any32 ] };
        { sc_nr = 57; sc_name = "mmio_stop"; sc_args = [] };
        { sc_nr = 58; sc_name = "mmio_read"; sc_args = [ Flag [ 0; 1 ] ] };
      ];
    m_bugs =
      [
        {
          b_id = "mmio-suite/irq_uaf";
          b_paper_location = "drivers/mmiosuite";
          b_symbol = "mmio_irq_handler";
          b_alt_symbols = [ "mmio_irq_stub"; "sys_mmio_stop" ];
          b_kind = Embsan_core.Report.Use_after_free;
          b_class = Heap_bug;
          (* the syscalls arm the window (start, stop, then a read that
             keeps the hart busy while pending is stale); manifesting
             additionally needs an injected interrupt (the b_syscalls
             replay alone must stay silent — the bench's no-injection arm
             pins that) *)
          b_syscalls = [ (56, [| 5; 9 |]); (57, [||]); (58, [| 0 |]) ];
          b_benign = [ (56, [| 5; 9 |]); (58, [| 0 |]) ];
        };
      ];
  }
