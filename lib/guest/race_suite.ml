(* The race-detection bug suite: a Linux-family module that starts its own
   worker hart and drives six shared-state idioms from syscalls — three
   seeded data races (an unlocked counter, a missing-lock buffer write and
   a narrow-window publication race that only fires under particular
   interleavings) and three correctly-synchronized counterparts (spinlock,
   irq-off section, atomic RMW) that must stay silent.

   Conventions the suite relies on:

   - lock primitives are [nosan] (their own amo/test-and-set and plain
     release store are invisible to the sanitizers) and announce their
     happens-before edges explicitly through the [san_sync] trap (30),
     which the ftrace plugin handles: a0 = op (0 acquire / 1 release /
     2 irq_off / 3 irq_on), a1 = lock address;
   - the command mailbox between the syscall hart and the worker hart is
     accessed only through [nosan] helpers, so the channel itself never
     shows up as a race;
   - the fork of the worker hart is modeled as a release (parent, before
     [hart_start]) / acquire (worker, at entry) pair on a dedicated
     pseudo-lock, so the worker's reads of pre-fork initialization never
     false-race;
   - the atomic counterpart wraps its amo in a [nosan] helper: EmbSan-C
     trap callouts do not carry an is-atomic bit (EmbSan-D probes do), so
     in C mode "marked access" means "hidden behind nosan". *)

open Defs

let suite : module_def =
  {
    m_name = "drv_racesuite";
    m_source =
      {|
// ---- happens-before-annotated locking primitives ---------------------------

var rs_fork_lock = 0;

nosan fun rs_acquire(lp) {
  while (amo_swap(lp, 1) != 0) { }
  trap2(30, 0, lp);
  return 0;
}

nosan fun rs_release(lp) {
  trap2(30, 1, lp);
  store32(lp, 0);
  return 0;
}

nosan fun rs_irq_off() { return trap2(30, 2, 0); }
nosan fun rs_irq_on()  { return trap2(30, 3, 0); }

// ---- invisible command mailbox: syscall hart -> worker hart -----------------

var rs_cmd = 0;
var rs_arg = 0;
var rs_ack = 0;

nosan fun rs_send(c, a) {
  store32(&rs_ack, 0);
  store32(&rs_arg, a);
  amo_swap(&rs_cmd, c);
  return 0;
}

nosan fun rs_recv() { return amo_swap(&rs_cmd, 0); }
nosan fun rs_getarg() { return load32(&rs_arg); }
nosan fun rs_done() { amo_swap(&rs_ack, 1); return 0; }
nosan fun rs_acked() { return load32(&rs_ack); }

// spin until the worker finished processing the command (it acks when
// done), bumping the progress beacon each iteration.  Bounded: the suite
// must not hang if the worker hart was never started.
nosan fun rs_drain() {
  var i = 0;
  while (rs_acked() == 0) {
    rs_bump_tick();
    i = i + 1;
    if (i > 200000) { return 0 - 1; }
  }
  return 0;
}

// ---- shared state -----------------------------------------------------------

var rs_counter = 0;        // race 1: unlocked increment on both harts
var rs_lock = 0;
var rs_locked_counter = 0; // no-race: spinlock-protected counterpart
arr rs_buf[16];            // race 2: locked reader vs lockless writer
var rs_buf_lock = 0;
var rs_tick = 0;           // race 3: syscall-hart progress beacon (invisible)
var rs_data = 0;           // race 3: written by both harts without sync
var rs_irq_data = 0;       // no-race: irq-off section
var rs_atom = 0;           // no-race: atomic RMW

nosan fun rs_bump_tick() { amo_add(&rs_tick, 1); return 0; }
nosan fun rs_get_tick() { return load32(&rs_tick); }
nosan fun rs_atomic_add(v) { return amo_add(&rs_atom, v); }

// ---- worker-hart side of each idiom (distinct symbols for triage) -----------

fun rs_worker_inc() {
  rs_counter = rs_counter + 1;     // BUG (race-suite): no lock held
  return 0;
}

fun rs_worker_locked() {
  rs_acquire(&rs_lock);
  rs_locked_counter = rs_locked_counter + 1;
  rs_release(&rs_lock);
  return 0;
}

fun rs_worker_buf(a) {
  rs_buf[a & 15] = a;              // BUG (race-suite): rs_buf_lock not taken
  return 0;
}

// The schedule-dependent race: the racy write only executes when the
// worker observes ZERO syscall-hart progress across a delay longer than a
// full round-robin turn.  The syscall hart spins in rs_drain bumping
// rs_tick, and the round-robin rotation gives it a turn inside any
// sufficiently long delay — so under the fixed rotation the guard never
// passes.  A fuzzed schedule can hand the worker several consecutive
// slices, starving the syscall hart through the delay.
fun rs_worker_window() {
  var a = rs_get_tick();
  var i = 0;
  while (i < 24) { i = i + 1; }    // longer than one round-robin turn
  var b = rs_get_tick();
  if (a == b) {
    rs_data = rs_data + 7;         // BUG (race-suite): starvation window
  }
  return 0;
}

fun rs_worker_irq() {
  rs_irq_off();
  rs_irq_data = rs_irq_data + 1;
  rs_irq_on();
  return 0;
}

fun rs_worker() {
  trap2(30, 0, &rs_fork_lock);     // acquire the fork edge
  while (1) {
    var c = rs_recv();
    if (c == 1) { rs_worker_inc(); }
    if (c == 2) { rs_worker_locked(); }
    if (c == 3) { rs_worker_buf(rs_getarg()); }
    if (c == 4) { rs_worker_window(); }
    if (c == 5) { rs_worker_irq(); }
    if (c == 6) { rs_atomic_add(1); }
    if (c != 0) { rs_done(); }
  }
  return 0;
}

// ---- syscall-hart side ------------------------------------------------------

fun rs_unlocked_inc() {
  rs_counter = rs_counter + 1;     // BUG (race-suite): races with the worker
  return 0;
}

fun sys_race_unlocked(a, b, c) {
  rs_send(1, a);
  rs_unlocked_inc();
  return rs_drain();
}

fun sys_race_locked(a, b, c) {
  rs_send(2, a);
  rs_acquire(&rs_lock);
  rs_locked_counter = rs_locked_counter + 1;
  rs_release(&rs_lock);
  return rs_drain();
}

fun rs_buf_reader(a) {
  var v = 0;
  rs_acquire(&rs_buf_lock);
  v = rs_buf[a & 15];
  rs_release(&rs_buf_lock);
  return v;
}

fun sys_race_buffer(a, b, c) {
  rs_send(3, a);
  var v = rs_buf_reader(a);
  rs_drain();
  return v;
}

fun rs_window_host() {
  rs_data = rs_data + 1;           // BUG (race-suite): vs rs_worker_window
  return 0;
}

fun sys_race_window(a, b, c) {
  rs_send(4, a);
  rs_window_host();
  return rs_drain();
}

fun sys_race_irq(a, b, c) {
  rs_send(5, a);
  rs_irq_off();
  rs_irq_data = rs_irq_data + 1;
  rs_irq_on();
  return rs_drain();
}

fun sys_race_atomic(a, b, c) {
  rs_send(6, a);
  rs_atomic_add(1);
  return rs_drain();
}

fun drv_racesuite_init() {
  syscall_table[3] = &sys_race_unlocked;
  syscall_table[4] = &sys_race_locked;
  syscall_table[5] = &sys_race_buffer;
  syscall_table[6] = &sys_race_window;
  syscall_table[7] = &sys_race_irq;
  syscall_table[8] = &sys_race_atomic;
  trap2(30, 1, &rs_fork_lock);     // release the fork edge, then start
  trap3(10, 1, &rs_worker, __stack_top - 0x10000);
  return 0;
}
|};
    m_init = Some "drv_racesuite_init";
    m_syscalls =
      [
        { sc_nr = 3; sc_name = "race_unlocked"; sc_args = [ Any32 ] };
        { sc_nr = 4; sc_name = "race_locked"; sc_args = [ Any32 ] };
        { sc_nr = 5; sc_name = "race_buffer"; sc_args = [ Any32 ] };
        { sc_nr = 6; sc_name = "race_window"; sc_args = [ Any32 ] };
        { sc_nr = 7; sc_name = "race_irq"; sc_args = [ Any32 ] };
        { sc_nr = 8; sc_name = "race_atomic"; sc_args = [ Any32 ] };
      ];
    m_bugs =
      [
        {
          b_id = "race-suite/unlocked_counter";
          b_paper_location = "drivers/racesuite";
          b_symbol = "rs_worker_inc";
          b_alt_symbols = [ "rs_unlocked_inc"; "sys_race_unlocked" ];
          b_kind = Embsan_core.Report.Data_race;
          b_class = Race_bug;
          b_syscalls = [ (3, [| 1 |]); (3, [| 2 |]) ];
          b_benign = [ (4, [| 1 |]); (4, [| 2 |]) ];
        };
        {
          b_id = "race-suite/buf_missing_lock";
          b_paper_location = "drivers/racesuite";
          b_symbol = "rs_worker_buf";
          b_alt_symbols = [ "rs_buf_reader"; "sys_race_buffer" ];
          b_kind = Embsan_core.Report.Data_race;
          b_class = Race_bug;
          b_syscalls = [ (5, [| 3 |]); (5, [| 3 |]) ];
          b_benign = [ (7, [| 3 |]); (7, [| 3 |]) ];
        };
        {
          b_id = "race-suite/window_publication";
          b_paper_location = "drivers/racesuite";
          b_symbol = "rs_worker_window";
          b_alt_symbols = [ "rs_window_host"; "sys_race_window" ];
          b_kind = Embsan_core.Report.Data_race;
          b_class = Race_bug;
          b_syscalls = [ (6, [| 0 |]); (6, [| 0 |]); (6, [| 0 |]) ];
          b_benign = [ (8, [| 0 |]); (8, [| 0 |]) ];
        };
      ];
  }
