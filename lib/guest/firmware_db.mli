(** The evaluated firmware images (Table 1): metadata, memoized builders
    for every compilation mode, syscall descriptions and the injected-bug
    registry. *)

type fuzzer = Syzkaller | Tardis

val fuzzer_name : fuzzer -> string

type source_avail = Open | Closed

type inst_mode = EmbSan_C | EmbSan_D

val inst_name : inst_mode -> string

type firmware = {
  fw_name : string;
  fw_base_os : string;
  fw_arch : Embsan_isa.Arch.t;
  fw_inst : inst_mode;
  fw_source : source_avail;
  fw_fuzzer : fuzzer;
  fw_smp : bool;
  fw_build : kcov:bool -> Embsan_minic.Codegen.mode -> Embsan_isa.Image.t;
  fw_truth : kcov:bool -> Embsan_minic.Codegen.mode -> Embsan_isa.Image.t;
      (** ground-truth image for evaluation scoring: identical layout, with
          symbols even when the shipped firmware is stripped *)
  fw_syscalls : Defs.syscall_desc list;
  fw_bugs : Defs.bug list;
}

(** Table 1's eleven firmware images, in the paper's order. *)
val all : firmware list

val find : string -> firmware option

(** The Table-2 bug-suite firmware (the 25 syzbot replays). *)
val syzbot_suite_fw : firmware

(** The 32-bit token guarding {!cmplog_gate_fw}'s gated branch. *)
val magic_token : int

(** The compare-coverage demo firmware: one syscall whose use-after-free
    sits behind a [token == magic_token] guard that random argument draws
    essentially never satisfy — solvable only with the cmplog operand
    dictionary ({!Embsan_emu.Cmplog}).  The bench's cmplog off/on A/B
    workload. *)
val cmplog_gate_fw : firmware

(** The race-detection bug suite: three seeded data races between the
    syscall hart and a module-started worker hart, plus synchronized
    no-race counterparts.  The ftrace / schedule-fuzzing A/B workload
    ([bench race]). *)
val race_suite_fw : firmware

(** The rehosting bug suite: a UART/DMA-ish driver whose device registers
    live in unmapped MMIO space — no model in [lib/emu/devices.ml] — with
    an IRQ-gated use-after-free.  Only runnable under the model-free
    rehosting layer ([lib/rehost]), only findable with injected
    interrupts.  The injection off/on A/B workload ([bench rehost]). *)
val mmio_suite_fw : firmware

(** The firmware value [Embsan.prepare] expects, in the image's Table-1
    instrumentation mode. *)
val embsan_firmware : ?kcov:bool -> firmware -> Embsan_core.Embsan.firmware

(** Force a specific mode (overhead bench); [None] when impossible
    (compile-time instrumentation of closed-source firmware). *)
val embsan_firmware_mode :
  ?kcov:bool -> firmware -> [ `C | `D ] -> Embsan_core.Embsan.firmware option

val pp_table1_row : Format.formatter -> firmware -> unit
