(* Architectural-state snapshots and minimized diffs for the differential
   harness.  A snapshot captures exactly the state the paper's
   probe-transparency argument is about: everything the guest can observe
   -- per-hart registers/pc/retired counts, machine totals, RAM contents
   (as a digest), console output and the stop record.  Host-side engine
   state (block cache, chain links, stats) is deliberately excluded: the
   engines are allowed to differ there. *)

open Embsan_emu

type hart = {
  h_id : int;
  h_pc : int;
  h_regs : int array;
  h_insns : int;
  h_status : string;
}

type t = {
  harts : hart array;
  total_insns : int;
  cost : int;
  ram_digest : string;
  console : string;
  stop : string option; (* rendered stop; [None] while still running *)
}

let status_name : Cpu.status -> string = function
  | Parked -> "parked"
  | Running -> "running"
  | Halted -> "halted"

let stop_string s = Fmt.str "%a" Machine.pp_stop s

let capture ?stop (m : Machine.t) =
  let hart (c : Cpu.t) =
    {
      h_id = c.id;
      h_pc = c.pc;
      h_regs = Array.copy c.regs;
      h_insns = c.insns;
      h_status = status_name c.status;
    }
  in
  {
    harts = Array.map hart m.harts;
    total_insns = m.total_insns;
    cost = m.cost;
    ram_digest =
      Digest.string
        (Machine.read_string m ~addr:(Machine.ram_base m)
           ~len:(Machine.ram_size m));
    console = Machine.console_output m;
    stop = Option.map stop_string stop;
  }

let opt_stop = function None -> "<running>" | Some s -> s

(* Field-by-field minimized diff: one line per differing observable, most
   significant first, registers named.  Empty list = architecturally
   identical. *)
let diff a b =
  let ds = ref [] in
  let add fmt = Fmt.kstr (fun s -> ds := s :: !ds) fmt in
  if a.stop <> b.stop then add "stop: %s vs %s" (opt_stop a.stop) (opt_stop b.stop);
  if a.total_insns <> b.total_insns then
    add "total_insns: %d vs %d" a.total_insns b.total_insns;
  if a.cost <> b.cost then add "cost: %d vs %d" a.cost b.cost;
  if Array.length a.harts <> Array.length b.harts then
    add "hart count: %d vs %d" (Array.length a.harts) (Array.length b.harts)
  else
    Array.iteri
      (fun i (ha : hart) ->
        let hb = b.harts.(i) in
        if ha.h_pc <> hb.h_pc then
          add "hart%d pc: 0x%08x vs 0x%08x" i ha.h_pc hb.h_pc;
        if ha.h_status <> hb.h_status then
          add "hart%d status: %s vs %s" i ha.h_status hb.h_status;
        if ha.h_insns <> hb.h_insns then
          add "hart%d insns: %d vs %d" i ha.h_insns hb.h_insns;
        Array.iteri
          (fun r va ->
            if va <> hb.h_regs.(r) then
              add "hart%d %s: 0x%08x vs 0x%08x" i
                (Embsan_isa.Reg.name (Embsan_isa.Reg.of_int r))
                va hb.h_regs.(r))
          ha.h_regs)
      a.harts;
  if a.ram_digest <> b.ram_digest then add "ram: contents differ (digest)";
  if a.console <> b.console then
    add "console: %S vs %S" a.console b.console;
  List.rev !ds

let equal a b = diff a b = []

(* On a RAM-digest mismatch the diff says only that the contents differ;
   this walks the two live machines and names the first differing words.
   Word-granular is enough to localize a bug to one store. *)
let ram_delta ?(max_entries = 8) (ma : Machine.t) (mb : Machine.t) =
  let base = Machine.ram_base ma and size = Machine.ram_size ma in
  let out = ref [] and n = ref 0 in
  let addr = ref base in
  while !n < max_entries && !addr + 4 <= base + size do
    let va = Machine.read_mem ma ~addr:!addr ~width:4
    and vb = Machine.read_mem mb ~addr:!addr ~width:4 in
    if va <> vb then begin
      out := Fmt.str "ram[0x%08x]: 0x%08x vs 0x%08x" !addr va vb :: !out;
      incr n
    end;
    addr := !addr + 4
  done;
  List.rev !out
