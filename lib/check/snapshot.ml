(* Architectural-state snapshots and minimized diffs for the differential
   harness.  A snapshot captures exactly the state the paper's
   probe-transparency argument is about: everything the guest can observe
   -- per-hart registers/pc/retired counts, machine totals, RAM contents
   (as a digest), console output and the stop record.  Host-side engine
   state (block cache, chain links, stats) is deliberately excluded: the
   engines are allowed to differ there. *)

open Embsan_emu

type hart = {
  h_id : int;
  h_pc : int;
  h_regs : int array;
  h_insns : int;
  h_status : string;
}

type t = {
  harts : hart array;
  total_insns : int;
  cost : int;
  ram_digest : string;
  console : string;
  stop : string option; (* rendered stop; [None] while still running *)
}

let status_name : Cpu.status -> string = function
  | Parked -> "parked"
  | Running -> "running"
  | Halted -> "halted"

let stop_string s = Fmt.str "%a" Machine.pp_stop s

(* The RAM digest is page-structured — the digest of the concatenated
   per-page digests — so a full recomputation and the incremental
   {!digester} below produce the SAME value and snapshots from the two
   paths compare against each other. *)

let page_digest (ram : Ram.t) page =
  let off = page lsl Ram.page_shift in
  let len = min Ram.page_size (Ram.size ram - off) in
  Digest.subbytes ram.Ram.bytes off len

let digest_of_pages pages =
  let buf = Buffer.create (Array.length pages * 16) in
  Array.iter (Buffer.add_string buf) pages;
  Digest.string (Buffer.contents buf)

let full_ram_digest (m : Machine.t) =
  let ram = m.Machine.ram in
  digest_of_pages (Array.init (Ram.page_count ram) (page_digest ram))

(* Incremental digest state: cached per-page digests, refreshed from the
   dirty-page bitmap's digest channel between sync points.  Creating one
   enables dirty tracking on the machine (an O(1), flush-free site
   patch). *)
type digester = { d_machine : Machine.t; d_pages : string array }

let digester (m : Machine.t) =
  Machine.set_dirty_tracking m true;
  let ram = m.Machine.ram in
  let pages = Array.init (Ram.page_count ram) (page_digest ram) in
  Ram.clear_dirty ram ~channel:Ram.digest_channel;
  { d_machine = m; d_pages = pages }

(** Rehash only the pages written since the last call (O(touched), the
    point of satellite 1) and return the whole-RAM digest. *)
let digest_incremental d =
  let ram = d.d_machine.Machine.ram in
  Ram.iter_dirty ram ~channel:Ram.digest_channel (fun p ->
      d.d_pages.(p) <- page_digest ram p);
  Ram.clear_dirty ram ~channel:Ram.digest_channel;
  digest_of_pages d.d_pages

let capture ?digester:dg ?stop (m : Machine.t) =
  let hart (c : Cpu.t) =
    {
      h_id = c.id;
      h_pc = c.pc;
      h_regs = Array.copy c.regs;
      h_insns = c.insns;
      h_status = status_name c.status;
    }
  in
  {
    harts = Array.map hart m.harts;
    total_insns = m.total_insns;
    cost = m.cost;
    ram_digest =
      (match dg with
      | Some d -> digest_incremental d
      | None -> full_ram_digest m);
    console = Machine.console_output m;
    stop = Option.map stop_string stop;
  }

let opt_stop = function None -> "<running>" | Some s -> s

(* Field-by-field minimized diff: one line per differing observable, most
   significant first, registers named.  Empty list = architecturally
   identical. *)
let diff a b =
  let ds = ref [] in
  let add fmt = Fmt.kstr (fun s -> ds := s :: !ds) fmt in
  if a.stop <> b.stop then add "stop: %s vs %s" (opt_stop a.stop) (opt_stop b.stop);
  if a.total_insns <> b.total_insns then
    add "total_insns: %d vs %d" a.total_insns b.total_insns;
  if a.cost <> b.cost then add "cost: %d vs %d" a.cost b.cost;
  if Array.length a.harts <> Array.length b.harts then
    add "hart count: %d vs %d" (Array.length a.harts) (Array.length b.harts)
  else
    Array.iteri
      (fun i (ha : hart) ->
        let hb = b.harts.(i) in
        if ha.h_pc <> hb.h_pc then
          add "hart%d pc: 0x%08x vs 0x%08x" i ha.h_pc hb.h_pc;
        if ha.h_status <> hb.h_status then
          add "hart%d status: %s vs %s" i ha.h_status hb.h_status;
        if ha.h_insns <> hb.h_insns then
          add "hart%d insns: %d vs %d" i ha.h_insns hb.h_insns;
        Array.iteri
          (fun r va ->
            if va <> hb.h_regs.(r) then
              add "hart%d %s: 0x%08x vs 0x%08x" i
                (Embsan_isa.Reg.name (Embsan_isa.Reg.of_int r))
                va hb.h_regs.(r))
          ha.h_regs)
      a.harts;
  if a.ram_digest <> b.ram_digest then add "ram: contents differ (digest)";
  if a.console <> b.console then
    add "console: %S vs %S" a.console b.console;
  List.rev !ds

let equal a b = diff a b = []

(* On a RAM-digest mismatch the diff says only that the contents differ;
   this walks the two live machines and names the first differing words.
   Word-granular is enough to localize a bug to one store. *)
let ram_delta ?(max_entries = 8) (ma : Machine.t) (mb : Machine.t) =
  let base = Machine.ram_base ma and size = Machine.ram_size ma in
  let out = ref [] and n = ref 0 in
  let addr = ref base in
  while !n < max_entries && !addr + 4 <= base + size do
    let va = Machine.read_mem ma ~addr:!addr ~width:4
    and vb = Machine.read_mem mb ~addr:!addr ~width:4 in
    if va <> vb then begin
      out := Fmt.str "ram[0x%08x]: 0x%08x vs 0x%08x" !addr va vb :: !out;
      incr n
    end;
    addr := !addr + 4
  done;
  List.rev !out
