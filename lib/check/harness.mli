(** Campaign driver for the differential oracles: seeded program
    generation per arch flavor, every program through every oracle, with a
    stop histogram and the first few divergences collected.  Deterministic
    given [config]. *)

type config = {
  seed : int;
  execs : int;  (** programs per arch flavor *)
  sync : int;  (** retired instructions between state comparisons *)
  max_insns : int;  (** instruction budget per run *)
  archs : Embsan_isa.Arch.t list;
  max_divergences : int;  (** stop collecting after this many *)
  oracles : string list;  (** oracle-name filter; [[]] runs all *)
}

(** seed 1, 1000 execs, sync 512, 4096 insns, all arch flavors, all
    oracles. *)
val default_config : config

type summary = {
  s_programs : int;
  s_runs : int;  (** oracle pair-runs (two machine executions each) *)
  s_stops : (string * int) list;  (** reference-run stop histogram *)
  s_divergences : Oracle.divergence list;
}

(** The oracles [config] selects (all when the filter is empty); raises
    [Invalid_argument] naming the known oracles on an unknown name. *)
val selected_oracles :
  config ->
  (string
  * (cfg:Oracle.cfg ->
    Progen.t ->
    Oracle.divergence option * Embsan_emu.Machine.stop))
  list

val stop_class : Embsan_emu.Machine.stop -> string
val run : config -> summary
val pp_summary : Format.formatter -> summary -> unit
