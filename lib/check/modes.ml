(* Mode-agreement oracle: the same firmware, the same syscall sequence,
   one run under EmbSan-C (compile-time trap callouts) and one under
   EmbSan-D (translation-time probes + allocator interception), must
   produce the same set of unique sanitizer reports.

   This is the differential check for the plugin pipeline: both backends
   construct typed Sanitizer events feeding the same compiled dispatch
   plans, so a bug in either backend's event construction (wrong pc
   attribution, missed interception, shadow drift) surfaces as a report
   set that only one mode sees.

   The firmware is a fixed MiniC tiny kernel compiled twice per
   architecture (Trap_callout for C, Plain for D); the per-program
   syscall sequence is derived from the generator seed.  Both instances
   are booted once and snapshot-restored per program, so a campaign costs
   one boot pair per arch. *)

open Embsan_isa
open Embsan_emu
open Embsan_core
open Embsan_minic
open Embsan_snap

let kernel_src =
  {|
barr heap_pool[4096];
var heap_next = 0;
barr scratch[64];

fun kmalloc(size) {
  var p = &heap_pool + heap_next;
  heap_next = heap_next + ((size + 7) & ~7);
  san_alloc(p, size);
  return p;
}

fun kfree(p) {
  san_free(p, 0);
  return 0;
}

fun sys_oob(n) {
  var p = kmalloc(16);
  store8(p + n, 0x41);      // n > 15: out of bounds
  kfree(p);
  return 0;
}

fun sys_uaf(n) {
  var p = kmalloc(24);
  kfree(p);
  if (n & 1) { return load8(p + 2); }
  return 0;
}

fun sys_df(n) {
  var p = kmalloc(8);
  kfree(p);
  if (n & 1) { kfree(p); }
  return 0;
}

fun sys_store(n) {
  store32(&scratch + (n & 60), n);
  return load32(&scratch + (n & 60));
}

fun kmain() {
  san_poison(&heap_pool, 4096);
  store32(0xF0000228, 1);   // ready doorbell
  while (1) {
    if (load32(0xF0000200)) {
      var nr = load32(0xF0000204);
      var a = load32(0xF0000208);
      var ret = 0;
      if (nr == 1) { ret = sys_oob(a); }
      if (nr == 2) { ret = sys_uaf(a); }
      if (nr == 3) { ret = sys_df(a); }
      if (nr == 4) { ret = sys_store(a); }
      store32(0xF0000220, ret);
      store32(0xF0000224, 1);
    }
  }
}
|}

(* One booted instance of the kernel under one instrumentation mode. *)
type side = {
  v_rt : Runtime.t;
  v_machine : Machine.t;
  v_snap : Snap.t; (* post-boot checkpoint, restored per program *)
}

type pair = { p_c : side; p_d : side }

let boot_budget = 5_000_000

let make_side ~arch ~mode =
  let fw_mode =
    match mode with
    | Runtime.C -> Codegen.Trap_callout
    | Runtime.D -> Codegen.Plain
  in
  let img =
    Driver.compile_string
      ~cfg:{ Driver.default_config with mode = fw_mode; arch }
      ~name:"mode_agreement_kernel" kernel_src
  in
  let firmware =
    match mode with
    | Runtime.C -> Embsan.Instrumented img
    | Runtime.D -> Embsan.Source (img, Prober.no_hints)
  in
  let session = Embsan.prepare ~sanitizers:Embsan.kasan_only ~firmware () in
  let machine = Embsan.make_machine ~harts:1 session in
  let rt = Embsan.attach session machine in
  (match Machine.run_until_ready machine ~max_insns:boot_budget with
  | None -> ()
  | Some s ->
      failwith
        (Fmt.str "mode-agreement: %s boot failed: %a" (Runtime.mode_name mode)
           Machine.pp_stop s));
  { v_rt = rt; v_machine = machine; v_snap = Snap.capture ~runtime:rt machine }

(* The boot pair is memoized per architecture: programs only differ in
   the syscall sequence, which runs from the snapshot. *)
let pairs : (Arch.t, pair) Hashtbl.t = Hashtbl.create 4

let pair_for arch =
  match Hashtbl.find_opt pairs arch with
  | Some p -> p
  | None ->
      let p =
        { p_c = make_side ~arch ~mode:Runtime.C;
          p_d = make_side ~arch ~mode:Runtime.D }
      in
      Hashtbl.add pairs arch p;
      p

(* Syscall sequence derived from the program seed (xorshift): 3..8 calls
   over the four syscalls with small arguments, mixing benign and buggy. *)
let calls_of_seed seed =
  let s = ref (if seed = 0 then 0x9E3779B9 else seed land 0x3FFF_FFFF) in
  let next () =
    let x = !s in
    let x = x lxor (x lsl 13) land 0x3FFF_FFFF in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0x3FFF_FFFF in
    s := x;
    x
  in
  let n = 3 + (next () mod 6) in
  List.init n (fun _ ->
      let nr = 1 + (next () mod 4) in
      let arg = next () mod 32 in
      (nr, arg))

let run_side side calls =
  ignore (Snap.restore side.v_snap);
  let m = side.v_machine in
  let stop = ref None in
  List.iter
    (fun (nr, arg) ->
      if !stop = None then begin
        Devices.mailbox_push m.mailbox ~nr ~args:[| arg |];
        match Machine.run_until_mailbox_idle m ~max_insns:200_000 with
        | None -> ()
        | Some s -> stop := Some s
      end)
    calls;
  let keys =
    List.sort_uniq compare
      (List.map Report.dedup_key (Runtime.reports side.v_rt))
  in
  (keys, !stop)

let pp_calls fmt calls =
  Fmt.pf fmt "@[<v>syscall sequence:@,%a@]"
    Fmt.(list ~sep:cut (fun fmt (nr, arg) -> Fmt.pf fmt "  sys %d(%d)" nr arg))
    calls

(** The sixth oracle: same program under both instrumentation modes. *)
let oracle ~(cfg : Oracle.cfg) (p : Progen.t) :
    Oracle.divergence option * Machine.stop =
  ignore cfg;
  let pair = pair_for p.Progen.p_arch in
  let calls = calls_of_seed p.Progen.p_seed in
  let c_keys, c_stop = run_side pair.p_c calls in
  let d_keys, d_stop = run_side pair.p_d calls in
  let stop_of = function Some s -> s | None -> Machine.Halted 0 in
  let divergence =
    if c_keys = d_keys then None
    else
      Some
        {
          Oracle.d_oracle = "mode-agreement";
          d_arch = p.Progen.p_arch;
          d_seed = p.Progen.p_seed;
          d_sync = 0;
          d_diff =
            [
              Fmt.str "EmbSan-C reports: [%s]" (String.concat "; " c_keys);
              Fmt.str "EmbSan-D reports: [%s]" (String.concat "; " d_keys);
              Fmt.str "EmbSan-C stop: %a" Machine.pp_stop (stop_of c_stop);
              Fmt.str "EmbSan-D stop: %a" Machine.pp_stop (stop_of d_stop);
            ];
          d_listing = Fmt.str "%a" pp_calls calls;
        }
  in
  (divergence, stop_of c_stop)
