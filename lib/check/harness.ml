(* Campaign driver: generate seeded programs per arch flavor, push each
   through every oracle, and summarize.  Fully deterministic -- the
   campaign seed derives every program seed, so any reported divergence is
   reproducible from (arch, seed) alone. *)

open Embsan_isa
open Embsan_emu

type config = {
  seed : int;
  execs : int; (* programs per arch flavor *)
  sync : int;
  max_insns : int;
  archs : Arch.t list;
  max_divergences : int; (* stop collecting after this many *)
  oracles : string list; (* oracle-name filter; [] = all *)
}

let default_config =
  {
    seed = 1;
    execs = 1000;
    sync = 512;
    max_insns = 4096;
    archs = Arch.all;
    max_divergences = 5;
    oracles = [];
  }

(* The engine oracles plus the cross-backend mode-agreement check. *)
let all_oracles = Oracle.all @ [ ("mode-agreement", Modes.oracle) ]

(** The oracle list [config] selects; raises on an unknown name. *)
let selected_oracles config =
  match config.oracles with
  | [] -> all_oracles
  | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_oracles with
          | Some o -> (n, o)
          | None ->
              invalid_arg
                (Printf.sprintf "unknown oracle %S (known: %s)" n
                   (String.concat ", " (List.map fst all_oracles))))
        names

type summary = {
  s_programs : int;
  s_runs : int; (* oracle pair-runs (2 machine executions each) *)
  s_stops : (string * int) list; (* reference-run stop histogram *)
  s_divergences : Oracle.divergence list;
}

let stop_class : Machine.stop -> string = function
  | Halted _ -> "halted"
  | Fault _ -> "fault"
  | Unhandled_trap _ -> "unhandled-trap"
  | Decode_fault _ -> "decode-fault"
  | Budget_exhausted -> "budget-exhausted"
  | Deadlock -> "deadlock"

let program_seed config ~arch ~index =
  (* splitmix-flavored mixing keeps per-program seeds spread out while
     staying a pure function of the campaign seed *)
  let h = config.seed + (index * 0x9E37_79B9) + (Arch.to_byte arch * 0x85EB_CA6B) in
  let h = h lxor (h lsr 15) in
  (h * 0x2C1B_3C6D) land 0x3FFF_FFFF

let run config =
  let cfg = { Oracle.sync = config.sync; max_insns = config.max_insns } in
  let oracles = selected_oracles config in
  (* one histogram entry per program, from the first selected oracle's
     reference run *)
  let histo_oracle = match oracles with (n, _) :: _ -> n | [] -> "" in
  let stops = Hashtbl.create 8 in
  let bump cls = Hashtbl.replace stops cls (1 + Option.value ~default:0 (Hashtbl.find_opt stops cls)) in
  let programs = ref 0 and runs = ref 0 in
  let divergences = ref [] and n_div = ref 0 in
  let capped () = !n_div >= config.max_divergences in
  List.iter
    (fun arch ->
      for index = 0 to config.execs - 1 do
        if not (capped ()) then begin
          let p = Progen.generate ~arch ~seed:(program_seed config ~arch ~index) in
          incr programs;
          List.iter
            (fun (name, oracle) ->
              if not (capped ()) then begin
                let d, stop = oracle ~cfg p in
                incr runs;
                if name = histo_oracle then bump (stop_class stop);
                match d with
                | None -> ()
                | Some d ->
                    divergences := d :: !divergences;
                    incr n_div
              end)
            oracles
        end
      done)
    config.archs;
  {
    s_programs = !programs;
    s_runs = !runs;
    s_stops =
      List.sort (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) stops []);
    s_divergences = List.rev !divergences;
  }

let pp_summary fmt s =
  Fmt.pf fmt "@[<v>differential check: %d programs, %d oracle pair-runs@ stops: %a@ %a@]"
    s.s_programs s.s_runs
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string int))
    s.s_stops
    (fun fmt -> function
      | [] -> Fmt.pf fmt "no divergences"
      | ds ->
          Fmt.pf fmt "%d DIVERGENCES:@ %a" (List.length ds)
            Fmt.(list ~sep:(any "@ @ ") Oracle.pp_divergence)
            ds)
    s.s_divergences
