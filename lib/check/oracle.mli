(** Metamorphic oracles over the dual execution engines: each runs one
    generated program on a pair of machines that must stay architecturally
    indistinguishable, compared at configurable sync points, reporting a
    minimized state diff on first divergence. *)

type divergence = {
  d_oracle : string;
  d_arch : Embsan_isa.Arch.t;
  d_seed : int;  (** generator seed — regenerates the exact program *)
  d_sync : int;  (** index of the first diverging sync point *)
  d_diff : string list;  (** minimized field-by-field state diff *)
  d_listing : string;  (** disassembly of the offending program *)
}

val pp_divergence : Format.formatter -> divergence -> unit

type cfg = {
  sync : int;  (** retired instructions between state comparisons *)
  max_insns : int;  (** total instruction budget per run *)
}

val default_cfg : cfg

(** Build the standard oracle machine for a generated program (shared by
    {!module:Harness} and the directed tests). *)
val machine_of : ?harts:int -> Progen.t -> Embsan_emu.Machine.t

(** Attach inert subscribers to all four probe kinds. *)
val no_op_probes : Embsan_emu.Machine.t -> unit

(** Each oracle returns the first divergence (if any) and the reference
    machine's final stop. *)

val fast_vs_baseline :
  cfg:cfg -> Progen.t -> divergence option * Embsan_emu.Machine.stop

val probe_transparency :
  cfg:cfg -> Progen.t -> divergence option * Embsan_emu.Machine.stop

val flush_anytime :
  cfg:cfg -> Progen.t -> divergence option * Embsan_emu.Machine.stop

(** Alternately subscribe and clear probes between sync points: site-table
    patches must be visible to already-translated code immediately and
    leak nothing into guest state. *)
val subscription_churn :
  cfg:cfg -> Progen.t -> divergence option * Embsan_emu.Machine.stop

(** Seeded random toggling of every run-time instrumentation knob (probe
    subscriptions, dirty tracking, cmplog, superblock formation) between
    sync points.  Also pins the retranslation-free property: a non-zero
    [flushes_invalidate] count after the run is reported as a divergence
    (at sync point -1) even when guest state never split. *)
val toggle_storm :
  cfg:cfg -> Progen.t -> divergence option * Embsan_emu.Machine.stop

(** A two-hart machine driven by a fuzzer-controlled scheduler
    ({!Embsan_sched.Sched}) armed with identical draw streams, [Fast] vs
    [Baseline]: any fuzzer-chosen schedule must replay the same
    interleaving on both engines.  Pins the engine-invariance contract
    that makes schedule seeds meaningful corpus entries. *)
val sched_transparency :
  cfg:cfg -> Progen.t -> divergence option * Embsan_emu.Machine.stop

(** A single-hart machine with the model-free rehosting layer
    ({!Embsan_rehost.Rehost}) armed on both engines with identical draw
    streams: memoized MMIO responses and fuzzer-scheduled interrupt
    injections are pure functions of (pc, addr) sites and [total_insns],
    both engine-invariant, so [Fast] and [Baseline] must stay in
    lockstep.  Pins the contract that makes rehost seeds meaningful
    corpus entries. *)
val rehost_transparency :
  cfg:cfg -> Progen.t -> divergence option * Embsan_emu.Machine.stop

(** Between sync points the variant machine is checkpointed, run for a
    throwaway chunk and reverted with [Snap.restore]; the revert must be
    architecturally invisible.  Runs all four engine/probe configurations
    (Fast/Baseline x probed/unprobed) per program. *)
val restore_transparency :
  cfg:cfg -> Progen.t -> divergence option * Embsan_emu.Machine.stop

(** All oracles, with their report names. *)
val all :
  (string * (cfg:cfg -> Progen.t -> divergence option * Embsan_emu.Machine.stop))
  list
