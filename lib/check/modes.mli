(** Mode-agreement oracle: the same MiniC firmware driven through the
    same syscall sequence under EmbSan-C (compile-time callouts) and
    EmbSan-D (translation-time probes) must produce the same set of
    unique sanitizer reports.  Differential check for the plugin event
    pipeline — both backends feed the same compiled dispatch plans. *)

val oracle :
  cfg:Oracle.cfg ->
  Progen.t ->
  Oracle.divergence option * Embsan_emu.Machine.stop
