(** Seeded random EVA-32 program generator for the differential oracles:
    decodable-by-construction instruction streams biased toward loads,
    stores and branches around the RAM boundaries, device space and the
    null page.  Stores never target the code region (self-modifying code
    without an explicit [flush_tcg] is out of contract, so it would be a
    false-positive divergence). *)

(** RAM geometry every generated program assumes (the oracles create their
    machines with exactly this window). *)
val ram_base : int

val ram_size : int

(** Hypercall number the oracles install a deterministic handler for. *)
val handled_trap : int

type t = {
  p_arch : Embsan_isa.Arch.t;
  p_seed : int;
  p_ram_base : int;
  p_ram_size : int;
  p_image : Embsan_isa.Image.t;
  p_insns : (int * Embsan_isa.Insn.t) list;  (** address, instruction *)
}

(** Deterministic: same [arch] and [seed] give the same program. *)
val generate : arch:Embsan_isa.Arch.t -> seed:int -> t

(** Disassembly listing for divergence reports. *)
val listing : t -> string
