(* Seeded random program generator for the differential oracles.

   Programs are decodable by construction (built as [Insn.t] values and
   encoded with the arch flavor's codec, never as raw bytes) and biased
   toward the places the two engines' fast/slow paths split: loads and
   stores around the RAM limit, device space and the null page, tight
   branch loops (block chaining), calls/returns (probe dispatch), AMOs and
   hypercalls.

   One hard restriction keeps the oracles sound: stores never target the
   code region.  Self-modifying code without an explicit [flush_tcg] is
   out of contract for the engine (DESIGN.md), so a random store into the
   instruction stream would be a false-positive divergence, not a bug.
   Store base registers are therefore drawn only from the pointer
   registers seeded in the prologue (data / boundary / device / null-page
   pointers, all disjoint from the code region), and ALU results are never
   written to those pointer registers. *)

open Embsan_isa
module Rng = Embsan_fuzz.Rng

(* Small RAM makes limit-straddling accesses reachable with byte-sized
   immediates and keeps RAM digests cheap. *)
let ram_base = 0x0001_0000
let ram_size = 0x8000

(* Hypercall number the oracles install a deterministic handler for;
   anything else traps to an [Unhandled_trap] stop. *)
let handled_trap = 7

type t = {
  p_arch : Arch.t;
  p_seed : int;
  p_ram_base : int;
  p_ram_size : int;
  p_image : Image.t;
  p_insns : (int * Insn.t) list;
}

(* Body instructions whose control-flow targets are program indices until
   the whole program length is known. *)
type spec =
  | I of Insn.t
  | B of Insn.cond * Reg.t * Reg.t * int (* target index *)
  | J of Reg.t * int (* jal, target index *)

(* Pointer registers, seeded once in the prologue and never clobbered. *)
let data_ptr = Reg.t0
let bound_ptr = Reg.t1
let dev_ptr = Reg.t2
let wild_ptr = Reg.t3
let code_ptr = Reg.t4

(* Destination pool for ALU results and loads: value registers only. *)
let rd_pool =
  [| Reg.zero; Reg.a0; Reg.a1; Reg.a2; Reg.a3; Reg.s0; Reg.s1; Reg.s2; Reg.s3 |]

let rs_pool =
  [| Reg.zero; Reg.a0; Reg.a1; Reg.a2; Reg.a3; Reg.s0; Reg.s1; Reg.s2; Reg.s3; Reg.ra |]

let alu_ops =
  [|
    Insn.Add; Sub; Mul; Divu; Remu; And; Or; Xor; Shl; Shru; Shrs; Slt; Sltu;
    Seq; Sne;
  |]

let conds = [| Insn.Eq; Ne; Lt; Ltu; Ge; Geu |]
let widths = [| Insn.W8; W16; W32 |]

let entry = ram_base
let limit = ram_base + ram_size
let data_base = ram_base + (ram_size / 2)

let device_bases =
  (* power is rare on purpose: a write there halts the program *)
  [
    (Embsan_emu.Devices.uart_base, 30);
    (Embsan_emu.Devices.timer_base, 25);
    (Embsan_emu.Devices.rng_base, 20);
    (Embsan_emu.Devices.mailbox_base, 20);
    (Embsan_emu.Devices.power_base, 5);
  ]

let weighted rng choices =
  let total = List.fold_left (fun a (_, w) -> a + w) 0 choices in
  let roll = Rng.below rng total in
  let rec go acc = function
    | [ (c, _) ] -> c
    | (c, w) :: rest -> if roll < acc + w then c else go (acc + w) rest
    | [] -> assert false
  in
  go 0 choices

(* Immediate for a value computation: small, interesting, or wild. *)
let value_imm rng =
  if Rng.chance rng ~percent:40 then Rng.range rng (-64) 64
  else if Rng.chance rng ~percent:50 then Rng.interesting rng
  else Rng.below rng 0x1_0000

let load_store_base rng ~store =
  if store then
    weighted rng
      [ (data_ptr, 55); (bound_ptr, 25); (dev_ptr, 15); (wild_ptr, 5) ]
  else
    weighted rng
      [
        (data_ptr, 40);
        (bound_ptr, 20);
        (dev_ptr, 20);
        (wild_ptr, 10);
        (code_ptr, 10);
      ]

(* Offsets are sized per region so data-pointer stores can never reach the
   code region while boundary-pointer accesses regularly straddle the RAM
   limit. *)
let mem_imm rng base =
  if Reg.equal base bound_ptr then Rng.range rng (-16) 16
  else if Reg.equal base dev_ptr then 4 * Rng.below rng 12
  else Rng.range rng (-16) 64

let body_insn rng ~len =
  let roll = Rng.below rng 100 in
  if roll < 22 then
    (* three-register ALU *)
    I
      (Alu
         ( Rng.pick_arr rng alu_ops,
           Rng.pick_arr rng rd_pool,
           Rng.pick_arr rng rs_pool,
           Rng.pick_arr rng rs_pool ))
  else if roll < 36 then
    I
      (Alui
         ( Rng.pick_arr rng alu_ops,
           Rng.pick_arr rng rd_pool,
           Rng.pick_arr rng rs_pool,
           value_imm rng ))
  else if roll < 42 then
    I (Li (Rng.pick_arr rng rd_pool, value_imm rng))
  else if roll < 56 then
    let base = load_store_base rng ~store:false in
    I
      (Load
         ( Rng.pick_arr rng widths,
           Rng.chance rng ~percent:50,
           Rng.pick_arr rng rd_pool,
           base,
           mem_imm rng base ))
  else if roll < 70 then
    let base = load_store_base rng ~store:true in
    I
      (Store
         (Rng.pick_arr rng widths, base, Rng.pick_arr rng rs_pool, mem_imm rng base))
  else if roll < 82 then
    B
      ( Rng.pick_arr rng conds,
        Rng.pick_arr rng rs_pool,
        Rng.pick_arr rng rs_pool,
        Rng.below rng len )
  else if roll < 88 then
    let rd = if Rng.chance rng ~percent:70 then Reg.ra else Reg.zero in
    J (rd, Rng.below rng len)
  else if roll < 91 then
    let rs1 = if Rng.chance rng ~percent:80 then code_ptr else Reg.ra in
    I (Jalr ((if Rng.chance rng ~percent:60 then Reg.ra else Reg.zero), rs1, 0))
  else if roll < 94 then
    I (Trap (if Rng.chance rng ~percent:70 then handled_trap else 99))
  else if roll < 97 then
    let base = weighted rng [ (data_ptr, 80); (bound_ptr, 20) ] in
    I
      (Amo
         ( (if Rng.chance rng ~percent:50 then Insn.Amo_add else Amo_swap),
           Rng.pick_arr rng rd_pool,
           base,
           Rng.pick_arr rng rs_pool ))
  else if roll < 99 then I (if Rng.chance rng ~percent:50 then Nop else Fence)
  else I Halt

let generate ~arch ~seed =
  let rng = Rng.create ~seed in
  let n_body = Rng.range rng 10 36 in
  let n_prologue = 9 in
  let len = n_prologue + n_body + 1 in
  let prologue =
    [
      I (Li (data_ptr, data_base));
      I (Li (bound_ptr, limit - Rng.pick rng [ 0; 1; 2; 4; 8 ]));
      I (Li (dev_ptr, weighted rng device_bases));
      I
        (Li
           ( wild_ptr,
             Rng.pick rng [ 0; 4; 0xFF8; 0x8000; 0xFFFF_FFF0; limit + 0x1000 ]
           ));
      I (Li (code_ptr, entry + (Insn.size * Rng.below rng len)));
      I (Li (Reg.a0, value_imm rng));
      I (Li (Reg.a1, value_imm rng));
      I (Li (Reg.s0, value_imm rng));
      I (Li (Reg.s1, value_imm rng));
    ]
  in
  assert (List.length prologue = n_prologue);
  let body = List.init n_body (fun _ -> body_insn rng ~len) in
  let specs = prologue @ body @ [ I Halt ] in
  let insns =
    List.mapi
      (fun i spec ->
        let pc = entry + (i * Insn.size) in
        match spec with
        | I insn -> (pc, insn)
        | B (c, r1, r2, tgt) -> (pc, Insn.Branch (c, r1, r2, (tgt - i) * Insn.size))
        | J (rd, tgt) -> (pc, Insn.Jal (rd, (tgt - i) * Insn.size)))
      specs
  in
  let buf = Buffer.create (List.length insns * Insn.size) in
  List.iter (fun (_, insn) -> Buffer.add_string buf (Codec.encode arch insn)) insns;
  let data = Buffer.contents buf in
  let image : Image.t =
    {
      arch;
      entry;
      sections = [ { sec_name = ".text"; base = entry; data } ];
      symbols =
        [ { name = "main"; addr = entry; size = String.length data; kind = Func } ];
    }
  in
  {
    p_arch = arch;
    p_seed = seed;
    p_ram_base = ram_base;
    p_ram_size = ram_size;
    p_image = image;
    p_insns = insns;
  }

let listing t =
  String.concat "\n"
    (List.map
       (fun (pc, insn) -> Printf.sprintf "  %08x  %s" pc (Disasm.to_string insn))
       t.p_insns)
