(** Architectural-state snapshots and minimized diffs for the differential
    harness: exactly the state the guest can observe (per-hart registers,
    pc, retired counts, machine totals, RAM digest, console, stop record)
    and none of the engine-private state the two engines are allowed to
    disagree on. *)

type hart = {
  h_id : int;
  h_pc : int;
  h_regs : int array;
  h_insns : int;
  h_status : string;
}

type t = {
  harts : hart array;
  total_insns : int;
  cost : int;
  ram_digest : string;
  console : string;
  stop : string option;  (** rendered stop; [None] while still running *)
}

val stop_string : Embsan_emu.Machine.stop -> string

(** Incremental RAM-digest state: caches per-page digests and rehashes
    only pages written since the previous capture (tracked on the dirty
    bitmap's digest channel).  The digest is page-structured so the
    incremental and full paths produce identical values. *)
type digester

(** Create a digester for [m]; enables dirty-page tracking on the
    machine. *)
val digester : Embsan_emu.Machine.t -> digester

(** Capture the architectural state of [m]; pass [?stop] once the machine
    has reported a definitive stop so it is compared too, and [?digester]
    to compute the RAM digest incrementally from the dirty-page bitmap. *)
val capture :
  ?digester:digester -> ?stop:Embsan_emu.Machine.stop -> Embsan_emu.Machine.t -> t

(** Minimized field-by-field diff, one line per differing observable;
    [[]] means architecturally identical. *)
val diff : t -> t -> string list

val equal : t -> t -> bool

(** First differing RAM words of two live machines (used to enrich a
    digest-mismatch diff line). *)
val ram_delta :
  ?max_entries:int -> Embsan_emu.Machine.t -> Embsan_emu.Machine.t -> string list
