(* Metamorphic oracles over the dual execution engines.

   Every oracle runs one generated program on a pair of machines that must
   be architecturally indistinguishable, in lockstep chunks of [cfg.sync]
   retired instructions, comparing {!Snapshot}s at every sync point:

   - fast-vs-baseline: same program on [Machine.Fast] and
     [Machine.Baseline].  Single-hart only -- the engines' scheduling
     granularity (16 chained blocks vs 1 block per hart turn) differs by
     design, so multi-hart interleavings are not comparable;
   - probe-transparency: the fast engine with no-op probes on all four
     probe kinds vs no probes.  Probes steer translated code through the
     event-building probed paths, none of which may leak into guest state
     (paper section 3.3's transparency claim);
   - flush-anytime: random [flush_tcg] between sync points must be
     invisible;
   - subscription-churn: alternately subscribing and clearing probes
     between sync points patches the shared site table while the guest is
     in flight -- cached blocks and chain links survive, but every
     already-translated site must see the new subscriber list immediately;
   - toggle-storm: seeded random toggling of every run-time
     instrumentation knob (probe subscriptions, dirty tracking, cmplog,
     superblock formation) between sync points, against an unperturbed
     fast machine.  Doubles as the retranslation-free pin: after the run,
     [flushes_invalidate] must be exactly 0 -- no toggle is allowed to
     flush the translation cache;
   - sched-transparency: a two-hart machine driven by an armed
     fuzzer-controlled scheduler ({!Embsan_sched.Sched}) with identical
     draw streams on [Machine.Fast] and [Machine.Baseline].  Scheduler
     decisions are a pure function of the draw stream and engine-invariant
     architectural progress, so any fuzzer-chosen schedule must replay
     the same interleaving on both engines — the property that makes
     schedule seeds meaningful corpus entries;
   - rehost-transparency: a single-hart machine with the model-free
     rehosting layer ({!Embsan_rehost.Rehost}) armed on [Machine.Fast]
     and [Machine.Baseline] with identical draw streams: memoized MMIO
     responses are a pure function of (pc, addr) sites and interrupt
     injections of [total_insns], both engine-invariant, so the engines
     must stay in lockstep with the layer armed — the property that
     makes rehost seeds meaningful corpus entries;
   - restore-transparency: between sync points [mb] is checkpointed, run
     for a throwaway chunk (scribbling on RAM, registers, devices and
     counters), then reverted by [Snap.restore] — the revert must be
     architecturally invisible.  Exercised under all four engine/probe
     configurations (Fast/Baseline x probed/unprobed), since restore
     interacts with the translation cache and the probe site table.

   Chunked [Machine.run] is a sound sync mechanism because both engines
   stop at the first block boundary past the deadline and block
   boundaries depend only on guest code, never on engine or probe
   state. *)

open Embsan_isa
open Embsan_emu
module Rng = Embsan_fuzz.Rng

type divergence = {
  d_oracle : string;
  d_arch : Arch.t;
  d_seed : int;
  d_sync : int;
  d_diff : string list;
  d_listing : string;
}

let pp_divergence fmt d =
  Fmt.pf fmt "@[<v>divergence in oracle %S (arch %s, seed %d, sync point %d)%a@ program:@ %a@]"
    d.d_oracle (Arch.to_string d.d_arch) d.d_seed d.d_sync
    Fmt.(list ~sep:(any "") (any "@ - " ++ string))
    d.d_diff Fmt.lines d.d_listing

type cfg = { sync : int; max_insns : int }

let default_cfg = { sync = 512; max_insns = 4096 }

(* Both machines of a pair are created identically: same RAM window as the
   generator assumed, same device RNG seed, and a deterministic handler
   for the one hypercall number generated programs may use. *)
let machine_of ?(harts = 1) (p : Progen.t) =
  let m =
    Machine.create ~harts ~ram_base:p.p_ram_base ~ram_size:p.p_ram_size
      ~seed:(p.p_seed lor 1) ~arch:p.p_arch ()
  in
  Machine.load_image m p.p_image;
  Machine.boot m;
  Machine.set_trap_handler m Progen.handled_trap (fun _ cpu ->
      Cpu.set cpu Reg.a0 (Cpu.get cpu Reg.a0 lxor 0x5A5A));
  m

let no_op_probes (m : Machine.t) =
  Probe.on_mem m.probes (fun _ -> ());
  Probe.on_call m.probes (fun _ -> ());
  Probe.on_ret m.probes (fun _ -> ());
  Probe.on_block m.probes (fun _ -> ())

(* Run [ma] (reference) and [mb] (variant) in lockstep; [between] perturbs
   [mb] between sync points (metamorphic knob).  Returns the first
   divergence, plus the reference machine's final stop for statistics. *)
let lockstep ~name ~cfg (p : Progen.t) ma mb ~between =
  let diverged sync_idx diff =
    let diff =
      (* a digest mismatch alone doesn't localize anything; name the words *)
      if List.exists (fun l -> l = "ram: contents differ (digest)") diff then
        diff @ Snapshot.ram_delta ma mb
      else diff
    in
    {
      d_oracle = name;
      d_arch = p.p_arch;
      d_seed = p.p_seed;
      d_sync = sync_idx;
      d_diff = diff;
      d_listing = Progen.listing p;
    }
  in
  let rec go sync_idx remaining =
    let chunk = min cfg.sync remaining in
    let sa = Machine.run ma ~max_insns:chunk in
    let sb = Machine.run mb ~max_insns:chunk in
    let terminal s = s <> Machine.Budget_exhausted in
    let finished = terminal sa || terminal sb || remaining - chunk <= 0 in
    let stop_of s = if terminal s || finished then Some s else None in
    let snap_a = Snapshot.capture ?stop:(stop_of sa) ma in
    let snap_b = Snapshot.capture ?stop:(stop_of sb) mb in
    match Snapshot.diff snap_a snap_b with
    | [] ->
        if finished then (None, sa)
        else begin
          between mb;
          go (sync_idx + 1) (remaining - chunk)
        end
    | diff -> (Some (diverged sync_idx diff), sa)
  in
  go 0 cfg.max_insns

let fast_vs_baseline ~cfg (p : Progen.t) =
  let ma = machine_of p in
  let mb = machine_of p in
  Machine.set_engine mb Machine.Baseline;
  lockstep ~name:"fast-vs-baseline" ~cfg p ma mb ~between:(fun _ -> ())

let probe_transparency ~cfg (p : Progen.t) =
  let ma = machine_of p in
  let mb = machine_of p in
  no_op_probes mb;
  lockstep ~name:"probe-transparency" ~cfg p ma mb ~between:(fun _ -> ())

let flush_anytime ~cfg (p : Progen.t) =
  let rng = Rng.create ~seed:(p.p_seed + 0x9E37) in
  let ma = machine_of p in
  let mb = machine_of p in
  lockstep ~name:"flush-anytime" ~cfg p ma mb ~between:(fun mb ->
      if Rng.chance rng ~percent:60 then Machine.flush_tcg mb)

let subscription_churn ~cfg (p : Progen.t) =
  let ma = machine_of p in
  let mb = machine_of p in
  let attached = ref false in
  lockstep ~name:"subscription-churn" ~cfg p ma mb ~between:(fun mb ->
      if !attached then begin
        Probe.clear mb.probes;
        attached := false
      end
      else begin
        no_op_probes mb;
        attached := true
      end)

(* Every run-time instrumentation knob, toggled at random between sync
   points, against an untouched fast machine.  Two claims at once: the
   toggles are architecturally invisible, and none of them costs a
   translation-cache flush (the retranslation-free property this engine
   is built around). *)
let toggle_storm ~cfg (p : Progen.t) =
  let rng = Rng.create ~seed:(p.p_seed + 0x7066) in
  let ma = machine_of p in
  let mb = machine_of p in
  (* low threshold so superblock formation actually happens in-run *)
  Machine.set_super_threshold mb 4;
  let subs = ref [] in
  let storm mb =
    for _ = 1 to Rng.range rng 1 4 do
      match Rng.below rng 5 with
      | 0 -> Machine.set_dirty_tracking mb (Rng.chance rng ~percent:50)
      | 1 -> Machine.set_cmplog mb (Rng.chance rng ~percent:50)
      | 2 -> Machine.set_superblocks mb (Rng.chance rng ~percent:50)
      | 3 ->
          let s =
            match Rng.below rng 4 with
            | 0 -> Probe.subscribe_mem mb.Machine.probes (fun _ -> ())
            | 1 -> Probe.subscribe_call mb.Machine.probes (fun _ -> ())
            | 2 -> Probe.subscribe_ret mb.Machine.probes (fun _ -> ())
            | _ -> Probe.subscribe_block mb.Machine.probes (fun _ -> ())
          in
          subs := s :: !subs
      | _ -> (
          match !subs with
          | [] -> ()
          | s :: rest ->
              Probe.unsubscribe s;
              subs := rest)
    done
  in
  let res, stop = lockstep ~name:"toggle-storm" ~cfg p ma mb ~between:storm in
  match res with
  | Some _ -> (res, stop)
  | None ->
      let fi = mb.Machine.stats.Engine_stats.flushes_invalidate in
      if fi = 0 then (None, stop)
      else
        ( Some
            {
              d_oracle = "toggle-storm";
              d_arch = p.p_arch;
              d_seed = p.p_seed;
              d_sync = -1;
              d_diff =
                [
                  Printf.sprintf
                    "instrumentation toggles flushed the translation cache %d \
                     times (expected 0)"
                    fi;
                ];
              d_listing = Progen.listing p;
            },
          stop )

(* Two harts running the generated program under a fuzzer-chosen schedule,
   Fast vs Baseline.  Without an external scheduler the engines'
   round-robin granularity differs by design (16 chained blocks vs 1
   block per turn) and multi-hart state is not comparable; with one
   armed, every turn boundary is a pure function of the draw stream and
   retired-instruction counts, so the interleavings must coincide
   exactly.  Each machine gets its own [Sched.t] and its own [Rng] with
   the same seed: identical streams, independent state. *)
let sched_transparency ~cfg (p : Progen.t) =
  let machine_with_sched engine =
    let m = machine_of ~harts:2 p in
    (* hart 1: same entry, stack window disjoint from hart 0's *)
    Machine.start_hart m 1 ~pc:m.Machine.entry
      ~sp:(Ram.limit m.Machine.ram - 16 - 0x8000);
    Machine.set_engine m engine;
    let ctl = Embsan_sched.Sched.create m in
    let r = Rng.create ~seed:(p.p_seed + 0x5C4ED) in
    Embsan_sched.Sched.arm ctl ~draw:(fun n -> Rng.below r n);
    m
  in
  let ma = machine_with_sched Machine.Fast in
  let mb = machine_with_sched Machine.Baseline in
  lockstep ~name:"sched-transparency" ~cfg p ma mb ~between:(fun _ -> ())

(* A single-hart machine with the model-free rehosting layer armed on
   both engines.  Every access outside the null page that hits neither
   RAM nor a modeled device is served from a seeded memo stream, and an
   injection plan (same-seeded draw streams, independent state) vectors
   the hart to the program entry at fuzzer-chosen retirement points.
   Generated programs register no interrupt stub and never signal
   end-of-interrupt, so the first injection latches [in_irq] — one
   mid-program vectoring per run is still enough to pin injection-point
   invariance on top of MMIO-response invariance. *)
let rehost_transparency ~cfg (p : Progen.t) =
  let machine_with_rehost engine =
    let m = machine_of p in
    Machine.set_engine m engine;
    (* stand-in for a guest-registered stub: vector to the program entry *)
    m.Machine.irq_entry <- m.Machine.entry;
    let ctl = Embsan_rehost.Rehost.create m in
    let mr = Rng.create ~seed:(p.p_seed + 0x4E05) in
    let ir = Rng.create ~seed:(p.p_seed + 0x14C) in
    Embsan_rehost.Rehost.arm ctl
      ~covers:(fun addr -> addr >= 0x1000) (* keep null-page faults *)
      ~irq:(fun n -> Rng.below ir n)
      ~mmio:(fun () -> Rng.next mr);
    m
  in
  let ma = machine_with_rehost Machine.Fast in
  let mb = machine_with_rehost Machine.Baseline in
  lockstep ~name:"rehost-transparency" ~cfg p ma mb ~between:(fun _ -> ())

let restore_transparency ~cfg (p : Progen.t) =
  let rng = Rng.create ~seed:(p.p_seed + 0x51AB) in
  let run_variant (engine, probed) =
    let ma = machine_of p in
    let mb = machine_of p in
    Machine.set_engine ma engine;
    Machine.set_engine mb engine;
    if probed then begin
      no_op_probes ma;
      no_op_probes mb
    end;
    lockstep ~name:"restore-transparency" ~cfg p ma mb ~between:(fun mb ->
        (* checkpoint, run a throwaway chunk so guest RAM, registers,
           device state and counters all move, then revert; the next sync
           comparison sees whether anything of the detour survived *)
        let s = Embsan_snap.Snap.capture mb in
        let chunk = Rng.range rng 1 cfg.sync in
        ignore (Machine.run mb ~max_insns:chunk : Machine.stop);
        ignore (Embsan_snap.Snap.restore s : int))
  in
  let rec go = function
    | [] -> assert false
    | [ v ] -> run_variant v
    | v :: rest -> (
        match run_variant v with
        | (Some _, _) as r -> r
        | None, _ -> go rest)
  in
  go
    [
      (Machine.Fast, false);
      (Machine.Fast, true);
      (Machine.Baseline, false);
      (Machine.Baseline, true);
    ]

let all =
  [
    ("fast-vs-baseline", fast_vs_baseline);
    ("probe-transparency", probe_transparency);
    ("flush-anytime", flush_anytime);
    ("subscription-churn", subscription_churn);
    ("toggle-storm", toggle_storm);
    ("sched-transparency", sched_transparency);
    ("rehost-transparency", rehost_transparency);
    ("restore-transparency", restore_transparency);
  ]
