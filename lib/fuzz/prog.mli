(** Syscall programs: generation and mutation driven by the firmware's
    syscall descriptions (the syzlang analog). *)

open Embsan_guest

type call = { nr : int; args : int array (** length 3 *) }

type t = call list

val pp_call : Format.formatter -> call -> unit
val pp : Format.formatter -> t -> unit

(** As the (nr, args) list the replay harness consumes. *)
val to_reproducer : t -> (int * int array) list

(** Maximum calls per generated/mutated program. *)
val max_len : int

(** Draw one argument from a domain (boundary values included). *)
val gen_arg : Rng.t -> Defs.arg_domain -> int

val gen_call : Rng.t -> Defs.syscall_desc list -> call

(** Generate a fresh program of 1..[max_len] calls. *)
val gen : Rng.t -> Defs.syscall_desc list -> t

(** One mutation step: argument tweak, insert, delete, duplicate or splice
    with a corpus program.  [dict] is the cmplog operand dictionary and
    [i2s] the counterpart lookup ({!Embsan_emu.Cmplog.counterpart}):
    when an argument's current value was one side of an observed guest
    compare, the other side is substituted verbatim (AFL++'s
    input-to-state stage), else a random dictionary value stands in.  An
    empty [dict] draws nothing from the rng, so non-cmplog campaigns keep
    their exact trajectories. *)
val mutate :
  Rng.t ->
  Defs.syscall_desc list ->
  ?corpus_pick:(unit -> t option) ->
  ?dict:int array ->
  ?i2s:(int -> int option) ->
  t ->
  t
