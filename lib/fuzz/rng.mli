(** Deterministic PRNG (splitmix-style) for reproducible fuzzing. *)

type t

val create : seed:int -> t
val next : t -> int

(** Uniform in [0, n). *)
val below : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val chance : t -> percent:int -> bool

(** [split t ~shard] derives a new independent stream for shard index
    [shard] from [t]'s current state, without advancing [t].  The
    derivation is deterministic (same state and shard give the same
    stream) and collision-resistant (distinct shards give distinct
    streams, all distinct from continuing [t] itself) — the per-worker
    seeding primitive of the campaign orchestrator ([lib/orch]). *)
val split : t -> shard:int -> t

(** The raw sub-seed derivation behind {!split}, exposed for tests. *)
val split_seed : seed:int -> shard:int -> int

(** [split_stream t ~shard ~stream] derives the independent draw stream
    named [stream] for shard [shard] (e.g. the scheduler's
    ["sched"] stream), without advancing [t].  Deterministic in (state,
    shard, stream); distinct (shard, stream) pairs give distinct streams,
    all distinct from {!split}'s unnamed per-shard stream. *)
val split_stream : t -> shard:int -> stream:string -> t

(** FNV-1a tag of a stream name (the named axis of {!split_stream}),
    exposed for tests. *)
val stream_tag : string -> int
val pick : t -> 'a list -> 'a
val pick_arr : t -> 'a array -> 'a

(** A boundary constant likely to trip size checks. *)
val interesting : t -> int
