(* Coverage-triaged corpus, AFL-style: a program joins the corpus when its
   execution produced an (edge, hit-bucket) pair never seen before.  When
   schedule fuzzing is on, the schedule seed the program ran under is part
   of the entry: coverage reached only under a particular interleaving is
   replayed and mutated under that interleaving.  Likewise for the rehost
   seed (MMIO response stream + interrupt-injection plan) when the
   model-free rehosting layer is armed. *)

type entry = {
  e_prog : Prog.t;
  e_sched : int option;
  e_rehost : int option;
  e_new_pairs : int;
}

type t = {
  seen : (int * int, unit) Hashtbl.t; (* (edge index, bucket) *)
  mutable entries : entry list;
  mutable total_pairs : int;
}

let create () = { seen = Hashtbl.create 4096; entries = []; total_pairs = 0 }

(** Record an execution's coverage signature; if it contributed new
    coverage, add the program (with the schedule and rehost seeds it ran
    under) and return [true]. *)
let consider t prog ?sched ?rehost (signature : (int * int) list) =
  let fresh =
    List.filter (fun pair -> not (Hashtbl.mem t.seen pair)) signature
  in
  if fresh = [] then false
  else begin
    List.iter (fun pair -> Hashtbl.replace t.seen pair ()) fresh;
    t.total_pairs <- t.total_pairs + List.length fresh;
    t.entries <-
      {
        e_prog = prog;
        e_sched = sched;
        e_rehost = rehost;
        e_new_pairs = List.length fresh;
      }
      :: t.entries;
    true
  end

let size t = List.length t.entries
let coverage t = t.total_pairs

let pick rng t =
  match t.entries with
  | [] -> None
  | es ->
      let e = Rng.pick rng es in
      Some (e.e_prog, e.e_sched, e.e_rehost)

(** All programs, oldest first (the "merged corpus" replayed by the
    overhead experiment). *)
let programs t = List.rev_map (fun e -> e.e_prog) t.entries

(** All entries as (program, schedule seed, rehost seed), oldest first. *)
let inputs t = List.rev_map (fun e -> (e.e_prog, e.e_sched, e.e_rehost)) t.entries
