(** Coverage-guided fuzzing campaign over one firmware image, with crash
    triage against the bug registry and reproducer confirmation.  Two
    front-ends match the paper's tooling: Syzkaller mode (guest kcov
    coverage) for Linux firmware and Tardis mode (OS-agnostic
    translated-block coverage) for the RTOS and closed-source images. *)

open Embsan_guest

type config = {
  fw : Firmware_db.firmware;
  sanitizers : Embsan_core.Embsan.sanitizers;
  max_execs : int;
  seed : int;
  stop_when_all_found : bool;
  use_snapshots : bool;
      (** recover from crashes (and run confirmation replays / corpus
          cleaning) by restoring a post-boot checkpoint instead of
          rebooting; on by default — the restore-transparency oracle in
          [lib/check] pins the equivalence *)
  use_cmplog : bool;
      (** compare-operand coverage ({!Embsan_emu.Cmplog}): per-exec
          compare features join the frontier signature and the operand
          dictionary feeds mutation, which is what solves magic-value
          guards.  Off by default so existing seeded trajectories stay
          pinned. *)
  use_sched : bool;
      (** schedule fuzzing ({!Embsan_sched.Sched}): each execution runs
          under a fuzzer-chosen interleaving seeded from a dedicated
          [Rng.split_stream] stream, the seed is part of the corpus
          entry and of reproducers (mutated, minimized), and the main
          mutation stream is never touched — so trajectories with
          [use_sched = false] stay pinned.  Off by default. *)
  use_rehost : bool;
      (** model-free MMIO rehosting ({!Embsan_rehost.Rehost}): reads from
          unmapped MMIO ranges are served from a per-exec seeded stream
          behind a (pc, addr) memoization table, so firmware with no
          hand-written device model still runs.  The rehost seed rides
          the corpus entry and reproducers exactly like the schedule
          seed, from a dedicated non-advancing [Rng.split_stream] stream
          — trajectories with [use_rehost = false] stay pinned.  Off by
          default. *)
  use_irq : bool;
      (** fuzzer-scheduled interrupt injection on top of [use_rehost]:
          the per-exec rehost seed also draws an injection plan (the
          ["irq"] stream) that vectors the guest's registered interrupt
          stub at chosen retirement points.  Off by default. *)
}

val default_config : Firmware_db.firmware -> config

type found = {
  f_bug : Defs.bug;
  f_exec : int;  (** executions until first detection *)
  f_prog : Prog.t;  (** reproducer (possibly with shrunk history prefix) *)
  f_sched : int option;
      (** schedule seed the reproducer needs ([None] = round-robin
          suffices; minimization tries dropping the schedule first) *)
  f_rehost : int option;
      (** rehost seed the reproducer needs ([None] = fires without the
          rehost layer; minimization tries dropping it before the
          schedule seed) *)
  f_irq : bool;
      (** the rehost replay also injects interrupts ([repro] needs
          [--irq] alongside [--rehost-seed]) *)
  f_confirmed : bool;  (** reproduced on a fresh instance *)
}

type result = {
  r_fw : Firmware_db.firmware;
  r_found : found list;
  r_execs : int;
  r_crashes : int;
  r_corpus : int;
  r_coverage : int;
  r_insns : int;
  r_unmatched : string list;
  r_corpus_progs : Prog.t list;
      (** the merged corpus (the overhead experiment's workload) *)
}

(** The steppable per-worker fuzzing engine behind {!run}.  One engine
    owns one booted instance (machine, runtime, post-boot snapshot),
    corpus and coverage map — shared-nothing, so the campaign
    orchestrator ([lib/orch]) can drive one engine per domain.  {!run}
    is exactly [create]; [step] until [finished]; [result] — which is
    what makes a single-worker orchestrated campaign bit-identical to
    {!run} for the same seed. *)
module Engine : sig
  type t

  (** [create ?rng cfg] boots a fresh instance and returns an idle
      engine.  [rng] defaults to [Rng.create ~seed:cfg.seed]; the
      orchestrator passes [Rng.split]-derived per-shard streams. *)
  val create : ?rng:Rng.t -> config -> t

  (** Budget exhausted, or all registered bugs found (when
      [stop_when_all_found]). *)
  val finished : t -> bool

  (** One fuzzing iteration: generate or mutate a program, execute it,
      triage coverage/reports/crashes, recover from architectural
      crashes. *)
  val step : t -> unit

  (** Execute a frontier program received from another worker, under the
      schedule and rehost seeds it was productive with.  Counts as one
      execution and goes through the same corpus-admission and triage
      path as a generated program. *)
  val inject : t -> ?sched:int -> ?rehost:int -> Prog.t -> unit

  (** New corpus entries (with the schedule and rehost seeds they ran
      under and the coverage signature that admitted them) since the
      last drain, oldest first. *)
  val drain_frontier :
    t -> (Prog.t * int option * int option * (int * int) list) list

  (** Newly found (confirmed/unconfirmed) bugs since the last drain,
      oldest first. *)
  val drain_found : t -> found list

  val execs : t -> int
  val crashes : t -> int
  val corpus_size : t -> int
  val coverage : t -> int
  val insns_now : t -> int
  val unmatched : t -> string list

  (** Final result; also flushes the instruction accounting. *)
  val result : t -> result
end

val run : config -> result

(** Filter the corpus to programs that neither report nor crash, iterated
    to a fixpoint (dropping a program changes allocator state for the
    survivors).  The Figure-2 replay workload. *)
val clean_corpus :
  ?use_snapshots:bool -> Firmware_db.firmware -> Prog.t list -> Prog.t list

val pp_result : Format.formatter -> result -> unit
