(** Coverage-guided fuzzing campaign over one firmware image, with crash
    triage against the bug registry and reproducer confirmation.  Two
    front-ends match the paper's tooling: Syzkaller mode (guest kcov
    coverage) for Linux firmware and Tardis mode (OS-agnostic
    translated-block coverage) for the RTOS and closed-source images. *)

open Embsan_guest

type config = {
  fw : Firmware_db.firmware;
  sanitizers : Embsan_core.Embsan.sanitizers;
  max_execs : int;
  seed : int;
  stop_when_all_found : bool;
  use_snapshots : bool;
      (** recover from crashes (and run confirmation replays / corpus
          cleaning) by restoring a post-boot checkpoint instead of
          rebooting; on by default — the restore-transparency oracle in
          [lib/check] pins the equivalence *)
}

val default_config : Firmware_db.firmware -> config

type found = {
  f_bug : Defs.bug;
  f_exec : int;  (** executions until first detection *)
  f_prog : Prog.t;  (** reproducer (possibly with shrunk history prefix) *)
  f_confirmed : bool;  (** reproduced on a fresh instance *)
}

type result = {
  r_fw : Firmware_db.firmware;
  r_found : found list;
  r_execs : int;
  r_crashes : int;
  r_corpus : int;
  r_coverage : int;
  r_insns : int;
  r_unmatched : string list;
  r_corpus_progs : Prog.t list;
      (** the merged corpus (the overhead experiment's workload) *)
}

val run : config -> result

(** Filter the corpus to programs that neither report nor crash, iterated
    to a fixpoint (dropping a program changes allocator state for the
    survivors).  The Figure-2 replay workload. *)
val clean_corpus :
  ?use_snapshots:bool -> Firmware_db.firmware -> Prog.t list -> Prog.t list

val pp_result : Format.formatter -> result -> unit
