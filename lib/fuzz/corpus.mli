(** Coverage-triaged corpus, AFL-style: a program joins when its execution
    produced an (edge, hit-bucket) pair never seen before.  Entries carry
    the schedule seed the program ran under (when schedule fuzzing is
    on) and the rehost seed (when the model-free rehosting layer is
    armed), since coverage can depend on the interleaving and on the
    MMIO responses / injected interrupts. *)

type entry = {
  e_prog : Prog.t;
  e_sched : int option;
  e_rehost : int option;
  e_new_pairs : int;
}

type t = {
  seen : (int * int, unit) Hashtbl.t;
  mutable entries : entry list;
  mutable total_pairs : int;
}

val create : unit -> t

(** Record an execution's coverage signature; [true] iff it contributed new
    coverage (the program was added). *)
val consider : t -> Prog.t -> ?sched:int -> ?rehost:int -> (int * int) list -> bool

val size : t -> int
val coverage : t -> int
val pick : Rng.t -> t -> (Prog.t * int option * int option) option

(** All programs, oldest first (the "merged corpus"). *)
val programs : t -> Prog.t list

(** All entries as (program, schedule seed, rehost seed), oldest first. *)
val inputs : t -> (Prog.t * int option * int option) list
