(* Syscall programs: generation and mutation driven by the firmware's
   syscall descriptions (the syzlang analog). *)

open Embsan_guest

type call = { nr : int; args : int array (* length 3 *) }

type t = call list

let pp_call fmt c =
  Fmt.pf fmt "%d(%s)" c.nr
    (String.concat ", " (Array.to_list (Array.map string_of_int c.args)))

let pp fmt (p : t) = Fmt.(list ~sep:(any "; ") pp_call) fmt p

let to_reproducer (p : t) = List.map (fun c -> (c.nr, c.args)) p

let max_len = 8

(* --- argument generation ---------------------------------------------------- *)

let gen_arg rng (d : Defs.arg_domain) =
  match d with
  | Defs.Flag vs -> Rng.pick rng vs
  | Range (lo, hi) ->
      (* mostly in range, sometimes just outside to poke validation *)
      if Rng.chance rng ~percent:85 then Rng.range rng lo hi
      else Rng.range rng hi (hi + (hi - lo) + 1)
  | Len ->
      if Rng.chance rng ~percent:70 then Rng.range rng 0 128
      else Rng.interesting rng
  | Any32 ->
      if Rng.chance rng ~percent:50 then Rng.range rng 0 0xFFFF
      else Rng.interesting rng

let gen_call rng (descs : Defs.syscall_desc list) =
  let d = Rng.pick rng descs in
  let args = Array.make 3 0 in
  List.iteri (fun i dom -> if i < 3 then args.(i) <- gen_arg rng dom) d.sc_args;
  { nr = d.sc_nr; args }

let gen rng descs =
  let len = Rng.range rng 1 max_len in
  List.init len (fun _ -> gen_call rng descs)

(* --- mutation ------------------------------------------------------------------ *)

let desc_of descs nr = List.find_opt (fun d -> d.Defs.sc_nr = nr) descs

(* [dict] is the cmplog operand dictionary and [i2s] the counterpart
   lookup (input-to-state mutation, AFL++'s cmplog stage).  When the
   argument's current value was itself one side of an observed guest
   compare, [i2s] returns the other side and we substitute it verbatim --
   that is what solves [x == MAGIC] guards; otherwise a random dictionary
   value stands in.  The empty dictionary draws NOTHING from the rng, so
   campaigns without cmplog keep their exact pre-dictionary
   trajectories. *)
let mutate_call rng descs ?(dict = [||]) ?(i2s = fun _ -> None) (c : call) =
  match desc_of descs c.nr with
  | None -> gen_call rng descs
  | Some d ->
      let args = Array.copy c.args in
      let n = List.length d.sc_args in
      if n > 0 then begin
        let i = Rng.below rng (min 3 n) in
        args.(i) <-
          (if Array.length dict > 0 && Rng.chance rng ~percent:40 then
             match i2s args.(i) with
             | Some v -> v
             | None -> dict.(Rng.below rng (Array.length dict))
           else gen_arg rng (List.nth d.sc_args i))
      end;
      { c with args }

let mutate rng descs ?(corpus_pick = fun () -> None) ?(dict = [||])
    ?(i2s = fun _ -> None) (p : t) : t =
  let p = if p = [] then [ gen_call rng descs ] else p in
  match Rng.below rng 5 with
  | 0 ->
      (* mutate one call's argument *)
      let i = Rng.below rng (List.length p) in
      List.mapi
        (fun j c -> if i = j then mutate_call rng descs ~dict ~i2s c else c)
        p
  | 1 when List.length p < max_len ->
      (* insert a fresh call at a random position *)
      let i = Rng.below rng (List.length p + 1) in
      let rec ins j = function
        | rest when j = i -> gen_call rng descs :: rest
        | [] -> [ gen_call rng descs ]
        | c :: rest -> c :: ins (j + 1) rest
      in
      ins 0 p
  | 2 when List.length p > 1 ->
      (* drop one call *)
      let i = Rng.below rng (List.length p) in
      List.filteri (fun j _ -> j <> i) p
  | 3 when List.length p < max_len ->
      (* duplicate a call (repeat-to-trigger pattern) *)
      let i = Rng.below rng (List.length p) in
      let c = List.nth p i in
      p @ [ c ]
  | _ -> (
      (* splice with another corpus program *)
      match corpus_pick () with
      | Some (other : t) ->
          let cut1 = Rng.below rng (List.length p + 1) in
          let cut2 = Rng.below rng (List.length other + 1) in
          let head = List.filteri (fun j _ -> j < cut1) p in
          let tail = List.filteri (fun j _ -> j >= cut2) other in
          let spliced = head @ tail in
          if spliced = [] then p
          else List.filteri (fun j _ -> j < max_len) spliced
      | None ->
          let i = Rng.below rng (List.length p) in
          List.mapi
            (fun j c -> if i = j then mutate_call rng descs ~dict ~i2s c else c)
            p)
