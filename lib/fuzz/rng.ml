(* Deterministic PRNG (splitmix-style) for reproducible fuzzing campaigns. *)

type t = { mutable state : int }

let create ~seed = { state = (seed * 0x9E3779B9) lor 1 }

let next t =
  let z = (t.state + 0x9E3779B9) land max_int in
  t.state <- z;
  let z = (z lxor (z lsr 16)) * 0x85EBCA6B land max_int in
  let z = (z lxor (z lsr 13)) * 0xC2B2AE35 land max_int in
  z lxor (z lsr 16)

(** Uniform in [0, n). *)
let below t n = if n <= 0 then 0 else next t mod n

(** Uniform in [lo, hi] inclusive. *)
let range t lo hi = lo + below t (hi - lo + 1)

let chance t ~percent = below t 100 < percent

(* Splittable streams: each campaign shard fuzzes under its own
   deterministic sub-stream derived from the campaign seed, so a
   multi-domain orchestrator stays reproducible without the workers
   sharing (or locking) one generator.  The derivation is a two-round
   64-bit avalanche over (state, shard) with constants distinct from the
   step mixer above, so a sub-stream never collides with its parent
   stream or with a sibling shard's (pinned by QCheck tests). *)

let split_mix z =
  let z = (z lxor (z lsr 32)) * 0x2545F4914F6CDD1D land max_int in
  let z = (z lxor (z lsr 29)) * 0x27D4EB2F165667C5 land max_int in
  z lxor (z lsr 32)

let split_seed ~seed ~shard =
  split_mix (((seed * 0x9E3779B9) lor 1) + ((shard + 1) * 0x165667B19E3779F9))

(** [split t ~shard] derives an independent stream for shard index
    [shard] without advancing [t]: deterministic in (current state,
    shard), distinct across shards. *)
let split t ~shard = { state = split_seed ~seed:t.state ~shard lor 1 }

(* Named streams: one shard can own several independent draw streams
   (program mutation, schedule choice, ...) that stay independent of each
   other and of every other (shard, stream) pair.  The stream name is
   folded to a tag with FNV-1a — a different mixing family than both the
   step mixer and [split_mix], so tag structure cannot cancel either —
   and pushed through the split derivation as a second axis. *)

let stream_tag name =
  (* FNV-1a offset basis, truncated to OCaml's 63-bit int *)
  let h = ref 0x4BF2_9CE4_8422_2325 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x100_0000_01B3 land max_int)
    name;
  !h

(** [split_stream t ~shard ~stream] derives the independent stream named
    [stream] for shard [shard], without advancing [t]: deterministic in
    (current state, shard, stream); distinct across shards, stream names
    and from {!split}'s unnamed stream (pinned by QCheck tests). *)
let split_stream t ~shard ~stream =
  {
    state =
      split_mix (split_seed ~seed:t.state ~shard + (stream_tag stream lor 1))
      lor 1;
  }

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty"
  | l -> List.nth l (below t (List.length l))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_arr: empty"
  else a.(below t (Array.length a))

(** A "interesting" 32-bit value: boundary constants that trip size checks. *)
let interesting t =
  pick t
    [ 0; 1; 7; 8; 15; 16; 31; 32; 63; 64; 127; 128; 255; 256; 1023; 1024;
      4095; 4096; 0x7FFFFFFF; 0x80000000; 0xFFFFFFFF ]
