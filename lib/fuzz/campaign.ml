(* Coverage-guided fuzzing campaign over one firmware image, with crash
   triage against the bug registry and reproducer confirmation ("all found
   bugs have been deduplicated and are reproducible", S4.2).

   Two fuzzer front-ends matching the paper's tooling:
   - Syzkaller mode (Linux firmware): kernel-assisted kcov coverage, so the
     firmware is built with coverage callouts;
   - Tardis mode (LiteOS/FreeRTOS/VxWorks): OS-agnostic coverage straight
     from the emulator's translated-block probes, requiring nothing from
     the guest - which is why it also works on the closed-source image. *)

open Embsan_guest
module Embsan = Embsan_core.Embsan
module Report = Embsan_core.Report
module Coverage = Embsan_emu.Coverage
module Cmplog = Embsan_emu.Cmplog
module Machine = Embsan_emu.Machine
module Image = Embsan_isa.Image
module Snap = Embsan_snap.Snap
module Sched = Embsan_sched.Sched

type config = {
  fw : Firmware_db.firmware;
  sanitizers : Embsan.sanitizers;
  max_execs : int;
  seed : int;
  stop_when_all_found : bool;
  use_snapshots : bool;
  use_cmplog : bool;
      (* compare-operand coverage: per-exec cmplog features join the
         frontier signature, and the operand dictionary feeds mutation.
         Off by default so existing seeded trajectories stay pinned. *)
  use_sched : bool;
      (* fuzzer-controlled interleaving: each execution runs under a
         schedule seed drawn from a dedicated Rng stream (or inherited
         from the corpus entry being mutated), making the interleaving
         part of the input.  Off by default: the schedule stream is
         derived without advancing the main rng, so existing seeded
         trajectories stay pinned either way. *)
}

let default_config fw =
  {
    fw;
    sanitizers = Embsan.all_sanitizers;
    max_execs = 3000;
    seed = 1;
    stop_when_all_found = true;
    use_snapshots = true;
    use_cmplog = false;
    use_sched = false;
  }

type found = {
  f_bug : Defs.bug;
  f_exec : int; (* executions until first detection *)
  f_prog : Prog.t;
  f_sched : int option; (* schedule seed the reproducer needs, if any *)
  f_confirmed : bool; (* reproduced on a fresh instance *)
}

type result = {
  r_fw : Firmware_db.firmware;
  r_found : found list;
  r_execs : int;
  r_crashes : int;
  r_corpus : int;
  r_coverage : int;
  r_insns : int;
  r_unmatched : string list; (* report titles not matching any known bug *)
  r_corpus_progs : Prog.t list; (* the merged corpus (overhead workload) *)
}

let uses_kcov (fw : Firmware_db.firmware) = fw.fw_fuzzer = Firmware_db.Syzkaller

(* Ground-truth symbolization for scoring reports on stripped firmware. *)
let truth_symbolize (fw : Firmware_db.firmware) =
  let image = fw.fw_truth ~kcov:false Embsan_minic.Codegen.Plain in
  fun pc -> Option.map (fun (s : Image.symbol) -> s.name) (Image.symbol_at image pc)

(* Match a report to a registered bug by kind + symbol. *)
let match_bug symbolize (fw : Firmware_db.firmware) (r : Report.t) =
  let loc = match r.location with Some l -> Some l | None -> symbolize r.pc in
  List.find_opt
    (fun (b : Defs.bug) ->
      Defs.kind_matches b r.kind
      &&
      match loc with
      | Some l -> List.mem l (Defs.bug_symbols b)
      | None -> false)
    fw.fw_bugs

let match_crash (fw : Firmware_db.firmware) = function
  | Machine.Fault (_, "null pointer dereference") ->
      List.find_opt (fun (b : Defs.bug) -> b.b_class = Defs.Null_bug) fw.fw_bugs
  | _ -> None

let boot_with_coverage cfg cov =
  let inst =
    Replay.boot ~kcov:(uses_kcov cfg.fw) cfg.fw (Replay.Embsan_cfg cfg.sanitizers)
  in
  (if uses_kcov cfg.fw then Coverage.attach_kcov cov inst.machine
   else Coverage.attach_tcg cov inst.machine);
  if cfg.use_cmplog then Machine.set_cmplog inst.machine true;
  inst

(* Confirm a finding by replay from pristine post-boot state.  Bugs with
   cross-program state dependencies are retried with the recent program
   history prepended (then greedily shrunk), yielding a reproducer in the
   "deduplicated and reproducible" sense of S4.2.

   With snapshots, confirmations share one dedicated instance: a lazy boot
   captures a post-boot checkpoint, and each attempt restores it instead
   of rebooting — the restore-transparency oracle (lib/check) is what
   justifies treating the two as equivalent.  Without snapshots each
   attempt boots fresh, as before. *)
(* Arm (or disarm) a throwaway scheduler on [machine] for one replay:
   the schedule seed fully determines the draw stream. *)
let arm_schedule machine = function
  | None -> Machine.set_sched machine None
  | Some seed ->
      let ctl = Sched.create machine in
      let r = Rng.create ~seed in
      Sched.arm ctl ~draw:(fun n -> Rng.below r n)

let reboot_repro cfg bug ?sched calls =
  match Replay.boot cfg.fw (Replay.Embsan_cfg cfg.sanitizers) with
  | exception Replay.Boot_failed _ -> false
  | inst ->
      arm_schedule inst.Replay.machine sched;
      Replay.detects bug (Replay.replay inst calls)

let confirm ~try_repro ?sched (bug : Defs.bug) ~history prog =
  let calls = Prog.to_reproducer prog in
  (* schedule minimization first: a reproducer that fires under the plain
     round-robin rotation needs no schedule seed at all *)
  if sched <> None && try_repro bug ?sched:None calls then Some (prog, None)
  else if try_repro bug ?sched calls then Some (prog, sched)
  else begin
    let full = List.concat_map Prog.to_reproducer history @ calls in
    if not (try_repro bug ?sched full) then None
    else begin
      (* greedy shrink: drop leading history programs while it reproduces *)
      let rec shrink hist =
        match hist with
        | [] -> hist
        | _ :: rest ->
            let candidate = List.concat_map Prog.to_reproducer rest @ calls in
            if try_repro bug ?sched candidate then shrink rest else hist
      in
      let kept = shrink history in
      Some (List.concat kept @ prog, sched)
    end
  end

(* The per-worker fuzzing engine.  [Campaign.run] below is a trivial
   driver over it (create, step until finished, result); the campaign
   orchestrator ([lib/orch]) drives one engine per worker domain in
   epoch-sized batches, injecting frontier programs received from other
   workers between batches.  Keeping [run] on this exact code path is
   what makes an orchestrated single-worker campaign bit-identical to
   [Campaign.run] for the same seed (pinned in test/test_orch.ml). *)
module Engine = struct
  type t = {
    cfg : config;
    rng : Rng.t;
    corpus : Corpus.t;
    cov : Coverage.t;
    symbolize : int -> string option;
    mutable inst : Replay.instance;
    mutable sched_ctl : Sched.t option; (* interleaving control on [inst] *)
    sched_rng : Rng.t option; (* dedicated schedule-seed stream *)
    snap : Snap.t option;
    try_repro : Defs.bug -> ?sched:int -> (int * int array) list -> bool;
    total_bugs : int;
    mutable insns_base : int; (* total_insns already credited to [insns] *)
    mutable history : Prog.t list; (* recent programs, newest first *)
    found : (string, found) Hashtbl.t;
    mutable unmatched : string list;
    mutable crashes : int;
    mutable execs : int;
    mutable insns : int;
    mutable seen_reports : int;
    (* per-epoch harvest for the orchestrator, newest first *)
    mutable fresh_frontier : (Prog.t * int option * (int * int) list) list;
    mutable fresh_found : found list;
  }

  let create ?rng (cfg : config) =
    let rng =
      match rng with Some r -> r | None -> Rng.create ~seed:cfg.seed
    in
    (* derived WITHOUT advancing [rng], so the program-mutation trajectory
       is bit-identical whether schedule fuzzing is on or off, and a
       jobs=1 orchestrated campaign stays equal to [Campaign.run] *)
    let sched_rng =
      if cfg.use_sched then Some (Rng.split_stream rng ~shard:0 ~stream:"sched")
      else None
    in
    let cov = Coverage.create ~harts:2 in
    let inst = boot_with_coverage cfg cov in
    let sched_ctl =
      if cfg.use_sched then Some (Sched.create inst.Replay.machine) else None
    in
    (* Persistent-mode checkpoint: capture once post-boot and revert to it
       on crash recovery instead of rebooting.  Coverage is fuzzer-owned
       host state, attached via probes — it survives restores by design
       (pinned by a regression test in test/test_fuzz.ml). *)
    let snap =
      if cfg.use_snapshots then Some (Snap.capture ?runtime:inst.rt inst.machine)
      else None
    in
    (* Confirmation replays: with snapshots, one lazily-booted instance is
       restored per attempt; otherwise each attempt boots fresh. *)
    let repro_state = ref None in
    let try_repro =
      if not cfg.use_snapshots then reboot_repro cfg
      else fun bug ?sched calls ->
        match
          (match !repro_state with
          | Some is -> is
          | None ->
              let i = Replay.boot cfg.fw (Replay.Embsan_cfg cfg.sanitizers) in
              let s = Snap.capture ?runtime:i.Replay.rt i.Replay.machine in
              repro_state := Some (i, s);
              (i, s))
        with
        | exception Replay.Boot_failed _ -> false
        | i, s ->
            ignore (Snap.restore s : int);
            arm_schedule i.Replay.machine sched;
            let before = List.length (Report.unique_reports i.Replay.sink) in
            let o = Replay.replay i calls in
            let fresh =
              List.filteri (fun k _ -> k >= before) o.Replay.o_reports
            in
            Replay.detects bug { o with Replay.o_reports = fresh }
    in
    {
      cfg;
      rng;
      corpus = Corpus.create ();
      cov;
      symbolize = truth_symbolize cfg.fw;
      inst;
      sched_ctl;
      sched_rng;
      snap;
      try_repro;
      total_bugs = List.length cfg.fw.fw_bugs;
      insns_base = 0;
      history = [];
      found = Hashtbl.create 16;
      unmatched = [];
      crashes = 0;
      execs = 0;
      insns = 0;
      seen_reports = 0;
      fresh_frontier = [];
      fresh_found = [];
    }

  let all_found e = Hashtbl.length e.found >= e.total_bugs

  let finished e =
    e.execs >= e.cfg.max_execs || (e.cfg.stop_when_all_found && all_found e)

  let note_bug e bug ?sched prog =
    if not (Hashtbl.mem e.found bug.Defs.b_id) then begin
      let entry =
        match
          confirm ~try_repro:e.try_repro ?sched bug
            ~history:(List.rev e.history) prog
        with
        | Some (repro, rsched) ->
            {
              f_bug = bug;
              f_exec = e.execs;
              f_prog = repro;
              f_sched = rsched;
              f_confirmed = true;
            }
        | None ->
            {
              f_bug = bug;
              f_exec = e.execs;
              f_prog = prog;
              f_sched = sched;
              f_confirmed = false;
            }
      in
      Hashtbl.replace e.found bug.Defs.b_id entry;
      e.fresh_found <- entry :: e.fresh_found
    end

  (* One execution of [prog]: run it, triage coverage, reports and
     crashes, recover if the machine died.  Shared between [step]
     (self-generated programs) and [inject] (frontier programs received
     from other workers). *)
  let execute e ?sched prog =
    (* arm this execution's interleaving before anything runs *)
    (match e.sched_ctl with
    | None -> ()
    | Some ctl -> (
        match sched with
        | None -> Sched.disarm ctl
        | Some seed ->
            let r = Rng.create ~seed in
            Sched.arm ctl ~draw:(fun n -> Rng.below r n)));
    Coverage.reset_edges e.cov;
    if e.cfg.use_cmplog then Cmplog.reset e.inst.machine.Machine.cmplog;
    e.history <-
      prog
      ::
      (if List.length e.history >= 4 then
         List.filteri (fun i _ -> i < 3) e.history
       else e.history);
    let outcome = Replay.replay e.inst (Prog.to_reproducer prog) in
    (* frontier signature: edge features (ascending, < 2^16) then cmplog
       compare features (ascending, >= Cmplog.feature_base) -- the
       recording window dedups exact (pc, lhs, rhs) triples, so admission
       sees a deterministic, duplicate-free feature list *)
    let signature =
      let edges = Coverage.signature e.cov in
      if e.cfg.use_cmplog then
        edges @ Cmplog.features e.inst.machine.Machine.cmplog
      else edges
    in
    if Corpus.consider e.corpus prog ?sched signature then
      e.fresh_frontier <- (prog, sched, signature) :: e.fresh_frontier;
    (* new sanitizer reports? *)
    let reports = Report.unique_reports e.inst.sink in
    let n = List.length reports in
    if n > e.seen_reports then begin
      let fresh = List.filteri (fun i _ -> i >= e.seen_reports) reports in
      e.seen_reports <- n;
      List.iter
        (fun r ->
          match match_bug e.symbolize e.cfg.fw r with
          | Some bug -> note_bug e bug ?sched prog
          | None -> e.unmatched <- Report.title r :: e.unmatched)
        fresh
    end;
    (* architectural crash: triage, then recover — restore the post-boot
       checkpoint when snapshotting, reboot a fresh instance otherwise *)
    match outcome.o_crash with
    | Some stop ->
        e.crashes <- e.crashes + 1;
        (match match_crash e.cfg.fw stop with
        | Some bug -> note_bug e bug ?sched prog
        | None -> ());
        (match e.snap with
        | Some s ->
            e.insns <- e.insns + (e.inst.machine.total_insns - e.insns_base);
            ignore (Snap.restore s : int);
            (* total_insns reverts to its captured value; the sink reverts
               to its post-boot contents, so re-baseline both *)
            e.insns_base <- e.inst.machine.total_insns;
            e.seen_reports <-
              List.length (Report.unique_reports e.inst.sink)
        | None ->
            e.insns <- e.insns + e.inst.machine.total_insns;
            e.inst <- boot_with_coverage e.cfg e.cov;
            (* the scheduler control is bound to the dead machine *)
            if e.sched_ctl <> None then
              e.sched_ctl <- Some (Sched.create e.inst.Replay.machine);
            e.seen_reports <- 0);
        e.history <- []
    | None -> ()

  let step e =
    e.execs <- e.execs + 1;
    let prog, inherited =
      if Corpus.size e.corpus > 0 && Rng.chance e.rng ~percent:70 then begin
        let dict =
          if e.cfg.use_cmplog then
            Cmplog.dict_values e.inst.machine.Machine.cmplog
          else [||]
        in
        (* one corpus draw for the mutation base, exactly as before; the
           entry's schedule seed rides along as mutation input *)
        let base = Corpus.pick e.rng e.corpus in
        ( Prog.mutate e.rng e.cfg.fw.fw_syscalls
            ~corpus_pick:(fun () ->
              Option.map fst (Corpus.pick e.rng e.corpus))
            ~dict
            ~i2s:(Cmplog.counterpart e.inst.machine.Machine.cmplog)
            (match base with Some (p, _) -> p | None -> []),
          match base with Some (_, s) -> s | None -> None )
      end
      else (Prog.gen e.rng e.cfg.fw.fw_syscalls, None)
    in
    (* schedule mutation, from the dedicated stream: keep the inherited
       interleaving half the time, otherwise redraw *)
    let sched =
      match e.sched_rng with
      | None -> None
      | Some sr -> (
          match inherited with
          | Some s when Rng.chance sr ~percent:50 -> Some s
          | _ -> Some (Rng.next sr land 0x3FFF_FFFF))
    in
    execute e ?sched prog

  (* Frontier import: execute a program another worker found productive
     (under the schedule it was productive with).  It counts as an
     execution (it costs one), joins the corpus if it yields locally-new
     coverage, and goes through the same report/crash triage as a
     generated program. *)
  let inject e ?sched prog =
    e.execs <- e.execs + 1;
    execute e ?sched prog

  let drain_frontier e =
    let l = List.rev e.fresh_frontier in
    e.fresh_frontier <- [];
    l

  let drain_found e =
    let l = List.rev e.fresh_found in
    e.fresh_found <- [];
    l

  let execs e = e.execs
  let crashes e = e.crashes
  let corpus_size e = Corpus.size e.corpus
  let coverage e = Corpus.coverage e.corpus
  let unmatched e = List.sort_uniq compare e.unmatched

  (* Retired guest instructions so far, credited across snapshot rollbacks
     and reboots exactly as [result] reports them. *)
  let insns_now e = e.insns + (e.inst.machine.total_insns - e.insns_base)

  let result e =
    e.insns <- e.insns + (e.inst.machine.total_insns - e.insns_base);
    e.insns_base <- e.inst.machine.total_insns;
    {
      r_fw = e.cfg.fw;
      r_found = Hashtbl.fold (fun _ f acc -> f :: acc) e.found [];
      r_execs = e.execs;
      r_crashes = e.crashes;
      r_corpus = Corpus.size e.corpus;
      r_coverage = Corpus.coverage e.corpus;
      r_insns = e.insns;
      r_unmatched = List.sort_uniq compare e.unmatched;
      r_corpus_progs = Corpus.programs e.corpus;
    }
end

let run (cfg : config) : result =
  let e = Engine.create cfg in
  while not (Engine.finished e) do
    Engine.step e
  done;
  Engine.result e

(* The overhead experiment (Figure 2) replays the merged corpus; programs
   that trigger sanitizer reports or crashes are excluded so the workload
   measures steady-state behavior rather than post-corruption allocator
   pathologies. *)
let clean_corpus ?(use_snapshots = true) (fw : Firmware_db.firmware)
    (progs : Prog.t list) =
  (* each fixpoint pass must start from pristine post-boot state: restore
     the shared checkpoint when snapshotting, boot fresh otherwise *)
  let fresh_instance =
    if use_snapshots then begin
      let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.all_sanitizers) in
      let snap = Snap.capture ?runtime:inst.Replay.rt inst.Replay.machine in
      fun () ->
        ignore (Snap.restore snap : int);
        inst
    end
    else fun () -> Replay.boot fw (Replay.Embsan_cfg Embsan.all_sanitizers)
  in
  let filter_pass progs =
    let inst = fresh_instance () in
    List.filter
      (fun p ->
        let before = Report.total_hits inst.sink in
        let o = Replay.replay inst (Prog.to_reproducer p) in
        o.o_crash = None && Report.total_hits inst.sink = before)
      progs
  in
  (* iterate: dropping a program changes the allocator state the survivors
     run under, which can expose previously-masked triggers (e.g. an
     overflow that used to fail its allocation) *)
  let rec fixpoint progs n =
    let survivors = filter_pass progs in
    if n = 0 || List.length survivors = List.length progs then survivors
    else fixpoint survivors (n - 1)
  in
  fixpoint progs 4

let pp_result fmt r =
  Fmt.pf fmt "@[<v>%s: %d/%d bugs in %d execs (%d crashes, corpus %d, cov %d)@,%a@]"
    r.r_fw.fw_name (List.length r.r_found)
    (List.length r.r_fw.fw_bugs)
    r.r_execs r.r_crashes r.r_corpus r.r_coverage
    (Fmt.list ~sep:Fmt.cut (fun fmt f ->
         Fmt.pf fmt "  exec %5d %s %-32s [%a]%s" f.f_exec
           (if f.f_confirmed then "CONFIRMED" else "unconfirmed")
           f.f_bug.b_id Prog.pp f.f_prog
           ""))
    (List.sort (fun a b -> compare a.f_exec b.f_exec) r.r_found)
