(* Coverage-guided fuzzing campaign over one firmware image, with crash
   triage against the bug registry and reproducer confirmation ("all found
   bugs have been deduplicated and are reproducible", S4.2).

   Two fuzzer front-ends matching the paper's tooling:
   - Syzkaller mode (Linux firmware): kernel-assisted kcov coverage, so the
     firmware is built with coverage callouts;
   - Tardis mode (LiteOS/FreeRTOS/VxWorks): OS-agnostic coverage straight
     from the emulator's translated-block probes, requiring nothing from
     the guest - which is why it also works on the closed-source image. *)

open Embsan_guest
module Embsan = Embsan_core.Embsan
module Report = Embsan_core.Report
module Coverage = Embsan_emu.Coverage
module Cmplog = Embsan_emu.Cmplog
module Machine = Embsan_emu.Machine
module Image = Embsan_isa.Image
module Snap = Embsan_snap.Snap
module Sched = Embsan_sched.Sched
module Rehost = Embsan_rehost.Rehost

type config = {
  fw : Firmware_db.firmware;
  sanitizers : Embsan.sanitizers;
  max_execs : int;
  seed : int;
  stop_when_all_found : bool;
  use_snapshots : bool;
  use_cmplog : bool;
      (* compare-operand coverage: per-exec cmplog features join the
         frontier signature, and the operand dictionary feeds mutation.
         Off by default so existing seeded trajectories stay pinned. *)
  use_sched : bool;
      (* fuzzer-controlled interleaving: each execution runs under a
         schedule seed drawn from a dedicated Rng stream (or inherited
         from the corpus entry being mutated), making the interleaving
         part of the input.  Off by default: the schedule stream is
         derived without advancing the main rng, so existing seeded
         trajectories stay pinned either way. *)
  use_rehost : bool;
      (* model-free MMIO rehosting (lib/rehost): unmapped-MMIO reads are
         served from a per-exec seeded stream behind a (pc, addr) memo
         table.  The rehost seed rides the corpus entry like the schedule
         seed, from its own non-advancing Rng stream. *)
  use_irq : bool;
      (* fuzzer-scheduled interrupt injection on top of [use_rehost]: the
         per-exec rehost seed also draws an injection plan ("irq" stream)
         vectoring the guest's registered stub at chosen retirement
         points. *)
}

let default_config fw =
  {
    fw;
    sanitizers = Embsan.all_sanitizers;
    max_execs = 3000;
    seed = 1;
    stop_when_all_found = true;
    use_snapshots = true;
    use_cmplog = false;
    use_sched = false;
    use_rehost = false;
    use_irq = false;
  }

type found = {
  f_bug : Defs.bug;
  f_exec : int; (* executions until first detection *)
  f_prog : Prog.t;
  f_sched : int option; (* schedule seed the reproducer needs, if any *)
  f_rehost : int option; (* rehost seed the reproducer needs, if any *)
  f_irq : bool; (* the rehost replay also injects interrupts *)
  f_confirmed : bool; (* reproduced on a fresh instance *)
}

type result = {
  r_fw : Firmware_db.firmware;
  r_found : found list;
  r_execs : int;
  r_crashes : int;
  r_corpus : int;
  r_coverage : int;
  r_insns : int;
  r_unmatched : string list; (* report titles not matching any known bug *)
  r_corpus_progs : Prog.t list; (* the merged corpus (overhead workload) *)
}

let uses_kcov (fw : Firmware_db.firmware) = fw.fw_fuzzer = Firmware_db.Syzkaller

(* Ground-truth symbolization for scoring reports on stripped firmware. *)
let truth_symbolize (fw : Firmware_db.firmware) =
  let image = fw.fw_truth ~kcov:false Embsan_minic.Codegen.Plain in
  fun pc -> Option.map (fun (s : Image.symbol) -> s.name) (Image.symbol_at image pc)

(* Match a report to a registered bug by kind + symbol. *)
let match_bug symbolize (fw : Firmware_db.firmware) (r : Report.t) =
  let loc = match r.location with Some l -> Some l | None -> symbolize r.pc in
  List.find_opt
    (fun (b : Defs.bug) ->
      Defs.kind_matches b r.kind
      &&
      match loc with
      | Some l -> List.mem l (Defs.bug_symbols b)
      | None -> false)
    fw.fw_bugs

let match_crash (fw : Firmware_db.firmware) = function
  | Machine.Fault (_, "null pointer dereference") ->
      List.find_opt (fun (b : Defs.bug) -> b.b_class = Defs.Null_bug) fw.fw_bugs
  | _ -> None

let boot_with_coverage cfg cov =
  let inst =
    Replay.boot ~kcov:(uses_kcov cfg.fw) cfg.fw (Replay.Embsan_cfg cfg.sanitizers)
  in
  (if uses_kcov cfg.fw then Coverage.attach_kcov cov inst.machine
   else Coverage.attach_tcg cov inst.machine);
  if cfg.use_cmplog then Machine.set_cmplog inst.machine true;
  inst

(* Confirm a finding by replay from pristine post-boot state.  Bugs with
   cross-program state dependencies are retried with the recent program
   history prepended (then greedily shrunk), yielding a reproducer in the
   "deduplicated and reproducible" sense of S4.2.

   With snapshots, confirmations share one dedicated instance: a lazy boot
   captures a post-boot checkpoint, and each attempt restores it instead
   of rebooting — the restore-transparency oracle (lib/check) is what
   justifies treating the two as equivalent.  Without snapshots each
   attempt boots fresh, as before. *)
(* Arm (or disarm) a throwaway scheduler on [machine] for one replay:
   the schedule seed fully determines the draw stream. *)
let arm_schedule machine = function
  | None -> Machine.set_sched machine None
  | Some seed ->
      let ctl = Sched.create machine in
      let r = Rng.create ~seed in
      Sched.arm ctl ~draw:(fun n -> Rng.below r n)

(* Arm a rehost controller for one execution: the single corpus seed fans
   out into the "mmio" response stream and (when injection is on) the
   "irq" plan stream via [Rng.split_stream], so confirmation replays and
   shrinking redraw the exact per-exec streams from the seed alone. *)
let arm_rehost ~use_irq ctl seed =
  let root = Rng.create ~seed in
  let mr = Rng.split_stream root ~shard:0 ~stream:"mmio" in
  let irq =
    if use_irq then begin
      let ir = Rng.split_stream root ~shard:0 ~stream:"irq" in
      Some (fun n -> Rng.below ir n)
    end
    else None
  in
  Rehost.arm ?irq ctl ~mmio:(fun () -> Rng.next mr)

let reboot_repro cfg bug ?sched ?rehost calls =
  match Replay.boot cfg.fw (Replay.Embsan_cfg cfg.sanitizers) with
  | exception Replay.Boot_failed _ -> false
  | inst ->
      arm_schedule inst.Replay.machine sched;
      (match rehost with
      | None -> ()
      | Some seed ->
          arm_rehost ~use_irq:cfg.use_irq
            (Rehost.create inst.Replay.machine)
            seed);
      Replay.detects bug (Replay.replay inst calls)

let confirm ~try_repro ?sched ?rehost (bug : Defs.bug) ~history prog =
  let calls = Prog.to_reproducer prog in
  (* input minimization first, toward None: a reproducer that fires under
     the plain round-robin rotation needs no schedule seed, and one that
     fires without the rehost layer needs no rehost seed.  Try dropping
     both, then the rehost seed, then the schedule seed, then keep both. *)
  let candidates =
    let rec uniq = function
      | [] -> []
      | x :: rest -> x :: uniq (List.filter (( <> ) x) rest)
    in
    uniq [ (None, None); (sched, None); (None, rehost); (sched, rehost) ]
  in
  let rec first = function
    | [] -> None
    | (s, r) :: rest ->
        if try_repro bug ?sched:s ?rehost:r calls then Some (prog, s, r)
        else first rest
  in
  match first candidates with
  | Some _ as found -> found
  | None ->
      let full = List.concat_map Prog.to_reproducer history @ calls in
      if not (try_repro bug ?sched ?rehost full) then None
      else begin
        (* greedy shrink: drop leading history programs while it
           reproduces *)
        let rec shrink hist =
          match hist with
          | [] -> hist
          | _ :: rest ->
              let candidate =
                List.concat_map Prog.to_reproducer rest @ calls
              in
              if try_repro bug ?sched ?rehost candidate then shrink rest
              else hist
        in
        let kept = shrink history in
        Some (List.concat kept @ prog, sched, rehost)
      end

(* The per-worker fuzzing engine.  [Campaign.run] below is a trivial
   driver over it (create, step until finished, result); the campaign
   orchestrator ([lib/orch]) drives one engine per worker domain in
   epoch-sized batches, injecting frontier programs received from other
   workers between batches.  Keeping [run] on this exact code path is
   what makes an orchestrated single-worker campaign bit-identical to
   [Campaign.run] for the same seed (pinned in test/test_orch.ml). *)
module Engine = struct
  type t = {
    cfg : config;
    rng : Rng.t;
    corpus : Corpus.t;
    cov : Coverage.t;
    symbolize : int -> string option;
    mutable inst : Replay.instance;
    mutable sched_ctl : Sched.t option; (* interleaving control on [inst] *)
    sched_rng : Rng.t option; (* dedicated schedule-seed stream *)
    mutable rehost_ctl : Rehost.t option; (* MMIO/IRQ control on [inst] *)
    rehost_rng : Rng.t option; (* dedicated rehost-seed stream *)
    snap : Snap.t option;
    try_repro :
      Defs.bug -> ?sched:int -> ?rehost:int -> (int * int array) list -> bool;
    total_bugs : int;
    mutable insns_base : int; (* total_insns already credited to [insns] *)
    mutable history : Prog.t list; (* recent programs, newest first *)
    found : (string, found) Hashtbl.t;
    mutable unmatched : string list;
    mutable crashes : int;
    mutable execs : int;
    mutable insns : int;
    mutable seen_reports : int;
    (* per-epoch harvest for the orchestrator, newest first *)
    mutable fresh_frontier :
      (Prog.t * int option * int option * (int * int) list) list;
    mutable fresh_found : found list;
  }

  let create ?rng (cfg : config) =
    let rng =
      match rng with Some r -> r | None -> Rng.create ~seed:cfg.seed
    in
    (* derived WITHOUT advancing [rng], so the program-mutation trajectory
       is bit-identical whether schedule fuzzing is on or off, and a
       jobs=1 orchestrated campaign stays equal to [Campaign.run] *)
    let sched_rng =
      if cfg.use_sched then Some (Rng.split_stream rng ~shard:0 ~stream:"sched")
      else None
    in
    let rehost_rng =
      if cfg.use_rehost then
        Some (Rng.split_stream rng ~shard:0 ~stream:"rehost")
      else None
    in
    let cov = Coverage.create ~harts:2 in
    let inst = boot_with_coverage cfg cov in
    let sched_ctl =
      if cfg.use_sched then Some (Sched.create inst.Replay.machine) else None
    in
    (* the controller's machine hook must be installed before the
       checkpoint below so [Snap.capture] carries the rehost blob and
       restores revert memo/plan state (see lib/rehost) *)
    let rehost_ctl =
      if cfg.use_rehost then Some (Rehost.create inst.Replay.machine)
      else None
    in
    (* Persistent-mode checkpoint: capture once post-boot and revert to it
       on crash recovery instead of rebooting.  Coverage is fuzzer-owned
       host state, attached via probes — it survives restores by design
       (pinned by a regression test in test/test_fuzz.ml). *)
    let snap =
      if cfg.use_snapshots then Some (Snap.capture ?runtime:inst.rt inst.machine)
      else None
    in
    (* Confirmation replays: with snapshots, one lazily-booted instance is
       restored per attempt; otherwise each attempt boots fresh. *)
    let repro_state = ref None in
    let try_repro =
      if not cfg.use_snapshots then reboot_repro cfg
      else fun bug ?sched ?rehost calls ->
        match
          (match !repro_state with
          | Some is -> is
          | None ->
              let i = Replay.boot cfg.fw (Replay.Embsan_cfg cfg.sanitizers) in
              let rc =
                if cfg.use_rehost then Some (Rehost.create i.Replay.machine)
                else None
              in
              let s = Snap.capture ?runtime:i.Replay.rt i.Replay.machine in
              repro_state := Some (i, rc, s);
              (i, rc, s))
        with
        | exception Replay.Boot_failed _ -> false
        | i, rc, s ->
            ignore (Snap.restore s : int);
            arm_schedule i.Replay.machine sched;
            (match (rc, rehost) with
            | Some c, Some seed -> arm_rehost ~use_irq:cfg.use_irq c seed
            | Some c, None -> Rehost.disarm c
            | None, _ -> ());
            let before = List.length (Report.unique_reports i.Replay.sink) in
            let o = Replay.replay i calls in
            let fresh =
              List.filteri (fun k _ -> k >= before) o.Replay.o_reports
            in
            Replay.detects bug { o with Replay.o_reports = fresh }
    in
    {
      cfg;
      rng;
      corpus = Corpus.create ();
      cov;
      symbolize = truth_symbolize cfg.fw;
      inst;
      sched_ctl;
      sched_rng;
      rehost_ctl;
      rehost_rng;
      snap;
      try_repro;
      total_bugs = List.length cfg.fw.fw_bugs;
      insns_base = 0;
      history = [];
      found = Hashtbl.create 16;
      unmatched = [];
      crashes = 0;
      execs = 0;
      insns = 0;
      seen_reports = 0;
      fresh_frontier = [];
      fresh_found = [];
    }

  let all_found e = Hashtbl.length e.found >= e.total_bugs

  let finished e =
    e.execs >= e.cfg.max_execs || (e.cfg.stop_when_all_found && all_found e)

  let note_bug e bug ?sched ?rehost prog =
    if not (Hashtbl.mem e.found bug.Defs.b_id) then begin
      let entry =
        match
          confirm ~try_repro:e.try_repro ?sched ?rehost bug
            ~history:(List.rev e.history) prog
        with
        | Some (repro, rsched, rrehost) ->
            {
              f_bug = bug;
              f_exec = e.execs;
              f_prog = repro;
              f_sched = rsched;
              f_rehost = rrehost;
              f_irq = e.cfg.use_irq && rrehost <> None;
              f_confirmed = true;
            }
        | None ->
            {
              f_bug = bug;
              f_exec = e.execs;
              f_prog = prog;
              f_sched = sched;
              f_rehost = rehost;
              f_irq = e.cfg.use_irq && rehost <> None;
              f_confirmed = false;
            }
      in
      Hashtbl.replace e.found bug.Defs.b_id entry;
      e.fresh_found <- entry :: e.fresh_found
    end

  (* One execution of [prog]: run it, triage coverage, reports and
     crashes, recover if the machine died.  Shared between [step]
     (self-generated programs) and [inject] (frontier programs received
     from other workers). *)
  let execute e ?sched ?rehost prog =
    (* Per-exec isolation under rehosting: every execution starts from the
       post-boot checkpoint (which also reverts the memo table and pending
       IRQs through the rehost hook's snapshot blob), so a (program,
       rehost seed) pair alone determines the trajectory and confirmation
       replays are exact.  Without the checkpoint the layer still fuzzes,
       but cross-exec guest state can leave findings unconfirmed. *)
    (match (e.rehost_ctl, e.snap) with
    | Some _, Some s ->
        e.insns <- e.insns + (e.inst.machine.total_insns - e.insns_base);
        ignore (Snap.restore s : int);
        e.insns_base <- e.inst.machine.total_insns;
        e.seen_reports <- List.length (Report.unique_reports e.inst.sink);
        e.history <- []
    | _ -> ());
    (* arm this execution's interleaving before anything runs *)
    (match e.sched_ctl with
    | None -> ()
    | Some ctl -> (
        match sched with
        | None -> Sched.disarm ctl
        | Some seed ->
            let r = Rng.create ~seed in
            Sched.arm ctl ~draw:(fun n -> Rng.below r n)));
    (* then the rehost layer: its scheduler wrapper must capture the
       interleaving just armed so injection clamps compose with it *)
    (match e.rehost_ctl with
    | None -> ()
    | Some ctl -> (
        match rehost with
        | None -> Rehost.disarm ctl
        | Some seed -> arm_rehost ~use_irq:e.cfg.use_irq ctl seed));
    Coverage.reset_edges e.cov;
    if e.cfg.use_cmplog then Cmplog.reset e.inst.machine.Machine.cmplog;
    e.history <-
      prog
      ::
      (if List.length e.history >= 4 then
         List.filteri (fun i _ -> i < 3) e.history
       else e.history);
    let outcome = Replay.replay e.inst (Prog.to_reproducer prog) in
    (* frontier signature: edge features (ascending, < 2^16) then cmplog
       compare features (ascending, >= Cmplog.feature_base) -- the
       recording window dedups exact (pc, lhs, rhs) triples, so admission
       sees a deterministic, duplicate-free feature list *)
    let signature =
      let edges = Coverage.signature e.cov in
      if e.cfg.use_cmplog then
        edges @ Cmplog.features e.inst.machine.Machine.cmplog
      else edges
    in
    if Corpus.consider e.corpus prog ?sched ?rehost signature then
      e.fresh_frontier <- (prog, sched, rehost, signature) :: e.fresh_frontier;
    (* new sanitizer reports? *)
    let reports = Report.unique_reports e.inst.sink in
    let n = List.length reports in
    if n > e.seen_reports then begin
      let fresh = List.filteri (fun i _ -> i >= e.seen_reports) reports in
      e.seen_reports <- n;
      List.iter
        (fun r ->
          match match_bug e.symbolize e.cfg.fw r with
          | Some bug -> note_bug e bug ?sched ?rehost prog
          | None -> e.unmatched <- Report.title r :: e.unmatched)
        fresh
    end;
    (* architectural crash: triage, then recover — restore the post-boot
       checkpoint when snapshotting, reboot a fresh instance otherwise *)
    match outcome.o_crash with
    | Some stop ->
        e.crashes <- e.crashes + 1;
        (match match_crash e.cfg.fw stop with
        | Some bug -> note_bug e bug ?sched ?rehost prog
        | None -> ());
        (match e.snap with
        | Some s ->
            e.insns <- e.insns + (e.inst.machine.total_insns - e.insns_base);
            ignore (Snap.restore s : int);
            (* total_insns reverts to its captured value; the sink reverts
               to its post-boot contents, so re-baseline both *)
            e.insns_base <- e.inst.machine.total_insns;
            e.seen_reports <-
              List.length (Report.unique_reports e.inst.sink)
        | None ->
            e.insns <- e.insns + e.inst.machine.total_insns;
            e.inst <- boot_with_coverage e.cfg e.cov;
            (* the scheduler and rehost controls are bound to the dead
               machine *)
            if e.sched_ctl <> None then
              e.sched_ctl <- Some (Sched.create e.inst.Replay.machine);
            if e.rehost_ctl <> None then
              e.rehost_ctl <- Some (Rehost.create e.inst.Replay.machine);
            e.seen_reports <- 0);
        e.history <- []
    | None -> ()

  let step e =
    e.execs <- e.execs + 1;
    let prog, inherited_sched, inherited_rehost =
      if Corpus.size e.corpus > 0 && Rng.chance e.rng ~percent:70 then begin
        let dict =
          if e.cfg.use_cmplog then
            Cmplog.dict_values e.inst.machine.Machine.cmplog
          else [||]
        in
        (* one corpus draw for the mutation base, exactly as before; the
           entry's schedule and rehost seeds ride along as mutation
           input *)
        let base = Corpus.pick e.rng e.corpus in
        ( Prog.mutate e.rng e.cfg.fw.fw_syscalls
            ~corpus_pick:(fun () ->
              Option.map
                (fun (p, _, _) -> p)
                (Corpus.pick e.rng e.corpus))
            ~dict
            ~i2s:(Cmplog.counterpart e.inst.machine.Machine.cmplog)
            (match base with Some (p, _, _) -> p | None -> []),
          (match base with Some (_, s, _) -> s | None -> None),
          match base with Some (_, _, r) -> r | None -> None )
      end
      else (Prog.gen e.rng e.cfg.fw.fw_syscalls, None, None)
    in
    (* schedule mutation, from the dedicated stream: keep the inherited
       interleaving half the time, otherwise redraw *)
    let sched =
      match e.sched_rng with
      | None -> None
      | Some sr -> (
          match inherited_sched with
          | Some s when Rng.chance sr ~percent:50 -> Some s
          | _ -> Some (Rng.next sr land 0x3FFF_FFFF))
    in
    (* rehost-seed mutation follows the same inherit-or-redraw policy,
       from its own stream *)
    let rehost =
      match e.rehost_rng with
      | None -> None
      | Some rr -> (
          match inherited_rehost with
          | Some s when Rng.chance rr ~percent:50 -> Some s
          | _ -> Some (Rng.next rr land 0x3FFF_FFFF))
    in
    execute e ?sched ?rehost prog

  (* Frontier import: execute a program another worker found productive
     (under the schedule and rehost seeds it was productive with).  It
     counts as an execution (it costs one), joins the corpus if it yields
     locally-new coverage, and goes through the same report/crash triage
     as a generated program. *)
  let inject e ?sched ?rehost prog =
    e.execs <- e.execs + 1;
    execute e ?sched ?rehost prog

  let drain_frontier e =
    let l = List.rev e.fresh_frontier in
    e.fresh_frontier <- [];
    l

  let drain_found e =
    let l = List.rev e.fresh_found in
    e.fresh_found <- [];
    l

  let execs e = e.execs
  let crashes e = e.crashes
  let corpus_size e = Corpus.size e.corpus
  let coverage e = Corpus.coverage e.corpus
  let unmatched e = List.sort_uniq compare e.unmatched

  (* Retired guest instructions so far, credited across snapshot rollbacks
     and reboots exactly as [result] reports them. *)
  let insns_now e = e.insns + (e.inst.machine.total_insns - e.insns_base)

  let result e =
    e.insns <- e.insns + (e.inst.machine.total_insns - e.insns_base);
    e.insns_base <- e.inst.machine.total_insns;
    {
      r_fw = e.cfg.fw;
      r_found = Hashtbl.fold (fun _ f acc -> f :: acc) e.found [];
      r_execs = e.execs;
      r_crashes = e.crashes;
      r_corpus = Corpus.size e.corpus;
      r_coverage = Corpus.coverage e.corpus;
      r_insns = e.insns;
      r_unmatched = List.sort_uniq compare e.unmatched;
      r_corpus_progs = Corpus.programs e.corpus;
    }
end

let run (cfg : config) : result =
  let e = Engine.create cfg in
  while not (Engine.finished e) do
    Engine.step e
  done;
  Engine.result e

(* The overhead experiment (Figure 2) replays the merged corpus; programs
   that trigger sanitizer reports or crashes are excluded so the workload
   measures steady-state behavior rather than post-corruption allocator
   pathologies. *)
let clean_corpus ?(use_snapshots = true) (fw : Firmware_db.firmware)
    (progs : Prog.t list) =
  (* each fixpoint pass must start from pristine post-boot state: restore
     the shared checkpoint when snapshotting, boot fresh otherwise *)
  let fresh_instance =
    if use_snapshots then begin
      let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.all_sanitizers) in
      let snap = Snap.capture ?runtime:inst.Replay.rt inst.Replay.machine in
      fun () ->
        ignore (Snap.restore snap : int);
        inst
    end
    else fun () -> Replay.boot fw (Replay.Embsan_cfg Embsan.all_sanitizers)
  in
  let filter_pass progs =
    let inst = fresh_instance () in
    List.filter
      (fun p ->
        let before = Report.total_hits inst.sink in
        let o = Replay.replay inst (Prog.to_reproducer p) in
        o.o_crash = None && Report.total_hits inst.sink = before)
      progs
  in
  (* iterate: dropping a program changes the allocator state the survivors
     run under, which can expose previously-masked triggers (e.g. an
     overflow that used to fail its allocation) *)
  let rec fixpoint progs n =
    let survivors = filter_pass progs in
    if n = 0 || List.length survivors = List.length progs then survivors
    else fixpoint survivors (n - 1)
  in
  fixpoint progs 4

let pp_result fmt r =
  Fmt.pf fmt "@[<v>%s: %d/%d bugs in %d execs (%d crashes, corpus %d, cov %d)@,%a@]"
    r.r_fw.fw_name (List.length r.r_found)
    (List.length r.r_fw.fw_bugs)
    r.r_execs r.r_crashes r.r_corpus r.r_coverage
    (Fmt.list ~sep:Fmt.cut (fun fmt f ->
         (* surface the seeds this reproducer (the printed call list
            replayed from pristine state) was confirmed with *)
         let seed_hint =
           String.concat ""
             [
               (match f.f_sched with
               | Some s -> Printf.sprintf " (sched seed %d)" s
               | None -> "");
               (match f.f_rehost with
               | Some s ->
                   Printf.sprintf " (rehost seed %d%s)" s
                     (if f.f_irq then " + irq" else "")
               | None -> "");
             ]
         in
         Fmt.pf fmt "  exec %5d %s %-32s [%a]%s" f.f_exec
           (if f.f_confirmed then "CONFIRMED" else "unconfirmed")
           f.f_bug.b_id Prog.pp f.f_prog seed_hint))
    (List.sort (fun a b -> compare a.f_exec b.f_exec) r.r_found)
