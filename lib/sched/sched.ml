(* Fuzzer-controlled multi-hart interleaving scheduler (FuzzBox
   direction): replaces the machine's fixed round-robin hart rotation
   with seeded, fuzzer-chosen preemption points, so concurrency bugs are
   searched for instead of stumbled on.

   The scheduler plugs into the public [Machine.set_sched] hook.  Every
   decision is a pure function of the draw stream and the machine's
   architectural progress ([total_insns] and per-hart runnability), both
   of which are engine-invariant: Fast and Baseline stop each turn at the
   first block boundary at or past the turn deadline, and block
   boundaries depend only on guest code.  A given (policy, seed) therefore
   produces the identical interleaving on both engines — the
   sched-transparency oracle pins this.

   Two policies, chosen by the schedule seed:

   - [Slices]: run a randomly chosen runnable hart for a budgeted slice
     of 16..512 retired instructions (geometric draw), then re-choose.
     This is the workhorse: short slices land preemptions inside narrow
     windows the round-robin rotation essentially never splits.
   - [Priorities]: PCT-style — each hart gets a random priority; the
     highest-priority runnable hart runs in small fixed quanta, and at
     random change points (every few thousand instructions) one hart's
     priority is redrawn.  Produces long lopsided phases with occasional
     inversions, a shape slice scheduling rarely generates.

   The draw stream is an abstract [int -> int] closure (give it
   [Rng.below] of a dedicated split stream) so this library stays free of
   fuzzer dependencies and the schedule is replayable from one integer
   seed. *)

open Embsan_emu

type policy = Slices | Priorities

let policy_name = function Slices -> "slices" | Priorities -> "priorities"

type t = {
  machine : Machine.t;
  mutable draw : int -> int; (* draw n: uniform in [0, n) *)
  mutable policy : policy;
  mutable cur : int; (* hart owning the current slice; -1 = none *)
  mutable slice_end : int; (* absolute total_insns deadline of the slice *)
  prio : int array; (* Priorities policy: per-hart priority *)
  mutable change_gap : int; (* insns between priority change points *)
  mutable next_change : int;
  mutable slices : int; (* stats: slices started *)
  mutable switches : int; (* stats: slices that changed hart *)
}

let create machine =
  {
    machine;
    draw = (fun _ -> 0);
    policy = Slices;
    cur = -1;
    slice_end = 0;
    prio = Array.make (Array.length machine.Machine.harts) 0;
    change_gap = 4096;
    next_change = 0;
    slices = 0;
    switches = 0;
  }

(* Priority quantum: small and fixed, so the scheduler gets a decision
   point (and a possible preemption) every 64 retired instructions. *)
let prio_quantum = 64

let min_slice_shift = 4 (* slices are 16 lsl (0..5) = 16..512 insns *)
let slice_shifts = 6

let nth_runnable m k =
  let harts = m.Machine.harts in
  let rec go i k =
    if i >= Array.length harts then None
    else if Machine.runnable m harts.(i) then
      if k = 0 then Some i else go (i + 1) (k - 1)
    else go (i + 1) k
  in
  go 0 k

let count_runnable m =
  Array.fold_left
    (fun acc cpu -> if Machine.runnable m cpu then acc + 1 else acc)
    0 m.Machine.harts

let start_slice t hart =
  if hart <> t.cur then t.switches <- t.switches + 1;
  t.cur <- hart;
  t.slices <- t.slices + 1;
  t.slice_end <-
    t.machine.Machine.total_insns + (1 lsl (min_slice_shift + t.draw slice_shifts))

let hook t (m : Machine.t) =
  let harts = m.Machine.harts in
  match t.policy with
  | Slices ->
      if
        t.cur >= 0
        && m.Machine.total_insns < t.slice_end
        && Machine.runnable m harts.(t.cur)
      then Some (harts.(t.cur), t.slice_end)
      else begin
        match count_runnable m with
        | 0 -> None
        | k -> (
            match nth_runnable m (t.draw k) with
            | None -> None (* unreachable: k counted runnables *)
            | Some hart ->
                start_slice t hart;
                Some (harts.(hart), t.slice_end))
      end
  | Priorities ->
      let n = Array.length harts in
      if m.Machine.total_insns >= t.next_change then begin
        t.prio.(t.draw n) <- t.draw 1_000_000;
        t.next_change <- m.Machine.total_insns + t.change_gap
      end;
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if
          Machine.runnable m harts.(i)
          && (!best < 0 || t.prio.(i) > t.prio.(!best))
        then best := i
      done;
      if !best < 0 then None
      else begin
        if !best <> t.cur then begin
          t.switches <- t.switches + 1;
          t.cur <- !best;
          t.slices <- t.slices + 1
        end;
        (* never let a turn cross the next change point: both engines then
           first observe the crossing at the same block boundary, keeping
           redraw times engine-invariant *)
        Some
          (harts.(!best), min (m.Machine.total_insns + prio_quantum) t.next_change)
      end

(** Arm the scheduler on its machine with a fresh draw stream, resetting
    all decision state (so the same seed always replays the same
    schedule).  When [policy] is omitted it is drawn from the stream:
    1-in-4 priorities, else slices. *)
let arm ?policy t ~draw =
  t.draw <- draw;
  t.policy <-
    (match policy with
    | Some p -> p
    | None -> if draw 4 = 0 then Priorities else Slices);
  t.cur <- -1;
  t.slice_end <- 0;
  t.slices <- 0;
  t.switches <- 0;
  (match t.policy with
  | Slices -> ()
  | Priorities ->
      for i = 0 to Array.length t.prio - 1 do
        t.prio.(i) <- draw 1_000_000
      done;
      t.change_gap <- 2048 + draw 4096;
      t.next_change <- t.machine.Machine.total_insns + t.change_gap);
  Machine.set_sched t.machine (Some (hook t))

(** Restore the machine's built-in round-robin rotation. *)
let disarm t = Machine.set_sched t.machine None

let armed t = t.machine.Machine.sched <> None
let policy t = t.policy

let stats t =
  [
    ("slices", t.slices);
    ("switches", t.switches);
  ]
