(** Fuzzer-controlled multi-hart interleaving scheduler: seeded
    fuzzer-chosen preemption points behind the public [Machine.set_sched]
    hook, so the schedule becomes part of the fuzzer's input.  Every
    decision is a pure function of the draw stream and engine-invariant
    architectural progress, so a (policy, seed) pair replays the same
    interleaving on both engines and across processes. *)

type policy =
  | Slices  (** random runnable hart for a budgeted 16..512-insn slice *)
  | Priorities
      (** PCT-style: highest-priority runnable hart, random priority
          redraws at seeded change points *)

val policy_name : policy -> string

type t

val create : Embsan_emu.Machine.t -> t

(** Arm the scheduler on its machine with a fresh draw stream ([draw n]
    must be uniform in [0, n)), resetting all decision state so equal
    streams replay equal schedules.  When [policy] is omitted it is drawn
    from the stream (1-in-4 priorities). *)
val arm : ?policy:policy -> t -> draw:(int -> int) -> unit

(** Restore the machine's built-in round-robin rotation. *)
val disarm : t -> unit

val armed : t -> bool
val policy : t -> policy

(** [("slices", n); ("switches", n)]. *)
val stats : t -> (string * int) list
