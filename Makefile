.PHONY: all build test bench-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Fast end-to-end smoke of the bench pipeline: wall-clock micro-benchmarks
# plus the execution-engine throughput bench (writes BENCH_emu.json).
bench-smoke: build
	./_build/default/bench/main.exe bechamel --execs 200
	./_build/default/bench/main.exe emu

check: build test bench-smoke

clean:
	dune clean
