.PHONY: all build test bench-smoke check check-all check-diff check-snap \
	check-modes check-orch check-toggle check-sched check-race \
	check-rehost clean

all: build

build:
	dune build

test:
	dune runtest

# Fast end-to-end smoke of the bench pipeline: wall-clock micro-benchmarks
# plus the execution-engine throughput bench (writes BENCH_emu.json).
bench-smoke: build
	./_build/default/bench/main.exe bechamel --execs 200
	./_build/default/bench/main.exe emu
	./_build/default/bench/main.exe orch

# Bounded differential-oracle run over the dual execution engines (fixed
# seed, small exec budget): fast-vs-baseline, probe transparency,
# flush-anytime, subscription churn and toggle storm on random programs
# per arch flavor.  Exits non-zero on any divergence.  `embsan_cli check`
# with the default --execs 1000 is the full campaign.
check-diff: build
	./_build/default/bin/embsan_cli.exe check --seed 1 --execs 250

# Restore-transparency oracle on a bounded seeded campaign: snapshot /
# run / restore must be architecturally invisible under all four
# engine/probe configurations (250 programs x 3 arch flavors).
check-snap: build
	./_build/default/bin/embsan_cli.exe check --oracle restore-transparency \
	  --seed 1 --execs 250

# Mode-agreement oracle on a bounded seeded campaign: the same firmware
# and syscall sequence under EmbSan-C (compile-time callouts) and
# EmbSan-D (translation-time probes) must yield the same unique report
# set (250 programs x 3 arch flavors).
check-modes: build
	./_build/default/bin/embsan_cli.exe check --oracle mode-agreement \
	  --seed 1 --execs 250

# Toggle-storm oracle on a bounded seeded campaign: random run-time
# toggling of probe subscriptions, dirty tracking, cmplog and superblock
# formation must be architecturally invisible AND translation-flush-free
# (the retranslation-free property; flushes_invalidate must stay 0).
check-toggle: build
	./_build/default/bin/embsan_cli.exe check --oracle toggle-storm \
	  --oracle subscription-churn --seed 1 --execs 250

# Sched-transparency oracle on a bounded seeded campaign: a two-hart
# machine driven by a fuzzer-chosen schedule (identical draw streams)
# must produce the same interleaving on the Fast and Baseline engines
# (250 programs x 3 arch flavors = 750 seeded programs).
check-sched: build
	./_build/default/bin/embsan_cli.exe check --oracle sched-transparency \
	  --seed 1 --execs 250

# Race-detection bench with ratio guards: on the race-suite firmware,
# fuzzed schedules must find strictly more of the seeded races than the
# fixed round-robin rotation, and ftrace's happens-before tracking must
# find at least as many as KCSAN's sampled watchpoints.  Writes
# BENCH_race.json; exits non-zero on a guard violation.
check-race: build
	./_build/default/bench/main.exe race

# Orchestrator smoke: a short 2-worker campaign over one RTOS image with
# frontier exchange and per-epoch telemetry.  Exercises the multi-domain
# path end-to-end (worker boot, epoch barrier, merge, global triage).
check-orch: build
	./_build/default/bin/embsan_cli.exe campaign OpenHarmony-stm32f407 \
	  --jobs 2 --execs 400 --seed 3 --exchange 100 --telemetry

# Rehost-transparency oracle on a bounded seeded campaign (250 programs
# x 3 arch flavors = 750 seeded programs): with the model-free rehosting
# layer armed on both engines — memoized MMIO responses plus
# fuzzer-scheduled interrupt injection — Fast and Baseline must stay in
# lockstep.  Then the rehosting bench with its A/B and throughput ratio
# guards (writes BENCH_rehost.json; exits non-zero on a violation).
check-rehost: build
	./_build/default/bin/embsan_cli.exe check --oracle rehost-transparency \
	  --seed 1 --execs 250
	./_build/default/bench/main.exe rehost

check: build test bench-smoke check-diff check-snap check-modes check-toggle \
	check-sched check-race check-orch check-rehost

# Umbrella over every check-* target (what CI runs, one job per target).
check-all: check

clean:
	dune clean
