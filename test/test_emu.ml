(* Tests for the emulator: execution semantics, devices, probes, multi-hart
   scheduling, stalls and coverage. *)

open Embsan_isa
open Embsan_emu

let assemble_and_load ?(arch = Arch.Arm_ev) ?(harts = 2) units =
  let img = Asm.assemble ~arch ~text_base:0x1_0000 ~entry:"main" units in
  let m = Machine.create ~harts ~arch () in
  Machine.load_image m img;
  Machine.boot m;
  (m, img)

let unit_ text data = { Asm.unit_name = "t"; text; data }

let check_stop = Alcotest.testable Machine.pp_stop ( = )

let run_halt_code () =
  let open Asm in
  let m, _ = assemble_and_load [ unit_ [ Label "main"; li Reg.a0 42; halt ] [] ] in
  Alcotest.check check_stop "halt 42" (Machine.Halted 42) (Machine.run m ~max_insns:100)

let arithmetic_program () =
  (* compute 10! iteratively, store to a global, halt with low byte *)
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.t0 1 (* acc *);
      li Reg.t1 1 (* i *);
      li Reg.t2 11;
      Label "loop";
      Ins (Alu (Mul, Reg.t0, Reg.t0, Reg.t1));
      addi Reg.t1 Reg.t1 1;
      bltu Reg.t1 Reg.t2 "loop";
      la Reg.t3 "result";
      store W32 Reg.t3 Reg.t0 0;
      mv Reg.a0 Reg.t0;
      halt;
    ]
  in
  let m, img = assemble_and_load [ unit_ text [ Label "result"; Words [ 0 ] ] ] in
  (match Machine.run m ~max_insns:1000 with
  | Machine.Halted _ -> ()
  | s -> Alcotest.failf "unexpected stop %a" Machine.pp_stop s);
  let result_addr = Image.symbol_addr_exn img "result" in
  Alcotest.(check int) "10! stored" 3628800
    (Machine.read_mem m ~addr:result_addr ~width:4)

let uart_console () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.t0 Devices.uart_base;
      li Reg.t1 (Char.code 'h');
      store W8 Reg.t0 Reg.t1 0;
      li Reg.t1 (Char.code 'i');
      store W8 Reg.t0 Reg.t1 0;
      halt;
    ]
  in
  let m, _ = assemble_and_load [ unit_ text [] ] in
  ignore (Machine.run m ~max_insns:100);
  Alcotest.(check string) "console" "hi" (Machine.console_output m)

let power_device_halts () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.t0 Devices.power_base;
      li Reg.t1 7;
      store W32 Reg.t0 Reg.t1 0;
      halt;
    ]
  in
  let m, _ = assemble_and_load [ unit_ text [] ] in
  Alcotest.check check_stop "power code" (Machine.Halted 7) (Machine.run m ~max_insns:100)

let null_deref_faults () =
  let open Asm in
  let text = [ Label "main"; li Reg.t0 0; load W32 Reg.t1 Reg.t0 4; halt ] in
  let m, _ = assemble_and_load [ unit_ text [] ] in
  match Machine.run m ~max_insns:100 with
  | Machine.Fault (acc, reason) ->
      Alcotest.(check int) "addr" 4 acc.addr;
      Alcotest.(check string) "reason" "null pointer dereference" reason
  | s -> Alcotest.failf "expected fault, got %a" Machine.pp_stop s

let oob_ram_faults () =
  let open Asm in
  let text = [ Label "main"; li Reg.t0 0x7FFF_0000; store W32 Reg.t0 Reg.t0 0; halt ] in
  let m, _ = assemble_and_load [ unit_ text [] ] in
  match Machine.run m ~max_insns:100 with
  | Machine.Fault (acc, _) -> Alcotest.(check bool) "is write" true acc.is_write
  | s -> Alcotest.failf "expected fault, got %a" Machine.pp_stop s

let unhandled_trap_stops () =
  let open Asm in
  let m, _ = assemble_and_load [ unit_ [ Label "main"; trap 99; halt ] [] ] in
  match Machine.run m ~max_insns:100 with
  | Machine.Unhandled_trap { num = 99; _ } -> ()
  | s -> Alcotest.failf "expected unhandled trap, got %a" Machine.pp_stop s

let trap_handler_dispatch () =
  let open Asm in
  let m, _ =
    assemble_and_load
      [ unit_ [ Label "main"; li Reg.a0 5; trap 3; mv Reg.a0 Reg.a0; halt ] [] ]
  in
  let seen = ref 0 in
  Machine.set_trap_handler m 3 (fun _m cpu ->
      seen := Cpu.get cpu Reg.a0;
      Cpu.set cpu Reg.a0 99);
  Alcotest.check check_stop "halts with handler retval" (Machine.Halted 99)
    (Machine.run m ~max_insns:100);
  Alcotest.(check int) "handler saw arg" 5 !seen

let mem_probe_events () =
  let open Asm in
  let text =
    [
      Label "main";
      la Reg.t0 "buf";
      li Reg.t1 0xAB;
      store W8 Reg.t0 Reg.t1 2;
      load W32 Reg.t2 Reg.t0 0;
      halt;
    ]
  in
  let m, img = assemble_and_load [ unit_ text [ Label "buf"; Words [ 0; 0 ] ] ] in
  let events = ref [] in
  Probe.on_mem m.probes (fun ev -> events := ev :: !events);
  ignore (Machine.run m ~max_insns:100);
  let buf = Image.symbol_addr_exn img "buf" in
  match List.rev !events with
  | [ st; ld ] ->
      Alcotest.(check bool) "store first" true st.is_write;
      Alcotest.(check int) "store addr" (buf + 2) st.addr;
      Alcotest.(check int) "store size" 1 st.size;
      Alcotest.(check int) "store value" 0xAB st.value;
      Alcotest.(check bool) "load" false ld.is_write;
      Alcotest.(check int) "load addr" buf ld.addr;
      Alcotest.(check int) "load size" 4 ld.size
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let probe_subscription_patches_live_blocks () =
  (* run once with no probes (blocks get cached with unarmed sites), then
     subscribe and re-run: events must appear WITHOUT any flush or
     retranslation -- the cached blocks' patchable sites observe the new
     subscriber table *)
  let open Asm in
  let text =
    [ Label "main"; la Reg.t0 "buf"; load W32 Reg.t1 Reg.t0 0; halt ]
  in
  let m, _ = assemble_and_load [ unit_ text [ Label "buf"; Words [ 1 ] ] ] in
  ignore (Machine.run m ~max_insns:100);
  let translations0 = m.stats.translations in
  let count = ref 0 in
  Probe.on_mem m.probes (fun _ -> incr count);
  Machine.boot m;
  ignore (Machine.run m ~max_insns:100);
  Alcotest.(check int) "event after subscription" 1 !count;
  Alcotest.(check int) "no flush" 0 m.stats.flushes_invalidate;
  Alcotest.(check int) "no retranslation" translations0 m.stats.translations

let probe_unsubscribe_idempotent () =
  (* unsubscribing detaches exactly the handle's subscriber (others keep
     firing, in order) and is idempotent *)
  let open Asm in
  let text =
    [ Label "main"; la Reg.t0 "buf"; load W32 Reg.t1 Reg.t0 0; halt ]
  in
  let m, _ = assemble_and_load [ unit_ text [ Label "buf"; Words [ 1 ] ] ] in
  let order = ref [] in
  let _s1 = Probe.subscribe_mem m.probes (fun _ -> order := 1 :: !order) in
  let s2 = Probe.subscribe_mem m.probes (fun _ -> order := 2 :: !order) in
  let _s3 = Probe.subscribe_mem m.probes (fun _ -> order := 3 :: !order) in
  ignore (Machine.run m ~max_insns:100);
  Alcotest.(check (list int)) "all fire in order" [ 1; 2; 3 ] (List.rev !order);
  Probe.unsubscribe s2;
  Probe.unsubscribe s2;
  order := [];
  Machine.boot m;
  ignore (Machine.run m ~max_insns:100);
  Alcotest.(check (list int)) "s2 detached, order kept" [ 1; 3 ]
    (List.rev !order);
  Alcotest.(check int) "zero flushes throughout" 0 m.stats.flushes_invalidate

let call_ret_probes () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.a0 5;
      call "callee";
      halt;
      Label "callee";
      addi Reg.a0 Reg.a0 1;
      ret;
    ]
  in
  let m, img = assemble_and_load [ unit_ text [] ] in
  let calls = ref [] and rets = ref [] in
  Probe.on_call m.probes (fun ev -> calls := ev :: !calls);
  Probe.on_ret m.probes (fun ev -> rets := ev :: !rets);
  ignore (Machine.run m ~max_insns:100);
  let callee = Image.symbol_addr_exn img "callee" in
  (match !calls with
  | [ c ] -> Alcotest.(check int) "call target" callee c.c_target
  | _ -> Alcotest.fail "expected one call event");
  match !rets with
  | [ r ] -> Alcotest.(check int) "retval" 6 r.r_retval
  | _ -> Alcotest.fail "expected one ret event"

let multi_hart_interleaving () =
  (* hart0 spins incrementing a counter; hart1 halts the machine after it
     observes the counter above a threshold -> proves both harts progress *)
  let open Asm in
  let text =
    [
      Label "main";
      la Reg.t0 "counter";
      Label "spin";
      load W32 Reg.t1 Reg.t0 0;
      addi Reg.t1 Reg.t1 1;
      store W32 Reg.t0 Reg.t1 0;
      j "spin";
      Label "watcher";
      la Reg.t0 "counter";
      Label "watch_loop";
      load W32 Reg.t1 Reg.t0 0;
      li Reg.t2 50;
      bltu Reg.t1 Reg.t2 "watch_loop";
      li Reg.a0 1;
      halt;
    ]
  in
  let m, img = assemble_and_load [ unit_ text [ Label "counter"; Words [ 0 ] ] ] in
  Machine.start_hart m 1 ~pc:(Image.symbol_addr_exn img "watcher")
    ~sp:(Machine.ram_base m + Machine.ram_size m - 4096);
  Alcotest.check check_stop "watcher halts" (Machine.Halted 1)
    (Machine.run m ~max_insns:100_000)

let amo_atomicity () =
  (* two harts each amo.add 1000 times; final value must be exactly 2000 *)
  let open Asm in
  let worker label =
    [
      Asm.Label label;
      la Reg.t0 "counter";
      li Reg.t1 0;
      li Reg.t2 1000;
      li Reg.t3 1;
      Label (label ^ "_loop");
      Ins (Amo (Amo_add, Reg.t4, Reg.t0, Reg.t3));
      addi Reg.t1 Reg.t1 1;
      bltu Reg.t1 Reg.t2 (label ^ "_loop");
      la Reg.s0 "done_flags";
      Ins (Amo (Amo_add, Reg.t4, Reg.s0, Reg.t3));
      Label (label ^ "_wait");
      load W32 Reg.t4 Reg.s0 0;
      li Reg.s1 2;
      bltu Reg.t4 Reg.s1 (label ^ "_wait");
      la Reg.t0 "counter";
      load W32 Reg.a0 Reg.t0 0;
      halt;
    ]
  in
  let text = (Asm.Label "main" :: Asm.j "w0" :: worker "w0") @ worker "w1" in
  let m, img =
    assemble_and_load
      [ unit_ text [ Label "counter"; Words [ 0 ]; Label "done_flags"; Words [ 0 ] ] ]
  in
  Machine.start_hart m 1 ~pc:(Image.symbol_addr_exn img "w1")
    ~sp:(Machine.ram_base m + Machine.ram_size m - 4096);
  Alcotest.check check_stop "sum exact" (Machine.Halted 2000)
    (Machine.run m ~max_insns:1_000_000)

let stall_and_retry () =
  (* a probe stalls the first store of hart0; verify hart1 runs during the
     stall window and the store still completes afterwards *)
  let open Asm in
  let text =
    [
      Label "main";
      la Reg.t0 "cell";
      li Reg.t1 123;
      store W32 Reg.t0 Reg.t1 0;
      halt;
      Label "side";
      la Reg.t0 "side_cell";
      li Reg.t1 1;
      store W32 Reg.t0 Reg.t1 0;
      Label "side_spin";
      j "side_spin";
    ]
  in
  let m, img =
    assemble_and_load
      [ unit_ text [ Label "cell"; Words [ 0 ]; Label "side_cell"; Words [ 0 ] ] ]
  in
  Machine.start_hart m 1 ~pc:(Image.symbol_addr_exn img "side")
    ~sp:(Machine.ram_base m + Machine.ram_size m - 4096);
  let cell = Image.symbol_addr_exn img "cell" in
  let side_cell = Image.symbol_addr_exn img "side_cell" in
  let stalled = ref false in
  let side_value_during_stall = ref (-1) in
  Probe.on_mem m.probes (fun ev ->
      if ev.addr = cell && ev.is_write && not !stalled then begin
        stalled := true;
        m.harts.(0).stall_until <- m.total_insns + 200;
        raise (Fault.Retry_at ev.pc)
      end
      else if ev.addr = cell && ev.is_write then
        side_value_during_stall := Machine.read_mem m ~addr:side_cell ~width:4);
  ignore (Machine.run m ~max_insns:10_000);
  Alcotest.(check bool) "stall happened" true !stalled;
  Alcotest.(check int) "hart1 progressed during stall" 1 !side_value_during_stall;
  Alcotest.(check int) "store completed" 123 (Machine.read_mem m ~addr:cell ~width:4)

let cost_model_counts () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.t0 0 (* alu *);
      la Reg.t1 "buf" (* alu (li) *);
      load W32 Reg.t2 Reg.t1 0 (* mem *);
      halt (* alu *);
    ]
  in
  let m, _ = assemble_and_load [ unit_ text [ Label "buf"; Words [ 0 ] ] ] in
  ignore (Machine.run m ~max_insns:100);
  Alcotest.(check int) "insns" 4 m.total_insns;
  Alcotest.(check int) "cost"
    ((3 * Cost_model.alu_insn) + Cost_model.mem_insn)
    m.cost;
  Machine.add_external_cost m 500;
  Alcotest.(check int) "total cost" (m.cost + 500) (Machine.total_cost m)

let mailbox_protocol () =
  let open Asm in
  (* guest: signal ready; then loop: wait for request, return nr + arg0 + 1 *)
  let mb = Devices.mailbox_base in
  let text =
    [
      Label "main";
      li Reg.t0 mb;
      li Reg.t1 1;
      store W32 Reg.t0 Reg.t1 0x28 (* READY *);
      Label "serve";
      load W32 Reg.t1 Reg.t0 0x00;
      beqz Reg.t1 "serve";
      load W32 Reg.t2 Reg.t0 0x04 (* NR *);
      load W32 Reg.t3 Reg.t0 0x08 (* ARG0 *);
      Ins (Alu (Add, Reg.t2, Reg.t2, Reg.t3));
      addi Reg.t2 Reg.t2 1;
      store W32 Reg.t0 Reg.t2 0x20 (* RET *);
      li Reg.t1 1;
      store W32 Reg.t0 Reg.t1 0x24 (* COMPLETE *);
      j "serve";
    ]
  in
  let m, _ = assemble_and_load [ unit_ text [] ] in
  (match Machine.run_until_ready m ~max_insns:10_000 with
  | None -> ()
  | Some s -> Alcotest.failf "boot stopped: %a" Machine.pp_stop s);
  Alcotest.(check bool) "ready" true (Devices.mailbox_ready m.mailbox);
  Devices.mailbox_push m.mailbox ~nr:10 ~args:[| 5 |];
  Devices.mailbox_push m.mailbox ~nr:20 ~args:[| 7 |];
  (match Machine.run_until_mailbox_idle m ~max_insns:100_000 with
  | None -> ()
  | Some s -> Alcotest.failf "serve stopped: %a" Machine.pp_stop s);
  match Devices.mailbox_completions m.mailbox with
  | [ a; b ] ->
      Alcotest.(check int) "first ret" 16 a.ret;
      Alcotest.(check int) "second ret" 28 b.ret
  | l -> Alcotest.failf "expected 2 completions, got %d" (List.length l)

let coverage_tcg () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.t0 0;
      li Reg.t1 5;
      Label "loop";
      addi Reg.t0 Reg.t0 1;
      bltu Reg.t0 Reg.t1 "loop";
      halt;
    ]
  in
  let m, _ = assemble_and_load [ unit_ text [] ] in
  let cov = Coverage.create ~harts:2 in
  Coverage.attach_tcg cov m;
  ignore (Machine.run m ~max_insns:1000);
  Alcotest.(check bool) "blocks seen" true (cov.blocks_seen > 3);
  Alcotest.(check bool) "edges recorded" true (Coverage.edge_count cov > 0);
  let sig1 = Coverage.signature cov in
  Coverage.reset_edges cov;
  Alcotest.(check int) "reset" 0 (Coverage.edge_count cov);
  Machine.boot m;
  ignore (Machine.run m ~max_insns:1000);
  Alcotest.(check bool) "deterministic" true (Coverage.signature cov = sig1)

let coverage_kcov () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.a0 0x1234;
      trap Coverage.kcov_trap;
      li Reg.a0 0x5678;
      trap Coverage.kcov_trap;
      halt;
    ]
  in
  let m, _ = assemble_and_load [ unit_ text [] ] in
  let cov = Coverage.create ~harts:2 in
  Coverage.attach_kcov cov m;
  ignore (Machine.run m ~max_insns:1000);
  Alcotest.(check int) "two kcov records" 2 cov.blocks_seen

let deadlock_detected () =
  let open Asm in
  let m, _ = assemble_and_load [ unit_ [ Label "main"; Ins Nop; halt ] [] ] in
  (* park hart 0 before it runs *)
  m.harts.(0).status <- Cpu.Parked;
  Alcotest.check check_stop "deadlock" Machine.Deadlock (Machine.run m ~max_insns:100)

let budget_exhausted () =
  let open Asm in
  let m, _ = assemble_and_load [ unit_ [ Label "main"; Label "spin"; j "spin" ] [] ] in
  Alcotest.check check_stop "budget" Machine.Budget_exhausted
    (Machine.run m ~max_insns:100)

let hypercall_abi () =
  (* check <-> decode_check are inverses over the callout range *)
  List.iter
    (fun (is_write, size) ->
      let n = Hypercall.check ~is_write ~size in
      Alcotest.(check (option (pair bool int)))
        (Hypercall.name n)
        (Some (is_write, size))
        (Hypercall.decode_check n))
    [ (false, 1); (false, 2); (false, 4); (true, 1); (true, 2); (true, 4) ];
  Alcotest.(check (option (pair bool int))) "non-check" None
    (Hypercall.decode_check Hypercall.san_alloc);
  Alcotest.(check string) "named" "san_free" (Hypercall.name Hypercall.san_free)

let services_putc_and_exit () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.a0 (Char.code 'o');
      trap Hypercall.putc;
      li Reg.a0 (Char.code 'k');
      trap Hypercall.putc;
      li Reg.a0 3;
      trap Hypercall.exit_;
    ]
  in
  let m, _ = assemble_and_load [ unit_ text [] ] in
  Services.install m;
  Alcotest.check check_stop "exit code" (Machine.Halted 3)
    (Machine.run m ~max_insns:1000);
  Alcotest.(check string) "console" "ok" (Machine.console_output m)

let hart_start_service () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.a0 1;
      la Reg.a1 "side";
      li Reg.a2 0x300000;
      trap Hypercall.hart_start;
      Label "wait";
      la Reg.t0 "flag";
      load W32 Reg.t1 Reg.t0 0;
      beqz Reg.t1 "wait";
      li Reg.a0 1;
      halt;
      Label "side";
      trap Hypercall.current_hart;
      la Reg.t0 "flag";
      store W32 Reg.t0 Reg.a0 0;
      Label "spin";
      j "spin";
    ]
  in
  let m, _ = assemble_and_load [ unit_ text [ Label "flag"; Words [ 0 ] ] ] in
  Services.install m;
  Alcotest.check check_stop "completes" (Machine.Halted 1)
    (Machine.run m ~max_insns:100_000)

let trace_ring () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.a0 7;
      call "callee";
      halt;
      Label "callee";
      addi Reg.a0 Reg.a0 1;
      ret;
    ]
  in
  let m, img = assemble_and_load [ unit_ text [] ] in
  let tr = Trace.attach ~capacity:8 m in
  ignore (Machine.run m ~max_insns:1000);
  let evs = Trace.events tr in
  let callee = Image.symbol_addr_exn img "callee" in
  Alcotest.(check bool) "has call event" true
    (List.exists
       (function Trace.Call { ct_target; ct_args; _ } ->
           ct_target = callee && ct_args.(0) = 7
         | _ -> false)
       evs);
  Alcotest.(check bool) "has return event" true
    (List.exists
       (function Trace.Return { rt_retval; _ } -> rt_retval = 8 | _ -> false)
       evs)

let trace_ring_eviction () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.t0 0;
      li Reg.t1 20;
      Label "loop";
      addi Reg.t0 Reg.t0 1;
      bltu Reg.t0 Reg.t1 "loop";
      halt;
    ]
  in
  let m, _ = assemble_and_load [ unit_ text [] ] in
  let tr = Trace.attach ~capacity:4 m in
  ignore (Machine.run m ~max_insns:1000);
  Alcotest.(check int) "ring keeps capacity" 4 (List.length (Trace.events tr));
  Alcotest.(check bool) "total exceeds ring" true (Trace.total tr > 4)

(* --- Execution-engine overhaul tests ------------------------------------- *)

(* Architectural fingerprint of a machine: per-hart registers/pc/retired
   insns, global counters, and a RAM digest. *)
let fingerprint m =
  let hart (c : Cpu.t) =
    Printf.sprintf "hart%d pc=%d insns=%d regs=%s" c.id c.pc c.insns
      (String.concat "," (Array.to_list (Array.map string_of_int c.regs)))
  in
  let ram =
    Digest.to_hex
      (Digest.string
         (Machine.read_string m ~addr:(Machine.ram_base m)
            ~len:(Machine.ram_size m)))
  in
  Printf.sprintf "%s | total=%d cost=%d ram=%s"
    (String.concat " | " (Array.to_list (Array.map hart m.Machine.harts)))
    m.total_insns m.cost ram

let probe_registration_order () =
  let open Asm in
  let text =
    [ Label "main"; la Reg.t0 "buf"; store W32 Reg.t0 Reg.t0 0; halt ]
  in
  let make () = assemble_and_load [ unit_ text [ Label "buf"; Words [ 0 ] ] ] in
  (* mem probes fire in registration order, including through the
     multi-subscriber dispatch path *)
  let m, _ = make () in
  let order = ref [] in
  List.iter
    (fun tag -> Probe.on_mem m.probes (fun _ -> order := tag :: !order))
    [ 1; 2; 3 ];
  ignore (Machine.run m ~max_insns:100);
  Alcotest.(check (list int)) "mem fire order" [ 1; 2; 3 ] (List.rev !order);
  (* same for block probes (single store program runs 1 block) *)
  let m, _ = make () in
  let order = ref [] in
  List.iter
    (fun tag -> Probe.on_block m.probes (fun _ -> order := tag :: !order))
    [ 1; 2; 3; 4 ];
  ignore (Machine.run m ~max_insns:100);
  Alcotest.(check (list int))
    "block fire order" [ 1; 2; 3; 4 ]
    (List.filteri (fun i _ -> i < 4) (List.rev !order))

(* Loop program used by the engine tests: 10 iterations of load+store. *)
let loop_text =
  let open Asm in
  [
    Label "main";
    la Reg.t0 "buf";
    li Reg.t1 0;
    li Reg.t2 10;
    Label "loop";
    load W32 Reg.t3 Reg.t0 0;
    addi Reg.t3 Reg.t3 1;
    store W32 Reg.t0 Reg.t3 0;
    addi Reg.t1 Reg.t1 1;
    bltu Reg.t1 Reg.t2 "loop";
    load W32 Reg.a0 Reg.t0 0;
    halt;
  ]

let chained_blocks_observe_probe_patch () =
  (* run once with no probes so chained successor links form between the
     loop blocks; then subscribe a counting mem probe (site patch, no
     flush) and re-run: every access must be observed even through cached
     chain links, proving the patch reaches already-chained code with
     zero retranslation *)
  let m, _ = assemble_and_load [ unit_ loop_text [ Asm.Label "buf"; Asm.Words [ 0 ] ] ] in
  ignore (Machine.run m ~max_insns:1000);
  Alcotest.(check bool) "chains formed" true (m.stats.chained > 0);
  let translations0 = m.stats.translations in
  let count = ref 0 in
  Probe.on_mem m.probes (fun _ -> incr count);
  Machine.boot m;
  ignore (Machine.run m ~max_insns:1000);
  (* 10 iterations x (load + store) + final load = 21 accesses *)
  Alcotest.(check int) "all accesses observed through chains" 21 !count;
  Alcotest.(check int) "no flush on subscribe" 0 m.stats.flushes_invalidate;
  Alcotest.(check int) "no retranslation" translations0 m.stats.translations

let toggle_storm_is_flush_free () =
  (* the satellite regression: a storm of probe subscribe/unsubscribe,
     dirty-tracking and cmplog toggles (including no-op re-toggles) must
     leave the invalidation-flush counter at exactly 0, and the machine
     must still run correctly from its warm cache *)
  let m, _ = assemble_and_load [ unit_ loop_text [ Asm.Label "buf"; Asm.Words [ 0 ] ] ] in
  ignore (Machine.run m ~max_insns:1000);
  let translations0 = m.stats.translations in
  for _ = 1 to 50 do
    let s = Probe.subscribe_mem m.probes (fun _ -> ()) in
    Probe.unsubscribe s;
    Machine.set_dirty_tracking m true;
    Machine.set_dirty_tracking m true (* no-op toggle: must also be free *);
    Machine.set_dirty_tracking m false;
    Machine.set_dirty_tracking m false;
    Machine.set_cmplog m true;
    Machine.set_cmplog m false;
    Probe.clear m.probes
  done;
  Machine.boot m;
  (* buf persists across the re-run: 10 increments on top of the first
     run's 10 *)
  (match Machine.run m ~max_insns:1000 with
  | Machine.Halted 20 -> ()
  | s -> Alcotest.failf "expected halted(20), got %a" Machine.pp_stop s);
  Alcotest.(check int) "zero invalidation flushes" 0
    m.stats.flushes_invalidate;
  Alcotest.(check int) "zero retranslations" translations0
    m.stats.translations

let chain_invalidation_on_flush () =
  (* cache a halt block (and chains to it), then patch its Li immediate in
     RAM: without a flush the stale translation must still be running
     (that is what a code cache means); after flush_tcg the patched code
     must take effect, proving both the hashtable and chain links died *)
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.t1 0;
      li Reg.t2 3;
      Label "loop";
      addi Reg.t1 Reg.t1 1;
      bltu Reg.t1 Reg.t2 "loop";
      li Reg.a0 11;
      halt;
    ]
  in
  let m, img = assemble_and_load [ unit_ text [] ] in
  Alcotest.check check_stop "first run" (Machine.Halted 11)
    (Machine.run m ~max_insns:1000);
  let flushes0 = m.stats.flushes_invalidate in
  (* patch the "li a0, 11" immediate (bytes 4..7, little-endian on Arm_ev) *)
  let li_addr = Image.symbol_addr_exn img "main" + (4 * Insn.size) in
  Machine.write_mem m ~addr:(li_addr + 4) ~width:4 ~value:22;
  Machine.boot m;
  Alcotest.check check_stop "stale translation without flush"
    (Machine.Halted 11)
    (Machine.run m ~max_insns:1000);
  Machine.flush_tcg m;
  Alcotest.(check int) "invalidation flush counted" (flushes0 + 1)
    m.stats.flushes_invalidate;
  Alcotest.(check int) "image load counted apart" 1 m.stats.flushes_load;
  Machine.boot m;
  Alcotest.check check_stop "patched code after flush" (Machine.Halted 22)
    (Machine.run m ~max_insns:1000)

let engine_stats_counters () =
  let m, _ = assemble_and_load [ unit_ loop_text [ Asm.Label "buf"; Asm.Words [ 0 ] ] ] in
  ignore (Machine.run m ~max_insns:1000);
  Alcotest.(check bool) "translated some blocks" true (m.stats.translations > 0);
  Alcotest.(check bool) "loop chained" true (m.stats.chained > 0);
  Alcotest.(check bool) "chain rate positive" true
    (Engine_stats.chain_rate m.stats > 0.0);
  let translations0 = m.stats.translations in
  Machine.boot m;
  ignore (Machine.run m ~max_insns:1000);
  Alcotest.(check int) "second run fully cached/chained" translations0
    m.stats.translations

(* The schema-versioned JSON block round-trips every raw counter --
   chaining, the split flush counters and the superblock family -- both
   on a synthetic record and on counters taken from a live machine. *)
let engine_stats_json_roundtrip () =
  let s = Engine_stats.create () in
  s.translations <- 3;
  s.cache_hits <- 5;
  s.cache_misses <- 7;
  s.chained <- 11;
  s.flushes_load <- 13;
  s.flushes_invalidate <- 17;
  s.superblocks_formed <- 19;
  s.super_execs <- 23;
  s.super_exits <- 29;
  s.super_transfers <- 31;
  s.rehost_reads <- 37;
  s.irq_injected <- 41;
  Alcotest.(check bool) "synthetic round-trip" true
    (Engine_stats.of_json (Engine_stats.to_json s) = s);
  let m, _ = assemble_and_load [ unit_ loop_text [ Asm.Label "buf"; Asm.Words [ 0 ] ] ] in
  ignore (Machine.run m ~max_insns:1000);
  Alcotest.(check bool) "live-machine round-trip" true
    (Engine_stats.of_json (Engine_stats.to_json m.stats) = m.stats);
  let tagged =
    Printf.sprintf "\"schema\": \"%s\"" Engine_stats.schema
  in
  let json = Engine_stats.to_json m.stats in
  Alcotest.(check bool) "schema tag emitted" true
    (String.length json >= String.length tagged
    && String.sub json 1 (String.length tagged) = tagged);
  (match
     Engine_stats.of_json
       (Printf.sprintf "{\"schema\": \"embsan-engine-stats/0\", %s"
          (String.sub json (String.length tagged + 3)
             (String.length json - String.length tagged - 3)))
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "schema mismatch accepted")

(* A 500-iteration self-loop: hot enough that the chain head fuses. *)
let hot_loop_text =
  let open Asm in
  [
    Label "main";
    la Reg.t0 "buf";
    li Reg.t1 0;
    li Reg.t2 500;
    Label "loop";
    load W32 Reg.t3 Reg.t0 0;
    addi Reg.t3 Reg.t3 1;
    store W32 Reg.t0 Reg.t3 0;
    addi Reg.t1 Reg.t1 1;
    bltu Reg.t1 Reg.t2 "loop";
    load W32 Reg.a0 Reg.t0 0;
    halt;
  ]

let superblock_formation_and_transparency () =
  (* hot-chain fusion must be architecturally invisible: same stop, same
     fingerprint, same probe-event stream as the unfused run -- while the
     fused run actually forms and executes superblocks *)
  let run ~super =
    let m, _ =
      assemble_and_load ~harts:1
        [ unit_ hot_loop_text [ Asm.Label "buf"; Asm.Words [ 0 ] ] ]
    in
    Machine.set_superblocks m super;
    Machine.set_super_threshold m 4;
    let blocks = ref 0 in
    Probe.on_block m.probes (fun _ -> incr blocks);
    let stop = Machine.run m ~max_insns:100_000 in
    (stop, fingerprint m, !blocks, m.stats)
  in
  let stop_off, fp_off, blocks_off, _ = run ~super:false in
  let stop_on, fp_on, blocks_on, stats_on = run ~super:true in
  Alcotest.check check_stop "same stop" stop_off stop_on;
  Alcotest.check check_stop "halted with count" (Machine.Halted 500) stop_on;
  Alcotest.(check string) "identical architectural state" fp_off fp_on;
  Alcotest.(check int) "identical block-probe stream" blocks_off blocks_on;
  Alcotest.(check bool) "superblocks formed" true
    (stats_on.superblocks_formed > 0);
  Alcotest.(check bool) "superblocks executed" true (stats_on.super_execs > 0);
  Alcotest.(check bool) "boundary transfers counted" true
    (stats_on.super_transfers > 0)

let superblock_toggle_is_flush_free () =
  (* toggling fusion on/off mid-run is an O(1) patch like everything else *)
  let m, _ =
    assemble_and_load ~harts:1
      [ unit_ hot_loop_text [ Asm.Label "buf"; Asm.Words [ 0 ] ] ]
  in
  Machine.set_super_threshold m 4;
  for _ = 1 to 10 do
    Machine.set_superblocks m false;
    Machine.set_superblocks m true
  done;
  (match Machine.run m ~max_insns:100_000 with
  | Machine.Halted 500 -> ()
  | s -> Alcotest.failf "expected halted(500), got %a" Machine.pp_stop s);
  Alcotest.(check int) "zero invalidation flushes" 0
    m.stats.flushes_invalidate

let cmplog_compare_coverage () =
  (* branch/compare sites record operand triples when enabled: the magic
     constant of an equality guard must land in the operand dictionary,
     and the per-window features must be deterministic across identical
     re-runs *)
  let open Asm in
  let magic = 0xDEAD_BEE in
  let text =
    [
      Label "main";
      la Reg.t0 "input";
      load W32 Reg.t1 Reg.t0 0;
      (* MiniC-style equality synthesis: xor against the magic, sltu 1 *)
      Ins (Alui (Xor, Reg.t2, Reg.t1, magic));
      Ins (Alui (Sltu, Reg.t2, Reg.t2, 1));
      (* and a direct reg-reg compare against the same constant *)
      li Reg.t3 magic;
      beq Reg.t1 Reg.t3 "win";
      li Reg.a0 0;
      halt;
      Label "win";
      li Reg.a0 1;
      halt;
    ]
  in
  let data = [ Label "input"; Words [ 3 ] ] in
  let m, _ = assemble_and_load ~harts:1 [ unit_ text data ] in
  Machine.set_cmplog m true;
  Alcotest.check check_stop "guard not taken" (Machine.Halted 0)
    (Machine.run m ~max_insns:1000);
  let dict = Array.to_list (Cmplog.dict_values m.cmplog) in
  Alcotest.(check bool) "magic in dictionary" true (List.mem magic dict);
  let feats = Cmplog.features m.cmplog in
  Alcotest.(check bool) "features recorded" true (feats <> []);
  List.iter
    (fun (i, b) ->
      Alcotest.(check bool) "disjoint from edge space" true
        (i >= Cmplog.feature_base);
      Alcotest.(check int) "presence bucket" 1 b)
    feats;
  (* new window, same execution -> identical features; dict persists *)
  Cmplog.reset m.cmplog;
  Alcotest.(check (list (pair int int))) "window cleared" []
    (Cmplog.features m.cmplog);
  Machine.boot m;
  ignore (Machine.run m ~max_insns:1000);
  Alcotest.(check (list (pair int int))) "deterministic features" feats
    (Cmplog.features m.cmplog);
  Alcotest.(check bool) "dict persists across windows" true
    (List.mem magic (Array.to_list (Cmplog.dict_values m.cmplog)));
  Alcotest.(check int) "no flush from cmplog" 0 m.stats.flushes_invalidate;
  (* sites stay silent when disabled *)
  let m2, _ = assemble_and_load ~harts:1 [ unit_ text data ] in
  ignore (Machine.run m2 ~max_insns:1000);
  Alcotest.(check int) "disabled records nothing" 0 (Cmplog.dict_size m2.cmplog)

let cmplog_agreement_gradient () =
  Alcotest.(check int) "equal" 4 (Cmplog.agreement 0xDEAD_BEE 0xDEAD_BEE);
  Alcotest.(check int) "three low bytes" 3
    (Cmplog.agreement 0x11AD_BEEF 0xDEAD_BEEF);
  Alcotest.(check int) "two low bytes" 2
    (Cmplog.agreement 0x1111_BEEF 0xDEAD_BEEF);
  Alcotest.(check int) "one low byte" 1
    (Cmplog.agreement 0x1111_11EF 0xDEAD_BEEF);
  Alcotest.(check int) "none" 0 (Cmplog.agreement 1 2)

(* A deterministic two-hart workload mixing AMO, calls/rets, loads/stores
   and branches; both harts increment a shared counter 200 times and halt
   with its final value once both are done. *)
let differential_worker label =
  let open Asm in
  [
    Asm.Label label;
    la Reg.t0 "counter";
    li Reg.t1 0;
    li Reg.t2 200;
    li Reg.t3 1;
    Label (label ^ "_loop");
    Ins (Amo (Amo_add, Reg.t4, Reg.t0, Reg.t3));
    mv Reg.a0 Reg.t4;
    call "mix";
    addi Reg.t1 Reg.t1 1;
    bltu Reg.t1 Reg.t2 (label ^ "_loop");
    Label (label ^ "_wait");
    load W32 Reg.t4 Reg.t0 0;
    li Reg.s0 400;
    bltu Reg.t4 Reg.s0 (label ^ "_wait");
    load W32 Reg.a0 Reg.t0 0;
    halt;
  ]

let differential_text =
  let open Asm in
  (Asm.Label "main" :: Asm.j "w0" :: differential_worker "w0")
  @ differential_worker "w1"
  @ [
      Label "mix";
      la Reg.s1 "scratch";
      store W32 Reg.s1 Reg.a0 0;
      load W16 Reg.a0 Reg.s1 0;
      store W8 Reg.s1 Reg.a0 4;
      load W8 ~signed:true Reg.a0 Reg.s1 4;
      addi Reg.a0 Reg.a0 3;
      ret;
    ]

let differential_data =
  [ Asm.Label "counter"; Asm.Words [ 0 ]; Asm.Label "scratch"; Asm.Words [ 0; 0 ] ]

let run_differential ~probed =
  let m, img = assemble_and_load [ unit_ differential_text differential_data ] in
  Machine.start_hart m 1 ~pc:(Image.symbol_addr_exn img "w1")
    ~sp:(Machine.ram_base m + Machine.ram_size m - 4096);
  if probed then begin
    Probe.on_mem m.probes (fun _ -> ());
    Probe.on_call m.probes (fun _ -> ());
    Probe.on_ret m.probes (fun _ -> ());
    Probe.on_block m.probes (fun _ -> ())
  end;
  let stop = Machine.run m ~max_insns:1_000_000 in
  (stop, fingerprint m)

let differential_probe_semantics () =
  (* probed (slow path, events constructed and dispatched) and unprobed
     (allocation-free fast path) execution must be architecturally
     identical: same stop, registers, pcs, RAM, retired-insn counts and
     modeled cost *)
  let stop_off, fp_off = run_differential ~probed:false in
  let stop_on, fp_on = run_differential ~probed:true in
  Alcotest.check check_stop "same stop reason" stop_off stop_on;
  Alcotest.(check string) "identical architectural state" fp_off fp_on;
  match stop_off with
  | Machine.Halted 400 -> ()
  | s -> Alcotest.failf "expected halted(400), got %a" Machine.pp_stop s

let fast_baseline_equivalence () =
  (* the chained/batched fast engine and the per-instruction baseline
     interpreter must retire identical architectural state, including the
     exact total_insns/cost at an exceptional (halt) exit and MMIO side
     effects *)
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.t0 Devices.uart_base;
      li Reg.t1 (Char.code 'x');
      store W8 Reg.t0 Reg.t1 0;
      la Reg.t0 "buf";
      li Reg.t1 0;
      li Reg.t2 25;
      Label "loop";
      Ins (Alu (Mul, Reg.t3, Reg.t1, Reg.t1));
      store W32 Reg.t0 Reg.t3 0;
      load W16 Reg.t4 Reg.t0 0;
      call "mix";
      Ins (Amo (Amo_add, Reg.s2, Reg.t0, Reg.t4));
      addi Reg.t1 Reg.t1 1;
      bltu Reg.t1 Reg.t2 "loop";
      trap 7;
      load W32 Reg.a0 Reg.t0 0;
      halt;
      Label "mix";
      addi Reg.t4 Reg.t4 13;
      ret;
    ]
  in
  let data = [ Label "buf"; Words [ 0; 0 ] ] in
  let run_engine engine =
    let m, _ = assemble_and_load ~harts:1 [ unit_ text data ] in
    Machine.set_engine m engine;
    Machine.set_trap_handler m 7 (fun _m cpu ->
        Cpu.set cpu Reg.s1 (Cpu.get cpu Reg.t1));
    let stop = Machine.run m ~max_insns:100_000 in
    (stop, fingerprint m, Machine.console_output m)
  in
  let stop_f, fp_f, con_f = run_engine Machine.Fast in
  let stop_b, fp_b, con_b = run_engine Machine.Baseline in
  Alcotest.check check_stop "same stop" stop_b stop_f;
  Alcotest.(check string) "same console" con_b con_f;
  Alcotest.(check string) "identical architectural state" fp_b fp_f

(* --- Differential-harness regressions ------------------------------------ *)

(* One unit check per Ram.fault reason branch.  The straddle case (starts
   inside RAM, runs past the end) used to be misclassified as "unmapped
   address" because only the start address was compared to the limit. *)
let ram_fault_reasons () =
  let ram = Ram.create ~base:0x1_0000 ~size:0x1000 in
  let reason addr size =
    match Ram.check ram { hart = 0; pc = 0; addr; size; is_write = false } with
    | () -> "ok"
    | exception Fault.Memory_fault (_, r) -> r
  in
  Alcotest.(check string) "in bounds" "ok" (reason 0x1_0000 4);
  Alcotest.(check string) "null page" "null pointer dereference" (reason 0x4 4);
  Alcotest.(check string) "past end" "access beyond RAM" (reason 0x1_1000 4);
  Alcotest.(check string) "straddles end" "access beyond RAM" (reason 0x1_0FFE 4);
  Alcotest.(check string) "unmapped hole" "unmapped address" (reason 0x8000 4)

(* Same classification observed through the engine: a 4-byte store at
   limit-2 must fault as beyond-RAM, not unmapped. *)
let straddling_store_fault () =
  let open Asm in
  let lim = 0x1_0000 + (4 * 1024 * 1024) in
  let text =
    [ Label "main"; li Reg.t0 (lim - 2); store W32 Reg.t0 Reg.t0 0; halt ]
  in
  let m, _ = assemble_and_load ~harts:1 [ unit_ text [] ] in
  match Machine.run m ~max_insns:100 with
  | Machine.Fault (acc, "access beyond RAM") when acc.addr = lim - 2 -> ()
  | s -> Alcotest.failf "expected straddle fault, got %a" Machine.pp_stop s

let ram_width_contracts () =
  let ram = Ram.create ~base:0x1_0000 ~size:0x100 in
  (* write32 stores exactly the low 32 bits of any int *)
  Ram.write32 ram 0x1_0000 0x1_2345_6789;
  Alcotest.(check int) "write32 masks" 0x2345_6789 (Ram.read32 ram 0x1_0000);
  Ram.write32 ram 0x1_0008 0xFFFF_FFFF;
  Alcotest.(check int) "write32 keeps bit 31" 0xFFFF_FFFF (Ram.read32 ram 0x1_0008);
  (* the width-1 dispatch path and the unsafe byte accessors agree *)
  Ram.write ram 0x1_0010 1 0x1AB;
  Alcotest.(check int) "width-1 write = write8" (Ram.read8 ram 0x1_0010)
    (Ram.read ram 0x1_0010 1);
  Alcotest.(check int) "byte masked" 0xAB (Ram.read8 ram 0x1_0010);
  Ram.write8 ram 0x1_0011 0x7F;
  Alcotest.(check int) "width-1 read = read8" 0x7F (Ram.read ram 0x1_0011 1)

(* Pinned regression for a divergence the differential harness found
   (fast-vs-baseline oracle): a timer read in the middle of a translated
   block observed the fast engine's batched block pre-charge -- the whole
   block's retired-insn total -- instead of the precise count after the
   load itself, as the per-instruction-ticking baseline shows.  The halt
   code is the timer value, so the test pins both cross-engine equality
   and the exact count (2 insns retired when the load completes). *)
let timer_mid_block_precise () =
  let open Asm in
  let text =
    [
      Label "main";
      li Reg.t0 Devices.timer_base;
      load W32 Reg.t1 Reg.t0 0;
      (* block tail after the device read: this is what the pre-charge
         used to leak into the timer value *)
      Ins Insn.Nop;
      Ins Insn.Nop;
      mv Reg.a0 Reg.t1;
      halt;
    ]
  in
  let run_engine engine ~probed =
    let m, _ = assemble_and_load ~harts:1 [ unit_ text [] ] in
    Machine.set_engine m engine;
    if probed then Probe.on_mem m.probes (fun _ -> ());
    Machine.run m ~max_insns:1000
  in
  let fast = run_engine Machine.Fast ~probed:false in
  let fast_probed = run_engine Machine.Fast ~probed:true in
  let base = run_engine Machine.Baseline ~probed:false in
  Alcotest.check check_stop "fast = baseline" base fast;
  Alcotest.check check_stop "probed fast = baseline" base fast_probed;
  match base with
  | Machine.Halted n -> Alcotest.(check int) "precise mid-block count" 2 n
  | s -> Alcotest.failf "unexpected stop %a" Machine.pp_stop s

(* Drift guard for the hypercall callout numbering: the EmbSan-C codegen
   and the runtime's trap installation both go through check/decode_check,
   so a renumbering that breaks the round-trip, or a sanitizer callout
   slot losing its name, must fail loudly here rather than as silently
   missed checks. *)
let hypercall_numbering_stable () =
  List.iter
    (fun is_write ->
      List.iter
        (fun size ->
          let n = Hypercall.check ~is_write ~size in
          Alcotest.(check (option (pair bool int)))
            (Printf.sprintf "decode (check ~is_write:%b ~size:%d)" is_write
               size)
            (Some (is_write, size))
            (Hypercall.decode_check n))
        [ 1; 2; 4 ])
    [ false; true ];
  (* every sanitizer callout slot 16..29 must carry a real name *)
  for n = 16 to 29 do
    let default = Printf.sprintf "trap%d" n in
    if String.equal (Hypercall.name n) default then
      Alcotest.failf "callout %d has no name (got default %S)" n default
  done;
  (* and decode_check must reject everything outside the check range *)
  List.iter
    (fun n ->
      Alcotest.(check (option (pair bool int)))
        (Printf.sprintf "decode_check %d" n)
        None (Hypercall.decode_check n))
    [ 0; 15; 22; 23; 29; 30 ]

let () =
  Alcotest.run "embsan_emu"
    [
      ( "exec",
        [
          Alcotest.test_case "halt code" `Quick run_halt_code;
          Alcotest.test_case "factorial" `Quick arithmetic_program;
          Alcotest.test_case "budget" `Quick budget_exhausted;
          Alcotest.test_case "deadlock" `Quick deadlock_detected;
        ] );
      ( "devices",
        [
          Alcotest.test_case "uart console" `Quick uart_console;
          Alcotest.test_case "power halts" `Quick power_device_halts;
          Alcotest.test_case "mailbox protocol" `Quick mailbox_protocol;
        ] );
      ( "faults",
        [
          Alcotest.test_case "null deref" `Quick null_deref_faults;
          Alcotest.test_case "out-of-ram" `Quick oob_ram_faults;
          Alcotest.test_case "unhandled trap" `Quick unhandled_trap_stops;
          Alcotest.test_case "trap handler" `Quick trap_handler_dispatch;
        ] );
      ( "probes",
        [
          Alcotest.test_case "mem events" `Quick mem_probe_events;
          Alcotest.test_case "subscription patches live blocks" `Quick
            probe_subscription_patches_live_blocks;
          Alcotest.test_case "unsubscribe idempotent" `Quick
            probe_unsubscribe_idempotent;
          Alcotest.test_case "call/ret events" `Quick call_ret_probes;
          Alcotest.test_case "registration order" `Quick
            probe_registration_order;
        ] );
      ( "engine",
        [
          Alcotest.test_case "chained blocks observe probe patch" `Quick
            chained_blocks_observe_probe_patch;
          Alcotest.test_case "toggle storm is flush-free" `Quick
            toggle_storm_is_flush_free;
          Alcotest.test_case "chain invalidation on flush" `Quick
            chain_invalidation_on_flush;
          Alcotest.test_case "stats counters" `Quick engine_stats_counters;
          Alcotest.test_case "stats JSON round-trip" `Quick
            engine_stats_json_roundtrip;
          Alcotest.test_case "superblock transparency" `Quick
            superblock_formation_and_transparency;
          Alcotest.test_case "superblock toggle flush-free" `Quick
            superblock_toggle_is_flush_free;
          Alcotest.test_case "cmplog compare coverage" `Quick
            cmplog_compare_coverage;
          Alcotest.test_case "cmplog agreement gradient" `Quick
            cmplog_agreement_gradient;
          Alcotest.test_case "probed/unprobed differential" `Quick
            differential_probe_semantics;
          Alcotest.test_case "fast/baseline equivalence" `Quick
            fast_baseline_equivalence;
          Alcotest.test_case "ram fault reasons" `Quick ram_fault_reasons;
          Alcotest.test_case "straddling store fault" `Quick
            straddling_store_fault;
          Alcotest.test_case "ram width contracts" `Quick ram_width_contracts;
          Alcotest.test_case "timer precise mid-block" `Quick
            timer_mid_block_precise;
        ] );
      ( "smp",
        [
          Alcotest.test_case "interleaving" `Quick multi_hart_interleaving;
          Alcotest.test_case "amo atomicity" `Quick amo_atomicity;
          Alcotest.test_case "stall and retry" `Quick stall_and_retry;
        ] );
      ( "accounting",
        [ Alcotest.test_case "cost model" `Quick cost_model_counts ] );
      ( "services",
        [
          Alcotest.test_case "hypercall ABI" `Quick hypercall_abi;
          Alcotest.test_case "callout numbering stable" `Quick
            hypercall_numbering_stable;
          Alcotest.test_case "putc and exit" `Quick services_putc_and_exit;
          Alcotest.test_case "hart_start / current_hart" `Quick
            hart_start_service;
        ] );
      ( "trace",
        [
          Alcotest.test_case "call/ret events" `Quick trace_ring;
          Alcotest.test_case "ring eviction" `Quick trace_ring_eviction;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "tcg blocks" `Quick coverage_tcg;
          Alcotest.test_case "kcov hypercall" `Quick coverage_kcov;
        ] );
    ]
