(* Tests for the multi-domain campaign orchestrator (lib/orch):
   domain-safety of the toplevel registries workers hit concurrently,
   the jobs=1 reduction to Campaign.run, cross-repetition determinism
   of multi-worker campaigns, and the frontier-exchange/global-triage
   machinery. *)

open Embsan_guest
open Embsan_fuzz
module Orch = Embsan_orch.Orch
module Embsan = Embsan_core.Embsan

let small_fw () = Option.get (Firmware_db.find "OpenHarmony-stm32f407")
let closed_fw () = Option.get (Firmware_db.find "TP-Link WDR-7660")

(* --- domain safety of shared toplevel state -------------------------------------- *)

(* Four domains boot (firmware build cache, session cache, plugin
   registry bootstrap via Runtime.attach) and replay concurrently.  The
   caches are cold for at least one firmware here because this test runs
   first in its own binary; the mutexes in Sanitizer/Plugins/Replay/
   Firmware_db are what make this race-free. *)
let concurrent_attach_race_free () =
  let fw = small_fw () in
  let benign =
    List.concat_map (fun (b : Defs.bug) -> b.b_benign) fw.fw_bugs
  in
  let work () =
    let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.all_sanitizers) in
    let o = Replay.replay inst benign in
    (o.Replay.o_crash = None, o.Replay.o_insns > 0)
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  List.iteri
    (fun i d ->
      let no_crash, ran = Domain.join d in
      Alcotest.(check bool) (Printf.sprintf "domain %d no crash" i) true no_crash;
      Alcotest.(check bool) (Printf.sprintf "domain %d executed" i) true ran)
    domains;
  (* the registry bootstrap ran exactly once and is intact *)
  let names = Embsan_core.Sanitizer.registered () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "kasan"; "kcsan"; "kmemleak" ]

(* --- jobs=1 reduces to Campaign.run ---------------------------------------------- *)

let found_key (f : Campaign.found) = (f.f_bug.b_id, f.f_exec, f.f_confirmed)

let result_key (r : Campaign.result) =
  ( List.sort compare (List.map found_key r.r_found),
    r.r_execs,
    r.r_crashes,
    r.r_corpus,
    r.r_coverage,
    r.r_insns,
    r.r_unmatched )

let jobs1_equals_campaign_run fw () =
  let cfg =
    { (Campaign.default_config fw) with max_execs = 500; seed = 3 }
  in
  let direct = Campaign.run cfg in
  let orch =
    Orch.run { (Orch.default_config ~epoch_execs:64 fw) with campaign = cfg }
  in
  Alcotest.(check bool)
    "orchestrated jobs=1 result equals Campaign.run" true
    (result_key direct = result_key orch.o_campaign);
  Alcotest.(check int) "one epoch set" 1 (Array.length orch.o_workers)

(* --- multi-worker determinism ----------------------------------------------------- *)

let orch_key (r : Orch.result) =
  ( result_key r.o_campaign,
    r.o_epochs,
    Array.to_list
      (Array.map (fun (w : Orch.worker_stat) -> (w.w_id, w.w_execs, w.w_crashes, w.w_corpus, w.w_coverage)) r.o_workers) )

let jobs4_stable_across_repetitions () =
  let fw = small_fw () in
  let run () =
    let cfg =
      {
        (Orch.default_config ~jobs:4 ~epoch_execs:50 fw) with
        campaign =
          { (Campaign.default_config fw) with max_execs = 250; seed = 7 };
        jobs = 4;
      }
    in
    orch_key (Orch.run cfg)
  in
  let a = run () and b = run () in
  Alcotest.(check bool)
    "jobs=4 merged result stable across two repetitions" true (a = b)

(* Schedule fuzzing makes the interleaving part of the input: the
   orchestrated single-worker campaign must still be bit-identical to
   Campaign.run, and the multi-worker merge must stay deterministic,
   with schedule seeds riding the frontier exchange.  Uses the
   race-suite firmware so schedules actually matter (a worker hart and
   schedule-dependent races), not just get drawn. *)
let jobs1_sched_equals_campaign_run () =
  let fw = Firmware_db.race_suite_fw in
  let cfg =
    {
      (Campaign.default_config fw) with
      sanitizers = Embsan_core.Embsan.ftrace_only;
      max_execs = 400;
      seed = 3;
      stop_when_all_found = false;
      use_sched = true;
    }
  in
  let direct = Campaign.run cfg in
  let orch =
    Orch.run { (Orch.default_config ~epoch_execs:64 fw) with campaign = cfg }
  in
  Alcotest.(check bool)
    "orchestrated jobs=1 sched result equals Campaign.run" true
    (result_key direct = result_key orch.o_campaign);
  (* the schedule axis was actually exercised: some reproducer or corpus
     trajectory needed a schedule seed *)
  Alcotest.(check bool) "campaign found races" true (direct.r_found <> [])

let jobs4_sched_stable_across_repetitions () =
  let fw = Firmware_db.race_suite_fw in
  let run () =
    let cfg =
      {
        (Orch.default_config ~jobs:4 ~epoch_execs:50 fw) with
        campaign =
          {
            (Campaign.default_config fw) with
            sanitizers = Embsan_core.Embsan.ftrace_only;
            max_execs = 250;
            seed = 7;
            stop_when_all_found = false;
            use_sched = true;
          };
        jobs = 4;
      }
    in
    orch_key (Orch.run cfg)
  in
  let a = run () and b = run () in
  Alcotest.(check bool)
    "jobs=4 sched-fuzzing result stable across two repetitions" true (a = b)

(* Cmplog adds per-worker mutable state (compare windows, operand
   dictionary, counterpart map) to the sharded engines; this pins that an
   orchestrated cmplog campaign is still bit-identical across
   repetitions.  Uses the magic-gate firmware so the dictionary path is
   actually exercised, not just enabled. *)
let jobs2_cmplog_stable_across_repetitions () =
  let fw = Firmware_db.cmplog_gate_fw in
  let run () =
    let cfg =
      {
        (Orch.default_config ~jobs:2 ~epoch_execs:50 fw) with
        campaign =
          {
            (Campaign.default_config fw) with
            max_execs = 300;
            seed = 13;
            use_cmplog = true;
          };
        jobs = 2;
      }
    in
    orch_key (Orch.run cfg)
  in
  let a = run () and b = run () in
  Alcotest.(check bool)
    "jobs=2 cmplog result stable across two repetitions" true (a = b)

let distinct_shards_diverge () =
  (* shards fuzz different streams: with 2 workers their exec traces must
     not be mirror images (their per-worker corpora differ) *)
  let fw = small_fw () in
  let cfg =
    {
      (Orch.default_config ~jobs:2 ~epoch_execs:50 fw) with
      campaign = { (Campaign.default_config fw) with max_execs = 200; seed = 5;
                   stop_when_all_found = false };
      jobs = 2;
    }
  in
  let r = Orch.run cfg in
  let w0 = r.o_workers.(0) and w1 = r.o_workers.(1) in
  Alcotest.(check bool) "workers did full budget" true
    (w0.w_execs = 200 && w1.w_execs = 200);
  Alcotest.(check bool) "shard streams diverge" true
    ((w0.w_coverage, w0.w_crashes, w0.w_corpus)
    <> (w1.w_coverage, w1.w_crashes, w1.w_corpus)
    || r.o_campaign.r_coverage > max w0.w_coverage w1.w_coverage)

(* --- frontier exchange and global triage ------------------------------------------ *)

let orchestrated_campaign_finds_bugs () =
  let fw = small_fw () in
  let cfg =
    {
      (Orch.default_config ~jobs:2 ~epoch_execs:100 fw) with
      campaign = { (Campaign.default_config fw) with max_execs = 1500; seed = 3 };
      jobs = 2;
    }
  in
  let r = Orch.run cfg in
  Alcotest.(check int) "both bugs found" 2
    (List.length r.o_campaign.r_found);
  (* global dedup: each bug id appears exactly once *)
  let ids =
    List.map (fun (f : Campaign.found) -> f.f_bug.b_id) r.o_campaign.r_found
  in
  Alcotest.(check bool) "ids unique" true
    (List.sort_uniq compare ids = List.sort compare ids);
  (* the merged corpus is the global frontier: it covers at least what
     any single worker covers *)
  Array.iter
    (fun (w : Orch.worker_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "merged coverage >= worker %d's" w.w_id)
        true
        (r.o_campaign.r_coverage >= w.w_coverage))
    r.o_workers

let telemetry_emitted () =
  let fw = closed_fw () in
  let seen = ref [] in
  let cfg =
    {
      (Orch.default_config ~jobs:2 ~epoch_execs:50 fw) with
      campaign =
        { (Campaign.default_config fw) with max_execs = 150; seed = 5;
          stop_when_all_found = false };
      jobs = 2;
      on_telemetry = Some (fun t -> seen := t :: !seen);
    }
  in
  let r = Orch.run cfg in
  Alcotest.(check int) "one telemetry sample per epoch" r.o_epochs
    (List.length !seen);
  let final = List.hd !seen in
  Alcotest.(check int) "total execs" 300 final.t_execs;
  Alcotest.(check int) "workers" 2 (Array.length final.t_workers);
  Alcotest.(check bool) "epochs increase" true
    (List.for_all2
       (fun (a : Orch.telemetry) (b : Orch.telemetry) -> a.t_epoch > b.t_epoch)
       !seen
       (List.tl !seen @ [ { final with t_epoch = 0 } ]));
  Alcotest.(check bool) "cpu time accounted" true
    (Array.for_all (fun (w : Orch.worker_stat) -> w.w_cpu_s > 0.) final.t_workers)

let rejects_bad_config () =
  let fw = small_fw () in
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Orch.run: jobs must be in 1..64") (fun () ->
      ignore (Orch.run { (Orch.default_config fw) with jobs = 0 }));
  Alcotest.check_raises "epoch=0"
    (Invalid_argument "Orch.run: epoch_execs must be >= 1") (fun () ->
      ignore (Orch.run { (Orch.default_config fw) with epoch_execs = 0 }))

let () =
  Alcotest.run "embsan_orch"
    [
      ( "domain-safety",
        [
          Alcotest.test_case "concurrent Runtime.attach from 4 domains" `Quick
            concurrent_attach_race_free;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 equals Campaign.run (RTOS image)" `Slow
            (jobs1_equals_campaign_run (small_fw ()));
          Alcotest.test_case "jobs=1 equals Campaign.run (closed VxWorks image)"
            `Slow
            (jobs1_equals_campaign_run (closed_fw ()));
          Alcotest.test_case "jobs=4 stable across repetitions" `Slow
            jobs4_stable_across_repetitions;
          Alcotest.test_case "jobs=1 equals Campaign.run (schedule fuzzing)"
            `Slow jobs1_sched_equals_campaign_run;
          Alcotest.test_case "jobs=4 stable with schedule fuzzing" `Slow
            jobs4_sched_stable_across_repetitions;
          Alcotest.test_case "jobs=2 cmplog stable across repetitions" `Slow
            jobs2_cmplog_stable_across_repetitions;
          Alcotest.test_case "shard streams diverge" `Slow
            distinct_shards_diverge;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "orchestrated campaign finds and dedups bugs"
            `Slow orchestrated_campaign_finds_bugs;
          Alcotest.test_case "telemetry" `Slow telemetry_emitted;
          Alcotest.test_case "config validation" `Quick rejects_bad_config;
        ] );
    ]
