(* Tests for the differential-oracle harness (lib/check): generator
   determinism, bounded random campaigns over every oracle, and a
   fast-vs-baseline / probed-vs-unprobed smoke of each guest OS family's
   boot sequence. *)

open Embsan_emu
open Embsan_check

(* --- generator ------------------------------------------------------------ *)

let progen_deterministic () =
  let a = Progen.generate ~arch:Embsan_isa.Arch.Mips_ev ~seed:42 in
  let b = Progen.generate ~arch:Embsan_isa.Arch.Mips_ev ~seed:42 in
  Alcotest.(check string) "same program" (Progen.listing a) (Progen.listing b);
  let c = Progen.generate ~arch:Embsan_isa.Arch.Mips_ev ~seed:43 in
  Alcotest.(check bool) "seed matters" true
    (Progen.listing a <> Progen.listing c)

(* Generated programs decode back from the image bytes: the generator
   emits well-formed streams for every arch flavor, not just Arm_ev. *)
let progen_decodable () =
  List.iter
    (fun arch ->
      for seed = 0 to 19 do
        let p = Progen.generate ~arch ~seed in
        let sec = List.hd p.p_image.sections in
        let decoded =
          Embsan_isa.Codec.decode_all arch ~base:sec.base sec.data
        in
        Alcotest.(check int)
          (Printf.sprintf "%s/%d decodes fully"
             (Embsan_isa.Arch.to_string arch)
             seed)
          (List.length p.p_insns) (List.length decoded)
      done)
    Embsan_isa.Arch.all

(* --- incremental RAM digest ------------------------------------------------ *)

(* The digest is page-structured so the incremental path (rehash only
   pages on the dirty bitmap's digest channel) and the full path produce
   identical values -- across repeated captures, sparse and bulk writes,
   and captures with no intervening writes. *)
let incremental_digest_agrees () =
  let ram_base = 0x1_0000 and ram_size = 128 * 1024 in
  let m =
    Machine.create ~harts:1 ~ram_base ~ram_size ~arch:Embsan_isa.Arch.Arm_ev ()
  in
  let dg = Snapshot.digester m in
  let check_round name =
    let inc = (Snapshot.capture ~digester:dg m).ram_digest in
    let full = (Snapshot.capture m).ram_digest in
    Alcotest.(check string) name full inc
  in
  check_round "initial";
  Machine.write_mem m ~addr:ram_base ~width:4 ~value:0xAA55;
  check_round "one write";
  check_round "no writes since";
  for i = 0 to 40 do
    Machine.write_mem m
      ~addr:(ram_base + (i * 3001 mod (ram_size - 4)))
      ~width:4 ~value:i
  done;
  check_round "scattered writes";
  Machine.write_mem m ~addr:(ram_base + ram_size - 4) ~width:4 ~value:1;
  check_round "last page"

(* --- random differential campaign ----------------------------------------- *)

(* Bounded version of `embsan_cli check`: every oracle over every arch
   flavor must find nothing.  (The CLI default runs 1000 programs per
   flavor; this keeps runtest fast while still crossing every code path --
   loads/stores around the RAM limit, MMIO, faults, branches, chaining.) *)
let random_campaign () =
  let config =
    { Harness.default_config with execs = 40; max_insns = 2048; sync = 256 }
  in
  let s = Harness.run config in
  Alcotest.(check int) "all programs ran" (3 * 40) s.s_programs;
  match s.s_divergences with
  | [] -> ()
  | d :: _ -> Alcotest.failf "%a" Oracle.pp_divergence d

(* Bounded mode-agreement campaign: the same syscall sequences under
   EmbSan-C and EmbSan-D must yield the same unique report set.  Selected
   by name so a harness wiring regression (oracle dropped from the
   registry) fails here rather than silently shrinking the default set. *)
let mode_agreement_campaign () =
  let config =
    {
      Harness.default_config with
      execs = 30;
      oracles = [ "mode-agreement" ];
    }
  in
  let s = Harness.run config in
  Alcotest.(check int) "all programs ran" (3 * 30) s.s_programs;
  (* the kernels never crash: every sequence ends back in the idle loop *)
  Alcotest.(check (list (pair string int))) "stops" [ ("halted", 90) ] s.s_stops;
  match s.s_divergences with
  | [] -> ()
  | d :: _ -> Alcotest.failf "%a" Oracle.pp_divergence d

(* --- guest kernel boot differentials --------------------------------------- *)

(* One representative firmware per guest OS family. *)
let family_firmwares () =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (fw : Embsan_guest.Firmware_db.firmware) ->
      if Hashtbl.mem seen fw.fw_base_os then false
      else begin
        Hashtbl.add seen fw.fw_base_os ();
        true
      end)
    Embsan_guest.Firmware_db.all

(* Minimal plain boot (mirrors Replay.boot's uninstrumented path): load
   the image, install the hypercall services and inert stubs for the
   sanitizer callout range, then run a fixed budget.  A fixed [run]
   budget stops both machines of a pair at the same block boundary, which
   is engine-invariant; run_until_ready is not (the fast engine checks the
   doorbell only between 16-block turns). *)
let boot_machine ~harts (fw : Embsan_guest.Firmware_db.firmware) =
  let image = fw.fw_build ~kcov:false Embsan_minic.Codegen.Plain in
  let m = Machine.create ~harts ~arch:image.arch () in
  Machine.load_image m image;
  Machine.boot m;
  Services.install m;
  List.iter
    (fun n -> Machine.set_trap_handler m n (fun _ _ -> ()))
    [ 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ];
  m

let boot_budget = 200_000

let kernel_fast_vs_baseline (fw : Embsan_guest.Firmware_db.firmware) () =
  (* single hart: the engines' scheduling granularity differs by design,
     so multi-hart interleavings are not comparable across engines *)
  let run engine =
    let m = boot_machine ~harts:1 fw in
    Machine.set_engine m engine;
    let stop = Machine.run m ~max_insns:boot_budget in
    (Snapshot.capture ~stop m, m)
  in
  let sf, _ = run Machine.Fast in
  let sb, _ = run Machine.Baseline in
  match Snapshot.diff sf sb with
  | [] -> ()
  | diff ->
      Alcotest.failf "%s boot diverged:@\n%s" fw.fw_name
        (String.concat "\n" diff)

let kernel_probe_transparency (fw : Embsan_guest.Firmware_db.firmware) () =
  (* probed-vs-unprobed is valid multi-hart: the chain budget is constant,
     so probes must not perturb the schedule either *)
  let run ~probed =
    let m = boot_machine ~harts:2 fw in
    if probed then Oracle.no_op_probes m;
    let stop = Machine.run m ~max_insns:boot_budget in
    (Snapshot.capture ~stop m, m)
  in
  let plain, _ = run ~probed:false in
  let probed, _ = run ~probed:true in
  match Snapshot.diff plain probed with
  | [] -> ()
  | diff ->
      Alcotest.failf "%s probed boot diverged:@\n%s" fw.fw_name
        (String.concat "\n" diff)

let () =
  let kernel_tests mk =
    List.map
      (fun (fw : Embsan_guest.Firmware_db.firmware) ->
        Alcotest.test_case fw.fw_base_os `Quick (mk fw))
      (family_firmwares ())
  in
  Alcotest.run "embsan_check"
    [
      ( "progen",
        [
          Alcotest.test_case "deterministic" `Quick progen_deterministic;
          Alcotest.test_case "decodable everywhere" `Quick progen_decodable;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "incremental digest agrees with full" `Quick
            incremental_digest_agrees;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "random campaign" `Quick random_campaign;
          Alcotest.test_case "mode agreement" `Quick mode_agreement_campaign;
        ] );
      ("kernel fast-vs-baseline", kernel_tests kernel_fast_vs_baseline);
      ("kernel probe transparency", kernel_tests kernel_probe_transparency);
    ]
