(* Tests for the guest library: the four allocators, firmware builds and
   boots across modes and architectures, the bug registry (every reproducer
   detected, every benign sequence silent), and the Table-2 capability
   matrix. *)

open Embsan_isa
open Embsan_emu
open Embsan_guest
module Embsan = Embsan_core.Embsan
module Report = Embsan_core.Report
module Driver = Embsan_minic.Driver
module Codegen = Embsan_minic.Codegen

(* --- allocator correctness ---------------------------------------------------- *)

(* A MiniC harness exercising an allocator: pattern integrity across [n]
   live blocks, partial frees and reuse.  Returns 42 on success, a
   diagnostic code otherwise. *)
let allocator_harness ~alloc ~free ~blocks ~stride =
  Printf.sprintf
    {|
fun kmain() {
  kheap_init();
  arr ptrs[16];
  var n = %d;
  var i = 0;
  while (i < n) {
    var p = %s(16 + i * %d);
    if (p == 0) { return 100 + i; }
    memset(p, i + 1, 16 + i * %d);
    ptrs[i] = p;
    i = i + 1;
  }
  i = 0;
  while (i < n) {
    var j = 0;
    while (j < 16 + i * %d) {
      if (load8(ptrs[i] + j) != i + 1) { return 200 + i; }
      j = j + 1;
    }
    i = i + 1;
  }
  i = 0;
  while (i < n) {
    if (i %% 2) { %s(ptrs[i]); }
    i = i + 1;
  }
  var q = %s(40);
  if (q == 0) { return 300; }
  memset(q, 0xEE, 40);
  i = 0;
  while (i < n) {
    if ((i %% 2) == 0) {
      var k = 0;
      while (k < 16 + i * %d) {
        if (load8(ptrs[i] + k) != i + 1) { return 400 + i; }
        k = k + 1;
      }
    }
    i = i + 1;
  }
  %s(q);
  return 42;
}
|}
    blocks alloc stride stride stride free alloc stride free

let run_allocator_harness alloc_unit ~alloc ~free ~blocks ~stride =
  let img =
    Driver.compile Driver.default_config
      [
        Libk.unit_;
        alloc_unit;
        {
          src_name = "harness";
          code = allocator_harness ~alloc ~free ~blocks ~stride;
        };
      ]
  in
  let m = Machine.create ~arch:Arch.Arm_ev () in
  Machine.load_image m img;
  Machine.boot m;
  Machine.run m ~max_insns:10_000_000

let allocators =
  [
    ("slab", Alloc_slab.unit_, "kmalloc", "kfree");
    ("heap4", Alloc_heap4.unit_, "pvPortMalloc", "vPortFree");
    ("bestfit", Alloc_bestfit.unit_, "LOS_MemAlloc", "LOS_MemFree");
    ("vxheap", Alloc_vxheap.unit_, "memPartAlloc", "memPartFree");
  ]

let allocator_tests =
  List.map
    (fun (name, unit_, alloc, free) ->
      Alcotest.test_case name `Quick (fun () ->
          match run_allocator_harness unit_ ~alloc ~free ~blocks:8 ~stride:12 with
          | Machine.Halted 42 -> ()
          | Machine.Halted code -> Alcotest.failf "harness code %d" code
          | s -> Alcotest.failf "stop %a" Machine.pp_stop s))
    allocators

let allocator_qcheck =
  let open QCheck2 in
  Test.make ~name:"allocators survive random block counts/strides" ~count:12
    Gen.(
      triple (int_range 0 3) (int_range 2 12) (int_range 4 24))
    (fun (which, blocks, stride) ->
      let _, unit_, alloc, free = List.nth allocators which in
      match run_allocator_harness unit_ ~alloc ~free ~blocks ~stride with
      | Machine.Halted 42 -> true
      | _ -> false)

(* --- firmware builds and boots ------------------------------------------------- *)

let firmware_boots () =
  List.iter
    (fun (fw : Firmware_db.firmware) ->
      List.iter
        (fun mode ->
          (* closed-source firmware has no compile-time-instrumented build *)
          if not (fw.fw_source = Firmware_db.Closed && mode <> Codegen.Plain)
          then begin
            let img = fw.fw_build ~kcov:false mode in
            let m = Machine.create ~arch:fw.fw_arch () in
            Machine.load_image m img;
            Machine.boot m;
            Services.install m;
            List.iter
              (fun n -> Machine.set_trap_handler m n (fun _ _ -> ()))
              [ 16; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 28; 29 ];
            match Machine.run_until_ready m ~max_insns:30_000_000 with
            | None -> ()
            | Some stop ->
                Alcotest.failf "%s (%s) did not boot: %a" fw.fw_name
                  (match mode with
                  | Codegen.Plain -> "plain"
                  | Trap_callout -> "trap"
                  | Inline_kasan -> "native kasan"
                  | Inline_kcsan -> "native kcsan")
                  Machine.pp_stop stop
          end)
        [ Codegen.Plain; Codegen.Trap_callout; Codegen.Inline_kasan;
          Codegen.Inline_kcsan ])
    Firmware_db.all

let closed_firmware_is_stripped () =
  let fw = Option.get (Firmware_db.find "TP-Link WDR-7660") in
  Alcotest.(check bool) "shipped image stripped" true
    (Image.is_stripped (fw.fw_build ~kcov:false Codegen.Plain));
  Alcotest.(check bool) "truth image has symbols" false
    (Image.is_stripped (fw.fw_truth ~kcov:false Codegen.Plain))

let table1_inventory () =
  Alcotest.(check int) "eleven firmware images" 11 (List.length Firmware_db.all);
  let linux =
    List.filter (fun f -> f.Firmware_db.fw_base_os = "Embedded Linux") Firmware_db.all
  in
  Alcotest.(check int) "seven Linux-based" 7 (List.length linux);
  Alcotest.(check int) "41 registered bugs" 41
    (List.length (List.concat_map (fun f -> f.Firmware_db.fw_bugs) Firmware_db.all));
  Alcotest.(check int) "25 syzbot bugs" 25
    (List.length Firmware_db.syzbot_suite_fw.fw_bugs)

(* --- bug registry: reproducers and benign paths -------------------------------- *)

let all_reproducers_detected () =
  List.iter
    (fun (fw : Firmware_db.firmware) ->
      List.iter
        (fun (b : Defs.bug) ->
          let o =
            Replay.run_reproducer fw
              (Replay.Embsan_cfg Embsan.all_sanitizers)
              b.b_syscalls
          in
          if not (Replay.detects b o) then
            Alcotest.failf "%s not detected on %s (reports: %s)" b.b_id
              fw.fw_name
              (String.concat "; " (List.map Report.title o.o_reports)))
        fw.fw_bugs)
    Firmware_db.all

let benign_sequences_silent () =
  List.iter
    (fun (fw : Firmware_db.firmware) ->
      List.iter
        (fun (b : Defs.bug) ->
          if b.b_benign <> [] then begin
            let o =
              Replay.run_reproducer fw
                (Replay.Embsan_cfg Embsan.all_sanitizers)
                b.b_benign
            in
            Alcotest.(check (list string))
              (Fmt.str "%s benign" b.b_id)
              []
              (List.map Report.title o.o_reports);
            Alcotest.(check bool)
              (Fmt.str "%s benign crash" b.b_id)
              true (o.o_crash = None)
          end)
        fw.fw_bugs)
    Firmware_db.all

(* --- race suite: known-race / known-no-race table ------------------------------- *)

module Sched = Embsan_sched.Sched
module Rng = Embsan_fuzz.Rng

(* Replay a syscall sequence on the race-suite firmware under ftrace,
   optionally armed with a fuzzer-chosen schedule. *)
let race_replay ?sched calls =
  let fw = Firmware_db.race_suite_fw in
  let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.ftrace_only) in
  (match sched with
  | None -> ()
  | Some seed ->
      let ctl = Sched.create inst.Replay.machine in
      let r = Rng.create ~seed in
      Sched.arm ctl ~draw:(fun n -> Rng.below r n));
  Replay.replay inst calls

let race_bug id =
  List.find
    (fun (b : Defs.bug) -> b.b_id = id)
    Firmware_db.race_suite_fw.fw_bugs

(* The table: which seeded race fires under which schedule.  The two
   plain races fire under the fixed round-robin rotation already; the
   starvation-window race is schedule-dependent by construction -- the
   fixed rotation can NEVER starve the syscall hart through the worker's
   delay loop, so only fuzzed interleavings reach it. *)
let race_suite_known_races () =
  List.iter
    (fun id ->
      let b = race_bug id in
      Alcotest.(check bool)
        (id ^ " detected under round-robin")
        true
        (Replay.detects b (race_replay b.b_syscalls)))
    [ "race-suite/unlocked_counter"; "race-suite/buf_missing_lock" ];
  let w = race_bug "race-suite/window_publication" in
  Alcotest.(check bool) "window race invisible to round-robin" false
    (Replay.detects w (race_replay w.b_syscalls));
  let fires seed = Replay.detects w (race_replay ~sched:seed w.b_syscalls) in
  Alcotest.(check bool) "window race reached by a fuzzed schedule" true
    (List.exists fires (List.init 24 (fun i -> i + 1)))

(* The synchronized counterparts (spinlock, irq-off section, atomic RMW)
   must stay silent under ftrace -- under the fixed rotation AND under
   fuzzed interleavings (happens-before precision, not sampling luck). *)
let race_suite_no_race_table () =
  List.iter
    (fun (b : Defs.bug) ->
      List.iter
        (fun sched ->
          let o = race_replay ?sched b.b_benign in
          Alcotest.(check (list string))
            (Fmt.str "%s benign (sched %a)" b.b_id
               Fmt.(option ~none:(any "rr") int)
               sched)
            []
            (List.map Report.title o.Replay.o_reports))
        [ None; Some 5; Some 11 ])
    Firmware_db.race_suite_fw.fw_bugs

(* KCSAN-vs-ftrace agreement: every seeded race KCSAN's sampled
   watchpoints CAN see under fuzzed schedules, the happens-before
   detector sees too (same budget, same seeds). *)
let kcsan_ftrace_agreement () =
  let module Campaign = Embsan_fuzz.Campaign in
  let found sanitizers =
    let cfg =
      {
        (Campaign.default_config Firmware_db.race_suite_fw) with
        sanitizers;
        max_execs = 300;
        seed = 1;
        stop_when_all_found = false;
        use_sched = true;
      }
    in
    List.sort_uniq compare
      (List.map
         (fun (f : Campaign.found) -> f.f_bug.Defs.b_id)
         (Campaign.run cfg).Campaign.r_found)
  in
  let kcsan = found Embsan.kcsan_only in
  let ftrace = found Embsan.ftrace_only in
  Alcotest.(check bool) "kcsan saw at least one seeded race" true (kcsan <> []);
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Fmt.str "ftrace agrees on %s" id)
        true (List.mem id ftrace))
    kcsan;
  Alcotest.(check int) "ftrace finds the full suite" 3 (List.length ftrace)

(* --- the Table-2 capability split ---------------------------------------------- *)

let capability_matrix_globals () =
  let fw = Firmware_db.syzbot_suite_fw in
  let globals =
    List.filter (fun (b : Defs.bug) -> b.b_class = Defs.Global_bug) fw.fw_bugs
  in
  Alcotest.(check int) "two global-OOB bugs" 2 (List.length globals);
  List.iter
    (fun (b : Defs.bug) ->
      let detect mode =
        Replay.detects b
          (Replay.run_reproducer fw
             (Replay.Embsan_mode (Embsan.kasan_only, mode))
             b.b_syscalls)
      in
      Alcotest.(check bool) (b.b_id ^ " under C") true (detect `C);
      Alcotest.(check bool) (b.b_id ^ " under D") false (detect `D);
      Alcotest.(check bool)
        (b.b_id ^ " under native")
        true
        (Replay.detects b
           (Replay.run_reproducer fw Replay.Native_kasan b.b_syscalls)))
    globals

(* Reports must symbolize to the paper's function names. *)
let reports_symbolize () =
  let fw = Firmware_db.syzbot_suite_fw in
  let bug =
    List.find
      (fun (b : Defs.bug) -> b.b_id = "syzbot/ieee80211_scan_rx")
      fw.fw_bugs
  in
  let o =
    Replay.run_reproducer fw
      (Replay.Embsan_mode (Embsan.kasan_only, `C))
      bug.b_syscalls
  in
  match o.o_reports with
  | [ r ] ->
      Alcotest.(check (option string)) "location" (Some "ieee80211_scan_rx")
        r.location;
      Alcotest.(check string) "kind" "use-after-free" (Report.kind_name r.kind)
  | l -> Alcotest.failf "expected 1 report, got %d" (List.length l)

(* The serve loops answer unknown syscalls with -ENOSYS and keep running. *)
let unknown_syscall_enosys () =
  List.iter
    (fun name ->
      let fw = Option.get (Firmware_db.find name) in
      let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.kasan_only) in
      let stop = Replay.syscall inst ~nr:95 ~args:[| 1; 2; 3 |] in
      Alcotest.(check bool) "no crash" true (stop = None);
      match Devices.mailbox_completions inst.machine.mailbox with
      | { ret; _ } :: _ ->
          Alcotest.(check int) "ENOSYS" (Embsan_isa.Word32.wrap (-38)) ret
      | [] -> Alcotest.fail "no completion")
    [ "OpenWRT-armvirt"; "InfiniTime"; "TP-Link WDR-7660" ]

let () =
  Alcotest.run "embsan_guest"
    [
      ("allocators", allocator_tests @ [ QCheck_alcotest.to_alcotest allocator_qcheck ]);
      ( "firmware",
        [
          Alcotest.test_case "table 1 inventory" `Quick table1_inventory;
          Alcotest.test_case "all builds boot (4 modes)" `Slow firmware_boots;
          Alcotest.test_case "closed firmware stripped" `Quick
            closed_firmware_is_stripped;
          Alcotest.test_case "unknown syscall -> ENOSYS" `Quick
            unknown_syscall_enosys;
        ] );
      ( "bug registry",
        [
          Alcotest.test_case "all reproducers detected" `Slow
            all_reproducers_detected;
          Alcotest.test_case "benign sequences silent" `Slow
            benign_sequences_silent;
          Alcotest.test_case "global OOB: C yes / D no" `Quick
            capability_matrix_globals;
          Alcotest.test_case "reports symbolize" `Quick reports_symbolize;
        ] );
      ( "race-suite",
        [
          Alcotest.test_case "known races detected" `Slow
            race_suite_known_races;
          Alcotest.test_case "no-race counterparts silent" `Slow
            race_suite_no_race_table;
          Alcotest.test_case "kcsan-vs-ftrace agreement" `Slow
            kcsan_ftrace_agreement;
        ] );
    ]
