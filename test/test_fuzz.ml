(* Tests for the fuzzing library: PRNG determinism, program generation and
   mutation invariants (property-based), corpus triage, and campaign
   determinism / effectiveness on a small firmware. *)

open Embsan_guest
open Embsan_fuzz
module Embsan = Embsan_core.Embsan

let descs =
  [
    { Defs.sc_nr = 1; sc_name = "a"; sc_args = [ Defs.Flag [ 0; 1; 2 ] ] };
    { Defs.sc_nr = 2; sc_name = "b"; sc_args = [ Defs.Range (0, 15); Defs.Len ] };
    { Defs.sc_nr = 7; sc_name = "c"; sc_args = [ Defs.Any32; Defs.Any32; Defs.Len ] };
  ]

(* --- PRNG ----------------------------------------------------------------------- *)

let rng_deterministic () =
  let a = Rng.create ~seed:5 and b = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create ~seed:6 in
  Alcotest.(check bool) "different seed differs" true
    (List.init 10 (fun _ -> Rng.next a) <> List.init 10 (fun _ -> Rng.next c))

let rng_ranges =
  QCheck2.Test.make ~name:"Rng.range stays in bounds" ~count:200
    QCheck2.Gen.(triple int (int_range 0 100) (int_range 0 100))
    (fun (seed, lo, d) ->
      let rng = Rng.create ~seed in
      let v = Rng.range rng lo (lo + d) in
      v >= lo && v <= lo + d)

(* --- splittable streams (the orchestrator's per-worker seeding) ------------------ *)

let stream rng n = List.init n (fun _ -> Rng.next rng)

let split_reproducible =
  QCheck2.Test.make ~name:"Rng.split: same (seed, shard) same stream" ~count:200
    QCheck2.Gen.(pair int (int_range 0 1024))
    (fun (seed, shard) ->
      let a = Rng.split (Rng.create ~seed) ~shard in
      let b = Rng.split (Rng.create ~seed) ~shard in
      stream a 16 = stream b 16)

let split_distinct_shards =
  QCheck2.Test.make ~name:"Rng.split: distinct shards distinct streams"
    ~count:500
    QCheck2.Gen.(triple int (int_range 0 4096) (int_range 0 4096))
    (fun (seed, i, j) ->
      QCheck2.assume (i <> j);
      let a = Rng.split (Rng.create ~seed) ~shard:i in
      let b = Rng.split (Rng.create ~seed) ~shard:j in
      stream a 16 <> stream b 16)

let split_independent_of_parent =
  QCheck2.Test.make ~name:"Rng.split: child differs from parent, parent intact"
    ~count:200
    QCheck2.Gen.(pair int (int_range 0 64))
    (fun (seed, shard) ->
      let parent = Rng.create ~seed in
      let child = Rng.split parent ~shard in
      (* splitting must not advance the parent stream *)
      let parent' = Rng.create ~seed in
      stream child 16 <> stream parent' 16
      && stream parent 16 = stream (Rng.create ~seed) 16)

let split_seed_collision_free () =
  (* exhaustive within a small grid: the campaign-seed x shard plane the
     orchestrator actually uses must be collision-free *)
  let seen = Hashtbl.create 4096 in
  for seed = 0 to 63 do
    for shard = 0 to 63 do
      let s = Rng.split_seed ~seed ~shard in
      (match Hashtbl.find_opt seen s with
      | Some (seed', shard') ->
          Alcotest.failf "collision: (%d,%d) and (%d,%d) -> %d" seed shard
            seed' shard' s
      | None -> ());
      Hashtbl.add seen s (seed, shard)
    done
  done

(* --- named streams (the scheduler's dedicated draw stream) ----------------------- *)

let stream_names = [ "sched"; "mut"; "dict"; "havoc" ]

let split_stream_reproducible =
  QCheck2.Test.make ~name:"Rng.split_stream: same (seed, shard, stream) same \
                           stream"
    ~count:200
    QCheck2.Gen.(triple int (int_range 0 1024) (int_range 0 3))
    (fun (seed, shard, k) ->
      let name = List.nth stream_names k in
      let a = Rng.split_stream (Rng.create ~seed) ~shard ~stream:name in
      let b = Rng.split_stream (Rng.create ~seed) ~shard ~stream:name in
      stream a 16 = stream b 16)

let split_stream_independent =
  QCheck2.Test.make
    ~name:"Rng.split_stream: distinct (shard, stream) distinct streams"
    ~count:500
    QCheck2.Gen.(
      pair int (pair (pair (int_range 0 512) (int_range 0 3))
                  (pair (int_range 0 512) (int_range 0 3))))
    (fun (seed, ((i, ki), (j, kj))) ->
      QCheck2.assume ((i, ki) <> (j, kj));
      let a =
        Rng.split_stream (Rng.create ~seed) ~shard:i
          ~stream:(List.nth stream_names ki)
      in
      let b =
        Rng.split_stream (Rng.create ~seed) ~shard:j
          ~stream:(List.nth stream_names kj)
      in
      stream a 16 <> stream b 16)

let split_stream_leaves_parent_intact =
  QCheck2.Test.make
    ~name:"Rng.split_stream: parent stream not advanced, distinct from child"
    ~count:200
    QCheck2.Gen.(pair int (int_range 0 64))
    (fun (seed, shard) ->
      let parent = Rng.create ~seed in
      let child = Rng.split_stream parent ~shard ~stream:"sched" in
      stream child 16 <> stream (Rng.create ~seed) 16
      && stream parent 16 = stream (Rng.create ~seed) 16)

let split_stream_collision_free_grid () =
  (* exhaustive within the plane campaigns actually use: for every
     campaign seed, all (shard, stream) streams -- plus the unnamed
     {!Rng.split} per-shard stream -- must be pairwise distinct *)
  let prefix r = List.init 8 (fun _ -> Rng.next r) in
  for seed = 0 to 15 do
    let seen = Hashtbl.create 1024 in
    let add key r =
      let p = prefix r in
      (match Hashtbl.find_opt seen p with
      | Some key' -> Alcotest.failf "stream collision: %s and %s" key key'
      | None -> ());
      Hashtbl.add seen p key
    in
    for shard = 0 to 15 do
      add
        (Printf.sprintf "(%d,unnamed)" shard)
        (Rng.split (Rng.create ~seed) ~shard);
      List.iter
        (fun name ->
          add
            (Printf.sprintf "(%d,%s)" shard name)
            (Rng.split_stream (Rng.create ~seed) ~shard ~stream:name))
        stream_names
    done
  done

let stream_tag_distinct () =
  (* the FNV-1a name tags behind the named axis must separate the names
     in use (and stay stable: a tag change would silently reseed every
     schedule in the corpus) *)
  let tags = List.map Rng.stream_tag stream_names in
  Alcotest.(check int) "distinct tags" (List.length stream_names)
    (List.length (List.sort_uniq compare tags));
  Alcotest.(check bool) "tag deterministic" true
    (Rng.stream_tag "sched" = Rng.stream_tag "sched")

(* --- program generation / mutation ----------------------------------------------- *)

let prog_gen_valid =
  QCheck2.Test.make ~name:"generated programs use declared syscalls" ~count:100
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create ~seed in
      let p = Prog.gen rng descs in
      List.length p >= 1
      && List.length p <= Prog.max_len
      && List.for_all
           (fun (c : Prog.call) ->
             List.exists (fun d -> d.Defs.sc_nr = c.nr) descs
             && Array.length c.args = 3)
           p)

let mutate_preserves_validity =
  QCheck2.Test.make ~name:"mutation keeps programs well-formed" ~count:200
    QCheck2.Gen.(pair int int)
    (fun (seed1, seed2) ->
      let rng = Rng.create ~seed:seed1 in
      let p = Prog.gen rng descs in
      let rng2 = Rng.create ~seed:seed2 in
      let other = Prog.gen rng2 descs in
      let q =
        Prog.mutate rng2 descs ~corpus_pick:(fun () -> Some other) p
      in
      List.length q >= 1
      && List.length q <= Prog.max_len
      && List.for_all (fun (c : Prog.call) -> Array.length c.args = 3) q)

let flag_domain_respected () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 200 do
    let v = Prog.gen_arg rng (Defs.Flag [ 3; 5; 9 ]) in
    Alcotest.(check bool) "flag value" true (List.mem v [ 3; 5; 9 ])
  done

(* --- corpus ---------------------------------------------------------------------- *)

let corpus_triage () =
  let c = Corpus.create () in
  let p1 = [ { Prog.nr = 1; args = [| 0; 0; 0 |] } ] in
  let p2 = [ { Prog.nr = 2; args = [| 1; 2; 3 |] } ] in
  Alcotest.(check bool) "new coverage admits" true
    (Corpus.consider c p1 [ (10, 1); (11, 1) ]);
  Alcotest.(check bool) "duplicate coverage rejected" false
    (Corpus.consider c p1 [ (10, 1) ]);
  Alcotest.(check bool) "new bucket admits" true
    (Corpus.consider c p2 [ (10, 2) ]);
  Alcotest.(check int) "size" 2 (Corpus.size c);
  Alcotest.(check int) "coverage pairs" 3 (Corpus.coverage c);
  Alcotest.(check int) "programs retained" 2 (List.length (Corpus.programs c))

(* --- campaigns ------------------------------------------------------------------- *)

let small_fw () = Option.get (Firmware_db.find "OpenHarmony-stm32f407")

let campaign_finds_bugs () =
  let fw = small_fw () in
  let cfg = { (Campaign.default_config fw) with max_execs = 1500; seed = 3 } in
  let r = Campaign.run cfg in
  Alcotest.(check int) "both bugs found" 2 (List.length r.r_found);
  List.iter
    (fun (f : Campaign.found) ->
      Alcotest.(check bool) (f.f_bug.b_id ^ " confirmed") true f.f_confirmed)
    r.r_found

let campaign_deterministic () =
  let fw = small_fw () in
  let run () =
    let cfg = { (Campaign.default_config fw) with max_execs = 400; seed = 11 } in
    let r = Campaign.run cfg in
    ( List.sort compare
        (List.map (fun (f : Campaign.found) -> (f.f_bug.b_id, f.f_exec)) r.r_found),
      r.r_coverage )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same findings and coverage" true (a = b)

let campaign_seed_variation () =
  let fw = small_fw () in
  let execs seed =
    let cfg = { (Campaign.default_config fw) with max_execs = 1200; seed } in
    let r = Campaign.run cfg in
    List.sort compare (List.map (fun (f : Campaign.found) -> f.f_exec) r.r_found)
  in
  (* different seeds find the bugs at different times but still find them *)
  Alcotest.(check bool) "seed 1 finds" true (execs 1 <> []);
  Alcotest.(check bool) "seed 2 finds" true (execs 2 <> [])

let tardis_mode_needs_no_guest_support () =
  (* the Tardis coverage path must work on the closed-source image *)
  let fw = Option.get (Firmware_db.find "TP-Link WDR-7660") in
  let cfg =
    { (Campaign.default_config fw) with max_execs = 800; seed = 5 }
  in
  let r = Campaign.run cfg in
  Alcotest.(check bool) "coverage collected" true (r.r_coverage > 10);
  Alcotest.(check bool) "found something" true (r.r_found <> [])

(* Coverage is fuzzer-owned host state, attached via probes: Snap.restore
   must revert the guest without touching it.  This is the semantics the
   campaign's persistent mode depends on (a restore after every crash must
   not wipe the corpus signal) -- see DESIGN.md "Snapshot service". *)
let coverage_survives_restore () =
  let fw = small_fw () in
  let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.kasan_only) in
  let cov = Embsan_emu.Coverage.create ~harts:2 in
  Embsan_emu.Coverage.attach_tcg cov inst.Replay.machine;
  let snap =
    Embsan_snap.Snap.capture ?runtime:inst.Replay.rt inst.Replay.machine
  in
  let benign =
    List.concat_map (fun (b : Defs.bug) -> b.b_benign) fw.fw_bugs
  in
  ignore (Replay.replay inst benign);
  let edges = Embsan_emu.Coverage.edge_count cov in
  Alcotest.(check bool) "edges collected" true (edges > 0);
  ignore (Embsan_snap.Snap.restore snap : int);
  Alcotest.(check int) "coverage survives the restore" edges
    (Embsan_emu.Coverage.edge_count cov);
  (* the restored guest still executes and reports coverage *)
  Embsan_emu.Coverage.reset_edges cov;
  ignore (Replay.replay inst benign);
  Alcotest.(check bool) "coverage flows after restore" true
    (Embsan_emu.Coverage.edge_count cov > 0)

(* The compare-coverage A/B: the magic-gate firmware's use-after-free sits
   behind a [token == 0x51EC7A3D] guard.  Without cmplog the mutator never
   produces the token; with cmplog the guest's own compare donates it via
   the input-to-state counterpart map and the bug falls within a few
   hundred executions. *)
let cmplog_solves_magic_gate () =
  let fw = Firmware_db.cmplog_gate_fw in
  let run use_cmplog =
    let cfg =
      {
        (Campaign.default_config fw) with
        max_execs = 2000;
        seed = 7;
        use_cmplog;
      }
    in
    Campaign.run cfg
  in
  let off = run false and on = run true in
  Alcotest.(check int) "plain mutator never passes the gate" 0
    (List.length off.r_found);
  Alcotest.(check int) "cmplog passes the gate" 1 (List.length on.r_found);
  let f = List.hd on.r_found in
  Alcotest.(check string) "the gated bug" "demo/magicgate_unlock"
    f.f_bug.b_id;
  Alcotest.(check bool) "confirmed" true f.f_confirmed;
  (* compare features widen the frontier beyond plain edge coverage *)
  Alcotest.(check bool) "compare features admitted" true
    (on.r_coverage > off.r_coverage)

let cmplog_campaign_deterministic () =
  let fw = Firmware_db.cmplog_gate_fw in
  let run () =
    let cfg =
      {
        (Campaign.default_config fw) with
        max_execs = 600;
        seed = 11;
        use_cmplog = true;
      }
    in
    let r = Campaign.run cfg in
    ( List.sort compare
        (List.map (fun (f : Campaign.found) -> (f.f_bug.b_id, f.f_exec)) r.r_found),
      r.r_coverage,
      r.r_corpus )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "cmplog campaign is deterministic" true (a = b)

let clean_corpus_filters_triggers () =
  let fw = small_fw () in
  let cfg =
    {
      (Campaign.default_config fw) with
      max_execs = 1200;
      seed = 3;
      stop_when_all_found = false;
    }
  in
  let r = Campaign.run cfg in
  let clean = Campaign.clean_corpus fw r.r_corpus_progs in
  Alcotest.(check bool) "corpus nonempty" true (clean <> []);
  (* replaying the clean corpus produces no reports *)
  let inst = Replay.boot fw (Replay.Embsan_cfg Embsan.all_sanitizers) in
  let o = Replay.replay inst (List.concat_map Prog.to_reproducer clean) in
  Alcotest.(check (list string)) "no reports" []
    (List.map Embsan_core.Report.title o.o_reports)

let () =
  Alcotest.run "embsan_fuzz"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          QCheck_alcotest.to_alcotest rng_ranges;
          QCheck_alcotest.to_alcotest split_reproducible;
          QCheck_alcotest.to_alcotest split_distinct_shards;
          QCheck_alcotest.to_alcotest split_independent_of_parent;
          Alcotest.test_case "split_seed collision-free grid" `Quick
            split_seed_collision_free;
          QCheck_alcotest.to_alcotest split_stream_reproducible;
          QCheck_alcotest.to_alcotest split_stream_independent;
          QCheck_alcotest.to_alcotest split_stream_leaves_parent_intact;
          Alcotest.test_case "split_stream collision-free grid" `Quick
            split_stream_collision_free_grid;
          Alcotest.test_case "stream tags distinct and stable" `Quick
            stream_tag_distinct;
        ] );
      ( "prog",
        [
          QCheck_alcotest.to_alcotest prog_gen_valid;
          QCheck_alcotest.to_alcotest mutate_preserves_validity;
          Alcotest.test_case "flag domains" `Quick flag_domain_respected;
        ] );
      ("corpus", [ Alcotest.test_case "triage" `Quick corpus_triage ]);
      ( "campaign",
        [
          Alcotest.test_case "finds and confirms bugs" `Slow campaign_finds_bugs;
          Alcotest.test_case "deterministic" `Slow campaign_deterministic;
          Alcotest.test_case "seed variation" `Slow campaign_seed_variation;
          Alcotest.test_case "Tardis mode on closed firmware" `Slow
            tardis_mode_needs_no_guest_support;
          Alcotest.test_case "coverage survives restore" `Quick
            coverage_survives_restore;
          Alcotest.test_case "clean corpus" `Slow clean_corpus_filters_triggers;
          Alcotest.test_case "cmplog solves the magic gate" `Slow
            cmplog_solves_magic_gate;
          Alcotest.test_case "cmplog campaign deterministic" `Slow
            cmplog_campaign_deterministic;
        ] );
    ]
